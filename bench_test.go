package repro_test

// Figure/experiment benchmarks. One bench per paper artifact (DESIGN.md
// §3) plus scaling and ablation benches. They measure the system the
// same way cmd/experiments does, but under testing.B so regressions are
// visible in -bench output:
//
//	BenchmarkFigure4WindowQuery      — F4: the 30-min window query (Intel)
//	BenchmarkFigure4ZoomLineage      — F4z: lineage fetch of suspect windows
//	BenchmarkFigure6RankedPredicates — F6: the full Debug pipeline (Intel)
//	BenchmarkFigure7FECDaily         — F7: daily donation totals (FEC)
//	BenchmarkWalkthroughFEC          — W1: Debug + clean on FEC
//	BenchmarkPipelineVsBaselines     — E1: ours vs top-k influence
//	BenchmarkDebugScaling/*          — E2: Debug vs |D|
//	BenchmarkSplitCriteria/*         — E3: per-criterion Debug
//	BenchmarkInfluenceLOO            — E5: leave-one-out pass alone

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/dtree"
	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
	"repro/internal/influence"
	"repro/internal/sqlparse"
	"repro/internal/store"
)

// intelEnv caches one synthetic trace + executed query per size so the
// benches measure the operation, not the generator.
type intelEnv struct {
	db      *engine.DB
	res     *exec.Result
	suspect []int
	dprime  []int
}

var intelCache = map[int]*intelEnv{}

func intelBench(b testing.TB, rows int) *intelEnv {
	b.Helper()
	if e, ok := intelCache[rows]; ok {
		return e
	}
	db, _ := datasets.IntelDB(datasets.IntelConfig{Rows: rows, Seed: 7})
	res, err := exec.RunSQL(db, datasets.IntelWindowSQL)
	if err != nil {
		b.Fatal(err)
	}
	suspect, err := core.SuspectWhere(res, "std_temp", func(v engine.Value) bool {
		return !v.IsNull() && v.Float() > 10
	})
	if err != nil {
		b.Fatal(err)
	}
	dprime, err := core.ExamplesWhere(res, suspect, "temperature > 100")
	if err != nil {
		b.Fatal(err)
	}
	e := &intelEnv{db: db, res: res, suspect: suspect, dprime: dprime}
	intelCache[rows] = e
	return e
}

type fecEnv struct {
	db      *engine.DB
	res     *exec.Result
	suspect []int
	dprime  []int
}

var fecCache = map[int]*fecEnv{}

func fecBench(b testing.TB, rows int) *fecEnv {
	b.Helper()
	if e, ok := fecCache[rows]; ok {
		return e
	}
	db, _ := datasets.FECDB(datasets.FECConfig{Rows: rows, Seed: 7})
	res, err := exec.RunSQL(db, datasets.FECDailySQL("McCain"))
	if err != nil {
		b.Fatal(err)
	}
	suspect, err := core.SuspectWhere(res, "total", func(v engine.Value) bool {
		return !v.IsNull() && v.Float() < 0
	})
	if err != nil {
		b.Fatal(err)
	}
	dprime, err := core.ExamplesWhere(res, suspect, "amount < 0")
	if err != nil {
		b.Fatal(err)
	}
	e := &fecEnv{db: db, res: res, suspect: suspect, dprime: dprime}
	fecCache[rows] = e
	return e
}

// BenchmarkFigure4WindowQuery measures the Figure 4 aggregate query
// (avg + stddev per 30-minute window) over the 100k-row Intel trace.
func BenchmarkFigure4WindowQuery(b *testing.B) {
	e := intelBench(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.RunSQL(e.db, datasets.IntelWindowSQL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4ZoomLineage measures fetching the raw tuples of the
// highlighted windows (the zoom interaction).
func BenchmarkFigure4ZoomLineage(b *testing.B) {
	e := intelBench(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := e.res.Lineage(e.suspect); len(got) == 0 {
			b.Fatal("empty lineage")
		}
	}
}

// BenchmarkFigure6RankedPredicates measures the full Debug pipeline on
// the Intel sensor query — the paper's headline interaction.
func BenchmarkFigure6RankedPredicates(b *testing.B) {
	e := intelBench(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dr, err := core.Debug(core.DebugRequest{
			Result: e.res, AggItem: -1, Suspect: e.suspect,
			Examples: e.dprime, Metric: errmetric.TooHigh{C: 70},
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(dr.Explanations) == 0 {
			b.Fatal("no explanations")
		}
	}
}

// BenchmarkFigure7FECDaily measures the Figure 7 query (sum per day).
func BenchmarkFigure7FECDaily(b *testing.B) {
	e := fecBench(b, 150_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.RunSQL(e.db, datasets.FECDailySQL("McCain")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWalkthroughFEC measures the §3.2 walkthrough: Debug the
// negative spike and clean with the top predicate.
func BenchmarkWalkthroughFEC(b *testing.B) {
	e := fecBench(b, 150_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dr, err := core.Debug(core.DebugRequest{
			Result: e.res, AggItem: -1, Suspect: e.suspect,
			Examples: e.dprime, Metric: errmetric.TooLow{C: 0},
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.CleanAndRequery(e.res, dr.Explanations[0].Pred); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineVsBaselines compares one Debug call against the
// top-k influence baseline (E1's latency dimension).
func BenchmarkPipelineVsBaselines(b *testing.B) {
	e := fecBench(b, 150_000)
	b.Run("ranked-provenance", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Debug(core.DebugRequest{
				Result: e.res, AggItem: -1, Suspect: e.suspect,
				Examples: e.dprime, Metric: errmetric.TooLow{C: 0},
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("topk-influence", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.TopKInfluence(e.res, e.suspect, 0, errmetric.TooLow{C: 0}, 400); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-provenance", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := baseline.FullProvenance(e.res, e.suspect); len(got) == 0 {
				b.Fatal("empty")
			}
		}
	})
}

// BenchmarkDebugScaling measures Debug wall time against dataset size
// (E2). The paper's claim: ~linear in |F| thanks to removable
// aggregates.
func BenchmarkDebugScaling(b *testing.B) {
	for _, rows := range []int{25_000, 50_000, 100_000, 200_000} {
		rows := rows
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			e := intelBench(b, rows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Debug(core.DebugRequest{
					Result: e.res, AggItem: -1, Suspect: e.suspect,
					Examples: e.dprime, Metric: errmetric.TooHigh{C: 70},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSplitCriteria measures Debug under each splitting strategy
// alone (E3).
func BenchmarkSplitCriteria(b *testing.B) {
	e := intelBench(b, 100_000)
	for _, crit := range []dtree.Criterion{dtree.Gini, dtree.Entropy, dtree.GainRatio} {
		crit := crit
		b.Run(crit.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Debug(core.DebugRequest{
					Result: e.res, AggItem: -1, Suspect: e.suspect,
					Examples: e.dprime, Metric: errmetric.TooHigh{C: 70},
					Opt: core.Options{Criteria: []dtree.Criterion{crit}},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInfluenceLOO isolates the preprocessor's leave-one-out pass
// (E5): O(|F|) with removable aggregates.
func BenchmarkInfluenceLOO(b *testing.B) {
	e := intelBench(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := influence.Rank(e.res, e.suspect, 0, errmetric.TooHigh{C: 70}, influence.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamingAppendQuery measures the continuous-monitoring
// cycle — append one batch, re-run the Figure 4 window query — at
// several base table sizes. The incremental path (copy-on-write
// AppendBatch + exec.Advance folding in only the appended rows, with
// column views and clause masks extending by suffix decode) must cost
// O(batch) per cycle regardless of table size; the rebuild variant
// re-runs the full query after each append and scales O(table), the
// cost every streaming re-query paid before incremental maintenance.
func BenchmarkStreamingAppendQuery(b *testing.B) {
	const batchSize = 1_000
	const poolBatches = 100
	stmt, err := sqlparse.Parse(datasets.IntelWindowSQL)
	if err != nil {
		b.Fatal(err)
	}
	for _, base := range []int{50_000, 100_000, 200_000} {
		full, _ := datasets.Intel(datasets.IntelConfig{Rows: base + poolBatches*batchSize, Seed: 7})
		pool := make([][][]engine.Value, poolBatches)
		for bi := range pool {
			rows := make([][]engine.Value, batchSize)
			for r := range rows {
				rows[r] = full.Row(base + bi*batchSize + r)
			}
			pool[bi] = rows
		}
		setup := func(b *testing.B) (*engine.Table, *exec.Result) {
			ids := make([]int, base)
			for i := range ids {
				ids[i] = i
			}
			tbl := full.Select(ids)
			res, err := exec.RunOn(tbl, stmt)
			if err != nil {
				b.Fatal(err)
			}
			return tbl, res
		}
		for _, mode := range []string{"incremental", "rebuild"} {
			mode := mode
			b.Run(fmt.Sprintf("%s/base=%d", mode, base), func(b *testing.B) {
				tbl, res := setup(b)
				bi := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if bi == len(pool) {
						// Pool exhausted: restart from the base table so
						// the measured table size stays near base.
						b.StopTimer()
						tbl, res = setup(b)
						bi = 0
						b.StartTimer()
					}
					grown, err := tbl.AppendBatch(pool[bi])
					if err != nil {
						b.Fatal(err)
					}
					bi++
					if mode == "incremental" {
						res, err = exec.Advance(res, grown)
						if err != nil {
							b.Fatal(err)
						}
						if !res.Plan.Incremental {
							b.Fatalf("advance fell back: %+v", res.Plan)
						}
					} else {
						res, err = exec.RunOn(grown, stmt)
						if err != nil {
							b.Fatal(err)
						}
					}
					tbl = grown
				}
			})
		}
	}
}

// BenchmarkStreamingDebug measures the monitoring loop's debug half:
// append a 1k batch, advance the query result, and re-Debug — the
// incremental path (core.DebugAdvance carrying the scorer, lineage
// bitsets, argument views, clause masks and scored candidates) against
// the full re-Debug baseline (fresh run + fresh Debug over the grown
// table). Incremental cost should stay roughly flat across base sizes
// while the baseline grows with the table.
func BenchmarkStreamingDebug(b *testing.B) {
	const batchSize = 1_000
	const poolBatches = 60
	stmt, err := sqlparse.Parse(datasets.IntelWindowSQL)
	if err != nil {
		b.Fatal(err)
	}
	// C=0 keeps ε positive at every base size (window averages are
	// always positive), so the pipeline never bails with "nothing to
	// explain" — this is a throughput benchmark, not an accuracy one.
	metric := errmetric.TooHigh{C: 0}
	// Suspect rule: the 8 highest-std windows. A fixed suspect count
	// models the monitoring scenario (a handful of anomalous windows
	// under investigation while the trace keeps growing); since the
	// Intel trace grows by adding windows — not rows per window — the
	// debugged lineage stays roughly constant and the measured growth
	// isolates the per-table costs the carry is supposed to remove.
	suspectsOf := func(res *exec.Result) []int {
		ci := res.Table.Schema().ColIndex("std_temp")
		type ws struct {
			row int
			std float64
		}
		var wins []ws
		for r := 0; r < res.Table.NumRows(); r++ {
			if v := res.Table.Value(r, ci); !v.IsNull() {
				wins = append(wins, ws{r, v.Float()})
			}
		}
		if len(wins) == 0 {
			b.Fatal("no std windows")
		}
		sort.Slice(wins, func(i, j int) bool {
			if wins[i].std != wins[j].std {
				return wins[i].std > wins[j].std
			}
			return wins[i].row < wins[j].row
		})
		if len(wins) > 8 {
			wins = wins[:8]
		}
		suspect := make([]int, len(wins))
		for i, w := range wins {
			suspect[i] = w.row
		}
		sort.Ints(suspect)
		return suspect
	}
	for _, base := range []int{50_000, 100_000, 200_000} {
		full, _ := datasets.Intel(datasets.IntelConfig{Rows: base + poolBatches*batchSize, Seed: 7})
		pool := make([][][]engine.Value, poolBatches)
		for bi := range pool {
			rows := make([][]engine.Value, batchSize)
			for r := range rows {
				rows[r] = full.Row(base + bi*batchSize + r)
			}
			pool[bi] = rows
		}
		setup := func(b *testing.B) (*engine.Table, *exec.Result, *core.DebugResult) {
			ids := make([]int, base)
			for i := range ids {
				ids[i] = i
			}
			tbl := full.Select(ids)
			res, err := exec.RunOn(tbl, stmt)
			if err != nil {
				b.Fatal(err)
			}
			dbg, err := core.Debug(core.DebugRequest{
				Result: res, AggItem: -1, Suspect: suspectsOf(res), Metric: metric,
			})
			if err != nil {
				b.Fatal(err)
			}
			return tbl, res, dbg
		}
		for _, mode := range []string{"incremental", "rebuild"} {
			mode := mode
			b.Run(fmt.Sprintf("%s/base=%d", mode, base), func(b *testing.B) {
				tbl, res, dbg := setup(b)
				bi := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if bi == len(pool) {
						// Pool exhausted: restart from the base table so
						// the measured table size stays near base.
						b.StopTimer()
						tbl, res, dbg = setup(b)
						bi = 0
						b.StartTimer()
					}
					grown, err := tbl.AppendBatch(pool[bi])
					if err != nil {
						b.Fatal(err)
					}
					bi++
					if mode == "incremental" {
						res, err = exec.Advance(res, grown)
						if err != nil {
							b.Fatal(err)
						}
						dbg, err = core.DebugAdvance(dbg, core.DebugRequest{
							Result: res, AggItem: -1, Suspect: suspectsOf(res), Metric: metric,
						})
						if err != nil {
							b.Fatal(err)
						}
						if !dbg.Plan.Incremental {
							b.Fatalf("debug advance fell back: %+v", dbg.Plan)
						}
					} else {
						res, err = exec.RunOn(grown, stmt)
						if err != nil {
							b.Fatal(err)
						}
						dbg, err = core.Debug(core.DebugRequest{
							Result: res, AggItem: -1, Suspect: suspectsOf(res), Metric: metric,
						})
						if err != nil {
							b.Fatal(err)
						}
					}
					tbl = grown
				}
			})
		}
	}
}

// BenchmarkFullScaleIntel runs the Figure 4 query at the real trace's
// scale (2.3M readings), demonstrating the substitution documented in
// DESIGN.md covers the paper's full data volume.
func BenchmarkFullScaleIntel(b *testing.B) {
	if testing.Short() {
		b.Skip("full-scale trace generation is slow; skipped in -short")
	}
	e := intelBench(b, 2_300_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.RunSQL(e.db, datasets.IntelWindowSQL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSegmentedAppend measures the raw ingest path on the
// segmented store at several base sizes: a batch append touches only
// the tail segment (worst case one tail reallocation bounded by the
// segment size), so per-batch cost must stay flat as the table grows —
// the copy-on-grow cliff the segment refactor removes.
func BenchmarkSegmentedAppend(b *testing.B) {
	const batchSize = 1_000
	const poolBatches = 100
	for _, base := range []int{50_000, 100_000, 200_000} {
		full, _ := datasets.Intel(datasets.IntelConfig{Rows: base + poolBatches*batchSize, Seed: 7})
		pool := make([][][]engine.Value, poolBatches)
		for bi := range pool {
			rows := make([][]engine.Value, batchSize)
			for r := range rows {
				rows[r] = full.Row(base + bi*batchSize + r)
			}
			pool[bi] = rows
		}
		setup := func() *engine.Table {
			ids := make([]int, base)
			for i := range ids {
				ids[i] = i
			}
			return full.Select(ids)
		}
		b.Run(fmt.Sprintf("base=%d", base), func(b *testing.B) {
			tbl := setup()
			bi := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if bi == len(pool) {
					b.StopTimer()
					tbl = setup()
					bi = 0
					b.StartTimer()
				}
				grown, err := tbl.AppendBatch(pool[bi])
				if err != nil {
					b.Fatal(err)
				}
				bi++
				tbl = grown
			}
		})
	}
}

// BenchmarkRetention measures the bounded-memory streaming loop:
// append a batch, apply a row-horizon retention policy, advance the
// carried window query. The reported retained_MB / retained_segs
// metrics plateau (bounded RSS) while the stream grows, and the cycle
// cost stays flat — the acceptance numbers for unbounded ingest.
func BenchmarkRetention(b *testing.B) {
	const batchSize = 1_000
	const poolBatches = 200
	const keepRows = 50_000
	stmt, err := sqlparse.Parse(datasets.IntelWindowSQL)
	if err != nil {
		b.Fatal(err)
	}
	full, _ := datasets.Intel(datasets.IntelConfig{Rows: keepRows + poolBatches*batchSize, Seed: 7})
	pool := make([][][]engine.Value, poolBatches)
	for bi := range pool {
		rows := make([][]engine.Value, batchSize)
		for r := range rows {
			rows[r] = full.Row(keepRows + bi*batchSize + r)
		}
		pool[bi] = rows
	}
	// 4Ki-row segments so the horizon advances in useful steps at this
	// scale (the example uses the same geometry).
	setup := func() (*engine.Table, *exec.Result) {
		tbl, err := engine.NewTableSeg("readings", full.Schema(), 12)
		if err != nil {
			b.Fatal(err)
		}
		seed := make([][]engine.Value, keepRows)
		for i := range seed {
			seed[i] = full.Row(i)
		}
		tbl, err = tbl.AppendBatch(seed)
		if err != nil {
			b.Fatal(err)
		}
		res, err := exec.RunOn(tbl, stmt)
		if err != nil {
			b.Fatal(err)
		}
		return tbl, res
	}
	tbl, res := setup()
	bi := 0
	maxSegs, maxBytes := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bi == len(pool) {
			b.StopTimer()
			tbl, res = setup()
			bi = 0
			b.StartTimer()
		}
		grown, err := tbl.AppendBatch(pool[bi])
		if err != nil {
			b.Fatal(err)
		}
		bi++
		retained, _, err := grown.RetainTail(engine.RetentionPolicy{MaxRows: keepRows})
		if err != nil {
			b.Fatal(err)
		}
		res, err = exec.Advance(res, retained)
		if err != nil {
			b.Fatal(err)
		}
		tbl = retained
		if segs, bytes := tbl.MemStats(); true {
			if segs > maxSegs {
				maxSegs = segs
			}
			if bytes > maxBytes {
				maxBytes = bytes
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(maxSegs), "retained_segs")
	b.ReportMetric(float64(maxBytes)/(1<<20), "retained_MB")
}

// BenchmarkDurableAppend prices durability: the same 1k-row batch
// append as BenchmarkSegmentedAppend, but acknowledged through
// internal/store's crash-safe path. mem is the in-RAM PR 5 baseline;
// nowal spills sealed segments but skips the tail log; wal/sync=1
// fsyncs the WAL per batch (the acked⇒durable contract); wal/sync=64
// amortizes the fsync over 64 batches (may lose a bounded acked
// suffix, never a torn batch). Two base sizes pin the flatness claim:
// per-batch cost must not grow with what is already on disk.
func BenchmarkDurableAppend(b *testing.B) {
	const batchSize = 1_000
	const poolBatches = 64
	modes := []struct {
		name string
		opts *store.Options // nil = in-memory engine baseline
	}{
		{"mem", nil},
		{"nowal", &store.Options{DisableWAL: true}},
		{"wal-sync=1", &store.Options{SyncEvery: 1}},
		{"wal-sync=64", &store.Options{SyncEvery: 64}},
	}
	for _, base := range []int{50_000, 200_000} {
		full, _ := datasets.Intel(datasets.IntelConfig{Rows: base + poolBatches*batchSize, Seed: 7})
		pool := make([][][]engine.Value, poolBatches)
		for bi := range pool {
			rows := make([][]engine.Value, batchSize)
			for r := range rows {
				rows[r] = full.Row(base + bi*batchSize + r)
			}
			pool[bi] = rows
		}
		baseChunks := func(emit func(rows [][]engine.Value)) {
			const chunk = 8192
			for lo := 0; lo < base; lo += chunk {
				hi := lo + chunk
				if hi > base {
					hi = base
				}
				rows := make([][]engine.Value, 0, hi-lo)
				for r := lo; r < hi; r++ {
					rows = append(rows, full.Row(r))
				}
				emit(rows)
			}
		}
		for _, mode := range modes {
			b.Run(fmt.Sprintf("%s/base=%d", mode.name, base), func(b *testing.B) {
				var appendBatch func(rows [][]engine.Value)
				if mode.opts == nil {
					tbl, err := engine.NewTableSeg("readings", full.Schema(), engine.DefaultSegmentBits)
					if err != nil {
						b.Fatal(err)
					}
					baseChunks(func(rows [][]engine.Value) {
						if tbl, err = tbl.AppendBatch(rows); err != nil {
							b.Fatal(err)
						}
					})
					appendBatch = func(rows [][]engine.Value) {
						if tbl, err = tbl.AppendBatch(rows); err != nil {
							b.Fatal(err)
						}
					}
				} else {
					opts := *mode.opts
					opts.Logf = func(string, ...any) {}
					st, err := store.Open(b.TempDir(), opts)
					if err != nil {
						b.Fatal(err)
					}
					b.Cleanup(func() { st.Close() })
					if err := st.CreateTable("readings", full.Schema(), engine.DefaultSegmentBits); err != nil {
						b.Fatal(err)
					}
					baseChunks(func(rows [][]engine.Value) {
						if _, err := st.Append("readings", rows); err != nil {
							b.Fatal(err)
						}
					})
					appendBatch = func(rows [][]engine.Value) {
						if _, err := st.Append("readings", rows); err != nil {
							b.Fatal(err)
						}
					}
				}
				bi := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					appendBatch(pool[bi])
					bi = (bi + 1) % len(pool)
				}
			})
		}
	}
}

// oocBenchFixture builds a durable table of nrows (4096-row segments,
// so point predicates have many segments to prune) and returns its
// directory. Values: k is segment-monotonic (disjoint zone ranges), v
// and w are cheap numerics, s draws from a small dictionary.
func oocBenchFixture(b *testing.B, nrows int) string {
	b.Helper()
	dir := b.TempDir()
	opts := store.Options{SyncEvery: 256, Logf: func(string, ...any) {}}
	st, err := store.Open(dir, opts)
	if err != nil {
		b.Fatal(err)
	}
	schema := engine.NewSchema("k", engine.TInt, "v", engine.TFloat, "w", engine.TFloat, "s", engine.TString)
	if err := st.CreateTable("big", schema, 12); err != nil {
		b.Fatal(err)
	}
	strs := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for lo := 0; lo < nrows; lo += 4096 {
		rows := make([][]engine.Value, 4096)
		for i := range rows {
			r := lo + i
			rows[i] = []engine.Value{
				engine.NewInt(int64((lo / 4096) * 1000)),
				engine.NewFloat(float64(r%977) * 0.25),
				engine.NewFloat(float64(r%131) * 0.5),
				engine.NewString(strs[r%len(strs)]),
			}
		}
		if _, err := st.Append("big", rows); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	return dir
}

func oocOpen(b *testing.B, dir string, cacheBytes int64) (*store.DB, *engine.Table) {
	b.Helper()
	st, err := store.Open(dir, store.Options{SyncEvery: 256, Logf: func(string, ...any) {}, MaxResidentBytes: cacheBytes})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	tbl, err := st.Eng().Table("big")
	if err != nil {
		b.Fatal(err)
	}
	return st, tbl
}

// BenchmarkColdScan measures a full aggregation scan over an
// out-of-core table served through a pool ~1/10 its decoded size —
// every iteration re-faults most chunks from disk (cold) — against the
// same table fully resident. The chunks-faulted/resident extras make
// the fault traffic visible in BENCH json.
func BenchmarkColdScan(b *testing.B) {
	const nrows = 98_304 // 24 sealed 4096-row segments
	dir := oocBenchFixture(b, nrows)
	stmt, err := sqlparse.Parse("SELECT s, sum(v) AS a, avg(w) AS m, count(*) AS n FROM big GROUP BY s")
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name  string
		cache int64
	}{{"resident", 0}, {"cold/cache=256KiB", 256 << 10}} {
		b.Run(mode.name, func(b *testing.B) {
			_, tbl := oocOpen(b, dir, mode.cache)
			var faulted, resident int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := exec.RunOn(tbl, stmt)
				if err != nil {
					b.Fatal(err)
				}
				faulted += res.Plan.ChunksFaulted
				resident += res.Plan.ChunksResident
			}
			b.SetBytes(nrows)
			b.ReportMetric(float64(faulted)/float64(b.N), "faulted/op")
			b.ReportMetric(float64(resident)/float64(b.N), "resident/op")
		})
	}
}

// BenchmarkZoneMapSkip measures a selective point query over the same
// fixture: k is constant per segment, so the zone maps prove all but
// one segment empty and the scan must skip them without touching disk.
// The bench fails if the skip rate ever drops to half or below — the
// optimization, not just the timing, is pinned.
func BenchmarkZoneMapSkip(b *testing.B) {
	const nrows = 98_304
	const nsegs = nrows / 4096
	dir := oocBenchFixture(b, nrows)
	stmt, err := sqlparse.Parse("SELECT s, sum(v) AS a, count(*) AS n FROM big WHERE k = 11000 GROUP BY s")
	if err != nil {
		b.Fatal(err)
	}
	_, tbl := oocOpen(b, dir, 256<<10)
	var skipped, faulted int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exec.RunOn(tbl, stmt)
		if err != nil {
			b.Fatal(err)
		}
		skipped += res.Plan.SegsSkipped
		faulted += res.Plan.ChunksFaulted
	}
	b.SetBytes(nrows)
	skipRate := float64(skipped) / float64(b.N) / float64(nsegs)
	if skipRate <= 0.5 {
		b.Fatalf("zone maps skipped only %.0f%% of %d segments", skipRate*100, nsegs)
	}
	b.ReportMetric(float64(skipped)/float64(b.N), "skipped/op")
	b.ReportMetric(float64(faulted)/float64(b.N), "faulted/op")
	b.ReportMetric(skipRate*100, "skip%")
}

// BenchmarkSelectiveFilter measures greedy clause ordering on the shape
// it exists for: an AND chain whose most selective clause sits LAST in
// source order (temperature > 1000 matches nothing; the four clauses
// before it match nearly everything). Left-to-right evaluation
// materializes and intersects every clause mask; the greedy planner
// probes cached popcounts, evaluates the empty clause first, and
// short-circuits the rest. The bench fails if the short-circuit ever
// stops engaging — the optimization, not just the timing, is pinned.
func BenchmarkSelectiveFilter(b *testing.B) {
	tbl, _ := datasets.Intel(datasets.IntelConfig{Rows: 200_000, Seed: 7})
	stmt, err := sqlparse.Parse(
		"SELECT moteid, avg(temperature) AS t, count(*) AS n FROM readings " +
			"WHERE humidity >= 0 AND light >= 0 AND voltage > 0 AND epoch >= 0 AND temperature > 1000 " +
			"GROUP BY moteid")
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name string
		opts exec.Options
	}{
		{"left-to-right", exec.Options{NoGreedyOrdering: true}},
		{"greedy", exec.Options{}},
	}
	// Warm the shared clause-mask cache so both modes measure
	// steady-state lowering, not the first decode.
	for _, mode := range modes {
		if _, err := exec.RunOnWith(tbl, stmt, mode.opts); err != nil {
			b.Fatal(err)
		}
	}
	for _, mode := range modes {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var skipped int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := exec.RunOnWith(tbl, stmt, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				skipped += res.Plan.FilterShortCircuited
			}
			if mode.name == "greedy" {
				if skipped == 0 {
					b.Fatal("greedy ordering never short-circuited the chain")
				}
				b.ReportMetric(float64(skipped)/float64(b.N), "short-circuited/op")
			}
		})
	}
}

// BenchmarkAdvanceOrderBy measures the incremental ORDER BY merge on a
// wide group space: 50k groups sorted by a changing aggregate, advanced
// by 1k-row batches that touch ~2% of groups. The carry path merges the
// carried order with a re-sort of only the changed groups; the re-sort
// baseline pays O(groups log groups) comparisons every advance. The
// carry bench fails if the merge ever stops engaging.
func BenchmarkAdvanceOrderBy(b *testing.B) {
	const ngroups = 50_000
	const baseRows = 200_000
	const batchSize = 1_000
	const poolBatches = 100
	ctx := context.Background()
	rng := rand.New(rand.NewSource(3))
	schema := engine.NewSchema("g", engine.TInt, "v", engine.TFloat)
	makeRows := func(k int) [][]engine.Value {
		rows := make([][]engine.Value, k)
		for r := range rows {
			rows[r] = []engine.Value{
				engine.NewInt(int64(1 + rng.Intn(ngroups))),
				engine.NewFloat(rng.NormFloat64() * 100),
			}
		}
		return rows
	}
	baseBatches := make([][][]engine.Value, 0, baseRows/8192+1)
	for got := 0; got < baseRows; got += 8192 {
		baseBatches = append(baseBatches, makeRows(8192))
	}
	pool := make([][][]engine.Value, poolBatches)
	for bi := range pool {
		pool[bi] = makeRows(batchSize)
	}
	stmt, err := sqlparse.Parse(
		"SELECT g, sum(v) AS s, count(*) AS n FROM t GROUP BY g ORDER BY s DESC")
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name string
		opts exec.Options
	}{
		{"carry", exec.Options{}},
		{"resort", exec.Options{NoSortCarry: true}},
	}
	for _, mode := range modes {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			// Each restart builds a fresh table family: appending the pool
			// to a shared base would hit the stale-snapshot guard on the
			// second pass.
			setup := func() (*engine.Table, *exec.Result) {
				tbl := engine.MustNewTable("t", schema)
				for _, rows := range baseBatches {
					grown, err := tbl.AppendBatch(rows)
					if err != nil {
						b.Fatal(err)
					}
					tbl = grown
				}
				res, err := exec.RunOn(tbl, stmt)
				if err != nil {
					b.Fatal(err)
				}
				return tbl, res
			}
			tbl, res := setup()
			bi, carried := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if bi == len(pool) {
					// Pool exhausted: restart from the base table so the
					// measured group space stays near ngroups.
					b.StopTimer()
					tbl, res = setup()
					bi = 0
					b.StartTimer()
				}
				grown, err := tbl.AppendBatch(pool[bi])
				if err != nil {
					b.Fatal(err)
				}
				bi++
				res, err = AdvanceOrderByStep(ctx, res, grown, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				if res.Plan.SortCarried {
					carried++
				}
				tbl = grown
			}
			if mode.name == "carry" && carried == 0 {
				b.Fatal("incremental sort merge never engaged")
			}
			b.ReportMetric(float64(carried)/float64(b.N), "carried/op")
		})
	}
}

// AdvanceOrderByStep is the advance under bench: split out so both
// modes go through the identical call path.
func AdvanceOrderByStep(ctx context.Context, res *exec.Result, grown *engine.Table, opts exec.Options) (*exec.Result, error) {
	out, err := exec.AdvanceWith(ctx, res, grown, opts)
	if err != nil {
		return nil, err
	}
	if !out.Plan.Incremental {
		return nil, fmt.Errorf("advance fell back: %+v", out.Plan)
	}
	return out, nil
}

// BenchmarkResidualFilter measures partial WHERE lowering on the shape
// it exists for: an AND chain mixing a selective lowerable comparison
// with a LIKE that cannot lower. Before residual masks the whole chain
// fell back to per-row EvalBool over every row (the left-to-right mode
// here); with them the comparison lowers to a cached clause mask and
// the LIKE runs only on its survivors. The bench fails if the residual
// path stops engaging or stops being at least 3x faster than the
// boxed-WHERE fallback.
func BenchmarkResidualFilter(b *testing.B) {
	tbl, _ := datasets.FEC(datasets.FECConfig{Rows: 200_000, Seed: 7})
	stmt, err := sqlparse.Parse(
		"SELECT state, sum(amount) AS s, count(*) AS n FROM donations " +
			"WHERE amount > 1000 AND city LIKE 'S%' GROUP BY state")
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name string
		opts exec.Options
	}{
		{"boxed-where", exec.Options{NoGreedyOrdering: true}},
		{"residual", exec.Options{}},
	}
	// Warm the shared clause-mask cache so both modes measure
	// steady-state lowering, not the first decode.
	for _, mode := range modes {
		if _, err := exec.RunOnWith(tbl, stmt, mode.opts); err != nil {
			b.Fatal(err)
		}
	}
	measure := func(opts exec.Options) time.Duration {
		best := time.Duration(math.MaxInt64)
		for k := 0; k < 3; k++ {
			t0 := time.Now()
			if _, err := exec.RunOnWith(tbl, stmt, opts); err != nil {
				b.Fatal(err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	if slow, fast := measure(modes[0].opts), measure(modes[1].opts); fast*3 > slow {
		b.Fatalf("residual filter only %.2fx faster than boxed WHERE (%v vs %v)",
			float64(slow)/float64(fast), fast, slow)
	}
	for _, mode := range modes {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var residualRows int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := exec.RunOnWith(tbl, stmt, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				switch mode.name {
				case "residual":
					if res.Plan.ResidualConjuncts == 0 || res.Plan.FilterFallback != "" {
						b.Fatalf("residual path not engaged: %+v", res.Plan)
					}
					residualRows += res.Plan.ResidualRows
				case "boxed-where":
					if res.Plan.FilterFallback == "" {
						b.Fatalf("left-to-right mode unexpectedly lowered the chain: %+v", res.Plan)
					}
				}
			}
			if mode.name == "residual" {
				b.ReportMetric(float64(residualRows)/float64(b.N), "residualrows/op")
			}
		})
	}
}

// BenchmarkOrChainShortCircuit measures largest-first OR ordering: the
// first disjunct below matches every row, so the ordered union fills
// immediately and the remaining disjunct masks are never materialized.
// Left-to-right lowering pays for all three. The bench fails if the
// fill short-circuit stops engaging.
func BenchmarkOrChainShortCircuit(b *testing.B) {
	tbl, _ := datasets.Intel(datasets.IntelConfig{Rows: 200_000, Seed: 7})
	stmt, err := sqlparse.Parse(
		"SELECT moteid, count(*) AS n FROM readings " +
			"WHERE humidity > -1000 OR temperature > 50 OR light > 500 GROUP BY moteid")
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name string
		opts exec.Options
	}{
		{"left-to-right", exec.Options{NoGreedyOrdering: true}},
		{"ordered", exec.Options{}},
	}
	for _, mode := range modes {
		if _, err := exec.RunOnWith(tbl, stmt, mode.opts); err != nil {
			b.Fatal(err)
		}
	}
	for _, mode := range modes {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var skipped int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := exec.RunOnWith(tbl, stmt, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				skipped += res.Plan.FilterShortCircuited
			}
			if mode.name == "ordered" {
				if skipped == 0 {
					b.Fatal("filled OR union never short-circuited")
				}
				b.ReportMetric(float64(skipped)/float64(b.N), "skipped/op")
			}
		})
	}
}

// BenchmarkMaskedAggregation measures the mask-guarded global
// aggregation kernels: a GROUP BY-free statement whose aggregates all
// fold as floats runs FoldMasked over whole segment chunks instead of
// per-row scanRow calls. The scalar reference is the baseline. The
// bench fails if the masked path stops engaging.
func BenchmarkMaskedAggregation(b *testing.B) {
	tbl, _ := datasets.Intel(datasets.IntelConfig{Rows: 200_000, Seed: 7})
	stmt, err := sqlparse.Parse(
		"SELECT count(*) AS n, sum(temperature) AS s, min(temperature) AS mn, max(temperature) AS mx " +
			"FROM readings WHERE humidity >= 35")
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name string
		opts exec.Options
	}{
		{"scalar", exec.Options{ForceScalar: true}},
		{"masked", exec.Options{}},
	}
	for _, mode := range modes {
		if _, err := exec.RunOnWith(tbl, stmt, mode.opts); err != nil {
			b.Fatal(err)
		}
	}
	for _, mode := range modes {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			b.SetBytes(200_000 * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := exec.RunOnWith(tbl, stmt, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				if mode.name == "masked" && !res.Plan.MaskedAgg {
					b.Fatalf("masked aggregation not engaged: %+v", res.Plan)
				}
			}
		})
	}
}

// BenchmarkRetentionOrderBy measures ORDER BY carry across retention:
// a windowed ordered statement advanced over append+retain steps keeps
// both its group states (rebase) and its sort order (incremental
// merge); the resort baseline re-sorts every step. The carry bench
// fails if either the rebase or the sort merge stops engaging.
func BenchmarkRetentionOrderBy(b *testing.B) {
	const base = 16_384 // retained row budget (256 min-size segments)
	const ngroups = 2_000
	const batchSize = 128 // two segments appended (and dropped) per step
	ctx := context.Background()
	schema := engine.NewSchema("g", engine.TInt, "x", engine.TFloat)
	stmt, err := sqlparse.Parse(fmt.Sprintf(
		"SELECT g, sum(x) AS s, count(*) AS n FROM t WHERE x >= %d GROUP BY g ORDER BY s DESC", base/2))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	makeRows := func(x0, k int) [][]engine.Value {
		rows := make([][]engine.Value, k)
		for r := range rows {
			rows[r] = []engine.Value{
				engine.NewInt(int64(1 + rng.Intn(ngroups))),
				engine.NewFloat(float64(x0 + r)),
			}
		}
		return rows
	}
	modes := []struct {
		name string
		opts exec.Options
	}{
		{"carry", exec.Options{}},
		{"resort", exec.Options{NoSortCarry: true}},
	}
	for _, mode := range modes {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			// Each restart rebuilds the family: the fixed cutoff stays
			// ahead of the retention horizon for (base/2)/batchSize steps,
			// after which dropped rows would enter the carried window.
			setup := func() (*engine.Table, *exec.Result, int) {
				tbl, err := engine.NewTableSeg("t", schema, engine.MinSegmentBits)
				if err != nil {
					b.Fatal(err)
				}
				for x := 0; x < base; x += 4096 {
					if tbl, err = tbl.AppendBatch(makeRows(x, 4096)); err != nil {
						b.Fatal(err)
					}
				}
				res, err := exec.RunOn(tbl, stmt)
				if err != nil {
					b.Fatal(err)
				}
				return tbl, res, base
			}
			tbl, res, next := setup()
			steps, carried := 0, 0
			maxSteps := (base / 2) / batchSize / 2 // halfway to the cutoff: comfortably rebasable
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if steps == maxSteps {
					b.StopTimer()
					tbl, res, next = setup()
					steps = 0
					b.StartTimer()
				}
				grown, err := tbl.AppendBatch(makeRows(next, batchSize))
				if err != nil {
					b.Fatal(err)
				}
				next += batchSize
				retained, _, err := grown.RetainTail(engine.RetentionPolicy{MaxRows: base})
				if err != nil {
					b.Fatal(err)
				}
				res, err = AdvanceOrderByStep(ctx, res, retained, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				if res.Plan.SortCarried {
					carried++
				}
				tbl = retained
				steps++
			}
			if mode.name == "carry" && carried == 0 {
				b.Fatal("ordered retention advance never carried the sort")
			}
			b.ReportMetric(float64(carried)/float64(b.N), "carried/op")
		})
	}
}
