GO ?= go

.PHONY: all build test short test-race vet fmt-check check bench bench-hot bench-json

all: build test

build:
	$(GO) build ./...

# Tier-1 verification: everything must build and pass.
test: build
	$(GO) test ./...

# Short mode skips the full-scale (2.3M row) generators.
short:
	$(GO) test -short ./...

# Race-detector pass over the concurrent surfaces: the shard-parallel
# executor, the copy-on-write append/serve path, and the server's
# per-session state. CI runs this as its own job.
test-race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# The CI gate: build, vet, formatting, and the short test suite.
check: build vet fmt-check short

# Full benchmark sweep with allocation counts.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# Record the perf trajectory: run the root figure benchmarks and write
# ns/op + B/op + allocs/op per bench as JSON. Check the file in so each
# PR's numbers diff against the last.
BENCH_JSON ?= BENCH_PR3.json
bench-json:
	@out=$$(mktemp); \
	$(GO) test -run='^$$' -bench=. -benchmem -short . > $$out || { cat $$out; rm -f $$out; exit 1; }; \
	$(GO) run ./cmd/benchjson < $$out > $(BENCH_JSON); rm -f $$out
	@echo "wrote $(BENCH_JSON)"

# Just the scoring hot path: the paper's interactivity claim lives here.
bench-hot:
	$(GO) test -run='^$$' -bench='BenchmarkInfluenceLOO|BenchmarkFigure6RankedPredicates' -benchmem .
	$(GO) test -run='^$$' -bench='BenchmarkRank|BenchmarkEpsWithout' -benchmem ./internal/influence
	$(GO) test -run='^$$' -bench='BenchmarkScorePredicate|BenchmarkRankAll' -benchmem ./internal/ranker
	$(GO) test -run='^$$' -bench='BenchmarkMatching' -benchmem ./internal/predicate
