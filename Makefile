GO ?= go

.PHONY: all build test short vet bench bench-hot

all: build test

build:
	$(GO) build ./...

# Tier-1 verification: everything must build and pass.
test: build
	$(GO) test ./...

# Short mode skips the full-scale (2.3M row) generators.
short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# Full benchmark sweep with allocation counts.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# Just the scoring hot path: the paper's interactivity claim lives here.
bench-hot:
	$(GO) test -run='^$$' -bench='BenchmarkInfluenceLOO|BenchmarkFigure6RankedPredicates' -benchmem .
	$(GO) test -run='^$$' -bench='BenchmarkRank|BenchmarkEpsWithout' -benchmem ./internal/influence
	$(GO) test -run='^$$' -bench='BenchmarkScorePredicate|BenchmarkRankAll' -benchmem ./internal/ranker
	$(GO) test -run='^$$' -bench='BenchmarkMatching' -benchmem ./internal/predicate
