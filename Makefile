GO ?= go

.PHONY: all build test short test-race test-crash test-chaos test-memcap vet fmt-check check bench bench-hot bench-json fuzz-smoke cover

all: build test

build:
	$(GO) build ./...

# Tier-1 verification: everything must build and pass.
test: build
	$(GO) test ./...

# Short mode skips the full-scale (2.3M row) generators.
short:
	$(GO) test -short ./...

# Race-detector pass over the concurrent surfaces: the shard-parallel
# executor, the copy-on-write append/serve path, and the server's
# per-session state. CI runs this as its own job.
test-race:
	$(GO) test -race -short ./...

# Durability fault suite: the crash-at-every-failpoint recovery matrix,
# corruption/quarantine detection, and fail-stop behavior in
# internal/store, under the race detector. GOMAXPROCS=1 pins the
# single-core schedule; GOMAXPROCS=4 lets recovered tables publish to
# genuinely concurrent readers.
test-crash:
	GOMAXPROCS=1 $(GO) test -race -count=1 ./internal/store/
	GOMAXPROCS=4 $(GO) test -race -count=1 ./internal/store/

# Request-lifecycle fault suite: the cancel-at-every-failpoint matrix
# over scans, advances, debug carries and the store's append gate, the
# deadline storm (every request classified exactly once), and the
# concurrent chaos soak with FaultFS faults — under the race detector,
# short mode (the full soak runs in the plain test suite). GOMAXPROCS=1
# pins the single-core schedule; GOMAXPROCS=4 gives the storm and soak
# genuine parallelism.
test-chaos:
	GOMAXPROCS=1 $(GO) test -race -short -count=1 ./internal/chaos/
	GOMAXPROCS=4 $(GO) test -race -short -count=1 ./internal/chaos/

# Out-of-core suite under a hard memory cap: the store and exec tests
# (including the bigger-than-cache differential and bounded-heap
# checks) run with GOMEMLIMIT far below the decoded size of their
# fixtures. A regression to eager residency fails the heap-growth
# assertions — or stalls visibly in GC thrash under the limit.
test-memcap:
	GOMEMLIMIT=128MiB $(GO) test -count=1 ./internal/store/ ./internal/exec/

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Short fuzz sessions over the parser round-trip and the compiled
# evaluator parity targets (one -fuzz target per invocation is a Go
# toolchain constraint). The checked-in corpora under testdata/fuzz
# replay on every plain `go test`; this additionally explores new
# inputs for a few seconds each.
FUZZTIME ?= 5s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParseRoundTrip -fuzztime=$(FUZZTIME) ./internal/sqlparse
	$(GO) test -run='^$$' -fuzz=FuzzParseExprRoundTrip -fuzztime=$(FUZZTIME) ./internal/sqlparse
	$(GO) test -run='^$$' -fuzz=FuzzCompileParity -fuzztime=$(FUZZTIME) ./internal/expr
	$(GO) test -run='^$$' -fuzz=FuzzResidualFilterParity -fuzztime=$(FUZZTIME) ./internal/exec

# Coverage with a ratchet on the incremental-Debug core: the scoring
# and ranking layers carry state across batches, so untested carry
# paths are where silent staleness bugs would live. Thresholds sit a
# few points under current coverage (influence 72%, ranker 92%) —
# raise them when coverage rises, never lower them.
cover:
	@for want in "./internal/influence:68" "./internal/ranker:88"; do \
		pkg=$${want%%:*}; min=$${want##*:}; \
		pct=$$($(GO) test -short -coverprofile=cover.out $$pkg | grep -o 'coverage: [0-9.]*' | cut -d' ' -f2); \
		if [ -z "$$pct" ]; then echo "cover: no coverage reported for $$pkg"; exit 1; fi; \
		if awk -v p="$$pct" -v m="$$min" 'BEGIN{exit !(p < m)}'; then \
			echo "cover: $$pkg at $$pct% is under the $$min% ratchet"; exit 1; \
		fi; \
		echo "cover: $$pkg $$pct% (ratchet $$min%)"; \
	done

# The CI gate: build, vet, formatting, the short test suite, a fuzz
# smoke pass, and the durability and request-lifecycle fault suites.
check: build vet fmt-check short fuzz-smoke test-crash test-chaos test-memcap

# Full benchmark sweep with allocation counts.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# Record the perf trajectory: run the root figure benchmarks and write
# ns/op + B/op + allocs/op per bench as JSON. Check the file in so each
# PR's numbers diff against the last; override the output name with
# BENCH_OUT=file.json when recording a new PR's numbers.
BENCH_OUT ?= BENCH_PR10.json
bench-json:
	@out=$$(mktemp); \
	$(GO) test -run='^$$' -bench=. -benchmem -short . > $$out || { cat $$out; rm -f $$out; exit 1; }; \
	$(GO) run ./cmd/benchjson < $$out > $(BENCH_OUT); rm -f $$out
	@echo "wrote $(BENCH_OUT)"

# The hardware-bound scan kernels: unrolled bitset word loops, the
# masked float-fold crossover, and the end-to-end residual/masked
# filter benchmarks that ride on them.
bench-kernels:
	$(GO) test -run='^$$' -bench='BenchmarkIter|BenchmarkAndCountWith|BenchmarkOrCountWith' -benchmem ./internal/bitset
	$(GO) test -run='^$$' -bench='BenchmarkFoldMasked' -benchmem ./internal/agg
	$(GO) test -run='^$$' -bench='BenchmarkResidualFilter|BenchmarkOrChainShortCircuit|BenchmarkMaskedAggregation' -benchmem .

# Just the scoring hot path: the paper's interactivity claim lives here.
bench-hot:
	$(GO) test -run='^$$' -bench='BenchmarkInfluenceLOO|BenchmarkFigure6RankedPredicates' -benchmem .
	$(GO) test -run='^$$' -bench='BenchmarkRank|BenchmarkEpsWithout' -benchmem ./internal/influence
	$(GO) test -run='^$$' -bench='BenchmarkScorePredicate|BenchmarkRankAll' -benchmem ./internal/ranker
	$(GO) test -run='^$$' -bench='BenchmarkMatching' -benchmem ./internal/predicate
