// Package expr defines the scalar expression AST shared by the SQL
// parser, the query executor, and the predicate machinery, together with
// a NULL-aware (three-valued logic) evaluator.
//
// Expressions are resolved against a schema once (binding column names
// to positions) and then evaluated row-at-a-time against []engine.Value
// slices, which is how the executor scans tables.
package expr

import (
	"fmt"
	"strings"

	"repro/internal/engine"
)

// Expr is a scalar expression node.
type Expr interface {
	// Resolve binds column references against the schema; it must be
	// called (once) before Eval.
	Resolve(schema engine.Schema) error
	// Eval evaluates the expression against one row.
	Eval(row []engine.Value) (engine.Value, error)
	// String renders the expression as SQL.
	String() string
	// Columns appends the names of referenced columns to dst.
	Columns(dst []string) []string
}

// ---------------------------------------------------------------------
// Column references and literals

// Col is a reference to a named column.
type Col struct {
	Name  string
	Index int // resolved position; -1 until Resolve
}

// NewCol returns an unresolved column reference.
func NewCol(name string) *Col { return &Col{Name: name, Index: -1} }

// Resolve implements Expr.
func (c *Col) Resolve(schema engine.Schema) error {
	i := schema.ColIndex(c.Name)
	if i < 0 {
		return fmt.Errorf("expr: unknown column %q (schema %s)", c.Name, schema)
	}
	c.Index = i
	return nil
}

// Eval implements Expr.
func (c *Col) Eval(row []engine.Value) (engine.Value, error) {
	if c.Index < 0 || c.Index >= len(row) {
		return engine.Null, fmt.Errorf("expr: column %q not resolved", c.Name)
	}
	return row[c.Index], nil
}

// String implements Expr.
func (c *Col) String() string { return QuoteIdent(c.Name) }

// sqlReserved are the words the parser treats as structure after an
// expression or identifier position; a column or alias spelled like one
// must be quoted to round-trip through SQL text.
var sqlReserved = map[string]bool{
	"select": true, "from": true, "where": true, "group": true,
	"having": true, "order": true, "limit": true, "as": true,
	"and": true, "or": true, "not": true, "in": true, "like": true,
	"between": true, "is": true, "asc": true, "desc": true, "by": true,
	"null": true, "distinct": true, "true": true, "false": true,
}

// QuoteIdent renders an identifier as SQL: bare when it is a plain
// unreserved word ([A-Za-z_][A-Za-z0-9_]*), double-quoted otherwise —
// names with spaces, punctuation, a leading digit, or a reserved
// spelling would otherwise re-parse as different syntax. Names
// containing a double quote cannot be represented in this dialect (the
// lexer has no quote escape); the parser can never produce one, so
// they only arise from programmatic construction and render best-effort.
func QuoteIdent(name string) string {
	plain := name != ""
	for i, r := range name {
		switch {
		case r == '_' || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z'):
		case '0' <= r && r <= '9':
			if i == 0 {
				plain = false
			}
		default:
			plain = false
		}
		if !plain {
			break
		}
	}
	if plain && !sqlReserved[strings.ToLower(name)] {
		return name
	}
	return `"` + name + `"`
}

// Columns implements Expr.
func (c *Col) Columns(dst []string) []string { return append(dst, c.Name) }

// Lit is a literal value.
type Lit struct {
	Val engine.Value
}

// NewLit wraps a value as a literal expression.
func NewLit(v engine.Value) *Lit { return &Lit{Val: v} }

// Int returns an integer literal.
func Int(i int64) *Lit { return NewLit(engine.NewInt(i)) }

// Float returns a float literal.
func Float(f float64) *Lit { return NewLit(engine.NewFloat(f)) }

// Str returns a string literal.
func Str(s string) *Lit { return NewLit(engine.NewString(s)) }

// Resolve implements Expr.
func (l *Lit) Resolve(engine.Schema) error { return nil }

// Eval implements Expr.
func (l *Lit) Eval([]engine.Value) (engine.Value, error) { return l.Val, nil }

// String implements Expr.
func (l *Lit) String() string { return l.Val.SQL() }

// Columns implements Expr.
func (l *Lit) Columns(dst []string) []string { return dst }

// ---------------------------------------------------------------------
// Operators

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "=", OpNeq: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR",
}

// String returns the SQL spelling of the operator.
func (op BinOp) String() string { return binOpNames[op] }

// IsComparison reports whether the operator yields a boolean from two
// scalar operands.
func (op BinOp) IsComparison() bool { return op >= OpEq && op <= OpGe }

// IsLogic reports whether the operator is AND/OR.
func (op BinOp) IsLogic() bool { return op == OpAnd || op == OpOr }

// Bin is a binary operation.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// NewBin builds a binary expression.
func NewBin(op BinOp, l, r Expr) *Bin { return &Bin{Op: op, L: l, R: r} }

// Resolve implements Expr.
func (b *Bin) Resolve(schema engine.Schema) error {
	if err := b.L.Resolve(schema); err != nil {
		return err
	}
	return b.R.Resolve(schema)
}

// boolValue converts a value to a three-valued boolean:
// (value, known). NULL is (false, false).
func boolValue(v engine.Value) (bool, bool) {
	if v.IsNull() {
		return false, false
	}
	return v.Bool(), true
}

// Eval implements Expr with SQL three-valued logic for comparisons and
// AND/OR, and NULL-propagating arithmetic.
func (b *Bin) Eval(row []engine.Value) (engine.Value, error) {
	if b.Op.IsLogic() {
		lv, err := b.L.Eval(row)
		if err != nil {
			return engine.Null, err
		}
		return b.applyLogic(lv, func() (engine.Value, error) { return b.R.Eval(row) })
	}

	lv, err := b.L.Eval(row)
	if err != nil {
		return engine.Null, err
	}
	rv, err := b.R.Eval(row)
	if err != nil {
		return engine.Null, err
	}
	return b.apply(lv, rv)
}

// applyLogic evaluates AND/OR with SQL three-valued logic over an
// already-evaluated left operand and a lazily-evaluated right operand
// (preserving short-circuit behavior). Shared by Eval and the compiled
// evaluator.
func (b *Bin) applyLogic(lv engine.Value, evalR func() (engine.Value, error)) (engine.Value, error) {
	lb, lk := boolValue(lv)
	// Short-circuit where 3VL permits.
	if b.Op == OpAnd && lk && !lb {
		return engine.NewBool(false), nil
	}
	if b.Op == OpOr && lk && lb {
		return engine.NewBool(true), nil
	}
	rv, err := evalR()
	if err != nil {
		return engine.Null, err
	}
	rb, rk := boolValue(rv)
	switch b.Op {
	case OpAnd:
		switch {
		case lk && rk:
			return engine.NewBool(lb && rb), nil
		case (lk && !lb) || (rk && !rb):
			return engine.NewBool(false), nil
		default:
			return engine.Null, nil
		}
	default: // OpOr
		switch {
		case lk && rk:
			return engine.NewBool(lb || rb), nil
		case (lk && lb) || (rk && rb):
			return engine.NewBool(true), nil
		default:
			return engine.Null, nil
		}
	}
}

// apply evaluates the non-logic operators over already-evaluated
// operands. It is shared by Eval and the compiled evaluator (compile.go)
// so both paths have one source of truth for comparison and arithmetic
// semantics.
func (b *Bin) apply(lv, rv engine.Value) (engine.Value, error) {
	if lv.IsNull() || rv.IsNull() {
		return engine.Null, nil
	}

	if b.Op.IsComparison() {
		c, err := engine.Compare(lv, rv)
		if err != nil {
			return engine.Null, fmt.Errorf("expr: %s: %w", b, err)
		}
		var out bool
		switch b.Op {
		case OpEq:
			out = c == 0
		case OpNeq:
			out = c != 0
		case OpLt:
			out = c < 0
		case OpLe:
			out = c <= 0
		case OpGt:
			out = c > 0
		case OpGe:
			out = c >= 0
		}
		return engine.NewBool(out), nil
	}

	// Arithmetic. String + string concatenates; otherwise numeric.
	if b.Op == OpAdd && lv.T == engine.TString && rv.T == engine.TString {
		return engine.NewString(lv.S + rv.S), nil
	}
	if !lv.T.IsNumeric() || !rv.T.IsNumeric() {
		return engine.Null, fmt.Errorf("expr: %s: non-numeric operands %s, %s", b, lv.T, rv.T)
	}
	// Integer arithmetic stays integral except for division.
	if lv.T == engine.TInt && rv.T == engine.TInt && b.Op != OpDiv {
		li, ri := lv.I, rv.I
		switch b.Op {
		case OpAdd:
			return engine.NewInt(li + ri), nil
		case OpSub:
			return engine.NewInt(li - ri), nil
		case OpMul:
			return engine.NewInt(li * ri), nil
		case OpMod:
			if ri == 0 {
				return engine.Null, nil
			}
			return engine.NewInt(li % ri), nil
		}
	}
	lf, rf := lv.Float(), rv.Float()
	switch b.Op {
	case OpAdd:
		return engine.NewFloat(lf + rf), nil
	case OpSub:
		return engine.NewFloat(lf - rf), nil
	case OpMul:
		return engine.NewFloat(lf * rf), nil
	case OpDiv:
		if rf == 0 {
			return engine.Null, nil
		}
		return engine.NewFloat(lf / rf), nil
	case OpMod:
		// Modulo truncates both operands; guard the TRUNCATED divisor —
		// a fractional rf in (-1, 1) is non-zero as a float but becomes
		// 0 as an integer, and `% 0` is a runtime panic, not an error.
		li, ri := int64(lf), int64(rf)
		if ri == 0 {
			return engine.Null, nil
		}
		return engine.NewFloat(float64(li % ri)), nil
	}
	return engine.Null, fmt.Errorf("expr: unsupported operator %v", b.Op)
}

// String implements Expr.
func (b *Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Columns implements Expr.
func (b *Bin) Columns(dst []string) []string {
	return b.R.Columns(b.L.Columns(dst))
}

// Not is logical negation with 3VL (NOT NULL = NULL).
type Not struct {
	X Expr
}

// NewNot negates an expression.
func NewNot(x Expr) *Not { return &Not{X: x} }

// Resolve implements Expr.
func (n *Not) Resolve(schema engine.Schema) error { return n.X.Resolve(schema) }

// Eval implements Expr.
func (n *Not) Eval(row []engine.Value) (engine.Value, error) {
	v, err := n.X.Eval(row)
	if err != nil {
		return engine.Null, err
	}
	b, known := boolValue(v)
	if !known {
		return engine.Null, nil
	}
	return engine.NewBool(!b), nil
}

// String implements Expr.
func (n *Not) String() string { return fmt.Sprintf("NOT %s", n.X) }

// Columns implements Expr.
func (n *Not) Columns(dst []string) []string { return n.X.Columns(dst) }

// Neg is arithmetic negation.
type Neg struct {
	X Expr
}

// NewNeg negates a numeric expression.
func NewNeg(x Expr) *Neg { return &Neg{X: x} }

// Resolve implements Expr.
func (n *Neg) Resolve(schema engine.Schema) error { return n.X.Resolve(schema) }

// Eval implements Expr.
func (n *Neg) Eval(row []engine.Value) (engine.Value, error) {
	v, err := n.X.Eval(row)
	if err != nil || v.IsNull() {
		return engine.Null, err
	}
	switch v.T {
	case engine.TInt:
		return engine.NewInt(-v.I), nil
	case engine.TFloat:
		return engine.NewFloat(-v.F), nil
	default:
		if v.T.IsNumeric() {
			return engine.NewFloat(-v.Float()), nil
		}
		return engine.Null, fmt.Errorf("expr: cannot negate %s", v.T)
	}
}

// String implements Expr.
func (n *Neg) String() string {
	// A nested unary must parenthesize: "--f" lexes as two operators
	// (and fails to parse), not as negate-twice.
	switch n.X.(type) {
	case *Neg, *Not:
		return fmt.Sprintf("-(%s)", n.X)
	}
	return fmt.Sprintf("-%s", n.X)
}

// Columns implements Expr.
func (n *Neg) Columns(dst []string) []string { return n.X.Columns(dst) }

// ---------------------------------------------------------------------
// SQL-specific predicates

// In tests membership in a literal list.
type In struct {
	X      Expr
	List   []Expr
	Invert bool
}

// Resolve implements Expr.
func (in *In) Resolve(schema engine.Schema) error {
	if err := in.X.Resolve(schema); err != nil {
		return err
	}
	for _, e := range in.List {
		if err := e.Resolve(schema); err != nil {
			return err
		}
	}
	return nil
}

// Eval implements Expr.
func (in *In) Eval(row []engine.Value) (engine.Value, error) {
	xv, err := in.X.Eval(row)
	if err != nil {
		return engine.Null, err
	}
	return in.apply(xv, func(i int) (engine.Value, error) { return in.List[i].Eval(row) })
}

// apply evaluates the membership test over an already-evaluated operand
// and lazily-evaluated list elements (preserving the early exit on
// match). Shared by Eval and the compiled evaluator.
func (in *In) apply(xv engine.Value, evalElem func(i int) (engine.Value, error)) (engine.Value, error) {
	if xv.IsNull() {
		return engine.Null, nil
	}
	sawNull := false
	for i := range in.List {
		ev, err := evalElem(i)
		if err != nil {
			return engine.Null, err
		}
		if ev.IsNull() {
			sawNull = true
			continue
		}
		if engine.Equal(xv, ev) {
			return engine.NewBool(!in.Invert), nil
		}
	}
	if sawNull {
		return engine.Null, nil
	}
	return engine.NewBool(in.Invert), nil
}

// String implements Expr.
func (in *In) String() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	op := "IN"
	if in.Invert {
		op = "NOT IN"
	}
	return fmt.Sprintf("%s %s (%s)", in.X, op, strings.Join(parts, ", "))
}

// Columns implements Expr.
func (in *In) Columns(dst []string) []string {
	dst = in.X.Columns(dst)
	for _, e := range in.List {
		dst = e.Columns(dst)
	}
	return dst
}

// Between tests lo <= x <= hi.
type Between struct {
	X, Lo, Hi Expr
	Invert    bool
}

// Resolve implements Expr.
func (b *Between) Resolve(schema engine.Schema) error {
	for _, e := range []Expr{b.X, b.Lo, b.Hi} {
		if err := e.Resolve(schema); err != nil {
			return err
		}
	}
	return nil
}

// Eval implements Expr.
func (b *Between) Eval(row []engine.Value) (engine.Value, error) {
	xv, err := b.X.Eval(row)
	if err != nil {
		return engine.Null, err
	}
	lo, err := b.Lo.Eval(row)
	if err != nil {
		return engine.Null, err
	}
	hi, err := b.Hi.Eval(row)
	if err != nil {
		return engine.Null, err
	}
	return b.apply(xv, lo, hi)
}

// apply evaluates the range test over already-evaluated operands.
// Shared by Eval and the compiled evaluator.
func (b *Between) apply(xv, lo, hi engine.Value) (engine.Value, error) {
	if xv.IsNull() || lo.IsNull() || hi.IsNull() {
		return engine.Null, nil
	}
	cl, err := engine.Compare(xv, lo)
	if err != nil {
		return engine.Null, err
	}
	ch, err := engine.Compare(xv, hi)
	if err != nil {
		return engine.Null, err
	}
	in := cl >= 0 && ch <= 0
	return engine.NewBool(in != b.Invert), nil
}

// String implements Expr.
func (b *Between) String() string {
	op := "BETWEEN"
	if b.Invert {
		op = "NOT BETWEEN"
	}
	return fmt.Sprintf("%s %s %s AND %s", b.X, op, b.Lo, b.Hi)
}

// Columns implements Expr.
func (b *Between) Columns(dst []string) []string {
	return b.Hi.Columns(b.Lo.Columns(b.X.Columns(dst)))
}

// IsNull tests x IS [NOT] NULL.
type IsNull struct {
	X      Expr
	Invert bool
}

// Resolve implements Expr.
func (n *IsNull) Resolve(schema engine.Schema) error { return n.X.Resolve(schema) }

// Eval implements Expr.
func (n *IsNull) Eval(row []engine.Value) (engine.Value, error) {
	v, err := n.X.Eval(row)
	if err != nil {
		return engine.Null, err
	}
	return engine.NewBool(v.IsNull() != n.Invert), nil
}

// String implements Expr.
func (n *IsNull) String() string {
	if n.Invert {
		return fmt.Sprintf("%s IS NOT NULL", n.X)
	}
	return fmt.Sprintf("%s IS NULL", n.X)
}

// Columns implements Expr.
func (n *IsNull) Columns(dst []string) []string { return n.X.Columns(dst) }

// Like matches SQL LIKE patterns (% and _ wildcards), case-sensitively.
type Like struct {
	X       Expr
	Pattern string
	Invert  bool
}

// Resolve implements Expr.
func (l *Like) Resolve(schema engine.Schema) error { return l.X.Resolve(schema) }

// likeMatch implements LIKE with memoization-free backtracking; patterns
// in this system are short (predicates over memo fields).
func likeMatch(s, pat string) bool {
	// Iterative two-pointer algorithm with backtracking on '%'.
	si, pi := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

// Eval implements Expr.
func (l *Like) Eval(row []engine.Value) (engine.Value, error) {
	v, err := l.X.Eval(row)
	if err != nil {
		return engine.Null, err
	}
	if v.IsNull() {
		return engine.Null, nil
	}
	return engine.NewBool(likeMatch(v.Str(), l.Pattern) != l.Invert), nil
}

// String implements Expr.
func (l *Like) String() string {
	op := "LIKE"
	if l.Invert {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("%s %s '%s'", l.X, op, strings.ReplaceAll(l.Pattern, "'", "''"))
}

// Columns implements Expr.
func (l *Like) Columns(dst []string) []string { return l.X.Columns(dst) }

// ---------------------------------------------------------------------
// Helpers

// And combines expressions with AND; it returns nil for no arguments and
// skips nil arguments.
func And(exprs ...Expr) Expr {
	var out Expr
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = NewBin(OpAnd, out, e)
		}
	}
	return out
}

// EvalBool evaluates e as a WHERE-clause predicate: NULL counts as false.
func EvalBool(e Expr, row []engine.Value) (bool, error) {
	v, err := e.Eval(row)
	if err != nil {
		return false, err
	}
	b, known := boolValue(v)
	return known && b, nil
}
