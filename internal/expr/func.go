package expr

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/engine"
)

// Func is a scalar function call. Supported functions are registered in
// scalarFuncs below; aggregate function calls are parsed into
// sqlparse.AggCall, not into Func.
type Func struct {
	Name string
	Args []Expr
}

// NewFunc builds a function call expression.
func NewFunc(name string, args ...Expr) *Func {
	return &Func{Name: strings.ToLower(name), Args: args}
}

// scalarImpl evaluates a scalar function over already-evaluated
// arguments. NULL handling is done by the implementation so functions
// like coalesce can see NULLs.
type scalarImpl struct {
	minArgs, maxArgs int // maxArgs < 0 means variadic
	fn               func(args []engine.Value) (engine.Value, error)
}

// nullIfAnyNull wraps a strict function: any NULL argument yields NULL.
func strict(fn func(args []engine.Value) (engine.Value, error)) func([]engine.Value) (engine.Value, error) {
	return func(args []engine.Value) (engine.Value, error) {
		for _, a := range args {
			if a.IsNull() {
				return engine.Null, nil
			}
		}
		return fn(args)
	}
}

func math1(f func(float64) float64) scalarImpl {
	return scalarImpl{1, 1, strict(func(a []engine.Value) (engine.Value, error) {
		return engine.NewFloat(f(a[0].Float())), nil
	})}
}

var scalarFuncs = map[string]scalarImpl{
	"abs": {1, 1, strict(func(a []engine.Value) (engine.Value, error) {
		if a[0].T == engine.TInt {
			i := a[0].I
			if i < 0 {
				i = -i
			}
			return engine.NewInt(i), nil
		}
		return engine.NewFloat(math.Abs(a[0].Float())), nil
	})},
	"floor": math1(math.Floor),
	"ceil":  math1(math.Ceil),
	"round": math1(math.Round),
	"sqrt":  math1(math.Sqrt),
	"exp":   math1(math.Exp),
	"ln":    math1(math.Log),
	"log10": math1(math.Log10),
	"sign": {1, 1, strict(func(a []engine.Value) (engine.Value, error) {
		f := a[0].Float()
		switch {
		case f > 0:
			return engine.NewInt(1), nil
		case f < 0:
			return engine.NewInt(-1), nil
		default:
			return engine.NewInt(0), nil
		}
	})},
	// bucket(x, w) = floor(x/w)*w — used for windowed group-bys
	// (e.g. 30-minute windows over an epoch column).
	"bucket": {2, 2, strict(func(a []engine.Value) (engine.Value, error) {
		w := a[1].Float()
		if w == 0 {
			return engine.Null, nil
		}
		f := math.Floor(a[0].Float()/w) * w
		if a[0].T == engine.TInt && a[1].T == engine.TInt {
			return engine.NewInt(int64(f)), nil
		}
		return engine.NewFloat(f), nil
	})},
	"lower": {1, 1, strict(func(a []engine.Value) (engine.Value, error) {
		return engine.NewString(strings.ToLower(a[0].Str())), nil
	})},
	"upper": {1, 1, strict(func(a []engine.Value) (engine.Value, error) {
		return engine.NewString(strings.ToUpper(a[0].Str())), nil
	})},
	"trim": {1, 1, strict(func(a []engine.Value) (engine.Value, error) {
		return engine.NewString(strings.TrimSpace(a[0].Str())), nil
	})},
	"length": {1, 1, strict(func(a []engine.Value) (engine.Value, error) {
		return engine.NewInt(int64(len(a[0].Str()))), nil
	})},
	// substr(s, start1, len) with 1-based start, like SQL.
	"substr": {3, 3, strict(func(a []engine.Value) (engine.Value, error) {
		s := a[0].Str()
		start := int(a[1].Int()) - 1
		n := int(a[2].Int())
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			start = len(s)
		}
		end := start + n
		if end > len(s) {
			end = len(s)
		}
		if end < start {
			end = start
		}
		return engine.NewString(s[start:end]), nil
	})},
	"coalesce": {1, -1, func(a []engine.Value) (engine.Value, error) {
		for _, v := range a {
			if !v.IsNull() {
				return v, nil
			}
		}
		return engine.Null, nil
	}},
	"year": {1, 1, strict(func(a []engine.Value) (engine.Value, error) {
		return engine.NewInt(int64(a[0].Time().Year())), nil
	})},
	"month": {1, 1, strict(func(a []engine.Value) (engine.Value, error) {
		return engine.NewInt(int64(a[0].Time().Month())), nil
	})},
	"day": {1, 1, strict(func(a []engine.Value) (engine.Value, error) {
		return engine.NewInt(int64(a[0].Time().Day())), nil
	})},
	"hour": {1, 1, strict(func(a []engine.Value) (engine.Value, error) {
		return engine.NewInt(int64(a[0].Time().Hour())), nil
	})},
	"minute": {1, 1, strict(func(a []engine.Value) (engine.Value, error) {
		return engine.NewInt(int64(a[0].Time().Minute())), nil
	})},
	"dow": {1, 1, strict(func(a []engine.Value) (engine.Value, error) {
		return engine.NewInt(int64(a[0].Time().Weekday())), nil
	})},
	// epoch(ts) — unix seconds of a time value.
	"epoch": {1, 1, strict(func(a []engine.Value) (engine.Value, error) {
		if a[0].T != engine.TTime {
			return engine.Null, fmt.Errorf("expr: epoch() wants time, got %s", a[0].T)
		}
		return engine.NewInt(a[0].I), nil
	})},
}

// IsScalarFunc reports whether name is a registered scalar function.
func IsScalarFunc(name string) bool {
	_, ok := scalarFuncs[strings.ToLower(name)]
	return ok
}

// Resolve implements Expr.
func (f *Func) Resolve(schema engine.Schema) error {
	impl, ok := scalarFuncs[f.Name]
	if !ok {
		return fmt.Errorf("expr: unknown function %q", f.Name)
	}
	if len(f.Args) < impl.minArgs || (impl.maxArgs >= 0 && len(f.Args) > impl.maxArgs) {
		return fmt.Errorf("expr: %s takes %d..%d args, got %d", f.Name, impl.minArgs, impl.maxArgs, len(f.Args))
	}
	for _, a := range f.Args {
		if err := a.Resolve(schema); err != nil {
			return err
		}
	}
	return nil
}

// Eval implements Expr.
func (f *Func) Eval(row []engine.Value) (engine.Value, error) {
	impl, ok := scalarFuncs[f.Name]
	if !ok {
		return engine.Null, fmt.Errorf("expr: unknown function %q", f.Name)
	}
	args := make([]engine.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := a.Eval(row)
		if err != nil {
			return engine.Null, err
		}
		args[i] = v
	}
	return impl.fn(args)
}

// String implements Expr.
func (f *Func) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", f.Name, strings.Join(parts, ", "))
}

// Columns implements Expr.
func (f *Func) Columns(dst []string) []string {
	for _, a := range f.Args {
		dst = a.Columns(dst)
	}
	return dst
}
