package expr

import (
	"math"
	"testing"
	"time"

	"repro/internal/engine"
)

var timeSchema = engine.NewSchema("ts", engine.TTime, "s", engine.TString, "f", engine.TFloat)

func timeRow() []engine.Value {
	return []engine.Value{
		engine.NewTime(time.Date(2008, 3, 28, 14, 45, 9, 0, time.UTC)),
		engine.NewString("  pad  "),
		engine.NewFloat(4),
	}
}

func evalOn(t *testing.T, e Expr, schema engine.Schema, row []engine.Value) engine.Value {
	t.Helper()
	if err := e.Resolve(schema); err != nil {
		t.Fatalf("resolve %s: %v", e, err)
	}
	v, err := e.Eval(row)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return v
}

func TestTimeFunctions(t *testing.T) {
	row := timeRow()
	cases := []struct {
		fn   string
		want int64
	}{
		{"year", 2008}, {"month", 3}, {"day", 28}, {"hour", 14},
		{"minute", 45}, {"dow", 5}, // 2008-03-28 was a Friday
	}
	for _, c := range cases {
		got := evalOn(t, NewFunc(c.fn, NewCol("ts")), timeSchema, row)
		if got.Int() != c.want {
			t.Errorf("%s = %v, want %d", c.fn, got, c.want)
		}
	}
	epoch := evalOn(t, NewFunc("epoch", NewCol("ts")), timeSchema, row)
	if epoch.Int() != row[0].I {
		t.Errorf("epoch = %v", epoch)
	}
}

func TestEpochOnNonTimeErrors(t *testing.T) {
	e := NewFunc("epoch", NewCol("f"))
	if err := e.Resolve(timeSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Eval(timeRow()); err == nil {
		t.Error("epoch(float) should error")
	}
}

func TestMathFunctions(t *testing.T) {
	row := timeRow()
	cases := []struct {
		fn   string
		want float64
	}{
		{"sqrt", 2}, {"exp", math.Exp(4)}, {"ln", math.Log(4)}, {"log10", math.Log10(4)},
	}
	for _, c := range cases {
		got := evalOn(t, NewFunc(c.fn, NewCol("f")), timeSchema, row)
		if math.Abs(got.Float()-c.want) > 1e-12 {
			t.Errorf("%s(4) = %v, want %v", c.fn, got, c.want)
		}
	}
	trimmed := evalOn(t, NewFunc("trim", NewCol("s")), timeSchema, row)
	if trimmed.Str() != "pad" {
		t.Errorf("trim: %q", trimmed.Str())
	}
}

func TestStrictFunctionsPropagateNull(t *testing.T) {
	row := []engine.Value{engine.Null, engine.Null, engine.Null}
	for _, fn := range []string{"abs", "sqrt", "lower", "year", "bucket"} {
		var e Expr
		if fn == "bucket" {
			e = NewFunc(fn, NewCol("f"), Int(10))
		} else {
			e = NewFunc(fn, NewCol("f"))
		}
		if err := e.Resolve(timeSchema); err != nil {
			t.Fatal(err)
		}
		v, err := e.Eval(row)
		if err != nil || !v.IsNull() {
			t.Errorf("%s(NULL) = %v, %v", fn, v, err)
		}
	}
}

func TestBucketZeroWidthIsNull(t *testing.T) {
	v := evalOn(t, NewFunc("bucket", NewCol("f"), Int(0)), timeSchema, timeRow())
	if !v.IsNull() {
		t.Errorf("bucket width 0: %v", v)
	}
}

func TestArithmeticTypeErrors(t *testing.T) {
	e := NewBin(OpMul, NewCol("s"), Int(2))
	if err := e.Resolve(timeSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Eval(timeRow()); err == nil {
		t.Error("string * int should error")
	}
	neg := NewNeg(NewCol("s"))
	if err := neg.Resolve(timeSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := neg.Eval(timeRow()); err == nil {
		t.Error("-string should error")
	}
}

func TestComparisonTypeErrorSurfaces(t *testing.T) {
	e := NewBin(OpLt, NewCol("s"), Int(3))
	if err := e.Resolve(timeSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Eval(timeRow()); err == nil {
		t.Error("string < int should error")
	}
}

func TestModSemantics(t *testing.T) {
	v := evalOn(t, NewBin(OpMod, Float(7.5), Int(2)), timeSchema, timeRow())
	if v.Float() != 1 { // int64(7.5) % 2
		t.Errorf("7.5 %% 2 = %v", v)
	}
	nullMod := evalOn(t, NewBin(OpMod, Int(7), Int(0)), timeSchema, timeRow())
	if !nullMod.IsNull() {
		t.Errorf("7 %% 0 = %v", nullMod)
	}
}

func TestInWithNullList(t *testing.T) {
	// 5 IN (1, NULL) → NULL; 1 IN (1, NULL) → TRUE.
	in1 := &In{X: Int(5), List: []Expr{Int(1), NewLit(engine.Null)}}
	v := evalOn(t, in1, timeSchema, timeRow())
	if !v.IsNull() {
		t.Errorf("5 IN (1, NULL) = %v", v)
	}
	in2 := &In{X: Int(1), List: []Expr{Int(1), NewLit(engine.Null)}}
	v = evalOn(t, in2, timeSchema, timeRow())
	if v.IsNull() || !v.Bool() {
		t.Errorf("1 IN (1, NULL) = %v", v)
	}
}

func TestBetweenNullBound(t *testing.T) {
	b := &Between{X: Int(5), Lo: NewLit(engine.Null), Hi: Int(10)}
	v := evalOn(t, b, timeSchema, timeRow())
	if !v.IsNull() {
		t.Errorf("5 BETWEEN NULL AND 10 = %v", v)
	}
	inv := &Between{X: Int(5), Lo: Int(1), Hi: Int(3), Invert: true}
	v = evalOn(t, inv, timeSchema, timeRow())
	if !v.Bool() {
		t.Errorf("5 NOT BETWEEN 1 AND 3 = %v", v)
	}
}

func TestLikeNullAndStringRendering(t *testing.T) {
	l := &Like{X: NewCol("f"), Pattern: "%"}
	row := []engine.Value{engine.Null, engine.Null, engine.Null}
	if err := l.Resolve(timeSchema); err != nil {
		t.Fatal(err)
	}
	v, err := l.Eval(row)
	if err != nil || !v.IsNull() {
		t.Errorf("NULL LIKE: %v %v", v, err)
	}
	l2 := &Like{X: NewCol("s"), Pattern: "it's", Invert: true}
	if got := l2.String(); got != "s NOT LIKE 'it''s'" {
		t.Errorf("like rendering: %q", got)
	}
}

func TestStringRenderings(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{NewNeg(NewCol("f")), "-f"},
		{NewNot(NewCol("f")), "NOT f"},
		{&IsNull{X: NewCol("f")}, "f IS NULL"},
		{&IsNull{X: NewCol("f"), Invert: true}, "f IS NOT NULL"},
		{&In{X: NewCol("f"), List: []Expr{Int(1), Int(2)}}, "f IN (1, 2)"},
		{&In{X: NewCol("f"), List: []Expr{Int(1)}, Invert: true}, "f NOT IN (1)"},
		{&Between{X: NewCol("f"), Lo: Int(1), Hi: Int(2)}, "f BETWEEN 1 AND 2"},
		{NewFunc("bucket", NewCol("f"), Int(10)), "bucket(f, 10)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String: %q, want %q", got, c.want)
		}
	}
}

func TestColumnsOnCompoundExprs(t *testing.T) {
	e := &Between{X: NewCol("f"), Lo: NewCol("ts"), Hi: Int(10)}
	cols := e.Columns(nil)
	if len(cols) != 2 {
		t.Errorf("between columns: %v", cols)
	}
	in := &In{X: NewCol("s"), List: []Expr{NewCol("f")}}
	if got := in.Columns(nil); len(got) != 2 {
		t.Errorf("in columns: %v", got)
	}
	fn := NewFunc("substr", NewCol("s"), Int(1), Int(2))
	if got := fn.Columns(nil); len(got) != 1 {
		t.Errorf("func columns: %v", got)
	}
}
