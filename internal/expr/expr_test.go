package expr

import (
	"testing"
	"testing/quick"

	"repro/internal/engine"
)

var testSchema = engine.NewSchema(
	"a", engine.TInt,
	"b", engine.TFloat,
	"s", engine.TString,
	"n", engine.TInt, // holds NULLs in test rows
)

func row(a int64, b float64, s string) []engine.Value {
	return []engine.Value{engine.NewInt(a), engine.NewFloat(b), engine.NewString(s), engine.Null}
}

func mustEval(t *testing.T, e Expr, r []engine.Value) engine.Value {
	t.Helper()
	if err := e.Resolve(testSchema); err != nil {
		t.Fatalf("resolve %s: %v", e, err)
	}
	v, err := e.Eval(r)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	r := row(7, 2.5, "x")
	cases := []struct {
		e    Expr
		want float64
	}{
		{NewBin(OpAdd, NewCol("a"), Int(3)), 10},
		{NewBin(OpSub, NewCol("a"), Int(3)), 4},
		{NewBin(OpMul, NewCol("b"), Int(4)), 10},
		{NewBin(OpDiv, NewCol("a"), Int(2)), 3.5},
		{NewBin(OpMod, NewCol("a"), Int(4)), 3},
		{NewNeg(NewCol("a")), -7},
	}
	for _, c := range cases {
		got := mustEval(t, c.e, r)
		if got.Float() != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestIntArithmeticStaysIntegral(t *testing.T) {
	v := mustEval(t, NewBin(OpAdd, NewCol("a"), Int(1)), row(7, 0, ""))
	if v.T != engine.TInt || v.I != 8 {
		t.Errorf("int+int = %v (%v)", v, v.T)
	}
}

func TestDivisionByZeroIsNull(t *testing.T) {
	v := mustEval(t, NewBin(OpDiv, NewCol("a"), Int(0)), row(7, 0, ""))
	if !v.IsNull() {
		t.Errorf("7/0 = %v, want NULL", v)
	}
}

func TestStringConcat(t *testing.T) {
	v := mustEval(t, NewBin(OpAdd, NewCol("s"), Str("!")), row(0, 0, "hi"))
	if v.Str() != "hi!" {
		t.Errorf("concat: %q", v.Str())
	}
}

func TestComparisons(t *testing.T) {
	r := row(7, 2.5, "x")
	cases := []struct {
		op   BinOp
		want bool
	}{
		{OpEq, false}, {OpNeq, true}, {OpLt, false}, {OpLe, false}, {OpGt, true}, {OpGe, true},
	}
	for _, c := range cases {
		e := NewBin(c.op, NewCol("a"), Int(5))
		if got := mustEval(t, e, r); got.Bool() != c.want {
			t.Errorf("%s: %v", e, got)
		}
	}
}

// Three-valued logic truth tables.
func TestThreeValuedLogic(t *testing.T) {
	tru := NewLit(engine.NewBool(true))
	fal := NewLit(engine.NewBool(false))
	null := NewCol("n") // evaluates to NULL
	r := row(0, 0, "")

	type tc struct {
		e    Expr
		null bool
		want bool
	}
	cases := []tc{
		{NewBin(OpAnd, tru, null), true, false},
		{NewBin(OpAnd, null, tru), true, false},
		{NewBin(OpAnd, fal, null), false, false}, // FALSE AND NULL = FALSE
		{NewBin(OpAnd, null, fal), false, false},
		{NewBin(OpOr, tru, null), false, true}, // TRUE OR NULL = TRUE
		{NewBin(OpOr, null, tru), false, true},
		{NewBin(OpOr, fal, null), true, false},
		{NewNot(null), true, false},
		{NewBin(OpEq, null, Int(1)), true, false}, // NULL = 1 → NULL
	}
	for _, c := range cases {
		got := mustEval(t, c.e, r)
		if got.IsNull() != c.null {
			t.Errorf("%s: null=%v, want %v", c.e, got.IsNull(), c.null)
			continue
		}
		if !c.null && got.Bool() != c.want {
			t.Errorf("%s = %v, want %v", c.e, got.Bool(), c.want)
		}
	}
}

func TestInBetweenLikeIsNull(t *testing.T) {
	r := row(7, 2.5, "REATTRIBUTION TO SPOUSE")
	in := &In{X: NewCol("a"), List: []Expr{Int(1), Int(7)}}
	if !mustEval(t, in, r).Bool() {
		t.Error("7 IN (1,7) should be true")
	}
	notIn := &In{X: NewCol("a"), List: []Expr{Int(1)}, Invert: true}
	if !mustEval(t, notIn, r).Bool() {
		t.Error("7 NOT IN (1) should be true")
	}
	between := &Between{X: NewCol("b"), Lo: Int(2), Hi: Int(3)}
	if !mustEval(t, between, r).Bool() {
		t.Error("2.5 BETWEEN 2 AND 3 should be true")
	}
	like := &Like{X: NewCol("s"), Pattern: "%SPOUSE"}
	if !mustEval(t, like, r).Bool() {
		t.Error("LIKE %SPOUSE should match")
	}
	like2 := &Like{X: NewCol("s"), Pattern: "REATT%TO%"}
	if !mustEval(t, like2, r).Bool() {
		t.Error("LIKE with two %% should match")
	}
	like3 := &Like{X: NewCol("s"), Pattern: "_EATTRIBUTION%"}
	if !mustEval(t, like3, r).Bool() {
		t.Error("LIKE with _ should match")
	}
	isn := &IsNull{X: NewCol("n")}
	if !mustEval(t, isn, r).Bool() {
		t.Error("n IS NULL should be true")
	}
	isnn := &IsNull{X: NewCol("a"), Invert: true}
	if !mustEval(t, isnn, r).Bool() {
		t.Error("a IS NOT NULL should be true")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"abc", "abc", true},
		{"abc", "a%", true},
		{"abc", "%c", true},
		{"abc", "%b%", true},
		{"abc", "a_c", true},
		{"abc", "a_b", false},
		{"", "%", true},
		{"", "_", false},
		{"aaa", "a%a", true},
		{"mississippi", "%iss%ppi", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.pat); got != c.want {
			t.Errorf("likeMatch(%q,%q) = %v", c.s, c.pat, got)
		}
	}
}

func TestScalarFuncs(t *testing.T) {
	r := row(-7, 2.6, "Hello")
	cases := []struct {
		e    Expr
		want string
	}{
		{NewFunc("abs", NewCol("a")), "7"},
		{NewFunc("floor", NewCol("b")), "2"},
		{NewFunc("ceil", NewCol("b")), "3"},
		{NewFunc("round", NewCol("b")), "3"},
		{NewFunc("lower", NewCol("s")), "hello"},
		{NewFunc("upper", NewCol("s")), "HELLO"},
		{NewFunc("length", NewCol("s")), "5"},
		{NewFunc("substr", NewCol("s"), Int(2), Int(3)), "ell"},
		{NewFunc("coalesce", NewCol("n"), Int(9)), "9"},
		{NewFunc("sign", NewCol("a")), "-1"},
		{NewFunc("bucket", Int(1799), Int(1800)), "0"},
		{NewFunc("bucket", Int(1800), Int(1800)), "1800"},
		{NewFunc("bucket", Int(3700), Int(1800)), "3600"},
	}
	for _, c := range cases {
		got := mustEval(t, c.e, r)
		if got.String() != c.want {
			t.Errorf("%s = %v, want %s", c.e, got, c.want)
		}
	}
}

func TestFuncErrors(t *testing.T) {
	bad := NewFunc("nosuchfunc", Int(1))
	if err := bad.Resolve(testSchema); err == nil {
		t.Error("unknown function resolved")
	}
	wrongArity := NewFunc("abs")
	if err := wrongArity.Resolve(testSchema); err == nil {
		t.Error("abs() with no args resolved")
	}
	if err := NewCol("missing").Resolve(testSchema); err == nil {
		t.Error("unknown column resolved")
	}
}

func TestColumnsCollection(t *testing.T) {
	e := NewBin(OpAnd,
		NewBin(OpGt, NewCol("a"), Int(1)),
		&Like{X: NewCol("s"), Pattern: "x%"})
	cols := e.Columns(nil)
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "s" {
		t.Errorf("Columns: %v", cols)
	}
}

// Property: NOT (NOT p) ≡ p for non-NULL booleans.
func TestDoubleNegation(t *testing.T) {
	f := func(a int64, threshold int64) bool {
		p := NewBin(OpGt, NewCol("a"), Int(threshold))
		np := NewNot(NewNot(p))
		if err := np.Resolve(testSchema); err != nil {
			return false
		}
		r := row(a, 0, "")
		v1, err1 := p.Eval(r)
		v2, err2 := np.Eval(r)
		return err1 == nil && err2 == nil && v1.Bool() == v2.Bool()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: comparison trichotomy — exactly one of <, =, > holds.
func TestTrichotomy(t *testing.T) {
	f := func(a, b int64) bool {
		r := row(a, 0, "")
		lt := mustEvalQuick(NewBin(OpLt, NewCol("a"), Int(b)), r)
		eq := mustEvalQuick(NewBin(OpEq, NewCol("a"), Int(b)), r)
		gt := mustEvalQuick(NewBin(OpGt, NewCol("a"), Int(b)), r)
		n := 0
		for _, v := range []bool{lt, eq, gt} {
			if v {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mustEvalQuick(e Expr, r []engine.Value) bool {
	if err := e.Resolve(testSchema); err != nil {
		return false
	}
	v, err := e.Eval(r)
	return err == nil && v.Bool()
}

func TestEvalBoolTreatsNullAsFalse(t *testing.T) {
	e := NewBin(OpGt, NewCol("n"), Int(0))
	if err := e.Resolve(testSchema); err != nil {
		t.Fatal(err)
	}
	ok, err := EvalBool(e, row(1, 1, ""))
	if err != nil || ok {
		t.Errorf("NULL > 0 as WHERE: ok=%v err=%v", ok, err)
	}
}

func TestAndHelper(t *testing.T) {
	if And() != nil {
		t.Error("And() should be nil")
	}
	p := NewBin(OpGt, NewCol("a"), Int(0))
	if And(nil, p) != p {
		t.Error("And(nil, p) should be p")
	}
	combined := And(p, p)
	if _, ok := combined.(*Bin); !ok {
		t.Errorf("And(p,p): %T", combined)
	}
}
