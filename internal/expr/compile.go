package expr

import (
	"fmt"

	"repro/internal/engine"
)

// This file implements the compiled row evaluator behind the vectorized
// query executor (internal/exec). The boxed interpreter evaluates
// expressions against a materialized []engine.Value row, which forces
// the executor to copy every column of every row it scans; function
// calls additionally allocate an argument slice per evaluation. Compile
// lowers a resolved expression into a closure tree that reads column
// values straight out of the source by (row, column) index and reuses
// preallocated argument buffers, so steady-state evaluation touches only
// the columns the expression references and allocates nothing.
//
// Semantics are shared with the interpreter, not duplicated: operator
// and predicate nodes delegate to the same value-level apply helpers
// Eval uses (Bin.apply/applyLogic, In.apply, Between.apply, scalarImpl
// functions), so the two paths cannot drift. The randomized parity test
// in internal/exec pins compiled-vs-interpreted equivalence end to end.

// ColumnSource provides direct access to stored values by row id and
// column index. *engine.Table satisfies it.
type ColumnSource interface {
	Value(row, col int) engine.Value
}

// Evaluator is a compiled expression, evaluated against one source row
// by id. Evaluators may reuse internal buffers and are therefore NOT
// safe for concurrent use — compile one per goroutine.
type Evaluator func(row int) (engine.Value, error)

// Compile lowers a resolved expression into an Evaluator over src. The
// second result is false when the expression contains a node Compile
// does not support (callers fall back to row-at-a-time Eval); every
// expression the parser produces today is supported, provided it has
// been resolved.
func Compile(e Expr, src ColumnSource) (Evaluator, bool) {
	switch n := e.(type) {
	case *Col:
		if n.Index < 0 {
			return nil, false // unresolved: fall back, Eval reports the error
		}
		idx := n.Index
		return func(row int) (engine.Value, error) {
			return src.Value(row, idx), nil
		}, true

	case *Lit:
		v := n.Val
		return func(int) (engine.Value, error) { return v, nil }, true

	case *Bin:
		l, ok := Compile(n.L, src)
		if !ok {
			return nil, false
		}
		r, ok := Compile(n.R, src)
		if !ok {
			return nil, false
		}
		if n.Op.IsLogic() {
			return func(row int) (engine.Value, error) {
				lv, err := l(row)
				if err != nil {
					return engine.Null, err
				}
				return n.applyLogic(lv, func() (engine.Value, error) { return r(row) })
			}, true
		}
		return func(row int) (engine.Value, error) {
			lv, err := l(row)
			if err != nil {
				return engine.Null, err
			}
			rv, err := r(row)
			if err != nil {
				return engine.Null, err
			}
			return n.apply(lv, rv)
		}, true

	case *Not:
		x, ok := Compile(n.X, src)
		if !ok {
			return nil, false
		}
		return func(row int) (engine.Value, error) {
			v, err := x(row)
			if err != nil {
				return engine.Null, err
			}
			b, known := boolValue(v)
			if !known {
				return engine.Null, nil
			}
			return engine.NewBool(!b), nil
		}, true

	case *Neg:
		x, ok := Compile(n.X, src)
		if !ok {
			return nil, false
		}
		return func(row int) (engine.Value, error) {
			v, err := x(row)
			if err != nil || v.IsNull() {
				return engine.Null, err
			}
			switch v.T {
			case engine.TInt:
				return engine.NewInt(-v.I), nil
			case engine.TFloat:
				return engine.NewFloat(-v.F), nil
			default:
				if v.T.IsNumeric() {
					return engine.NewFloat(-v.Float()), nil
				}
				return engine.Null, fmt.Errorf("expr: cannot negate %s", v.T)
			}
		}, true

	case *Func:
		impl, ok := scalarFuncs[n.Name]
		if !ok {
			return nil, false // unknown function: fall back, Eval reports it
		}
		args := make([]Evaluator, len(n.Args))
		for i, a := range n.Args {
			c, ok := Compile(a, src)
			if !ok {
				return nil, false
			}
			args[i] = c
		}
		buf := make([]engine.Value, len(args))
		return func(row int) (engine.Value, error) {
			for i, a := range args {
				v, err := a(row)
				if err != nil {
					return engine.Null, err
				}
				buf[i] = v
			}
			return impl.fn(buf)
		}, true

	case *In:
		x, ok := Compile(n.X, src)
		if !ok {
			return nil, false
		}
		list := make([]Evaluator, len(n.List))
		for i, e := range n.List {
			c, ok := Compile(e, src)
			if !ok {
				return nil, false
			}
			list[i] = c
		}
		return func(row int) (engine.Value, error) {
			xv, err := x(row)
			if err != nil {
				return engine.Null, err
			}
			return n.apply(xv, func(i int) (engine.Value, error) { return list[i](row) })
		}, true

	case *Between:
		x, ok := Compile(n.X, src)
		if !ok {
			return nil, false
		}
		lo, ok := Compile(n.Lo, src)
		if !ok {
			return nil, false
		}
		hi, ok := Compile(n.Hi, src)
		if !ok {
			return nil, false
		}
		return func(row int) (engine.Value, error) {
			xv, err := x(row)
			if err != nil {
				return engine.Null, err
			}
			lov, err := lo(row)
			if err != nil {
				return engine.Null, err
			}
			hiv, err := hi(row)
			if err != nil {
				return engine.Null, err
			}
			return n.apply(xv, lov, hiv)
		}, true

	case *IsNull:
		x, ok := Compile(n.X, src)
		if !ok {
			return nil, false
		}
		return func(row int) (engine.Value, error) {
			v, err := x(row)
			if err != nil {
				return engine.Null, err
			}
			return engine.NewBool(v.IsNull() != n.Invert), nil
		}, true

	case *Like:
		x, ok := Compile(n.X, src)
		if !ok {
			return nil, false
		}
		return func(row int) (engine.Value, error) {
			v, err := x(row)
			if err != nil {
				return engine.Null, err
			}
			if v.IsNull() {
				return engine.Null, nil
			}
			return engine.NewBool(likeMatch(v.Str(), n.Pattern) != n.Invert), nil
		}, true

	default:
		return nil, false
	}
}

// CompileBool wraps Compile for WHERE-style evaluation: NULL counts as
// false, matching EvalBool.
func CompileBool(e Expr, src ColumnSource) (func(row int) (bool, error), bool) {
	ev, ok := Compile(e, src)
	if !ok {
		return nil, false
	}
	return func(row int) (bool, error) {
		v, err := ev(row)
		if err != nil {
			return false, err
		}
		b, known := boolValue(v)
		return known && b, nil
	}, true
}
