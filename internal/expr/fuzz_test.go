// Package expr_test (external): the fuzz target needs sqlparse to turn
// fuzzed text into expressions, and sqlparse imports expr — an internal
// test package would cycle.
package expr_test

import (
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/sqlparse"
)

// FuzzCompileParity pins the compiled evaluator (the vectorized
// executor's group-key and argument source) to the boxed interpreter:
// for any expression the parser accepts and the schema resolves, both
// must produce the same value — or fail — on every row, including NULL,
// NaN and ±0.0 cells. The two paths share their value-level operator
// helpers by construction; this guards the parts that are NOT shared
// (column access, argument buffers, short-circuiting).
//
// The fuzzer drives the expression text and one row's cell values; the
// fixed rows below keep the edge cases (NULLs everywhere, NaN, -0.0,
// empty string) in every run.
func FuzzCompileParity(f *testing.F) {
	type seed struct {
		expr string
		i    int64
		fv   float64
		s    string
	}
	for _, s := range []seed{
		{"i + f", 1, 0.25, "a"},
		{"f > 0 AND s = 'a'", -2, math.Inf(1), ""},
		{"bucket(f, 3)", 0, -0.0, "xy"},
		{"s LIKE 'a%' OR i BETWEEN -1 AND 1", 5, 2.5, "ab"},
		{"lower(s) IN ('a', '') AND f IS NOT NULL", 0, 0, "A"},
		{"-i * (f - 2)", 3, 0.75, "b"},
		{"epoch(t) > 100", 7, 1.5, "c"},
	} {
		f.Add(s.expr, s.i, s.fv, s.s)
	}
	f.Fuzz(func(t *testing.T, exprText string, iv int64, fv float64, sv string) {
		e, err := sqlparse.ParseExpr(exprText)
		if err != nil {
			return
		}
		tbl, err := engine.NewTable("p", engine.Schema{
			{Name: "i", Type: engine.TInt},
			{Name: "f", Type: engine.TFloat},
			{Name: "s", Type: engine.TString},
			{Name: "t", Type: engine.TTime},
		})
		if err != nil {
			t.Fatal(err)
		}
		rows := [][]engine.Value{
			{engine.NewInt(iv), engine.NewFloat(fv), engine.NewString(sv), engine.NewTimeUnix(iv & 0xffff)},
			{engine.Null, engine.Null, engine.Null, engine.Null},
			{engine.NewInt(0), engine.NewFloat(math.NaN()), engine.NewString(""), engine.NewTimeUnix(0)},
			{engine.NewInt(-1), engine.NewFloat(math.Copysign(0, -1)), engine.Null, engine.NewTimeUnix(3600)},
		}
		for _, r := range rows {
			if _, err := tbl.AppendRow(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Resolve(tbl.Schema()); err != nil {
			return // unknown column/function: both paths are unreachable
		}
		ev, ok := expr.Compile(e, tbl)
		if !ok {
			// Compile documents full coverage of parser output; a
			// resolved expression it refuses is a lowering gap.
			t.Fatalf("Compile refused resolved expression %q", e)
		}
		row := make([]engine.Value, tbl.NumCols())
		for r := 0; r < tbl.NumRows(); r++ {
			tbl.RowInto(r, row)
			want, wantErr := e.Eval(row)
			got, gotErr := ev(r)
			if (wantErr != nil) != (gotErr != nil) {
				t.Fatalf("expr %q row %d: error disagreement: interpreter=%v compiled=%v", e, r, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if want.Key() != got.Key() {
				t.Fatalf("expr %q row %d: interpreter=%s compiled=%s", e, r, want, got)
			}
		}
	})
}
