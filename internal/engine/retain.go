package engine

import (
	"errors"
	"fmt"
	"strings"
	"unsafe"
)

// Retention drops whole head segments from a table family so an
// unbounded append stream runs at bounded memory. Only sealed segments
// are droppable (the tail always survives), and drops are whole
// segments, so the dropped row count is a multiple of SegRows — and,
// because SegRows >= 64, of the bitset word size. That is the row-id
// rebase contract the incremental layers build on: local row id r of
// the retained version corresponds to id r + dropped of the old
// version, and any carried bitmap (lineage bitsets, clause masks,
// argument NULL words) rebases by dropping whole leading words.
// Carried state that still references dropped rows cannot rebase;
// those consumers (exec.Advance, core.DebugAdvance) detect the base
// change and fall back to a full recompute with a recorded plan
// reason.

// RetentionPolicy selects how many head segments RetainTail may drop.
// The zero policy drops nothing. Both bounds may be combined; a
// segment is dropped only when every configured bound allows it.
type RetentionPolicy struct {
	// MaxRows, when > 0, keeps at least the newest MaxRows rows: a head
	// segment is dropped only if at least MaxRows rows remain after it.
	MaxRows int
	// TimeCol/Cutoff, when TimeCol is non-empty, drop a head segment
	// only if every non-NULL value of the (numeric) column is below
	// Cutoff — the age horizon, with the caller mapping wall-clock age
	// to the column's unit (e.g. unix seconds).
	TimeCol string
	Cutoff  float64
}

// RetainStats reports what a retention pass did and what remains.
type RetainStats struct {
	DroppedSegments  int
	DroppedRows      int
	RetainedSegments int // sealed segments still held (tail excluded)
	RetainedRows     int
	Base             int // the new version's Base()
}

// RetainTail applies the policy to this table version, returning a new
// version with the dropped head segments removed and row ids rebased
// (see Base). Like AppendBatch it is copy-on-write and linear: the
// receiver and everything derived from it stay valid, and only the
// newest version may be retained (ErrStaleAppend otherwise). When the
// policy drops nothing the receiver itself is returned.
func (t *Table) RetainTail(pol RetentionPolicy) (nt *Table, stats0 RetainStats, err error) {
	// A TimeCol policy over an out-of-core segment without a zone map
	// faults its chunk; a load failure surfaces as the retention error.
	defer CatchSegmentLoad(&err)
	vc := t.viewCache()
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if t.pub != vc.pub {
		return nil, RetainStats{}, fmt.Errorf("engine: table %s: %w (retention on superseded version)", t.name, ErrStaleAppend)
	}
	drop := t.dropCountLocked(pol)
	stats := RetainStats{
		DroppedSegments:  drop,
		DroppedRows:      drop << t.bits,
		RetainedSegments: len(t.sealed) - drop,
		RetainedRows:     t.nrows - drop<<t.bits,
		Base:             t.base + drop<<t.bits,
	}
	if drop == 0 {
		return t, stats, nil
	}
	nt = &Table{
		name: t.name, schema: t.schema,
		sealed: t.sealed[drop:], tail: t.tail,
		nrows: stats.RetainedRows, base: stats.Base,
		bits: t.bits, mask: t.mask,
		views: vc,
	}
	vc.pub++
	nt.pub = vc.pub
	vc.curBase = nt.base
	// Snapshot caches are windows of the old base; drop them (they
	// rebuild cheaply from the per-segment chunks, which survive).
	vc.fsnap = nil
	vc.dsnap = nil
	return nt, stats, nil
}

// dropCountLocked computes how many head segments the policy allows
// dropping. Caller holds views.mu.
func (t *Table) dropCountLocked(pol RetentionPolicy) int {
	if pol.MaxRows <= 0 && pol.TimeCol == "" {
		return 0 // the zero policy drops nothing
	}
	max := len(t.sealed)
	if pol.MaxRows > 0 {
		byRows := (t.nrows - pol.MaxRows) >> t.bits
		if byRows < max {
			max = byRows
		}
	}
	if max < 0 {
		max = 0
	}
	if pol.TimeCol == "" {
		return max
	}
	ci := t.schema.ColIndex(pol.TimeCol)
	if ci < 0 || !t.schema[ci].Type.IsNumeric() {
		return 0
	}
	segWords := segWordsOf(t.bits)
	drop := 0
	for drop < max {
		if !t.sealed[drop].allBelowCutoff(t.name, ci, segWords, pol.Cutoff) {
			break
		}
		drop++
	}
	return drop
}

// allBelowCutoff reports whether every non-NULL value of numeric
// column ci in the segment is < cutoff (the TimeCol retention test).
// NaN keeps the segment, conservatively. A faultable segment answers
// from its zone map when one is attached — no disk touched — and
// otherwise faults the chunk under a transient pin.
func (s *segment) allBelowCutoff(tname string, ci, segWords int, cutoff float64) bool {
	var vals []float64
	var null []uint64
	if s.faultable() {
		if s.zones != nil {
			z := s.zones[ci]
			if z.NaNCount > 0 {
				return false
			}
			if z.NullCount == z.Rows || !z.HasRange {
				// No finite values (all NULL): vacuously old.
				return z.NaNCount == 0
			}
			return z.Max < cutoff
		}
		var release func()
		vals, null, release, _ = s.pinFloat(tname, ci)
		defer release()
	} else {
		ch := s.ensureFloat(ci, segWords)
		vals, null = ch.vals, ch.null
	}
	for i, f := range vals {
		if null[i>>6]&(1<<(uint(i)&63)) != 0 {
			continue
		}
		if !(f < cutoff) { // NaN keeps the segment, conservatively
			return false
		}
	}
	return true
}

// Retain applies a retention policy to the named table and atomically
// republishes the retained version under the same name — the
// catalog-level counterpart of DB.Append. In-flight queries keep their
// immutable snapshots of the old version (whose segments stay alive
// until those readers finish); queries started after Retain returns
// see the rebased window.
func (db *DB) Retain(name string, pol RetentionPolicy) (*Table, RetainStats, error) {
	key := strings.ToLower(name)
	for {
		db.mu.RLock()
		t, ok := db.tables[key]
		db.mu.RUnlock()
		if !ok {
			return nil, RetainStats{}, fmt.Errorf("engine: no table %q", name)
		}
		nt, stats, err := t.RetainTail(pol)
		if errors.Is(err, ErrStaleAppend) {
			// A concurrent DB.Append/Retain republished a newer version;
			// retry against it (same recovery as DB.Append). If the
			// registered pointer is unchanged, the family was mutated
			// outside the catalog — surface the error, retrying would
			// never converge.
			db.mu.RLock()
			cur := db.tables[key]
			db.mu.RUnlock()
			if cur == t {
				return nil, RetainStats{}, err
			}
			continue
		}
		if err != nil {
			return nil, RetainStats{}, err
		}
		if nt == t {
			return t, stats, nil
		}
		db.mu.Lock()
		if db.tables[key] == t {
			db.tables[key] = nt
			db.mu.Unlock()
			return nt, stats, nil
		}
		db.mu.Unlock()
		// Lost a race with a concurrent Append/Retain republish; the
		// family moved on, so retry against the newest version.
	}
}

// valueBytes is the in-memory size of one boxed Value.
const valueBytes = int(unsafe.Sizeof(Value{}))

// MemStats approximates this version's resident storage: boxed segment
// and tail values plus whatever decode chunks have been built. It is
// an estimate (string bodies and map overhead are not traversed), but
// it moves faithfully with segment count, which is what retention
// monitoring needs.
func (t *Table) MemStats() (segments int, bytes int) {
	vc := t.viewCache()
	vc.mu.Lock()
	defer vc.mu.Unlock()
	ncols := len(t.schema)
	segRows := 1 << t.bits
	segments = len(t.sealed)
	tailRows := t.nrows - segments<<t.bits
	for _, seg := range t.sealed {
		if seg.faultable() {
			// Out-of-core segment: nothing resident here — its faulted
			// chunks are accounted by the loader's pool, not the table.
			continue
		}
		bytes += segRows * ncols * valueBytes
		for c := 0; c < ncols; c++ {
			if ch := seg.fchunk[c]; ch != nil {
				bytes += len(ch.vals)*8 + len(ch.null)*8
			}
			if ch := seg.dchunk[c]; ch != nil {
				bytes += len(ch.codes) * 4
			}
		}
	}
	bytes += tailRows * ncols * valueBytes
	if tailRows > 0 {
		segments++
	}
	return segments, bytes
}
