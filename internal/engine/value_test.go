package engine

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		t    Type
		f    float64
		s    string
		b    bool
		null bool
	}{
		{Null, TNull, math.NaN(), "NULL", false, true},
		{NewBool(true), TBool, 1, "true", true, false},
		{NewBool(false), TBool, 0, "false", false, false},
		{NewInt(-42), TInt, -42, "-42", true, false},
		{NewFloat(2.5), TFloat, 2.5, "2.5", true, false},
		{NewString("hi"), TString, math.NaN(), "hi", false, false},
		{NewTimeUnix(1000), TTime, 1000, "1970-01-01T00:16:40Z", true, false},
	}
	for _, c := range cases {
		if c.v.T != c.t {
			t.Errorf("%v: type %v, want %v", c.v, c.v.T, c.t)
		}
		if c.v.IsNull() != c.null {
			t.Errorf("%v: IsNull %v", c.v, c.v.IsNull())
		}
		got := c.v.Float()
		if math.IsNaN(c.f) != math.IsNaN(got) || (!math.IsNaN(c.f) && got != c.f) {
			t.Errorf("%v: Float %v, want %v", c.v, got, c.f)
		}
		if c.v.String() != c.s {
			t.Errorf("%v: String %q, want %q", c.v, c.v.String(), c.s)
		}
		if c.v.Bool() != c.b {
			t.Errorf("%v: Bool %v, want %v", c.v, c.v.Bool(), c.b)
		}
	}
}

func TestValueFloatParsesNumericStrings(t *testing.T) {
	if got := NewString(" 3.5 ").Float(); got != 3.5 {
		t.Errorf("Float of ' 3.5 ' = %v", got)
	}
	if got := NewString("abc").Float(); !math.IsNaN(got) {
		t.Errorf("Float of 'abc' = %v, want NaN", got)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
		err  bool
	}{
		{NewInt(1), NewInt(2), -1, false},
		{NewInt(2), NewInt(2), 0, false},
		{NewFloat(2.5), NewInt(2), 1, false},
		{NewBool(true), NewInt(1), 0, false},
		{NewString("a"), NewString("b"), -1, false},
		{NewString("b"), NewString("b"), 0, false},
		{Null, Null, 0, false},
		{Null, NewInt(5), -1, false},
		{NewInt(5), Null, 1, false},
		{NewString("a"), NewInt(1), 0, true},
		{NewTimeUnix(10), NewTimeUnix(20), -1, false},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if (err != nil) != c.err {
			t.Errorf("Compare(%v,%v) err=%v, want err=%v", c.a, c.b, err, c.err)
			continue
		}
		if !c.err && sign(got) != c.want {
			t.Errorf("Compare(%v,%v) = %d, want sign %d", c.a, c.b, got, c.want)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

// Property: Compare is antisymmetric for ints.
func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		x, err1 := Compare(NewInt(a), NewInt(b))
		y, err2 := Compare(NewInt(b), NewInt(a))
		return err1 == nil && err2 == nil && sign(x) == -sign(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Key equality tracks Equal for numerics across types.
func TestKeyMatchesEqual(t *testing.T) {
	f := func(a int64) bool {
		vi, vf := NewInt(a), NewFloat(float64(a))
		return Equal(vi, vf) == (vi.Key() == vf.Key())
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: ParseValue(String()) round-trips ints and floats.
func TestParseValueRoundTrip(t *testing.T) {
	fInt := func(a int64) bool {
		v, err := ParseValue(NewInt(a).String(), TInt)
		return err == nil && v.I == a
	}
	if err := quick.Check(fInt, nil); err != nil {
		t.Errorf("int round trip: %v", err)
	}
	fFloat := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		v, err := ParseValue(NewFloat(a).String(), TFloat)
		return err == nil && v.F == a
	}
	if err := quick.Check(fFloat, nil); err != nil {
		t.Errorf("float round trip: %v", err)
	}
}

func TestParseValue(t *testing.T) {
	if v, err := ParseValue("", TInt); err != nil || !v.IsNull() {
		t.Errorf("empty int: %v %v", v, err)
	}
	if v, err := ParseValue("", TString); err != nil || v.S != "" {
		t.Errorf("empty string: %v %v", v, err)
	}
	if _, err := ParseValue("xyz", TInt); err == nil {
		t.Error("expected error parsing xyz as int")
	}
	if v, err := ParseValue("2004-02-28", TTime); err != nil || v.Time().Day() != 28 {
		t.Errorf("date parse: %v %v", v, err)
	}
	if v, err := ParseValue("true", TBool); err != nil || !v.Bool() {
		t.Errorf("bool parse: %v %v", v, err)
	}
}

func TestInferType(t *testing.T) {
	cases := []struct {
		samples []string
		want    Type
	}{
		{[]string{"1", "2", "3"}, TInt},
		{[]string{"1.5", "2"}, TFloat},
		{[]string{"true", "false"}, TBool},
		{[]string{"2004-02-28", "2004-03-01"}, TTime},
		{[]string{"abc", "1"}, TString},
		{[]string{"", ""}, TString},
		{[]string{"1", ""}, TInt},
	}
	for _, c := range cases {
		if got := InferType(c.samples); got != c.want {
			t.Errorf("InferType(%v) = %v, want %v", c.samples, got, c.want)
		}
	}
}

func TestSQLQuoting(t *testing.T) {
	if got := NewString("O'Brien").SQL(); got != "'O''Brien'" {
		t.Errorf("SQL quoting: %q", got)
	}
	if got := NewInt(7).SQL(); got != "7" {
		t.Errorf("int SQL: %q", got)
	}
}

func TestTimeValue(t *testing.T) {
	now := time.Date(2012, 8, 1, 12, 0, 0, 0, time.UTC)
	v := NewTime(now)
	if !v.Time().Equal(now) {
		t.Errorf("time round trip: %v != %v", v.Time(), now)
	}
}
