package engine

import (
	"math"
	"testing"
)

// TestWithoutOutOfRangeIDs is a regression test: Without used to
// pre-size its keep slice as nrows-len(rows), which panics with a
// negative capacity when the removal set contains more ids than the
// table has rows (e.g. ids from a different, larger table).
func TestWithoutOutOfRangeIDs(t *testing.T) {
	tbl := testTable(t) // 5 rows
	rm := map[int]bool{0: true, 2: true}
	for id := 100; id < 110; id++ { // more out-of-range ids than rows
		rm[id] = true
	}
	wo := tbl.Without(rm)
	if wo.NumRows() != 3 {
		t.Fatalf("Without rows = %d, want 3", wo.NumRows())
	}
	for i := 0; i < wo.NumRows(); i++ {
		if id := wo.Value(i, 0).Int(); id == 1 || id == 3 {
			t.Errorf("Without kept excluded id %d", id)
		}
	}
	// Negative ids must be ignored too.
	if got := tbl.Without(map[int]bool{-1: true}).NumRows(); got != 5 {
		t.Errorf("Without with negative id dropped rows: %d", got)
	}
}

func TestFloatView(t *testing.T) {
	tbl := MustNewTable("t", NewSchema("x", TFloat, "s", TString))
	tbl.MustAppendRow(NewFloat(1.5), NewString("a"))
	tbl.MustAppendRow(Null, NewString("b"))
	tbl.MustAppendRow(NewFloat(-2), Null)

	fv := tbl.FloatView(0)
	if fv == nil {
		t.Fatal("nil FloatView for float column")
	}
	if fv.V(0) != 1.5 || fv.V(2) != -2 {
		t.Errorf("Vals = %v, %v", fv.V(0), fv.V(2))
	}
	if !math.IsNaN(fv.V(1)) || !fv.IsNull(1) || fv.IsNull(0) {
		t.Error("NULL row not marked")
	}
	if tbl.FloatView(1) != nil {
		t.Error("FloatView of string column should be nil")
	}

	// The view is cached until rows are appended.
	if tbl.FloatView(0) != fv {
		t.Error("view not cached")
	}
	tbl.MustAppendRow(NewFloat(7), NewString("c"))
	fv2 := tbl.FloatView(0)
	if fv2 == fv {
		t.Error("stale view returned after append")
	}
	if fv2.Len() != 4 || fv2.V(3) != 7 {
		t.Errorf("rebuilt view len=%d", fv2.Len())
	}
}

func TestDictView(t *testing.T) {
	tbl := MustNewTable("t", NewSchema("s", TString, "x", TInt))
	for _, s := range []string{"a", "b", "a", "", "c"} {
		tbl.MustAppendRow(NewString(s), NewInt(1))
	}
	tbl.MustAppendRow(Null, NewInt(1))

	dv := tbl.DictView(0)
	if dv == nil {
		t.Fatal("nil DictView for string column")
	}
	if dv.NumValues() != 4 { // a, b, "", c
		t.Fatalf("Values = %v", dv.Values())
	}
	if dv.CodeAt(0) != dv.CodeAt(2) || dv.CodeAt(0) == dv.CodeAt(1) {
		t.Errorf("codes = %v %v %v", dv.CodeAt(0), dv.CodeAt(1), dv.CodeAt(2))
	}
	if dv.CodeAt(5) != -1 {
		t.Error("NULL row should code as -1")
	}
	if dv.Code("a") != dv.CodeAt(0) || dv.Code("zzz") != -1 {
		t.Error("Code lookup mismatch")
	}
	if tbl.DictView(1) != nil {
		t.Error("DictView of int column should be nil")
	}
}

// TestFloatViewExtendsIncrementally pins the streaming tentpole at the
// engine layer: appending rows must extend the tail decoder in place
// (suffix-only work), not discard and rebuild it, and views handed out
// earlier must stay immutable.
func TestFloatViewExtendsIncrementally(t *testing.T) {
	tbl := MustNewTable("t", NewSchema("x", TFloat))
	for i := 0; i < 100; i++ {
		tbl.MustAppendRow(NewFloat(float64(i)))
	}
	fv1 := tbl.FloatView(0)
	e := tbl.views.tailF[0]
	if e == nil || e.built != 100 {
		t.Fatalf("tail decoder = %+v", e)
	}
	tbl.MustAppendRow(Null)
	tbl.MustAppendRow(NewFloat(42))

	fv2 := tbl.FloatView(0)
	if tbl.views.tailF[0] != e {
		t.Fatal("append replaced the tail decoder instead of extending it")
	}
	if e.built != 102 {
		t.Fatalf("decoder built = %d, want 102", e.built)
	}
	if fv2.Len() != 102 || fv2.V(101) != 42 || !fv2.IsNull(100) || !math.IsNaN(fv2.V(100)) {
		t.Fatalf("extended view wrong: len=%d", fv2.Len())
	}
	// The old snapshot is immutable: same length, same bits.
	if fv1.Len() != 100 {
		t.Fatal("old snapshot changed length after append")
	}
	for i := 0; i < 100; i++ {
		if fv1.IsNull(i) {
			t.Fatal("old snapshot gained a NULL bit after append")
		}
	}
	// Same-length requests hit the snapshot cache.
	if tbl.FloatView(0) != fv2 {
		t.Fatal("extended view not cached")
	}
}

// TestDictViewExtendsIncrementally checks append-stable dictionary
// codes, copy-on-grow of the shared code map, and that older snapshots
// bound their dictionary at their own length.
func TestDictViewExtendsIncrementally(t *testing.T) {
	tbl := MustNewTable("t", NewSchema("s", TString))
	for _, s := range []string{"a", "b", "a"} {
		tbl.MustAppendRow(NewString(s))
	}
	dv1 := tbl.DictView(0)
	e := tbl.views.dict[0]
	if dv1.NumValues() != 2 {
		t.Fatalf("Values = %v", dv1.Values())
	}
	tbl.MustAppendRow(NewString("zz")) // new string: first appearance at row 3
	tbl.MustAppendRow(NewString("b"))

	dv2 := tbl.DictView(0)
	if tbl.views.dict[0] != e || e.decoded != 5 {
		t.Fatal("append replaced the canonical dict state instead of extending it")
	}
	if dv2.CodeAt(0) != dv1.CodeAt(0) || dv2.CodeAt(4) != dv1.CodeAt(1) {
		t.Fatal("dictionary codes not append-stable")
	}
	if dv2.Code("zz") != 2 || dv2.NumValues() != 3 {
		t.Fatalf("new string not coded: %v", dv2.Values())
	}
	// The old snapshot must not see the new string (length-bounded Code).
	if dv1.Code("zz") != -1 || dv1.NumValues() != 2 {
		t.Fatal("old snapshot sees a string first appearing after its last row")
	}
}

// TestAppendBatchCopyOnWrite pins the concurrent-ingest contract: the
// batch lands in a new table version, the old version keeps its rows,
// both share the incremental view cache, and stale appends error.
func TestAppendBatchCopyOnWrite(t *testing.T) {
	tbl := MustNewTable("t", NewSchema("x", TFloat, "s", TString))
	for i := 0; i < 10; i++ {
		tbl.MustAppendRow(NewFloat(float64(i)), NewString("a"))
	}
	fv := tbl.FloatView(0) // warm the cache pre-append
	nt, err := tbl.AppendBatch([][]Value{
		{NewFloat(100), NewString("b")},
		{NewFloat(101), Null},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 10 || nt.NumRows() != 12 {
		t.Fatalf("rows: old %d new %d", tbl.NumRows(), nt.NumRows())
	}
	if !tbl.SameFamily(nt) {
		t.Fatal("AppendBatch result not in the same family")
	}
	if nt.Version() <= tbl.Version() {
		t.Fatalf("version not monotone: %d vs %d", nt.Version(), tbl.Version())
	}
	nfv := nt.FloatView(0)
	if nfv.Len() != 12 || nfv.V(10) != 100 {
		t.Fatalf("grown view len=%d", nfv.Len())
	}
	if fv.Len() != 10 {
		t.Fatal("old snapshot grew")
	}
	if e := tbl.views.tailF[0]; e.built != 12 {
		t.Fatalf("tail decoder not extended through the shared cache: built=%d", e.built)
	}
	// Old view still servable at its own length.
	if ofv := tbl.FloatView(0); ofv.Len() != 10 || ofv.V(9) != 9 {
		t.Fatal("old version's view wrong after family growth")
	}

	// Appends are linear: the superseded snapshot refuses both forms.
	if _, err := tbl.AppendBatch([][]Value{{NewFloat(1), NewString("x")}}); err == nil {
		t.Fatal("AppendBatch to stale snapshot should error")
	}
	if _, err := tbl.AppendRow([]Value{NewFloat(1), NewString("x")}); err == nil {
		t.Fatal("AppendRow to stale snapshot should error")
	}
	// A half-bad batch publishes nothing.
	if _, err := nt.AppendBatch([][]Value{{NewFloat(1), NewString("x")}, {NewString("oops"), NewString("y")}}); err == nil {
		t.Fatal("type-bad batch should error")
	}
	if nt.NumRows() != 12 {
		t.Fatal("failed batch changed row count")
	}
}
