package engine

import (
	"math"
	"testing"
)

// TestWithoutOutOfRangeIDs is a regression test: Without used to
// pre-size its keep slice as nrows-len(rows), which panics with a
// negative capacity when the removal set contains more ids than the
// table has rows (e.g. ids from a different, larger table).
func TestWithoutOutOfRangeIDs(t *testing.T) {
	tbl := testTable(t) // 5 rows
	rm := map[int]bool{0: true, 2: true}
	for id := 100; id < 110; id++ { // more out-of-range ids than rows
		rm[id] = true
	}
	wo := tbl.Without(rm)
	if wo.NumRows() != 3 {
		t.Fatalf("Without rows = %d, want 3", wo.NumRows())
	}
	for i := 0; i < wo.NumRows(); i++ {
		if id := wo.Value(i, 0).Int(); id == 1 || id == 3 {
			t.Errorf("Without kept excluded id %d", id)
		}
	}
	// Negative ids must be ignored too.
	if got := tbl.Without(map[int]bool{-1: true}).NumRows(); got != 5 {
		t.Errorf("Without with negative id dropped rows: %d", got)
	}
}

func TestFloatView(t *testing.T) {
	tbl := MustNewTable("t", NewSchema("x", TFloat, "s", TString))
	tbl.MustAppendRow(NewFloat(1.5), NewString("a"))
	tbl.MustAppendRow(Null, NewString("b"))
	tbl.MustAppendRow(NewFloat(-2), Null)

	fv := tbl.FloatView(0)
	if fv == nil {
		t.Fatal("nil FloatView for float column")
	}
	if fv.Vals[0] != 1.5 || fv.Vals[2] != -2 {
		t.Errorf("Vals = %v", fv.Vals)
	}
	if !math.IsNaN(fv.Vals[1]) || !fv.Null.Get(1) || fv.Null.Get(0) {
		t.Error("NULL row not marked")
	}
	if tbl.FloatView(1) != nil {
		t.Error("FloatView of string column should be nil")
	}

	// The view is cached until rows are appended.
	if tbl.FloatView(0) != fv {
		t.Error("view not cached")
	}
	tbl.MustAppendRow(NewFloat(7), NewString("c"))
	fv2 := tbl.FloatView(0)
	if fv2 == fv {
		t.Error("stale view returned after append")
	}
	if len(fv2.Vals) != 4 || fv2.Vals[3] != 7 {
		t.Errorf("rebuilt view = %v", fv2.Vals)
	}
}

func TestDictView(t *testing.T) {
	tbl := MustNewTable("t", NewSchema("s", TString, "x", TInt))
	for _, s := range []string{"a", "b", "a", "", "c"} {
		tbl.MustAppendRow(NewString(s), NewInt(1))
	}
	tbl.MustAppendRow(Null, NewInt(1))

	dv := tbl.DictView(0)
	if dv == nil {
		t.Fatal("nil DictView for string column")
	}
	if len(dv.Values) != 4 { // a, b, "", c
		t.Fatalf("Values = %v", dv.Values)
	}
	if dv.Codes[0] != dv.Codes[2] || dv.Codes[0] == dv.Codes[1] {
		t.Errorf("Codes = %v", dv.Codes)
	}
	if dv.Codes[5] != -1 {
		t.Error("NULL row should code as -1")
	}
	if dv.Code("a") != dv.Codes[0] || dv.Code("zzz") != -1 {
		t.Error("Code lookup mismatch")
	}
	if tbl.DictView(1) != nil {
		t.Error("DictView of int column should be nil")
	}
}
