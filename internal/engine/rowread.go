package engine

// RowReader serves per-row boxed reads (Value, RowInto) over a scan
// loop. Table.Value and Table.RowInto are correct on faultable
// segments but pin the boxed chunk transiently PER ROW — and a chunk
// larger than the buffer pool's budget is evicted on every release, so
// a row loop re-decodes the whole chunk each row. A RowReader instead
// holds one pin per column and swaps it on segment crossings, exactly
// like the typed views' PinSeg, making sequential row loops O(rows)
// regardless of chunk and pool size. Resident segments and the tail
// read straight from memory with no pin at all.
//
// A RowReader is NOT safe for concurrent use — create one per
// goroutine — and MUST be Closed (defer it) so held pins release on
// every exit path, including panics and cancellation. A chunk-load
// failure panics SegmentLoadError, like the typed views; loops that
// surface errors run under CatchSegmentLoad.
type RowReader struct {
	t   *Table
	cur []boxedCursor // one per column, lazily engaged

	faulted  int // pins that missed to disk
	resident int // pins served from memory (pool hit)
}

// boxedCursor is one column's pinned-chunk state.
type boxedCursor struct {
	seg     int // currently pinned segment (-1 = none)
	vals    []Value
	release func()
}

// NewRowReader returns a reader over the table's current rows.
func (t *Table) NewRowReader() *RowReader {
	rr := &RowReader{t: t, cur: make([]boxedCursor, len(t.schema))}
	for c := range rr.cur {
		rr.cur[c].seg = -1
	}
	return rr
}

// Value returns the value at (row, col); the RowReader counterpart of
// Table.Value (and like it, an expr.ColumnSource).
func (rr *RowReader) Value(row, col int) Value {
	t := rr.t
	k := row >> t.bits
	if k < 0 || k >= len(t.sealed) {
		return t.tail[col][row-len(t.sealed)<<t.bits]
	}
	s := t.sealed[k]
	if s.cols != nil {
		return s.cols[col][row&t.mask]
	}
	cur := &rr.cur[col]
	if cur.seg != k {
		if cur.release != nil {
			cur.release()
			cur.release = nil
		}
		vals, release, missed, err := s.loader.PinBoxed(s.streamIdx, col)
		if err != nil {
			panic(&SegmentLoadError{Table: t.name, Seg: s.streamIdx, Col: col, Err: err})
		}
		cur.vals, cur.release, cur.seg = vals, release, k
		if missed {
			rr.faulted++
		} else {
			rr.resident++
		}
	}
	return cur.vals[row&t.mask]
}

// RowInto copies row i into dst (len == NumCols); the RowReader
// counterpart of Table.RowInto.
func (rr *RowReader) RowInto(i int, dst []Value) {
	for c := range dst {
		dst[c] = rr.Value(i, c)
	}
}

// Counters reports how many chunk pins missed to disk vs were served
// resident over the reader's lifetime so far.
func (rr *RowReader) Counters() (faulted, resident int) {
	return rr.faulted, rr.resident
}

// Close releases every held pin. Idempotent.
func (rr *RowReader) Close() {
	for c := range rr.cur {
		if rr.cur[c].release != nil {
			rr.cur[c].release()
			rr.cur[c].release = nil
		}
		rr.cur[c].seg = -1
	}
}

// FloatReader is the typed-view counterpart of RowReader: per-row
// reads of one FloatView through a pin held per segment instead of per
// row. Same contract: one per goroutine, Close on every exit path,
// SegmentLoadError panics on chunk-load failure. On resident chunks it
// adds only a segment-index compare per read.
type FloatReader struct {
	fv          *FloatView
	shift       uint
	mask        int
	seg         int // currently pinned segment (-1 = none)
	vals        []float64
	null        []uint64
	release     func()
	faulted     int
	residentHit int
}

// NewReader returns a per-goroutine reader over the view.
func (f *FloatView) NewReader() *FloatReader {
	return &FloatReader{fv: f, shift: f.bits, mask: f.mask, seg: -1}
}

func (r *FloatReader) load(k int) {
	if r.release != nil {
		r.release()
		r.release = nil
	}
	vals, null, release, missed := r.fv.PinSeg(k)
	r.vals, r.null, r.release, r.seg = vals, null, release, k
	if missed {
		r.faulted++
	} else {
		r.residentHit++
	}
}

// At returns row i's value and NULL flag.
func (r *FloatReader) At(i int) (float64, bool) {
	if k := i >> r.shift; k != r.seg {
		r.load(k)
	}
	off := i & r.mask
	return r.vals[off], r.null[off>>6]&(1<<(uint(off)&63)) != 0
}

// V returns row i's value (NaN when NULL), like FloatView.V.
func (r *FloatReader) V(i int) float64 {
	if k := i >> r.shift; k != r.seg {
		r.load(k)
	}
	return r.vals[i&r.mask]
}

// Chunk pins segment k and returns its value slice and NULL bitmap
// (word j covers rows [k<<bits + 64j, …)) — the batch counterpart of
// At for kernels that fold a whole segment under a filter mask. The
// slices stay valid until the reader pins a different segment or
// closes; callers must not mutate them. The last segment's slices may
// be shorter than a full segment.
func (r *FloatReader) Chunk(k int) (vals []float64, null []uint64) {
	if k != r.seg {
		r.load(k)
	}
	return r.vals, r.null
}

// SegRows returns the rows-per-segment stride of the underlying view.
func (r *FloatReader) SegRows() int { return r.mask + 1 }

// Counters reports chunk pins that missed to disk vs were resident.
func (r *FloatReader) Counters() (faulted, resident int) {
	return r.faulted, r.residentHit
}

// Close releases the held pin. Idempotent.
func (r *FloatReader) Close() {
	if r.release != nil {
		r.release()
		r.release = nil
	}
	r.seg = -1
}

// DictReader is FloatReader's dictionary-code twin.
type DictReader struct {
	dv          *DictView
	shift       uint
	mask        int
	seg         int
	codes       []int32
	release     func()
	faulted     int
	residentHit int
}

// NewReader returns a per-goroutine reader over the view.
func (d *DictView) NewReader() *DictReader {
	return &DictReader{dv: d, shift: d.bits, mask: d.mask, seg: -1}
}

// CodeAt returns row i's dictionary code (-1 = NULL), like
// DictView.CodeAt.
func (r *DictReader) CodeAt(i int) int32 {
	if k := i >> r.shift; k != r.seg {
		if r.release != nil {
			r.release()
			r.release = nil
		}
		codes, release, missed := r.dv.PinSeg(k)
		r.codes, r.release, r.seg = codes, release, k
		if missed {
			r.faulted++
		} else {
			r.residentHit++
		}
	}
	return r.codes[i&r.mask]
}

// Counters reports chunk pins that missed to disk vs were resident.
func (r *DictReader) Counters() (faulted, resident int) {
	return r.faulted, r.residentHit
}

// Close releases the held pin. Idempotent.
func (r *DictReader) Close() {
	if r.release != nil {
		r.release()
		r.release = nil
	}
	r.seg = -1
}
