package engine

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// ReadCSV loads a table from CSV. The first record must be a header of
// column names. When schema is nil, column types are inferred from (up
// to) the first 200 data rows; otherwise the given schema is used and
// must match the header's column count and names positionally.
func ReadCSV(r io.Reader, name string, schema Schema) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = false
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("engine: read csv header: %w", err)
	}
	var records [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("engine: read csv: %w", err)
		}
		records = append(records, rec)
	}
	if schema == nil {
		schema = make(Schema, len(header))
		sampleN := len(records)
		if sampleN > 200 {
			sampleN = 200
		}
		for c, h := range header {
			samples := make([]string, 0, sampleN)
			for i := 0; i < sampleN; i++ {
				if c < len(records[i]) {
					samples = append(samples, records[i][c])
				}
			}
			schema[c] = Column{Name: h, Type: InferType(samples)}
		}
	} else if len(schema) != len(header) {
		return nil, fmt.Errorf("engine: csv has %d columns, schema has %d", len(header), len(schema))
	}
	t, err := NewTable(name, schema)
	if err != nil {
		return nil, err
	}
	t.Grow(len(records))
	row := make([]Value, len(schema))
	for i, rec := range records {
		if len(rec) != len(schema) {
			return nil, fmt.Errorf("engine: csv row %d has %d fields, want %d", i+1, len(rec), len(schema))
		}
		for c, field := range rec {
			v, err := ParseValue(field, schema[c].Type)
			if err != nil {
				return nil, fmt.Errorf("engine: csv row %d col %s: %w", i+1, schema[c].Name, err)
			}
			row[c] = v
		}
		if _, err := t.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// WriteCSV writes the table as CSV with a header row. NULLs render as
// empty fields.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema().Names()); err != nil {
		return err
	}
	rec := make([]string, t.NumCols())
	for i := 0; i < t.NumRows(); i++ {
		for c := 0; c < t.NumCols(); c++ {
			v := t.Value(i, c)
			if v.IsNull() {
				rec[c] = ""
			} else {
				rec[c] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadCSVFile loads a table from a CSV file on disk with inferred types.
func LoadCSVFile(path, name string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, name, nil)
}

// SaveCSVFile writes the table to a CSV file on disk.
func SaveCSVFile(path string, t *Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
