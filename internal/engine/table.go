package engine

import (
	"errors"
	"fmt"
	"sort"
)

// ErrStaleAppend reports a mutation against a superseded table snapshot:
// a newer version of the family has already been published (by an
// append or a retention pass). Callers that lost a publish race
// (engine.DB.Append, DB.Retain) match on it to retry against the
// newest version.
var ErrStaleAppend = errors.New("append to stale snapshot")

// Table is an append-only, in-memory columnar relation stored as
// fixed-size row segments (see segment.go): sealed segments of exactly
// SegRows rows plus a growable tail. Row identifiers are stable under
// appends: row i is always the i'th appended row. Stable identifiers
// are load-bearing for the provenance machinery — lineage sets and
// ground-truth labels are both expressed as row ids into the source
// table. Retention (retain.go) is the one operation that moves ids:
// dropping k head segments rebases every surviving id down by
// k*SegRows, recorded in Base().
type Table struct {
	name   string
	schema Schema
	// sealed are the full segments; segs[k] covers local rows
	// [k<<bits, (k+1)<<bits). tail holds the remaining newest rows,
	// one slice header per column (headers are per-version; the
	// backing arrays are shared with newer versions, which only ever
	// write past this version's nrows).
	sealed []*segment
	tail   [][]Value
	nrows  int
	// base counts stream rows dropped by retention before sealed[0];
	// always a multiple of SegRows.
	base int
	// bits/mask cache the family segment geometry (immutable).
	bits uint
	mask int
	// pub is this version's publication stamp; mutations require it to
	// match the family's counter (linear history).
	pub uint64
	// views caches typed column decodings and family state (see
	// colview.go). Behind a pointer so shallow table copies share it.
	views *tableViews
}

// NewTable creates an empty table with the given name and schema and
// the default segment size. The schema must validate.
func NewTable(name string, schema Schema) (*Table, error) {
	return NewTableSeg(name, schema, DefaultSegmentBits)
}

// NewTableSeg is NewTable with an explicit segment size of 1<<segBits
// rows. segBits must be at least MinSegmentBits (64 rows — one bitset
// word), the invariant that keeps segment boundaries word-aligned in
// every mask and lineage bitmap. Tests force small sizes so append
// chains straddle segment boundaries constantly.
func NewTableSeg(name string, schema Schema, segBits uint) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if segBits < MinSegmentBits {
		return nil, fmt.Errorf("engine: segment bits %d below minimum %d (segments must cover whole bitset words)", segBits, MinSegmentBits)
	}
	t := &Table{
		name:   name,
		schema: schema.Clone(),
		tail:   make([][]Value, len(schema)),
		bits:   segBits,
		mask:   1<<segBits - 1,
		views:  &tableViews{segBits: segBits},
	}
	return t, nil
}

// NewTableSegBase is NewTableSeg for restart recovery: the empty table
// starts with its retention base already advanced to base stream rows,
// as if a retention pass had dropped base/SegRows head segments. Row
// ids appended to it continue the original stream's numbering (local
// row r is stream row r+base), so carried provenance and the
// Base()/Version() contract survive a stop/start cycle. base must be a
// non-negative multiple of the segment size.
func NewTableSegBase(name string, schema Schema, segBits uint, base int) (*Table, error) {
	t, err := NewTableSeg(name, schema, segBits)
	if err != nil {
		return nil, err
	}
	if base < 0 || base&(1<<segBits-1) != 0 {
		return nil, fmt.Errorf("engine: recovery base %d is not a multiple of the segment size %d", base, 1<<segBits)
	}
	t.base = base
	t.views.hw = base
	t.views.curBase = base
	t.views.epoch = base >> segBits
	return t, nil
}

// MustNewTable is NewTable for static declarations; it panics on error.
func MustNewTable(name string, schema Schema) *Table {
	t, err := NewTable(name, schema)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema. Callers must not mutate it.
func (t *Table) Schema() Schema { return t.schema }

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.nrows }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.schema) }

// Grow pre-allocates tail capacity for n additional rows (capped at
// the segment size — sealed segments are allocated as they fill).
func (t *Table) Grow(n int) {
	segRows := 1 << t.bits
	tailLen := t.nrows - len(t.sealed)<<t.bits
	want := tailLen + n
	if want > segRows {
		want = segRows
	}
	for i := range t.tail {
		if cap(t.tail[i]) < want {
			grown := make([]Value, tailLen, want)
			copy(grown, t.tail[i])
			t.tail[i] = grown
		}
	}
}

// typeCompatible reports whether value v may be stored in a column of
// type ct. NULLs are storable everywhere; ints are storable in float
// columns (widened); everything else must match exactly.
func typeCompatible(v Value, ct Type) (Value, bool) {
	switch {
	case v.IsNull():
		return v, true
	case v.T == ct:
		return v, true
	case v.T == TInt && ct == TFloat:
		return NewFloat(float64(v.I)), true
	case v.T == TFloat && ct == TInt && v.F == float64(int64(v.F)):
		return NewInt(int64(v.F)), true
	default:
		return v, false
	}
}

// coerceRow type-checks row against the schema, returning the
// column-coerced values. The input slice is not retained.
func (t *Table) coerceRow(row []Value) ([]Value, error) {
	if len(row) != len(t.schema) {
		return nil, fmt.Errorf("engine: table %s: row has %d values, schema has %d columns", t.name, len(row), len(t.schema))
	}
	out := make([]Value, len(row))
	for i, v := range row {
		cv, ok := typeCompatible(v, t.schema[i].Type)
		if !ok {
			return nil, fmt.Errorf("engine: table %s: column %s is %s, got %s", t.name, t.schema[i].Name, t.schema[i].Type, v.T)
		}
		out[i] = cv
	}
	return out, nil
}

// CoerceBatch type-checks a whole batch against the schema, returning
// the column-coerced rows without appending anything. It is the
// validation half of AppendBatch, exposed so a durability layer
// (internal/store) can encode exactly the rows that will be published
// into its write-ahead log BEFORE the in-memory publish: coercion is
// deterministic, so the logged rows and the published rows cannot
// diverge. The input rows are not retained.
func (t *Table) CoerceBatch(rows [][]Value) ([][]Value, error) {
	coerced := make([][]Value, len(rows))
	for ri, row := range rows {
		cr, err := t.coerceRow(row)
		if err != nil {
			return nil, err
		}
		coerced[ri] = cr
	}
	return coerced, nil
}

// appendCoercedLocked writes one already-coerced row into the tail,
// sealing first when the tail is full. Caller holds views.mu and has
// verified t is the newest version.
func (t *Table) appendCoercedLocked(row []Value) {
	if t.nrows-len(t.sealed)<<t.bits == 1<<t.bits {
		t.sealTailLocked()
	}
	for i, v := range row {
		t.tail[i] = append(t.tail[i], v)
	}
	t.nrows++
}

// AppendRow appends a row in place and returns its row id. The row
// length must match the schema and each value must be type-compatible
// with its column. AppendRow is the single-owner build-phase mutator;
// it refuses to append to a stale snapshot (one superseded by
// AppendBatch or RetainTail), since that would clobber rows a newer
// version already published. For concurrent ingest while queries are
// in flight, use AppendBatch (copy-on-write) instead.
func (t *Table) AppendRow(row []Value) (int, error) {
	coerced, err := t.coerceRow(row)
	if err != nil {
		return 0, err
	}
	vc := t.viewCache()
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if t.pub != vc.pub {
		return 0, fmt.Errorf("engine: table %s: %w (%d rows, family has %d)", t.name, ErrStaleAppend, t.nrows, vc.hw-t.base)
	}
	t.appendCoercedLocked(coerced)
	vc.hw = t.base + t.nrows
	return t.nrows - 1, nil
}

// AppendBatch appends rows copy-on-write: it returns a NEW table
// version containing the appended batch, leaving the receiver — and
// every view, mask, or query result derived from it — untouched and
// valid. The two versions share every sealed segment by pointer and
// the tail arrays by aliasing (the batch lands past the receiver's row
// count, which its readers never index), so appends touch only the
// tail segment: no whole-column copy-on-grow, worst case one tail
// reallocation bounded by the segment size.
//
// Appends are linear: only the newest version of a family may be
// appended to. A batch against a superseded snapshot returns an error,
// which is what makes concurrent ingest safe — two racing appenders
// serialize on the family lock and the loser gets the stale error
// instead of silently clobbering published rows. The whole batch is
// type-checked before anything is published, so no version ever exposes
// a half-appended batch.
func (t *Table) AppendBatch(rows [][]Value) (*Table, error) {
	coerced, err := t.CoerceBatch(rows)
	if err != nil {
		return nil, err
	}
	vc := t.viewCache()
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if t.pub != vc.pub {
		return nil, fmt.Errorf("engine: table %s: %w (%d rows, family has %d)", t.name, ErrStaleAppend, t.nrows, vc.hw-t.base)
	}
	nt := &Table{
		name: t.name, schema: t.schema,
		sealed: t.sealed, tail: make([][]Value, len(t.tail)),
		nrows: t.nrows, base: t.base, bits: t.bits, mask: t.mask,
		views: vc,
	}
	copy(nt.tail, t.tail)
	for _, row := range coerced {
		nt.appendCoercedLocked(row)
	}
	vc.pub++
	nt.pub = vc.pub
	vc.hw = nt.base + nt.nrows
	return nt, nil
}

// SameFamily reports whether o is a version of the same underlying
// table (they share storage and the incremental view cache — the
// relationship AppendBatch, RetainTail and Rename establish).
func (t *Table) SameFamily(o *Table) bool {
	return t != nil && o != nil && t.views != nil && t.views == o.views
}

// MustAppendRow appends a row, panicking on type errors. Intended for
// generators whose schemas are static.
func (t *Table) MustAppendRow(row ...Value) int {
	id, err := t.AppendRow(row)
	if err != nil {
		panic(err)
	}
	return id
}

// Value returns the value at (row, col). It panics when out of range,
// like a slice index. Faultable segments (fault.go) are read through a
// transient pin — correct everywhere, but per-row; bulk readers should
// go through the typed views' PinSeg.
func (t *Table) Value(row, col int) Value {
	if k := row >> t.bits; k >= 0 && k < len(t.sealed) {
		s := t.sealed[k]
		if s.cols == nil {
			return s.boxedAt(t.name, col, row&t.mask)
		}
		return s.cols[col][row&t.mask]
	}
	return t.tail[col][row-len(t.sealed)<<t.bits]
}

// Row materializes row i into a fresh slice.
func (t *Table) Row(i int) []Value {
	out := make([]Value, len(t.schema))
	t.RowInto(i, out)
	return out
}

// RowInto copies row i into dst, which must have len == NumCols. It
// avoids per-row allocation in scan loops.
func (t *Table) RowInto(i int, dst []Value) {
	if k := i >> t.bits; k >= 0 && k < len(t.sealed) {
		s := t.sealed[k]
		off := i & t.mask
		if s.cols == nil {
			for c := range t.schema {
				dst[c] = s.boxedAt(t.name, c, off)
			}
			return
		}
		cols := s.cols
		for c := range cols {
			dst[c] = cols[c][off]
		}
		return
	}
	off := i - len(t.sealed)<<t.bits
	for c := range t.tail {
		dst[c] = t.tail[c][off]
	}
}

// forEachColValue streams column c's values of rows [0, nrows) in row
// order — the segment-aware replacement for iterating a flat column
// slice.
func (t *Table) forEachColValue(c int, fn func(r int, v Value)) {
	r := 0
	for _, seg := range t.sealed {
		col := seg.cols
		if col == nil {
			vals, release := seg.pinBoxed(t.name, c)
			for _, v := range vals {
				fn(r, v)
				r++
			}
			release()
			continue
		}
		for _, v := range col[c] {
			fn(r, v)
			r++
		}
	}
	for off := 0; r < t.nrows; off++ {
		fn(r, t.tail[c][off])
		r++
	}
}

// Select materializes a new table containing the given rows (in order),
// preserving the schema and segment size. Useful for building candidate
// datasets. The new table is a fresh family with ids rebased to 0.
func (t *Table) Select(rows []int) *Table {
	out, err := NewTableSeg(t.name, t.schema, t.bits)
	if err != nil {
		panic(err)
	}
	out.Grow(len(rows))
	buf := make([]Value, len(t.schema))
	rr := t.NewRowReader()
	defer rr.Close()
	out.views.mu.Lock()
	defer out.views.mu.Unlock()
	for _, r := range rows {
		rr.RowInto(r, buf)
		row := make([]Value, len(buf))
		copy(row, buf)
		out.appendCoercedLocked(row)
	}
	out.views.hw = out.nrows
	return out
}

// Without materializes a new table excluding the given row ids. Ids
// outside [0, NumRows) are ignored, so rows may safely contain more
// entries than the table has rows.
func (t *Table) Without(rows map[int]bool) *Table {
	capHint := t.nrows - len(rows)
	if capHint < 0 {
		capHint = 0
	}
	keep := make([]int, 0, capHint)
	for i := 0; i < t.nrows; i++ {
		if !rows[i] {
			keep = append(keep, i)
		}
	}
	return t.Select(keep)
}

// DistinctValues returns the distinct non-NULL values of column c,
// ordered by descending frequency (ties broken by value order), along
// with their counts.
func (t *Table) DistinctValues(c int) ([]Value, []int) {
	type entry struct {
		v Value
		n int
	}
	byKey := make(map[string]*entry)
	var order []string
	t.forEachColValue(c, func(_ int, v Value) {
		if v.IsNull() {
			return
		}
		k := v.Key()
		e, ok := byKey[k]
		if !ok {
			e = &entry{v: v}
			byKey[k] = e
			order = append(order, k)
		}
		e.n++
	})
	entries := make([]*entry, 0, len(order))
	for _, k := range order {
		entries = append(entries, byKey[k])
	}
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].n != entries[j].n {
			return entries[i].n > entries[j].n
		}
		c, _ := Compare(entries[i].v, entries[j].v)
		return c < 0
	})
	vals := make([]Value, len(entries))
	counts := make([]int, len(entries))
	for i, e := range entries {
		vals[i] = e.v
		counts[i] = e.n
	}
	return vals, counts
}

// NumericStats returns min, max, mean and count of non-NULL values in a
// numeric column. ok is false when the column has no non-NULL values.
func (t *Table) NumericStats(c int) (min, max, mean float64, n int, ok bool) {
	var sum float64
	t.forEachColValue(c, func(_ int, v Value) {
		if v.IsNull() {
			return
		}
		f := v.Float()
		if n == 0 {
			min, max = f, f
		} else {
			if f < min {
				min = f
			}
			if f > max {
				max = f
			}
		}
		sum += f
		n++
	})
	if n == 0 {
		return 0, 0, 0, 0, false
	}
	return min, max, sum / float64(n), n, true
}

// Rename returns the table under a new name, sharing storage.
func (t *Table) Rename(name string) *Table {
	out := *t
	out.name = name
	return &out
}

// String renders a short description, not the rows.
func (t *Table) String() string {
	return fmt.Sprintf("%s%s [%d rows]", t.name, t.schema, t.nrows)
}
