package engine

import (
	"fmt"
	"sort"
)

// Table is an append-only, in-memory columnar relation. Row identifiers
// are stable: row i is always the i'th appended row. Stable identifiers
// are load-bearing for the provenance machinery — lineage sets and
// ground-truth labels are both expressed as row ids into the source
// table.
type Table struct {
	name   string
	schema Schema
	cols   [][]Value
	nrows  int
	// views caches typed column decodings (see colview.go). Behind a
	// pointer so shallow table copies share it instead of a lock.
	views *tableViews
}

// NewTable creates an empty table with the given name and schema. The
// schema must validate.
func NewTable(name string, schema Schema) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	t := &Table{name: name, schema: schema.Clone(), cols: make([][]Value, len(schema)), views: &tableViews{}}
	return t, nil
}

// MustNewTable is NewTable for static declarations; it panics on error.
func MustNewTable(name string, schema Schema) *Table {
	t, err := NewTable(name, schema)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema. Callers must not mutate it.
func (t *Table) Schema() Schema { return t.schema }

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.nrows }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.schema) }

// Grow pre-allocates capacity for n additional rows.
func (t *Table) Grow(n int) {
	for i := range t.cols {
		if cap(t.cols[i])-len(t.cols[i]) < n {
			grown := make([]Value, len(t.cols[i]), len(t.cols[i])+n)
			copy(grown, t.cols[i])
			t.cols[i] = grown
		}
	}
}

// typeCompatible reports whether value v may be stored in a column of
// type ct. NULLs are storable everywhere; ints are storable in float
// columns (widened); everything else must match exactly.
func typeCompatible(v Value, ct Type) (Value, bool) {
	switch {
	case v.IsNull():
		return v, true
	case v.T == ct:
		return v, true
	case v.T == TInt && ct == TFloat:
		return NewFloat(float64(v.I)), true
	case v.T == TFloat && ct == TInt && v.F == float64(int64(v.F)):
		return NewInt(int64(v.F)), true
	default:
		return v, false
	}
}

// AppendRow appends a row and returns its row id. The row length must
// match the schema and each value must be type-compatible with its
// column.
func (t *Table) AppendRow(row []Value) (int, error) {
	if len(row) != len(t.schema) {
		return 0, fmt.Errorf("engine: table %s: row has %d values, schema has %d columns", t.name, len(row), len(t.schema))
	}
	for i, v := range row {
		cv, ok := typeCompatible(v, t.schema[i].Type)
		if !ok {
			return 0, fmt.Errorf("engine: table %s: column %s is %s, got %s", t.name, t.schema[i].Name, t.schema[i].Type, v.T)
		}
		t.cols[i] = append(t.cols[i], cv)
	}
	t.nrows++
	return t.nrows - 1, nil
}

// MustAppendRow appends a row, panicking on type errors. Intended for
// generators whose schemas are static.
func (t *Table) MustAppendRow(row ...Value) int {
	id, err := t.AppendRow(row)
	if err != nil {
		panic(err)
	}
	return id
}

// Value returns the value at (row, col). It panics when out of range,
// like a slice index.
func (t *Table) Value(row, col int) Value { return t.cols[col][row] }

// Row materializes row i into a fresh slice.
func (t *Table) Row(i int) []Value {
	out := make([]Value, len(t.cols))
	for c := range t.cols {
		out[c] = t.cols[c][i]
	}
	return out
}

// RowInto copies row i into dst, which must have len == NumCols. It
// avoids per-row allocation in scan loops.
func (t *Table) RowInto(i int, dst []Value) {
	for c := range t.cols {
		dst[c] = t.cols[c][i]
	}
}

// Column returns the backing slice for column c. Callers must treat it
// as read-only.
func (t *Table) Column(c int) []Value { return t.cols[c] }

// ColumnByName returns the backing slice for the named column, or nil.
func (t *Table) ColumnByName(name string) []Value {
	i := t.schema.ColIndex(name)
	if i < 0 {
		return nil
	}
	return t.cols[i]
}

// Select materializes a new table containing the given rows (in order),
// preserving the schema. Useful for building candidate datasets.
func (t *Table) Select(rows []int) *Table {
	out := MustNewTable(t.name, t.schema)
	out.Grow(len(rows))
	for _, r := range rows {
		for c := range t.cols {
			out.cols[c] = append(out.cols[c], t.cols[c][r])
		}
	}
	out.nrows = len(rows)
	return out
}

// Without materializes a new table excluding the given row ids. Ids
// outside [0, NumRows) are ignored, so rows may safely contain more
// entries than the table has rows.
func (t *Table) Without(rows map[int]bool) *Table {
	capHint := t.nrows - len(rows)
	if capHint < 0 {
		capHint = 0
	}
	keep := make([]int, 0, capHint)
	for i := 0; i < t.nrows; i++ {
		if !rows[i] {
			keep = append(keep, i)
		}
	}
	return t.Select(keep)
}

// DistinctValues returns the distinct non-NULL values of column c,
// ordered by descending frequency (ties broken by value order), along
// with their counts.
func (t *Table) DistinctValues(c int) ([]Value, []int) {
	type entry struct {
		v Value
		n int
	}
	byKey := make(map[string]*entry)
	var order []string
	for _, v := range t.cols[c] {
		if v.IsNull() {
			continue
		}
		k := v.Key()
		e, ok := byKey[k]
		if !ok {
			e = &entry{v: v}
			byKey[k] = e
			order = append(order, k)
		}
		e.n++
	}
	entries := make([]*entry, 0, len(order))
	for _, k := range order {
		entries = append(entries, byKey[k])
	}
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].n != entries[j].n {
			return entries[i].n > entries[j].n
		}
		c, _ := Compare(entries[i].v, entries[j].v)
		return c < 0
	})
	vals := make([]Value, len(entries))
	counts := make([]int, len(entries))
	for i, e := range entries {
		vals[i] = e.v
		counts[i] = e.n
	}
	return vals, counts
}

// NumericStats returns min, max, mean and count of non-NULL values in a
// numeric column. ok is false when the column has no non-NULL values.
func (t *Table) NumericStats(c int) (min, max, mean float64, n int, ok bool) {
	var sum float64
	for _, v := range t.cols[c] {
		if v.IsNull() {
			continue
		}
		f := v.Float()
		if n == 0 {
			min, max = f, f
		} else {
			if f < min {
				min = f
			}
			if f > max {
				max = f
			}
		}
		sum += f
		n++
	}
	if n == 0 {
		return 0, 0, 0, 0, false
	}
	return min, max, sum / float64(n), n, true
}

// Rename returns the table under a new name, sharing storage.
func (t *Table) Rename(name string) *Table {
	out := *t
	out.name = name
	return &out
}

// String renders a short description, not the rows.
func (t *Table) String() string {
	return fmt.Sprintf("%s%s [%d rows]", t.name, t.schema, t.nrows)
}
