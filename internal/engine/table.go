package engine

import (
	"errors"
	"fmt"
	"sort"
)

// ErrStaleAppend reports an append against a superseded table snapshot:
// a newer version of the family has already published more rows.
// Callers that lost an append race (engine.DB.Append) match on it to
// retry against the newest version.
var ErrStaleAppend = errors.New("append to stale snapshot")

// Table is an append-only, in-memory columnar relation. Row identifiers
// are stable: row i is always the i'th appended row. Stable identifiers
// are load-bearing for the provenance machinery — lineage sets and
// ground-truth labels are both expressed as row ids into the source
// table.
type Table struct {
	name   string
	schema Schema
	cols   [][]Value
	nrows  int
	// views caches typed column decodings (see colview.go). Behind a
	// pointer so shallow table copies share it instead of a lock.
	views *tableViews
}

// NewTable creates an empty table with the given name and schema. The
// schema must validate.
func NewTable(name string, schema Schema) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	t := &Table{name: name, schema: schema.Clone(), cols: make([][]Value, len(schema)), views: &tableViews{}}
	return t, nil
}

// MustNewTable is NewTable for static declarations; it panics on error.
func MustNewTable(name string, schema Schema) *Table {
	t, err := NewTable(name, schema)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema. Callers must not mutate it.
func (t *Table) Schema() Schema { return t.schema }

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.nrows }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.schema) }

// Grow pre-allocates capacity for n additional rows.
func (t *Table) Grow(n int) {
	for i := range t.cols {
		if cap(t.cols[i])-len(t.cols[i]) < n {
			grown := make([]Value, len(t.cols[i]), len(t.cols[i])+n)
			copy(grown, t.cols[i])
			t.cols[i] = grown
		}
	}
}

// typeCompatible reports whether value v may be stored in a column of
// type ct. NULLs are storable everywhere; ints are storable in float
// columns (widened); everything else must match exactly.
func typeCompatible(v Value, ct Type) (Value, bool) {
	switch {
	case v.IsNull():
		return v, true
	case v.T == ct:
		return v, true
	case v.T == TInt && ct == TFloat:
		return NewFloat(float64(v.I)), true
	case v.T == TFloat && ct == TInt && v.F == float64(int64(v.F)):
		return NewInt(int64(v.F)), true
	default:
		return v, false
	}
}

// coerceRow type-checks row against the schema, returning the
// column-coerced values. The input slice is not retained.
func (t *Table) coerceRow(row []Value) ([]Value, error) {
	if len(row) != len(t.schema) {
		return nil, fmt.Errorf("engine: table %s: row has %d values, schema has %d columns", t.name, len(row), len(t.schema))
	}
	out := make([]Value, len(row))
	for i, v := range row {
		cv, ok := typeCompatible(v, t.schema[i].Type)
		if !ok {
			return nil, fmt.Errorf("engine: table %s: column %s is %s, got %s", t.name, t.schema[i].Name, t.schema[i].Type, v.T)
		}
		out[i] = cv
	}
	return out, nil
}

// AppendRow appends a row in place and returns its row id. The row
// length must match the schema and each value must be type-compatible
// with its column. AppendRow is the single-owner build-phase mutator;
// it refuses to append to a stale snapshot (one superseded by
// AppendBatch), since that would clobber rows a newer version already
// published. For concurrent ingest while queries are in flight, use
// AppendBatch (copy-on-write) instead.
func (t *Table) AppendRow(row []Value) (int, error) {
	if len(row) != len(t.schema) {
		return 0, fmt.Errorf("engine: table %s: row has %d values, schema has %d columns", t.name, len(row), len(t.schema))
	}
	vc := t.viewCache()
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if vc.hw > t.nrows {
		return 0, fmt.Errorf("engine: table %s: %w (%d rows, family has %d)", t.name, ErrStaleAppend, t.nrows, vc.hw)
	}
	for i, v := range row {
		cv, ok := typeCompatible(v, t.schema[i].Type)
		if !ok {
			return 0, fmt.Errorf("engine: table %s: column %s is %s, got %s", t.name, t.schema[i].Name, t.schema[i].Type, v.T)
		}
		t.cols[i] = append(t.cols[i], cv)
	}
	t.nrows++
	vc.hw = t.nrows
	return t.nrows - 1, nil
}

// AppendBatch appends rows copy-on-write: it returns a NEW table
// version containing the appended batch, leaving the receiver — and
// every view, mask, or query result derived from it — untouched and
// valid. The two versions share column storage for the common prefix
// (the batch lands in spare slice capacity or a reallocated array, so
// readers of the old version never observe the new rows), and they
// share the incremental view cache, so FloatView/DictView/clause masks
// extend by decoding only the appended suffix.
//
// Appends are linear: only the newest version of a family may be
// appended to. A batch against a superseded snapshot returns an error,
// which is what makes concurrent ingest safe — two racing appenders
// serialize on the family lock and the loser gets the stale error
// instead of silently clobbering published rows. The whole batch is
// type-checked before anything is published, so no version ever exposes
// a half-appended batch.
func (t *Table) AppendBatch(rows [][]Value) (*Table, error) {
	coerced := make([][]Value, len(rows))
	for ri, row := range rows {
		cr, err := t.coerceRow(row)
		if err != nil {
			return nil, err
		}
		coerced[ri] = cr
	}
	vc := t.viewCache()
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if vc.hw > t.nrows {
		return nil, fmt.Errorf("engine: table %s: %w (%d rows, family has %d)", t.name, ErrStaleAppend, t.nrows, vc.hw)
	}
	nt := &Table{name: t.name, schema: t.schema, cols: make([][]Value, len(t.cols)), nrows: t.nrows, views: vc}
	copy(nt.cols, t.cols)
	for _, row := range coerced {
		for i, v := range row {
			nt.cols[i] = append(nt.cols[i], v)
		}
	}
	nt.nrows += len(coerced)
	vc.hw = nt.nrows
	return nt, nil
}

// Version returns this table version's row high-water mark. Tables are
// append-only, so the row count is a monotonically increasing version
// stamp: two versions of one family are ordered by it, and rows below
// the smaller version are bit-identical in both.
func (t *Table) Version() int { return t.nrows }

// SameFamily reports whether o is a version of the same underlying
// table (they share storage and the incremental view cache — the
// relationship AppendBatch and Rename establish).
func (t *Table) SameFamily(o *Table) bool {
	return t != nil && o != nil && t.views != nil && t.views == o.views
}

// MustAppendRow appends a row, panicking on type errors. Intended for
// generators whose schemas are static.
func (t *Table) MustAppendRow(row ...Value) int {
	id, err := t.AppendRow(row)
	if err != nil {
		panic(err)
	}
	return id
}

// Value returns the value at (row, col). It panics when out of range,
// like a slice index.
func (t *Table) Value(row, col int) Value { return t.cols[col][row] }

// Row materializes row i into a fresh slice.
func (t *Table) Row(i int) []Value {
	out := make([]Value, len(t.cols))
	for c := range t.cols {
		out[c] = t.cols[c][i]
	}
	return out
}

// RowInto copies row i into dst, which must have len == NumCols. It
// avoids per-row allocation in scan loops.
func (t *Table) RowInto(i int, dst []Value) {
	for c := range t.cols {
		dst[c] = t.cols[c][i]
	}
}

// Column returns the backing slice for column c. Callers must treat it
// as read-only.
func (t *Table) Column(c int) []Value { return t.cols[c] }

// ColumnByName returns the backing slice for the named column, or nil.
func (t *Table) ColumnByName(name string) []Value {
	i := t.schema.ColIndex(name)
	if i < 0 {
		return nil
	}
	return t.cols[i]
}

// Select materializes a new table containing the given rows (in order),
// preserving the schema. Useful for building candidate datasets.
func (t *Table) Select(rows []int) *Table {
	out := MustNewTable(t.name, t.schema)
	out.Grow(len(rows))
	for _, r := range rows {
		for c := range t.cols {
			out.cols[c] = append(out.cols[c], t.cols[c][r])
		}
	}
	out.nrows = len(rows)
	out.views.hw = out.nrows
	return out
}

// Without materializes a new table excluding the given row ids. Ids
// outside [0, NumRows) are ignored, so rows may safely contain more
// entries than the table has rows.
func (t *Table) Without(rows map[int]bool) *Table {
	capHint := t.nrows - len(rows)
	if capHint < 0 {
		capHint = 0
	}
	keep := make([]int, 0, capHint)
	for i := 0; i < t.nrows; i++ {
		if !rows[i] {
			keep = append(keep, i)
		}
	}
	return t.Select(keep)
}

// DistinctValues returns the distinct non-NULL values of column c,
// ordered by descending frequency (ties broken by value order), along
// with their counts.
func (t *Table) DistinctValues(c int) ([]Value, []int) {
	type entry struct {
		v Value
		n int
	}
	byKey := make(map[string]*entry)
	var order []string
	for _, v := range t.cols[c] {
		if v.IsNull() {
			continue
		}
		k := v.Key()
		e, ok := byKey[k]
		if !ok {
			e = &entry{v: v}
			byKey[k] = e
			order = append(order, k)
		}
		e.n++
	}
	entries := make([]*entry, 0, len(order))
	for _, k := range order {
		entries = append(entries, byKey[k])
	}
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].n != entries[j].n {
			return entries[i].n > entries[j].n
		}
		c, _ := Compare(entries[i].v, entries[j].v)
		return c < 0
	})
	vals := make([]Value, len(entries))
	counts := make([]int, len(entries))
	for i, e := range entries {
		vals[i] = e.v
		counts[i] = e.n
	}
	return vals, counts
}

// NumericStats returns min, max, mean and count of non-NULL values in a
// numeric column. ok is false when the column has no non-NULL values.
func (t *Table) NumericStats(c int) (min, max, mean float64, n int, ok bool) {
	var sum float64
	for _, v := range t.cols[c] {
		if v.IsNull() {
			continue
		}
		f := v.Float()
		if n == 0 {
			min, max = f, f
		} else {
			if f < min {
				min = f
			}
			if f > max {
				max = f
			}
		}
		sum += f
		n++
	}
	if n == 0 {
		return 0, 0, 0, 0, false
	}
	return min, max, sum / float64(n), n, true
}

// Rename returns the table under a new name, sharing storage.
func (t *Table) Rename(name string) *Table {
	out := *t
	out.name = name
	return &out
}

// String renders a short description, not the rows.
func (t *Table) String() string {
	return fmt.Sprintf("%s%s [%d rows]", t.name, t.schema, t.nrows)
}
