package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// DB is a tiny catalog of named tables. It is safe for concurrent
// readers and writers; queries executed by internal/exec only read.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// Register adds or replaces a table under its own name.
func (db *DB) Register(t *Table) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tables[strings.ToLower(t.Name())] = t
}

// Table returns the named table (case-insensitive).
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("engine: no table %q (have: %s)", name, strings.Join(db.names(), ", "))
	}
	return t, nil
}

// Drop removes the named table; it is a no-op when absent.
func (db *DB) Drop(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.tables, strings.ToLower(name))
}

// Names returns the registered table names, sorted.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.names()
}

func (db *DB) names() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
