package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// DB is a tiny catalog of named tables. It is safe for concurrent
// readers and writers; queries executed by internal/exec only read.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// Register adds or replaces a table under its own name.
func (db *DB) Register(t *Table) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tables[strings.ToLower(t.Name())] = t
}

// Table returns the named table (case-insensitive).
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("engine: no table %q (have: %s)", name, strings.Join(db.names(), ", "))
	}
	return t, nil
}

// Append appends a batch of rows to the named table through the
// copy-on-write path (Table.AppendBatch) and atomically republishes the
// grown version under the same name. Queries that already fetched the
// table keep their immutable snapshot and never observe a half-appended
// batch; queries started after Append returns see all of it. Appends to
// one table serialize on the catalog lock, so concurrent ingest is safe.
// The grown table version is returned.
func (db *DB) Append(name string, rows [][]Value) (*Table, error) {
	key := strings.ToLower(name)
	for {
		db.mu.RLock()
		t, ok := db.tables[key]
		db.mu.RUnlock()
		if !ok {
			db.mu.RLock()
			defer db.mu.RUnlock()
			return nil, fmt.Errorf("engine: no table %q (have: %s)", name, strings.Join(db.names(), ", "))
		}
		// The batch coercion and copy run outside the catalog lock so
		// concurrent query starts (db.Table) are never blocked behind a
		// large ingest; the family high-water mark serializes appenders.
		nt, err := t.AppendBatch(rows)
		if errors.Is(err, ErrStaleAppend) {
			// A concurrent DB.Append republishes a newer version, so a
			// retry sees a different table and makes progress. If the
			// registered pointer is unchanged, the family was grown
			// outside the catalog (direct AppendBatch without Register);
			// spinning would never converge — surface the error, the
			// caller may retry.
			db.mu.RLock()
			cur := db.tables[key]
			db.mu.RUnlock()
			if cur == t {
				return nil, err
			}
			continue
		}
		if err != nil {
			return nil, err
		}
		db.mu.Lock()
		if db.tables[key] == t {
			db.tables[key] = nt
			db.mu.Unlock()
			return nt, nil
		}
		db.mu.Unlock()
		// The catalog changed underneath (Register/Drop during the
		// append): the batch landed in an orphaned family, so retry
		// against whatever is registered now.
	}
}

// Drop removes the named table; it is a no-op when absent.
func (db *DB) Drop(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.tables, strings.ToLower(name))
}

// Names returns the registered table names, sorted.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.names()
}

func (db *DB) names() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
