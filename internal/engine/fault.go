package engine

import "fmt"

// This file is the engine half of the out-of-core segment contract.
// A durability layer (internal/store) can attach SEALED segments to a
// recovered table WITHOUT decoding them into memory: the segment keeps
// no boxed values and no chunks, and every read faults the needed
// column chunk in through a ChunkLoader — typically backed by a shared
// buffer pool that pins chunks while scans read them and evicts cold
// ones under a byte budget. In-memory (non-durable) tables never see
// any of this: their segments stay always-resident and the pin calls
// degrade to returning the resident slice with a no-op release.
//
// The pin/unpin contract: a Pin* call returns chunk data plus a
// release func. The data stays VALID forever (Go's GC keeps it alive
// while referenced — eviction only drops the pool's reference), so a
// forgotten release is an accounting leak, never a use-after-free. But
// the memory bound only holds if pins are short-lived: scans hold at
// most one pinned chunk per column per shard (released when the shard
// cursor moves to the next segment, and unconditionally — via defer —
// when the shard exits, so cancellation never leaks a pin). Nothing in
// the engine caches faulted data outside the pool: the view snapshots
// keep nil slices for faultable segments, which is what makes a table
// several times larger than the pool budget servable at bounded heap.

// ChunkLoader faults one sealed segment's column chunk in from a
// backing store. seg is the STREAM segment index (stable across
// retention rebases), col the schema column index. The returned
// release must be called exactly once when the caller is done reading;
// missed reports whether the call hit backing storage (false = served
// from the pool). Implementations must be safe for concurrent use.
type ChunkLoader interface {
	// PinFloat returns the float64 decode of a numeric column: values
	// (NaN for NULL) and the NULL bitmap words (segRows/64 of them).
	PinFloat(seg, col int) (vals []float64, null []uint64, release func(), missed bool, err error)
	// PinCodes returns a string column's dictionary codes (-1 = NULL).
	// Codes index the dictionary the table was preloaded with
	// (PreloadDict) — the loader and the engine share one code space.
	PinCodes(seg, col int) (codes []int32, release func(), missed bool, err error)
	// PinBoxed returns the boxed values of any column — the slow path
	// behind Table.Value/RowInto for faultable segments.
	PinBoxed(seg, col int) (vals []Value, release func(), missed bool, err error)
}

// ZoneInfo is the per-segment-column zone map written at seal time:
// enough metadata to prove a predicate clause matches nothing (or
// everything) in the segment without faulting the chunk in.
type ZoneInfo struct {
	// Min/Max bound the non-NULL, non-NaN values of a numeric column.
	// Valid only when HasRange (false for string columns and for
	// segments with no finite values).
	Min, Max float64
	// NullCount / NaNCount count NULL rows and stored-NaN rows.
	NullCount int
	NaNCount  int
	// Rows is the segment's row count (== SegRows of the table).
	Rows int
	// HasRange reports Min/Max are meaningful.
	HasRange bool
	// Presence is a 256-bit summary of a dict column's codes: bit
	// code%256 is set iff some row holds that code. A clear bit proves
	// the code absent; a set bit proves nothing (collisions). Valid
	// only when HasPresence.
	Presence    [4]uint64
	HasPresence bool
}

// SegmentLoadError reports a chunk fault failure (I/O error, checksum
// mismatch, segment quarantined). It travels as a panic from deep
// inside view accessors — which have no error returns — and is
// converted back to an error at the executor's entry points via
// CatchSegmentLoad.
type SegmentLoadError struct {
	Table string
	Seg   int // stream segment index
	Col   int
	Err   error
}

func (e *SegmentLoadError) Error() string {
	return fmt.Sprintf("engine: table %s: loading segment %d column %d: %v", e.Table, e.Seg, e.Col, e.Err)
}

func (e *SegmentLoadError) Unwrap() error { return e.Err }

// CatchSegmentLoad converts a SegmentLoadError panic into *errp,
// re-panicking anything else. Deferred at every public entry point
// that can reach a faultable segment (exec.Run, exec.Advance, the
// stats accessors) so a failed chunk load is a query error, not a
// crash.
func CatchSegmentLoad(errp *error) {
	if r := recover(); r != nil {
		if sle, ok := r.(*SegmentLoadError); ok {
			*errp = sle
			return
		}
		panic(r)
	}
}

// releaseNoop is the shared release for resident chunks.
var releaseNoop = func() {}

// faultable reports whether this segment's chunks load on demand.
func (s *segment) faultable() bool { return s.loader != nil }

// pinFloat faults the segment's float chunk (panicking SegmentLoadError
// on failure).
func (s *segment) pinFloat(tname string, col int) (vals []float64, null []uint64, release func(), missed bool) {
	vals, null, release, missed, err := s.loader.PinFloat(s.streamIdx, col)
	if err != nil {
		panic(&SegmentLoadError{Table: tname, Seg: s.streamIdx, Col: col, Err: err})
	}
	return vals, null, release, missed
}

// pinCodes faults the segment's dictionary-code chunk.
func (s *segment) pinCodes(tname string, col int) (codes []int32, release func(), missed bool) {
	codes, release, missed, err := s.loader.PinCodes(s.streamIdx, col)
	if err != nil {
		panic(&SegmentLoadError{Table: tname, Seg: s.streamIdx, Col: col, Err: err})
	}
	return codes, release, missed
}

// pinBoxed faults the segment's boxed values.
func (s *segment) pinBoxed(tname string, col int) (vals []Value, release func()) {
	vals, release, _, err := s.loader.PinBoxed(s.streamIdx, col)
	if err != nil {
		panic(&SegmentLoadError{Table: tname, Seg: s.streamIdx, Col: col, Err: err})
	}
	return vals, release
}

// boxedAt reads one boxed value out of a faultable segment via a
// transient pin.
func (s *segment) boxedAt(tname string, col, off int) Value {
	vals, release := s.pinBoxed(tname, col)
	v := vals[off]
	release()
	return v
}

// AttachLoadedSegment appends one sealed, faultable segment to the
// newest version of the table — the recovery-time counterpart of
// sealing a tail. The segment's rows are the next SegRows stream rows;
// its chunks load on demand through loader (stream segment index =
// Base()/SegRows + sealed count at attach time). zones, when non-nil,
// carries one ZoneInfo per schema column for predicate pruning; nil
// means no zone maps (every clause faults). Like AppendBatch it is
// copy-on-write and linear: it returns a new version and refuses stale
// snapshots. The tail must be empty (recovery attaches segments before
// replaying tail rows); a tail that is exactly full is sealed first.
func (t *Table) AttachLoadedSegment(loader ChunkLoader, zones []ZoneInfo) (*Table, error) {
	if loader == nil {
		return nil, fmt.Errorf("engine: table %s: attach with nil loader", t.name)
	}
	if zones != nil && len(zones) != len(t.schema) {
		return nil, fmt.Errorf("engine: table %s: attach with %d zones, schema has %d columns", t.name, len(zones), len(t.schema))
	}
	vc := t.viewCache()
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if t.pub != vc.pub {
		return nil, fmt.Errorf("engine: table %s: %w (attach to superseded version)", t.name, ErrStaleAppend)
	}
	ncols := len(t.schema)
	nt := &Table{
		name: t.name, schema: t.schema,
		sealed: t.sealed, tail: make([][]Value, ncols),
		nrows: t.nrows, base: t.base, bits: t.bits, mask: t.mask,
		views: vc,
	}
	copy(nt.tail, t.tail)
	if nt.nrows-len(nt.sealed)<<nt.bits == 1<<nt.bits {
		nt.sealTailLocked()
	}
	if tailLen := nt.nrows - len(nt.sealed)<<nt.bits; tailLen != 0 {
		return nil, fmt.Errorf("engine: table %s: attach with %d tail rows (segments attach only at segment boundaries)", t.name, tailLen)
	}
	seg := &segment{
		fchunk:    make([]*floatChunk, ncols),
		dchunk:    make([]*dictChunk, ncols),
		loader:    loader,
		streamIdx: nt.base>>nt.bits + len(nt.sealed),
		zones:     zones,
	}
	nt.sealed = append(nt.sealed, seg)
	nt.nrows += 1 << nt.bits
	vc.epoch++
	vc.pub++
	nt.pub = vc.pub
	vc.hw = nt.base + nt.nrows
	// The attached rows count as dict-decoded: their codes live in the
	// loader's chunks, assigned by the same first-appearance rule the
	// preloaded dictionary captured.
	for _, ds := range vc.dict {
		if ds.decoded < vc.hw {
			ds.decoded = vc.hw
		}
	}
	return nt, nil
}

// PreloadDict seeds string column c's dictionary with values in code
// order — recovery calls it (on a still-empty table) with the
// durability layer's persisted dictionary so that the int32 code
// sections inside attached segment files mean the same strings the
// engine's dictionary does, with no per-row remapping. The preloaded
// values are visible to every snapshot (an over-approximation when
// some value's rows were all lost to retention or quarantine: a code
// matching zero rows is harmless). Appends after preload keep
// assigning codes in first-appearance order starting at len(values),
// which is exactly the order the store's dictionary grows in — the two
// sides never diverge.
func (t *Table) PreloadDict(c int, values []string) error {
	if c < 0 || c >= len(t.schema) || t.schema[c].Type != TString {
		return fmt.Errorf("engine: table %s: preload dict on non-string column %d", t.name, c)
	}
	vc := t.viewCache()
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if t.nrows != 0 || len(t.sealed) != 0 {
		return fmt.Errorf("engine: table %s: preload dict on non-empty table", t.name)
	}
	if vc.dict == nil {
		vc.dict = make(map[int]*dictState)
	}
	if ds := vc.dict[c]; ds != nil && len(ds.values) != 0 {
		return fmt.Errorf("engine: table %s: column %d dictionary already populated", t.name, c)
	}
	ds := &dictState{byStr: make(map[string]int32, len(values)), decoded: t.base}
	ds.values = append([]string(nil), values...)
	for i, s := range values {
		ds.byStr[s] = int32(i)
	}
	if len(values) > 0 {
		// One mark at row 0: every snapshot of this family sees all
		// preloaded values (their true first-appearance rows predate the
		// recovered window anyway).
		ds.marks = []dictMark{{rows: 0, nvals: int32(len(values))}}
	}
	vc.dict[c] = ds
	return nil
}

// SegmentZone returns sealed segment k's zone map for column c, when
// one was attached. ok is false for resident segments, segments
// attached without zones, and out-of-range indexes.
func (t *Table) SegmentZone(k, c int) (ZoneInfo, bool) {
	if k < 0 || k >= len(t.sealed) || c < 0 || c >= len(t.schema) {
		return ZoneInfo{}, false
	}
	seg := t.sealed[k]
	if seg.zones == nil {
		return ZoneInfo{}, false
	}
	return seg.zones[c], true
}

// SegmentFaultable reports whether sealed segment k's chunks load on
// demand (attached via AttachLoadedSegment) rather than being memory
// resident.
func (t *Table) SegmentFaultable(k int) bool {
	return k >= 0 && k < len(t.sealed) && t.sealed[k].faultable()
}
