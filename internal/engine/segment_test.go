package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

func segSchema() Schema { return NewSchema("x", TFloat, "s", TString) }

func segRow(i int) []Value {
	if i%7 == 3 {
		return []Value{Null, Null}
	}
	return []Value{NewFloat(float64(i)), NewString(fmt.Sprintf("s%d", i%5))}
}

// TestSegmentBoundaryAppends drives a forced-tiny-segment table through
// append batches sized exactly on, one under and one over the segment
// boundary, checking values, views and version isolation at every step
// against a flat shadow copy.
func TestSegmentBoundaryAppends(t *testing.T) {
	tbl, err := NewTableSeg("t", segSchema(), MinSegmentBits)
	if err != nil {
		t.Fatal(err)
	}
	segRows := tbl.SegRows()
	if segRows != 64 {
		t.Fatalf("SegRows = %d", segRows)
	}
	var shadow [][]Value
	next := 0
	batch := func(k int) [][]Value {
		rows := make([][]Value, k)
		for i := range rows {
			rows[i] = segRow(next)
			shadow = append(shadow, segRow(next))
			next++
		}
		return rows
	}
	cur := tbl
	var versions []*Table
	for _, k := range []int{segRows - 1, 1, segRows, segRows + 1, 2*segRows - 1, 3, 1} {
		nt, err := cur.AppendBatch(batch(k))
		if err != nil {
			t.Fatal(err)
		}
		versions = append(versions, cur)
		cur = nt

		if cur.NumRows() != len(shadow) {
			t.Fatalf("rows = %d, want %d", cur.NumRows(), len(shadow))
		}
		sealed, tail := cur.NumSegments()
		if want := len(shadow) / segRows; sealed != want && sealed != want-1 {
			// sealing is lazy: a boundary-exact fill seals on the next append
			t.Fatalf("sealed = %d with %d rows", sealed, len(shadow))
		}
		if sealed<<uint(MinSegmentBits)+tail != len(shadow) {
			t.Fatalf("segment accounting: %d sealed + %d tail != %d", sealed, tail, len(shadow))
		}
		fv := cur.FloatView(0)
		dv := cur.DictView(1)
		for r, row := range shadow {
			if got := cur.Value(r, 0); got.Key() != row[0].Key() {
				t.Fatalf("Value(%d,0) = %v, want %v", r, got, row[0])
			}
			if row[0].IsNull() != fv.IsNull(r) || (!row[0].IsNull() && fv.V(r) != row[0].Float()) {
				t.Fatalf("FloatView row %d mismatch", r)
			}
			if row[1].IsNull() {
				if dv.CodeAt(r) != -1 {
					t.Fatalf("dict NULL row %d", r)
				}
			} else if dv.Value(dv.CodeAt(r)) != row[1].S {
				t.Fatalf("dict row %d: %q", r, dv.Value(dv.CodeAt(r)))
			}
		}
	}
	// Every retained old version still serves its own window.
	for _, v := range versions {
		n := v.NumRows()
		fv := v.FloatView(0)
		if fv.Len() != n {
			t.Fatalf("old version view len %d, want %d", fv.Len(), n)
		}
		for r := 0; r < n; r++ {
			want := shadow[r][0]
			if want.IsNull() != fv.IsNull(r) || (!want.IsNull() && fv.V(r) != want.Float()) {
				t.Fatalf("old version row %d mismatch", r)
			}
		}
	}
}

// TestRetainTail pins the retention contract: whole head segments drop,
// ids rebase by the dropped row count, old versions stay intact, and
// carried-on appends keep working.
func TestRetainTail(t *testing.T) {
	tbl, err := NewTableSeg("t", segSchema(), MinSegmentBits)
	if err != nil {
		t.Fatal(err)
	}
	segRows := tbl.SegRows()
	cur := tbl
	total := 0
	add := func(k int) {
		rows := make([][]Value, k)
		for i := range rows {
			rows[i] = segRow(total + i)
		}
		nt, err := cur.AppendBatch(rows)
		if err != nil {
			t.Fatal(err)
		}
		cur = nt
		total += k
	}
	add(5*segRows + 10)
	old := cur

	ret, stats, err := cur.RetainTail(RetentionPolicy{MaxRows: 2 * segRows})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DroppedRows == 0 || stats.DroppedRows%segRows != 0 {
		t.Fatalf("dropped %d rows", stats.DroppedRows)
	}
	if ret.NumRows() < 2*segRows {
		t.Fatalf("retained %d rows, policy wanted >= %d", ret.NumRows(), 2*segRows)
	}
	if ret.Base() != stats.DroppedRows {
		t.Fatalf("Base = %d, want %d", ret.Base(), stats.DroppedRows)
	}
	if ret.Version() != old.Version() {
		t.Fatal("retention must not move the stream end")
	}
	// Rebase: local row r of ret is stream row r+Base.
	fv := ret.FloatView(0)
	for r := 0; r < ret.NumRows(); r++ {
		want := segRow(r + ret.Base())[0]
		if want.IsNull() != fv.IsNull(r) || (!want.IsNull() && fv.V(r) != want.Float()) {
			t.Fatalf("rebased row %d mismatch", r)
		}
		if got := ret.Value(r, 0); got.Key() != want.Key() {
			t.Fatalf("rebased Value(%d) = %v", r, got)
		}
	}
	// The old version still reads its full window.
	if old.NumRows() != total || old.Value(0, 0).Float() != 0 {
		t.Fatal("pre-retention version disturbed")
	}
	// Old version's dict view degrades to nil (superseded base), floats
	// still serve.
	if old.DictView(1) != nil {
		t.Fatal("stale-base dict view should be nil")
	}
	if ofv := old.FloatView(0); ofv == nil || ofv.Len() != total {
		t.Fatal("stale-base float view unusable")
	}
	// Retention is linear: the superseded version refuses mutation.
	if _, err := old.AppendBatch([][]Value{segRow(0)}); err == nil {
		t.Fatal("append to pre-retention version should error")
	}
	if _, _, err := old.RetainTail(RetentionPolicy{MaxRows: 1}); err == nil {
		t.Fatal("retention on superseded version should error")
	}
	// Appends continue on the retained version; ids stay rebased.
	before := cur
	cur = ret
	add(segRows + 5)
	_ = before
	if got := cur.Value(cur.NumRows()-1, 0); !got.IsNull() && got.Float() != float64(total-1) {
		t.Fatalf("post-retention append tail = %v, want %v", got, total-1)
	}
	// Dict codes remain append-stable across retention (family dict).
	dv := cur.DictView(1)
	for r := 0; r < cur.NumRows(); r++ {
		want := segRow(r + cur.Base())[1]
		if want.IsNull() {
			if dv.CodeAt(r) != -1 {
				t.Fatalf("dict NULL at %d", r)
			}
		} else if dv.Value(dv.CodeAt(r)) != want.S {
			t.Fatalf("dict mismatch at %d", r)
		}
	}
}

// TestRetainBoundedMemory pins the bounded-memory claim: a long append
// loop with periodic retention plateaus in retained segments and
// approximate bytes.
func TestRetainBoundedMemory(t *testing.T) {
	tbl, err := NewTableSeg("t", segSchema(), MinSegmentBits)
	if err != nil {
		t.Fatal(err)
	}
	segRows := tbl.SegRows()
	cur := tbl
	maxSegs, maxBytes := 0, 0
	for i := 0; i < 100; i++ {
		rows := make([][]Value, segRows/2)
		for j := range rows {
			rows[j] = segRow(i*len(rows) + j)
		}
		nt, err := cur.AppendBatch(rows)
		if err != nil {
			t.Fatal(err)
		}
		cur = nt
		cur.FloatView(0) // keep decode chunks warm so they count
		nt2, _, err := cur.RetainTail(RetentionPolicy{MaxRows: 4 * segRows})
		if err != nil {
			t.Fatal(err)
		}
		cur = nt2
		segs, bytes := cur.MemStats()
		if segs > maxSegs {
			maxSegs = segs
		}
		if bytes > maxBytes {
			maxBytes = bytes
		}
	}
	if cur.NumRows() > 5*segRows {
		t.Fatalf("retention did not bound rows: %d", cur.NumRows())
	}
	if maxSegs > 6 {
		t.Fatalf("retained segments grew unbounded: %d", maxSegs)
	}
	segs, bytes := cur.MemStats()
	if segs == 0 || bytes == 0 {
		t.Fatal("MemStats empty")
	}
}

// TestRetainTimeCutoff drops only segments entirely below the cutoff.
func TestRetainTimeCutoff(t *testing.T) {
	tbl, err := NewTableSeg("t", NewSchema("ts", TFloat), MinSegmentBits)
	if err != nil {
		t.Fatal(err)
	}
	segRows := tbl.SegRows()
	cur := tbl
	rows := make([][]Value, 4*segRows)
	for i := range rows {
		rows[i] = []Value{NewFloat(float64(i))}
	}
	cur, err = cur.AppendBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	ret, stats, err := cur.RetainTail(RetentionPolicy{TimeCol: "ts", Cutoff: float64(2*segRows + 5)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DroppedSegments != 2 {
		t.Fatalf("dropped %d segments, want 2 (cutoff mid-third-segment)", stats.DroppedSegments)
	}
	if ret.Value(0, 0).Float() != float64(2*segRows) {
		t.Fatalf("first retained value = %v", ret.Value(0, 0))
	}
	// NaN rows keep a segment, conservatively.
	tbl2, _ := NewTableSeg("t2", NewSchema("ts", TFloat), MinSegmentBits)
	rows2 := make([][]Value, 2*segRows)
	for i := range rows2 {
		rows2[i] = []Value{NewFloat(math.NaN())}
	}
	cur2, _ := tbl2.AppendBatch(rows2)
	_, stats2, err := cur2.RetainTail(RetentionPolicy{TimeCol: "ts", Cutoff: 1e18})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.DroppedSegments != 0 {
		t.Fatal("NaN timestamps must not be dropped by an age policy")
	}
}

// TestDBRetainRepublish checks the catalog-level retention republish.
func TestDBRetainRepublish(t *testing.T) {
	db := NewDB()
	tbl, _ := NewTableSeg("t", segSchema(), MinSegmentBits)
	db.Register(tbl)
	segRows := tbl.SegRows()
	rows := make([][]Value, 3*segRows)
	for i := range rows {
		rows[i] = segRow(i)
	}
	if _, err := db.Append("t", rows); err != nil {
		t.Fatal(err)
	}
	nt, stats, err := db.Retain("t", RetentionPolicy{MaxRows: segRows})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DroppedSegments != 2 || nt.Base() != 2*segRows {
		t.Fatalf("stats = %+v", stats)
	}
	got, err := db.Table("t")
	if err != nil || got != nt {
		t.Fatal("retained version not republished")
	}
	// Appending after retention works through the catalog too.
	if _, err := db.Append("t", [][]Value{segRow(0)}); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentedRandomizedParity drives random single-row and batch
// appends plus occasional retention through a tiny-segment table and a
// flat mirror, comparing every row and view value each step.
func TestSegmentedRandomizedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		tbl, _ := NewTableSeg("t", segSchema(), MinSegmentBits)
		cur := tbl
		var mirror [][]Value // stream rows, never dropped
		base := 0
		next := 0
		for step := 0; step < 12; step++ {
			k := []int{1, 7, 63, 64, 65, 130}[rng.Intn(6)]
			rows := make([][]Value, k)
			for i := range rows {
				rows[i] = segRow(next)
				mirror = append(mirror, segRow(next))
				next++
			}
			nt, err := cur.AppendBatch(rows)
			if err != nil {
				t.Fatal(err)
			}
			cur = nt
			if rng.Intn(3) == 0 {
				nt, stats, err := cur.RetainTail(RetentionPolicy{MaxRows: 100 + rng.Intn(100)})
				if err != nil {
					t.Fatal(err)
				}
				cur = nt
				base += stats.DroppedRows
				if cur.Base() != base {
					t.Fatalf("base = %d, want %d", cur.Base(), base)
				}
			}
			fv := cur.FloatView(0)
			dv := cur.DictView(1)
			if fv.Len() != cur.NumRows() || dv.Len() != cur.NumRows() {
				t.Fatal("view length mismatch")
			}
			for r := 0; r < cur.NumRows(); r++ {
				want := mirror[base+r]
				if cur.Value(r, 0).Key() != want[0].Key() || cur.Value(r, 1).Key() != want[1].Key() {
					t.Fatalf("trial %d step %d row %d boxed mismatch", trial, step, r)
				}
				if want[0].IsNull() != fv.IsNull(r) || (!want[0].IsNull() && fv.V(r) != want[0].Float()) {
					t.Fatalf("trial %d step %d row %d float mismatch", trial, step, r)
				}
				if want[1].IsNull() {
					if dv.CodeAt(r) != -1 {
						t.Fatalf("dict null mismatch")
					}
				} else if dv.Value(dv.CodeAt(r)) != want[1].S {
					t.Fatalf("trial %d step %d row %d dict mismatch", trial, step, r)
				}
			}
		}
	}
}

// TestDBAppendRetainRace is a regression test: DB.Retain racing a
// concurrent DB.Append used to surface the loser's ErrStaleAppend to
// the caller instead of retrying against the republished version.
func TestDBAppendRetainRace(t *testing.T) {
	db := NewDB()
	tbl, _ := NewTableSeg("t", segSchema(), MinSegmentBits)
	db.Register(tbl)
	segRows := tbl.SegRows()
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			rows := make([][]Value, segRows/2)
			for j := range rows {
				rows[j] = segRow(i*len(rows) + j)
			}
			if _, err := db.Append("t", rows); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, _, err := db.Retain("t", RetentionPolicy{MaxRows: 2 * segRows}); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("catalog race surfaced: %v", err)
	}
	// The interleaving is nondeterministic (retention may drain its
	// iterations before the stream grows), so bound the final state
	// with one more deterministic pass rather than asserting timing.
	cur, _, err := db.Retain("t", RetentionPolicy{MaxRows: 2 * segRows})
	if err != nil {
		t.Fatal(err)
	}
	if cur.NumRows() >= 3*segRows {
		t.Fatalf("final retention did not bound rows: %d", cur.NumRows())
	}
	if reg, _ := db.Table("t"); reg != cur {
		t.Fatal("retained version not republished")
	}
}
