package engine

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns.
type Schema []Column

// NewSchema builds a schema from alternating name/type pairs, e.g.
// NewSchema("id", TInt, "name", TString). It panics on malformed input;
// it is intended for static schema declarations in code and tests.
func NewSchema(pairs ...any) Schema {
	if len(pairs)%2 != 0 {
		panic("engine: NewSchema requires name/type pairs")
	}
	s := make(Schema, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic(fmt.Sprintf("engine: NewSchema name at %d is %T", i, pairs[i]))
		}
		typ, ok := pairs[i+1].(Type)
		if !ok {
			panic(fmt.Sprintf("engine: NewSchema type at %d is %T", i+1, pairs[i+1]))
		}
		s = append(s, Column{Name: name, Type: typ})
	}
	return s
}

// ColIndex returns the position of the named column (case-insensitive),
// or -1 when absent.
func (s Schema) ColIndex(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Col returns the column at position i.
func (s Schema) Col(i int) Column { return s[i] }

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Clone returns a deep copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// String renders the schema as "(name type, ...)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Validate checks that column names are non-empty and unique
// (case-insensitively) and that no column is declared TNull.
func (s Schema) Validate() error {
	seen := make(map[string]bool, len(s))
	for i, c := range s {
		if c.Name == "" {
			return fmt.Errorf("engine: column %d has empty name", i)
		}
		lower := strings.ToLower(c.Name)
		if seen[lower] {
			return fmt.Errorf("engine: duplicate column %q", c.Name)
		}
		seen[lower] = true
		if c.Type == TNull {
			return fmt.Errorf("engine: column %q declared null type", c.Name)
		}
	}
	return nil
}
