package engine

import (
	"math"
	"sync"

	"repro/internal/bitset"
)

var nan = math.NaN()

// This file implements the typed column views behind DBWipes' columnar
// scoring fast path, and — since the streaming-append work — their
// *incremental* maintenance. A Table stores boxed Values; the hot paths
// (vectorized predicate evaluation, decision-tree split search) want a
// flat []float64 or a dictionary-coded []int32 they can stream over
// without per-row type dispatch.
//
// Tables are append-only, so a decoded prefix never changes: when rows
// have been appended since the last build, only the suffix
// [built, NumRows) is decoded and appended to the canonical decode
// state. Callers receive immutable per-length *snapshots* of that
// state: the value slices alias the canonical arrays (append-extension
// writes only indexes >= every published snapshot's length, so aliasing
// is race-free), while NULL bitmaps copy the canonical words (an
// n/64-word memcpy — 64x smaller than the data and the price of
// keeping bitset word boundaries immutable per snapshot).
//
// The same cache structure carries the table family's row high-water
// mark: every copy-on-write append snapshot (Table.AppendBatch) shares
// this struct, and hw is what detects appends to a stale snapshot.

// FloatView is a decoded numeric column: Vals[i] holds row i's value
// coerced to float64 (NaN for NULL — consult Null to distinguish a
// stored NaN from a NULL), and Null marks the NULL rows.
type FloatView struct {
	Vals []float64
	Null *bitset.Bitset
}

// DictView is a dictionary-encoded string column: Codes[i] indexes
// Values, or is -1 for NULL. Values lists the distinct strings in
// first-appearance order — which makes codes append-stable: a string's
// code never changes as rows are appended, so views of different table
// versions agree on every shared code.
type DictView struct {
	Codes  []int32
	Values []string
	byStr  map[string]int32
	// nvals bounds Code lookups: the shared byStr map may contain
	// strings that first appear after this snapshot's last row (their
	// codes are >= nvals), and those must read as absent here.
	nvals int32
}

// Code returns the dictionary code of s, or -1 when s does not occur in
// the column (within this snapshot's rows).
func (d *DictView) Code(s string) int32 {
	if c, ok := d.byStr[s]; ok && c < d.nvals {
		return c
	}
	return -1
}

// tableViews is the per-table-family view cache and version state. It
// lives behind a pointer so Rename's and AppendBatch's shallow copies
// share it (shared storage, shared cache) and so the Table struct stays
// copyable without copying a lock.
type tableViews struct {
	mu sync.Mutex
	// hw is the family's row high-water mark: the row count of the
	// newest table version sharing this cache. Appends are only legal on
	// the version whose NumRows equals hw — appending to an older
	// snapshot would clobber rows a newer version already published.
	hw    int
	float map[int]*floatEntry
	dict  map[int]*dictEntry
	aux   map[any]any
}

// floatEntry is one numeric column's canonical growable decode state.
type floatEntry struct {
	vals  []float64 // decoded rows [0, built)
	nullW []uint64  // NULL bitmap words covering [0, built)
	built int
	snap  *FloatView // cached snapshot at the newest built length
}

// dictMark records the dictionary size right after a new string's first
// appearance: after row rows-1, nvals strings had been seen. Snapshots
// at older lengths use the marks to bound Values/Code exactly.
type dictMark struct {
	rows  int
	nvals int32
}

// dictEntry is one string column's canonical growable decode state.
type dictEntry struct {
	codes  []int32
	values []string
	byStr  map[string]int32
	// shared is true once byStr has been handed to a snapshot; the next
	// insertion then clones the map first (copy-on-grow), so published
	// snapshots never observe a map write.
	shared bool
	marks  []dictMark
	built  int
	snap   *DictView
}

func (t *Table) viewCache() *tableViews {
	if t.views == nil {
		// Zero-value / legacy tables: allocate on first use. NewTable
		// initializes views, so this path is single-goroutine setup code.
		t.views = &tableViews{hw: t.nrows}
	}
	return t.views
}

// RowSynced is implemented by aux cache values (AuxLoadOrStore) that
// maintain per-row derived state — e.g. the executor's predicate index
// with its cached clause masks. AuxLoadOrStore calls SyncRows with the
// requesting table version on every access, so the value can extend
// itself to a grown snapshot (decoding only the appended suffix)
// instead of being rebuilt from row 0.
type RowSynced interface {
	SyncRows(t *Table)
}

// AuxLoadOrStore returns the per-table auxiliary cache entry for key,
// building it with build on first request. Entries share the table
// family's lifetime (and its Rename/AppendBatch copies), which lets
// higher layers — the executor's predicate index, for instance — cache
// derived structures per table without a process-global map that
// outlives the table. build may run more than once under a race;
// exactly one result wins. Values implementing RowSynced are notified
// of the requesting table version before being returned.
func (t *Table) AuxLoadOrStore(key any, build func() any) any {
	v := t.auxLoadOrStore(key, build)
	if rs, ok := v.(RowSynced); ok {
		rs.SyncRows(t)
	}
	return v
}

func (t *Table) auxLoadOrStore(key any, build func() any) any {
	vc := t.viewCache()
	vc.mu.Lock()
	if v, ok := vc.aux[key]; ok {
		vc.mu.Unlock()
		return v
	}
	vc.mu.Unlock()
	v := build()
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if vc.aux == nil {
		vc.aux = make(map[any]any)
	}
	if prev, ok := vc.aux[key]; ok {
		return prev
	}
	vc.aux[key] = v
	return v
}

// FloatView returns the float64 decoding of numeric column c at this
// table version's length, or nil when the column is not numeric. The
// returned view is an immutable snapshot, shared across callers at the
// same length; appended rows extend the canonical decode in place
// (suffix-only work) rather than rebuilding it.
func (t *Table) FloatView(c int) *FloatView {
	if c < 0 || c >= len(t.schema) || !t.schema[c].Type.IsNumeric() {
		return nil
	}
	n := t.nrows
	vc := t.viewCache()
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if vc.float == nil {
		vc.float = make(map[int]*floatEntry)
	}
	e, ok := vc.float[c]
	if !ok {
		e = &floatEntry{}
		vc.float[c] = e
	}
	if e.built < n {
		col := t.cols[c]
		for i := e.built; i < n; i++ {
			v := col[i]
			if v.IsNull() {
				e.vals = append(e.vals, nan)
				bitset.SetInWords(&e.nullW, i)
				continue
			}
			e.vals = append(e.vals, v.Float())
		}
		e.built = n
		e.snap = nil
	}
	if e.snap != nil && len(e.snap.Vals) == n {
		return e.snap
	}
	fv := &FloatView{Vals: e.vals[:n:n], Null: bitset.SnapshotWords(n, e.nullW)}
	if n == e.built {
		e.snap = fv
	}
	return fv
}

// DictView returns the dictionary encoding of string column c at this
// table version's length, or nil when the column is not a string
// column. The returned view is an immutable snapshot; appended rows
// extend the canonical dictionary in place, and codes are append-stable
// (first-appearance order).
func (t *Table) DictView(c int) *DictView {
	if c < 0 || c >= len(t.schema) || t.schema[c].Type != TString {
		return nil
	}
	n := t.nrows
	vc := t.viewCache()
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if vc.dict == nil {
		vc.dict = make(map[int]*dictEntry)
	}
	e, ok := vc.dict[c]
	if !ok {
		e = &dictEntry{byStr: make(map[string]int32)}
		vc.dict[c] = e
	}
	if e.built < n {
		col := t.cols[c]
		for i := e.built; i < n; i++ {
			v := col[i]
			if v.IsNull() {
				e.codes = append(e.codes, -1)
				continue
			}
			code, ok := e.byStr[v.S]
			if !ok {
				if e.shared {
					clone := make(map[string]int32, len(e.byStr)+1)
					for k, cv := range e.byStr {
						clone[k] = cv
					}
					e.byStr = clone
					e.shared = false
				}
				code = int32(len(e.values))
				e.byStr[v.S] = code
				e.values = append(e.values, v.S)
				e.marks = append(e.marks, dictMark{rows: i + 1, nvals: code + 1})
			}
			e.codes = append(e.codes, code)
		}
		e.built = n
		e.snap = nil
	}
	if e.snap != nil && len(e.snap.Codes) == n {
		return e.snap
	}
	nvals := int32(len(e.values))
	if e.built > n {
		// Older snapshot: bound the dictionary to the strings that had
		// appeared by row n (marks record each first appearance).
		nvals = 0
		for _, m := range e.marks {
			if m.rows <= n {
				nvals = m.nvals
			} else {
				break
			}
		}
	}
	dv := &DictView{Codes: e.codes[:n:n], Values: e.values[:nvals:nvals], byStr: e.byStr, nvals: nvals}
	e.shared = true
	if n == e.built {
		e.snap = dv
	}
	return dv
}
