package engine

import (
	"math"
	"sync"

	"repro/internal/bitset"
)

var nan = math.NaN()

// This file implements the typed column views behind DBWipes' columnar
// scoring fast path. A Table stores boxed Values; the hot paths
// (vectorized predicate evaluation, decision-tree split search) want a
// flat []float64 or a dictionary-coded []int32 they can stream over
// without per-row type dispatch. Views are decoded once per column on
// first request, cached on the table, and rebuilt automatically when
// rows have been appended since the build.

// FloatView is a decoded numeric column: Vals[i] holds row i's value
// coerced to float64 (NaN for NULL — consult Null to distinguish a
// stored NaN from a NULL), and Null marks the NULL rows.
type FloatView struct {
	Vals []float64
	Null *bitset.Bitset
}

// DictView is a dictionary-encoded string column: Codes[i] indexes
// Values, or is -1 for NULL. Values lists the distinct strings in first-
// appearance order.
type DictView struct {
	Codes  []int32
	Values []string
	byStr  map[string]int32
}

// Code returns the dictionary code of s, or -1 when s does not occur in
// the column.
func (d *DictView) Code(s string) int32 {
	if c, ok := d.byStr[s]; ok {
		return c
	}
	return -1
}

// tableViews is the per-table view cache. It lives behind a pointer so
// Rename's shallow copy shares it (shared storage, shared cache) and so
// the Table struct stays copyable without copying a lock.
type tableViews struct {
	mu    sync.Mutex
	float map[int]*floatEntry
	dict  map[int]*dictEntry
	aux   map[any]any
}

type floatEntry struct {
	view *FloatView
	rows int
}

type dictEntry struct {
	view *DictView
	rows int
}

func (t *Table) viewCache() *tableViews {
	if t.views == nil {
		// Zero-value / legacy tables: allocate on first use. NewTable
		// initializes views, so this path is single-goroutine setup code.
		t.views = &tableViews{}
	}
	return t.views
}

// AuxLoadOrStore returns the per-table auxiliary cache entry for key,
// building it with build on first request. Entries share the table's
// lifetime (and its Rename copies), which lets higher layers — the
// executor's predicate index, for instance — cache derived structures
// per table without a process-global map that outlives the table.
// build may run more than once under a race; exactly one result wins.
func (t *Table) AuxLoadOrStore(key any, build func() any) any {
	vc := t.viewCache()
	vc.mu.Lock()
	if v, ok := vc.aux[key]; ok {
		vc.mu.Unlock()
		return v
	}
	vc.mu.Unlock()
	v := build()
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if vc.aux == nil {
		vc.aux = make(map[any]any)
	}
	if prev, ok := vc.aux[key]; ok {
		return prev
	}
	vc.aux[key] = v
	return v
}

// FloatView returns the cached float64 decoding of numeric column c, or
// nil when the column is not numeric. The returned view is shared and
// read-only; it is rebuilt when rows were appended after the last build.
func (t *Table) FloatView(c int) *FloatView {
	if c < 0 || c >= len(t.schema) || !t.schema[c].Type.IsNumeric() {
		return nil
	}
	vc := t.viewCache()
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if vc.float == nil {
		vc.float = make(map[int]*floatEntry)
	}
	if e, ok := vc.float[c]; ok && e.rows == t.nrows {
		return e.view
	}
	col := t.cols[c]
	fv := &FloatView{Vals: make([]float64, t.nrows), Null: bitset.New(t.nrows)}
	for i := 0; i < t.nrows; i++ {
		v := col[i]
		if v.IsNull() {
			fv.Vals[i] = nan
			fv.Null.Set(i)
			continue
		}
		fv.Vals[i] = v.Float()
	}
	vc.float[c] = &floatEntry{view: fv, rows: t.nrows}
	return fv
}

// DictView returns the cached dictionary encoding of string column c, or
// nil when the column is not a string column. The returned view is
// shared and read-only.
func (t *Table) DictView(c int) *DictView {
	if c < 0 || c >= len(t.schema) || t.schema[c].Type != TString {
		return nil
	}
	vc := t.viewCache()
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if vc.dict == nil {
		vc.dict = make(map[int]*dictEntry)
	}
	if e, ok := vc.dict[c]; ok && e.rows == t.nrows {
		return e.view
	}
	col := t.cols[c]
	dv := &DictView{Codes: make([]int32, t.nrows), byStr: make(map[string]int32)}
	for i := 0; i < t.nrows; i++ {
		v := col[i]
		if v.IsNull() {
			dv.Codes[i] = -1
			continue
		}
		code, ok := dv.byStr[v.S]
		if !ok {
			code = int32(len(dv.Values))
			dv.byStr[v.S] = code
			dv.Values = append(dv.Values, v.S)
		}
		dv.Codes[i] = code
	}
	vc.dict[c] = &dictEntry{view: dv, rows: t.nrows}
	return dv
}
