package engine

import (
	"math"
	"sort"
	"sync"
)

var nan = math.NaN()

// This file implements the typed column views behind DBWipes' columnar
// scoring fast path, maintained incrementally and — since the
// segmented-storage work — chunked on the same fixed-size row segments
// as the storage itself. A sealed segment's decode (floatChunk /
// dictChunk, see segment.go) is built once, whole-segment-at-a-time,
// and lives ON the segment: every table version that contains the
// segment shares the chunk by pointer, and when retention drops the
// segment the decode memory goes with it. The growable tail has one
// incremental decoder per column (tailFloat / the dictState's tail
// codes), extended by exactly the appended suffix; sealing the tail
// migrates the finished decode into the new segment's chunks.
//
// Callers receive immutable per-version *snapshots* (FloatView /
// DictView): a window of per-segment chunk slices. Sealed chunks are
// aliased (immutable once built); the tail's value slice is aliased
// with a capacity clamp (extension writes only past every published
// snapshot's length) while tail NULL words are copied — a ≤
// segWords memcpy, the price of keeping bitset word boundaries
// immutable per snapshot. Segment sizes are ≥ 64 rows, so every
// segment's NULL words align with global bitset words: word w of
// segment k covers rows k*SegRows + [64w, 64w+64).
//
// Dictionary codes are family-global and assigned in first-appearance
// (row) order, which requires decoding string columns sequentially;
// the dictState tracks the contiguous decode frontier in stream rows.
// The dictionary itself (values, byStr) never shrinks — strings whose
// rows were all dropped by retention keep their codes.

// FloatView is a decoded numeric column over one table version: a
// window of per-segment chunks. V(i) is row i's value coerced to
// float64 (NaN for NULL — consult IsNull to distinguish a stored NaN
// from a NULL).
//
// A faultable segment (out-of-core, see fault.go) keeps nil entries in
// segs/nulls and a segment pointer in fsegs: PinSeg faults its chunk
// in under a pin, and the per-row accessors (V, IsNull) fall back to a
// transient pin per call — correct but slow; scan loops should hold a
// PinSeg pin per segment instead.
type FloatView struct {
	segs  [][]float64
	nulls [][]uint64
	n     int
	bits  uint
	mask  int
	// fsegs[k] is non-nil iff segment k is faultable; col/tname address
	// the chunk through the segment's loader.
	fsegs []*segment
	col   int
	tname string
}

// Len returns the number of rows the view covers.
func (f *FloatView) Len() int { return f.n }

// V returns row i's float64 value (NaN when NULL).
func (f *FloatView) V(i int) float64 {
	if s := f.segs[i>>f.bits]; s != nil {
		return s[i&f.mask]
	}
	vals, _, release, _ := f.fsegs[i>>f.bits].pinFloat(f.tname, f.col)
	v := vals[i&f.mask]
	release()
	return v
}

// IsNull reports whether row i is NULL.
func (f *FloatView) IsNull(i int) bool {
	off := i & f.mask
	if null := f.nulls[i>>f.bits]; null != nil {
		return null[off>>6]&(1<<(uint(off)&63)) != 0
	}
	_, null, release, _ := f.fsegs[i>>f.bits].pinFloat(f.tname, f.col)
	v := null[off>>6]&(1<<(uint(off)&63)) != 0
	release()
	return v
}

// NumSegs returns the number of segment chunks in the window (the last
// may be partial).
func (f *FloatView) NumSegs() int { return len(f.segs) }

// Seg returns segment k's value slice (read-only); its length is the
// number of view rows in the segment. For a faultable segment the
// chunk is faulted under a transient pin — the slice stays valid (the
// pool evicting it only drops its reference), but callers that read
// many segments should prefer PinSeg so residency accounting sees the
// access.
func (f *FloatView) Seg(k int) []float64 {
	if s := f.segs[k]; s != nil {
		return s
	}
	vals, _, release, _ := f.fsegs[k].pinFloat(f.tname, f.col)
	release()
	return vals
}

// NullSeg returns segment k's NULL bitmap words (read-only). Word w
// covers rows SegStart(k) + [64w, 64w+64); segments are word-aligned,
// so these concatenate into the view-global NULL bitmap. Faultable
// segments behave as in Seg.
func (f *FloatView) NullSeg(k int) []uint64 {
	if s := f.nulls[k]; s != nil {
		return s
	}
	_, null, release, _ := f.fsegs[k].pinFloat(f.tname, f.col)
	release()
	return null
}

// SegFaultable reports whether segment k's chunk loads on demand (nil
// in the resident window).
func (f *FloatView) SegFaultable(k int) bool { return f.fsegs != nil && f.fsegs[k] != nil }

// PinSeg returns segment k's value slice and NULL words under a pin.
// release must be called exactly once when the caller stops reading;
// missed reports a backing-store fault (false = resident or pool hit).
// Chunk-load failures panic *SegmentLoadError (see CatchSegmentLoad).
func (f *FloatView) PinSeg(k int) (vals []float64, null []uint64, release func(), missed bool) {
	if s := f.segs[k]; s != nil {
		return s, f.nulls[k], releaseNoop, false
	}
	return f.fsegs[k].pinFloat(f.tname, f.col)
}

// SegStart returns the first view row of segment k.
func (f *FloatView) SegStart(k int) int { return k << f.bits }

// SegRows returns the rows-per-segment of the view's geometry.
func (f *FloatView) SegRows() int { return 1 << f.bits }

// DictView is a dictionary-encoded string column over one table
// version: per-segment code chunks plus the family dictionary.
// CodeAt(i) indexes Values, or is -1 for NULL. Values lists the
// distinct strings in first-appearance order — which makes codes
// append-stable: a string's code never changes as rows are appended,
// so views of different table versions agree on every shared code.
type DictView struct {
	segs [][]int32
	n    int
	bits uint
	mask int
	// values is the dictionary bounded to this snapshot's rows.
	values []string
	byStr  map[string]int32
	// nvals bounds Code lookups: the shared byStr map may contain
	// strings that first appear after this snapshot's last row (their
	// codes are >= nvals), and those must read as absent here.
	nvals int32
	// dsegs[k] is non-nil iff segment k is faultable (codes pinned on
	// demand, see FloatView's fsegs).
	dsegs []*segment
	col   int
	tname string
}

// Len returns the number of rows the view covers.
func (d *DictView) Len() int { return d.n }

// CodeAt returns row i's dictionary code (-1 for NULL).
func (d *DictView) CodeAt(i int) int32 {
	if s := d.segs[i>>d.bits]; s != nil {
		return s[i&d.mask]
	}
	codes, release, _ := d.dsegs[i>>d.bits].pinCodes(d.tname, d.col)
	c := codes[i&d.mask]
	release()
	return c
}

// NumSegs returns the number of segment chunks in the window.
func (d *DictView) NumSegs() int { return len(d.segs) }

// Seg returns segment k's code slice (read-only). Faultable segments
// are faulted under a transient pin (see FloatView.Seg).
func (d *DictView) Seg(k int) []int32 {
	if s := d.segs[k]; s != nil {
		return s
	}
	codes, release, _ := d.dsegs[k].pinCodes(d.tname, d.col)
	release()
	return codes
}

// SegFaultable reports whether segment k's codes load on demand.
func (d *DictView) SegFaultable(k int) bool { return d.dsegs != nil && d.dsegs[k] != nil }

// PinSeg returns segment k's codes under a pin (contract as in
// FloatView.PinSeg).
func (d *DictView) PinSeg(k int) (codes []int32, release func(), missed bool) {
	if s := d.segs[k]; s != nil {
		return s, releaseNoop, false
	}
	return d.dsegs[k].pinCodes(d.tname, d.col)
}

// SegStart returns the first view row of segment k.
func (d *DictView) SegStart(k int) int { return k << d.bits }

// Values returns the distinct strings in first-appearance order,
// bounded to this snapshot's rows. Read-only.
func (d *DictView) Values() []string { return d.values }

// NumValues returns the number of distinct strings within this
// snapshot's rows.
func (d *DictView) NumValues() int { return int(d.nvals) }

// Value returns the string of a code returned by CodeAt.
func (d *DictView) Value(code int32) string { return d.values[code] }

// Code returns the dictionary code of s, or -1 when s does not occur in
// the column (within this snapshot's rows).
func (d *DictView) Code(s string) int32 {
	if c, ok := d.byStr[s]; ok && c < d.nvals {
		return c
	}
	return -1
}

// tableViews is the per-table-family view cache and version state. It
// lives behind a pointer so Rename's, AppendBatch's and RetainTail's
// shallow copies share it (shared storage, shared cache) and so the
// Table struct stays copyable without copying a lock.
type tableViews struct {
	mu sync.Mutex
	// pub is the family's publication counter: each AppendBatch or
	// RetainTail bumps it, and mutations require the acting version to
	// carry the current stamp — the linear-history check.
	pub uint64
	// hw is the family's stream high-water mark (rows ever appended);
	// curBase the newest version's retention base.
	hw      int
	curBase int
	// epoch is the stream segment index of the current tail: the number
	// of segments ever sealed (retention never decrements it).
	epoch   int
	segBits uint
	// tailF holds the incremental float decoders of the current tail
	// epoch, dict the per-column family dictionary state.
	tailF map[int]*tailFloat
	dict  map[int]*dictState
	// fsnap/dsnap cache the most recently built snapshot per column.
	fsnap map[int]*FloatView
	dsnap map[int]*DictView
	aux   map[any]any
}

// tailFloat incrementally decodes the current tail epoch of one
// numeric column: rows [0, built) of the tail are decoded into vals
// and the NULL words (sized for a full segment up front, so extension
// never reallocates them).
type tailFloat struct {
	vals  []float64
	null  []uint64
	built int
}

func (tf *tailFloat) decodeOne(v Value) {
	if v.IsNull() {
		tf.vals = append(tf.vals, nan)
		tf.null[tf.built>>6] |= 1 << (uint(tf.built) & 63)
	} else {
		tf.vals = append(tf.vals, v.Float())
	}
	tf.built++
}

// dictMark records the dictionary size right after a new string's
// first appearance: after stream row rows-1, nvals strings had been
// seen. Snapshots at older lengths use the marks to bound Values/Code
// exactly.
type dictMark struct {
	rows  int
	nvals int32
}

// dictState is one string column's family-level dictionary plus its
// sequential decode frontier.
type dictState struct {
	values []string
	byStr  map[string]int32
	// shared is true once byStr has been handed to a snapshot; the next
	// insertion then clones the map first (copy-on-grow), so published
	// snapshots never observe a map write.
	shared bool
	marks  []dictMark
	// decoded is the contiguous stream-row decode frontier.
	decoded int
	// tailCodes holds the decoded codes of the current tail epoch.
	tailCodes []int32
}

// code interns v (stream row r) and returns its dictionary code.
func (ds *dictState) code(v Value, r int) int32 {
	if v.IsNull() {
		return -1
	}
	c, ok := ds.byStr[v.S]
	if !ok {
		if ds.shared {
			clone := make(map[string]int32, len(ds.byStr)+1)
			for k, cv := range ds.byStr {
				clone[k] = cv
			}
			ds.byStr = clone
			ds.shared = false
		}
		c = int32(len(ds.values))
		ds.byStr[v.S] = c
		ds.values = append(ds.values, v.S)
		ds.marks = append(ds.marks, dictMark{rows: r + 1, nvals: c + 1})
	}
	return c
}

// decodeOne interns one tail value at stream row r, advancing the
// frontier.
func (ds *dictState) decodeOne(v Value, r int) {
	ds.tailCodes = append(ds.tailCodes, ds.code(v, r))
	ds.decoded = r + 1
}

// nvalsAt bounds the dictionary to the strings that had appeared by
// stream row end (marks record each first appearance).
func (ds *dictState) nvalsAt(end int) int32 {
	i := sort.Search(len(ds.marks), func(i int) bool { return ds.marks[i].rows > end })
	if i == 0 {
		return 0
	}
	return ds.marks[i-1].nvals
}

func (t *Table) viewCache() *tableViews {
	if t.views == nil {
		// Zero-value / legacy tables: allocate on first use. NewTable
		// initializes views, so this path is single-goroutine setup code.
		if t.bits == 0 {
			t.bits = DefaultSegmentBits
			t.mask = 1<<t.bits - 1
		}
		t.views = &tableViews{segBits: t.bits, hw: t.nrows}
	}
	return t.views
}

// RowSynced is implemented by aux cache values (AuxLoadOrStore) that
// maintain per-row derived state — e.g. the executor's predicate index
// with its cached clause masks. AuxLoadOrStore calls SyncRows with the
// requesting table version on every access, so the value can extend
// itself to a grown snapshot (decoding only the appended suffix) — or
// rebase itself after retention by dropping whole head segments —
// instead of being rebuilt from row 0.
type RowSynced interface {
	SyncRows(t *Table)
}

// AuxLoadOrStore returns the per-table auxiliary cache entry for key,
// building it with build on first request. Entries share the table
// family's lifetime (and its Rename/AppendBatch/RetainTail copies),
// which lets higher layers — the executor's predicate index, for
// instance — cache derived structures per table without a
// process-global map that outlives the table. build may run more than
// once under a race; exactly one result wins. Values implementing
// RowSynced are notified of the requesting table version before being
// returned.
func (t *Table) AuxLoadOrStore(key any, build func() any) any {
	v := t.auxLoadOrStore(key, build)
	if rs, ok := v.(RowSynced); ok {
		rs.SyncRows(t)
	}
	return v
}

func (t *Table) auxLoadOrStore(key any, build func() any) any {
	vc := t.viewCache()
	vc.mu.Lock()
	if v, ok := vc.aux[key]; ok {
		vc.mu.Unlock()
		return v
	}
	vc.mu.Unlock()
	v := build()
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if vc.aux == nil {
		vc.aux = make(map[any]any)
	}
	if prev, ok := vc.aux[key]; ok {
		return prev
	}
	vc.aux[key] = v
	return v
}

// ensureFloat builds (once) the whole-segment float decode of column c.
// Caller holds the family views lock.
func (s *segment) ensureFloat(c int, segWords int) *floatChunk {
	if ch := s.fchunk[c]; ch != nil {
		return ch
	}
	if s.faultable() {
		panic("engine: ensureFloat on a faultable segment (pin through the loader instead)")
	}
	col := s.cols[c]
	vals := make([]float64, len(col))
	null := make([]uint64, segWords)
	for i, v := range col {
		if v.IsNull() {
			vals[i] = nan
			null[i>>6] |= 1 << (uint(i) & 63)
		} else {
			vals[i] = v.Float()
		}
	}
	ch := &floatChunk{vals: vals, null: null}
	s.fchunk[c] = ch
	return ch
}

// liveTail reports whether this version's tail is the family's current
// tail epoch (no newer version has sealed it yet).
func (t *Table) liveTailLocked() bool {
	return t.base>>t.bits+len(t.sealed) == t.views.epoch
}

// FloatView returns the float64 decoding of numeric column c at this
// table version's window, or nil when the column is not numeric. The
// returned view is an immutable snapshot; sealed-segment chunks are
// shared across all versions containing the segment, and appended rows
// extend only the tail decoder.
func (t *Table) FloatView(c int) *FloatView {
	if c < 0 || c >= len(t.schema) || !t.schema[c].Type.IsNumeric() {
		return nil
	}
	vc := t.viewCache()
	vc.mu.Lock()
	defer vc.mu.Unlock()
	// The cache only ever holds the newest window at the current base
	// (RetainTail clears it); within one base, equal length pins it to
	// exactly this version's window.
	if s := vc.fsnap[c]; s != nil && s.n == t.nrows && vc.curBase == t.base {
		return s
	}
	segWords := segWordsOf(t.bits)
	nsegs := len(t.sealed)
	tailLen := t.nrows - nsegs<<t.bits
	fv := &FloatView{n: t.nrows, bits: t.bits, mask: t.mask, col: c, tname: t.name}
	fv.segs = make([][]float64, 0, nsegs+1)
	fv.nulls = make([][]uint64, 0, nsegs+1)
	for k, seg := range t.sealed {
		if seg.faultable() {
			// Out-of-core segment: the snapshot records the segment, not
			// the data — chunks pin in through the loader at read time and
			// are never cached here (the pool is the only cache).
			if fv.fsegs == nil {
				fv.fsegs = make([]*segment, nsegs+1)
			}
			fv.fsegs[k] = seg
			fv.segs = append(fv.segs, nil)
			fv.nulls = append(fv.nulls, nil)
			continue
		}
		ch := seg.ensureFloat(c, segWords)
		fv.segs = append(fv.segs, ch.vals)
		fv.nulls = append(fv.nulls, ch.null)
	}
	if tailLen > 0 {
		var vals []float64
		null := make([]uint64, (tailLen+63)>>6)
		if t.liveTailLocked() {
			if vc.tailF == nil {
				vc.tailF = make(map[int]*tailFloat)
			}
			tf := vc.tailF[c]
			if tf == nil {
				tf = &tailFloat{null: make([]uint64, segWords)}
				vc.tailF[c] = tf
			}
			for tf.built < tailLen {
				tf.decodeOne(t.tail[c][tf.built])
			}
			vals = tf.vals[:tailLen:tailLen]
			copy(null, tf.null)
			if rem := tailLen & 63; rem != 0 {
				null[len(null)-1] &= 1<<uint(rem) - 1
			}
		} else {
			// Superseded tail (the family has sealed past this version):
			// decode the partial window directly, uncached. Rare — only
			// versions already straddled by later appends land here.
			vals = make([]float64, tailLen)
			for i := 0; i < tailLen; i++ {
				if v := t.tail[c][i]; v.IsNull() {
					vals[i] = nan
					null[i>>6] |= 1 << (uint(i) & 63)
				} else {
					vals[i] = v.Float()
				}
			}
		}
		fv.segs = append(fv.segs, vals)
		fv.nulls = append(fv.nulls, null)
	}
	if t.base == vc.curBase && t.base+t.nrows == vc.hw {
		if vc.fsnap == nil {
			vc.fsnap = make(map[int]*FloatView)
		}
		vc.fsnap[c] = fv
	}
	return fv
}

// DictView returns the dictionary encoding of string column c at this
// table version's window, or nil when the column is not a string
// column — or when the version predates the family's current retention
// base (callers then fall back to the boxed value path; such stale
// snapshots are already superseded). Codes are append-stable
// (first-appearance order), which requires sequential decode: the
// family decodes string columns in stream-row order regardless of
// which version asks first.
func (t *Table) DictView(c int) *DictView {
	if c < 0 || c >= len(t.schema) || t.schema[c].Type != TString {
		return nil
	}
	vc := t.viewCache()
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if t.base != vc.curBase {
		return nil
	}
	if s := vc.dsnap[c]; s != nil && s.n == t.nrows {
		return s
	}
	if vc.dict == nil {
		vc.dict = make(map[int]*dictState)
	}
	ds := vc.dict[c]
	if ds == nil {
		ds = &dictState{byStr: make(map[string]int32)}
		vc.dict[c] = ds
	}
	if ds.decoded < t.base {
		ds.decoded = t.base // rows dropped before first decode never intern
	}
	end := t.base + t.nrows
	nsegs := len(t.sealed)
	tailLen := t.nrows - nsegs<<t.bits
	segRows := 1 << t.bits
	live := t.liveTailLocked()
	// Advance the contiguous decode frontier to this version's end.
	for ds.decoded < end {
		sk := ds.decoded >> t.bits // stream segment of the frontier
		k := sk - t.base>>t.bits   // local segment index in t
		if k < nsegs {
			seg := t.sealed[k]
			if seg.faultable() {
				// Out-of-core segment: its codes live in the loader's
				// chunks, assigned by the dictionary this column was
				// preloaded with — nothing to intern.
				ds.decoded = (sk + 1) << t.bits
				continue
			}
			codes := make([]int32, segRows)
			for i, v := range seg.cols[c] {
				codes[i] = ds.code(v, sk<<t.bits+i)
			}
			seg.dchunk[c] = &dictChunk{codes: codes}
			ds.decoded = (sk + 1) << t.bits
			continue
		}
		if !live {
			// The rows live in a segment sealed by a newer version,
			// unreachable from this one; the caller falls back to boxed
			// values. The frontier is untouched, so a newer version's
			// request decodes them in order.
			return nil
		}
		off := ds.decoded - vc.epoch<<t.bits
		ds.decodeOne(t.tail[c][off], ds.decoded)
	}
	dv := &DictView{n: t.nrows, bits: t.bits, mask: t.mask, col: c, tname: t.name}
	dv.segs = make([][]int32, 0, nsegs+1)
	for k, seg := range t.sealed {
		if seg.faultable() {
			if dv.dsegs == nil {
				dv.dsegs = make([]*segment, nsegs+1)
			}
			dv.dsegs[k] = seg
			dv.segs = append(dv.segs, nil)
			continue
		}
		if seg.dchunk[c] == nil {
			// Decoded before this version's base moved (pre-retention
			// frontier skips): decode directly — all codes exist.
			codes := make([]int32, segRows)
			for i, v := range seg.cols[c] {
				codes[i] = ds.lookup(v)
			}
			seg.dchunk[c] = &dictChunk{codes: codes}
		}
		dv.segs = append(dv.segs, seg.dchunk[c].codes)
	}
	if tailLen > 0 {
		if live {
			dv.segs = append(dv.segs, ds.tailCodes[:tailLen:tailLen])
		} else {
			codes := make([]int32, tailLen)
			for i := 0; i < tailLen; i++ {
				codes[i] = ds.lookup(t.tail[c][i])
			}
			dv.segs = append(dv.segs, codes)
		}
	}
	nvals := ds.nvalsAt(end)
	dv.values = ds.values[:nvals:nvals]
	dv.byStr = ds.byStr
	dv.nvals = nvals
	ds.shared = true
	if end == vc.hw {
		if vc.dsnap == nil {
			vc.dsnap = make(map[int]*DictView)
		}
		vc.dsnap[c] = dv
	}
	return dv
}

// lookup returns the code of an already-interned value (every row at or
// below the decode frontier has one); NULL is -1.
func (ds *dictState) lookup(v Value) int32 {
	if v.IsNull() {
		return -1
	}
	return ds.byStr[v.S]
}
