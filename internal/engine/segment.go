package engine

// This file defines the fixed-size row segment that the storage spine
// is built from. A table version is an ordered list of SEALED segments
// (each exactly SegRows rows, immutable once sealed) plus a growable
// TAIL holding the newest < SegRows rows. Appends only ever touch the
// tail: a batch fills the tail arrays in place (writes land past every
// published version's row count, so older snapshots never observe
// them), and when the tail reaches SegRows rows it is sealed — its
// arrays become a segment shared by reference — and a fresh tail
// starts. Copy-on-write versions therefore share all sealed segments
// and the tail arrays; the per-version state is just the segment
// pointer list, the tail slice headers, and the row count. No append
// ever copies a whole column again: the worst-case copy is one tail
// reallocation, bounded by the segment size.
//
// Segments are also the unit of RETENTION (retain.go): dropping the
// oldest k sealed segments produces a new version whose row ids are
// rebased down by k*SegRows. Segment sizes are powers of two and at
// least 64 rows, so a segment boundary is always a bitset word
// boundary — dropped head rows correspond to whole []uint64 words in
// every lineage bitset and clause mask, which is what lets carried
// incremental state rebase by word-shift instead of rebuilding.
//
// Decoded column chunks (float values + NULL words, dictionary codes)
// live ON the segment, so their memory is dropped together with the
// segment when retention lets go of it.

const (
	// DefaultSegmentBits sizes segments at 64Ki rows: large enough that
	// per-segment bookkeeping is negligible, small enough that a
	// retention pass reclaims memory in useful steps.
	DefaultSegmentBits = 16
	// MinSegmentBits is the smallest legal segment size: 64 rows = one
	// bitset word, the invariant that keeps segment boundaries
	// word-aligned in every bitmap. Tests force this size so short
	// append chains straddle many segment boundaries.
	MinSegmentBits = 6
)

// segment is one sealed run of exactly segRows rows. cols holds the
// boxed values; fchunk/dchunk hold the lazily built typed decodings
// (guarded by the family's views.mu). All fields are immutable once
// built — a chunk is decoded whole-segment-at-once, so readers outside
// the lock only ever see nil or a complete chunk.
//
// A FAULTABLE segment (attached by AttachLoadedSegment, fault.go) has
// cols == nil and loader != nil: its chunks are pinned on demand
// through the loader and are NEVER cached on the segment — the
// loader's pool is the only cache, so evicting there actually frees
// the memory. fchunk/dchunk stay all-nil for its lifetime.
type segment struct {
	cols   [][]Value
	fchunk []*floatChunk
	dchunk []*dictChunk
	// loader/streamIdx/zones are the out-of-core state (immutable):
	// loader faults chunks by (streamIdx, col); zones, when present,
	// holds one per-column zone map for predicate pruning.
	loader    ChunkLoader
	streamIdx int
	zones     []ZoneInfo
}

// floatChunk is one numeric column's decode of one sealed segment:
// vals[i] is row i's float64 coercion (NaN for NULL), null the NULL
// bitmap words (exactly segWords of them).
type floatChunk struct {
	vals []float64
	null []uint64
}

// dictChunk is one string column's dictionary codes over one sealed
// segment (codes index the family-level dictionary; -1 is NULL).
type dictChunk struct {
	codes []int32
}

// SegmentBits returns log2 of the table family's segment row count.
func (t *Table) SegmentBits() uint { return t.bits }

// SegRows returns the family's rows-per-segment (a power of two ≥ 64).
func (t *Table) SegRows() int { return 1 << t.bits }

// Base returns the number of stream rows dropped from the head of this
// version by retention — always a multiple of SegRows. Local row id r
// of this version is stream row r + Base(); carried state from an
// older version rebases ids down by the base delta.
func (t *Table) Base() int { return t.base }

// Version returns this version's stream high-water mark: Base() +
// NumRows(), the total number of rows ever appended up to this
// version. It is monotone under appends and unchanged by retention
// (which moves Base, not the stream end); two versions of one family
// with equal Version are distinguished by Base.
func (t *Table) Version() int { return t.base + t.nrows }

// NumSegments reports the version's sealed segment count and whether a
// partial tail is present — the retained-memory figure retention and
// the server's stats endpoint report.
func (t *Table) NumSegments() (sealed int, tailRows int) {
	return len(t.sealed), t.nrows - len(t.sealed)<<t.bits
}

// SegmentCols exposes sealed segment k's column value slices — the
// spill hook a durability layer (internal/store) encodes segment files
// from. Sealed segments are immutable, so the returned slices are safe
// to read without holding any lock, and callers must not mutate them.
// k indexes this version's sealed segments (stream segment index =
// Base()/SegRows + k). For a faultable segment (one the store itself
// attached, so one it already holds on disk) it returns nil.
func (t *Table) SegmentCols(k int) [][]Value {
	return t.sealed[k].cols
}

// sealTailLocked seals the current tail into a segment appended to
// nt.sealed and starts a fresh tail. Caller holds views.mu and has
// verified the tail is exactly full. nt must be the newest version (the
// one being grown); older versions keep their own tail headers, which
// alias the sealed arrays and stay valid.
func (nt *Table) sealTailLocked() {
	vc := nt.views
	ncols := len(nt.schema)
	segRows := 1 << nt.bits
	seg := &segment{
		cols:   make([][]Value, ncols),
		fchunk: make([]*floatChunk, ncols),
		dchunk: make([]*dictChunk, ncols),
	}
	for c := 0; c < ncols; c++ {
		seg.cols[c] = nt.tail[c][:segRows:segRows]
	}
	// Migrate the tail's incremental decode state into the segment's
	// chunks so the decode work done so far is kept, then reset the
	// tail decoders for the new epoch. An untouched decoder (no view
	// ever requested) migrates nothing; the chunk builds lazily later.
	for c, tf := range vc.tailF {
		if tf == nil || tf.built == 0 {
			continue
		}
		for i := tf.built; i < segRows; i++ {
			tf.decodeOne(seg.cols[c][i])
		}
		null := make([]uint64, segWordsOf(nt.bits))
		copy(null, tf.null)
		seg.fchunk[c] = &floatChunk{vals: tf.vals[:segRows:segRows], null: null}
	}
	for c, ds := range vc.dict {
		tailStart := vc.epoch << nt.bits
		if ds.decoded <= tailStart {
			continue
		}
		for r := ds.decoded; r < tailStart+segRows; r++ {
			ds.decodeOne(seg.cols[c][r-tailStart], r)
		}
		seg.dchunk[c] = &dictChunk{codes: ds.tailCodes[:segRows:segRows]}
		ds.tailCodes = nil
	}
	vc.tailF = nil
	vc.epoch++
	nt.sealed = append(nt.sealed, seg)
	nt.tail = make([][]Value, ncols)
}

func segWordsOf(bits uint) int { return 1 << (bits - 6) }
