package engine

import (
	"bytes"
	"strings"
	"testing"
)

func testTable(t *testing.T) *Table {
	t.Helper()
	tbl := MustNewTable("t", NewSchema("id", TInt, "name", TString, "score", TFloat))
	rows := []struct {
		id    int64
		name  string
		score float64
	}{
		{1, "a", 1.5}, {2, "b", 2.5}, {3, "a", 3.5}, {4, "c", 4.5}, {5, "a", 5.5},
	}
	for _, r := range rows {
		tbl.MustAppendRow(NewInt(r.id), NewString(r.name), NewFloat(r.score))
	}
	return tbl
}

func TestSchemaValidate(t *testing.T) {
	if err := NewSchema("a", TInt, "b", TString).Validate(); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
	if err := (Schema{{Name: "a", Type: TInt}, {Name: "A", Type: TInt}}).Validate(); err == nil {
		t.Error("duplicate column accepted")
	}
	if err := (Schema{{Name: "", Type: TInt}}).Validate(); err == nil {
		t.Error("empty name accepted")
	}
	if err := (Schema{{Name: "x", Type: TNull}}).Validate(); err == nil {
		t.Error("null type accepted")
	}
}

func TestSchemaColIndexCaseInsensitive(t *testing.T) {
	s := NewSchema("MoteId", TInt)
	if s.ColIndex("moteid") != 0 || s.ColIndex("MOTEID") != 0 {
		t.Error("case-insensitive lookup failed")
	}
	if s.ColIndex("nope") != -1 {
		t.Error("missing column should be -1")
	}
}

func TestTableAppendAndAccess(t *testing.T) {
	tbl := testTable(t)
	if tbl.NumRows() != 5 || tbl.NumCols() != 3 {
		t.Fatalf("dims: %dx%d", tbl.NumRows(), tbl.NumCols())
	}
	if got := tbl.Value(2, 1).Str(); got != "a" {
		t.Errorf("Value(2,1) = %q", got)
	}
	row := tbl.Row(4)
	if row[0].Int() != 5 || row[2].Float() != 5.5 {
		t.Errorf("Row(4) = %v", row)
	}
	dst := make([]Value, 3)
	tbl.RowInto(0, dst)
	if dst[1].Str() != "a" {
		t.Errorf("RowInto: %v", dst)
	}
}

func TestTableTypeChecking(t *testing.T) {
	tbl := MustNewTable("t", NewSchema("x", TInt))
	if _, err := tbl.AppendRow([]Value{NewString("no")}); err == nil {
		t.Error("string into int column accepted")
	}
	if _, err := tbl.AppendRow([]Value{NewInt(1), NewInt(2)}); err == nil {
		t.Error("wrong arity accepted")
	}
	// NULL is storable everywhere.
	if _, err := tbl.AppendRow([]Value{Null}); err != nil {
		t.Errorf("null rejected: %v", err)
	}
	// Int widens into float columns.
	ft := MustNewTable("f", NewSchema("x", TFloat))
	if _, err := ft.AppendRow([]Value{NewInt(3)}); err != nil {
		t.Errorf("int into float rejected: %v", err)
	}
	if ft.Value(0, 0).T != TFloat {
		t.Errorf("widening type: %v", ft.Value(0, 0).T)
	}
}

func TestTableSelectAndWithout(t *testing.T) {
	tbl := testTable(t)
	sel := tbl.Select([]int{4, 0})
	if sel.NumRows() != 2 || sel.Value(0, 0).Int() != 5 || sel.Value(1, 0).Int() != 1 {
		t.Errorf("Select: %v", sel)
	}
	wo := tbl.Without(map[int]bool{1: true, 3: true})
	if wo.NumRows() != 3 {
		t.Errorf("Without rows: %d", wo.NumRows())
	}
	for i := 0; i < wo.NumRows(); i++ {
		id := wo.Value(i, 0).Int()
		if id == 2 || id == 4 {
			t.Errorf("Without kept excluded id %d", id)
		}
	}
}

func TestDistinctValues(t *testing.T) {
	tbl := testTable(t)
	vals, counts := tbl.DistinctValues(1)
	if len(vals) != 3 {
		t.Fatalf("distinct: %v", vals)
	}
	if vals[0].Str() != "a" || counts[0] != 3 {
		t.Errorf("most frequent: %v x%d", vals[0], counts[0])
	}
}

func TestNumericStats(t *testing.T) {
	tbl := testTable(t)
	min, max, mean, n, ok := tbl.NumericStats(2)
	if !ok || n != 5 || min != 1.5 || max != 5.5 || mean != 3.5 {
		t.Errorf("stats: min=%v max=%v mean=%v n=%d ok=%v", min, max, mean, n, ok)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := testTable(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "t2", tbl.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tbl.NumRows() {
		t.Fatalf("rows: %d vs %d", back.NumRows(), tbl.NumRows())
	}
	for r := 0; r < tbl.NumRows(); r++ {
		for c := 0; c < tbl.NumCols(); c++ {
			if !Equal(back.Value(r, c), tbl.Value(r, c)) {
				t.Errorf("(%d,%d): %v vs %v", r, c, back.Value(r, c), tbl.Value(r, c))
			}
		}
	}
}

func TestCSVInference(t *testing.T) {
	in := "id,name,score\n1,a,1.5\n2,b,\n"
	tbl, err := ReadCSV(strings.NewReader(in), "t", nil)
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.Schema()
	if s[0].Type != TInt || s[1].Type != TString || s[2].Type != TFloat {
		t.Errorf("inferred: %s", s)
	}
	if !tbl.Value(1, 2).IsNull() {
		t.Error("empty float field should be NULL")
	}
}

func TestDB(t *testing.T) {
	db := NewDB()
	db.Register(testTable(t))
	if _, err := db.Table("T"); err != nil {
		t.Errorf("case-insensitive lookup: %v", err)
	}
	if _, err := db.Table("missing"); err == nil {
		t.Error("missing table accepted")
	}
	if got := db.Names(); len(got) != 1 || got[0] != "t" {
		t.Errorf("Names: %v", got)
	}
	db.Drop("t")
	if _, err := db.Table("t"); err == nil {
		t.Error("dropped table still present")
	}
}
