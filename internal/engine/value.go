// Package engine implements the in-memory columnar storage substrate used
// by DBWipes: a NULL-aware typed value system, schemas, tables with stable
// row identifiers, a tiny database catalog, and CSV import/export.
//
// The engine plays the role PostgreSQL plays in the original DBWipes
// system: it stores the raw relations that aggregate queries run over and
// hands the executor (internal/exec) direct access to rows by identifier,
// which is what makes fine-grained provenance (lineage) cheap to capture.
package engine

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Type enumerates the dynamic types a Value may carry.
type Type int

// The supported value types. TNull is the type of the untyped NULL;
// columns are declared with one of the other types and may additionally
// hold NULLs.
const (
	TNull Type = iota
	TBool
	TInt
	TFloat
	TString
	TTime
)

// String returns the lowercase SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TNull:
		return "null"
	case TBool:
		return "bool"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TString:
		return "string"
	case TTime:
		return "time"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// IsNumeric reports whether values of the type can be coerced to float64
// for arithmetic and aggregation.
func (t Type) IsNumeric() bool {
	return t == TInt || t == TFloat || t == TBool || t == TTime
}

// Value is a dynamically typed scalar. The zero Value is NULL.
//
// Values are small (no pointers beyond the string header) and are passed
// by value throughout the engine.
type Value struct {
	T Type
	I int64   // payload for TBool (0/1), TInt and TTime (unix seconds)
	F float64 // payload for TFloat
	S string  // payload for TString
}

// Null is the NULL value.
var Null = Value{}

// NewBool returns a boolean Value.
func NewBool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{T: TBool, I: i}
}

// NewInt returns an integer Value.
func NewInt(i int64) Value { return Value{T: TInt, I: i} }

// NewFloat returns a float Value.
func NewFloat(f float64) Value { return Value{T: TFloat, F: f} }

// NewString returns a string Value.
func NewString(s string) Value { return Value{T: TString, S: s} }

// NewTime returns a time Value; the payload is stored as unix seconds.
func NewTime(t time.Time) Value { return Value{T: TTime, I: t.Unix()} }

// NewTimeUnix returns a time Value from unix seconds.
func NewTimeUnix(sec int64) Value { return Value{T: TTime, I: sec} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.T == TNull }

// Bool returns the boolean payload. It is false for NULL and for zero
// numerics, true for non-zero numerics and non-empty strings do NOT count:
// only TBool and numeric types convert.
func (v Value) Bool() bool {
	switch v.T {
	case TBool, TInt, TTime:
		return v.I != 0
	case TFloat:
		return v.F != 0
	default:
		return false
	}
}

// Int returns the value coerced to int64 (truncating floats). NULL and
// strings yield 0.
func (v Value) Int() int64 {
	switch v.T {
	case TBool, TInt, TTime:
		return v.I
	case TFloat:
		return int64(v.F)
	default:
		return 0
	}
}

// Float returns the value coerced to float64. NULL and non-numeric
// strings yield NaN so that accidental aggregation over strings is loud.
func (v Value) Float() float64 {
	switch v.T {
	case TBool, TInt, TTime:
		return float64(v.I)
	case TFloat:
		return v.F
	case TString:
		if f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64); err == nil {
			return f
		}
		return math.NaN()
	default:
		return math.NaN()
	}
}

// Time returns the time payload; the zero time for non-time values.
func (v Value) Time() time.Time {
	if v.T != TTime {
		return time.Time{}
	}
	return time.Unix(v.I, 0).UTC()
}

// Str returns the string payload if the value is a string, otherwise the
// rendered form.
func (v Value) Str() string {
	if v.T == TString {
		return v.S
	}
	return v.String()
}

// String renders the value for display and CSV export.
func (v Value) String() string {
	switch v.T {
	case TNull:
		return "NULL"
	case TBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case TInt:
		return strconv.FormatInt(v.I, 10)
	case TFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TString:
		return v.S
	case TTime:
		return v.Time().Format(time.RFC3339)
	default:
		return fmt.Sprintf("value(%d)", int(v.T))
	}
}

// SQL renders the value as a SQL literal (strings quoted and escaped).
// Float literals always carry a float marker: %g renders -0.0 as "-0"
// and 100.0 as "100", which re-parse as *integer* literals — and the
// parser's constant folding then drops the zero's sign, so the literal
// would not survive a parse → String → parse round trip.
func (v Value) SQL() string {
	switch v.T {
	case TString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case TTime:
		return "'" + v.Time().Format(time.RFC3339) + "'"
	case TFloat:
		s := strconv.FormatFloat(v.F, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eEIN") { // leave Inf/NaN alone (unrepresentable anyway)
			s += ".0"
		}
		return s
	default:
		return v.String()
	}
}

// comparable numeric coercion: both are numeric (incl. bool/time).
func bothNumeric(a, b Value) bool { return a.T.IsNumeric() && b.T.IsNumeric() }

// Compare orders two values. It returns a negative number, zero, or a
// positive number as a sorts before, equal to, or after b, and an error
// when the two types are incomparable (e.g. string vs int). NULL compares
// equal to NULL and before everything else, matching ORDER BY semantics
// (NULLS FIRST); predicate evaluation handles NULL separately with
// three-valued logic.
func Compare(a, b Value) (int, error) {
	switch {
	case a.IsNull() && b.IsNull():
		return 0, nil
	case a.IsNull():
		return -1, nil
	case b.IsNull():
		return 1, nil
	}
	if bothNumeric(a, b) {
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.T == TString && b.T == TString {
		return strings.Compare(a.S, b.S), nil
	}
	return 0, fmt.Errorf("engine: cannot compare %s with %s", a.T, b.T)
}

// Equal reports whether two values are equal under Compare semantics.
// Incomparable values are unequal.
func Equal(a, b Value) bool {
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Key returns a compact encoding of the value usable as a map key, with
// the property that Key(a) == Key(b) iff Equal(a, b) for same-kind values.
// Numerics of different types that compare equal encode identically.
func (v Value) Key() string {
	switch v.T {
	case TNull:
		return "\x00"
	case TBool, TInt, TTime, TFloat:
		f := v.Float()
		if f == 0 {
			// Canonicalize -0.0 to +0.0: Compare (IEEE ==) treats them as
			// equal, so Key must too, or -0 and +0 rows split into two
			// groups that Equal says are one (FormatFloat renders "-0").
			f = 0
		}
		return "n" + strconv.FormatFloat(f, 'g', -1, 64)
	case TString:
		return "s" + v.S
	default:
		return "?" + v.String()
	}
}

// ParseValue parses s into a value of type t. Empty strings parse to NULL
// for every type except TString.
func ParseValue(s string, t Type) (Value, error) {
	if s == "" && t != TString {
		return Null, nil
	}
	switch t {
	case TBool:
		b, err := strconv.ParseBool(strings.TrimSpace(s))
		if err != nil {
			return Null, fmt.Errorf("engine: parse bool %q: %w", s, err)
		}
		return NewBool(b), nil
	case TInt:
		i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return Null, fmt.Errorf("engine: parse int %q: %w", s, err)
		}
		return NewInt(i), nil
	case TFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return Null, fmt.Errorf("engine: parse float %q: %w", s, err)
		}
		return NewFloat(f), nil
	case TString:
		return NewString(s), nil
	case TTime:
		ts := strings.TrimSpace(s)
		for _, layout := range []string{time.RFC3339, "2006-01-02 15:04:05", "2006-01-02"} {
			if tm, err := time.Parse(layout, ts); err == nil {
				return NewTime(tm), nil
			}
		}
		if sec, err := strconv.ParseInt(ts, 10, 64); err == nil {
			return NewTimeUnix(sec), nil
		}
		return Null, fmt.Errorf("engine: parse time %q", s)
	default:
		return Null, fmt.Errorf("engine: parse into %s", t)
	}
}

// InferType guesses the narrowest type able to represent every sample.
// Preference order: int, float, time, bool, string. Empty strings are
// ignored (treated as NULL).
func InferType(samples []string) Type {
	isInt, isFloat, isBool, isTime := true, true, true, true
	seen := false
	for _, s := range samples {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		seen = true
		if _, err := strconv.ParseInt(s, 10, 64); err != nil {
			isInt = false
		}
		if _, err := strconv.ParseFloat(s, 64); err != nil {
			isFloat = false
		}
		if _, err := strconv.ParseBool(s); err != nil {
			isBool = false
		}
		if _, err := time.Parse(time.RFC3339, s); err != nil {
			if _, err := time.Parse("2006-01-02", s); err != nil {
				isTime = false
			}
		}
	}
	switch {
	case !seen:
		return TString
	case isBool && !isInt:
		return TBool
	case isInt:
		return TInt
	case isFloat:
		return TFloat
	case isTime:
		return TTime
	default:
		return TString
	}
}
