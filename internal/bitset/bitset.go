// Package bitset implements the dense bitmap that underpins DBWipes'
// columnar scoring fast path. Lineage sets, predicate match sets, and
// culpability sets are all subsets of [0, NumRows) of one source table,
// so a flat []uint64 bitmap turns the per-predicate set algebra
// (intersection with each group's lineage, membership counting) into
// word-level AND/popcount loops instead of hash-map probes.
//
// The janus-datalog lesson applies directly: provenance workloads are
// set-membership-bound, and the set representation decides the constant
// factor. A Bitset over a 100k-row table is ~12.5 KB — it fits in L1/L2
// and intersects in ~1.5k word operations.
package bitset

import "math/bits"

const wordBits = 64

// Bitset is a fixed-length dense bitmap over [0, Len()).
type Bitset struct {
	words []uint64
	n     int
}

// New returns an empty bitset able to hold n bits.
func New(n int) *Bitset {
	if n < 0 {
		n = 0
	}
	return &Bitset{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromWords wraps words as a bitset of length n, taking ownership of
// the slice. The slice is resized to exactly the word count n needs and
// ghost bits at positions >= n are cleared, so a prefix copied out of a
// longer canonical bitmap becomes a well-formed shorter bitset. This is
// the constructor the incremental view/mask maintenance uses to stamp
// per-table-version snapshots out of one growing word array.
func FromWords(n int, words []uint64) *Bitset {
	if n < 0 {
		n = 0
	}
	nw := (n + wordBits - 1) / wordBits
	for len(words) < nw {
		words = append(words, 0)
	}
	b := &Bitset{words: words[:nw], n: n}
	b.trimTail()
	return b
}

// SetInWords sets bit i in a growable canonical word slice (the raw
// form the incremental view/mask builders extend before stamping
// snapshots with FromWords), growing the slice as needed.
func SetInWords(words *[]uint64, i int) {
	wi := i >> 6
	for len(*words) <= wi {
		*words = append(*words, 0)
	}
	(*words)[wi] |= 1 << (uint(i) & 63)
}

// SnapshotWords stamps an immutable length-n bitset out of a canonical
// word slice: prefix copy, zero-padded or truncated to n's word count,
// ghost bits cleared. The input is not retained.
func SnapshotWords(n int, words []uint64) *Bitset {
	if n < 0 {
		n = 0
	}
	nw := (n + wordBits - 1) / wordBits
	w := make([]uint64, nw)
	if nw > len(words) {
		copy(w, words)
	} else {
		copy(w, words[:nw])
	}
	return FromWords(n, w)
}

// OrRangeAndNot sets bits [lo, n) of the canonical word slice to the
// complement of not's corresponding bits, word-at-a-time — the
// builder-side form of Fill+AndNot used when extending a non-NULL mask
// by an appended suffix. not must cover at least n bits.
func OrRangeAndNot(words *[]uint64, lo, n int, not []uint64) {
	if lo >= n {
		return
	}
	nw := (n + wordBits - 1) / wordBits
	for len(*words) < nw {
		*words = append(*words, 0)
	}
	w := *words
	loWord := lo >> 6
	for wi := loWord; wi < nw; wi++ {
		m := ^uint64(0)
		if wi == loWord {
			m &= ^uint64(0) << (uint(lo) & 63)
		}
		if wi == nw-1 {
			if rem := n - wi*wordBits; rem < wordBits {
				m &= (1 << uint(rem)) - 1
			}
		}
		w[wi] |= m &^ not[wi]
	}
}

// FromRows returns a bitset of length n with the given rows set. Rows
// outside [0, n) are ignored.
func FromRows(n int, rows []int) *Bitset {
	b := New(n)
	for _, r := range rows {
		if r >= 0 && r < n {
			b.words[r/wordBits] |= 1 << (uint(r) % wordBits)
		}
	}
	return b
}

// Len returns the bit capacity.
func (b *Bitset) Len() int { return b.n }

// Words exposes the backing words for read-only word-level iteration in
// hot loops. Callers must not mutate the returned slice.
func (b *Bitset) Words() []uint64 { return b.words }

// Set sets bit i. Out-of-range bits are ignored.
func (b *Bitset) Set(i int) {
	if i >= 0 && i < b.n {
		b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
	}
}

// Unset clears bit i. Out-of-range bits are ignored.
func (b *Bitset) Unset(i int) {
	if i >= 0 && i < b.n {
		b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
}

// Get reports whether bit i is set; out-of-range bits read as false.
func (b *Bitset) Get(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Reset clears every bit, keeping capacity.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Fill sets every bit in [0, Len()).
func (b *Bitset) Fill() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trimTail()
}

// FillFrom sets every bit in [lo, Len()), leaving bits below lo
// untouched — the window constructor for suffix-scoped filter masks.
func (b *Bitset) FillFrom(lo int) {
	if lo <= 0 {
		b.Fill()
		return
	}
	if lo >= b.n {
		return
	}
	wi := lo / wordBits
	b.words[wi] |= ^uint64(0) << (uint(lo) % wordBits)
	for i := wi + 1; i < len(b.words); i++ {
		b.words[i] = ^uint64(0)
	}
	b.trimTail()
}

// trimTail clears the unused high bits of the last word so Count and
// iteration never see ghost bits.
func (b *Bitset) trimTail() {
	if rem := b.n % wordBits; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Clone returns a deep copy.
func (b *Bitset) Clone() *Bitset {
	out := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(out.words, b.words)
	return out
}

// CopyFrom overwrites b with other's bits. The two must have the same
// length; CopyFrom panics otherwise.
func (b *Bitset) CopyFrom(other *Bitset) {
	if b.n != other.n {
		panic("bitset: CopyFrom length mismatch")
	}
	copy(b.words, other.words)
}

// The word-level set-algebra kernels below unroll their loops 4 words
// at a time. The Go compiler does not auto-vectorize, so the unroll is
// what amortizes loop overhead (bounds check, counter, branch) across
// 256 bits per iteration; the trailing scalar loop mops up the last
// 0–3 words.

// And intersects b with other in place (same length required).
func (b *Bitset) And(other *Bitset) {
	if b.n != other.n {
		panic("bitset: And length mismatch")
	}
	x := b.words
	y := other.words[:len(x)]
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x[i] &= y[i]
		x[i+1] &= y[i+1]
		x[i+2] &= y[i+2]
		x[i+3] &= y[i+3]
	}
	for ; i < len(x); i++ {
		x[i] &= y[i]
	}
}

// AndNot removes other's bits from b in place (same length required).
func (b *Bitset) AndNot(other *Bitset) {
	if b.n != other.n {
		panic("bitset: AndNot length mismatch")
	}
	x := b.words
	y := other.words[:len(x)]
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x[i] &^= y[i]
		x[i+1] &^= y[i+1]
		x[i+2] &^= y[i+2]
		x[i+3] &^= y[i+3]
	}
	for ; i < len(x); i++ {
		x[i] &^= y[i]
	}
}

// Or unions other into b in place (same length required).
func (b *Bitset) Or(other *Bitset) {
	if b.n != other.n {
		panic("bitset: Or length mismatch")
	}
	x := b.words
	y := other.words[:len(x)]
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x[i] |= y[i]
		x[i+1] |= y[i+1]
		x[i+2] |= y[i+2]
		x[i+3] |= y[i+3]
	}
	for ; i < len(x); i++ {
		x[i] |= y[i]
	}
}

// IntersectOf sets b = x & y without allocating (all same length).
func (b *Bitset) IntersectOf(x, y *Bitset) {
	if b.n != x.n || b.n != y.n {
		panic("bitset: IntersectOf length mismatch")
	}
	d := b.words
	xs := x.words[:len(d)]
	ys := y.words[:len(d)]
	i := 0
	for ; i+4 <= len(d); i += 4 {
		d[i] = xs[i] & ys[i]
		d[i+1] = xs[i+1] & ys[i+1]
		d[i+2] = xs[i+2] & ys[i+2]
		d[i+3] = xs[i+3] & ys[i+3]
	}
	for ; i < len(d); i++ {
		d[i] = xs[i] & ys[i]
	}
}

// AndCountWith intersects b with other in place and returns the number
// of bits that remain set — the fused AND+popcount kernel the greedy
// filter planner uses to detect an emptied running mask in the same
// pass that produced it (same length required).
func (b *Bitset) AndCountWith(other *Bitset) int {
	if b.n != other.n {
		panic("bitset: AndCountWith length mismatch")
	}
	x := b.words
	y := other.words[:len(x)]
	c := 0
	i := 0
	for ; i+4 <= len(x); i += 4 {
		w0 := x[i] & y[i]
		w1 := x[i+1] & y[i+1]
		w2 := x[i+2] & y[i+2]
		w3 := x[i+3] & y[i+3]
		x[i], x[i+1], x[i+2], x[i+3] = w0, w1, w2, w3
		c += bits.OnesCount64(w0) + bits.OnesCount64(w1) +
			bits.OnesCount64(w2) + bits.OnesCount64(w3)
	}
	for ; i < len(x); i++ {
		x[i] &= y[i]
		c += bits.OnesCount64(x[i])
	}
	return c
}

// OrCountWith unions other into b in place and returns the number of
// bits set afterwards — the fused OR+popcount dual of AndCountWith that
// the ordered OR-chain folder uses to detect a filled running mask in
// the same pass that produced it (same length required).
func (b *Bitset) OrCountWith(other *Bitset) int {
	if b.n != other.n {
		panic("bitset: OrCountWith length mismatch")
	}
	x := b.words
	y := other.words[:len(x)]
	c := 0
	i := 0
	for ; i+4 <= len(x); i += 4 {
		w0 := x[i] | y[i]
		w1 := x[i+1] | y[i+1]
		w2 := x[i+2] | y[i+2]
		w3 := x[i+3] | y[i+3]
		x[i], x[i+1], x[i+2], x[i+3] = w0, w1, w2, w3
		c += bits.OnesCount64(w0) + bits.OnesCount64(w1) +
			bits.OnesCount64(w2) + bits.OnesCount64(w3)
	}
	for ; i < len(x); i++ {
		x[i] |= y[i]
		c += bits.OnesCount64(x[i])
	}
	return c
}

// AndNotCountWith removes other's bits from b in place and returns the
// number of bits that remain set — the fused difference+popcount kernel
// the residual filter path uses to kill known-FALSE rows from the
// eligibility mask and detect exhaustion in one pass (same length
// required).
func (b *Bitset) AndNotCountWith(other *Bitset) int {
	if b.n != other.n {
		panic("bitset: AndNotCountWith length mismatch")
	}
	x := b.words
	y := other.words[:len(x)]
	c := 0
	i := 0
	for ; i+4 <= len(x); i += 4 {
		w0 := x[i] &^ y[i]
		w1 := x[i+1] &^ y[i+1]
		w2 := x[i+2] &^ y[i+2]
		w3 := x[i+3] &^ y[i+3]
		x[i], x[i+1], x[i+2], x[i+3] = w0, w1, w2, w3
		c += bits.OnesCount64(w0) + bits.OnesCount64(w1) +
			bits.OnesCount64(w2) + bits.OnesCount64(w3)
	}
	for ; i < len(x); i++ {
		x[i] &^= y[i]
		c += bits.OnesCount64(x[i])
	}
	return c
}

// AndNotOf sets b = x &^ y in a single pass (all same length) — the
// fused difference kernel filter lowering uses to build FALSE masks
// without a Clone+AndNot double pass.
func (b *Bitset) AndNotOf(x, y *Bitset) {
	if b.n != x.n || b.n != y.n {
		panic("bitset: AndNotOf length mismatch")
	}
	d := b.words
	xs := x.words[:len(d)]
	ys := y.words[:len(d)]
	i := 0
	for ; i+4 <= len(d); i += 4 {
		d[i] = xs[i] &^ ys[i]
		d[i+1] = xs[i+1] &^ ys[i+1]
		d[i+2] = xs[i+2] &^ ys[i+2]
		d[i+3] = xs[i+3] &^ ys[i+3]
	}
	for ; i < len(d); i++ {
		d[i] = xs[i] &^ ys[i]
	}
}

// AnyWords reports whether any word in ws has a set bit — the kernel
// behind segment-skip detection over a flat mask's word windows.
func AnyWords(ws []uint64) bool {
	for _, w := range ws {
		if w != 0 {
			return true
		}
	}
	return false
}

// CountWords returns the total popcount of ws — the kernel behind
// per-segment selectivity accounting in the adaptive shard splitter.
func CountWords(ws []uint64) int {
	c := 0
	i := 0
	for ; i+4 <= len(ws); i += 4 {
		c += bits.OnesCount64(ws[i]) + bits.OnesCount64(ws[i+1]) +
			bits.OnesCount64(ws[i+2]) + bits.OnesCount64(ws[i+3])
	}
	for ; i < len(ws); i++ {
		c += bits.OnesCount64(ws[i])
	}
	return c
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	return CountWords(b.words)
}

// Any reports whether any bit is set.
func (b *Bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// AndCount returns |x ∩ y| without materializing the intersection.
func AndCount(x, y *Bitset) int {
	if x.n != y.n {
		panic("bitset: AndCount length mismatch")
	}
	xs := x.words
	ys := y.words[:len(xs)]
	c := 0
	i := 0
	for ; i+4 <= len(xs); i += 4 {
		c += bits.OnesCount64(xs[i]&ys[i]) + bits.OnesCount64(xs[i+1]&ys[i+1]) +
			bits.OnesCount64(xs[i+2]&ys[i+2]) + bits.OnesCount64(xs[i+3]&ys[i+3])
	}
	for ; i < len(xs); i++ {
		c += bits.OnesCount64(xs[i] & ys[i])
	}
	return c
}

// NextSetBit returns the position of the first set bit at or after i,
// or -1 when no such bit exists. Negative i starts from bit 0.
func (b *Bitset) NextSetBit(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return -1
	}
	wi := i / wordBits
	w := b.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b.words); wi++ {
		if w := b.words[wi]; w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Iter is a resumable set-bit cursor. Unlike ForEach it needs no
// callback (so the surrounding loop can return errors and poll a
// context), and it stays valid when the *current or an earlier* bit is
// cleared mid-iteration: the word under the cursor is copied when the
// cursor enters it, so only mutations at not-yet-visited words are
// observed. That is exactly the discipline the residual filter path
// needs — it unsets bits it has already visited while walking.
type Iter struct {
	words []uint64
	wi    int    // index of the word after the one buffered in w
	w     uint64 // remaining bits of the current word, shifted in place
}

// Iter returns a cursor positioned at the first set bit >= start.
func (b *Bitset) Iter(start int) Iter {
	if start < 0 {
		start = 0
	}
	if start >= b.n {
		return Iter{}
	}
	wi := start / wordBits
	w := b.words[wi] &^ ((1 << (uint(start) % wordBits)) - 1)
	return Iter{words: b.words, wi: wi + 1, w: w}
}

// Next returns the next set bit position in ascending order; ok is
// false when the iteration is exhausted.
func (it *Iter) Next() (int, bool) {
	for it.w == 0 {
		if it.wi >= len(it.words) {
			return -1, false
		}
		it.w = it.words[it.wi]
		it.wi++
	}
	i := (it.wi-1)*wordBits + bits.TrailingZeros64(it.w)
	it.w &= it.w - 1
	return i, true
}

// ForEach calls fn for every set bit in ascending order.
func (b *Bitset) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		base := wi * wordBits
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// AppendRows appends the set bit positions to dst in ascending order and
// returns it — the bridge back to the []int row-list world.
func (b *Bitset) AppendRows(dst []int) []int {
	for wi, w := range b.words {
		base := wi * wordBits
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// Rows returns the set bit positions as a fresh sorted slice.
func (b *Bitset) Rows() []int {
	return b.AppendRows(make([]int, 0, b.Count()))
}

// WordRange returns the index of the first and last non-zero words,
// inclusive. ok is false when the set is empty. Hot loops use it to
// restrict intersection to a group's occupied span.
func (b *Bitset) WordRange() (lo, hi int, ok bool) {
	lo = -1
	for i, w := range b.words {
		if w != 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	if lo < 0 {
		return 0, 0, false
	}
	return lo, hi, true
}

// ---- Segment-aligned views ----------------------------------------
//
// The storage engine chunks rows into fixed-size segments of at least
// 64 rows (a power of two), so a segment boundary is always a word
// boundary in every bitmap over row ids. These helpers exploit that:
// a flat bitset decomposes into per-segment word windows, per-segment
// word blocks concatenate into a flat bitset, and dropping whole head
// segments (retention) becomes a word-shift.

// ConcatWords stamps a length-n bitset out of per-segment word blocks:
// block k covers bits [k*segWords*64, ...), and each block may be
// shorter than segWords only if it is the last. Ghost bits past n are
// cleared. The blocks are not retained — this is the
// compose-by-concatenation constructor for segment-chunked masks.
func ConcatWords(n int, segWords int, blocks [][]uint64) *Bitset {
	nw := (n + wordBits - 1) / wordBits
	words := make([]uint64, nw)
	at := 0
	for _, blk := range blocks {
		if at >= nw {
			break
		}
		at += copy(words[at:], blk)
		if rem := at % segWords; rem != 0 && at < nw {
			at += segWords - rem // short (partial) block: pad to the segment
		}
	}
	return FromWords(n, words)
}

// SegWords returns the word window of segment k in a flat bitset
// (read-only) — the inverse of ConcatWords. The last segment's window
// may be short.
func (b *Bitset) SegWords(k, segWords int) []uint64 {
	lo := k * segWords
	hi := lo + segWords
	if hi > len(b.words) {
		hi = len(b.words)
	}
	return b.words[lo:hi]
}

// ShiftDownWords stamps a length-n bitset whose bit i is words'
// bit i + drop, where drop is a multiple of 64 — the row-id rebase of
// a carried bitmap after retention dropped drop head rows. The input
// is not retained.
func ShiftDownWords(n int, words []uint64, drop int) *Bitset {
	if drop%wordBits != 0 {
		panic("bitset: ShiftDownWords drop not word-aligned")
	}
	dw := drop / wordBits
	if dw >= len(words) {
		return New(n)
	}
	return SnapshotWords(n, words[dw:])
}
