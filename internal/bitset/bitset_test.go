package bitset

import (
	"math/rand"
	"sort"
	"testing"
)

func TestBasicOps(t *testing.T) {
	b := New(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 129} {
		b.Set(i)
	}
	b.Set(-1)
	b.Set(130) // ignored
	if got := b.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	if !b.Get(63) || !b.Get(64) || b.Get(2) || b.Get(130) || b.Get(-5) {
		t.Fatal("Get mismatch")
	}
	b.Unset(64)
	if b.Get(64) || b.Count() != 5 {
		t.Fatal("Unset failed")
	}
	want := []int{0, 1, 63, 65, 129}
	if got := b.Rows(); !equalInts(got, want) {
		t.Fatalf("Rows = %v, want %v", got, want)
	}
}

func TestFromRowsIgnoresOutOfRange(t *testing.T) {
	b := FromRows(10, []int{-3, 0, 5, 9, 10, 100})
	if got := b.Rows(); !equalInts(got, []int{0, 5, 9}) {
		t.Fatalf("Rows = %v", got)
	}
}

func TestFillAndTrim(t *testing.T) {
	b := New(70)
	b.Fill()
	if got := b.Count(); got != 70 {
		t.Fatalf("Fill Count = %d", got)
	}
	if b.Get(70) {
		t.Fatal("ghost bit beyond Len")
	}
	b.Reset()
	if b.Any() {
		t.Fatal("Reset left bits")
	}
}

func TestSetAlgebra(t *testing.T) {
	n := 200
	a := FromRows(n, []int{1, 5, 64, 100, 199})
	b := FromRows(n, []int{5, 64, 101, 199})

	x := a.Clone()
	x.And(b)
	if got := x.Rows(); !equalInts(got, []int{5, 64, 199}) {
		t.Fatalf("And = %v", got)
	}
	if got := AndCount(a, b); got != 3 {
		t.Fatalf("AndCount = %d", got)
	}

	x = a.Clone()
	x.AndNot(b)
	if got := x.Rows(); !equalInts(got, []int{1, 100}) {
		t.Fatalf("AndNot = %v", got)
	}

	x = a.Clone()
	x.Or(b)
	if got := x.Count(); got != 6 {
		t.Fatalf("Or Count = %d", got)
	}

	inter := New(n)
	inter.IntersectOf(a, b)
	if got := inter.Rows(); !equalInts(got, []int{5, 64, 199}) {
		t.Fatalf("IntersectOf = %v", got)
	}

	y := New(n)
	y.CopyFrom(a)
	if got := y.Rows(); !equalInts(got, a.Rows()) {
		t.Fatalf("CopyFrom = %v", got)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	New(10).And(New(20))
}

func TestWordRange(t *testing.T) {
	b := New(500)
	if _, _, ok := b.WordRange(); ok {
		t.Fatal("empty set has no word range")
	}
	b.Set(70)
	b.Set(300)
	lo, hi, ok := b.WordRange()
	if !ok || lo != 1 || hi != 4 {
		t.Fatalf("WordRange = (%d,%d,%v)", lo, hi, ok)
	}
}

func TestForEachOrder(t *testing.T) {
	rows := []int{3, 77, 64, 128, 4}
	b := FromRows(200, rows)
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	sort.Ints(rows)
	if !equalInts(got, rows) {
		t.Fatalf("ForEach = %v, want %v", got, rows)
	}
}

// TestRandomizedAgainstMap cross-checks the bitmap against a reference
// map implementation over random operations.
func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 1000
	for trial := 0; trial < 50; trial++ {
		ra, rb := randRows(rng, n), randRows(rng, n)
		a, b := FromRows(n, ra), FromRows(n, rb)
		ma, mb := toSet(ra), toSet(rb)

		var wantInter, wantDiff []int
		for r := range ma {
			if mb[r] {
				wantInter = append(wantInter, r)
			} else {
				wantDiff = append(wantDiff, r)
			}
		}
		sort.Ints(wantInter)
		sort.Ints(wantDiff)

		x := a.Clone()
		x.And(b)
		if !equalInts(x.Rows(), wantInter) {
			t.Fatalf("trial %d: And mismatch", trial)
		}
		if AndCount(a, b) != len(wantInter) {
			t.Fatalf("trial %d: AndCount mismatch", trial)
		}
		x = a.Clone()
		x.AndNot(b)
		if !equalInts(x.Rows(), wantDiff) {
			t.Fatalf("trial %d: AndNot mismatch", trial)
		}
	}
}

func randRows(rng *rand.Rand, n int) []int {
	k := rng.Intn(n / 2)
	out := make([]int, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, rng.Intn(n))
	}
	return out
}

func toSet(rows []int) map[int]bool {
	m := make(map[int]bool, len(rows))
	for _, r := range rows {
		m[r] = true
	}
	return m
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkAndCount(b *testing.B) {
	n := 100_000
	rng := rand.New(rand.NewSource(1))
	x := FromRows(n, randRows(rng, n))
	y := FromRows(n, randRows(rng, n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AndCount(x, y)
	}
}

// TestCanonicalWordHelpers covers the growable-word builders behind the
// incremental view/mask maintenance: SetInWords growth, SnapshotWords
// padding/truncation/ghost-trim, and OrRangeAndNot's boundary masking.
func TestCanonicalWordHelpers(t *testing.T) {
	var words []uint64
	SetInWords(&words, 3)
	SetInWords(&words, 64)
	SetInWords(&words, 200)
	if len(words) != 4 || words[0] != 1<<3 || words[1] != 1 || words[3] != 1<<(200-192) {
		t.Fatalf("SetInWords words = %v", words)
	}

	// Truncating snapshot: bit 64 survives at n=70, bit 200 is trimmed.
	s := SnapshotWords(70, words)
	if s.Len() != 70 || !s.Get(3) || !s.Get(64) || s.Count() != 2 {
		t.Fatalf("SnapshotWords(70): count=%d", s.Count())
	}
	// Padding snapshot: n beyond the canonical words reads as zeros.
	if s := SnapshotWords(1000, words); s.Len() != 1000 || s.Count() != 3 {
		t.Fatalf("SnapshotWords(1000): count=%d", s.Count())
	}
	// Ghost-bit trim inside a shared boundary word.
	if s := SnapshotWords(200, words); s.Get(200) || s.Count() != 2 {
		t.Fatal("SnapshotWords(200) kept a ghost bit")
	}

	// OrRangeAndNot against a NULL mask, with unaligned lo and n.
	null := New(300)
	null.Set(70)
	null.Set(128)
	var nn []uint64
	OrRangeAndNot(&nn, 65, 131, null.Words())
	got := SnapshotWords(131, nn)
	want := 0
	for r := 65; r < 131; r++ {
		inRange := r != 70 && r != 128
		if got.Get(r) != inRange {
			t.Fatalf("OrRangeAndNot bit %d = %v", r, got.Get(r))
		}
		if inRange {
			want++
		}
	}
	if got.Count() != want {
		t.Fatalf("OrRangeAndNot count=%d want %d (bits outside [65,131) leaked)", got.Count(), want)
	}
	// Extending the same canonical words continues past the old range.
	OrRangeAndNot(&nn, 131, 300, null.Words())
	if s := SnapshotWords(300, nn); s.Get(64) || !s.Get(131) || !s.Get(299) || s.Get(70) {
		t.Fatal("OrRangeAndNot extension wrong")
	}
}
