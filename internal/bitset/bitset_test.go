package bitset

import (
	"math/rand"
	"sort"
	"testing"
)

func TestBasicOps(t *testing.T) {
	b := New(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 129} {
		b.Set(i)
	}
	b.Set(-1)
	b.Set(130) // ignored
	if got := b.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	if !b.Get(63) || !b.Get(64) || b.Get(2) || b.Get(130) || b.Get(-5) {
		t.Fatal("Get mismatch")
	}
	b.Unset(64)
	if b.Get(64) || b.Count() != 5 {
		t.Fatal("Unset failed")
	}
	want := []int{0, 1, 63, 65, 129}
	if got := b.Rows(); !equalInts(got, want) {
		t.Fatalf("Rows = %v, want %v", got, want)
	}
}

func TestFromRowsIgnoresOutOfRange(t *testing.T) {
	b := FromRows(10, []int{-3, 0, 5, 9, 10, 100})
	if got := b.Rows(); !equalInts(got, []int{0, 5, 9}) {
		t.Fatalf("Rows = %v", got)
	}
}

func TestFillAndTrim(t *testing.T) {
	b := New(70)
	b.Fill()
	if got := b.Count(); got != 70 {
		t.Fatalf("Fill Count = %d", got)
	}
	if b.Get(70) {
		t.Fatal("ghost bit beyond Len")
	}
	b.Reset()
	if b.Any() {
		t.Fatal("Reset left bits")
	}
}

func TestSetAlgebra(t *testing.T) {
	n := 200
	a := FromRows(n, []int{1, 5, 64, 100, 199})
	b := FromRows(n, []int{5, 64, 101, 199})

	x := a.Clone()
	x.And(b)
	if got := x.Rows(); !equalInts(got, []int{5, 64, 199}) {
		t.Fatalf("And = %v", got)
	}
	if got := AndCount(a, b); got != 3 {
		t.Fatalf("AndCount = %d", got)
	}

	x = a.Clone()
	x.AndNot(b)
	if got := x.Rows(); !equalInts(got, []int{1, 100}) {
		t.Fatalf("AndNot = %v", got)
	}

	x = a.Clone()
	x.Or(b)
	if got := x.Count(); got != 6 {
		t.Fatalf("Or Count = %d", got)
	}

	inter := New(n)
	inter.IntersectOf(a, b)
	if got := inter.Rows(); !equalInts(got, []int{5, 64, 199}) {
		t.Fatalf("IntersectOf = %v", got)
	}

	y := New(n)
	y.CopyFrom(a)
	if got := y.Rows(); !equalInts(got, a.Rows()) {
		t.Fatalf("CopyFrom = %v", got)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	New(10).And(New(20))
}

func TestWordRange(t *testing.T) {
	b := New(500)
	if _, _, ok := b.WordRange(); ok {
		t.Fatal("empty set has no word range")
	}
	b.Set(70)
	b.Set(300)
	lo, hi, ok := b.WordRange()
	if !ok || lo != 1 || hi != 4 {
		t.Fatalf("WordRange = (%d,%d,%v)", lo, hi, ok)
	}
}

func TestForEachOrder(t *testing.T) {
	rows := []int{3, 77, 64, 128, 4}
	b := FromRows(200, rows)
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	sort.Ints(rows)
	if !equalInts(got, rows) {
		t.Fatalf("ForEach = %v, want %v", got, rows)
	}
}

// TestRandomizedAgainstMap cross-checks the bitmap against a reference
// map implementation over random operations.
func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 1000
	for trial := 0; trial < 50; trial++ {
		ra, rb := randRows(rng, n), randRows(rng, n)
		a, b := FromRows(n, ra), FromRows(n, rb)
		ma, mb := toSet(ra), toSet(rb)

		var wantInter, wantDiff []int
		for r := range ma {
			if mb[r] {
				wantInter = append(wantInter, r)
			} else {
				wantDiff = append(wantDiff, r)
			}
		}
		sort.Ints(wantInter)
		sort.Ints(wantDiff)

		x := a.Clone()
		x.And(b)
		if !equalInts(x.Rows(), wantInter) {
			t.Fatalf("trial %d: And mismatch", trial)
		}
		if AndCount(a, b) != len(wantInter) {
			t.Fatalf("trial %d: AndCount mismatch", trial)
		}
		x = a.Clone()
		x.AndNot(b)
		if !equalInts(x.Rows(), wantDiff) {
			t.Fatalf("trial %d: AndNot mismatch", trial)
		}
	}
}

func randRows(rng *rand.Rand, n int) []int {
	k := rng.Intn(n / 2)
	out := make([]int, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, rng.Intn(n))
	}
	return out
}

func toSet(rows []int) map[int]bool {
	m := make(map[int]bool, len(rows))
	for _, r := range rows {
		m[r] = true
	}
	return m
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkAndCount(b *testing.B) {
	n := 100_000
	rng := rand.New(rand.NewSource(1))
	x := FromRows(n, randRows(rng, n))
	y := FromRows(n, randRows(rng, n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AndCount(x, y)
	}
}
