package bitset

import (
	"math/rand"
	"testing"
)

// iterGrid is the edge grid for the set-bit cursor kernels: empty sets,
// single bits at word boundaries, runs straddling boundaries, a
// trailing partial word, and all-ones — at lengths that exercise exact
// multiples of 64 and off-by-one neighbours.
func iterGrid() []struct {
	name string
	n    int
	rows []int
} {
	return []struct {
		name string
		n    int
		rows []int
	}{
		{"empty-0", 0, nil},
		{"empty-1", 1, nil},
		{"empty-64", 64, nil},
		{"empty-200", 200, nil},
		{"bit0", 64, []int{0}},
		{"bit63", 64, []int{63}},
		{"bit64", 65, []int{64}},
		{"word-boundary-pair", 130, []int{63, 64}},
		{"straddle-run", 200, []int{62, 63, 64, 65, 127, 128, 129}},
		{"last-bit-partial", 70, []int{69}},
		{"last-bit-full", 128, []int{127}},
		{"sparse-words", 512, []int{0, 200, 511}},
		{"empty-middle-words", 320, []int{5, 300}},
		{"all-ones-partial", 70, seqRows(70)},
		{"all-ones-full", 128, seqRows(128)},
	}
}

func seqRows(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestNextSetBitGrid(t *testing.T) {
	for _, tc := range iterGrid() {
		b := FromRows(tc.n, tc.rows)
		// Walk via NextSetBit and compare against the sorted row list.
		var got []int
		for i := b.NextSetBit(0); i >= 0; i = b.NextSetBit(i + 1) {
			got = append(got, i)
		}
		if !equalInts(got, b.Rows()) {
			t.Fatalf("%s: NextSetBit walk = %v, Rows = %v", tc.name, got, b.Rows())
		}
		// Every start position must land on the first row >= start.
		for start := -1; start <= tc.n+1; start++ {
			want := -1
			for _, r := range b.Rows() {
				if r >= start {
					want = r
					break
				}
			}
			if got := b.NextSetBit(start); got != want {
				t.Fatalf("%s: NextSetBit(%d) = %d, want %d", tc.name, start, got, want)
			}
		}
	}
}

func TestIterGrid(t *testing.T) {
	for _, tc := range iterGrid() {
		b := FromRows(tc.n, tc.rows)
		for start := 0; start <= tc.n+1; start++ {
			var want []int
			for _, r := range b.Rows() {
				if r >= start {
					want = append(want, r)
				}
			}
			var got []int
			it := b.Iter(start)
			for {
				i, ok := it.Next()
				if !ok {
					break
				}
				got = append(got, i)
			}
			if !equalInts(got, want) {
				t.Fatalf("%s: Iter(%d) = %v, want %v", tc.name, start, got, want)
			}
		}
	}
}

// The residual filter unsets visited (and sometimes the current) bits
// while iterating; the cursor must not skip or repeat positions.
func TestIterStableUnderUnset(t *testing.T) {
	for _, tc := range iterGrid() {
		b := FromRows(tc.n, tc.rows)
		want := b.Rows()
		var got []int
		it := b.Iter(0)
		for {
			i, ok := it.Next()
			if !ok {
				break
			}
			got = append(got, i)
			b.Unset(i) // clear the bit just visited
			if len(got) >= 2 {
				b.Unset(got[len(got)-2]) // and re-clear an earlier one
			}
		}
		if !equalInts(got, want) {
			t.Fatalf("%s: Iter under Unset = %v, want %v", tc.name, got, want)
		}
	}
}

func TestIterRandomizedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(700)
		b := FromRows(n, randRows(rng, n+2))
		start := rng.Intn(n + 1)
		var want []int
		b.ForEach(func(i int) {
			if i >= start {
				want = append(want, i)
			}
		})
		var got []int
		it := b.Iter(start)
		for {
			i, ok := it.Next()
			if !ok {
				break
			}
			got = append(got, i)
		}
		if !equalInts(got, want) {
			t.Fatalf("trial %d (n=%d start=%d): iter=%v want=%v", trial, n, start, got, want)
		}
		// NextSetBit resumption must agree with the cursor.
		var hop []int
		for i := b.NextSetBit(start); i >= 0; i = b.NextSetBit(i + 1) {
			hop = append(hop, i)
		}
		if !equalInts(hop, want) {
			t.Fatalf("trial %d: NextSetBit=%v want=%v", trial, hop, want)
		}
	}
}

// The fused count kernels and the unrolled in-place algebra must agree
// with the composition of their unfused parts at every length mod 4
// (the unroll width) and mod 64 (the word width).
func TestFusedCountKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	lengths := []int{1, 3, 63, 64, 65, 127, 128, 129, 255, 256, 257, 300, 1024}
	for _, n := range lengths {
		for trial := 0; trial < 10; trial++ {
			a := FromRows(n, randRows(rng, n+2))
			b := FromRows(n, randRows(rng, n+2))

			x := a.Clone()
			if got := x.AndCountWith(b); got != AndCount(a, b) || got != x.Count() {
				t.Fatalf("n=%d: AndCountWith = %d, AndCount = %d, Count = %d", n, got, AndCount(a, b), x.Count())
			}
			ref := a.Clone()
			ref.And(b)
			if !equalInts(x.Rows(), ref.Rows()) {
				t.Fatalf("n=%d: AndCountWith bits diverge from And", n)
			}

			x = a.Clone()
			got := x.OrCountWith(b)
			ref = a.Clone()
			ref.Or(b)
			if got != ref.Count() || !equalInts(x.Rows(), ref.Rows()) {
				t.Fatalf("n=%d: OrCountWith = %d, want %d", n, got, ref.Count())
			}

			x = a.Clone()
			got = x.AndNotCountWith(b)
			ref = a.Clone()
			ref.AndNot(b)
			if got != ref.Count() || !equalInts(x.Rows(), ref.Rows()) {
				t.Fatalf("n=%d: AndNotCountWith = %d, want %d", n, got, ref.Count())
			}

			z := New(n)
			z.IntersectOf(a, b)
			if !equalInts(z.Rows(), ref2(a, b, func(p, q bool) bool { return p && q }, n)) {
				t.Fatalf("n=%d: IntersectOf mismatch", n)
			}
			z.AndNotOf(a, b)
			if !equalInts(z.Rows(), ref2(a, b, func(p, q bool) bool { return p && !q }, n)) {
				t.Fatalf("n=%d: AndNotOf mismatch", n)
			}
		}
	}
}

func ref2(a, b *Bitset, op func(p, q bool) bool, n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		if op(a.Get(i), b.Get(i)) {
			out = append(out, i)
		}
	}
	return out
}

func BenchmarkIter(b *testing.B) {
	n := 100_000
	rng := rand.New(rand.NewSource(5))
	s := FromRows(n, randRows(rng, n))
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		it := s.Iter(0)
		for {
			r, ok := it.Next()
			if !ok {
				break
			}
			sink += r
		}
	}
	_ = sink
}

func BenchmarkAndCountWith(b *testing.B) {
	n := 100_000
	rng := rand.New(rand.NewSource(6))
	x := FromRows(n, randRows(rng, n))
	y := FromRows(n, randRows(rng, n))
	scratch := x.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.CopyFrom(x)
		scratch.AndCountWith(y)
	}
}

func BenchmarkOrCountWith(b *testing.B) {
	n := 100_000
	rng := rand.New(rand.NewSource(7))
	x := FromRows(n, randRows(rng, n))
	y := FromRows(n, randRows(rng, n))
	scratch := x.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.CopyFrom(x)
		scratch.OrCountWith(y)
	}
}
