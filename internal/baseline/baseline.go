// Package baseline implements the comparison points the paper argues
// against (§1 and §4), so the evaluation can quantify what ranked
// provenance buys:
//
//   - FullProvenance — classic fine-grained provenance: "return all of
//     F". Perfect recall, terrible precision, zero description.
//   - TopKInfluence — rank individual tuples by leave-one-out influence
//     and return the top k (the causality-style per-tuple relevance of
//     Meliou et al., adapted to aggregates). Good precision, no
//     human-readable description, recall limited by k.
//   - Exhaustive — brute-force predicate search over 1- and 2-clause
//     conjunctions, scored purely by error improvement per removed
//     tuple. The quality ceiling for short predicates, at a cost that
//     grows quadratically in the selector vocabulary.
package baseline

import (
	"sort"

	"repro/internal/errmetric"
	"repro/internal/exec"
	"repro/internal/feature"
	"repro/internal/influence"
	"repro/internal/predicate"
	"repro/internal/ranker"
	"repro/internal/subgroup"
)

// FullProvenance returns the complete lineage of the suspect groups —
// what a traditional provenance system hands the user.
func FullProvenance(res *exec.Result, suspect []int) []int {
	return res.Lineage(suspect)
}

// TopKInfluence returns the k most error-influential tuples.
func TopKInfluence(res *exec.Result, suspect []int, ord int, metric errmetric.Metric, k int) ([]int, error) {
	an, err := influence.Rank(res, suspect, ord, metric, influence.Options{})
	if err != nil {
		return nil, err
	}
	return an.TopRows(k), nil
}

// ExhaustiveOptions tunes the brute-force search.
type ExhaustiveOptions struct {
	// MaxClauses is 1 or 2 (default 2).
	MaxClauses int
	// MinCoverage discards predicates matching fewer lineage rows
	// (default 5).
	MinCoverage int
	// TopN is how many predicates to return (default 10).
	TopN int
	// Feature overrides featurization.
	Feature feature.Options
}

func (o *ExhaustiveOptions) defaults() {
	if o.MaxClauses <= 0 || o.MaxClauses > 2 {
		o.MaxClauses = 2
	}
	if o.MinCoverage <= 0 {
		o.MinCoverage = 5
	}
	if o.TopN <= 0 {
		o.TopN = 10
	}
}

// ExhaustiveResult is one scored predicate from the brute-force search.
type ExhaustiveResult struct {
	Pred           predicate.Predicate
	ErrImprovement float64
	NumTuples      int
	// Evaluated counts how many candidate predicates were scored — the
	// cost the smarter pipeline avoids.
	Evaluated int
}

// Exhaustive enumerates every 1-clause (and optionally 2-clause)
// conjunction over the attribute space and ranks them by error
// improvement, breaking ties toward fewer removed tuples (prefer
// surgical fixes). It reuses the subgroup package's selector vocabulary
// so the comparison with CN2-SD is apples-to-apples.
func Exhaustive(res *exec.Result, suspect []int, ord int, metric errmetric.Metric, opt ExhaustiveOptions) ([]ExhaustiveResult, error) {
	opt.defaults()
	an, err := influence.Rank(res, suspect, ord, metric, influence.Options{})
	if err != nil {
		return nil, err
	}
	if an.Eps == 0 {
		return nil, nil
	}
	fopt := opt.Feature
	fopt.Rows = an.F
	sp := feature.NewSpace(res.Source, fopt)
	selectors := subgroup.Selectors(sp)

	type scoredPred struct {
		pred    predicate.Predicate
		imp     float64
		matched int
	}
	var all []scoredPred
	evaluated := 0

	score := func(p predicate.Predicate) {
		evaluated++
		matched := p.MatchingRows(res.Source, an.F)
		if len(matched) < opt.MinCoverage || len(matched) == len(an.F) {
			return
		}
		epsAfter, err := influence.EpsWithoutRows(res, suspect, ord, metric, matched)
		if err != nil {
			return
		}
		imp := (an.Eps - epsAfter) / an.Eps
		if imp <= 0 {
			return
		}
		all = append(all, scoredPred{pred: p, imp: imp, matched: len(matched)})
	}

	preds1 := make([]predicate.Predicate, 0, len(selectors))
	for _, sel := range selectors {
		p := predicate.New(predicate.Clause{
			Col: sp.Attrs[sel.AttrIdx].Name, Op: sel.Op, Val: sel.Val,
		})
		preds1 = append(preds1, p)
		score(p)
	}
	if opt.MaxClauses >= 2 {
		for i := 0; i < len(selectors); i++ {
			for j := i + 1; j < len(selectors); j++ {
				if selectors[i].AttrIdx == selectors[j].AttrIdx && selectors[i].Op == selectors[j].Op {
					continue // same-direction bounds on one attr are redundant
				}
				p := preds1[i].And(preds1[j].Clauses[0])
				simplified, ok := p.Simplify()
				if !ok {
					continue
				}
				score(simplified)
			}
		}
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].imp != all[b].imp {
			return all[a].imp > all[b].imp
		}
		return all[a].matched < all[b].matched
	})
	if len(all) > opt.TopN {
		all = all[:opt.TopN]
	}
	out := make([]ExhaustiveResult, len(all))
	for i, s := range all {
		out[i] = ExhaustiveResult{Pred: s.pred, ErrImprovement: s.imp, NumTuples: s.matched, Evaluated: evaluated}
	}
	return out, nil
}

// AsScored adapts an ExhaustiveResult for the common reporting path.
func (e ExhaustiveResult) AsScored() ranker.Scored {
	return ranker.Scored{
		Pred:           e.Pred,
		Origin:         "exhaustive",
		ErrImprovement: e.ErrImprovement,
		Complexity:     e.Pred.Len(),
		NumTuples:      e.NumTuples,
		Score:          e.ErrImprovement,
	}
}
