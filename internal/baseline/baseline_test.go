package baseline

import (
	"strings"
	"testing"

	"repro/internal/datasets"
	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
	"repro/internal/feature"
)

func fecFixture(t *testing.T) (*exec.Result, []int, *datasets.Truth) {
	t.Helper()
	db, labels := datasets.FECDB(datasets.FECConfig{Rows: 30_000, Seed: 2})
	res, err := exec.RunSQL(db, datasets.FECDailySQL("McCain"))
	if err != nil {
		t.Fatal(err)
	}
	var suspect []int
	totCol := res.Table.Schema().ColIndex("total")
	for r := 0; r < res.Table.NumRows(); r++ {
		v := res.Table.Value(r, totCol)
		if !v.IsNull() && v.Float() < 0 {
			suspect = append(suspect, r)
		}
	}
	if len(suspect) == 0 {
		t.Fatal("no suspects")
	}
	return res, suspect, datasets.NewTruth(labels)
}

func TestFullProvenanceIsLineage(t *testing.T) {
	res, suspect, truth := fecFixture(t)
	full := FullProvenance(res, suspect)
	want := res.Lineage(suspect)
	if len(full) != len(want) {
		t.Fatalf("full provenance size %d vs %d", len(full), len(want))
	}
	// Low precision is the point of the comparison.
	p, r, _ := truth.Score(full, full)
	if r != 1 {
		t.Errorf("full provenance recall %v, want 1", r)
	}
	if p > 0.9 {
		t.Errorf("full provenance precision suspiciously high: %v", p)
	}
}

func TestTopKInfluence(t *testing.T) {
	res, suspect, truth := fecFixture(t)
	top, err := TopKInfluence(res, suspect, 0, errmetric.TooLow{C: 0}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 || len(top) > 100 {
		t.Fatalf("topk size: %d", len(top))
	}
	p, _, _ := truth.Score(top, res.Lineage(suspect))
	if p < 0.9 {
		t.Errorf("topk precision %.2f; the negative donations should dominate", p)
	}
}

func TestExhaustiveFindsMemoPredicate(t *testing.T) {
	res, suspect, truth := fecFixture(t)
	out, err := Exhaustive(res, suspect, 0, errmetric.TooLow{C: 0}, ExhaustiveOptions{
		Feature: feature.Options{Exclude: []string{"amount"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no exhaustive results")
	}
	best := out[0]
	if best.ErrImprovement < 0.95 {
		t.Errorf("best improvement %.2f: %s", best.ErrImprovement, best.Pred)
	}
	if !strings.Contains(best.Pred.String(), "memo") {
		t.Errorf("best exhaustive predicate %q does not reference memo", best.Pred)
	}
	if best.Evaluated <= 0 {
		t.Error("evaluation count missing")
	}
	matched := best.Pred.MatchingRows(res.Source, res.Lineage(suspect))
	p, r, _ := truth.Score(matched, res.Lineage(suspect))
	if p < 0.9 || r < 0.9 {
		t.Errorf("exhaustive quality: P=%.2f R=%.2f", p, r)
	}
	sc := best.AsScored()
	if sc.Origin != "exhaustive" || sc.Score != best.ErrImprovement {
		t.Errorf("AsScored: %+v", sc)
	}
}

func TestExhaustiveSingleClauseOnly(t *testing.T) {
	res, suspect, _ := fecFixture(t)
	out1, err := Exhaustive(res, suspect, 0, errmetric.TooLow{C: 0}, ExhaustiveOptions{
		MaxClauses: 1,
		Feature:    feature.Options{Exclude: []string{"amount"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out1 {
		if r.Pred.Len() > 1 {
			t.Errorf("1-clause search returned %s", r.Pred)
		}
	}
	out2, err := Exhaustive(res, suspect, 0, errmetric.TooLow{C: 0}, ExhaustiveOptions{
		MaxClauses: 2,
		Feature:    feature.Options{Exclude: []string{"amount"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out2) > 0 && len(out1) > 0 && out2[0].Evaluated <= out1[0].Evaluated {
		t.Error("2-clause search should evaluate more candidates")
	}
}

func TestExhaustiveZeroEps(t *testing.T) {
	// A result with no error: Exhaustive should return nothing.
	tbl := engine.MustNewTable("t", engine.NewSchema("k", engine.TInt, "v", engine.TFloat))
	for i := 0; i < 20; i++ {
		tbl.MustAppendRow(engine.NewInt(int64(i%2)), engine.NewFloat(1))
	}
	db := engine.NewDB()
	db.Register(tbl)
	res, err := exec.RunSQL(db, "SELECT k, avg(v) FROM t GROUP BY k")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Exhaustive(res, []int{0, 1}, 0, errmetric.TooHigh{C: 5}, ExhaustiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		t.Errorf("zero-eps exhaustive returned %d results", len(out))
	}
}
