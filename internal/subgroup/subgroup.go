// Package subgroup implements CN2-SD-style subgroup discovery (Lavrač,
// Kavšek, Flach, Todorovski, JMLR 2004 — the paper's reference [4]): a
// beam search over conjunctive selectors that finds compact descriptions
// of example subgroups with unusually high positive-class density, using
// weighted relative accuracy (WRAcc) as the quality measure and weighted
// covering so successive rules describe different parts of the positive
// class.
//
// In DBWipes this is the second half of the Dataset Enumerator: positives
// are the cleaned D' (optionally widened with high-influence tuples), the
// population is F (the suspect groups' lineage), and each discovered
// rule's covered set becomes one candidate dataset Dᶜᵢ.
package subgroup

import (
	"math"
	"sort"

	"repro/internal/bitset"
	"repro/internal/engine"
	"repro/internal/feature"
	"repro/internal/predicate"
)

// Selector is one atomic condition usable in a rule.
type Selector struct {
	AttrIdx int // index into the Space's Attrs
	Op      predicate.Op
	Val     engine.Value
}

// Rule is a conjunction of selectors with its quality statistics.
type Rule struct {
	Selectors []Selector
	// WRAcc is the weighted relative accuracy at discovery time (with
	// example weights from the covering loop).
	WRAcc float64
	// Covered lists the population rows matching the rule.
	Covered []int
	// Pos counts covered positives (unweighted).
	Pos int
	// Precision is Pos / |Covered|.
	Precision float64
	// Recall is Pos / total positives.
	Recall float64
}

// Predicate converts the rule to a predicate over the space's table.
func (r *Rule) Predicate(sp *feature.Space) predicate.Predicate {
	var p predicate.Predicate
	for _, s := range r.Selectors {
		p = p.And(predicate.Clause{Col: sp.Attrs[s.AttrIdx].Name, Op: s.Op, Val: s.Val})
	}
	simplified, ok := p.Simplify()
	if !ok {
		return p
	}
	return simplified
}

// Options tunes the search.
type Options struct {
	// BeamWidth is the number of partial rules kept per level (default 8).
	BeamWidth int
	// MaxSelectors caps rule length (default 3).
	MaxSelectors int
	// MaxRules caps how many rules the covering loop emits (default 8).
	MaxRules int
	// MinCoverage discards rules covering fewer population rows
	// (default 5).
	MinCoverage int
	// MinWRAcc discards rules at or below this quality (default 0:
	// require better than random).
	MinWRAcc float64
	// CoverDecay is the additive weighted-covering parameter: after a
	// positive example is covered k times its weight is 1/(1+k·CoverDecay)
	// (default 1, the classic 1/(1+k)).
	CoverDecay float64
}

func (o *Options) defaults() {
	if o.BeamWidth <= 0 {
		o.BeamWidth = 8
	}
	if o.MaxSelectors <= 0 {
		o.MaxSelectors = 3
	}
	if o.MaxRules <= 0 {
		o.MaxRules = 8
	}
	if o.MinCoverage <= 0 {
		o.MinCoverage = 5
	}
	if o.CoverDecay <= 0 {
		o.CoverDecay = 1
	}
}

// Discover runs CN2-SD over the population rows (ids into sp.Table) with
// the given positive labels (parallel to rows). It returns rules sorted
// by discovery order (best first by the covering loop's construction).
func Discover(sp *feature.Space, rows []int, positive []bool, opt Options) []Rule {
	opt.defaults()
	n := len(rows)
	if n == 0 || len(positive) != n {
		return nil
	}
	totalPos := 0
	for _, p := range positive {
		if p {
			totalPos++
		}
	}
	if totalPos == 0 || totalPos == n {
		return nil
	}

	selectors, matches := enumerateSelectors(sp, rows)
	if len(selectors) == 0 {
		return nil
	}

	weights := make([]float64, n)
	coverCount := make([]int, n)
	for i := range weights {
		weights[i] = 1
	}

	var out []Rule
	for len(out) < opt.MaxRules {
		best, ok := beamSearch(selectors, matches, positive, weights, n, opt)
		if !ok || best.wracc <= opt.MinWRAcc {
			break
		}
		rule := Rule{
			Selectors: append([]Selector(nil), best.sels...),
			WRAcc:     best.wracc,
		}
		best.cover.ForEach(func(i int) {
			rule.Covered = append(rule.Covered, rows[i])
			if positive[i] {
				rule.Pos++
			}
		})
		if len(rule.Covered) == 0 {
			break
		}
		rule.Precision = float64(rule.Pos) / float64(len(rule.Covered))
		rule.Recall = float64(rule.Pos) / float64(totalPos)
		out = append(out, rule)

		// Weighted covering: decay covered positives' weights.
		newlyCovered := false
		best.cover.ForEach(func(i int) {
			if positive[i] {
				if coverCount[i] == 0 {
					newlyCovered = true
				}
				coverCount[i]++
				weights[i] = 1 / (1 + opt.CoverDecay*float64(coverCount[i]))
			}
		})
		if !newlyCovered {
			break // no progress: every positive the rule covers was already covered
		}
	}
	return out
}

// candidate is a partial rule in the beam. Coverage is kept as a bitset
// over population positions so refinements are a word-level AND with the
// selector's match mask instead of a scan of the parent's coverage.
type candidate struct {
	sels  []Selector
	cover *bitset.Bitset // covered population positions
	n     int            // cover.Count()
	wracc float64
	// used guards against stacking contradictory selectors; numeric
	// attrs may contribute one <= and one >=.
	used map[int]int // attrIdx -> bitmask 1:eq/le, 2:ge
}

func beamSearch(selectors []Selector, matches []*bitset.Bitset, positive []bool, weights []float64, n int, opt Options) (candidate, bool) {
	var totalW, posW float64
	uniform := true
	for i := 0; i < n; i++ {
		totalW += weights[i]
		if weights[i] != 1 {
			uniform = false
		}
		if positive[i] {
			posW += weights[i]
		}
	}
	if totalW == 0 {
		return candidate{}, false
	}
	baseRate := posW / totalW

	posBits := bitset.New(n)
	for i, p := range positive {
		if p {
			posBits.Set(i)
		}
	}

	// Root: full coverage.
	root := candidate{cover: bitset.New(n), n: n, used: map[int]int{}}
	root.cover.Fill()
	beam := []candidate{root}
	var best candidate
	bestOK := false

	// Scratch bitset reused across refinements; successful refinements
	// clone it out.
	scratch := bitset.New(n)
	for depth := 0; depth < opt.MaxSelectors; depth++ {
		var next []candidate
		for _, cand := range beam {
			for si, sel := range selectors {
				mask := 1
				if sel.Op == predicate.OpGe {
					mask = 2
				}
				if cand.used[sel.AttrIdx]&mask != 0 {
					continue
				}
				scratch.IntersectOf(cand.cover, matches[si])
				covN := scratch.Count()
				if covN < opt.MinCoverage || covN == cand.n {
					continue
				}
				var covW, covPosW float64
				if uniform {
					// All weights are exactly 1 (always true before the
					// first covering pass): the weighted sums are plain
					// cardinalities, computed by popcount alone.
					covW = float64(covN)
					covPosW = float64(bitset.AndCount(scratch, posBits))
				} else {
					scratch.ForEach(func(i int) {
						covW += weights[i]
						if positive[i] {
							covPosW += weights[i]
						}
					})
				}
				if covW == 0 {
					continue
				}
				wracc := (covW / totalW) * (covPosW/covW - baseRate)
				// Prune refinements that cannot reach the beam: keep a
				// shallow beam of the best so far per level.
				if len(next) >= opt.BeamWidth*4 && wracc <= next[len(next)-1].wracc {
					continue
				}
				used := make(map[int]int, len(cand.used)+1)
				for k, v := range cand.used {
					used[k] = v
				}
				used[sel.AttrIdx] |= mask
				nc := candidate{
					sels:  append(append([]Selector(nil), cand.sels...), sel),
					cover: scratch.Clone(),
					n:     covN,
					wracc: wracc,
					used:  used,
				}
				next = append(next, nc)
				if len(next) > opt.BeamWidth*8 {
					sort.SliceStable(next, func(a, b int) bool { return next[a].wracc > next[b].wracc })
					next = next[:opt.BeamWidth*2]
				}
				if !bestOK || nc.wracc > best.wracc ||
					(nc.wracc == best.wracc && len(nc.sels) < len(best.sels)) {
					best = nc
					bestOK = true
				}
			}
		}
		if len(next) == 0 {
			break
		}
		sort.SliceStable(next, func(a, b int) bool { return next[a].wracc > next[b].wracc })
		if len(next) > opt.BeamWidth {
			next = next[:opt.BeamWidth]
		}
		beam = next
	}
	return best, bestOK
}

// Selectors enumerates the selector vocabulary of a space: one equality
// selector per frequent categorical value and a <= / >= pair per numeric
// quantile threshold. Exposed so the exhaustive baseline searches the
// same vocabulary CN2-SD does.
func Selectors(sp *feature.Space) []Selector {
	var selectors []Selector
	for ai := range sp.Attrs {
		attr := &sp.Attrs[ai]
		switch attr.Kind {
		case feature.Categorical:
			for _, v := range attr.Values {
				selectors = append(selectors, Selector{AttrIdx: ai, Op: predicate.OpEq, Val: v})
			}
		case feature.Numeric:
			for _, t := range attr.Thresholds {
				tv := numericThresholdValue(attr, t)
				selectors = append(selectors,
					Selector{AttrIdx: ai, Op: predicate.OpLe, Val: tv},
					Selector{AttrIdx: ai, Op: predicate.OpGe, Val: tv},
				)
			}
		}
	}
	return selectors
}

// enumerateSelectors builds the selector vocabulary and a match bitset
// per selector over the population rows. Numeric columns are decoded to
// float64 once per attribute so each selector's bitmap is a primitive
// comparison loop rather than generic value comparison; the bitsets are
// what lets beamSearch refine coverage with word-level ANDs.
func enumerateSelectors(sp *feature.Space, rows []int) ([]Selector, []*bitset.Bitset) {
	selectors := Selectors(sp)
	matches := make([]*bitset.Bitset, len(selectors))

	// Decode each referenced attribute once, through a segment-pinned
	// reader: Table.Value's per-row transient pin would re-decode
	// over-budget chunks per row on out-of-core tables.
	rr := sp.Table.NewRowReader()
	defer rr.Close()
	numVals := map[int][]float64{} // attrIdx -> per-row float (NaN = NULL)
	catKeys := map[int][]string{}  // attrIdx -> per-row value key ("" = NULL)
	for si := range selectors {
		ai := selectors[si].AttrIdx
		attr := &sp.Attrs[ai]
		switch attr.Kind {
		case feature.Numeric:
			if _, ok := numVals[ai]; ok {
				continue
			}
			vals := make([]float64, len(rows))
			for i, r := range rows {
				v := rr.Value(r, attr.Col)
				if v.IsNull() {
					vals[i] = math.NaN()
				} else {
					vals[i] = v.Float()
				}
			}
			numVals[ai] = vals
		case feature.Categorical:
			if _, ok := catKeys[ai]; ok {
				continue
			}
			keys := make([]string, len(rows))
			for i, r := range rows {
				v := rr.Value(r, attr.Col)
				if v.IsNull() {
					keys[i] = "\x00null"
				} else {
					keys[i] = v.Key()
				}
			}
			catKeys[ai] = keys
		}
	}

	for si, sel := range selectors {
		attr := &sp.Attrs[sel.AttrIdx]
		m := bitset.New(len(rows))
		switch attr.Kind {
		case feature.Numeric:
			vals := numVals[sel.AttrIdx]
			t := sel.Val.Float()
			if sel.Op == predicate.OpLe {
				for i, f := range vals {
					if f <= t { // NaN compares false
						m.Set(i)
					}
				}
			} else {
				for i, f := range vals {
					if f >= t {
						m.Set(i)
					}
				}
			}
		case feature.Categorical:
			keys := catKeys[sel.AttrIdx]
			want := sel.Val.Key()
			for i, k := range keys {
				if k == want {
					m.Set(i)
				}
			}
		}
		matches[si] = m
	}
	return selectors, matches
}

// numericThresholdValue renders a threshold as an engine value matching
// the column's type (integral thresholds on int columns stay ints so
// predicates read naturally: "moteid <= 15", not "moteid <= 15.0").
func numericThresholdValue(attr *feature.Attr, t float64) engine.Value {
	if attr.Type == engine.TInt && t == math.Trunc(t) {
		return engine.NewInt(int64(t))
	}
	if attr.Type == engine.TTime {
		return engine.NewTimeUnix(int64(t))
	}
	return engine.NewFloat(t)
}
