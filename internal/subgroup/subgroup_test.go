package subgroup

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/feature"
	"repro/internal/predicate"
)

// plantedTable builds a table where the positive class concentrates in
// (mote >= 50 AND volt <= 2.4); other rows are negative.
func plantedTable(t *testing.T, n int) (*feature.Space, []int, []bool) {
	t.Helper()
	tbl := engine.MustNewTable("t", engine.NewSchema(
		"mote", engine.TInt, "volt", engine.TFloat, "city", engine.TString))
	rng := rand.New(rand.NewSource(5))
	cities := []string{"A", "B", "C"}
	labels := make([]bool, 0, n)
	rows := make([]int, 0, n)
	for i := 0; i < n; i++ {
		var mote int64
		var volt float64
		pos := i%4 == 0 // 25% positive
		if pos {
			mote = 50 + rng.Int63n(10)
			volt = 2.2 + rng.Float64()*0.2
		} else {
			mote = rng.Int63n(50)
			volt = 2.5 + rng.Float64()*0.3
		}
		id := tbl.MustAppendRow(
			engine.NewInt(mote),
			engine.NewFloat(volt),
			engine.NewString(cities[i%3]))
		rows = append(rows, id)
		labels = append(labels, pos)
	}
	sp := feature.NewSpace(tbl, feature.Options{})
	return sp, rows, labels
}

func TestDiscoverFindsPlantedSubgroup(t *testing.T) {
	sp, rows, labels := plantedTable(t, 400)
	rules := Discover(sp, rows, labels, Options{})
	if len(rules) == 0 {
		t.Fatal("no rules found")
	}
	best := rules[0]
	if best.Precision < 0.95 {
		t.Errorf("best rule precision %.2f: %s", best.Precision, best.Predicate(sp))
	}
	if best.Recall < 0.9 {
		t.Errorf("best rule recall %.2f", best.Recall)
	}
	// The rule should reference mote and/or volt, not city.
	pred := best.Predicate(sp)
	for _, col := range pred.Columns() {
		if col == "city" {
			t.Errorf("rule references irrelevant city: %s", pred)
		}
	}
}

func TestWRAccComputation(t *testing.T) {
	// Hand-checkable case: 10 rows, 4 positive, one selector covering
	// exactly the positives. WRAcc = (4/10)*(1 - 4/10) = 0.24, the
	// maximum for this base rate.
	tbl := engine.MustNewTable("t", engine.NewSchema("x", engine.TInt))
	labels := make([]bool, 10)
	rows := make([]int, 10)
	for i := 0; i < 10; i++ {
		v := int64(0)
		if i < 4 {
			v = 1
			labels[i] = true
		}
		rows[i] = tbl.MustAppendRow(engine.NewInt(v))
	}
	sp := feature.NewSpace(tbl, feature.Options{NumThresholds: 4})
	rules := Discover(sp, rows, labels, Options{MinCoverage: 2, MaxSelectors: 1, MaxRules: 1})
	if len(rules) == 0 {
		t.Fatal("no rule")
	}
	if math.Abs(rules[0].WRAcc-0.24) > 1e-9 {
		t.Errorf("WRAcc = %v, want 0.24", rules[0].WRAcc)
	}
	if rules[0].Pos != 4 || len(rules[0].Covered) != 4 {
		t.Errorf("coverage: pos=%d covered=%d", rules[0].Pos, len(rules[0].Covered))
	}
}

func TestWeightedCoveringProducesDiverseRules(t *testing.T) {
	// Two disjoint positive clusters: mote>=80 and city='X'. Covering
	// should emit rules for both.
	tbl := engine.MustNewTable("t", engine.NewSchema(
		"mote", engine.TInt, "city", engine.TString))
	var rows []int
	var labels []bool
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 300; i++ {
		var mote int64
		city := "Y"
		pos := false
		switch {
		case i%6 == 0: // cluster 1
			mote = 80 + rng.Int63n(10)
			pos = true
		case i%6 == 1: // cluster 2
			mote = rng.Int63n(40)
			city = "X"
			pos = true
		default:
			mote = rng.Int63n(40)
		}
		id := tbl.MustAppendRow(engine.NewInt(mote), engine.NewString(city))
		rows = append(rows, id)
		labels = append(labels, pos)
	}
	sp := feature.NewSpace(tbl, feature.Options{})
	rules := Discover(sp, rows, labels, Options{MaxRules: 4})
	if len(rules) < 2 {
		t.Fatalf("expected >=2 rules, got %d", len(rules))
	}
	foundMote, foundCity := false, false
	for _, r := range rules {
		p := r.Predicate(sp).String()
		if containsCol(r.Predicate(sp), "mote") {
			foundMote = true
		}
		if containsCol(r.Predicate(sp), "city") {
			foundCity = true
		}
		_ = p
	}
	if !foundMote || !foundCity {
		t.Errorf("covering missed a cluster: mote=%v city=%v", foundMote, foundCity)
	}
}

func containsCol(p predicate.Predicate, col string) bool {
	for _, c := range p.Columns() {
		if c == col {
			return true
		}
	}
	return false
}

func TestDiscoverDegenerateInputs(t *testing.T) {
	sp, rows, labels := plantedTable(t, 100)
	// All positive.
	all := make([]bool, len(labels))
	for i := range all {
		all[i] = true
	}
	if rules := Discover(sp, rows, all, Options{}); rules != nil {
		t.Error("all-positive should yield no rules")
	}
	// All negative.
	none := make([]bool, len(labels))
	if rules := Discover(sp, rows, none, Options{}); rules != nil {
		t.Error("all-negative should yield no rules")
	}
	// Empty.
	if rules := Discover(sp, nil, nil, Options{}); rules != nil {
		t.Error("empty should yield no rules")
	}
}

func TestSelectorsVocabulary(t *testing.T) {
	sp, _, _ := plantedTable(t, 200)
	sels := Selectors(sp)
	if len(sels) == 0 {
		t.Fatal("no selectors")
	}
	hasEq, hasLe, hasGe := false, false, false
	for _, s := range sels {
		switch s.Op {
		case predicate.OpEq:
			hasEq = true
		case predicate.OpLe:
			hasLe = true
		case predicate.OpGe:
			hasGe = true
		}
	}
	if !hasEq || !hasLe || !hasGe {
		t.Errorf("selector ops: eq=%v le=%v ge=%v", hasEq, hasLe, hasGe)
	}
}

func TestIntThresholdsRenderAsInts(t *testing.T) {
	sp, rows, labels := plantedTable(t, 300)
	rules := Discover(sp, rows, labels, Options{MaxRules: 1})
	if len(rules) == 0 {
		t.Fatal("no rules")
	}
	for _, sel := range rules[0].Selectors {
		attr := sp.Attrs[sel.AttrIdx]
		if attr.Name == "mote" && sel.Val.T != engine.TInt {
			t.Errorf("mote threshold type %v", sel.Val.T)
		}
	}
}

func TestBeamWidthOne(t *testing.T) {
	sp, rows, labels := plantedTable(t, 200)
	rules := Discover(sp, rows, labels, Options{BeamWidth: 1, MaxRules: 2})
	if len(rules) == 0 {
		t.Error("beam=1 found nothing")
	}
}
