package subgroup

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/feature"
)

func benchFixture(b *testing.B, n int) (*feature.Space, []int, []bool) {
	b.Helper()
	tbl := engine.MustNewTable("t", engine.NewSchema(
		"mote", engine.TInt, "volt", engine.TFloat, "hum", engine.TFloat, "city", engine.TString))
	rng := rand.New(rand.NewSource(9))
	rows := make([]int, 0, n)
	labels := make([]bool, 0, n)
	cities := []string{"A", "B", "C", "D", "E"}
	for i := 0; i < n; i++ {
		pos := i%10 == 0
		volt := 2.5 + rng.Float64()*0.3
		if pos {
			volt = 2.2 + rng.Float64()*0.15
		}
		id := tbl.MustAppendRow(
			engine.NewInt(rng.Int63n(54)),
			engine.NewFloat(volt),
			engine.NewFloat(30+rng.NormFloat64()*5),
			engine.NewString(cities[i%5]))
		rows = append(rows, id)
		labels = append(labels, pos)
	}
	return feature.NewSpace(tbl, feature.Options{}), rows, labels
}

// BenchmarkDiscover measures the CN2-SD covering loop at pipeline-like
// population sizes.
func BenchmarkDiscover(b *testing.B) {
	for _, n := range []int{4_000, 16_000} {
		n := n
		b.Run(fmt.Sprintf("pop=%d", n), func(b *testing.B) {
			sp, rows, labels := benchFixture(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rules := Discover(sp, rows, labels, Options{}); len(rules) == 0 {
					b.Fatal("no rules")
				}
			}
		})
	}
}

func BenchmarkDiscoverBeamWidth(b *testing.B) {
	sp, rows, labels := benchFixture(b, 8_000)
	for _, beam := range []int{1, 8, 32} {
		beam := beam
		b.Run(fmt.Sprintf("beam=%d", beam), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Discover(sp, rows, labels, Options{BeamWidth: beam})
			}
		})
	}
}
