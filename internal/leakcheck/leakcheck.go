// Package leakcheck fails a test binary whose goroutine count does not
// settle back to its starting level — the cheap, dependency-free way to
// pin "cancellation never strands a worker" across whole test suites.
//
// Usage, in any package's test file:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// The check is count-based rather than stack-matching: it snapshots the
// goroutine count before the suite runs and requires the count to drop
// back to that level (plus the runtime's own background goroutines that
// may start lazily) once the suite finishes. Keep-alive HTTP client
// connections are explicitly closed first, since the shared transport
// parks a reader goroutine per idle connection by design.
package leakcheck

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// settleTimeout is how long Main waits for stragglers: goroutines
// legitimately finishing (timer fires, semaphore releases, connection
// teardown) need a moment after the last test returns.
const settleTimeout = 10 * time.Second

// Main runs the suite and exits nonzero when goroutines leaked. It
// replaces os.Exit(m.Run()) in TestMain.
func Main(m *testing.M) {
	before := runtime.NumGoroutine()
	// Active fuzzing (go test -fuzz) installs a process-wide signal
	// handler during m.Run whose goroutine lives until exit — the fuzz
	// coordinator's, not the suite's. Allow exactly that one.
	for _, a := range os.Args {
		if strings.HasPrefix(a, "-test.fuzz=") || strings.HasPrefix(a, "--test.fuzz=") {
			before++
			break
		}
	}
	code := m.Run()
	if code == 0 {
		// Idle keep-alive connections of the default client park a
		// read-loop goroutine each; they are pooling, not leaks.
		http.DefaultClient.CloseIdleConnections()
		if transport, ok := http.DefaultTransport.(*http.Transport); ok {
			transport.CloseIdleConnections()
		}
		if err := Settle(before, settleTimeout); err != nil {
			fmt.Fprintf(os.Stderr, "leakcheck: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// Settle waits up to timeout for the goroutine count to drop to target
// or below, returning an error carrying every live stack when it never
// does. Exported for tests that want a mid-suite barrier (the chaos
// soak checks after every round, not only at exit).
func Settle(target int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		n := runtime.NumGoroutine()
		if n <= target {
			return nil
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			return fmt.Errorf("%d goroutines alive, want <= %d; stacks:\n%s", n, target, buf)
		}
		runtime.Gosched()
		time.Sleep(20 * time.Millisecond)
	}
}
