package exec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/sqlparse"
)

// This file pins the vectorized pipeline to the boxed reference scan
// with randomized statements: WHERE trees (lowerable and not), GROUP BY
// combinations (column, computed, string-valued computed), aggregate
// mixes (including DISTINCT and computed arguments), over tables with
// NULLs, NaNs and collision-heavy values. Results must match exactly —
// cell values, group order, lineage, FirstRow — for the scalar
// reference, the single-shard vectorized run, and a forced 4-shard run.
//
// Shard merging adds partial float sums, which is only bit-exact when
// the addends are; the generator therefore draws floats from multiples
// of 0.25 in a small range (exactly representable, with exactly
// representable squares), so even the sharded run must agree to the
// last bit.

// parityTable builds a random test table: two int columns, a float
// column (NULLs and NaNs), a string column (NULLs, empty strings), and
// a time column.
func parityTable(rng *rand.Rand, nrows int) *engine.Table {
	schema := engine.Schema{
		{Name: "i", Type: engine.TInt},
		{Name: "j", Type: engine.TInt},
		{Name: "f", Type: engine.TFloat},
		{Name: "s", Type: engine.TString},
		{Name: "t", Type: engine.TTime},
	}
	t, err := engine.NewTable("p", schema)
	if err != nil {
		panic(err)
	}
	strs := []string{"a", "b", "c", "", "xy"}
	row := make([]engine.Value, len(schema))
	for r := 0; r < nrows; r++ {
		row[0] = engine.NewInt(int64(rng.Intn(11) - 5))
		if rng.Float64() < 0.15 {
			row[0] = engine.Null
		}
		row[1] = engine.NewInt(int64(rng.Intn(4)))
		switch {
		case rng.Float64() < 0.12:
			row[2] = engine.Null
		case rng.Float64() < 0.1:
			row[2] = engine.NewFloat(math.NaN())
		case rng.Float64() < 0.08:
			// Signed zeros as group keys: Key() and canonSlot must both
			// collapse -0.0 and +0.0 into one group (they are Equal).
			row[2] = engine.NewFloat(math.Copysign(0, -1))
		case rng.Float64() < 0.08:
			row[2] = engine.NewFloat(0)
		default:
			// Multiples of 0.25 in [-8, 8): exact partial sums.
			row[2] = engine.NewFloat(float64(rng.Intn(64)-32) * 0.25)
		}
		if rng.Float64() < 0.15 {
			row[3] = engine.Null
		} else {
			row[3] = engine.NewString(strs[rng.Intn(len(strs))])
		}
		if rng.Float64() < 0.1 {
			row[4] = engine.Null
		} else {
			row[4] = engine.NewTimeUnix(int64(rng.Intn(7200)))
		}
		if _, err := t.AppendRow(row); err != nil {
			panic(err)
		}
	}
	return t
}

var parityCols = []string{"i", "j", "f", "s", "t"}

func randLit(rng *rand.Rand, col string) expr.Expr {
	if rng.Float64() < 0.07 {
		return expr.NewLit(engine.Null)
	}
	if rng.Float64() < 0.1 {
		// Deliberately mismatched literal type for the column.
		if col == "s" {
			return expr.Int(int64(rng.Intn(5)))
		}
		return expr.Str("a")
	}
	switch col {
	case "s":
		return expr.Str([]string{"a", "b", "c", "", "zz"}[rng.Intn(5)])
	case "f":
		if rng.Float64() < 0.08 {
			return expr.Float(math.NaN())
		}
		if rng.Float64() < 0.06 {
			return expr.Float(math.Copysign(0, -1))
		}
		return expr.Float(float64(rng.Intn(64)-32) * 0.25)
	case "t":
		return expr.NewLit(engine.NewTimeUnix(int64(rng.Intn(7200))))
	default:
		return expr.Int(int64(rng.Intn(11) - 5))
	}
}

var cmpOps = []expr.BinOp{expr.OpEq, expr.OpNeq, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe}

func randWhere(rng *rand.Rand, depth int) expr.Expr {
	if depth > 0 && rng.Float64() < 0.55 {
		switch rng.Intn(3) {
		case 0:
			return expr.NewBin(expr.OpAnd, randWhere(rng, depth-1), randWhere(rng, depth-1))
		case 1:
			return expr.NewBin(expr.OpOr, randWhere(rng, depth-1), randWhere(rng, depth-1))
		default:
			return expr.NewNot(randWhere(rng, depth-1))
		}
	}
	col := parityCols[rng.Intn(len(parityCols))]
	switch rng.Intn(10) {
	case 0:
		return &expr.IsNull{X: expr.NewCol(col), Invert: rng.Intn(2) == 0}
	case 1:
		return &expr.Between{
			X: expr.NewCol(col), Lo: randLit(rng, col), Hi: randLit(rng, col),
			Invert: rng.Intn(2) == 0,
		}
	case 2:
		in := &expr.In{X: expr.NewCol(col), Invert: rng.Intn(2) == 0}
		for k := 0; k < 1+rng.Intn(3); k++ {
			in.List = append(in.List, randLit(rng, col))
		}
		return in
	case 3:
		// Not lowerable: LIKE forces the scalar filter fallback.
		return &expr.Like{X: expr.NewCol("s"), Pattern: []string{"a%", "%y", "_"}[rng.Intn(3)], Invert: rng.Intn(2) == 0}
	case 4:
		// Not lowerable: arithmetic inside the comparison.
		lhs := expr.NewBin(expr.OpAdd, expr.NewCol("f"), expr.Float(0.25))
		return expr.NewBin(cmpOps[rng.Intn(len(cmpOps))], lhs, randLit(rng, "f"))
	default:
		op := cmpOps[rng.Intn(len(cmpOps))]
		l, r := expr.Expr(expr.NewCol(col)), randLit(rng, col)
		if rng.Intn(2) == 0 {
			l, r = r, l
		}
		return expr.NewBin(op, l, r)
	}
}

// randGroupBy returns 0..2 group-by expressions; the bool reports
// whether a string-valued computed key (lower(s)) was included, which
// must route to the reference scan.
func randGroupBy(rng *rand.Rand) ([]expr.Expr, bool) {
	ng := rng.Intn(3)
	var out []expr.Expr
	stringComputed := false
	for k := 0; k < ng; k++ {
		switch rng.Intn(7) {
		case 0:
			out = append(out, expr.NewCol("s"))
		case 1:
			out = append(out, expr.NewCol("f"))
		case 2:
			out = append(out, expr.NewFunc("bucket", expr.NewCol("i"), expr.Int(3)))
		case 3:
			out = append(out, expr.NewFunc("bucket", expr.NewFunc("epoch", expr.NewCol("t")), expr.Int(1800)))
		case 4:
			if rng.Float64() < 0.5 {
				out = append(out, expr.NewFunc("lower", expr.NewCol("s")))
				stringComputed = true
			} else {
				out = append(out, expr.NewCol("j"))
			}
		default:
			out = append(out, expr.NewCol("i"))
		}
	}
	return out, stringComputed
}

func randAggItem(rng *rand.Rand, alias string) sqlparse.SelectItem {
	var call *sqlparse.AggCall
	switch rng.Intn(12) {
	case 0:
		call = &sqlparse.AggCall{Name: "count", Star: true}
	case 1:
		call = &sqlparse.AggCall{Name: "count", Arg: expr.NewCol("f")}
	case 2:
		call = &sqlparse.AggCall{Name: "avg", Arg: expr.NewCol("f")}
	case 3:
		call = &sqlparse.AggCall{Name: "min", Arg: expr.NewCol("i")}
	case 4:
		call = &sqlparse.AggCall{Name: "max", Arg: expr.NewCol("f")}
	case 5:
		call = &sqlparse.AggCall{Name: "stddev", Arg: expr.NewCol("f")}
	case 6:
		call = &sqlparse.AggCall{Name: "var", Arg: expr.NewCol("i")}
	case 7:
		call = &sqlparse.AggCall{Name: "median", Arg: expr.NewCol("f")}
	case 8:
		// Computed argument: exercises the compiled-evaluator source.
		call = &sqlparse.AggCall{Name: "sum", Arg: expr.NewBin(expr.OpAdd, expr.NewCol("f"), expr.NewCol("j"))}
	case 9:
		// Aggregate over a string column (boxed column source).
		call = &sqlparse.AggCall{Name: "count", Arg: expr.NewCol("s")}
	case 10:
		call = &sqlparse.AggCall{Name: "count", Arg: expr.NewCol("s"), Distinct: true}
	default:
		call = &sqlparse.AggCall{Name: "sum", Arg: expr.NewCol("f")}
	}
	return sqlparse.SelectItem{Agg: call, Alias: alias}
}

func randStmt(rng *rand.Rand) (*sqlparse.SelectStmt, bool) {
	stmt := &sqlparse.SelectStmt{From: "p", Limit: -1}
	groupBy, stringComputed := randGroupBy(rng)
	stmt.GroupBy = groupBy
	for k, g := range groupBy {
		// Re-create an equal expression so select items and GROUP BY
		// don't share nodes (matching what the parser produces).
		stmt.Items = append(stmt.Items, sqlparse.SelectItem{Expr: cloneGroupExpr(g), Alias: fmt.Sprintf("g%d", k)})
	}
	nagg := 1 + rng.Intn(3)
	hasDistinct := false
	for k := 0; k < nagg; k++ {
		item := randAggItem(rng, fmt.Sprintf("a%d", k))
		if item.Agg.Distinct {
			hasDistinct = true
		}
		stmt.Items = append(stmt.Items, item)
	}
	if rng.Float64() < 0.65 {
		stmt.Where = randWhere(rng, 2)
	}
	if rng.Float64() < 0.2 {
		stmt.Having = expr.NewBin(expr.OpGt, expr.NewCol("a0"), expr.Int(0))
	}
	if rng.Float64() < 0.3 {
		stmt.OrderBy = []sqlparse.OrderItem{{Expr: expr.NewCol("a0"), Desc: rng.Intn(2) == 0}}
	}
	if rng.Float64() < 0.15 {
		stmt.Limit = rng.Intn(5)
	}
	_ = stringComputed
	return stmt, hasDistinct
}

// cloneGroupExpr re-parses a group-by expression from its SQL rendering
// so the plain select item is an independent, textually-equal tree.
func cloneGroupExpr(g expr.Expr) expr.Expr {
	stmt, err := sqlparse.Parse("SELECT " + g.String() + " FROM x GROUP BY " + g.String())
	if err != nil {
		panic(fmt.Sprintf("cloneGroupExpr %q: %v", g, err))
	}
	return stmt.Items[0].Expr
}

// groupsEqual compares two results' provenance exactly.
func groupsEqual(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Groups) != len(b.Groups) {
		t.Fatalf("%s: %d vs %d groups", label, len(a.Groups), len(b.Groups))
	}
	for gi := range a.Groups {
		ga, gb := a.Groups[gi], b.Groups[gi]
		if ga.FirstRow != gb.FirstRow {
			t.Fatalf("%s: group %d FirstRow %d vs %d", label, gi, ga.FirstRow, gb.FirstRow)
		}
		if len(ga.Lineage) != len(gb.Lineage) {
			t.Fatalf("%s: group %d lineage %d vs %d rows", label, gi, len(ga.Lineage), len(gb.Lineage))
		}
		for k := range ga.Lineage {
			if ga.Lineage[k] != gb.Lineage[k] {
				t.Fatalf("%s: group %d lineage[%d] %d vs %d", label, gi, k, ga.Lineage[k], gb.Lineage[k])
			}
		}
	}
}

// tablesEqual compares materialized output cell-for-cell (Value.Key is
// NaN-safe and numerically canonical).
func tablesEqual(t *testing.T, label string, a, b *engine.Table) {
	t.Helper()
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		t.Fatalf("%s: shape %dx%d vs %dx%d", label, a.NumRows(), a.NumCols(), b.NumRows(), b.NumCols())
	}
	for c := 0; c < a.NumCols(); c++ {
		if a.Schema()[c].Name != b.Schema()[c].Name {
			t.Fatalf("%s: column %d label %q vs %q", label, c, a.Schema()[c].Name, b.Schema()[c].Name)
		}
	}
	for r := 0; r < a.NumRows(); r++ {
		for c := 0; c < a.NumCols(); c++ {
			va, vb := a.Value(r, c), b.Value(r, c)
			if va.Key() != vb.Key() {
				t.Fatalf("%s: cell (%d,%d): %s vs %s", label, r, c, va, vb)
			}
		}
	}
}

func TestVectorScalarParity(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tbl := parityTable(rng, rng.Intn(250))
		for iter := 0; iter < 60; iter++ {
			stmt, hasDistinct := randStmt(rng)
			sql := stmt.String()

			ref, refErr := RunOnWith(tbl, stmt, Options{ForceScalar: true})
			vec1, vec1Err := RunOnWith(tbl, stmt, Options{Shards: 1})
			vec4, vec4Err := RunOnWith(tbl, stmt, Options{Shards: 4})

			if (refErr != nil) != (vec1Err != nil) || (refErr != nil) != (vec4Err != nil) {
				t.Fatalf("seed %d iter %d: error disagreement\nsql: %s\nref: %v\nvec1: %v\nvec4: %v",
					seed, iter, sql, refErr, vec1Err, vec4Err)
			}
			if refErr != nil {
				continue
			}
			for label, vec := range map[string]*Result{"shards=1": vec1, "shards=4": vec4} {
				tablesEqual(t, fmt.Sprintf("seed %d iter %d %s [%s]", seed, iter, label, sql), ref.Table, vec.Table)
				groupsEqual(t, fmt.Sprintf("seed %d iter %d %s [%s]", seed, iter, label, sql), ref, vec)
			}
			if hasDistinct {
				if vec1.Plan.Vectorized {
					t.Fatalf("seed %d iter %d: DISTINCT statement did not fall back to the reference scan [%s]", seed, iter, sql)
				}
				if vec1.Plan.Fallback == "" {
					t.Fatalf("seed %d iter %d: DISTINCT fallback reason missing [%s]", seed, iter, sql)
				}
			}
		}
	}
}
