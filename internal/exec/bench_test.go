package exec

import (
	"fmt"
	"testing"

	"repro/internal/engine"
)

func benchDB(rows int) *engine.DB {
	tbl := engine.MustNewTable("t", engine.NewSchema(
		"k", engine.TInt, "cat", engine.TString, "v", engine.TFloat))
	tbl.Grow(rows)
	cats := []string{"a", "b", "c", "d"}
	for i := 0; i < rows; i++ {
		tbl.MustAppendRow(
			engine.NewInt(int64(i%100)),
			engine.NewString(cats[i%len(cats)]),
			engine.NewFloat(float64(i%997)),
		)
	}
	db := engine.NewDB()
	db.Register(tbl)
	return db
}

// BenchmarkGroupByScan measures the hash-aggregation scan with
// provenance capture — the engine's core loop.
func BenchmarkGroupByScan(b *testing.B) {
	for _, rows := range []int{10_000, 100_000} {
		rows := rows
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			db := benchDB(rows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RunSQL(db, "SELECT k, avg(v), stddev(v) FROM t GROUP BY k"); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(rows))
		})
	}
}

func BenchmarkWhereFilter(b *testing.B) {
	db := benchDB(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSQL(db, "SELECT cat, sum(v) FROM t WHERE v > 500 AND cat != 'd' GROUP BY cat"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLineageUnion(b *testing.B) {
	db := benchDB(100_000)
	res, err := RunSQL(db, "SELECT k, sum(v) FROM t GROUP BY k")
	if err != nil {
		b.Fatal(err)
	}
	suspects := []int{0, 1, 2, 3, 4, 5, 6, 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := res.Lineage(suspects); len(got) == 0 {
			b.Fatal("empty")
		}
	}
}
