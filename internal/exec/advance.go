package exec

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/agg"
	"repro/internal/bitset"
	"repro/internal/engine"
)

// This file implements incremental result maintenance for streaming
// appends: Advance(res, grown) produces the result the statement would
// yield over the grown table by folding ONLY the appended suffix rows
// into copies of the previous result's group states — O(batch + groups)
// instead of the O(n) rescan a fresh run costs. It is the top of the
// incremental stack: the engine extends column views by suffix decode,
// the predicate index extends clause masks the same way, and Advance
// extends group aggregates, lineage, lineage bitsets, and argument
// views, so a continuous-monitoring loop (append batch, re-run query,
// re-Debug) does per-batch work independent of total table size.
//
// Correctness leans on three append-stability facts: row ids never
// change (appends only add larger ids), dictionary codes are assigned
// in first-appearance order (a group key's code is the same in every
// table version), and group first-appearance order over the full table
// equals the old order followed by suffix-only newcomers.
//
// The previous result stays valid and immutable for concurrent readers:
// aggregate states are copied via Clone+Merge, and lineage/argument
// slices grow by appending past every published length (prefix bytes
// are never rewritten). That makes advancing linear — a result can be
// advanced once; branching would clobber the shared suffix, so a second
// Advance returns an error.

// Advance executes res.Stmt against grown — a newer version of
// res.Source's table family (see engine.Table.AppendBatch) — reusing
// res's group states and folding in only the appended rows. Statements
// the vectorized pipeline cannot express (DISTINCT aggregates, >4
// group-by columns, string-valued computed keys) and aggregate-free
// projections fall back to a full RunOn; Plan.Incremental reports
// whether the incremental path ran.
func Advance(res *Result, grown *engine.Table) (*Result, error) {
	return AdvanceCtx(context.Background(), res, grown)
}

// AdvanceCtx is Advance under a cancellable context, with the
// cancellation-safety contract the serving layer depends on: a
// cancelled advance returns a context error, publishes nothing, and
// leaves res exactly as usable as before — the claim is released, and
// any suffix rows the aborted scan appended sit past res's published
// slice lengths, where no reader indexes and where a retry overwrites
// them (the suffix scan is synchronous, so no writer outlives the
// call). Retrying AdvanceCtx on the same res, or re-running the
// statement from scratch, must yield bit-identical results.
func AdvanceCtx(ctx context.Context, res *Result, grown *engine.Table) (out *Result, err error) {
	return AdvanceWith(ctx, res, grown, Options{})
}

// AdvanceWith is AdvanceCtx with explicit execution options: the
// planner knobs (NoGreedyOrdering, NoFilterLowering) apply to the
// suffix filter, and NoSortCarry forces the full ORDER BY re-sort
// instead of the incremental merge. Tests and benchmarks use it to pin
// the fast paths against their reference counterparts.
func AdvanceWith(ctx context.Context, res *Result, grown *engine.Table, opts Options) (out *Result, err error) {
	defer engine.CatchSegmentLoad(&err)
	if res == nil || res.Stmt == nil {
		return nil, fmt.Errorf("exec: Advance of nil result")
	}
	if err := ctx.Err(); err != nil {
		return nil, ctxErr(err)
	}
	if !res.Source.SameFamily(grown) {
		return nil, fmt.Errorf("exec: Advance target is not a version of the result's source table")
	}
	// drop is the retention delta: stream rows removed from the head of
	// the window since the carried result was computed. Surviving old
	// rows occupy [0, oldN) in the NEW version's (rebased) ids.
	drop := grown.Base() - res.Source.Base()
	if drop < 0 {
		return nil, fmt.Errorf("exec: Advance target's retention base %d predates the result's %d", grown.Base(), res.Source.Base())
	}
	oldN, newN := res.Source.NumRows()-drop, grown.NumRows()
	if newN < oldN {
		return nil, fmt.Errorf("exec: Advance target has %d rows, result's source has %d surviving", newN, oldN)
	}
	stmt := res.Stmt
	if drop > 0 {
		// The rebase contract (engine retention): carried group states
		// survive id translation only when nothing they reference was
		// dropped — every group's first row and earliest lineage row
		// must be at or past the horizon — and the horizon must be
		// word-aligned so carried bitmaps rebase by word-shift (always
		// true for whole-segment drops). Otherwise the carried state is
		// unusable and the statement re-runs over the retained window,
		// with the reason recorded in the plan.
		reason := rebaseBlocker(res, drop)
		if oldN < 0 {
			// The horizon moved past the carried result's whole window
			// (every row it saw was dropped) — nothing to rebase, and the
			// group checks above are vacuous for a groupless result.
			reason = "retention: horizon beyond carried window"
		}
		if reason != "" {
			out, err := RunOnCtx(ctx, grown, stmt)
			if err != nil {
				return nil, err
			}
			if out.Plan.Fallback == "" {
				out.Plan.Fallback = reason
			}
			return out, nil
		}
	}
	if !stmt.HasAggregates() && len(stmt.GroupBy) == 0 {
		// Projection: every output row is one source row; a re-run is
		// already O(n) output materialization, nothing to reuse.
		return RunOnCtx(ctx, grown, stmt)
	}

	// Prototype aggregates; anything non-mergeable cannot state-copy.
	protos := make([]agg.Func, len(res.aggItems))
	for ai, i := range res.aggItems {
		f, err := agg.New(stmt.Items[i].Agg.Name)
		if err != nil {
			return nil, err
		}
		if stmt.Items[i].Agg.Distinct {
			f = agg.NewDistinct(f)
		}
		protos[ai] = f
	}

	// The WHERE mask is needed only for suffix rows: lowered filters
	// extend their clause masks incrementally, and the per-row fallback
	// for non-lowerable trees evaluates just [oldN, newN) — otherwise a
	// non-lowerable WHERE would silently reinstate the O(table)-per-batch
	// rescan this path exists to avoid.
	p, reason, err := planVector(ctx, grown, stmt, res.aggArgs, protos, opts, oldN)
	if err != nil {
		return nil, err
	}
	if reason != "" || !p.mergeable {
		return RunOnCtx(ctx, grown, stmt)
	}

	// Claim the result for advancing before touching any shared slice.
	res.argMu.Lock()
	if res.advanced {
		res.argMu.Unlock()
		return nil, fmt.Errorf("exec: result already advanced (advance chains are linear)")
	}
	res.advanced = true
	res.argMu.Unlock()
	// Any error past this point publishes nothing, so the claim must be
	// released for the caller to retry: partial suffix appends from the
	// aborted attempt live past res's published slice lengths and are
	// overwritten by the next attempt.
	unclaim := func() {
		res.argMu.Lock()
		res.advanced = false
		res.argMu.Unlock()
	}

	// full re-runs the statement from scratch (mid-advance fallback); a
	// failed full run releases the claim so the caller can retry.
	full := func() (*Result, error) {
		out, err := RunOnCtx(ctx, grown, stmt)
		if err != nil {
			unclaim()
			return nil, err
		}
		return out, nil
	}

	// Seed a suffix scan with copies of every old group, in scan order.
	ss := newShardScan(p, oldN, newN)
	oldLens := make([]int, len(res.allGroups))
	for gi, g := range res.allGroups {
		oldLens[gi] = len(g.Lineage)
		key, ok := reconstructKey(g, p)
		if !ok {
			return full()
		}
		vg, ok := copyGroup(g, p, key)
		if !ok {
			return full()
		}
		if drop > 0 {
			// Rebase the carried ids: rebaseBlocker proved every
			// reference is past the horizon, so this is pure
			// translation — aggregate states are id-free and carry
			// unchanged.
			vg.g.FirstRow -= drop
			nl := make([]int, len(vg.g.Lineage))
			for i, r := range vg.g.Lineage {
				nl[i] = r - drop
			}
			vg.g.Lineage = nl
		}
		switch {
		case ss.dense != nil:
			ss.dense[key[0]] = int32(len(ss.groups)) + 1
		case ss.h1 != nil:
			ss.h1[key[0]] = int32(len(ss.groups))
		case ss.hN != nil:
			ss.hN[key] = int32(len(ss.groups))
		}
		ss.groups = append(ss.groups, vg)
	}

	ss.run()
	if ss.err != nil {
		if errors.Is(ss.err, errVectorAbort) {
			return full()
		}
		unclaim()
		return nil, ss.err
	}

	// Materialize boxed key values for suffix-born groups only.
	groups := make([]*Group, len(ss.groups))
	row := make([]engine.Value, grown.NumCols())
	rr := grown.NewRowReader()
	defer rr.Close()
	for gi, vg := range ss.groups {
		if gi >= len(res.allGroups) && len(stmt.GroupBy) > 0 {
			rr.RowInto(vg.g.FirstRow, row)
			vg.g.Key = make([]engine.Value, len(stmt.GroupBy))
			for k, g := range stmt.GroupBy {
				v, err := g.Eval(row)
				if err != nil {
					unclaim()
					return nil, err
				}
				vg.g.Key[k] = v
			}
		}
		groups[gi] = vg.g
	}

	out = &Result{
		Stmt: stmt, Source: grown, Groups: groups,
		aggArgs: res.aggArgs, aggItems: res.aggItems,
		Plan: PlanInfo{
			Vectorized: true, WhereLowered: p.lowered, Shards: 1, Incremental: true,
			FilterConjuncts:      p.fstats.conjuncts,
			FilterOrder:          p.fstats.order,
			FilterShortCircuited: p.fstats.shortCircuited,
			ResidualConjuncts:    p.fstats.residualConjuncts,
			ResidualRows:         p.fstats.residualRows,
			FilterFallback:       p.fstats.fallback,
			MaskedAgg:            p.maskedAgg,
		},
	}
	if err := out.materializeCarry(res, oldLens, opts.NoSortCarry); err != nil {
		unclaim()
		return nil, err
	}
	carryCaches(res, out, ss, oldLens, oldN, newN, drop)
	return out, nil
}

// rebaseBlocker reports why a carried result cannot rebase across a
// retention horizon of drop rows ("" when it can): a group still
// references dropped rows, or the horizon is not bitset-word-aligned
// (impossible for whole-segment drops, kept as a guard).
//
// When rebase succeeds, everything downstream carries too — including
// an ORDER BY's incremental merge (materializeCarry), so a windowed
// ordered statement advances across retention without a full re-sort
// (TestAdvanceRetentionSortCarry pins this). That is the full extent of
// ORDER BY carry across retention by design: a statement whose groups
// reference dropped rows has aggregate states that are simply wrong for
// the retained table, so the carried sort keys are wrong too, and the
// only correct answer is the full fallback run this function triggers.
func rebaseBlocker(res *Result, drop int) string {
	if drop%64 != 0 {
		return "retention: horizon not word-aligned"
	}
	for _, g := range res.allGroups {
		if g.FirstRow < drop {
			return "retention: carried group first row below horizon"
		}
		if len(g.Lineage) > 0 && g.Lineage[0] < drop {
			return "retention: carried lineage references dropped rows"
		}
	}
	return ""
}

// reconstructKey rebuilds a group's packed key slots from its boxed key
// values, using the same canonicalization scanRow applies per row.
// Append-stable dictionary codes make the dict slots version-portable.
func reconstructKey(g *Group, p *vectorPlan) (vKey, bool) {
	var key vKey
	if len(g.Key) != len(p.keys) {
		return key, false
	}
	for i := range p.keys {
		v := g.Key[i]
		switch p.keys[i].kind {
		case kindDict:
			if v.IsNull() {
				key[i] = 0 // scanRow: NULL code -1 → slot 0
				continue
			}
			if v.T != engine.TString {
				return key, false
			}
			code := p.keys[i].dict.Code(v.S)
			if code < 0 {
				return key, false // key string unseen in the grown dict: impossible unless mismatched
			}
			key[i] = uint64(code + 1)
		default: // kindFloat, kindComputed (numeric)
			if v.IsNull() {
				key[i] = nullSlot
				continue
			}
			if v.T == engine.TString {
				return key, false // string computed keys never vectorize
			}
			key[i] = canonSlot(v.Float())
		}
	}
	return key, true
}

// copyGroup makes the advanced copy of one group: aggregate states are
// deep-copied via Clone+Merge (the old states stay untouched for
// in-flight readers), Key is shared (immutable), and Lineage is shared
// as-is — suffix appends land past the old length, which old readers
// never index.
func copyGroup(g *Group, p *vectorPlan, key vKey) (*vGroup, bool) {
	ng := &Group{Key: g.Key, Lineage: g.Lineage, Aggs: make([]agg.Func, len(g.Aggs)), FirstRow: g.FirstRow}
	vg := &vGroup{g: ng, key: key, fas: make([]agg.FloatAdder, len(g.Aggs))}
	for i, a := range g.Aggs {
		fresh := a.Clone()
		m, ok := fresh.(agg.Merger)
		if !ok || !m.Merge(a) {
			return nil, false
		}
		ng.Aggs[i] = fresh
		if p.args[i].floatFed {
			vg.fas[i] = ng.Aggs[i].(agg.FloatAdder)
		}
	}
	return vg, true
}

// carryCaches extends the old result's lazily-built columnar caches —
// per-group lineage bitsets and per-ordinal argument views — onto the
// new result, so downstream Debug runs (influence.Scorer) reuse the
// unchanged prefix instead of rebuilding it: the prefix is a word-level
// memcpy plus amortized slice growth, and only the appended suffix is
// decoded or set bit-by-bit.
// When drop > 0 the carried bitmaps rebase by word-shift and the
// argument values by re-slicing — the dropped head words/values are
// exactly the dropped segments.
func carryCaches(res, out *Result, ss *shardScan, oldLens []int, oldN, newN, drop int) {
	// Snapshot the cache maps under the lock: concurrent readers of the
	// old result (a Debug in flight calls GroupLineageBitsShared /
	// AggArgFloats, which insert) may grow them while we carry.
	res.argMu.Lock()
	oldBits := make(map[*Group]*bitset.Bitset, len(res.lineBits))
	for g, b := range res.lineBits {
		oldBits[g] = b
	}
	oldAVs := make(map[int]*ArgView, len(res.argViews))
	for ord, av := range res.argViews {
		oldAVs[ord] = av
	}
	res.argMu.Unlock()

	if len(oldBits) > 0 {
		out.lineBits = make(map[*Group]*bitset.Bitset, len(oldBits))
		for gi, og := range res.allGroups {
			b, ok := oldBits[og]
			if !ok {
				continue
			}
			ng := ss.groups[gi].g
			var nb *bitset.Bitset
			if drop > 0 {
				nb = bitset.ShiftDownWords(newN, b.Words(), drop)
			} else {
				nb = bitset.SnapshotWords(newN, b.Words())
			}
			for _, r := range ng.Lineage[oldLens[gi]:] {
				nb.Set(r)
			}
			out.lineBits[ng] = nb
		}
	}

	if len(oldAVs) > 0 {
		out.argViews = make(map[int]*ArgView, len(oldAVs))
		row := make([]engine.Value, out.Source.NumCols())
		avr := out.Source.NewRowReader()
		defer avr.Close()
		for ord, av := range oldAVs {
			vals := av.Vals // len oldN+drop; appends stay past published lengths
			var nb *bitset.Bitset
			if drop > 0 {
				// Rebase: drop the head values (fresh slice — the carried
				// one belongs to the old window) and word-shift the NULLs.
				vals = append(make([]float64, 0, newN), av.Vals[drop:]...)
				nb = bitset.ShiftDownWords(newN, av.Null.Words(), drop)
			} else {
				nb = bitset.SnapshotWords(newN, av.Null.Words())
			}
			arg := out.aggArgs[ord]
			ok := true
			for src := oldN; src < newN; src++ {
				if arg == nil {
					vals = append(vals, 1)
					continue
				}
				avr.RowInto(src, row)
				v, err := arg.Eval(row)
				if err != nil {
					ok = false // leave this ordinal to a lazy full build
					break
				}
				if v.IsNull() {
					vals = append(vals, nanFloat)
					nb.Set(src)
					continue
				}
				vals = append(vals, v.Float())
			}
			if ok {
				out.argViews[ord] = &ArgView{Vals: vals, Null: nb}
			}
		}
	}
}
