package exec

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/sqlparse"
)

// These tests pin the incremental append path: Advance over a grown
// copy-on-write table version must produce exactly the result a fresh
// run over the grown table produces — cells, group order, lineage —
// while leaving the old result untouched, and the carried columnar
// caches (argument views, lineage bitsets) must match fresh builds.

// batchRows materializes k random rows (parityTable's distribution) as
// an AppendBatch payload.
func batchRows(rng *rand.Rand, k int) [][]engine.Value {
	src := parityTable(rng, k)
	out := make([][]engine.Value, k)
	for i := 0; i < k; i++ {
		out[i] = src.Row(i)
	}
	return out
}

// TestAdvanceParity is the incremental counterpart of the vector/scalar
// parity test: for random statements and random append batches, the
// advanced result must equal a from-scratch reference run on the grown
// table, across a chain of appends.
func TestAdvanceParity(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed * 101))
		tbl := parityTable(rng, rng.Intn(200))
		for iter := 0; iter < 25; iter++ {
			stmt, _ := randStmt(rng)
			sql := stmt.String()
			// Appends are linear per family: each iteration chains from
			// the newest version the previous iteration produced.
			cur := tbl
			res, err := RunOn(cur, stmt)
			if err != nil {
				continue // reference scan rejects it identically; covered by parity test
			}
			for step := 0; step < 3; step++ {
				grown, err := cur.AppendBatch(batchRows(rng, 1+rng.Intn(40)))
				if err != nil {
					t.Fatalf("seed %d iter %d step %d: AppendBatch: %v", seed, iter, step, err)
				}
				adv, err := Advance(res, grown)
				if err != nil {
					t.Fatalf("seed %d iter %d step %d: Advance: %v\nsql: %s", seed, iter, step, err, sql)
				}
				ref, err := RunOnWith(grown, stmt, Options{ForceScalar: true})
				if err != nil {
					t.Fatalf("seed %d iter %d step %d: reference run: %v\nsql: %s", seed, iter, step, err, sql)
				}
				label := fmt.Sprintf("seed %d iter %d step %d [%s]", seed, iter, step, sql)
				tablesEqual(t, label, ref.Table, adv.Table)
				groupsEqual(t, label, ref, adv)
				cur, res = grown, adv
			}
			tbl = cur
		}
	}
}

// streamFixture builds a small grouped statement over a dict + float
// key that the vectorized pipeline handles, so Advance's incremental
// path (not the fallback) is what's under test.
func streamFixture(t *testing.T, rows int) (*engine.Table, *sqlparse.SelectStmt) {
	t.Helper()
	tbl, err := engine.NewTable("p", engine.NewSchema("s", engine.TString, "f", engine.TFloat))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	strs := []string{"a", "b", "c"}
	for i := 0; i < rows; i++ {
		tbl.MustAppendRow(engine.NewString(strs[rng.Intn(3)]), engine.NewFloat(float64(rng.Intn(40))*0.25))
	}
	stmt, err := sqlparse.Parse("SELECT s, sum(f) AS total, count(*) AS n FROM p WHERE f >= 1 GROUP BY s")
	if err != nil {
		t.Fatal(err)
	}
	return tbl, stmt
}

func streamBatch(rng *rand.Rand, k int, strs []string) [][]engine.Value {
	out := make([][]engine.Value, k)
	for i := range out {
		out[i] = []engine.Value{engine.NewString(strs[rng.Intn(len(strs))]), engine.NewFloat(float64(rng.Intn(40)) * 0.25)}
	}
	return out
}

// TestAdvanceIncrementalPlan asserts the incremental path actually runs
// (Plan.Incremental) for a vectorizable statement, that new group keys
// born in a batch appear, and that advancing is linear.
func TestAdvanceIncrementalPlan(t *testing.T) {
	tbl, stmt := streamFixture(t, 500)
	res, err := RunOn(tbl, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.Vectorized {
		t.Fatalf("fixture statement not vectorized: %+v", res.Plan)
	}
	// The batch introduces a brand-new group key "zz".
	batch := [][]engine.Value{
		{engine.NewString("zz"), engine.NewFloat(5)},
		{engine.NewString("a"), engine.NewFloat(2)},
		{engine.NewString("a"), engine.NewFloat(0.25)}, // filtered out by WHERE
	}
	grown, err := tbl.AppendBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := Advance(res, grown)
	if err != nil {
		t.Fatal(err)
	}
	if !adv.Plan.Incremental {
		t.Fatalf("Advance did not take the incremental path: %+v", adv.Plan)
	}
	ref, err := RunOnWith(grown, stmt, Options{ForceScalar: true})
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, "incremental", ref.Table, adv.Table)
	groupsEqual(t, "incremental", ref, adv)

	// Advance chains are linear: the old result cannot branch.
	if _, err := Advance(res, grown); err == nil {
		t.Fatal("second Advance from the same result should error")
	}
	// But the chain continues from the advanced result.
	grown2, err := grown.AppendBatch(streamBatch(rand.New(rand.NewSource(7)), 20, []string{"a", "b", "zz"}))
	if err != nil {
		t.Fatal(err)
	}
	adv2, err := Advance(adv, grown2)
	if err != nil {
		t.Fatal(err)
	}
	ref2, err := RunOnWith(grown2, stmt, Options{ForceScalar: true})
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, "chain step 2", ref2.Table, adv2.Table)
	groupsEqual(t, "chain step 2", ref2, adv2)
}

// TestAdvanceLeavesOldResultIntact pins copy-on-write semantics: after
// an Advance, the previous result still reports the pre-append state.
func TestAdvanceLeavesOldResultIntact(t *testing.T) {
	tbl, stmt := streamFixture(t, 300)
	res, err := RunOn(tbl, stmt)
	if err != nil {
		t.Fatal(err)
	}
	type snap struct {
		cells   []string
		lineage []int
	}
	var before []snap
	for gi, g := range res.Groups {
		s := snap{lineage: append([]int(nil), g.Lineage...)}
		for c := 0; c < res.Table.NumCols(); c++ {
			s.cells = append(s.cells, res.Table.Value(gi, c).Key())
		}
		before = append(before, s)
	}
	grown, err := tbl.AppendBatch(streamBatch(rand.New(rand.NewSource(3)), 100, []string{"a", "b", "c", "d"}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Advance(res, grown); err != nil {
		t.Fatal(err)
	}
	for gi, g := range res.Groups {
		if len(g.Lineage) != len(before[gi].lineage) {
			t.Fatalf("group %d lineage grew in the old result: %d vs %d", gi, len(g.Lineage), len(before[gi].lineage))
		}
		for k := range g.Lineage {
			if g.Lineage[k] != before[gi].lineage[k] {
				t.Fatalf("group %d lineage[%d] changed", gi, k)
			}
		}
		for c := 0; c < res.Table.NumCols(); c++ {
			if res.Table.Value(gi, c).Key() != before[gi].cells[c] {
				t.Fatalf("old result cell (%d,%d) changed after Advance", gi, c)
			}
		}
	}
	if res.Source.NumRows() != 300 {
		t.Fatalf("old result's source grew: %d rows", res.Source.NumRows())
	}
}

// TestAdvanceCarriesColumnarCaches checks that argument views and
// lineage bitsets carried across an Advance equal fresh builds on the
// grown result.
func TestAdvanceCarriesColumnarCaches(t *testing.T) {
	tbl, stmt := streamFixture(t, 400)
	res, err := RunOn(tbl, stmt)
	if err != nil {
		t.Fatal(err)
	}
	// Touch the caches so there is something to carry.
	if _, err := res.AggArgFloats(0); err != nil {
		t.Fatal(err)
	}
	for ri := range res.Groups {
		res.GroupLineageBitsShared(ri)
	}
	grown, err := tbl.AppendBatch(streamBatch(rand.New(rand.NewSource(9)), 150, []string{"a", "b", "c", "new"}))
	if err != nil {
		t.Fatal(err)
	}
	adv, err := Advance(res, grown)
	if err != nil {
		t.Fatal(err)
	}
	if !adv.Plan.Incremental {
		t.Fatalf("expected incremental advance, got %+v", adv.Plan)
	}
	fresh, err := RunOn(grown, stmt)
	if err != nil {
		t.Fatal(err)
	}
	gotAV, err := adv.AggArgFloats(0)
	if err != nil {
		t.Fatal(err)
	}
	wantAV, err := fresh.AggArgFloats(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotAV.Vals) != len(wantAV.Vals) {
		t.Fatalf("carried ArgView length %d, want %d", len(gotAV.Vals), len(wantAV.Vals))
	}
	for i := range gotAV.Vals {
		if gotAV.Vals[i] != wantAV.Vals[i] && !(gotAV.Vals[i] != gotAV.Vals[i] && wantAV.Vals[i] != wantAV.Vals[i]) {
			t.Fatalf("carried ArgView.Vals[%d] = %v, want %v", i, gotAV.Vals[i], wantAV.Vals[i])
		}
		if gotAV.Null.Get(i) != wantAV.Null.Get(i) {
			t.Fatalf("carried ArgView.Null(%d) mismatch", i)
		}
	}
	for ri := range adv.Groups {
		got, want := adv.GroupLineageBitsShared(ri), fresh.GroupLineageBitsShared(ri)
		if got.Len() != want.Len() || got.Count() != want.Count() {
			t.Fatalf("group %d lineage bits: len %d/%d count %d/%d", ri, got.Len(), want.Len(), got.Count(), want.Count())
		}
		want.ForEach(func(i int) {
			if !got.Get(i) {
				t.Fatalf("group %d lineage bit %d missing in carried bitset", ri, i)
			}
		})
	}
}

// TestAppendDuringQueryRace drives the safe concurrent ingest/serve
// path under the race detector: one goroutine streams batches through
// DB.Append (copy-on-write republish) while others repeatedly fetch the
// current version and run the query, and another walks an Advance
// chain. Every query must see a consistent snapshot (row count a
// multiple of batch boundaries and sum matching its own version).
func TestAppendDuringQueryRace(t *testing.T) {
	tbl, stmt := streamFixture(t, 200)
	// Statements are per-query objects (Resolve writes column indexes
	// into the AST), so every goroutine parses its own copy.
	sql := stmt.String()
	parse := func() *sqlparse.SelectStmt {
		s, err := sqlparse.Parse(sql)
		if err != nil {
			panic(err)
		}
		return s
	}
	db := engine.NewDB()
	db.Register(tbl)

	const batches = 30
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() { // ingester
		defer wg.Done()
		defer close(stop)
		rng := rand.New(rand.NewSource(17))
		for b := 0; b < batches; b++ {
			if _, err := db.Append("p", streamBatch(rng, 25, []string{"a", "b", "c", "x"})); err != nil {
				t.Errorf("append %d: %v", b, err)
				return
			}
		}
	}()

	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() { // query servers
			defer wg.Done()
			stmt := parse()
			for {
				select {
				case <-stop:
					return
				default:
				}
				src, err := db.Table("p")
				if err != nil {
					t.Error(err)
					return
				}
				n := src.NumRows()
				if (n-200)%25 != 0 {
					t.Errorf("observed half-appended batch: %d rows", n)
					return
				}
				res, err := RunOn(src, stmt)
				if err != nil {
					t.Error(err)
					return
				}
				total := 0
				for _, g := range res.Groups {
					total += len(g.Lineage)
				}
				if total > n {
					t.Errorf("lineage beyond snapshot: %d > %d", total, n)
					return
				}
			}
		}()
	}

	wg.Add(1)
	go func() { // advance chain follower
		defer wg.Done()
		stmt := parse()
		src, _ := db.Table("p")
		res, err := RunOn(src, stmt)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur, err := db.Table("p")
			if err != nil {
				t.Error(err)
				return
			}
			if cur.NumRows() == res.Source.NumRows() {
				continue
			}
			res, err = Advance(res, cur)
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()

	wg.Wait()
}
