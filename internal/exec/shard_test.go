package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitset"
)

// checkRanges asserts the structural invariants every shard split must
// satisfy: non-empty list, non-overlapping contiguous ascending ranges,
// exhaustive over [0, n), 64-row-aligned interior boundaries, and at
// most nshards entries.
func checkRanges(t *testing.T, label string, ranges [][2]int, n, nshards int) {
	t.Helper()
	if len(ranges) == 0 {
		t.Fatalf("%s: no ranges", label)
	}
	if len(ranges) > nshards {
		t.Fatalf("%s: %d ranges for %d shards", label, len(ranges), nshards)
	}
	if ranges[0][0] != 0 {
		t.Fatalf("%s: first range starts at %d", label, ranges[0][0])
	}
	for i, r := range ranges {
		if r[1] <= r[0] && n > 0 {
			t.Fatalf("%s: empty range %d: %v", label, i, r)
		}
		if i > 0 && r[0] != ranges[i-1][1] {
			t.Fatalf("%s: gap/overlap at range %d: %v after %v", label, i, r, ranges[i-1])
		}
		if i > 0 && r[0]%64 != 0 {
			t.Fatalf("%s: boundary %d not word-aligned", label, r[0])
		}
	}
	if last := ranges[len(ranges)-1][1]; last != n {
		t.Fatalf("%s: ranges end at %d, want %d", label, last, n)
	}
}

// TestShardRangesEdges enumerates the boundary geometries: sub-word
// tables, exact word multiples, one row over, fewer segments than
// shards, and more shards than units.
func TestShardRangesEdges(t *testing.T) {
	const segRows = 64 // MinSegmentBits geometry
	for _, n := range []int{1, 63, 64, 65, 127, 128, 129, 1000, 4096, 4097} {
		for _, nshards := range []int{1, 4, 16} {
			ranges := shardRanges(n, segRows, nshards)
			checkRanges(t, fmt.Sprintf("shardRanges(n=%d, shards=%d)", n, nshards), ranges, n, nshards)
		}
	}
	// Larger segment geometry: fewer segments than shards falls back to
	// word units.
	for _, n := range []int{100, 65536, 65537, 200000} {
		for _, nshards := range []int{1, 4, 16} {
			ranges := shardRanges(n, 65536, nshards)
			checkRanges(t, fmt.Sprintf("shardRanges(n=%d, seg=64Ki, shards=%d)", n, nshards), ranges, n, nshards)
		}
	}
}

// TestAdaptiveShardRangesEdges drives the popcount-balanced split
// through the same geometry grid under several filter shapes —
// all-zero (every segment zone-skipped), all-ones, a single surviving
// segment, a single surviving word, and random — checking the
// structural invariants plus the balance property the split exists
// for: when all survivors sit in one hot segment, the split still
// produces more than one range (no degenerate one-busy-shard scan).
func TestAdaptiveShardRangesEdges(t *testing.T) {
	const segRows = 64
	rng := rand.New(rand.NewSource(11))
	shapes := []struct {
		name string
		fill func(b *bitset.Bitset, n int)
	}{
		{"zero", func(b *bitset.Bitset, n int) {}},
		{"ones", func(b *bitset.Bitset, n int) {
			for r := 0; r < n; r++ {
				b.Set(r)
			}
		}},
		{"firstseg", func(b *bitset.Bitset, n int) {
			for r := 0; r < n && r < segRows; r++ {
				b.Set(r)
			}
		}},
		{"lastword", func(b *bitset.Bitset, n int) {
			for r := n - n%64; r < n; r++ {
				b.Set(r)
			}
			if n%64 == 0 && n > 0 {
				b.Set(n - 1)
			}
		}},
		{"random", func(b *bitset.Bitset, n int) {
			for r := 0; r < n; r++ {
				if rng.Intn(3) == 0 {
					b.Set(r)
				}
			}
		}},
	}
	for _, n := range []int{1, 63, 64, 65, 127, 128, 129, 1000, 4096, 4097} {
		for _, nshards := range []int{1, 4, 16} {
			for _, shape := range shapes {
				f := bitset.New(n)
				shape.fill(f, n)
				label := fmt.Sprintf("adaptive(n=%d, shards=%d, %s)", n, nshards, shape.name)
				ranges := adaptiveShardRanges(n, segRows, nshards, f)
				checkRanges(t, label, ranges, n, nshards)
			}
		}
	}

	// The motivating case: 16 multi-word segments, all zone-skipped but
	// one. The whole-segment split would put every surviving row in one
	// shard; the adaptive split must subdivide the hot segment on word
	// boundaries. (At the 64-row minimum geometry a segment IS one word
	// — nothing finer exists — so this case uses 256-row segments.)
	const hotSegRows = 256
	n := 16 * hotSegRows
	f := bitset.New(n)
	for r := 5 * hotSegRows; r < 6*hotSegRows; r++ {
		f.Set(r)
	}
	ranges := adaptiveShardRanges(n, hotSegRows, 4, f)
	checkRanges(t, "one-hot-segment", ranges, n, 4)
	if len(ranges) < 2 {
		t.Fatalf("one surviving segment not subdivided: %v", ranges)
	}
	// Count survivors per range: no range may hold them all.
	words := f.Words()
	for i, r := range ranges {
		pop := bitset.CountWords(words[r[0]/64 : (r[1]+63)/64])
		if pop == hotSegRows {
			t.Fatalf("range %d %v still holds every surviving row: %v", i, r, ranges)
		}
	}

	// All segments skipped: a single range, nothing to balance.
	empty := bitset.New(n)
	ranges = adaptiveShardRanges(n, segRows, 4, empty)
	if len(ranges) != 1 || ranges[0] != [2]int{0, n} {
		t.Fatalf("all-skipped split = %v, want one full range", ranges)
	}
}
