package exec

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/sqlparse"
)

// fuzzFilterTable is the fixed predicate playground: one table per
// process, with NULLs, NaNs, signed zeros and short strings in every
// column, large enough that lowered masks span several bitset words.
var fuzzFilterTable = sync.OnceValue(func() *engine.Table {
	return parityTable(rand.New(rand.NewSource(99)), 300)
})

// FuzzResidualFilterParity pins buildFilter — the greedy ordered path
// with residual masks and OR-chain unions, the plain left-to-right
// lowering, and the scalar fallback it degrades to — against the
// per-row expr.EvalBool oracle: for any WHERE the parser accepts and
// the schema resolves, the pass mask must match bit for bit, and the
// two sides must agree on whether evaluation errors at all (the
// residual path only reaches rows the scalar evaluator would reach, so
// error presence is part of the contract, not just values).
func FuzzResidualFilterParity(f *testing.F) {
	for _, s := range []string{
		"i >= 2 AND s LIKE 'a%'",
		"s LIKE '%y' AND f + 0.25 > 1 AND i < 3",
		"j = 1 OR s = 'b' OR f > 2",
		"(i > 0 AND s LIKE '_') OR j = 2",
		"NOT (i > 100) AND s LIKE 'a%'",
		"i > 100 AND s LIKE 'a%' AND f < 1",
		"j >= 0 OR s = 'c' OR i = 1",
		"f = 0 AND i IS NOT NULL AND s LIKE '%'",
		"i / 0 > 1 AND s LIKE 'a%'",
		"i > 3 AND f / i > 0.5",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		where, err := sqlparse.ParseExpr(text)
		if err != nil {
			return
		}
		tbl := fuzzFilterTable()
		if err := where.Resolve(tbl.Schema()); err != nil {
			return // unknown column/function: unreachable as a WHERE
		}

		// Oracle: ascending per-row EvalBool, stopping at the first
		// error like the reference scan.
		n := tbl.NumRows()
		want := make([]bool, n)
		var wantErr error
		row := make([]engine.Value, tbl.NumCols())
		for r := 0; r < n; r++ {
			tbl.RowInto(r, row)
			ok, err := expr.EvalBool(where, row)
			if err != nil {
				wantErr = err
				break
			}
			want[r] = ok
		}

		ctx := context.Background()
		for _, noGreedy := range []bool{false, true} {
			mask, _, _, err := buildFilter(ctx, tbl, where, false, noGreedy, 0)
			if (err != nil) != (wantErr != nil) {
				t.Fatalf("noGreedy=%v [%s]: error disagreement: buildFilter=%v oracle=%v",
					noGreedy, where, err, wantErr)
			}
			if err != nil {
				continue
			}
			for r := 0; r < n; r++ {
				if mask.Get(r) != want[r] {
					t.Fatalf("noGreedy=%v [%s]: row %d: mask=%v oracle=%v",
						noGreedy, where, r, mask.Get(r), want[r])
				}
			}
		}
	})
}
