// Package exec plans and executes the single-block aggregate queries
// produced by internal/sqlparse against internal/engine tables, and —
// crucially for DBWipes — captures fine-grained provenance while doing
// so: every output group records the exact set of source row ids
// (its *lineage*) that flowed into its aggregates.
//
// The original DBWipes runs on PostgreSQL and reconstructs lineage with
// rewritten queries; here lineage falls out of the hash-aggregation loop
// for free. The Result type is the hand-off point to the ranked
// provenance pipeline: it exposes lineage sets, live (removable)
// aggregate states, and the means to re-evaluate an aggregate argument
// on a source row.
package exec

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/agg"
	"repro/internal/bitset"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/sqlparse"
)

// ctxCheckRows is the cancellation-check granularity of every per-row
// scan loop: ctx.Err() is polled once per this many rows (an atomic
// load on cancellable contexts, a nil return on Background), so the
// checks cost nothing measurable on the uncontended hot path while a
// cancelled giant scan still stops within tens of microseconds.
const ctxCheckRows = 4096

// ctxErr wraps a cancellation surfaced mid-scan so callers can still
// errors.Is it against context.Canceled / context.DeadlineExceeded.
func ctxErr(err error) error { return fmt.Errorf("exec: cancelled: %w", err) }

// Group is one output group: its key values, the aggregate states
// accumulated over its input, and the lineage (source row ids).
type Group struct {
	// Key holds the evaluated GROUP BY expressions for this group (empty
	// for a global aggregate).
	Key []engine.Value
	// Lineage lists the source row ids that passed WHERE and fell into
	// this group, in scan order.
	Lineage []int
	// Aggs holds one live aggregate state per aggregate select item.
	Aggs []agg.Func
	// FirstRow is the first source row id of the group, used to evaluate
	// non-aggregate select items.
	FirstRow int
}

// Result is an executed query: an ordinary result table plus the
// provenance sidecar.
type Result struct {
	// Stmt is the executed statement.
	Stmt *sqlparse.SelectStmt
	// Source is the scanned table.
	Source *engine.Table
	// Table is the materialized result (post HAVING/ORDER BY/LIMIT).
	Table *engine.Table
	// Groups is parallel to Table's rows.
	Groups []*Group
	// aggArgs[i] is the resolved argument expression of the i'th
	// aggregate select item (nil for count(*)).
	aggArgs []expr.Expr
	// aggItems maps aggregate ordinal -> select item index.
	aggItems []int
	// Plan records which execution strategy produced this result.
	Plan PlanInfo
	// allGroups retains every group in scan order, before HAVING/ORDER
	// BY/LIMIT pruned or reordered Groups — the set Advance folds
	// appended rows into.
	allGroups []*Group
	// argMu guards argViews (the per-ordinal flat argument columns the
	// columnar scoring fast path decodes on first use, see columnar.go),
	// lineBits (the per-group lineage bitset cache Advance carries
	// across batches), and the advanced flag.
	argMu    sync.Mutex
	argViews map[int]*ArgView
	lineBits map[*Group]*bitset.Bitset
	// advanced marks a result that has already been advanced once;
	// Advance extends lineage slices and argument views in place past
	// their published lengths, so advancing must be linear — a second
	// Advance from the same result would clobber the first's suffix.
	advanced bool
}

// Run executes stmt against db, capturing provenance.
func Run(db *engine.DB, stmt *sqlparse.SelectStmt) (*Result, error) {
	return RunCtx(context.Background(), db, stmt)
}

// RunCtx is Run under a cancellable context: scan loops poll ctx at
// ctxCheckRows granularity and return a context error (wrapping
// context.Canceled / DeadlineExceeded) without publishing anything.
func RunCtx(ctx context.Context, db *engine.DB, stmt *sqlparse.SelectStmt) (*Result, error) {
	src, err := db.Table(stmt.From)
	if err != nil {
		return nil, err
	}
	return RunOnWithCtx(ctx, src, stmt, Options{})
}

// RunSQL parses and executes sql against db.
func RunSQL(db *engine.DB, sql string) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return Run(db, stmt)
}

// RunOn executes stmt against an explicit source table (the FROM name
// is ignored). This is what clean-and-requery uses to run the original
// statement against a filtered view. Grouped statements take the
// vectorized shard-parallel pipeline (vector.go) when they can, and the
// boxed reference scan otherwise; Result.Plan records the choice.
func RunOn(src *engine.Table, stmt *sqlparse.SelectStmt) (*Result, error) {
	return RunOnWithCtx(context.Background(), src, stmt, Options{})
}

// RunOnCtx is RunOn under a cancellable context (see RunCtx).
func RunOnCtx(ctx context.Context, src *engine.Table, stmt *sqlparse.SelectStmt) (*Result, error) {
	return RunOnWithCtx(ctx, src, stmt, Options{})
}

// RunOnWith is RunOn with explicit strategy options (shard count,
// forced scalar execution). Tests and benchmarks use it to pin paths;
// normal callers want RunOn.
func RunOnWith(src *engine.Table, stmt *sqlparse.SelectStmt, opts Options) (*Result, error) {
	return RunOnWithCtx(context.Background(), src, stmt, opts)
}

// RunOnWithCtx is RunOnWith under a cancellable context (see RunCtx).
// A chunk-load failure on an out-of-core table (corrupt or vanished
// segment file) surfaces here as an error, never as a panic.
func RunOnWithCtx(ctx context.Context, src *engine.Table, stmt *sqlparse.SelectStmt, opts Options) (res *Result, err error) {
	defer engine.CatchSegmentLoad(&err)
	if len(stmt.Items) == 0 {
		return nil, fmt.Errorf("exec: empty select list")
	}
	schema := src.Schema()

	// Resolve every expression against the source schema.
	if stmt.Where != nil {
		if err := stmt.Where.Resolve(schema); err != nil {
			return nil, err
		}
	}
	for _, g := range stmt.GroupBy {
		if err := g.Resolve(schema); err != nil {
			return nil, err
		}
	}
	var aggArgs []expr.Expr
	var aggItems []int
	for i := range stmt.Items {
		item := &stmt.Items[i]
		if item.IsAgg() {
			if item.Agg.Arg != nil {
				if err := item.Agg.Arg.Resolve(schema); err != nil {
					return nil, err
				}
			}
			aggArgs = append(aggArgs, item.Agg.Arg)
			aggItems = append(aggItems, i)
		} else {
			if err := item.Expr.Resolve(schema); err != nil {
				return nil, err
			}
		}
	}
	grouped := stmt.HasAggregates() || len(stmt.GroupBy) > 0
	if !grouped {
		return runProjection(ctx, src, stmt, opts)
	}
	if err := checkPlainItemsGrouped(stmt); err != nil {
		return nil, err
	}

	// Prototype aggregates, cloned per group.
	protos := make([]agg.Func, len(aggItems))
	for ai, i := range aggItems {
		f, err := agg.New(stmt.Items[i].Agg.Name)
		if err != nil {
			return nil, err
		}
		if stmt.Items[i].Agg.Distinct {
			f = agg.NewDistinct(f)
		}
		protos[ai] = f
	}

	if !opts.ForceScalar {
		res, fallback, err := runVector(ctx, src, stmt, aggArgs, aggItems, protos, opts)
		if err != nil {
			return nil, err
		}
		if res != nil {
			return res, nil
		}
		return runScalarGrouped(ctx, src, stmt, aggArgs, aggItems, protos, fallback)
	}
	return runScalarGrouped(ctx, src, stmt, aggArgs, aggItems, protos, "forced scalar")
}

// runScalarGrouped is the boxed reference scan: row-at-a-time WHERE
// evaluation, string group keys, boxed aggregate accumulation. It is
// the oracle the vectorized pipeline is property-tested against, and
// the fallback for statements the pipeline cannot express (recorded in
// Plan.Fallback).
func runScalarGrouped(ctx context.Context, src *engine.Table, stmt *sqlparse.SelectStmt, aggArgs []expr.Expr, aggItems []int, protos []agg.Func, fallback string) (*Result, error) {
	groupsByKey := make(map[string]*Group)
	var groups []*Group
	row := make([]engine.Value, src.NumCols())
	var keyBuf strings.Builder
	keyVals := make([]engine.Value, len(stmt.GroupBy))
	rr := src.NewRowReader()
	defer rr.Close()

	for r := 0; r < src.NumRows(); r++ {
		if r%ctxCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return nil, ctxErr(err)
			}
		}
		rr.RowInto(r, row)
		if stmt.Where != nil {
			ok, err := expr.EvalBool(stmt.Where, row)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		keyBuf.Reset()
		for k, g := range stmt.GroupBy {
			v, err := g.Eval(row)
			if err != nil {
				return nil, err
			}
			keyVals[k] = v
			keyBuf.WriteString(v.Key())
			keyBuf.WriteByte('\x1f')
		}
		key := keyBuf.String()
		grp, ok := groupsByKey[key]
		if !ok {
			grp = &Group{
				Key:      append([]engine.Value(nil), keyVals...),
				Aggs:     make([]agg.Func, len(protos)),
				FirstRow: r,
			}
			for i, p := range protos {
				grp.Aggs[i] = p.Clone()
			}
			groupsByKey[key] = grp
			groups = append(groups, grp)
		}
		grp.Lineage = append(grp.Lineage, r)
		for ai := range aggArgs {
			if aggArgs[ai] == nil { // count(*)
				grp.Aggs[ai].Add(engine.NewInt(1))
				continue
			}
			v, err := aggArgs[ai].Eval(row)
			if err != nil {
				return nil, err
			}
			grp.Aggs[ai].Add(v)
		}
	}

	res := &Result{
		Stmt: stmt, Source: src, Groups: groups,
		aggArgs: aggArgs, aggItems: aggItems,
		Plan: PlanInfo{Fallback: fallback},
	}
	if err := res.materialize(); err != nil {
		return nil, err
	}
	return res, nil
}

// checkPlainItemsGrouped verifies every non-aggregate select item
// appears in GROUP BY (textually). This catches the classic
// "column must appear in the GROUP BY clause" error early.
func checkPlainItemsGrouped(stmt *sqlparse.SelectStmt) error {
	inGroup := make(map[string]bool, len(stmt.GroupBy))
	for _, g := range stmt.GroupBy {
		inGroup[strings.ToLower(g.String())] = true
	}
	for i := range stmt.Items {
		item := &stmt.Items[i]
		if item.IsAgg() {
			continue
		}
		if !inGroup[strings.ToLower(item.Expr.String())] {
			return fmt.Errorf("exec: select item %q must appear in GROUP BY", item.Expr)
		}
	}
	return nil
}

// runProjection handles aggregate-free statements: each output row's
// lineage is exactly its one source row. The WHERE filter goes through
// the same compiled clause-mask path as the grouped pipeline (with the
// same per-row fallback), so projections over predicate-shaped filters
// never interpret the WHERE tree per row.
func runProjection(ctx context.Context, src *engine.Table, stmt *sqlparse.SelectStmt, opts Options) (*Result, error) {
	filter, lowered, err := buildFilter(ctx, src, stmt.Where, opts.NoFilterLowering || opts.ForceScalar, 0)
	if err != nil {
		return nil, err
	}
	res := &Result{Stmt: stmt, Source: src, Plan: PlanInfo{WhereLowered: lowered}}
	if filter == nil {
		for r := 0; r < src.NumRows(); r++ {
			if r%ctxCheckRows == 0 {
				if err := ctx.Err(); err != nil {
					return nil, ctxErr(err)
				}
			}
			res.Groups = append(res.Groups, &Group{Lineage: []int{r}, FirstRow: r})
		}
		return res, res.materialize()
	}
	filter.ForEach(func(r int) {
		res.Groups = append(res.Groups, &Group{Lineage: []int{r}, FirstRow: r})
	})
	return res, res.materialize()
}

// materialize builds the result table from groups and applies HAVING,
// ORDER BY and LIMIT (keeping Groups parallel to rows throughout).
func (r *Result) materialize() error {
	r.allGroups = r.Groups
	stmt := r.Stmt
	labels := make([]string, len(stmt.Items))
	for i := range stmt.Items {
		labels[i] = stmt.Items[i].Label()
	}

	// Evaluate all output rows first, then infer column types.
	rows := make([][]engine.Value, len(r.Groups))
	srcRow := make([]engine.Value, r.Source.NumCols())
	rr := r.Source.NewRowReader()
	defer rr.Close()
	for gi, grp := range r.Groups {
		out := make([]engine.Value, len(stmt.Items))
		aggOrd := 0
		var loaded bool
		for i := range stmt.Items {
			item := &stmt.Items[i]
			if item.IsAgg() {
				out[i] = grp.Aggs[aggOrd].Result()
				aggOrd++
				continue
			}
			if !loaded {
				rr.RowInto(grp.FirstRow, srcRow)
				loaded = true
			}
			v, err := item.Expr.Eval(srcRow)
			if err != nil {
				return err
			}
			out[i] = v
		}
		rows[gi] = out
	}

	schema := make(engine.Schema, len(stmt.Items))
	for c := range stmt.Items {
		t := engine.TFloat
		for _, row := range rows {
			if !row[c].IsNull() {
				t = row[c].T
				break
			}
		}
		schema[c] = engine.Column{Name: labels[c], Type: t}
	}
	// Guard against duplicate labels (e.g. two identical aggregates).
	seen := map[string]int{}
	for c := range schema {
		lower := strings.ToLower(schema[c].Name)
		if n := seen[lower]; n > 0 {
			schema[c].Name = fmt.Sprintf("%s_%d", schema[c].Name, n)
		}
		seen[lower]++
	}

	// HAVING over output rows.
	if stmt.Having != nil {
		if err := stmt.Having.Resolve(schema); err != nil {
			return fmt.Errorf("exec: HAVING references output columns (%s): %w", schema, err)
		}
		var keptRows [][]engine.Value
		var keptGroups []*Group
		for i, row := range rows {
			ok, err := expr.EvalBool(stmt.Having, row)
			if err != nil {
				return err
			}
			if ok {
				keptRows = append(keptRows, row)
				keptGroups = append(keptGroups, r.Groups[i])
			}
		}
		rows, r.Groups = keptRows, keptGroups
	}

	// ORDER BY over output rows.
	if len(stmt.OrderBy) > 0 {
		for i := range stmt.OrderBy {
			if err := stmt.OrderBy[i].Expr.Resolve(schema); err != nil {
				return fmt.Errorf("exec: ORDER BY references output columns (%s): %w", schema, err)
			}
		}
		idx := make([]int, len(rows))
		for i := range idx {
			idx[i] = i
		}
		keys := make([][]engine.Value, len(rows))
		for i, row := range rows {
			ks := make([]engine.Value, len(stmt.OrderBy))
			for k := range stmt.OrderBy {
				v, err := stmt.OrderBy[k].Expr.Eval(row)
				if err != nil {
					return err
				}
				ks[k] = v
			}
			keys[i] = ks
		}
		sort.SliceStable(idx, func(a, b int) bool {
			for k := range stmt.OrderBy {
				c, err := engine.Compare(keys[idx[a]][k], keys[idx[b]][k])
				if err != nil {
					continue
				}
				if c != 0 {
					if stmt.OrderBy[k].Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		newRows := make([][]engine.Value, len(rows))
		newGroups := make([]*Group, len(rows))
		for i, j := range idx {
			newRows[i] = rows[j]
			newGroups[i] = r.Groups[j]
		}
		rows, r.Groups = newRows, newGroups
	}

	if stmt.Limit >= 0 && stmt.Limit < len(rows) {
		rows = rows[:stmt.Limit]
		r.Groups = r.Groups[:stmt.Limit]
	}

	out, err := engine.NewTable("result", schema)
	if err != nil {
		return err
	}
	out.Grow(len(rows))
	for _, row := range rows {
		if _, err := out.AppendRow(row); err != nil {
			return err
		}
	}
	r.Table = out
	return nil
}

// ---------------------------------------------------------------------
// Provenance accessors

// NumRows returns the number of result rows.
func (r *Result) NumRows() int { return r.Table.NumRows() }

// AggOrdinals returns the select-item indexes of aggregates, in order.
func (r *Result) AggOrdinals() []int { return r.aggItems }

// AggOrdinalOf maps a select-item index to the aggregate ordinal, or -1.
func (r *Result) AggOrdinalOf(itemIdx int) int {
	for ord, i := range r.aggItems {
		if i == itemIdx {
			return ord
		}
	}
	return -1
}

// AggState returns the live aggregate state for output row rowIdx and
// aggregate ordinal ord. The second result is false when the state does
// not support removal (all shipped aggregates do).
func (r *Result) AggState(rowIdx, ord int) (agg.Removable, bool) {
	rm, ok := r.Groups[rowIdx].Aggs[ord].(agg.Removable)
	return rm, ok
}

// AggFloat returns the aggregate value at (output row, aggregate
// ordinal) as float64; NaN-free NULLs come back as (0, false).
func (r *Result) AggFloat(rowIdx, ord int) (float64, bool) {
	v := r.Groups[rowIdx].Aggs[ord].Result()
	if v.IsNull() {
		return 0, false
	}
	return v.Float(), true
}

// AggArgValue evaluates the ord'th aggregate's argument on source row
// src (count(*) yields 1). This is the value leave-one-out analysis
// feeds to ResultWithout.
func (r *Result) AggArgValue(ord, src int) (engine.Value, error) {
	if r.aggArgs[ord] == nil {
		return engine.NewInt(1), nil
	}
	return r.aggArgs[ord].Eval(r.Source.Row(src))
}

// Lineage returns the union of the lineage of the given output rows,
// sorted ascending and deduplicated. This is F in the paper: the
// fine-grained provenance of the suspect groups S. The union runs
// through a bitmap, so dedup and sort order fall out of bit position.
func (r *Result) Lineage(rowIdxs []int) []int {
	b := r.LineageBits(rowIdxs)
	return b.AppendRows(make([]int, 0, b.Count()))
}

// GroupOf returns, for each listed output row, a map from source row id
// to that output row index. Rows in multiple groups keep the first.
func (r *Result) GroupOf(rowIdxs []int) map[int]int {
	m := make(map[int]int)
	for _, ri := range rowIdxs {
		if ri < 0 || ri >= len(r.Groups) {
			continue
		}
		for _, src := range r.Groups[ri].Lineage {
			if _, ok := m[src]; !ok {
				m[src] = ri
			}
		}
	}
	return m
}

// AllRows returns 0..NumRows-1, convenient for "every group is suspect".
func (r *Result) AllRows() []int {
	out := make([]int, r.NumRows())
	for i := range out {
		out[i] = i
	}
	return out
}

// SelectRows returns the output row indexes for which keep returns true,
// where keep receives the output row values.
func (r *Result) SelectRows(keep func(row []engine.Value) bool) []int {
	var out []int
	for i := 0; i < r.Table.NumRows(); i++ {
		if keep(r.Table.Row(i)) {
			out = append(out, i)
		}
	}
	return out
}
