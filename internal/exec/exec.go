// Package exec plans and executes the single-block aggregate queries
// produced by internal/sqlparse against internal/engine tables, and —
// crucially for DBWipes — captures fine-grained provenance while doing
// so: every output group records the exact set of source row ids
// (its *lineage*) that flowed into its aggregates.
//
// The original DBWipes runs on PostgreSQL and reconstructs lineage with
// rewritten queries; here lineage falls out of the hash-aggregation loop
// for free. The Result type is the hand-off point to the ranked
// provenance pipeline: it exposes lineage sets, live (removable)
// aggregate states, and the means to re-evaluate an aggregate argument
// on a source row.
package exec

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/agg"
	"repro/internal/bitset"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/sqlparse"
)

// ctxCheckRows is the cancellation-check granularity of every per-row
// scan loop: ctx.Err() is polled once per this many rows (an atomic
// load on cancellable contexts, a nil return on Background), so the
// checks cost nothing measurable on the uncontended hot path while a
// cancelled giant scan still stops within tens of microseconds.
const ctxCheckRows = 4096

// ctxErr wraps a cancellation surfaced mid-scan so callers can still
// errors.Is it against context.Canceled / context.DeadlineExceeded.
func ctxErr(err error) error { return fmt.Errorf("exec: cancelled: %w", err) }

// Group is one output group: its key values, the aggregate states
// accumulated over its input, and the lineage (source row ids).
type Group struct {
	// Key holds the evaluated GROUP BY expressions for this group (empty
	// for a global aggregate).
	Key []engine.Value
	// Lineage lists the source row ids that passed WHERE and fell into
	// this group, in scan order.
	Lineage []int
	// Aggs holds one live aggregate state per aggregate select item.
	Aggs []agg.Func
	// FirstRow is the first source row id of the group, used to evaluate
	// non-aggregate select items.
	FirstRow int
}

// Result is an executed query: an ordinary result table plus the
// provenance sidecar.
type Result struct {
	// Stmt is the executed statement.
	Stmt *sqlparse.SelectStmt
	// Source is the scanned table.
	Source *engine.Table
	// Table is the materialized result (post HAVING/ORDER BY/LIMIT).
	Table *engine.Table
	// Groups is parallel to Table's rows.
	Groups []*Group
	// aggArgs[i] is the resolved argument expression of the i'th
	// aggregate select item (nil for count(*)).
	aggArgs []expr.Expr
	// aggItems maps aggregate ordinal -> select item index.
	aggItems []int
	// Plan records which execution strategy produced this result.
	Plan PlanInfo
	// allGroups retains every group in scan order, before HAVING/ORDER
	// BY/LIMIT pruned or reordered Groups — the set Advance folds
	// appended rows into.
	allGroups []*Group
	// ordIdx is the ORDER BY output order as allGroups positions, post
	// HAVING but pre LIMIT (nil when the statement has no ORDER BY).
	// Advance merges changed and new groups into this carried order
	// instead of re-sorting everything.
	ordIdx []int
	// ordCarrySafe is true when every ORDER BY key this materialization
	// sorted was totally ordered under engine.Compare (no NaN, uniform
	// comparable types per key column — NULLs are fine), which makes
	// ordIdx exactly the (keys, scan position) order a later Advance can
	// merge into. Non-total keys make sort.SliceStable's comparator
	// intransitive, so its output is not reproducible by merging and the
	// next Advance must re-sort.
	ordCarrySafe bool
	// argMu guards argViews (the per-ordinal flat argument columns the
	// columnar scoring fast path decodes on first use, see columnar.go),
	// lineBits (the per-group lineage bitset cache Advance carries
	// across batches), and the advanced flag.
	argMu    sync.Mutex
	argViews map[int]*ArgView
	lineBits map[*Group]*bitset.Bitset
	// advanced marks a result that has already been advanced once;
	// Advance extends lineage slices and argument views in place past
	// their published lengths, so advancing must be linear — a second
	// Advance from the same result would clobber the first's suffix.
	advanced bool
}

// Run executes stmt against db, capturing provenance.
func Run(db *engine.DB, stmt *sqlparse.SelectStmt) (*Result, error) {
	return RunCtx(context.Background(), db, stmt)
}

// RunCtx is Run under a cancellable context: scan loops poll ctx at
// ctxCheckRows granularity and return a context error (wrapping
// context.Canceled / DeadlineExceeded) without publishing anything.
func RunCtx(ctx context.Context, db *engine.DB, stmt *sqlparse.SelectStmt) (*Result, error) {
	src, err := db.Table(stmt.From)
	if err != nil {
		return nil, err
	}
	return RunOnWithCtx(ctx, src, stmt, Options{})
}

// RunSQL parses and executes sql against db.
func RunSQL(db *engine.DB, sql string) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return Run(db, stmt)
}

// RunOn executes stmt against an explicit source table (the FROM name
// is ignored). This is what clean-and-requery uses to run the original
// statement against a filtered view. Grouped statements take the
// vectorized shard-parallel pipeline (vector.go) when they can, and the
// boxed reference scan otherwise; Result.Plan records the choice.
func RunOn(src *engine.Table, stmt *sqlparse.SelectStmt) (*Result, error) {
	return RunOnWithCtx(context.Background(), src, stmt, Options{})
}

// RunOnCtx is RunOn under a cancellable context (see RunCtx).
func RunOnCtx(ctx context.Context, src *engine.Table, stmt *sqlparse.SelectStmt) (*Result, error) {
	return RunOnWithCtx(ctx, src, stmt, Options{})
}

// RunOnWith is RunOn with explicit strategy options (shard count,
// forced scalar execution). Tests and benchmarks use it to pin paths;
// normal callers want RunOn.
func RunOnWith(src *engine.Table, stmt *sqlparse.SelectStmt, opts Options) (*Result, error) {
	return RunOnWithCtx(context.Background(), src, stmt, opts)
}

// RunOnWithCtx is RunOnWith under a cancellable context (see RunCtx).
// A chunk-load failure on an out-of-core table (corrupt or vanished
// segment file) surfaces here as an error, never as a panic.
func RunOnWithCtx(ctx context.Context, src *engine.Table, stmt *sqlparse.SelectStmt, opts Options) (res *Result, err error) {
	defer engine.CatchSegmentLoad(&err)
	if len(stmt.Items) == 0 {
		return nil, fmt.Errorf("exec: empty select list")
	}
	schema := src.Schema()

	// Resolve every expression against the source schema.
	if stmt.Where != nil {
		if err := stmt.Where.Resolve(schema); err != nil {
			return nil, err
		}
	}
	for _, g := range stmt.GroupBy {
		if err := g.Resolve(schema); err != nil {
			return nil, err
		}
	}
	var aggArgs []expr.Expr
	var aggItems []int
	for i := range stmt.Items {
		item := &stmt.Items[i]
		if item.IsAgg() {
			if item.Agg.Arg != nil {
				if err := item.Agg.Arg.Resolve(schema); err != nil {
					return nil, err
				}
			}
			aggArgs = append(aggArgs, item.Agg.Arg)
			aggItems = append(aggItems, i)
		} else {
			if err := item.Expr.Resolve(schema); err != nil {
				return nil, err
			}
		}
	}
	grouped := stmt.HasAggregates() || len(stmt.GroupBy) > 0
	if !grouped {
		return runProjection(ctx, src, stmt, opts)
	}
	if err := checkPlainItemsGrouped(stmt); err != nil {
		return nil, err
	}

	// Prototype aggregates, cloned per group.
	protos := make([]agg.Func, len(aggItems))
	for ai, i := range aggItems {
		f, err := agg.New(stmt.Items[i].Agg.Name)
		if err != nil {
			return nil, err
		}
		if stmt.Items[i].Agg.Distinct {
			f = agg.NewDistinct(f)
		}
		protos[ai] = f
	}

	if !opts.ForceScalar {
		res, fallback, err := runVector(ctx, src, stmt, aggArgs, aggItems, protos, opts)
		if err != nil {
			return nil, err
		}
		if res != nil {
			return res, nil
		}
		return runScalarGrouped(ctx, src, stmt, aggArgs, aggItems, protos, fallback)
	}
	return runScalarGrouped(ctx, src, stmt, aggArgs, aggItems, protos, "forced scalar")
}

// runScalarGrouped is the boxed reference scan: row-at-a-time WHERE
// evaluation, string group keys, boxed aggregate accumulation. It is
// the oracle the vectorized pipeline is property-tested against, and
// the fallback for statements the pipeline cannot express (recorded in
// Plan.Fallback).
func runScalarGrouped(ctx context.Context, src *engine.Table, stmt *sqlparse.SelectStmt, aggArgs []expr.Expr, aggItems []int, protos []agg.Func, fallback string) (*Result, error) {
	groupsByKey := make(map[string]*Group)
	var groups []*Group
	row := make([]engine.Value, src.NumCols())
	var keyBuf strings.Builder
	keyVals := make([]engine.Value, len(stmt.GroupBy))
	rr := src.NewRowReader()
	defer rr.Close()

	for r := 0; r < src.NumRows(); r++ {
		if r%ctxCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return nil, ctxErr(err)
			}
		}
		rr.RowInto(r, row)
		if stmt.Where != nil {
			ok, err := expr.EvalBool(stmt.Where, row)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		keyBuf.Reset()
		for k, g := range stmt.GroupBy {
			v, err := g.Eval(row)
			if err != nil {
				return nil, err
			}
			keyVals[k] = v
			keyBuf.WriteString(v.Key())
			keyBuf.WriteByte('\x1f')
		}
		key := keyBuf.String()
		grp, ok := groupsByKey[key]
		if !ok {
			grp = &Group{
				Key:      append([]engine.Value(nil), keyVals...),
				Aggs:     make([]agg.Func, len(protos)),
				FirstRow: r,
			}
			for i, p := range protos {
				grp.Aggs[i] = p.Clone()
			}
			groupsByKey[key] = grp
			groups = append(groups, grp)
		}
		grp.Lineage = append(grp.Lineage, r)
		for ai := range aggArgs {
			if aggArgs[ai] == nil { // count(*)
				grp.Aggs[ai].Add(engine.NewInt(1))
				continue
			}
			v, err := aggArgs[ai].Eval(row)
			if err != nil {
				return nil, err
			}
			grp.Aggs[ai].Add(v)
		}
	}

	res := &Result{
		Stmt: stmt, Source: src, Groups: groups,
		aggArgs: aggArgs, aggItems: aggItems,
		Plan: PlanInfo{Fallback: fallback},
	}
	if err := res.materialize(); err != nil {
		return nil, err
	}
	return res, nil
}

// checkPlainItemsGrouped verifies every non-aggregate select item
// appears in GROUP BY (textually). This catches the classic
// "column must appear in the GROUP BY clause" error early.
func checkPlainItemsGrouped(stmt *sqlparse.SelectStmt) error {
	inGroup := make(map[string]bool, len(stmt.GroupBy))
	for _, g := range stmt.GroupBy {
		inGroup[strings.ToLower(g.String())] = true
	}
	for i := range stmt.Items {
		item := &stmt.Items[i]
		if item.IsAgg() {
			continue
		}
		if !inGroup[strings.ToLower(item.Expr.String())] {
			return fmt.Errorf("exec: select item %q must appear in GROUP BY", item.Expr)
		}
	}
	return nil
}

// runProjection handles aggregate-free statements: each output row's
// lineage is exactly its one source row. The WHERE filter goes through
// the same compiled clause-mask path as the grouped pipeline (with the
// same per-row fallback), so projections over predicate-shaped filters
// never interpret the WHERE tree per row.
func runProjection(ctx context.Context, src *engine.Table, stmt *sqlparse.SelectStmt, opts Options) (*Result, error) {
	filter, lowered, fstats, err := buildFilter(ctx, src, stmt.Where, opts.NoFilterLowering || opts.ForceScalar, opts.NoGreedyOrdering || opts.ForceScalar, 0)
	if err != nil {
		return nil, err
	}
	res := &Result{Stmt: stmt, Source: src, Plan: PlanInfo{
		WhereLowered:         lowered,
		FilterConjuncts:      fstats.conjuncts,
		FilterOrder:          fstats.order,
		FilterShortCircuited: fstats.shortCircuited,
		ResidualConjuncts:    fstats.residualConjuncts,
		ResidualRows:         fstats.residualRows,
		FilterFallback:       fstats.fallback,
	}}
	if filter == nil {
		for r := 0; r < src.NumRows(); r++ {
			if r%ctxCheckRows == 0 {
				if err := ctx.Err(); err != nil {
					return nil, ctxErr(err)
				}
			}
			res.Groups = append(res.Groups, &Group{Lineage: []int{r}, FirstRow: r})
		}
		return res, res.materialize()
	}
	filter.ForEach(func(r int) {
		res.Groups = append(res.Groups, &Group{Lineage: []int{r}, FirstRow: r})
	})
	return res, res.materialize()
}

// materialize builds the result table from groups and applies HAVING,
// ORDER BY and LIMIT (keeping Groups parallel to rows throughout).
func (r *Result) materialize() error {
	return r.materializeCarry(nil, nil, false)
}

// materializeCarry is materialize with an optional incremental ORDER
// BY: when prev is the result r advances from (oldLens its per-group
// lineage lengths at seed time), kept groups whose lineage did not grow
// keep their relative order from prev.ordIdx — their output rows, and
// therefore their sort keys and HAVING verdicts, are value-identical —
// so only changed and suffix-born groups are sorted, then merged into
// the carried order: O(changed·log changed + groups) instead of
// O(groups·log groups) of boxed comparisons per advance. The carry
// runs only when both materializations' keys are totally ordered (see
// Result.ordCarrySafe); otherwise, or when noCarry is set, the full
// stable sort runs and produces bit-identical output by construction.
func (r *Result) materializeCarry(prev *Result, oldLens []int, noCarry bool) error {
	r.allGroups = r.Groups
	stmt := r.Stmt
	labels := make([]string, len(stmt.Items))
	for i := range stmt.Items {
		labels[i] = stmt.Items[i].Label()
	}

	// Evaluate all output rows first, then infer column types.
	rows := make([][]engine.Value, len(r.Groups))
	srcRow := make([]engine.Value, r.Source.NumCols())
	rr := r.Source.NewRowReader()
	defer rr.Close()
	for gi, grp := range r.Groups {
		out := make([]engine.Value, len(stmt.Items))
		aggOrd := 0
		var loaded bool
		for i := range stmt.Items {
			item := &stmt.Items[i]
			if item.IsAgg() {
				out[i] = grp.Aggs[aggOrd].Result()
				aggOrd++
				continue
			}
			if !loaded {
				rr.RowInto(grp.FirstRow, srcRow)
				loaded = true
			}
			v, err := item.Expr.Eval(srcRow)
			if err != nil {
				return err
			}
			out[i] = v
		}
		rows[gi] = out
	}

	schema := make(engine.Schema, len(stmt.Items))
	for c := range stmt.Items {
		t := engine.TFloat
		for _, row := range rows {
			if !row[c].IsNull() {
				t = row[c].T
				break
			}
		}
		schema[c] = engine.Column{Name: labels[c], Type: t}
	}
	// Guard against duplicate labels (e.g. two identical aggregates).
	seen := map[string]int{}
	for c := range schema {
		lower := strings.ToLower(schema[c].Name)
		if n := seen[lower]; n > 0 {
			schema[c].Name = fmt.Sprintf("%s_%d", schema[c].Name, n)
		}
		seen[lower]++
	}

	// pos[i] is the allGroups (scan-order) position of rows[i]; HAVING
	// filters it in step so ORDER BY can tie-break and carry on it.
	pos := make([]int, len(rows))
	for i := range pos {
		pos[i] = i
	}

	// HAVING over output rows.
	if stmt.Having != nil {
		if err := stmt.Having.Resolve(schema); err != nil {
			return fmt.Errorf("exec: HAVING references output columns (%s): %w", schema, err)
		}
		var keptRows [][]engine.Value
		var keptGroups []*Group
		var keptPos []int
		for i, row := range rows {
			ok, err := expr.EvalBool(stmt.Having, row)
			if err != nil {
				return err
			}
			if ok {
				keptRows = append(keptRows, row)
				keptGroups = append(keptGroups, r.Groups[i])
				keptPos = append(keptPos, pos[i])
			}
		}
		rows, r.Groups, pos = keptRows, keptGroups, keptPos
	}

	// ORDER BY over output rows.
	if len(stmt.OrderBy) > 0 {
		for i := range stmt.OrderBy {
			if err := stmt.OrderBy[i].Expr.Resolve(schema); err != nil {
				return fmt.Errorf("exec: ORDER BY references output columns (%s): %w", schema, err)
			}
		}
		keys := make([][]engine.Value, len(rows))
		for i, row := range rows {
			ks := make([]engine.Value, len(stmt.OrderBy))
			for k := range stmt.OrderBy {
				v, err := stmt.OrderBy[k].Expr.Eval(row)
				if err != nil {
					return err
				}
				ks[k] = v
			}
			keys[i] = ks
		}
		r.ordCarrySafe = keysTotallyOrdered(keys)
		var idx []int
		carried := false
		if !noCarry && prev != nil && prev.ordCarrySafe && r.ordCarrySafe {
			idx, carried = r.carrySortOrder(prev, oldLens, keys, pos)
		}
		if !carried {
			idx = make([]int, len(rows))
			for i := range idx {
				idx[i] = i
			}
			sort.SliceStable(idx, func(a, b int) bool {
				for k := range stmt.OrderBy {
					c, err := engine.Compare(keys[idx[a]][k], keys[idx[b]][k])
					if err != nil {
						continue
					}
					if c != 0 {
						if stmt.OrderBy[k].Desc {
							return c > 0
						}
						return c < 0
					}
				}
				return false
			})
		}
		r.Plan.SortCarried = carried
		newRows := make([][]engine.Value, len(rows))
		newGroups := make([]*Group, len(rows))
		r.ordIdx = make([]int, len(rows))
		for i, j := range idx {
			newRows[i] = rows[j]
			newGroups[i] = r.Groups[j]
			r.ordIdx[i] = pos[j]
		}
		rows, r.Groups = newRows, newGroups
	}

	if stmt.Limit >= 0 && stmt.Limit < len(rows) {
		rows = rows[:stmt.Limit]
		r.Groups = r.Groups[:stmt.Limit]
	}

	out, err := engine.NewTable("result", schema)
	if err != nil {
		return err
	}
	out.Grow(len(rows))
	for _, row := range rows {
		if _, err := out.AppendRow(row); err != nil {
			return err
		}
	}
	r.Table = out
	return nil
}

// keysTotallyOrdered reports whether engine.Compare is a strict total
// order over every ORDER BY key column: per column, all non-NULL values
// are numeric with no NaN, or all are strings. NULLs are fine (they
// order below everything); a NaN ties with every number and a
// numeric/string pair makes Compare error, either of which turns the
// sort comparator intransitive — stable-sort output then depends on
// comparison order and cannot be reproduced by an incremental merge.
func keysTotallyOrdered(keys [][]engine.Value) bool {
	if len(keys) == 0 {
		return true
	}
	const (
		classNone = iota
		classNum
		classStr
	)
	for k := range keys[0] {
		class := classNone
		for _, ks := range keys {
			v := ks[k]
			switch {
			case v.IsNull():
			case v.T == engine.TFloat && math.IsNaN(v.F):
				return false
			case v.T.IsNumeric():
				if class == classStr {
					return false
				}
				class = classNum
			case v.T == engine.TString:
				if class == classNum {
					return false
				}
				class = classStr
			default:
				return false
			}
		}
	}
	return true
}

// carrySortOrder reproduces the full stable sort's output by merging:
// kept groups whose lineage did not grow since prev keep their relative
// order from prev.ordIdx (keys unchanged, and prev's materialization
// verified that order is exactly the (keys, scan position) order),
// changed and suffix-born kept groups are sorted alone, and the two
// sorted lists merge under the same comparator with scan position as
// the final tie-break — a strict total order, so the merge is exact.
// ok is false when prev's carried order does not account for every
// unchanged kept group; the caller falls back to the full sort.
func (r *Result) carrySortOrder(prev *Result, oldLens []int, keys [][]engine.Value, pos []int) ([]int, bool) {
	stmt := r.Stmt
	// keptAt maps an allGroups position to its index in rows/keys/pos.
	keptAt := make([]int, len(r.allGroups))
	for i := range keptAt {
		keptAt[i] = -1
	}
	for i, p := range pos {
		keptAt[p] = i
	}
	changed := func(p int) bool {
		return p >= len(oldLens) || len(r.allGroups[p].Lineage) != oldLens[p]
	}
	var carriedIdx, freshIdx []int
	for _, p := range prev.ordIdx {
		if p < len(keptAt) && keptAt[p] >= 0 && !changed(p) {
			carriedIdx = append(carriedIdx, keptAt[p])
		}
	}
	for i, p := range pos {
		if changed(p) {
			freshIdx = append(freshIdx, i)
		}
	}
	if len(carriedIdx)+len(freshIdx) != len(pos) {
		return nil, false
	}
	less := func(a, b int) bool {
		for k := range stmt.OrderBy {
			c, err := engine.Compare(keys[a][k], keys[b][k])
			if err != nil || c == 0 {
				continue
			}
			if stmt.OrderBy[k].Desc {
				return c > 0
			}
			return c < 0
		}
		return pos[a] < pos[b]
	}
	sort.Slice(freshIdx, func(a, b int) bool { return less(freshIdx[a], freshIdx[b]) })
	out := make([]int, 0, len(pos))
	ci, fi := 0, 0
	for ci < len(carriedIdx) && fi < len(freshIdx) {
		if less(freshIdx[fi], carriedIdx[ci]) {
			out = append(out, freshIdx[fi])
			fi++
		} else {
			out = append(out, carriedIdx[ci])
			ci++
		}
	}
	out = append(out, carriedIdx[ci:]...)
	out = append(out, freshIdx[fi:]...)
	return out, true
}

// ---------------------------------------------------------------------
// Provenance accessors

// NumRows returns the number of result rows.
func (r *Result) NumRows() int { return r.Table.NumRows() }

// AggOrdinals returns the select-item indexes of aggregates, in order.
func (r *Result) AggOrdinals() []int { return r.aggItems }

// AggOrdinalOf maps a select-item index to the aggregate ordinal, or -1.
func (r *Result) AggOrdinalOf(itemIdx int) int {
	for ord, i := range r.aggItems {
		if i == itemIdx {
			return ord
		}
	}
	return -1
}

// AggState returns the live aggregate state for output row rowIdx and
// aggregate ordinal ord. The second result is false when the state does
// not support removal (all shipped aggregates do).
func (r *Result) AggState(rowIdx, ord int) (agg.Removable, bool) {
	rm, ok := r.Groups[rowIdx].Aggs[ord].(agg.Removable)
	return rm, ok
}

// AggFloat returns the aggregate value at (output row, aggregate
// ordinal) as float64; NaN-free NULLs come back as (0, false).
func (r *Result) AggFloat(rowIdx, ord int) (float64, bool) {
	v := r.Groups[rowIdx].Aggs[ord].Result()
	if v.IsNull() {
		return 0, false
	}
	return v.Float(), true
}

// AggArgValue evaluates the ord'th aggregate's argument on source row
// src (count(*) yields 1). This is the value leave-one-out analysis
// feeds to ResultWithout.
func (r *Result) AggArgValue(ord, src int) (engine.Value, error) {
	if r.aggArgs[ord] == nil {
		return engine.NewInt(1), nil
	}
	return r.aggArgs[ord].Eval(r.Source.Row(src))
}

// Lineage returns the union of the lineage of the given output rows,
// sorted ascending and deduplicated. This is F in the paper: the
// fine-grained provenance of the suspect groups S. The union runs
// through a bitmap, so dedup and sort order fall out of bit position.
func (r *Result) Lineage(rowIdxs []int) []int {
	b := r.LineageBits(rowIdxs)
	return b.AppendRows(make([]int, 0, b.Count()))
}

// GroupOf returns, for each listed output row, a map from source row id
// to that output row index. Rows in multiple groups keep the first.
func (r *Result) GroupOf(rowIdxs []int) map[int]int {
	m := make(map[int]int)
	for _, ri := range rowIdxs {
		if ri < 0 || ri >= len(r.Groups) {
			continue
		}
		for _, src := range r.Groups[ri].Lineage {
			if _, ok := m[src]; !ok {
				m[src] = ri
			}
		}
	}
	return m
}

// AllRows returns 0..NumRows-1, convenient for "every group is suspect".
func (r *Result) AllRows() []int {
	out := make([]int, r.NumRows())
	for i := range out {
		out[i] = i
	}
	return out
}

// SelectRows returns the output row indexes for which keep returns true,
// where keep receives the output row values.
func (r *Result) SelectRows(keep func(row []engine.Value) bool) []int {
	var out []int
	for i := 0; i < r.Table.NumRows(); i++ {
		if keep(r.Table.Row(i)) {
			out = append(out, i)
		}
	}
	return out
}
