package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"math"

	"repro/internal/engine"
	"repro/internal/store"
)

// End-to-end out-of-core query tests: the same on-disk table opened
// fully resident is the oracle for the lazily-attached, buffer-pooled
// reopen. A deliberately tiny pool forces constant eviction, so every
// statement exercises fault → pin → release across shard boundaries,
// and the parity requirement is the same bit-exact one the vectorized
// pipeline already owes the boxed scan.

func oocOpts(fs store.FS, cacheBytes int64) store.Options {
	return store.Options{
		SyncEvery:        1,
		MaxResidentBytes: cacheBytes,
		Logf:             func(string, ...any) {},
		FS:               fs,
	}
}

// oocBatch draws rows with the parityTable distribution (NULLs, NaNs,
// signed zeros, exactly-representable floats) as boxed batches for
// store.Append.
func oocBatch(rng *rand.Rand, nrows int) [][]engine.Value {
	strs := []string{"a", "b", "c", "", "xy"}
	rows := make([][]engine.Value, nrows)
	for r := range rows {
		row := make([]engine.Value, 5)
		row[0] = engine.NewInt(int64(rng.Intn(11) - 5))
		if rng.Float64() < 0.15 {
			row[0] = engine.Null
		}
		row[1] = engine.NewInt(int64(rng.Intn(4)))
		switch {
		case rng.Float64() < 0.12:
			row[2] = engine.Null
		case rng.Float64() < 0.1:
			row[2] = engine.NewFloat(math.NaN())
		case rng.Float64() < 0.08:
			row[2] = engine.NewFloat(math.Copysign(0, -1))
		default:
			row[2] = engine.NewFloat(float64(rng.Intn(64)-32) * 0.25)
		}
		if rng.Float64() < 0.15 {
			row[3] = engine.Null
		} else {
			row[3] = engine.NewString(strs[rng.Intn(len(strs))])
		}
		if rng.Float64() < 0.1 {
			row[4] = engine.Null
		} else {
			row[4] = engine.NewTimeUnix(int64(rng.Intn(7200)))
		}
		rows[r] = row
	}
	return rows
}

// buildOOCTable writes nbatch random batches to table "p" on fs and
// closes the store, leaving sealed v2 segment files.
func buildOOCTable(t *testing.T, fs store.FS, rng *rand.Rand, nbatch int) {
	t.Helper()
	st, err := store.Open("d", oocOpts(fs, 0))
	if err != nil {
		t.Fatal(err)
	}
	schema := engine.Schema{
		{Name: "i", Type: engine.TInt},
		{Name: "j", Type: engine.TInt},
		{Name: "f", Type: engine.TFloat},
		{Name: "s", Type: engine.TString},
		{Name: "t", Type: engine.TTime},
	}
	if err := st.CreateTable("p", schema, engine.MinSegmentBits); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nbatch; i++ {
		if _, err := st.Append("p", oocBatch(rng, 40+rng.Intn(60))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// reopen opens the store over fs with the given pool size and returns
// the recovered table. cacheBytes == 0 is the fully resident oracle.
func reopen(t *testing.T, fs store.FS, cacheBytes int64) (*store.DB, *engine.Table) {
	t.Helper()
	st, err := store.Open("d", oocOpts(fs, cacheBytes))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := st.Eng().Table("p")
	if err != nil {
		t.Fatal(err)
	}
	return st, tbl
}

func TestOutOfCoreQueryParity(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fs := store.NewMemFS()
		buildOOCTable(t, fs, rng, 6+rng.Intn(6))

		oracleSt, oracle := reopen(t, fs, 0)
		if err := oracleSt.Close(); err != nil {
			t.Fatal(err)
		}
		// 4 KiB: a fraction of one decoded segment column set, so every
		// scan faults and evicts continuously.
		lazySt, lazy := reopen(t, fs, 4096)

		for iter := 0; iter < 40; iter++ {
			stmt, _ := randStmt(rng)
			sql := stmt.String()

			ref, refErr := RunOnWith(oracle, stmt, Options{ForceScalar: true})
			lz1, lz1Err := RunOnWith(lazy, stmt, Options{Shards: 1})
			lz4, lz4Err := RunOnWith(lazy, stmt, Options{Shards: 4})
			if (refErr != nil) != (lz1Err != nil) || (refErr != nil) != (lz4Err != nil) {
				t.Fatalf("seed %d iter %d: error disagreement\nsql: %s\nref: %v\nlz1: %v\nlz4: %v",
					seed, iter, sql, refErr, lz1Err, lz4Err)
			}
			if refErr != nil {
				continue
			}
			for label, res := range map[string]*Result{"lazy shards=1": lz1, "lazy shards=4": lz4} {
				tablesEqual(t, fmt.Sprintf("seed %d iter %d %s [%s]", seed, iter, label, sql), ref.Table, res.Table)
				groupsEqual(t, fmt.Sprintf("seed %d iter %d %s [%s]", seed, iter, label, sql), ref, res)
			}
			if n := lazySt.PoolPinned(); n != 0 {
				t.Fatalf("seed %d iter %d: %d chunks still pinned after query [%s]", seed, iter, n, sql)
			}
		}

		stats := lazySt.Stats()
		if stats.Pool == nil {
			t.Fatal("out-of-core store reports no pool stats")
		}
		if stats.Pool.Misses == 0 {
			t.Fatalf("tiny pool served every chunk without a fault: %+v", stats.Pool)
		}
		if err := lazySt.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestOutOfCoreZoneSkip builds a table whose int column is constant per
// segment-sized batch, so zone maps give disjoint [min, max] ranges per
// sealed segment, then checks that a selective WHERE is answered with
// most segments skipped — and still bit-identically to the resident
// oracle.
func TestOutOfCoreZoneSkip(t *testing.T) {
	fs := store.NewMemFS()
	st, err := store.Open("d", oocOpts(fs, 0))
	if err != nil {
		t.Fatal(err)
	}
	schema := engine.Schema{
		{Name: "i", Type: engine.TInt},
		{Name: "f", Type: engine.TFloat},
		{Name: "s", Type: engine.TString},
	}
	if err := st.CreateTable("p", schema, engine.MinSegmentBits); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	strs := []string{"a", "b", "c"}
	const nseg = 12
	segRows := 1 << engine.MinSegmentBits
	for k := 0; k < nseg; k++ {
		rows := make([][]engine.Value, segRows)
		for r := range rows {
			rows[r] = []engine.Value{
				engine.NewInt(int64(k * 1000)),
				engine.NewFloat(float64(rng.Intn(64)) * 0.25),
				engine.NewString(strs[rng.Intn(len(strs))]),
			}
		}
		if _, err := st.Append("p", rows); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	oracleSt, oracle := reopen(t, fs, 0)
	if err := oracleSt.Close(); err != nil {
		t.Fatal(err)
	}
	lazySt, lazy := reopen(t, fs, 1<<20)
	defer lazySt.Close()

	// One segment's worth of matches: every other sealed segment's zone
	// range excludes 5000, so pruning must skip them without faulting.
	stmt := mustParse(t, "SELECT s, sum(f) AS total, count(*) AS n FROM p WHERE i = 5000 GROUP BY s")
	ref, err := RunOnWith(oracle, stmt, Options{ForceScalar: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOnWith(lazy, stmt, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, "zone skip", ref.Table, res.Table)
	groupsEqual(t, "zone skip", ref, res)
	if !res.Plan.Vectorized {
		t.Fatalf("zone-skip statement fell back: %+v", res.Plan)
	}
	// 12 appended segments: the last may stay as an unsealed tail, all
	// earlier ones are sealed, faultable, and (except segment 5) pruned.
	if res.Plan.SegsSkipped < nseg-2 {
		t.Fatalf("expected at least %d skipped segments, got %+v", nseg-2, res.Plan)
	}
	if res.Plan.ChunksFaulted == 0 {
		t.Fatalf("matching segment was never faulted: %+v", res.Plan)
	}
	if got := float64(res.Plan.SegsSkipped) / float64(nseg); got <= 0.5 {
		t.Fatalf("skip rate %.2f not > 0.5: %+v", got, res.Plan)
	}
	if n := lazySt.PoolPinned(); n != 0 {
		t.Fatalf("%d chunks still pinned after query", n)
	}

	// A predicate no segment can satisfy: everything skips, nothing
	// faults.
	none := mustParse(t, "SELECT s, count(*) AS n FROM p WHERE i = 123 GROUP BY s")
	resNone, err := RunOnWith(lazy, none, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resNone.Groups) != 0 {
		t.Fatalf("impossible predicate matched %d groups", len(resNone.Groups))
	}
	if resNone.Plan.ChunksFaulted != 0 {
		t.Fatalf("fully-pruned query still faulted chunks: %+v", resNone.Plan)
	}
	if resNone.Plan.SegsSkipped < nseg-1 {
		t.Fatalf("expected at least %d skipped segments, got %+v", nseg-1, resNone.Plan)
	}
}

// TestOutOfCoreZoneEdgeValues pins zone-map pruning on the float edge
// cases the verdict logic must treat exactly like engine.Compare:
// signed zeros (one value — a segment holding only -0.0 must never be
// skipped by f >= 0), NaN (compares equal to everything, so it matches
// every cmp==0 op and no strict op), all-NaN segments (no finite
// range), and NULLs. Each segment-sized batch holds one edge
// population; a battery of comparison predicates must come back
// bit-identical to the resident boxed oracle, with pruning still
// engaging where it provably can.
func TestOutOfCoreZoneEdgeValues(t *testing.T) {
	fs := store.NewMemFS()
	st, err := store.Open("d", oocOpts(fs, 0))
	if err != nil {
		t.Fatal(err)
	}
	schema := engine.Schema{
		{Name: "g", Type: engine.TInt},
		{Name: "f", Type: engine.TFloat},
	}
	if err := st.CreateTable("p", schema, engine.MinSegmentBits); err != nil {
		t.Fatal(err)
	}
	segRows := 1 << engine.MinSegmentBits
	segVal := func(k, r int) engine.Value {
		switch k {
		case 0:
			return engine.NewFloat(math.Copysign(0, -1)) // only -0.0
		case 1:
			return engine.NewFloat(0) // only +0.0
		case 2:
			return engine.NewFloat(math.NaN()) // all NaN, no finite range
		case 3:
			return engine.NewFloat(100 + float64(r)*0.25) // far from zero
		default: // mixed NULL / NaN / -0.0 / 1.0
			switch r % 4 {
			case 0:
				return engine.Null
			case 1:
				return engine.NewFloat(math.NaN())
			case 2:
				return engine.NewFloat(math.Copysign(0, -1))
			default:
				return engine.NewFloat(1)
			}
		}
	}
	for k := 0; k < 5; k++ {
		rows := make([][]engine.Value, segRows)
		for r := range rows {
			rows[r] = []engine.Value{engine.NewInt(int64(k)), segVal(k, r)}
		}
		if _, err := st.Append("p", rows); err != nil {
			t.Fatal(err)
		}
	}
	// Unsealed tail so all five edge segments above are sealed+faultable.
	tail := make([][]engine.Value, 10)
	for r := range tail {
		tail[r] = []engine.Value{engine.NewInt(9), engine.NewFloat(0.5)}
	}
	if _, err := st.Append("p", tail); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	oracleSt, oracle := reopen(t, fs, 0)
	if err := oracleSt.Close(); err != nil {
		t.Fatal(err)
	}
	lazySt, lazy := reopen(t, fs, 4096)
	defer lazySt.Close()

	queries := []string{
		"SELECT g, count(*) AS n FROM p WHERE f >= 0 GROUP BY g",
		"SELECT g, count(*) AS n FROM p WHERE f = 0 GROUP BY g",
		"SELECT g, count(*) AS n FROM p WHERE f <= 0 GROUP BY g",
		"SELECT g, count(*) AS n FROM p WHERE f < 0 GROUP BY g",
		"SELECT g, count(*) AS n FROM p WHERE f > 0 GROUP BY g",
		"SELECT g, count(*) AS n FROM p WHERE f = 100 GROUP BY g",
		"SELECT g, count(*) AS n FROM p WHERE f != 0 GROUP BY g",
		"SELECT g, count(*) AS n FROM p WHERE f IS NULL GROUP BY g",
		"SELECT g, count(*) AS n FROM p WHERE f IS NOT NULL GROUP BY g",
		"SELECT g, count(*) AS n FROM p WHERE f BETWEEN -1 AND 1 GROUP BY g",
	}
	for _, sql := range queries {
		stmt := mustParse(t, sql)
		ref, err := RunOnWith(oracle, stmt, Options{ForceScalar: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 4} {
			res, err := RunOnWith(lazy, stmt, Options{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("shards=%d [%s]", shards, sql)
			tablesEqual(t, label, ref.Table, res.Table)
			groupsEqual(t, label, ref, res)
		}
		if n := lazySt.PoolPinned(); n != 0 {
			t.Fatalf("%d chunks still pinned after [%s]", n, sql)
		}
	}

	// f >= 0 matches the -0.0 segment (64), the +0.0 segment (64), the
	// all-NaN segment (NaN compares equal to everything: 64), the far
	// segment (64), the mixed segment's NaN/-0.0/1.0 rows (48), and the
	// tail (10). The -0.0-only segment contributing all 64 is the
	// regression this test exists for.
	res, err := RunOnWith(lazy, mustParse(t, "SELECT count(*) AS n FROM p WHERE f >= 0"), Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Table.Row(0)[0].Float(); got != 4*64+48+10 {
		t.Fatalf("f >= 0 matched %v rows, want %d", got, 4*64+48+10)
	}

	// f < 0 is provably empty in every segment: the zero segments' range
	// is [0,0] (seal canonicalizes -0.0), NaN never satisfies a strict
	// op, and the mixed segment's finite range starts at 0 — all five
	// sealed segments skip without faulting.
	resLt, err := RunOnWith(lazy, mustParse(t, "SELECT count(*) AS n FROM p WHERE f < 0 GROUP BY g"), Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resLt.Groups) != 0 {
		t.Fatalf("f < 0 matched %d groups", len(resLt.Groups))
	}
	if resLt.Plan.SegsSkipped < 5 {
		t.Fatalf("f < 0 should zone-skip all 5 sealed segments: %+v", resLt.Plan)
	}
	if resLt.Plan.ChunksFaulted != 0 {
		t.Fatalf("fully-pruned f < 0 still faulted: %+v", resLt.Plan)
	}
}
