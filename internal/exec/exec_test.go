package exec

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/sqlparse"
)

// salesDB builds a small database with known group structure.
func salesDB(t *testing.T) *engine.DB {
	t.Helper()
	tbl := engine.MustNewTable("sales", engine.NewSchema(
		"region", engine.TString,
		"product", engine.TString,
		"amount", engine.TFloat,
		"qty", engine.TInt,
	))
	rows := []struct {
		region, product string
		amount          float64
		qty             int64
	}{
		{"east", "a", 10, 1},
		{"east", "b", 20, 2},
		{"west", "a", 30, 3},
		{"west", "b", 40, 4},
		{"west", "a", 50, 5},
		{"north", "c", -5, 1},
	}
	for _, r := range rows {
		tbl.MustAppendRow(
			engine.NewString(r.region), engine.NewString(r.product),
			engine.NewFloat(r.amount), engine.NewInt(r.qty))
	}
	db := engine.NewDB()
	db.Register(tbl)
	return db
}

func runSQL(t *testing.T, db *engine.DB, sql string) *Result {
	t.Helper()
	res, err := RunSQL(db, sql)
	if err != nil {
		t.Fatalf("RunSQL(%q): %v", sql, err)
	}
	return res
}

func TestGroupByAggregation(t *testing.T) {
	res := runSQL(t, salesDB(t), "SELECT region, sum(amount) AS s, count(*) AS n FROM sales GROUP BY region ORDER BY region")
	if res.NumRows() != 3 {
		t.Fatalf("groups: %d", res.NumRows())
	}
	// ORDER BY region: east, north, west.
	wantRegion := []string{"east", "north", "west"}
	wantSum := []float64{30, -5, 120}
	wantN := []int64{2, 1, 3}
	for i := 0; i < 3; i++ {
		if res.Table.Value(i, 0).Str() != wantRegion[i] {
			t.Errorf("row %d region %v", i, res.Table.Value(i, 0))
		}
		if res.Table.Value(i, 1).Float() != wantSum[i] {
			t.Errorf("row %d sum %v, want %v", i, res.Table.Value(i, 1), wantSum[i])
		}
		if res.Table.Value(i, 2).Int() != wantN[i] {
			t.Errorf("row %d count %v", i, res.Table.Value(i, 2))
		}
	}
}

func TestWhereFilter(t *testing.T) {
	res := runSQL(t, salesDB(t), "SELECT region, avg(amount) AS a FROM sales WHERE product = 'a' GROUP BY region ORDER BY region")
	if res.NumRows() != 2 {
		t.Fatalf("groups: %d", res.NumRows())
	}
	// east: avg(10)=10; west: avg(30,50)=40.
	if res.Table.Value(0, 1).Float() != 10 || res.Table.Value(1, 1).Float() != 40 {
		t.Errorf("avgs: %v, %v", res.Table.Value(0, 1), res.Table.Value(1, 1))
	}
}

func TestLineageCapture(t *testing.T) {
	res := runSQL(t, salesDB(t), "SELECT region, sum(amount) AS s FROM sales GROUP BY region ORDER BY region")
	// east = rows 0,1; north = row 5; west = rows 2,3,4.
	want := [][]int{{0, 1}, {5}, {2, 3, 4}}
	for i, w := range want {
		got := append([]int(nil), res.Groups[i].Lineage...)
		sort.Ints(got)
		if len(got) != len(w) {
			t.Fatalf("group %d lineage %v, want %v", i, got, w)
		}
		for j := range w {
			if got[j] != w[j] {
				t.Errorf("group %d lineage %v, want %v", i, got, w)
				break
			}
		}
	}
	// Union via Lineage().
	all := res.Lineage([]int{0, 1, 2})
	if len(all) != 6 {
		t.Errorf("union lineage: %v", all)
	}
	// GroupOf maps each source row to its group.
	m := res.GroupOf([]int{0, 1, 2})
	if m[0] != 0 || m[5] != 1 || m[4] != 2 {
		t.Errorf("GroupOf: %v", m)
	}
}

// Property: lineage partitions the WHERE-passing rows — every passing
// row appears in exactly one group.
func TestLineagePartitionProperty(t *testing.T) {
	f := func(amounts []int8) bool {
		if len(amounts) == 0 {
			return true
		}
		tbl := engine.MustNewTable("t", engine.NewSchema("k", engine.TInt, "v", engine.TFloat))
		for i, a := range amounts {
			tbl.MustAppendRow(engine.NewInt(int64(i%5)), engine.NewFloat(float64(a)))
		}
		db := engine.NewDB()
		db.Register(tbl)
		res, err := RunSQL(db, "SELECT k, sum(v) FROM t WHERE v >= 0 GROUP BY k")
		if err != nil {
			return false
		}
		seen := map[int]int{}
		for _, g := range res.Groups {
			for _, r := range g.Lineage {
				seen[r]++
			}
		}
		// Every passing row exactly once, every failing row zero times.
		for i, a := range amounts {
			want := 0
			if a >= 0 {
				want = 1
			}
			if seen[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGlobalAggregate(t *testing.T) {
	res := runSQL(t, salesDB(t), "SELECT sum(amount) AS total, min(amount) AS lo, max(amount) AS hi FROM sales")
	if res.NumRows() != 1 {
		t.Fatalf("rows: %d", res.NumRows())
	}
	if res.Table.Value(0, 0).Float() != 145 ||
		res.Table.Value(0, 1).Float() != -5 ||
		res.Table.Value(0, 2).Float() != 50 {
		t.Errorf("global aggs: %v", res.Table.Row(0))
	}
	if len(res.Groups[0].Lineage) != 6 {
		t.Errorf("global lineage: %d", len(res.Groups[0].Lineage))
	}
}

func TestHavingOnOutput(t *testing.T) {
	res := runSQL(t, salesDB(t), "SELECT region, sum(amount) AS s FROM sales GROUP BY region HAVING s > 0 ORDER BY s DESC")
	if res.NumRows() != 2 {
		t.Fatalf("rows after HAVING: %d", res.NumRows())
	}
	if res.Table.Value(0, 1).Float() != 120 {
		t.Errorf("DESC order: %v", res.Table.Value(0, 1))
	}
	// Groups stay parallel through HAVING+ORDER BY.
	if len(res.Groups[0].Lineage) != 3 {
		t.Errorf("lineage of top row: %v", res.Groups[0].Lineage)
	}
}

func TestHavingWithAggregateSyntax(t *testing.T) {
	res := runSQL(t, salesDB(t), "SELECT region, count(*) FROM sales GROUP BY region HAVING count(*) > 1 ORDER BY region")
	if res.NumRows() != 2 {
		t.Fatalf("rows: %d", res.NumRows())
	}
}

func TestLimit(t *testing.T) {
	res := runSQL(t, salesDB(t), "SELECT region, sum(amount) AS s FROM sales GROUP BY region ORDER BY s LIMIT 1")
	if res.NumRows() != 1 || res.Table.Value(0, 0).Str() != "north" {
		t.Errorf("limit: %v", res.Table.Row(0))
	}
}

func TestProjectionLineage(t *testing.T) {
	res := runSQL(t, salesDB(t), "SELECT region, amount FROM sales WHERE amount > 25")
	if res.NumRows() != 3 {
		t.Fatalf("rows: %d", res.NumRows())
	}
	for i := 0; i < res.NumRows(); i++ {
		if len(res.Groups[i].Lineage) != 1 {
			t.Errorf("projection lineage %d: %v", i, res.Groups[i].Lineage)
		}
	}
}

func TestGroupByExpression(t *testing.T) {
	res := runSQL(t, salesDB(t), "SELECT bucket(qty, 2) AS b, count(*) AS n FROM sales GROUP BY bucket(qty, 2) ORDER BY b")
	// qty: 1,2,3,4,5,1 → buckets 0:{1,1},2:{2,3},4:{4,5}
	if res.NumRows() != 3 {
		t.Fatalf("rows: %d", res.NumRows())
	}
	if res.Table.Value(0, 1).Int() != 2 || res.Table.Value(1, 1).Int() != 2 || res.Table.Value(2, 1).Int() != 2 {
		t.Errorf("bucket counts: %v %v %v", res.Table.Value(0, 1), res.Table.Value(1, 1), res.Table.Value(2, 1))
	}
}

func TestUngroupedPlainItemRejected(t *testing.T) {
	db := salesDB(t)
	if _, err := RunSQL(db, "SELECT region, sum(amount) FROM sales"); err == nil {
		t.Error("ungrouped plain item accepted")
	}
	if _, err := RunSQL(db, "SELECT product, sum(amount) FROM sales GROUP BY region"); err == nil {
		t.Error("plain item not in GROUP BY accepted")
	}
}

func TestErrors(t *testing.T) {
	db := salesDB(t)
	if _, err := RunSQL(db, "SELECT sum(amount) FROM missing"); err == nil {
		t.Error("missing table accepted")
	}
	if _, err := RunSQL(db, "SELECT sum(nosuchcol) FROM sales"); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := RunSQL(db, "SELECT region, sum(amount) FROM sales GROUP BY region HAVING nosuch > 1"); err == nil {
		t.Error("bad HAVING accepted")
	}
}

func TestAggStateAccessors(t *testing.T) {
	res := runSQL(t, salesDB(t), "SELECT region, sum(amount) AS s, avg(qty) AS q FROM sales GROUP BY region ORDER BY region")
	ords := res.AggOrdinals()
	if len(ords) != 2 || ords[0] != 1 || ords[1] != 2 {
		t.Fatalf("AggOrdinals: %v", ords)
	}
	if res.AggOrdinalOf(1) != 0 || res.AggOrdinalOf(2) != 1 || res.AggOrdinalOf(0) != -1 {
		t.Error("AggOrdinalOf wrong")
	}
	if v, ok := res.AggFloat(0, 0); !ok || v != 30 {
		t.Errorf("AggFloat: %v %v", v, ok)
	}
	if _, ok := res.AggState(0, 0); !ok {
		t.Error("sum should be removable")
	}
	// AggArgValue evaluates the argument on a source row.
	v, err := res.AggArgValue(0, 2) // amount of row 2 = 30
	if err != nil || v.Float() != 30 {
		t.Errorf("AggArgValue: %v %v", v, err)
	}
}

func TestCountStarArgValue(t *testing.T) {
	res := runSQL(t, salesDB(t), "SELECT region, count(*) AS n FROM sales GROUP BY region")
	v, err := res.AggArgValue(0, 0)
	if err != nil || v.Int() != 1 {
		t.Errorf("count(*) arg: %v %v", v, err)
	}
}

func TestRunOnFilteredView(t *testing.T) {
	db := salesDB(t)
	src, _ := db.Table("sales")
	stmt := sqlparse.MustParse("SELECT region, sum(amount) AS s FROM sales GROUP BY region ORDER BY region")
	res, err := RunOn(src, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Errorf("rows: %d", res.NumRows())
	}
}

func TestSelectRows(t *testing.T) {
	res := runSQL(t, salesDB(t), "SELECT region, sum(amount) AS s FROM sales GROUP BY region ORDER BY region")
	neg := res.SelectRows(func(row []engine.Value) bool { return row[1].Float() < 0 })
	if len(neg) != 1 || res.Table.Value(neg[0], 0).Str() != "north" {
		t.Errorf("SelectRows: %v", neg)
	}
	if len(res.AllRows()) != 3 {
		t.Errorf("AllRows: %v", res.AllRows())
	}
}

func TestDuplicateLabelsDisambiguated(t *testing.T) {
	res := runSQL(t, salesDB(t), "SELECT sum(amount), sum(amount) FROM sales")
	s := res.Table.Schema()
	if s[0].Name == s[1].Name {
		t.Errorf("duplicate labels: %s", s)
	}
}

func TestCountDistinct(t *testing.T) {
	res := runSQL(t, salesDB(t), "SELECT region, count(DISTINCT product) AS np FROM sales GROUP BY region ORDER BY region")
	// east: {a,b}=2; north: {c}=1; west: {a,b}=2.
	want := []int64{2, 1, 2}
	for i, w := range want {
		if got := res.Table.Value(i, 1).Int(); got != w {
			t.Errorf("row %d count distinct = %d, want %d", i, got, w)
		}
	}
	// Round-trip through the renderer.
	printed := res.Stmt.String()
	if !strings.Contains(printed, "count(DISTINCT product)") {
		t.Errorf("rendering: %s", printed)
	}
	if _, err := sqlparse.Parse(printed); err != nil {
		t.Errorf("reparse: %v", err)
	}
}

func TestSumDistinct(t *testing.T) {
	res := runSQL(t, salesDB(t), "SELECT sum(DISTINCT qty) AS s FROM sales")
	// qty: 1,2,3,4,5,1 → distinct 1..5 → 15.
	if got := res.Table.Value(0, 0).Float(); got != 15 {
		t.Errorf("sum distinct = %v", got)
	}
}

func TestNullAggregateResult(t *testing.T) {
	tbl := engine.MustNewTable("t", engine.NewSchema("k", engine.TInt, "v", engine.TFloat))
	tbl.MustAppendRow(engine.NewInt(1), engine.Null)
	db := engine.NewDB()
	db.Register(tbl)
	res := runSQL(t, db, "SELECT k, sum(v) AS s FROM t GROUP BY k")
	if !res.Table.Value(0, 1).IsNull() {
		t.Errorf("sum of NULLs: %v", res.Table.Value(0, 1))
	}
}
