package exec

import (
	"fmt"
	"math"

	"repro/internal/bitset"
	"repro/internal/engine"
)

var nanFloat = math.NaN()

// This file is the exec half of the columnar scoring fast path: instead
// of re-evaluating an aggregate's argument expression through the boxed
// expression interpreter for every (predicate, tuple) pair, a Debug run
// decodes the argument column once into a flat []float64 + NULL bitmap
// and hands lineage sets out as bitsets.

// ArgView is one aggregate's argument evaluated over every source row:
// Vals[src] is the float64 coercion of the argument on row src (1 for
// count(*)), NaN when NULL; Null marks the NULL rows.
type ArgView struct {
	Vals []float64
	Null *bitset.Bitset
}

// AggArgFloats returns the cached ArgView of the ord'th aggregate,
// evaluating the argument expression once per source row on first call.
// The returned view is shared and read-only. On out-of-core tables a
// chunk-load failure surfaces as an error, never a panic.
func (r *Result) AggArgFloats(ord int) (av *ArgView, err error) {
	defer engine.CatchSegmentLoad(&err)
	if ord < 0 || ord >= len(r.aggArgs) {
		return nil, fmt.Errorf("exec: aggregate ordinal %d out of range (%d aggregates)", ord, len(r.aggArgs))
	}
	r.argMu.Lock()
	defer r.argMu.Unlock()
	if av, ok := r.argViews[ord]; ok {
		return av, nil
	}
	n := r.Source.NumRows()
	av = &ArgView{Vals: make([]float64, n), Null: bitset.New(n)}
	arg := r.aggArgs[ord]
	if arg == nil { // count(*): every row contributes 1
		for i := range av.Vals {
			av.Vals[i] = 1
		}
	} else {
		row := make([]engine.Value, r.Source.NumCols())
		rr := r.Source.NewRowReader()
		defer rr.Close()
		for src := 0; src < n; src++ {
			rr.RowInto(src, row)
			v, err := arg.Eval(row)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				av.Vals[src] = nanFloat
				av.Null.Set(src)
				continue
			}
			av.Vals[src] = v.Float()
		}
	}
	if r.argViews == nil {
		r.argViews = make(map[int]*ArgView)
	}
	r.argViews[ord] = av
	return av, nil
}

// LineageBits returns the union of the given output rows' lineage as a
// bitset over source rows — the bitmap form of Lineage.
func (r *Result) LineageBits(rowIdxs []int) *bitset.Bitset {
	b := bitset.New(r.Source.NumRows())
	for _, ri := range rowIdxs {
		if ri < 0 || ri >= len(r.Groups) {
			continue
		}
		for _, src := range r.Groups[ri].Lineage {
			b.Set(src)
		}
	}
	return b
}

// GroupLineageBitsShared returns output row ri's lineage as a bitset
// over source rows, from the per-result cache — built on first request,
// shared (read-only!) afterwards. Advance carries this cache across
// appended batches by extending each bitset with the group's suffix
// lineage, so a streaming re-Debug reuses the unchanged prefix instead
// of re-setting every lineage bit.
func (r *Result) GroupLineageBitsShared(ri int) *bitset.Bitset {
	if ri < 0 || ri >= len(r.Groups) {
		return bitset.New(r.Source.NumRows())
	}
	g := r.Groups[ri]
	r.argMu.Lock()
	if b, ok := r.lineBits[g]; ok {
		r.argMu.Unlock()
		return b
	}
	r.argMu.Unlock()
	// Build outside the lock so parallel Scorer construction isn't
	// serialized; a racing duplicate build is correct and one wins.
	b := bitset.New(r.Source.NumRows())
	for _, src := range g.Lineage {
		b.Set(src)
	}
	r.argMu.Lock()
	defer r.argMu.Unlock()
	if prev, ok := r.lineBits[g]; ok {
		return prev
	}
	if r.lineBits == nil {
		r.lineBits = make(map[*Group]*bitset.Bitset)
	}
	r.lineBits[g] = b
	return b
}

// GroupLineageBits returns one lineage bitset per listed output row,
// each over source rows.
func (r *Result) GroupLineageBits(rowIdxs []int) []*bitset.Bitset {
	out := make([]*bitset.Bitset, len(rowIdxs))
	n := r.Source.NumRows()
	for i, ri := range rowIdxs {
		b := bitset.New(n)
		if ri >= 0 && ri < len(r.Groups) {
			for _, src := range r.Groups[ri].Lineage {
				b.Set(src)
			}
		}
		out[i] = b
	}
	return out
}
