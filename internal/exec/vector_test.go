package exec

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/sqlparse"
)

// Plan coverage: these tests pin which execution path each statement
// shape takes — vectorized with lowered WHERE, vectorized with the
// scalar filter fallback, or the boxed reference scan — and that the
// fallbacks produce output identical to the fast path's oracle.

func vectorTestTable(t *testing.T) *engine.Table {
	t.Helper()
	tbl, err := engine.NewTable("v", engine.Schema{
		{Name: "city", Type: engine.TString},
		{Name: "pop", Type: engine.TInt},
		{Name: "temp", Type: engine.TFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		city engine.Value
		pop  engine.Value
		temp engine.Value
	}{
		{engine.NewString("ann"), engine.NewInt(10), engine.NewFloat(1.5)},
		{engine.NewString("bos"), engine.NewInt(20), engine.NewFloat(2.5)},
		{engine.NewString("ann"), engine.NewInt(30), engine.Null},
		{engine.Null, engine.NewInt(40), engine.NewFloat(-1)},
		{engine.NewString("cam"), engine.Null, engine.NewFloat(4)},
		{engine.NewString("bos"), engine.NewInt(60), engine.NewFloat(0.25)},
	}
	for _, r := range rows {
		tbl.MustAppendRow(r.city, r.pop, r.temp)
	}
	return tbl
}

func mustParse(t *testing.T, sql string) *sqlparse.SelectStmt {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}

// runBoth executes the statement on the default path and on the forced
// scalar reference, checks the outputs match, and returns the default
// path's result for plan assertions.
func runBoth(t *testing.T, tbl *engine.Table, sql string) *Result {
	t.Helper()
	res, err := RunOnWith(tbl, mustParse(t, sql), Options{})
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	ref, err := RunOnWith(tbl, mustParse(t, sql), Options{ForceScalar: true})
	if err != nil {
		t.Fatalf("%s (scalar): %v", sql, err)
	}
	tablesEqual(t, sql, ref.Table, res.Table)
	groupsEqual(t, sql, ref, res)
	return res
}

func TestVectorPlanLoweredWhere(t *testing.T) {
	tbl := vectorTestTable(t)
	res := runBoth(t, tbl, `SELECT city, sum(pop) AS s FROM v WHERE pop >= 20 AND NOT (temp < 0 OR city = 'cam') GROUP BY city`)
	if !res.Plan.Vectorized || !res.Plan.WhereLowered {
		t.Fatalf("predicate-shaped WHERE should vectorize with lowered filter, got %+v", res.Plan)
	}
	res = runBoth(t, tbl, `SELECT city, count(*) AS c FROM v WHERE temp IS NOT NULL AND city IN ('ann', 'bos') GROUP BY city`)
	if !res.Plan.Vectorized || !res.Plan.WhereLowered {
		t.Fatalf("IS NULL / IN WHERE should lower, got %+v", res.Plan)
	}
	res = runBoth(t, tbl, `SELECT city, count(*) AS c FROM v WHERE pop BETWEEN 15 AND 45 GROUP BY city`)
	if !res.Plan.Vectorized || !res.Plan.WhereLowered {
		t.Fatalf("BETWEEN WHERE should lower, got %+v", res.Plan)
	}
}

func TestVectorPlanScalarFilterFallback(t *testing.T) {
	tbl := vectorTestTable(t)
	// length() has no clause-mask lowering: the filter must fall back to
	// per-row evaluation while grouping stays vectorized.
	res := runBoth(t, tbl, `SELECT city, sum(pop) AS s FROM v WHERE length(city) > 2 GROUP BY city`)
	if !res.Plan.Vectorized {
		t.Fatalf("non-lowerable WHERE should still vectorize grouping, got %+v", res.Plan)
	}
	if res.Plan.WhereLowered {
		t.Fatalf("length() WHERE must take the scalar filter fallback, got %+v", res.Plan)
	}
}

func TestVectorPlanDistinctFallsBack(t *testing.T) {
	tbl := vectorTestTable(t)
	res := runBoth(t, tbl, `SELECT count(DISTINCT city) AS c FROM v`)
	if res.Plan.Vectorized {
		t.Fatalf("DISTINCT must run on the reference scan, got %+v", res.Plan)
	}
	if !strings.Contains(res.Plan.Fallback, "DISTINCT") {
		t.Fatalf("fallback reason should name DISTINCT, got %q", res.Plan.Fallback)
	}
}

func TestVectorPlanStringComputedKeyFallsBack(t *testing.T) {
	tbl := vectorTestTable(t)
	res := runBoth(t, tbl, `SELECT upper(city) AS u, count(*) AS c FROM v GROUP BY upper(city)`)
	if res.Plan.Vectorized {
		t.Fatalf("string-valued computed key must run on the reference scan, got %+v", res.Plan)
	}
	if res.Plan.Fallback == "" {
		t.Fatal("fallback reason missing for string-valued computed key")
	}
}

func TestProjectionUsesLoweredFilter(t *testing.T) {
	tbl := vectorTestTable(t)
	res := runBoth(t, tbl, `SELECT city, pop FROM v WHERE pop > 15 AND city != 'cam'`)
	if !res.Plan.WhereLowered {
		t.Fatalf("projection over predicate WHERE should lower, got %+v", res.Plan)
	}
	// Lineage of a projection is one source row per output row.
	for i, g := range res.Groups {
		if len(g.Lineage) != 1 {
			t.Fatalf("projection group %d lineage %v", i, g.Lineage)
		}
	}
	res = runBoth(t, tbl, `SELECT city FROM v WHERE length(city) = 3`)
	if res.Plan.WhereLowered {
		t.Fatalf("length() projection filter must fall back, got %+v", res.Plan)
	}
}

func TestVectorShardedMatchesSingleShard(t *testing.T) {
	// Shards are whole segments now, so a multi-shard scan needs a
	// table spanning several segments: force the minimum segment size
	// and enough rows for five of them.
	tbl, err := engine.NewTableSeg("v", vectorTestTable(t).Schema(), engine.MinSegmentBits)
	if err != nil {
		t.Fatal(err)
	}
	src := vectorTestTable(t)
	rows := make([][]engine.Value, 0, 6*tbl.SegRows())
	for len(rows) < 6*tbl.SegRows() {
		for r := 0; r < src.NumRows(); r++ {
			rows = append(rows, src.Row(r))
		}
	}
	tbl, err = tbl.AppendBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	sql := `SELECT city, sum(pop) AS s, min(temp) AS m FROM v GROUP BY city`
	one, err := RunOnWith(tbl, mustParse(t, sql), Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := RunOnWith(tbl, mustParse(t, sql), Options{Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	if one.Plan.Shards != 1 || many.Plan.Shards < 2 {
		t.Fatalf("shard counts: %+v vs %+v", one.Plan, many.Plan)
	}
	tablesEqual(t, sql, one.Table, many.Table)
	groupsEqual(t, sql, one, many)
}
