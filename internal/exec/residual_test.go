package exec

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/expr"
)

// This file pins the residual-mask filter path: AND chains mixing
// lowerable and non-lowerable conjuncts stay on the vectorized scan,
// evaluating the non-lowerable conjuncts per row only on bits that
// survive the lowered prefix — and the ordered OR-chain union with its
// fill short-circuit. Both against the ForceScalar reference, plus the
// canonical fallback-reason vocabulary.

func TestResidualFilterEngages(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tbl := parityTable(rng, 4000)
	sql := "SELECT j, sum(f) AS sf, count(*) AS n FROM p WHERE i >= 4 AND s LIKE 'a%' GROUP BY j"
	stmt := mustParse(t, sql)
	res, err := RunOnWith(tbl, stmt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.Vectorized || !res.Plan.WhereLowered {
		t.Fatalf("residual chain left the vectorized path: %+v", res.Plan)
	}
	if res.Plan.ResidualConjuncts != 1 {
		t.Fatalf("ResidualConjuncts = %d, want 1", res.Plan.ResidualConjuncts)
	}
	if res.Plan.Fallback != "" || res.Plan.FilterFallback != "" {
		t.Fatalf("unexpected fallback: %q / %q", res.Plan.Fallback, res.Plan.FilterFallback)
	}
	if res.Plan.FilterConjuncts != 2 {
		t.Fatalf("FilterConjuncts = %d, want 2", res.Plan.FilterConjuncts)
	}
	// i >= 4 keeps roughly 2/11 of rows (i uniform in [-5, 5] with 15%
	// NULLs); the LIKE must only have been evaluated on the survivors.
	if res.Plan.ResidualRows == 0 || res.Plan.ResidualRows >= tbl.NumRows()/2 {
		t.Fatalf("ResidualRows = %d, want in (0, %d)", res.Plan.ResidualRows, tbl.NumRows()/2)
	}
	ref, err := RunOnWith(tbl, mustParse(t, sql), Options{ForceScalar: true})
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, sql, ref.Table, res.Table)
	groupsEqual(t, sql, ref, res)
}

// randResidualAnd builds an AND chain of 2..5 conjuncts with at least
// one guaranteed non-lowerable conjunct at a random position, so every
// statement exercises the residual path (or its refusal when nothing
// else lowers).
func randResidualAnd(rng *rand.Rand) expr.Expr {
	n := 2 + rng.Intn(4)
	parts := make([]expr.Expr, n)
	for i := range parts {
		parts[i] = randWhere(rng, 1)
	}
	// Overwrite 1..n-1 random positions with guaranteed residual shapes.
	k := 1 + rng.Intn(n-1)
	for _, p := range rng.Perm(n)[:k] {
		if rng.Intn(2) == 0 {
			parts[p] = &expr.Like{X: expr.NewCol("s"), Pattern: []string{"a%", "%y", "_"}[rng.Intn(3)], Invert: rng.Intn(2) == 0}
		} else {
			lhs := expr.NewBin(expr.OpAdd, expr.NewCol("f"), expr.Float(0.25))
			parts[p] = expr.NewBin(cmpOps[rng.Intn(len(cmpOps))], lhs, randLit(rng, "f"))
		}
	}
	// Occasionally prepend an empty clause so the eligibility mask
	// drains and the short-circuit engages with residuals pending.
	if rng.Float64() < 0.2 {
		parts = append([]expr.Expr{expr.NewBin(expr.OpGt, expr.NewCol("i"), expr.Int(100))}, parts...)
	}
	out := parts[len(parts)-1]
	for i := len(parts) - 2; i >= 0; i-- {
		out = expr.NewBin(expr.OpAnd, parts[i], out)
	}
	return out
}

func TestResidualFilterParityRandomized(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	sawResidual, sawShortCircuit := false, false
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		tbl := parityTable(rng, 1200)
		for iter := 0; iter < 60; iter++ {
			stmt, _ := randStmt(rng)
			stmt.Where = randResidualAnd(rng)
			ref, refErr := RunOnWith(tbl, stmt, Options{ForceScalar: true})
			got, gotErr := RunOnWith(tbl, stmt, Options{Shards: 3})
			if (refErr != nil) != (gotErr != nil) {
				t.Fatalf("seed %d iter %d: error disagreement\nref: %v\ngot: %v\nwhere: %s",
					seed, iter, refErr, gotErr, stmt.Where)
			}
			if refErr != nil {
				continue
			}
			label := fmt.Sprintf("seed %d iter %d [%s]", seed, iter, stmt.Where)
			tablesEqual(t, label, ref.Table, got.Table)
			groupsEqual(t, label, ref, got)
			if got.Plan.ResidualConjuncts > 0 {
				sawResidual = true
				if got.Plan.FilterShortCircuited > 0 {
					sawShortCircuit = true
				}
			}
		}
	}
	if !sawResidual {
		t.Fatal("no statement took the residual filter path")
	}
	if !sawShortCircuit {
		t.Fatal("the eligibility short-circuit never engaged on a residual chain")
	}
}

func TestOrChainOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tbl := parityTable(rng, 3000)
	t.Run("ordered", func(t *testing.T) {
		sql := "SELECT j, count(*) AS n FROM p WHERE s = 'a' OR i > 3 OR f < -7 GROUP BY j"
		res, err := RunOnWith(tbl, mustParse(t, sql), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Plan.WhereLowered || res.Plan.FilterConjuncts != 3 {
			t.Fatalf("OR chain not ordered: %+v", res.Plan)
		}
		ref, err := RunOnWith(tbl, mustParse(t, sql), Options{ForceScalar: true})
		if err != nil {
			t.Fatal(err)
		}
		tablesEqual(t, sql, ref.Table, res.Table)
		groupsEqual(t, sql, ref, res)
	})
	t.Run("fill-short-circuit", func(t *testing.T) {
		// j >= 0 is TRUE for every row (j has no NULLs), so the union
		// fills immediately and the remaining disjuncts are skipped.
		sql := "SELECT i, count(*) AS n FROM p WHERE j >= 0 OR s = 'b' OR f > 2 GROUP BY i"
		res, err := RunOnWith(tbl, mustParse(t, sql), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Plan.WhereLowered || res.Plan.FilterShortCircuited == 0 {
			t.Fatalf("filled OR union did not short-circuit: %+v", res.Plan)
		}
		ref, err := RunOnWith(tbl, mustParse(t, sql), Options{ForceScalar: true})
		if err != nil {
			t.Fatal(err)
		}
		tablesEqual(t, sql, ref.Table, res.Table)
		groupsEqual(t, sql, ref, res)
	})
	t.Run("randomized", func(t *testing.T) {
		sawOrdered := false
		for iter := 0; iter < 60; iter++ {
			stmt, _ := randStmt(rng)
			// Root OR chain of simple randWhere leaves (some lowerable,
			// some not — non-lowerable disjuncts must refuse cleanly).
			n := 2 + rng.Intn(3)
			w := randWhere(rng, 0)
			for k := 1; k < n; k++ {
				w = expr.NewBin(expr.OpOr, w, randWhere(rng, 0))
			}
			stmt.Where = w
			ref, refErr := RunOnWith(tbl, stmt, Options{ForceScalar: true})
			got, gotErr := RunOnWith(tbl, stmt, Options{Shards: 3})
			if (refErr != nil) != (gotErr != nil) {
				t.Fatalf("iter %d: error disagreement ref=%v got=%v where=%s", iter, refErr, gotErr, stmt.Where)
			}
			if refErr != nil {
				continue
			}
			label := fmt.Sprintf("or iter %d [%s]", iter, stmt.Where)
			tablesEqual(t, label, ref.Table, got.Table)
			groupsEqual(t, label, ref, got)
			if got.Plan.WhereLowered && got.Plan.FilterConjuncts >= 2 {
				sawOrdered = true
			}
		}
		if !sawOrdered {
			t.Fatal("no OR chain took the ordered path")
		}
	})
}

// TestFilterFallbackVocabulary pins the canonical Plan.FilterFallback
// reason strings: the greedy and left-to-right paths must describe the
// same refusal with the same words.
func TestFilterFallbackVocabulary(t *testing.T) {
	tbl := vectorTestTable(t)
	cases := []struct {
		name string
		sql  string
		opts Options
		want string
	}{
		{"lowered", "SELECT city, count(*) AS n FROM v WHERE pop > 10 GROUP BY city", Options{}, ""},
		{"shape-greedy", "SELECT city, count(*) AS n FROM v WHERE length(city) > 2 GROUP BY city", Options{}, fallbackFilterShape},
		{"shape-ltr", "SELECT city, count(*) AS n FROM v WHERE length(city) > 2 GROUP BY city", Options{NoGreedyOrdering: true}, fallbackFilterShape},
		{"shape-all-residual-chain", "SELECT city, count(*) AS n FROM v WHERE length(city) > 2 AND city LIKE 'a%' GROUP BY city", Options{}, fallbackFilterShape},
		{"disabled", "SELECT city, count(*) AS n FROM v WHERE pop > 10 GROUP BY city", Options{NoFilterLowering: true}, fallbackFilterDisabled},
		{"no-where", "SELECT city, count(*) AS n FROM v GROUP BY city", Options{}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := RunOnWith(tbl, mustParse(t, tc.sql), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Plan.FilterFallback != tc.want {
				t.Fatalf("FilterFallback = %q, want %q (plan %+v)", res.Plan.FilterFallback, tc.want, res.Plan)
			}
		})
	}
}

// The residual loop must poll the context: a pre-canceled context
// aborts inside buildFilter rather than scanning every eligible row.
func TestResidualFilterCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tbl := parityTable(rng, 500)
	where := mustParse(t, "SELECT j, count(*) AS n FROM p WHERE i >= -100 AND s LIKE 'a%' GROUP BY j").Where
	if err := where.Resolve(tbl.Schema()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := buildFilter(ctx, tbl, where, false, false, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled context did not abort the residual filter: %v", err)
	}
}
