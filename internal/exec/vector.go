package exec

import (
	"context"
	"errors"
	"math"
	"math/bits"
	"runtime"
	"sync"

	"repro/internal/agg"
	"repro/internal/bitset"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/sqlparse"
)

// This file is the vectorized, shard-parallel aggregate pipeline — the
// fast path RunOn takes for grouped statements. Where the boxed
// reference scan (runScalarGrouped) materializes every row, interprets
// WHERE per row, builds string group keys, and feeds boxed values to
// the aggregates, this pipeline:
//
//  1. evaluates WHERE once into a bitmap (filter.go: clause-mask
//     lowering with a per-row EvalBool fallback),
//  2. turns each group-by expression into an integer key slot per row —
//     dictionary codes for string columns, canonical float bits for
//     numeric columns, a compiled zero-alloc evaluator for computed
//     keys — with a dense slot table replacing the hash map for
//     single string-column keys,
//  3. streams numeric argument columns (engine.FloatView) straight into
//     the aggregate states through agg.FloatAdder, and
//  4. splits the row space across a worker pool, each shard
//     accumulating private group states that merge in shard order via
//     agg.Merger — which preserves the sequential scan's
//     first-appearance group order, ascending lineage, and FirstRow.
//
// Anything the pipeline cannot express exactly falls back to the boxed
// reference scan (DISTINCT aggregates, more than four group-by columns,
// computed group keys that turn out to be strings); the randomized
// parity test pins the two paths to identical output.

// Options selects an execution strategy for RunOnWith. The zero value
// means "choose automatically" and is what RunOn uses.
type Options struct {
	// Shards forces the number of scan partitions (0 = automatic:
	// GOMAXPROCS capped so each shard keeps at least a few thousand
	// rows). Ignored when the statement is not shardable.
	Shards int
	// ForceScalar routes execution through the boxed reference scan.
	ForceScalar bool
	// NoFilterLowering disables WHERE clause-mask lowering; the filter
	// is built by per-row evaluation instead. For tests.
	NoFilterLowering bool
	// NoGreedyOrdering disables greedy selectivity ordering of lowered
	// AND chains; conjuncts evaluate left-to-right through the full
	// Kleene lowering instead. For tests and benchmarks.
	NoGreedyOrdering bool
	// NoSortCarry disables the incremental ORDER BY merge in Advance;
	// every advance re-sorts the full group output. For tests and
	// benchmarks.
	NoSortCarry bool
}

// PlanInfo records which strategy an execution actually took; tests and
// benchmarks read it to pin fast-path coverage and fallbacks.
type PlanInfo struct {
	// Vectorized is true when the vectorized grouped pipeline produced
	// the result (false for the boxed reference scan and for
	// aggregate-free projections).
	Vectorized bool
	// WhereLowered is true when the WHERE filter was evaluated through
	// bitmap clause masks rather than per-row expression evaluation.
	// Meaningful for projections too; true when there is no WHERE.
	WhereLowered bool
	// Shards is the number of scan partitions the vectorized pipeline
	// used (0 when it did not run).
	Shards int
	// Fallback names the reason the boxed reference scan ran instead of
	// the vectorized pipeline ("" when it did not fall back).
	Fallback string
	// Incremental is true when Advance produced this result by folding
	// only appended rows into the previous result's group states instead
	// of rescanning the table.
	Incremental bool
	// SegsSkipped counts out-of-core segments the vectorized scan never
	// touched because zone-map pruning left their filter words all zero
	// — no rows scanned, no chunks faulted.
	SegsSkipped int
	// ChunksFaulted counts segment-cursor pins that missed to disk
	// during the vectorized scan (out-of-core tables only).
	ChunksFaulted int
	// ChunksResident counts segment-cursor pins served from memory —
	// resident chunks or buffer-pool hits.
	ChunksResident int
	// FilterConjuncts is the number of root AND-chain conjuncts the
	// greedy filter planner ordered (0 when the WHERE was not an
	// ordered chain — absent, single-conjunct, or not lowered).
	FilterConjuncts int
	// FilterOrder is the greedy evaluation order as source-position
	// indexes into the AND chain (nil when FilterConjuncts is 0). An
	// entry of 2 first means the third conjunct in source order was
	// estimated most selective and evaluated first.
	FilterOrder []int
	// FilterShortCircuited counts trailing conjuncts never materialized
	// because the running TRUE mask emptied first (AND chains) or
	// disjuncts skipped because the running union filled (OR chains).
	FilterShortCircuited int
	// ResidualConjuncts counts WHERE conjuncts that did not lower but
	// rode the vectorized path anyway: evaluated per row only on the
	// bits surviving the lowered conjuncts' running mask.
	ResidualConjuncts int
	// ResidualRows is the total number of per-row residual evaluations
	// — the EvalBool calls the lowered prefix did NOT save.
	ResidualRows int
	// FilterFallback is the canonical reason the WHERE was evaluated by
	// the per-row scan ("" when it lowered or there was no WHERE): one
	// of "filter: non-lowerable predicate shape", "filter: predicate
	// index geometry mismatch", "filter: lowering disabled".
	FilterFallback string
	// MaskedAgg is true when a global (no GROUP BY) aggregation over
	// float-fed arguments folded whole segment chunks under the filter
	// mask (agg.FoldMasked) instead of visiting rows through scanRow.
	MaskedAgg bool
	// SortCarried is true when an incremental Advance merged changed and
	// new groups into the carried ORDER BY order instead of re-sorting
	// the full output.
	SortCarried bool
}

// errVectorAbort signals mid-scan discovery that the statement needs
// the boxed path (a computed group key evaluated to a string, or a
// shard state refused to merge). The caller reruns the reference scan.
var errVectorAbort = errors.New("exec: not vectorizable")

const (
	// maxVectorGroupCols bounds the packed group key width.
	maxVectorGroupCols = 4
	// minShardRows keeps shards coarse enough that per-shard setup and
	// merge never dominate.
	minShardRows = 4096
	// nullSlot is the key slot of NULL. It is a NaN bit pattern
	// canonSlot never produces (canonSlot maps every NaN to one
	// canonical pattern), so it cannot collide with a real value.
	nullSlot = ^uint64(0)
	// canonNaN is the canonical NaN slot. The boxed scan's string keys
	// render every NaN as "NaN", so all NaNs must land in one group.
	canonNaN = 0x7FF8000000000000
)

// canonSlot maps a float64 to its group key slot with the same equality
// engine.Equal (and the boxed scan's Value.Key() strings) induce: every
// NaN collapses to one slot, -0 canonicalizes to +0 (IEEE == treats
// them as equal, so grouping must not split them), and all numeric
// types compare through their float64 coercion.
func canonSlot(f float64) uint64 {
	if f != f {
		return canonNaN
	}
	if f == 0 {
		return 0 // +0.0 bits; -0.0 lands here too
	}
	return math.Float64bits(f)
}

// vKey is a packed group key: one slot per group-by column.
type vKey [maxVectorGroupCols]uint64

type keyKind int

const (
	kindDict     keyKind = iota // string column: dictionary code
	kindFloat                   // numeric column: canonical float bits
	kindComputed                // any other expression: compiled evaluator
)

// keySrc is one group-by column's per-row key source.
type keySrc struct {
	kind keyKind
	dict *engine.DictView  // kindDict: segment code chunks + Code lookups
	fv   *engine.FloatView // kindFloat: segment value/NULL chunks
	node expr.Expr         // kindComputed (compiled per shard)
}

type argKind int

const (
	argConst1   argKind = iota // count(*): every row contributes 1
	argFloat                   // numeric column via FloatView
	argBoxedCol                // non-numeric column: boxed stored value
	argEval                    // computed argument: compiled evaluator
)

// argSrc is one aggregate's per-row argument source.
type argSrc struct {
	kind     argKind
	fv       *engine.FloatView // argFloat
	col      int               // argFloat, argBoxedCol
	node     expr.Expr         // argEval (compiled per shard)
	floatFed bool              // state implements agg.FloatAdder and the source is float
}

// vectorPlan is the analyzed statement: everything the shard workers
// share read-only.
type vectorPlan struct {
	ctx       context.Context
	src       *engine.Table
	stmt      *sqlparse.SelectStmt
	protos    []agg.Func
	keys      []keySrc
	args      []argSrc
	filter    *bitset.Bitset // nil: no WHERE
	lowered   bool
	fstats    filterStats
	denseSize int // >0: single string group column, dense slot table
	mergeable bool
	// maskedAgg: global aggregate whose arguments all fold as floats
	// (count(*) or numeric columns into FloatAdder states) under a
	// lowered filter — the scan runs the batch mask kernels per segment
	// chunk instead of per row.
	maskedAgg bool
}

// planVector analyzes the statement for the vectorized pipeline. A
// non-empty reason means "run the reference scan instead"; err is a
// real query error.
// filterFrom is the first row the caller will consume from the WHERE
// mask: fresh runs pass 0, Advance passes the old row count so the
// per-row fallback for non-lowerable trees touches only the suffix.
func planVector(ctx context.Context, src *engine.Table, stmt *sqlparse.SelectStmt, aggArgs []expr.Expr, protos []agg.Func, opts Options, filterFrom int) (*vectorPlan, string, error) {
	if len(stmt.GroupBy) > maxVectorGroupCols {
		return nil, "more than 4 group-by columns", nil
	}
	p := &vectorPlan{ctx: ctx, src: src, stmt: stmt, protos: protos, mergeable: true}

	for _, proto := range protos {
		if _, ok := proto.(*agg.Distinct); ok {
			return nil, "DISTINCT aggregate", nil
		}
		if _, ok := proto.(agg.Merger); !ok {
			p.mergeable = false
		}
	}

	p.keys = make([]keySrc, len(stmt.GroupBy))
	for i, g := range stmt.GroupBy {
		if col, ok := g.(*expr.Col); ok && col.Index >= 0 {
			if dv := src.DictView(col.Index); dv != nil {
				p.keys[i] = keySrc{kind: kindDict, dict: dv}
				if len(stmt.GroupBy) == 1 {
					p.denseSize = dv.NumValues() + 1
				}
				continue
			}
			if fv := src.FloatView(col.Index); fv != nil {
				p.keys[i] = keySrc{kind: kindFloat, fv: fv}
				continue
			}
			return nil, "group-by column has no typed view", nil
		}
		if _, ok := expr.Compile(g, src); !ok {
			return nil, "group-by expression not compilable", nil
		}
		p.keys[i] = keySrc{kind: kindComputed, node: g}
	}

	p.args = make([]argSrc, len(aggArgs))
	for ai, arg := range aggArgs {
		_, isFA := protos[ai].(agg.FloatAdder)
		switch {
		case arg == nil:
			p.args[ai] = argSrc{kind: argConst1, floatFed: isFA}
		default:
			if col, ok := arg.(*expr.Col); ok && col.Index >= 0 {
				if fv := src.FloatView(col.Index); fv != nil {
					p.args[ai] = argSrc{kind: argFloat, fv: fv, col: col.Index, floatFed: isFA}
					continue
				}
				p.args[ai] = argSrc{kind: argBoxedCol, col: col.Index}
				continue
			}
			if _, ok := expr.Compile(arg, src); !ok {
				return nil, "aggregate argument not compilable", nil
			}
			p.args[ai] = argSrc{kind: argEval, node: arg}
		}
	}

	filter, lowered, fstats, err := buildFilter(ctx, src, stmt.Where, opts.NoFilterLowering, opts.NoGreedyOrdering, filterFrom)
	if err != nil {
		return nil, "", err
	}
	p.filter, p.lowered, p.fstats = filter, lowered, fstats

	// Global aggregation with every argument float-fed (count(*) or a
	// numeric column feeding a FloatAdder) never needs per-row key or
	// boxed reads: under a lowered filter the scan can fold whole
	// segment chunks through the batch mask kernels.
	if len(p.keys) == 0 && p.filter != nil && len(p.args) > 0 {
		p.maskedAgg = true
		for _, a := range p.args {
			if (a.kind != argConst1 && a.kind != argFloat) || !a.floatFed {
				p.maskedAgg = false
				break
			}
		}
	}
	return p, "", nil
}

// vGroup is one shard-local (or merged) group with its packed key and
// the pre-asserted unboxed accumulation handles.
type vGroup struct {
	g   *Group
	key vKey
	fas []agg.FloatAdder // per aggregate ordinal; nil when boxed
}

// shardScan is one worker's private accumulation state over [lo, hi).
type shardScan struct {
	plan     *vectorPlan
	lo, hi   int
	keyEvals []expr.Evaluator
	argEvals []expr.Evaluator
	groups   []*vGroup
	dense    []int32          // single-dict: code+1 → group index+1
	h1       map[uint64]int32 // single non-dict column
	hN       map[vKey]int32   // 2..4 columns
	err      error

	// Segment readers: one per column view the scan reads, pinning one
	// chunk at a time (engine.FloatReader/DictReader) so out-of-core
	// reads fault per segment, not per row. Indexed in parallel with
	// plan.keys / plan.args; nil where the source kind doesn't apply.
	keyFC []*engine.FloatReader
	keyDC []*engine.DictReader
	argFC []*engine.FloatReader
	// rr serves the shard's boxed per-row reads (computed key/arg
	// evaluators, non-float aggregate arguments) with per-segment
	// pins — per-row transient pins re-decode over-budget chunks
	// every row on out-of-core tables.
	rr *engine.RowReader

	segsSkipped    int // fully-pruned out-of-core segments never pinned
	chunksFaulted  int
	chunksResident int
}

func newShardScan(p *vectorPlan, lo, hi int) *shardScan {
	ss := &shardScan{plan: p, lo: lo, hi: hi}
	switch {
	case len(p.keys) == 0:
		// global aggregate: at most one group, no lookup structure
	case p.denseSize > 0:
		ss.dense = make([]int32, p.denseSize)
	case len(p.keys) == 1:
		ss.h1 = make(map[uint64]int32)
	default:
		ss.hN = make(map[vKey]int32)
	}
	ss.rr = p.src.NewRowReader()
	ss.keyEvals = make([]expr.Evaluator, len(p.keys))
	for i := range p.keys {
		if p.keys[i].kind == kindComputed {
			ev, _ := expr.Compile(p.keys[i].node, ss.rr)
			ss.keyEvals[i] = ev
		}
	}
	ss.argEvals = make([]expr.Evaluator, len(p.args))
	for ai := range p.args {
		if p.args[ai].kind == argEval {
			ev, _ := expr.Compile(p.args[ai].node, ss.rr)
			ss.argEvals[ai] = ev
		}
	}
	ss.keyFC = make([]*engine.FloatReader, len(p.keys))
	ss.keyDC = make([]*engine.DictReader, len(p.keys))
	for i := range p.keys {
		switch p.keys[i].kind {
		case kindDict:
			ss.keyDC[i] = p.keys[i].dict.NewReader()
		case kindFloat:
			ss.keyFC[i] = p.keys[i].fv.NewReader()
		}
	}
	ss.argFC = make([]*engine.FloatReader, len(p.args))
	for ai := range p.args {
		if p.args[ai].kind == argFloat {
			ss.argFC[ai] = p.args[ai].fv.NewReader()
		}
	}
	return ss
}

// closeCursors releases every pinned chunk and folds the cursors' pin
// counters into the shard totals. Deferred from run() so error and
// cancellation exits release pins too.
func (ss *shardScan) closeCursors() {
	for _, c := range ss.keyFC {
		if c != nil {
			c.Close()
			f, res := c.Counters()
			ss.chunksFaulted += f
			ss.chunksResident += res
		}
	}
	for _, c := range ss.keyDC {
		if c != nil {
			c.Close()
			f, res := c.Counters()
			ss.chunksFaulted += f
			ss.chunksResident += res
		}
	}
	for _, c := range ss.argFC {
		if c != nil {
			c.Close()
			f, res := c.Counters()
			ss.chunksFaulted += f
			ss.chunksResident += res
		}
	}
	if ss.rr != nil {
		ss.rr.Close()
		f, res := ss.rr.Counters()
		ss.chunksFaulted += f
		ss.chunksResident += res
	}
}

func (p *vectorPlan) newGroup(key vKey, r int) *vGroup {
	g := &Group{Aggs: make([]agg.Func, len(p.protos)), FirstRow: r}
	vg := &vGroup{g: g, key: key, fas: make([]agg.FloatAdder, len(p.protos))}
	for i, proto := range p.protos {
		g.Aggs[i] = proto.Clone()
		if p.args[i].floatFed {
			vg.fas[i] = g.Aggs[i].(agg.FloatAdder)
		}
	}
	return vg
}

// lookup finds or creates the group of key; r is the creating row.
func (ss *shardScan) lookup(key vKey, r int) *vGroup {
	switch {
	case ss.dense != nil:
		if gi := ss.dense[key[0]]; gi != 0 {
			return ss.groups[gi-1]
		}
		ss.dense[key[0]] = int32(len(ss.groups)) + 1
	case ss.h1 != nil:
		if gi, ok := ss.h1[key[0]]; ok {
			return ss.groups[gi]
		}
		ss.h1[key[0]] = int32(len(ss.groups))
	case ss.hN != nil:
		if gi, ok := ss.hN[key]; ok {
			return ss.groups[gi]
		}
		ss.hN[key] = int32(len(ss.groups))
	default:
		if len(ss.groups) > 0 {
			return ss.groups[0]
		}
	}
	vg := ss.plan.newGroup(key, r)
	ss.groups = append(ss.groups, vg)
	return vg
}

// scanRow folds one passing row into the shard state.
func (ss *shardScan) scanRow(r int) error {
	p := ss.plan
	var key vKey
	for i := range p.keys {
		k := &p.keys[i]
		switch k.kind {
		case kindDict:
			key[i] = uint64(ss.keyDC[i].CodeAt(r) + 1) // NULL code -1 → slot 0
		case kindFloat:
			if f, isNull := ss.keyFC[i].At(r); isNull {
				key[i] = nullSlot
			} else {
				key[i] = canonSlot(f)
			}
		default: // kindComputed
			v, err := ss.keyEvals[i](r)
			if err != nil {
				return err
			}
			switch {
			case v.IsNull():
				key[i] = nullSlot
			case v.T == engine.TString:
				// String-valued computed keys have no table-global
				// code; the reference scan handles them.
				return errVectorAbort
			default:
				key[i] = canonSlot(v.Float())
			}
		}
	}
	vg := ss.lookup(key, r)
	grp := vg.g
	grp.Lineage = append(grp.Lineage, r)
	for ai := range p.args {
		a := &p.args[ai]
		switch a.kind {
		case argConst1:
			if fa := vg.fas[ai]; fa != nil {
				fa.AddFloat(1)
			} else {
				grp.Aggs[ai].Add(engine.NewInt(1))
			}
		case argFloat:
			f, isNull := ss.argFC[ai].At(r)
			if isNull {
				continue // Add ignores NULLs; so does skipping
			}
			if fa := vg.fas[ai]; fa != nil {
				fa.AddFloat(f)
			} else {
				grp.Aggs[ai].Add(ss.rr.Value(r, a.col))
			}
		case argBoxedCol:
			grp.Aggs[ai].Add(ss.rr.Value(r, a.col))
		default: // argEval
			v, err := ss.argEvals[ai](r)
			if err != nil {
				return err
			}
			grp.Aggs[ai].Add(v)
		}
	}
	return nil
}

// run scans the shard's row range, restricted to the filter bitmap.
// Each shard polls the plan's ctx once per ctxCheckRows rows (once per
// 64 filter words on the bitmap path), so a cancelled query stops all
// shards promptly; the first shard to observe cancellation records the
// context error and runVector surfaces it.
func (ss *shardScan) run() {
	p := ss.plan
	if ss.hi <= ss.lo {
		return
	}
	// A chunk fault can fail (corrupt or vanished segment file); the
	// loader surfaces that as a SegmentLoadError panic. Recover it into
	// ss.err here — each shard runs on its own goroutine, so the
	// RunOnWithCtx-level catch can't see it — and release any pins the
	// cursors still hold on every exit path, including that one.
	defer engine.CatchSegmentLoad(&ss.err)
	defer ss.closeCursors()
	ctx := p.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if p.filter == nil {
		for r := ss.lo; r < ss.hi; r++ {
			if r%ctxCheckRows == 0 {
				if err := ctx.Err(); err != nil {
					ss.err = ctxErr(err)
					return
				}
			}
			if err := ss.scanRow(r); err != nil {
				ss.err = err
				return
			}
		}
		return
	}
	words := p.filter.Words()
	ss.countSkips(words)
	if p.maskedAgg {
		ss.runMaskedGlobal(ctx, words)
		return
	}
	loWord, hiWord := ss.lo/64, (ss.hi-1)/64
	for wi := loWord; wi <= hiWord; wi++ {
		if wi%(ctxCheckRows/64) == 0 {
			if err := ctx.Err(); err != nil {
				ss.err = ctxErr(err)
				return
			}
		}
		w := words[wi]
		if wi == loWord {
			w &= ^uint64(0) << (uint(ss.lo) % 64)
		}
		if wi == hiWord {
			if rem := ss.hi - wi*64; rem < 64 {
				w &= (1 << uint(rem)) - 1
			}
		}
		for w != 0 {
			r := wi*64 + bits.TrailingZeros64(w)
			w &= w - 1
			if err := ss.scanRow(r); err != nil {
				ss.err = err
				return
			}
		}
	}
}

// runMaskedGlobal is the global-aggregate scan: instead of calling
// scanRow per surviving bit, it folds each segment chunk through the
// batch mask kernels (agg.FoldMasked), paying per word rather than per
// row for the value reads. Lineage and FirstRow still come from set-bit
// iteration, so the output is bit-identical to scanRow's: every
// FloatAdder receives the same values in the same ascending row order.
// Segments whose mask words are all zero are skipped without pinning
// anything, preserving zone-map pruning on out-of-core tables.
func (ss *shardScan) runMaskedGlobal(ctx context.Context, words []uint64) {
	p := ss.plan
	segRows := p.src.SegRows()
	n := p.src.NumRows()
	var vg *vGroup
	if len(ss.groups) > 0 {
		vg = ss.groups[0] // Advance-seeded carried group
	}
	var scratch []uint64
	wtick := 0
	for segBase := ss.lo - ss.lo%segRows; segBase < ss.hi; segBase += segRows {
		lo, hi := segBase, segBase+segRows
		if lo < ss.lo {
			lo = ss.lo
		}
		if hi > ss.hi {
			hi = ss.hi
		}
		mask := words[segBase/64 : (hi+63)/64]
		// Clip shard-partial edge words: zero rows before lo, and drop
		// bits at or past hi that belong to the neighbouring shard (at
		// hi == n the bitset's trimmed ghost bits are already zero).
		// Segment starts are word-aligned, so mask word j covers chunk
		// rows [64j, 64j+64) — exactly FoldMasked's contract.
		if lo != segBase || (hi%64 != 0 && hi != n) {
			scratch = append(scratch[:0], mask...)
			off := lo - segBase
			for j := 0; j < off/64; j++ {
				scratch[j] = 0
			}
			if r := off % 64; r != 0 {
				scratch[off/64] &= ^uint64(0) << uint(r)
			}
			if r := hi % 64; r != 0 && hi != n {
				scratch[len(scratch)-1] &= (1 << uint(r)) - 1
			}
			mask = scratch
		}
		if !bitset.AnyWords(mask) {
			wtick += len(mask)
			continue
		}
		segPass := 0
		for j, w := range mask {
			if (wtick+j)%(ctxCheckRows/64) == 0 {
				if err := ctx.Err(); err != nil {
					ss.err = ctxErr(err)
					return
				}
			}
			base := segBase + j*64
			for w != 0 {
				r := base + bits.TrailingZeros64(w)
				w &= w - 1
				if vg == nil {
					vg = ss.lookup(vKey{}, r)
				}
				vg.g.Lineage = append(vg.g.Lineage, r)
				segPass++
			}
		}
		wtick += len(mask)
		k := segBase / segRows
		for ai := range p.args {
			fa := vg.fas[ai]
			if p.args[ai].kind == argConst1 {
				// count(*): one AddFloat(1) per surviving row, exactly
				// what scanRow feeds it — NULLs count, like the scalar
				// reference.
				for i := 0; i < segPass; i++ {
					fa.AddFloat(1)
				}
				continue
			}
			vals, null := ss.argFC[ai].Chunk(k)
			agg.FoldMasked(fa, vals, null, mask)
		}
	}
}

// countSkips counts the out-of-core segments wholly inside this
// shard's range whose filter words are all zero. The bitmap loop below
// never calls scanRow for them, so they are served entirely without
// disk — typically because zone-map pruning zeroed their mask chunks.
// A segment straddling a shard boundary (sub-segment sharding on small
// tables) is not counted by either shard.
func (ss *shardScan) countSkips(words []uint64) {
	segRows := ss.plan.src.SegRows()
	for k := (ss.lo + segRows - 1) / segRows; (k+1)*segRows <= ss.hi; k++ {
		if !ss.plan.src.SegmentFaultable(k) {
			continue
		}
		if !bitset.AnyWords(words[k*segRows/64 : (k+1)*segRows/64]) {
			ss.segsSkipped++
		}
	}
}

// mergeShards combines per-shard group states in shard order. Because
// shard row ranges are ascending and contiguous, visiting shard 0's
// groups first (in their local first-appearance order), then each later
// shard's unseen groups, reproduces the sequential scan's group order
// exactly; concatenating lineage in shard order keeps it ascending.
func mergeShards(p *vectorPlan, states []*shardScan) ([]*vGroup, error) {
	if len(states) == 1 {
		return states[0].groups, nil
	}
	total := newShardScan(p, 0, 0) // reuse its lookup structures
	var merged []*vGroup
	for _, ss := range states {
		for _, vg := range ss.groups {
			var tgt *vGroup
			switch {
			case total.dense != nil:
				if gi := total.dense[vg.key[0]]; gi != 0 {
					tgt = merged[gi-1]
				} else {
					total.dense[vg.key[0]] = int32(len(merged)) + 1
				}
			case total.h1 != nil:
				if gi, ok := total.h1[vg.key[0]]; ok {
					tgt = merged[gi]
				} else {
					total.h1[vg.key[0]] = int32(len(merged))
				}
			case total.hN != nil:
				if gi, ok := total.hN[vg.key]; ok {
					tgt = merged[gi]
				} else {
					total.hN[vg.key] = int32(len(merged))
				}
			default:
				if len(merged) > 0 {
					tgt = merged[0]
				}
			}
			if tgt == nil {
				merged = append(merged, vg)
				continue
			}
			tgt.g.Lineage = append(tgt.g.Lineage, vg.g.Lineage...)
			for ai := range tgt.g.Aggs {
				m, ok := tgt.g.Aggs[ai].(agg.Merger)
				if !ok || !m.Merge(vg.g.Aggs[ai]) {
					return nil, errVectorAbort
				}
			}
		}
	}
	return merged, nil
}

// shardCount picks the scan partition count. An explicit Options.Shards
// is honored as given (capped at one bitset word — 64 rows — per
// shard, the alignment floor); the automatic choice additionally keeps
// every shard above minShardRows so setup and merge never dominate.
func shardCount(p *vectorPlan, n int, opts Options) int {
	if !p.mergeable {
		return 1
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
		if max := (n + minShardRows - 1) / minShardRows; shards > max {
			shards = max
		}
	}
	if max := (n + 63) / 64; shards > max {
		shards = max
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// shardRanges splits [0, n) into nshards contiguous ranges aligned to
// segment boundaries when there are enough segments to go around —
// each shard then owns a whole number of segments, so its filter
// words, view chunks and mask chunks never straddle another shard's
// cache lines and per-shard state is reusable across batches of the
// same geometry. A table with fewer segments than shards (small tables
// under the 64Ki default geometry) splits on bitset-word boundaries
// instead: every invariant the scan relies on is word-level, so
// 64-row-aligned sub-segment shards keep the pool busy without
// straddling any mask word.
func shardRanges(n, segRows, nshards int) [][2]int {
	unit := segRows
	if nsegs := (n + segRows - 1) / segRows; nsegs < nshards {
		unit = 64
	}
	nunits := (n + unit - 1) / unit
	if nshards > nunits {
		nshards = nunits
	}
	per := (nunits + nshards - 1) / nshards
	out := make([][2]int, 0, nshards)
	for s := 0; s < nunits; s += per {
		lo := s * unit
		hi := (s + per) * unit
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// adaptiveShardRanges splits [0, n) into at most nshards contiguous,
// 64-row-aligned ranges balanced by *surviving* filter popcount rather
// than raw row count. shardRanges' fixed whole-segment split serializes
// a scan whenever zone-map pruning zeroes all but one segment: every
// surviving row lands in one shard while the rest count zeros. Here
// skipped segments contribute nothing to the range math — they ride
// along inside whichever range surrounds them (always whole, so
// countSkips still sees them wholly inside one shard) — and a hot
// segment carrying more than one shard's share of survivors is
// subdivided on bitset-word boundaries, the finest granularity at which
// shard ranges never straddle a mask word.
//
// Every emitted cut closes a range holding at least
// target = ceil(totalPop/nshards) surviving rows, so at most nshards
// ranges come back, non-overlapping and exhaustive over [0, n).
func adaptiveShardRanges(n, segRows, nshards int, filter *bitset.Bitset) [][2]int {
	words := filter.Words()
	nwords := (n + 63) / 64
	words = words[:nwords]
	total := bitset.CountWords(words)
	if total == 0 || nshards <= 1 {
		// Nothing survives the filter (or one shard): a single range —
		// the scan only counts skips and touches no rows.
		return [][2]int{{0, n}}
	}
	target := (total + nshards - 1) / nshards
	segWords := segRows / 64 // segment boundaries are word boundaries
	out := make([][2]int, 0, nshards)
	lo, acc := 0, 0 // current range start (words) and its popcount
	cut := func(hiWord int) {
		hiRow := hiWord * 64
		if hiRow > n {
			hiRow = n
		}
		out = append(out, [2]int{lo * 64, hiRow})
		lo, acc = hiWord, 0
	}
	for segLo := 0; segLo < nwords; segLo += segWords {
		segHi := segLo + segWords
		if segHi > nwords {
			segHi = nwords
		}
		segPop := bitset.CountWords(words[segLo:segHi])
		if segPop > target && len(out) < nshards-1 {
			// Hot segment: more survivors than one shard's share.
			// Subdivide on word boundaries, continuing the running range.
			for wi := segLo; wi < segHi; wi++ {
				acc += bits.OnesCount64(words[wi])
				if acc >= target && len(out) < nshards-1 {
					cut(wi + 1)
				}
			}
			continue
		}
		acc += segPop
		if acc >= target && len(out) < nshards-1 {
			cut(segHi)
		}
	}
	if lo*64 < n {
		cut(nwords)
	}
	return out
}

// runVector executes a grouped statement through the vectorized
// pipeline. A non-empty reason (with nil Result and error) means the
// caller should run the boxed reference scan instead.
func runVector(ctx context.Context, src *engine.Table, stmt *sqlparse.SelectStmt, aggArgs []expr.Expr, aggItems []int, protos []agg.Func, opts Options) (*Result, string, error) {
	p, reason, err := planVector(ctx, src, stmt, aggArgs, protos, opts, 0)
	if err != nil {
		return nil, "", err
	}
	if reason != "" {
		return nil, reason, nil
	}

	n := src.NumRows()
	segRows := src.SegRows()
	nshards := shardCount(p, n, opts)
	states := make([]*shardScan, 0, nshards)
	if nshards == 1 {
		ss := newShardScan(p, 0, n)
		ss.run()
		states = append(states, ss)
	} else {
		ranges := shardRanges(n, segRows, nshards)
		if p.filter != nil {
			ranges = adaptiveShardRanges(n, segRows, nshards, p.filter)
		}
		for _, r := range ranges {
			states = append(states, newShardScan(p, r[0], r[1]))
		}
		nshards = len(states)
		var wg sync.WaitGroup
		for _, ss := range states {
			wg.Add(1)
			go func(ss *shardScan) {
				defer wg.Done()
				ss.run()
			}(ss)
		}
		wg.Wait()
	}
	// The lowest-indexed shard's error corresponds to the earliest
	// erroring row — the error the sequential scan would have hit.
	for _, ss := range states {
		if ss.err != nil {
			if errors.Is(ss.err, errVectorAbort) {
				return nil, "computed group key produced a string", nil
			}
			return nil, "", ss.err
		}
	}

	merged, err := mergeShards(p, states)
	if err != nil {
		if errors.Is(err, errVectorAbort) {
			return nil, "shard states did not merge", nil
		}
		return nil, "", err
	}

	// Materialize the boxed key values once per group (the reference
	// scan evaluates them per row; per group is enough for output).
	groups := make([]*Group, len(merged))
	if len(stmt.GroupBy) > 0 {
		row := make([]engine.Value, src.NumCols())
		rr := src.NewRowReader()
		defer rr.Close()
		for i, vg := range merged {
			rr.RowInto(vg.g.FirstRow, row)
			vg.g.Key = make([]engine.Value, len(stmt.GroupBy))
			for k, g := range stmt.GroupBy {
				v, err := g.Eval(row)
				if err != nil {
					return nil, "", err
				}
				vg.g.Key[k] = v
			}
			groups[i] = vg.g
		}
	} else {
		for i, vg := range merged {
			groups[i] = vg.g
		}
	}

	plan := PlanInfo{
		Vectorized: true, WhereLowered: p.lowered, Shards: nshards,
		FilterConjuncts:      p.fstats.conjuncts,
		FilterOrder:          p.fstats.order,
		FilterShortCircuited: p.fstats.shortCircuited,
		ResidualConjuncts:    p.fstats.residualConjuncts,
		ResidualRows:         p.fstats.residualRows,
		FilterFallback:       p.fstats.fallback,
		MaskedAgg:            p.maskedAgg,
	}
	for _, ss := range states {
		plan.SegsSkipped += ss.segsSkipped
		plan.ChunksFaulted += ss.chunksFaulted
		plan.ChunksResident += ss.chunksResident
	}
	res := &Result{
		Stmt: stmt, Source: src, Groups: groups,
		aggArgs: aggArgs, aggItems: aggItems,
		Plan: plan,
	}
	if err := res.materialize(); err != nil {
		return nil, "", err
	}
	return res, "", nil
}
