package exec

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/sqlparse"
)

// tinySegTable rebuilds a parityTable's rows into a minimum-segment
// table so short chains straddle seal and retention boundaries.
func tinySegTable(rng *rand.Rand, nrows int) *engine.Table {
	src := parityTable(rng, nrows)
	tbl, err := engine.NewTableSeg("p", src.Schema(), engine.MinSegmentBits)
	if err != nil {
		panic(err)
	}
	rows := make([][]engine.Value, nrows)
	for r := 0; r < nrows; r++ {
		rows[r] = src.Row(r)
	}
	if nrows == 0 {
		return tbl
	}
	tbl, err = tbl.AppendBatch(rows)
	if err != nil {
		panic(err)
	}
	return tbl
}

// boundaryBatchSize draws an append batch size biased to land exactly
// on, one under, or one over the next segment boundary.
func boundaryBatchSize(rng *rand.Rand, t *engine.Table) int {
	segRows := t.SegRows()
	toBoundary := segRows - t.NumRows()%segRows
	switch rng.Intn(6) {
	case 0:
		return toBoundary
	case 1:
		if toBoundary > 1 {
			return toBoundary - 1
		}
		return 1
	case 2:
		return toBoundary + 1
	case 3:
		return toBoundary + segRows
	default:
		return 1 + rng.Intn(2*segRows)
	}
}

// These tests pin Advance across retention horizons: dropping head
// segments rebases row ids, and a carried result must either rebase
// its state by pure id translation (when nothing it references was
// dropped) or fall back to a full re-run over the retained window with
// a recorded plan reason — and in both cases the produced result must
// be bit-identical to a from-scratch reference scan of the retained
// table. Tables are forced to the minimum segment size so the short
// chains straddle many seal and retention boundaries.

// TestAdvanceRetentionParity interleaves boundary-straddling append
// batches with randomized retention passes and checks the advanced
// result against the scalar oracle at every step.
func TestAdvanceRetentionParity(t *testing.T) {
	sawDrop, sawFallback := false, false
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed * 733))
		tbl := tinySegTable(rng, 100+rng.Intn(200))
		for iter := 0; iter < 12; iter++ {
			stmt, _ := randStmt(rng)
			sql := stmt.String()
			cur := tbl
			res, err := RunOn(cur, stmt)
			if err != nil {
				continue
			}
			for step := 0; step < 3; step++ {
				grown, err := cur.AppendBatch(batchRows(rng, boundaryBatchSize(rng, cur)))
				if err != nil {
					t.Fatalf("seed %d iter %d step %d: AppendBatch: %v", seed, iter, step, err)
				}
				cur = grown
				var dropped int
				if rng.Intn(2) == 0 {
					keep := cur.SegRows() * (1 + rng.Intn(4))
					nt, stats, err := cur.RetainTail(engine.RetentionPolicy{MaxRows: keep})
					if err != nil {
						t.Fatal(err)
					}
					cur, dropped = nt, stats.DroppedRows
					if dropped > 0 {
						sawDrop = true
					}
				}
				adv, err := Advance(res, cur)
				if err != nil {
					t.Fatalf("seed %d iter %d step %d: Advance: %v\nsql: %s", seed, iter, step, err, sql)
				}
				if dropped > 0 && !adv.Plan.Incremental {
					if adv.Plan.Fallback == "" {
						t.Fatalf("seed %d iter %d step %d: retention fallback without a recorded reason\nsql: %s", seed, iter, step, sql)
					}
					sawFallback = true
				}
				ref, err := RunOnWith(cur, stmt, Options{ForceScalar: true})
				if err != nil {
					t.Fatalf("seed %d iter %d step %d: reference run: %v\nsql: %s", seed, iter, step, err, sql)
				}
				label := fmt.Sprintf("seed %d iter %d step %d drop %d [%s]", seed, iter, step, dropped, sql)
				tablesEqual(t, label, ref.Table, adv.Table)
				groupsEqual(t, label, ref, adv)
				res = adv
			}
			tbl = cur
		}
	}
	if !sawDrop || !sawFallback {
		t.Fatalf("harness coverage: sawDrop=%v sawFallback=%v", sawDrop, sawFallback)
	}
}

// retentionRebaseFixture builds a tiny-segment table whose float
// column x equals the row's stream index, so a WHERE x >= cutoff
// statement provably never touches rows an aligned retention pass
// drops — the case where carried state rebases instead of falling
// back.
func retentionRebaseFixture(t *testing.T, rows int) *engine.Table {
	t.Helper()
	tbl, err := engine.NewTableSeg("m", engine.NewSchema("x", engine.TFloat, "j", engine.TInt), engine.MinSegmentBits)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([][]engine.Value, rows)
	for i := range batch {
		batch[i] = []engine.Value{engine.NewFloat(float64(i)), engine.NewInt(int64(i % 3))}
	}
	tbl, err = tbl.AppendBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func retentionStmt(t *testing.T, cutoff float64) *sqlparse.SelectStmt {
	t.Helper()
	stmt, err := sqlparse.Parse(fmt.Sprintf(
		"SELECT j, sum(x) AS s, count(*) AS c FROM m WHERE x >= %v GROUP BY j", cutoff))
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}

// TestAdvanceRetentionRebase drives the pure-translation path: the
// statement's WHERE excludes every dropped row, so Advance keeps the
// carried group states (Plan.Incremental) and just shifts ids — and
// the rebased result, its lineage bitsets and its argument views must
// all equal fresh builds over the retained table.
func TestAdvanceRetentionRebase(t *testing.T) {
	tbl := retentionRebaseFixture(t, 5*64+10)
	stmt := retentionStmt(t, 4*64) // only the newest segment-and-a-bit matches
	res, err := RunOn(tbl, stmt)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the carried caches so the rebase path has something to carry.
	for ri := range res.Groups {
		res.GroupLineageBitsShared(ri)
	}
	if _, err := res.AggArgFloats(0); err != nil {
		t.Fatal(err)
	}

	grown, err := tbl.AppendBatch([][]engine.Value{
		{engine.NewFloat(5*64 + 10), engine.NewInt(1)},
		{engine.NewFloat(5*64 + 11), engine.NewInt(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	cur, stats, err := grown.RetainTail(engine.RetentionPolicy{MaxRows: 2 * 64})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DroppedRows == 0 || stats.DroppedRows >= 4*64 {
		t.Fatalf("fixture drop = %d rows, want (0, %d)", stats.DroppedRows, 4*64)
	}

	adv, err := Advance(res, cur)
	if err != nil {
		t.Fatal(err)
	}
	if !adv.Plan.Incremental {
		t.Fatalf("expected the rebase path, got plan %+v", adv.Plan)
	}
	ref, err := RunOnWith(cur, stmt, Options{ForceScalar: true})
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, "rebase", ref.Table, adv.Table)
	groupsEqual(t, "rebase", ref, adv)

	// Carried caches: rebased lineage bitsets and argument views must
	// equal fresh builds over the retained table.
	fresh, err := RunOn(cur, stmt)
	if err != nil {
		t.Fatal(err)
	}
	for ri := range adv.Groups {
		got, want := adv.GroupLineageBitsShared(ri), fresh.GroupLineageBitsShared(ri)
		if got.Len() != want.Len() || got.Count() != want.Count() {
			t.Fatalf("group %d lineage bits: len %d/%d count %d/%d", ri, got.Len(), want.Len(), got.Count(), want.Count())
		}
		for r := 0; r < got.Len(); r++ {
			if got.Get(r) != want.Get(r) {
				t.Fatalf("group %d lineage bit %d differs", ri, r)
			}
		}
	}
	gotAV, err := adv.AggArgFloats(0)
	if err != nil {
		t.Fatal(err)
	}
	wantAV, err := fresh.AggArgFloats(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotAV.Vals) != len(wantAV.Vals) {
		t.Fatalf("rebased ArgView length %d, want %d", len(gotAV.Vals), len(wantAV.Vals))
	}
	for i := range gotAV.Vals {
		same := gotAV.Vals[i] == wantAV.Vals[i] || (gotAV.Vals[i] != gotAV.Vals[i] && wantAV.Vals[i] != wantAV.Vals[i])
		if !same || gotAV.Null.Get(i) != wantAV.Null.Get(i) {
			t.Fatalf("rebased ArgView row %d differs", i)
		}
	}

	// A statement whose groups DO reference dropped rows must fall back
	// with a retention reason.
	all, err := sqlparse.Parse("SELECT j, sum(x) AS s FROM m GROUP BY j")
	if err != nil {
		t.Fatal(err)
	}
	resAll, err := RunOn(tbl, all)
	if err != nil {
		t.Fatal(err)
	}
	advAll, err := Advance(resAll, cur)
	if err != nil {
		t.Fatal(err)
	}
	if advAll.Plan.Incremental {
		t.Fatal("full-window statement must not rebase across retention")
	}
	if advAll.Plan.Fallback == "" {
		t.Fatalf("retention fallback reason missing: %+v", advAll.Plan)
	}
	refAll, err := RunOnWith(cur, all, Options{ForceScalar: true})
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, "fallback", refAll.Table, advAll.Table)
	groupsEqual(t, "fallback", refAll, advAll)
}

// TestAdvanceRetentionBeyondWindow is a regression test: a carried
// result with NO groups (WHERE matched nothing) whose entire window is
// dropped by retention used to slip past the rebase checks with a
// negative suffix start and panic in the shard scan. It must fall back
// with a retention reason instead.
func TestAdvanceRetentionBeyondWindow(t *testing.T) {
	tbl := retentionRebaseFixture(t, 64)
	stmt := retentionStmt(t, 1e9) // matches nothing: zero groups
	res, err := RunOn(tbl, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 0 {
		t.Fatalf("fixture expected no groups, got %d", len(res.Groups))
	}
	cur := tbl
	for i := 0; i < 9; i++ { // grow well past the carried window
		batch := make([][]engine.Value, 64)
		for j := range batch {
			batch[j] = []engine.Value{engine.NewFloat(float64(cur.NumRows() + j)), engine.NewInt(0)}
		}
		cur, err = cur.AppendBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
	}
	cur, stats, err := cur.RetainTail(engine.RetentionPolicy{MaxRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DroppedRows <= 64 {
		t.Fatalf("fixture needs the horizon past the carried window, dropped %d", stats.DroppedRows)
	}
	adv, err := Advance(res, cur)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Plan.Incremental || adv.Plan.Fallback == "" {
		t.Fatalf("expected recorded retention fallback, got %+v", adv.Plan)
	}
	ref, err := RunOnWith(cur, stmt, Options{ForceScalar: true})
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, "beyond-window", ref.Table, adv.Table)
}

// TestSubSegmentSharding: a table far smaller than one default segment
// must still honor an explicit shard count by splitting on bitset-word
// boundaries, with output identical to the single-shard run.
func TestSubSegmentSharding(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tbl := parityTable(rng, 1000) // default 64Ki segments: 1 partial tail
	sql := `SELECT s, sum(f) AS x, count(*) AS c FROM p GROUP BY s`
	one, err := RunOnWith(tbl, mustParse(t, sql), Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := RunOnWith(tbl, mustParse(t, sql), Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if many.Plan.Shards != 4 {
		t.Fatalf("explicit 4-shard run used %d shards", many.Plan.Shards)
	}
	tablesEqual(t, sql, one.Table, many.Table)
	groupsEqual(t, sql, one, many)
	// Shard boundaries must sit on word boundaries.
	for _, r := range shardRanges(1000, tbl.SegRows(), 4) {
		if r[0]%64 != 0 {
			t.Fatalf("shard start %d not word-aligned", r[0])
		}
	}
}

// TestAdvanceRetentionSortCarry pins ORDER BY carry across a retention
// pass: a windowed statement that rebases (its WHERE provably excludes
// every dropped row) must also carry its ORDER BY — merging changed and
// suffix-born groups into the carried order instead of re-sorting — and
// stay identical to a fresh ordered run over the retained table.
// Extending the carry to full-window statements is ruled out by
// TestAdvanceRetentionRebase: those must NOT rebase in the first place.
func TestAdvanceRetentionSortCarry(t *testing.T) {
	tbl := retentionRebaseFixture(t, 5*64+10)
	stmt, err := sqlparse.Parse(
		"SELECT j, sum(x) AS s, count(*) AS c FROM m WHERE x >= 256 GROUP BY j ORDER BY s DESC, j")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOn(tbl, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 3 {
		t.Fatalf("fixture expected 3 ordered groups, got %d", len(res.Groups))
	}

	// Append rows skewed toward j=0 so the carried order must move a
	// changed group, not just keep the old permutation.
	base := tbl.NumRows()
	batch := make([][]engine.Value, 40)
	for i := range batch {
		j := int64(0)
		if i%4 == 0 {
			j = int64(i % 3)
		}
		batch[i] = []engine.Value{engine.NewFloat(float64(base + i)), engine.NewInt(j)}
	}
	grown, err := tbl.AppendBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	cur, stats, err := grown.RetainTail(engine.RetentionPolicy{MaxRows: 2 * 64})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DroppedRows == 0 {
		t.Fatal("fixture dropped nothing: retention not exercised")
	}

	adv, err := Advance(res, cur)
	if err != nil {
		t.Fatal(err)
	}
	if !adv.Plan.Incremental || !adv.Plan.SortCarried || adv.Plan.Fallback != "" {
		t.Fatalf("retention advance lost the ordered carry: %+v", adv.Plan)
	}
	ref, err := RunOnWith(cur, stmt, Options{ForceScalar: true})
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, "retention-order-carry", ref.Table, adv.Table)
	groupsEqual(t, "retention-order-carry", ref, adv)

	// Control: the carry is a pure optimization — a NoSortCarry advance
	// over the same chain re-sorts and must produce the same rows.
	res2, err := RunOn(tbl, stmt)
	if err != nil {
		t.Fatal(err)
	}
	adv2, err := AdvanceWith(context.Background(), res2, cur, Options{NoSortCarry: true})
	if err != nil {
		t.Fatal(err)
	}
	if adv2.Plan.SortCarried {
		t.Fatalf("NoSortCarry control still carried: %+v", adv2.Plan)
	}
	tablesEqual(t, "retention-order-resort", adv2.Table, adv.Table)
}
