package exec

import (
	"context"
	"sort"

	"repro/internal/bitset"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/predicate"
)

// This file is the WHERE half of the vectorized pipeline: it lowers
// predicate-shaped WHERE trees — comparisons between a column and a
// constant, IS NULL, BETWEEN and IN over constants, combined with
// AND/OR/NOT — onto the cached clause masks of predicate.Index, so
// filter evaluation becomes a handful of bitmap operations instead of a
// per-row tree walk.
//
// SQL WHERE is three-valued: a row passes only when the expression is
// TRUE, and NOT must map NULL to NULL, not to TRUE. Lowering therefore
// tracks a pair of masks per node — rows where the expression is TRUE
// and rows where it is FALSE; rows in neither are NULL — and the
// combinators follow Kleene logic:
//
//	AND:  T = T₁∧T₂   F = F₁∨F₂
//	OR:   T = T₁∨T₂   F = F₁∧F₂
//	NOT:  T = F₁      F = T₁
//
// A comparison leaf gets T from the clause mask (whose semantics are
// pinned bit-for-bit to the scalar evaluator by the predicate package's
// parity test) and F = nonNull(column) \ T. Anything the lowerer cannot
// express — arithmetic inside a comparison, column-to-column
// comparisons, LIKE, scalar function calls — makes the whole tree
// non-lowerable and the executor falls back to per-row expr.EvalBool.

// tableIndex returns the table family's shared predicate index
// (predicate.Shared — one set of clause masks per family, shared with
// the ranker's candidate scoring). The index implements
// engine.RowSynced, so the aux cache rebases it onto t when t is a
// grown copy-on-write version — cached clause masks then extend by
// decoding only the appended suffix.
func tableIndex(t *engine.Table) *predicate.Index {
	return predicate.Shared(t)
}

// lowerCtx carries the index together with the exact table version the
// statement is executing against. Masks are always requested at
// src.NumRows() AND src.Base(), never at the index's own (possibly
// newer) geometry, so a query running mid-append sees masks of exactly
// its snapshot's length — and a query racing a retention pass (whose
// base the index has already rebased past) refuses the lowered path
// instead of reading masks of a different row-id window. ok=false from
// either accessor aborts lowering; the executor then evaluates WHERE
// per row, which is always correct.
type lowerCtx struct {
	ix   *predicate.Index
	src  *engine.Table
	base int
}

func (lc lowerCtx) clauseBits(c predicate.Clause) (*bitset.Bitset, bool) {
	return lc.ix.ClauseBitsAtBase(c, lc.base, lc.src.NumRows())
}

func (lc lowerCtx) nonNullBits(ci int) (*bitset.Bitset, bool) {
	return lc.ix.NonNullBitsAtBase(ci, lc.base, lc.src.NumRows())
}

func (lc lowerCtx) clauseCount(c predicate.Clause) (int, bool) {
	return lc.ix.ClauseCountAtBase(c, lc.base, lc.src.NumRows())
}

func (lc lowerCtx) nonNullCount(ci int) (int, bool) {
	return lc.ix.NonNullCountAtBase(ci, lc.base, lc.src.NumRows())
}

// tfMask is a node's three-valued result: t holds the rows where it is
// TRUE, f the rows where it is FALSE; rows in neither are NULL. Leaf
// masks may alias shared cached bitsets — combinators always allocate
// fresh outputs and never mutate inputs.
type tfMask struct {
	t, f *bitset.Bitset
}

// lowerWhere lowers a resolved WHERE tree to the mask of passing rows
// (TRUE rows; NULL counts as not passing, matching expr.EvalBool). The
// returned bitset may alias a shared clause mask and must be treated as
// read-only. ok is false when the tree contains a non-lowerable node;
// aborted further distinguishes an index geometry mismatch (the masks
// exist conceptually but not at this table version's base/length stamp)
// from a predicate shape lowering does not express — the two reasons
// the canonical fallback vocabulary keeps apart.
func lowerWhere(e expr.Expr, lc lowerCtx) (*bitset.Bitset, bool, bool) {
	m, ok, aborted := lowerTF(e, lc)
	if !ok {
		return nil, false, aborted
	}
	return m.t, true, false
}

func lowerTF(e expr.Expr, lc lowerCtx) (tfMask, bool, bool) {
	n := lc.src.NumRows()
	switch node := e.(type) {
	case *expr.Lit:
		// A constant condition: TRUE/FALSE for every row, or NULL for a
		// NULL literal (neither mask set).
		m := tfMask{t: bitset.New(n), f: bitset.New(n)}
		if !node.Val.IsNull() {
			if node.Val.Bool() {
				m.t.Fill()
			} else {
				m.f.Fill()
			}
		}
		return m, true, false

	case *expr.Not:
		m, ok, aborted := lowerTF(node.X, lc)
		if !ok {
			return tfMask{}, false, aborted
		}
		return tfMask{t: m.f, f: m.t}, true, false

	case *expr.Bin:
		if node.Op.IsLogic() {
			l, ok, aborted := lowerTF(node.L, lc)
			if !ok {
				return tfMask{}, false, aborted
			}
			r, ok, aborted := lowerTF(node.R, lc)
			if !ok {
				return tfMask{}, false, aborted
			}
			out := tfMask{t: bitset.New(n), f: bitset.New(n)}
			if node.Op == expr.OpAnd {
				out.t.IntersectOf(l.t, r.t)
				out.f.CopyFrom(l.f)
				out.f.Or(r.f)
			} else {
				out.t.CopyFrom(l.t)
				out.t.Or(r.t)
				out.f.IntersectOf(l.f, r.f)
			}
			return out, true, false
		}
		if node.Op.IsComparison() {
			return lowerComparison(node, lc)
		}
		return tfMask{}, false, false // arithmetic has no boolean lowering

	case *expr.IsNull:
		col, ok := node.X.(*expr.Col)
		if !ok {
			return tfMask{}, false, false
		}
		ci := lc.src.Schema().ColIndex(col.Name)
		if ci < 0 {
			return tfMask{}, false, false
		}
		nonNull, ok := lc.nonNullBits(ci)
		if !ok {
			return tfMask{}, false, true
		}
		isNull := bitset.New(n)
		isNull.Fill()
		isNull.AndNot(nonNull)
		if node.Invert { // IS NOT NULL
			return tfMask{t: nonNull, f: isNull}, true, false
		}
		return tfMask{t: isNull, f: nonNull}, true, false

	case *expr.Between:
		col, ok := node.X.(*expr.Col)
		if !ok {
			return tfMask{}, false, false
		}
		lo, okLo := node.Lo.(*expr.Lit)
		hi, okHi := node.Hi.(*expr.Lit)
		if !okLo || !okHi {
			return tfMask{}, false, false
		}
		ci := lc.src.Schema().ColIndex(col.Name)
		if ci < 0 {
			return tfMask{}, false, false
		}
		if lo.Val.IsNull() || hi.Val.IsNull() {
			// NULL bound: the range test is NULL for every row.
			return tfMask{t: bitset.New(n), f: bitset.New(n)}, true, false
		}
		colType := lc.src.Schema()[ci].Type
		if !literalComparable(colType, lo.Val) || !literalComparable(colType, hi.Val) {
			return tfMask{}, false, false // scalar path would error; keep it
		}
		geBits, okGe := lc.clauseBits(predicate.Clause{Col: col.Name, Op: predicate.OpGe, Val: lo.Val})
		leBits, okLe := lc.clauseBits(predicate.Clause{Col: col.Name, Op: predicate.OpLe, Val: hi.Val})
		nn, okNN := lc.nonNullBits(ci)
		if !okGe || !okLe || !okNN {
			return tfMask{}, false, true
		}
		t := bitset.New(n)
		t.IntersectOf(geBits, leBits)
		f := nn.Clone()
		f.AndNot(t)
		if node.Invert {
			return tfMask{t: f, f: t}, true, false
		}
		return tfMask{t: t, f: f}, true, false

	case *expr.In:
		col, ok := node.X.(*expr.Col)
		if !ok {
			return tfMask{}, false, false
		}
		ci := lc.src.Schema().ColIndex(col.Name)
		if ci < 0 {
			return tfMask{}, false, false
		}
		t := bitset.New(n)
		sawNull := false
		for _, e := range node.List {
			lit, ok := e.(*expr.Lit)
			if !ok {
				return tfMask{}, false, false
			}
			if lit.Val.IsNull() {
				sawNull = true
				continue
			}
			// Equality against an incomparable literal type matches
			// nothing in both paths (engine.Equal treats incomparable as
			// unequal, the clause mask stays empty), so every literal
			// lowers.
			eq, ok := lc.clauseBits(predicate.Clause{Col: col.Name, Op: predicate.OpEq, Val: lit.Val})
			if !ok {
				return tfMask{}, false, true
			}
			t.Or(eq)
		}
		f := bitset.New(n)
		if !sawNull {
			// With a NULL in the list, non-matching rows are NULL (x
			// might equal the NULL), so F stays empty.
			nn, ok := lc.nonNullBits(ci)
			if !ok {
				return tfMask{}, false, true
			}
			f.CopyFrom(nn)
			f.AndNot(t)
		}
		if node.Invert {
			return tfMask{t: f, f: t}, true, false
		}
		return tfMask{t: t, f: f}, true, false

	default:
		// Bare columns, function calls, LIKE, …: not lowerable.
		return tfMask{}, false, false
	}
}

// lowerComparison lowers "column op constant" (either operand order)
// onto one clause mask.
func lowerComparison(node *expr.Bin, lc lowerCtx) (tfMask, bool, bool) {
	n := lc.src.NumRows()
	col, lit, op, ok := comparisonShape(node)
	if !ok {
		return tfMask{}, false, false
	}
	ci := lc.src.Schema().ColIndex(col.Name)
	if ci < 0 {
		return tfMask{}, false, false
	}
	if lit.Val.IsNull() {
		// Comparison with a NULL constant is NULL for every row.
		return tfMask{t: bitset.New(n), f: bitset.New(n)}, true, false
	}
	if !literalComparable(lc.src.Schema()[ci].Type, lit.Val) {
		// The scalar evaluator errors on incomparable comparison
		// operands; don't lower, so the error surfaces identically.
		return tfMask{}, false, false
	}
	t, okT := lc.clauseBits(predicate.Clause{Col: col.Name, Op: op, Val: lit.Val})
	nn, okNN := lc.nonNullBits(ci)
	if !okT || !okNN {
		return tfMask{}, false, true
	}
	f := nn.Clone()
	f.AndNot(t)
	return tfMask{t: t, f: f}, true, false
}

// comparisonShape extracts the (column, constant, clause op) of a
// comparison, flipping the operator when the constant is on the left
// (5 < x  ⇔  x > 5).
func comparisonShape(node *expr.Bin) (*expr.Col, *expr.Lit, predicate.Op, bool) {
	op, ok := clauseOp(node.Op)
	if !ok {
		return nil, nil, 0, false
	}
	if col, ok := node.L.(*expr.Col); ok {
		if lit, ok := node.R.(*expr.Lit); ok {
			return col, lit, op, true
		}
	}
	if lit, ok := node.L.(*expr.Lit); ok {
		if col, ok := node.R.(*expr.Col); ok {
			return col, lit, flipOp(op), true
		}
	}
	return nil, nil, 0, false
}

func clauseOp(op expr.BinOp) (predicate.Op, bool) {
	switch op {
	case expr.OpEq:
		return predicate.OpEq, true
	case expr.OpNeq:
		return predicate.OpNeq, true
	case expr.OpLt:
		return predicate.OpLt, true
	case expr.OpLe:
		return predicate.OpLe, true
	case expr.OpGt:
		return predicate.OpGt, true
	case expr.OpGe:
		return predicate.OpGe, true
	default:
		return 0, false
	}
}

func flipOp(op predicate.Op) predicate.Op {
	switch op {
	case predicate.OpLt:
		return predicate.OpGt
	case predicate.OpLe:
		return predicate.OpGe
	case predicate.OpGt:
		return predicate.OpLt
	case predicate.OpGe:
		return predicate.OpLe
	default: // = and != are symmetric
		return op
	}
}

// literalComparable reports whether engine.Compare is defined between
// values of a column's type and a literal — the condition under which
// the clause mask and the scalar evaluator agree (and neither errors).
func literalComparable(colType engine.Type, lit engine.Value) bool {
	if colType.IsNumeric() && lit.T.IsNumeric() {
		return true
	}
	return colType == engine.TString && lit.T == engine.TString
}

// ---------------------------------------------------------------------
// Mixed-connective ordering and residual masks
//
// The WHERE pass mask of a root-level AND chain is the intersection of
// the conjuncts' TRUE masks — order-independent, and the FALSE masks
// are never consumed (a row passes iff the tree is TRUE). That makes
// the chain a planning opportunity: evaluate the most selective
// conjunct first, AND the rest in ascending estimated-TRUE order
// through the fused AndCountWith kernel, and stop materializing
// entirely once the running mask has no set bits — every remaining
// conjunct can only be skipped, never change the result. Selectivity
// estimates are the clause-mask popcounts predicate.Index caches per
// (base, length) stamp: no table statistics, in the spirit of
// janus-datalog's "greedy beats optimal" ordering result.
//
// Root OR chains get the dual treatment: the pass mask is the union of
// the disjuncts' TRUE masks, folded largest-estimate-first through the
// fused OrCountWith kernel and short-circuited when the running mask
// *fills* — a full union cannot grow, and a filled TRUE mask implies an
// empty FALSE mask, so nothing downstream is lost. One level of nesting
// folds the same way: an OR-chain conjunct inside an AND folds its
// disjuncts with the fill cut (AND-of-OR), an AND-chain disjunct inside
// an OR folds its conjuncts with the empty cut (OR-of-AND).
//
// An AND chain that mixes lowerable and non-lowerable conjuncts (LIKE,
// computed expressions) no longer forfeits the whole chain to the boxed
// per-row scan. The lowerable conjuncts fold into a running mask pair —
// pass (rows still TRUE under every conjunct so far) and elig (rows not
// yet known FALSE under any source-earlier conjunct) — and each
// *residual* conjunct is then evaluated per row only on elig's set
// bits, via bitset.Iter. Eligibility must reflect exactly the conjuncts
// that precede a residual in source order, because that is the set of
// rows the scalar evaluator would reach it on (Kleene AND short-
// circuits only on known FALSE, so NULL rows stay eligible): lowered
// conjuncts may be reordered greedily *within* a run between residuals,
// but never across one, and a guarded conjunct contributes its FALSE
// mask to elig where a trailing one only narrows pass. The residual
// loop can be skipped only when elig is empty — an empty pass alone is
// not enough, since a residual might still error on an eligible row and
// the scalar path would surface that error.
//
// The ordering is exact, not heuristic, about *lowerability*: every
// conjunct and disjunct is probed (or eagerly lowered) before any
// short-circuit decision, so a tree the full Kleene lowering would
// refuse — and whose per-row evaluation might error — is refused here
// too (unless it rides as a residual), never silently truncated to its
// cheap prefix.

// Canonical Plan.FilterFallback vocabulary: every path that abandons
// lowering for the per-row scan records exactly one of these reasons,
// so the greedy and left-to-right paths can never drift apart in how
// they describe the same refusal.
const (
	fallbackFilterShape    = "filter: non-lowerable predicate shape"
	fallbackFilterGeometry = "filter: predicate index geometry mismatch"
	fallbackFilterDisabled = "filter: lowering disabled"
)

// filterStats records the ordering decision for Result.Plan.
type filterStats struct {
	conjuncts         int    // root chain conjuncts/disjuncts (0: not an ordered chain)
	order             []int  // evaluation order, as source-position indexes
	shortCircuited    int    // trailing conjuncts never materialized
	residualConjuncts int    // conjuncts evaluated per-row on surviving bits
	residualRows      int    // total residual per-row evaluations
	fallback          string // canonical reason when the per-row scan ran
}

// flattenAnd appends the non-AND leaves of e's root AND chain to out in
// source (left-to-right) order.
func flattenAnd(e expr.Expr, out []expr.Expr) []expr.Expr {
	if b, ok := e.(*expr.Bin); ok && b.Op == expr.OpAnd {
		out = flattenAnd(b.L, out)
		return flattenAnd(b.R, out)
	}
	return append(out, e)
}

// flattenOr appends the non-OR leaves of e's root OR chain to out in
// source (left-to-right) order.
func flattenOr(e expr.Expr, out []expr.Expr) []expr.Expr {
	if b, ok := e.(*expr.Bin); ok && b.Op == expr.OpOr {
		out = flattenOr(b.L, out)
		return flattenOr(b.R, out)
	}
	return append(out, e)
}

// greedyConjunct is one AND-chain conjunct during planning: its source
// position, estimated TRUE count, and — for subtrees the leaf prober
// does not understand — an eagerly lowered TRUE mask.
type greedyConjunct struct {
	e   expr.Expr
	pos int
	est int
	t   *bitset.Bitset // non-nil: already materialized
}

// probeLeafEst estimates the TRUE-mask popcount of a simple conjunct
// without materializing anything beyond the index's own cached clause
// masks. ok is false when e is not one of the simple leaf shapes (the
// caller then lowers it eagerly) — the checks for the shapes it does
// accept mirror lowerTF exactly, so a conjunct it approves always
// lowers. aborted reports an index base mismatch: the whole lowering
// must be abandoned for the per-row path.
func probeLeafEst(e expr.Expr, lc lowerCtx) (est int, ok, aborted bool) {
	n := lc.src.NumRows()
	switch node := e.(type) {
	case *expr.Lit:
		if !node.Val.IsNull() && node.Val.Bool() {
			return n, true, false
		}
		return 0, true, false

	case *expr.Bin:
		if !node.Op.IsComparison() {
			return 0, false, false
		}
		col, lit, op, ok := comparisonShape(node)
		if !ok {
			return 0, false, false
		}
		ci := lc.src.Schema().ColIndex(col.Name)
		if ci < 0 {
			return 0, false, false
		}
		if lit.Val.IsNull() {
			return 0, true, false
		}
		if !literalComparable(lc.src.Schema()[ci].Type, lit.Val) {
			return 0, false, false
		}
		cnt, okC := lc.clauseCount(predicate.Clause{Col: col.Name, Op: op, Val: lit.Val})
		if !okC {
			return 0, false, true
		}
		return cnt, true, false

	case *expr.IsNull:
		col, ok := node.X.(*expr.Col)
		if !ok {
			return 0, false, false
		}
		ci := lc.src.Schema().ColIndex(col.Name)
		if ci < 0 {
			return 0, false, false
		}
		nn, okC := lc.nonNullCount(ci)
		if !okC {
			return 0, false, true
		}
		if node.Invert {
			return nn, true, false
		}
		return n - nn, true, false

	case *expr.Between:
		col, ok := node.X.(*expr.Col)
		if !ok {
			return 0, false, false
		}
		lo, okLo := node.Lo.(*expr.Lit)
		hi, okHi := node.Hi.(*expr.Lit)
		if !okLo || !okHi {
			return 0, false, false
		}
		ci := lc.src.Schema().ColIndex(col.Name)
		if ci < 0 {
			return 0, false, false
		}
		if lo.Val.IsNull() || hi.Val.IsNull() {
			return 0, true, false // range test is NULL everywhere, T empty
		}
		colType := lc.src.Schema()[ci].Type
		if !literalComparable(colType, lo.Val) || !literalComparable(colType, hi.Val) {
			return 0, false, false
		}
		ge, okGe := lc.clauseCount(predicate.Clause{Col: col.Name, Op: predicate.OpGe, Val: lo.Val})
		le, okLe := lc.clauseCount(predicate.Clause{Col: col.Name, Op: predicate.OpLe, Val: hi.Val})
		nn, okNN := lc.nonNullCount(ci)
		if !okGe || !okLe || !okNN {
			return 0, false, true
		}
		est = ge
		if le < est {
			est = le
		}
		if node.Invert {
			// NOT BETWEEN matches at most the non-NULL rows outside the
			// narrower bound.
			est = nn - est
			if est < 0 {
				est = 0
			}
		}
		return est, true, false

	case *expr.In:
		col, ok := node.X.(*expr.Col)
		if !ok {
			return 0, false, false
		}
		ci := lc.src.Schema().ColIndex(col.Name)
		if ci < 0 {
			return 0, false, false
		}
		sum, sawNull := 0, false
		for _, le := range node.List {
			lit, ok := le.(*expr.Lit)
			if !ok {
				return 0, false, false
			}
			if lit.Val.IsNull() {
				sawNull = true
				continue
			}
			cnt, okC := lc.clauseCount(predicate.Clause{Col: col.Name, Op: predicate.OpEq, Val: lit.Val})
			if !okC {
				return 0, false, true
			}
			sum += cnt
		}
		if sum > n {
			sum = n
		}
		if !node.Invert {
			return sum, true, false
		}
		if sawNull {
			return 0, true, false // NOT IN with a NULL literal is never TRUE
		}
		nn, okNN := lc.nonNullCount(ci)
		if !okNN {
			return 0, false, true
		}
		est = nn - sum
		if est < 0 {
			est = 0
		}
		return est, true, false

	default:
		return 0, false, false
	}
}

// lowerLeafTrue materializes the TRUE mask of a conjunct probeLeafEst
// approved — the T half of lowerTF's result for the same node, without
// building the FALSE mask a root conjunct never needs. The returned
// bitset may alias a shared cached mask (read-only).
func lowerLeafTrue(e expr.Expr, lc lowerCtx) (*bitset.Bitset, bool, bool) {
	n := lc.src.NumRows()
	switch node := e.(type) {
	case *expr.Lit:
		b := bitset.New(n)
		if !node.Val.IsNull() && node.Val.Bool() {
			b.Fill()
		}
		return b, true, false

	case *expr.Bin:
		m, ok, aborted := lowerComparison(node, lc)
		if !ok {
			return nil, false, aborted
		}
		return m.t, true, false

	case *expr.IsNull:
		ci := lc.src.Schema().ColIndex(node.X.(*expr.Col).Name)
		nn, ok := lc.nonNullBits(ci)
		if !ok {
			return nil, false, true
		}
		if node.Invert {
			return nn, true, false
		}
		isNull := bitset.New(n)
		isNull.Fill()
		isNull.AndNot(nn)
		return isNull, true, false

	case *expr.Between, *expr.In:
		m, ok, aborted := lowerTF(e, lc)
		if !ok {
			return nil, false, aborted
		}
		return m.t, true, false
	}
	return nil, false, false
}

// probeLowerable reports whether lowerTF would accept e, without
// materializing any mask: leaves go through probeLeafEst (whose shape
// checks mirror lowerTF exactly) and NOT/AND/OR recurse. aborted
// signals an index geometry mismatch, which abandons the whole
// lowering. This is the classifier the residual path uses to split an
// AND chain into lowerable and residual conjuncts before deciding how
// to materialize each.
func probeLowerable(e expr.Expr, lc lowerCtx) (ok, aborted bool) {
	if _, ok, ab := probeLeafEst(e, lc); ok || ab {
		return ok, ab
	}
	switch node := e.(type) {
	case *expr.Not:
		return probeLowerable(node.X, lc)
	case *expr.Bin:
		if node.Op.IsLogic() {
			ok, ab := probeLowerable(node.L, lc)
			if !ok {
				return false, ab
			}
			return probeLowerable(node.R, lc)
		}
		return false, false
	default:
		return false, false
	}
}

// lowerAndTrue folds a pre-flattened all-lowerable AND chain to its
// TRUE mask in ascending estimated-TRUE order with the empty-mask cut —
// the nested (OR-of-AND) form of the greedy fold, T side only. Every
// conjunct is validated before any short-circuit decision.
func lowerAndTrue(parts []expr.Expr, lc lowerCtx) (*bitset.Bitset, bool, bool) {
	conj := make([]greedyConjunct, len(parts))
	for i, pe := range parts {
		est, simple, aborted := probeLeafEst(pe, lc)
		if aborted {
			return nil, false, true
		}
		if !simple {
			m, ok, aborted := lowerTF(pe, lc)
			if !ok {
				return nil, false, aborted
			}
			conj[i] = greedyConjunct{e: pe, pos: i, est: m.t.Count(), t: m.t}
			continue
		}
		conj[i] = greedyConjunct{e: pe, pos: i, est: est}
	}
	sort.SliceStable(conj, func(a, b int) bool { return conj[a].est < conj[b].est })
	var running *bitset.Bitset
	count := -1
	for _, c := range conj {
		if count == 0 {
			break
		}
		t := c.t
		if t == nil {
			var ok, aborted bool
			if t, ok, aborted = lowerLeafTrue(c.e, lc); !ok {
				return nil, false, aborted
			}
		}
		if running == nil {
			running = t.Clone()
			count = running.Count()
			continue
		}
		count = running.AndCountWith(t)
	}
	return running, true, false
}

// lowerOrTrue folds an OR chain of 2+ disjuncts to its TRUE mask in
// descending estimated-TRUE order, short-circuiting when the running
// union fills — the dual of the AND chain's empty cut. A filled TRUE
// mask implies an empty FALSE mask (every row is TRUE somewhere), so
// skipping the remaining disjuncts loses nothing even where the FALSE
// side matters. Disjuncts that are themselves AND chains fold through
// lowerAndTrue (OR-of-AND); every disjunct is validated lowerable
// before any short-circuit decision. Returns the mask, the evaluation
// order as source positions, and the number of disjuncts skipped.
func lowerOrTrue(e expr.Expr, lc lowerCtx) (*bitset.Bitset, []int, int, bool, bool) {
	disj := flattenOr(e, nil)
	if len(disj) < 2 {
		return nil, nil, 0, false, false
	}
	n := lc.src.NumRows()
	ds := make([]greedyConjunct, len(disj))
	for i, de := range disj {
		est, simple, aborted := probeLeafEst(de, lc)
		if aborted {
			return nil, nil, 0, false, true
		}
		if simple {
			ds[i] = greedyConjunct{e: de, pos: i, est: est}
			continue
		}
		if parts := flattenAnd(de, nil); len(parts) >= 2 {
			m, ok, aborted := lowerAndTrue(parts, lc)
			if !ok {
				return nil, nil, 0, false, aborted
			}
			ds[i] = greedyConjunct{e: de, pos: i, est: m.Count(), t: m}
			continue
		}
		m, ok, aborted := lowerTF(de, lc)
		if !ok {
			return nil, nil, 0, false, aborted
		}
		ds[i] = greedyConjunct{e: de, pos: i, est: m.t.Count(), t: m.t}
	}
	sort.SliceStable(ds, func(a, b int) bool { return ds[a].est > ds[b].est })
	order := make([]int, len(ds))
	for i, d := range ds {
		order[i] = d.pos
	}
	var running *bitset.Bitset
	count, skipped := -1, 0
	for i, d := range ds {
		if count == n {
			// The union already covers every row: no disjunct can add a
			// bit, and all were validated lowerable, so none can hide an
			// error the per-row path would have surfaced.
			skipped = len(ds) - i
			break
		}
		t := d.t
		if t == nil {
			var ok, aborted bool
			if t, ok, aborted = lowerLeafTrue(d.e, lc); !ok {
				return nil, nil, 0, false, aborted
			}
		}
		if running == nil {
			running = t.Clone()
			count = running.Count()
			continue
		}
		count = running.OrCountWith(t)
	}
	return running, order, skipped, true, false
}

// orderedConjunct is one root AND-chain conjunct in the unified ordered
// plan: lowerable conjuncts carry masks (full T/F when guarded, T only
// when trailing), residual conjuncts are evaluated per row on eligible
// bits at their source position.
type orderedConjunct struct {
	e        expr.Expr
	pos      int
	est      int
	residual bool
	guarded  bool           // a residual conjunct follows in source order
	m        tfMask         // guarded lowered conjunct: full mask pair
	t        *bitset.Bitset // trailing lowered conjunct: TRUE mask (nil: lazy simple leaf)
}

// lowerWhereOrdered is the unified ordered lowering for root AND chains
// (with or without residual conjuncts) and root OR chains. ok is false
// when the tree is neither, or refuses lowering; aborted distinguishes
// an index geometry mismatch. err carries residual evaluation errors —
// genuine expression errors the scalar path would also have surfaced —
// and context cancellation. Bits below from are left unset.
func lowerWhereOrdered(ctx context.Context, e expr.Expr, lc lowerCtx, from int) (mask *bitset.Bitset, stats filterStats, ok, aborted bool, err error) {
	parts := flattenAnd(e, nil)
	if len(parts) < 2 {
		// Not an AND chain: a root OR chain still gets the greedy union.
		m, order, skipped, okOr, ab := lowerOrTrue(e, lc)
		if !okOr {
			return nil, filterStats{}, false, ab, nil
		}
		return m, filterStats{conjuncts: len(order), order: order, shortCircuited: skipped}, true, false, nil
	}

	// Classify: which conjuncts lower, which ride as residuals.
	conj := make([]orderedConjunct, len(parts))
	nResidual := 0
	for i, pe := range parts {
		okL, ab := probeLowerable(pe, lc)
		if ab {
			return nil, filterStats{}, false, true, nil
		}
		conj[i] = orderedConjunct{e: pe, pos: i, residual: !okL}
		if !okL {
			nResidual++
		}
	}
	if nResidual == len(parts) {
		// Nothing lowers: the per-row scan over the whole tree is the
		// residual path with no mask to narrow it — refuse.
		return nil, filterStats{}, false, false, nil
	}
	lastResidual := -1
	for i := range conj {
		if conj[i].residual {
			lastResidual = i
		}
	}

	// Materialize estimates and masks. Guarded lowered conjuncts (source-
	// before the last residual) need the full T/F pair — their FALSE mask
	// feeds eligibility — and can never be skipped, so they lower eagerly.
	// Trailing lowered conjuncts need only T: simple leaves stay lazy
	// behind the empty cut, OR chains fold with the fill cut.
	for i := range conj {
		c := &conj[i]
		if c.residual {
			continue
		}
		c.guarded = c.pos < lastResidual
		if c.guarded {
			m, okL, ab := lowerTF(c.e, lc)
			if !okL {
				return nil, filterStats{}, false, ab, nil
			}
			c.m = m
			c.est = m.t.Count()
			continue
		}
		est, simple, ab := probeLeafEst(c.e, lc)
		if ab {
			return nil, filterStats{}, false, true, nil
		}
		if simple {
			c.est = est
			continue
		}
		if t, _, _, okOr, ab := lowerOrTrue(c.e, lc); okOr {
			c.t = t
			c.est = t.Count()
			continue
		} else if ab {
			return nil, filterStats{}, false, true, nil
		}
		m, okL, ab := lowerTF(c.e, lc)
		if !okL {
			return nil, filterStats{}, false, ab, nil
		}
		c.t = m.t
		c.est = m.t.Count()
	}

	// Plan the evaluation order: residuals stay at their source
	// positions (eligibility is defined by source order), lowered
	// conjuncts sort ascending-estimate within each run between
	// residuals.
	planned := make([]*orderedConjunct, 0, len(conj))
	runStart := len(planned)
	flushRun := func() {
		seg := planned[runStart:]
		sort.SliceStable(seg, func(a, b int) bool { return seg[a].est < seg[b].est })
	}
	for i := range conj {
		if conj[i].residual {
			flushRun()
			planned = append(planned, &conj[i])
			runStart = len(planned)
			continue
		}
		planned = append(planned, &conj[i])
	}
	flushRun()

	stats = filterStats{
		conjuncts:         len(conj),
		order:             make([]int, len(conj)),
		residualConjuncts: nResidual,
	}
	for i, c := range planned {
		stats.order[i] = c.pos
	}

	// Execute. pass = rows TRUE under every conjunct so far; elig = rows
	// not known FALSE under any source-earlier conjunct (pass ⊆ elig).
	n := lc.src.NumRows()
	pass := passWindow(n, from)
	passCount := n - from
	var elig *bitset.Bitset
	eligCount := n - from
	if nResidual > 0 {
		elig = pass.Clone()
	}
	residualLeft := nResidual
	var rr *engine.RowReader
	defer func() {
		if rr != nil {
			rr.Close()
		}
	}()
	ctxTick := 0
	for k, c := range planned {
		if residualLeft > 0 {
			if eligCount == 0 {
				// Every row already has a known-FALSE conjunct: the whole
				// AND is FALSE everywhere (pass is necessarily empty too)
				// and no residual can be reached by the scalar evaluator on
				// any row, so skipping the rest cannot hide an error.
				stats.shortCircuited = len(planned) - k
				break
			}
		} else if passCount == 0 {
			// No residuals remain and the running TRUE mask is empty:
			// remaining conjuncts were all validated lowerable, skip them.
			stats.shortCircuited = len(planned) - k
			break
		}
		switch {
		case c.residual:
			if rr == nil {
				rr = lc.src.NewRowReader()
			}
			ev, compiled := expr.Compile(c.e, rr)
			var row []engine.Value
			if !compiled {
				row = make([]engine.Value, lc.src.NumCols())
			}
			it := elig.Iter(from)
			for {
				r, more := it.Next()
				if !more {
					break
				}
				if ctxTick%ctxCheckRows == 0 {
					if cerr := ctx.Err(); cerr != nil {
						return nil, filterStats{}, false, false, ctxErr(cerr)
					}
				}
				ctxTick++
				var v engine.Value
				var everr error
				if compiled {
					v, everr = ev(r)
				} else {
					rr.RowInto(r, row)
					v, everr = c.e.Eval(row)
				}
				if everr != nil {
					return nil, filterStats{}, false, false, everr
				}
				stats.residualRows++
				if v.IsNull() {
					// NULL: the row can no longer pass, but Kleene AND does
					// not short-circuit on NULL — later conjuncts still see
					// it (and may error on it), so it stays eligible.
					pass.Unset(r)
				} else if !v.Bool() {
					pass.Unset(r)
					elig.Unset(r)
					eligCount--
				}
			}
			passCount = pass.Count()
			residualLeft--
		case c.guarded:
			passCount = pass.AndCountWith(c.m.t)
			eligCount = elig.AndNotCountWith(c.m.f)
		default:
			t := c.t
			if t == nil {
				var okL, ab bool
				if t, okL, ab = lowerLeafTrue(c.e, lc); !okL {
					return nil, filterStats{}, false, ab, nil
				}
			}
			passCount = pass.AndCountWith(t)
		}
	}
	return pass, stats, true, false, nil
}

// passWindow returns a length-n bitset with exactly [from, n) set.
func passWindow(n, from int) *bitset.Bitset {
	b := bitset.New(n)
	b.FillFrom(from)
	return b
}

// buildFilter produces the WHERE pass mask for src: lowered onto clause
// masks when possible — root AND chains in greedy most-selective-first
// order with short-circuit, residual per-row evaluation for mixed
// chains, and root OR chains in greedy largest-first order with the
// fill cut, unless noGreedy; everything else through the full Kleene
// lowering — otherwise (or when lowering is disabled) by scanning rows
// through expr.EvalBool exactly like the boxed executor, recording the
// canonical fallback reason in stats. A nil where yields (nil, true):
// no filtering. Bits below "from" may be left unset: callers that only
// consume a suffix (exec.Advance) pass the first row they will read,
// which keeps the residual and scalar paths O(suffix) instead of
// O(table); full scans pass 0.
func buildFilter(ctx context.Context, src *engine.Table, where expr.Expr, noLowering, noGreedy bool, from int) (pass *bitset.Bitset, lowered bool, stats filterStats, err error) {
	if where == nil {
		return nil, true, filterStats{}, nil
	}
	reason := fallbackFilterDisabled
	if !noLowering {
		lc := lowerCtx{ix: tableIndex(src), src: src, base: src.Base()}
		if !noGreedy {
			pass, stats, ok, _, err := lowerWhereOrdered(ctx, where, lc, from)
			if err != nil {
				return nil, false, filterStats{}, err
			}
			if ok {
				return pass, true, stats, nil
			}
		}
		if pass, ok, aborted := lowerWhere(where, lc); ok {
			return pass, true, filterStats{}, nil
		} else if aborted {
			reason = fallbackFilterGeometry
		} else {
			reason = fallbackFilterShape
		}
	}
	// Scalar fallback: per-row three-valued evaluation, aborting on the
	// first error like the reference scan.
	n := src.NumRows()
	pass = bitset.New(n)
	row := make([]engine.Value, src.NumCols())
	rr := src.NewRowReader()
	defer rr.Close()
	for r := from; r < n; r++ {
		if (r-from)%ctxCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return nil, false, filterStats{}, ctxErr(err)
			}
		}
		rr.RowInto(r, row)
		ok, err := expr.EvalBool(where, row)
		if err != nil {
			return nil, false, filterStats{}, err
		}
		if ok {
			pass.Set(r)
		}
	}
	return pass, false, filterStats{fallback: reason}, nil
}
