package exec

import (
	"context"
	"sort"

	"repro/internal/bitset"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/predicate"
)

// This file is the WHERE half of the vectorized pipeline: it lowers
// predicate-shaped WHERE trees — comparisons between a column and a
// constant, IS NULL, BETWEEN and IN over constants, combined with
// AND/OR/NOT — onto the cached clause masks of predicate.Index, so
// filter evaluation becomes a handful of bitmap operations instead of a
// per-row tree walk.
//
// SQL WHERE is three-valued: a row passes only when the expression is
// TRUE, and NOT must map NULL to NULL, not to TRUE. Lowering therefore
// tracks a pair of masks per node — rows where the expression is TRUE
// and rows where it is FALSE; rows in neither are NULL — and the
// combinators follow Kleene logic:
//
//	AND:  T = T₁∧T₂   F = F₁∨F₂
//	OR:   T = T₁∨T₂   F = F₁∧F₂
//	NOT:  T = F₁      F = T₁
//
// A comparison leaf gets T from the clause mask (whose semantics are
// pinned bit-for-bit to the scalar evaluator by the predicate package's
// parity test) and F = nonNull(column) \ T. Anything the lowerer cannot
// express — arithmetic inside a comparison, column-to-column
// comparisons, LIKE, scalar function calls — makes the whole tree
// non-lowerable and the executor falls back to per-row expr.EvalBool.

// tableIndex returns the table family's shared predicate index
// (predicate.Shared — one set of clause masks per family, shared with
// the ranker's candidate scoring). The index implements
// engine.RowSynced, so the aux cache rebases it onto t when t is a
// grown copy-on-write version — cached clause masks then extend by
// decoding only the appended suffix.
func tableIndex(t *engine.Table) *predicate.Index {
	return predicate.Shared(t)
}

// lowerCtx carries the index together with the exact table version the
// statement is executing against. Masks are always requested at
// src.NumRows() AND src.Base(), never at the index's own (possibly
// newer) geometry, so a query running mid-append sees masks of exactly
// its snapshot's length — and a query racing a retention pass (whose
// base the index has already rebased past) refuses the lowered path
// instead of reading masks of a different row-id window. ok=false from
// either accessor aborts lowering; the executor then evaluates WHERE
// per row, which is always correct.
type lowerCtx struct {
	ix   *predicate.Index
	src  *engine.Table
	base int
}

func (lc lowerCtx) clauseBits(c predicate.Clause) (*bitset.Bitset, bool) {
	return lc.ix.ClauseBitsAtBase(c, lc.base, lc.src.NumRows())
}

func (lc lowerCtx) nonNullBits(ci int) (*bitset.Bitset, bool) {
	return lc.ix.NonNullBitsAtBase(ci, lc.base, lc.src.NumRows())
}

func (lc lowerCtx) clauseCount(c predicate.Clause) (int, bool) {
	return lc.ix.ClauseCountAtBase(c, lc.base, lc.src.NumRows())
}

func (lc lowerCtx) nonNullCount(ci int) (int, bool) {
	return lc.ix.NonNullCountAtBase(ci, lc.base, lc.src.NumRows())
}

// tfMask is a node's three-valued result: t holds the rows where it is
// TRUE, f the rows where it is FALSE; rows in neither are NULL. Leaf
// masks may alias shared cached bitsets — combinators always allocate
// fresh outputs and never mutate inputs.
type tfMask struct {
	t, f *bitset.Bitset
}

// lowerWhere lowers a resolved WHERE tree to the mask of passing rows
// (TRUE rows; NULL counts as not passing, matching expr.EvalBool). The
// returned bitset may alias a shared clause mask and must be treated as
// read-only. ok is false when the tree contains a non-lowerable node.
func lowerWhere(e expr.Expr, lc lowerCtx) (*bitset.Bitset, bool) {
	m, ok := lowerTF(e, lc)
	if !ok {
		return nil, false
	}
	return m.t, true
}

func lowerTF(e expr.Expr, lc lowerCtx) (tfMask, bool) {
	n := lc.src.NumRows()
	switch node := e.(type) {
	case *expr.Lit:
		// A constant condition: TRUE/FALSE for every row, or NULL for a
		// NULL literal (neither mask set).
		m := tfMask{t: bitset.New(n), f: bitset.New(n)}
		if !node.Val.IsNull() {
			if node.Val.Bool() {
				m.t.Fill()
			} else {
				m.f.Fill()
			}
		}
		return m, true

	case *expr.Not:
		m, ok := lowerTF(node.X, lc)
		if !ok {
			return tfMask{}, false
		}
		return tfMask{t: m.f, f: m.t}, true

	case *expr.Bin:
		if node.Op.IsLogic() {
			l, ok := lowerTF(node.L, lc)
			if !ok {
				return tfMask{}, false
			}
			r, ok := lowerTF(node.R, lc)
			if !ok {
				return tfMask{}, false
			}
			out := tfMask{t: bitset.New(n), f: bitset.New(n)}
			if node.Op == expr.OpAnd {
				out.t.IntersectOf(l.t, r.t)
				out.f.CopyFrom(l.f)
				out.f.Or(r.f)
			} else {
				out.t.CopyFrom(l.t)
				out.t.Or(r.t)
				out.f.IntersectOf(l.f, r.f)
			}
			return out, true
		}
		if node.Op.IsComparison() {
			return lowerComparison(node, lc)
		}
		return tfMask{}, false // arithmetic has no boolean lowering

	case *expr.IsNull:
		col, ok := node.X.(*expr.Col)
		if !ok {
			return tfMask{}, false
		}
		ci := lc.src.Schema().ColIndex(col.Name)
		if ci < 0 {
			return tfMask{}, false
		}
		nonNull, ok := lc.nonNullBits(ci)
		if !ok {
			return tfMask{}, false
		}
		isNull := bitset.New(n)
		isNull.Fill()
		isNull.AndNot(nonNull)
		if node.Invert { // IS NOT NULL
			return tfMask{t: nonNull, f: isNull}, true
		}
		return tfMask{t: isNull, f: nonNull}, true

	case *expr.Between:
		col, ok := node.X.(*expr.Col)
		if !ok {
			return tfMask{}, false
		}
		lo, okLo := node.Lo.(*expr.Lit)
		hi, okHi := node.Hi.(*expr.Lit)
		if !okLo || !okHi {
			return tfMask{}, false
		}
		ci := lc.src.Schema().ColIndex(col.Name)
		if ci < 0 {
			return tfMask{}, false
		}
		if lo.Val.IsNull() || hi.Val.IsNull() {
			// NULL bound: the range test is NULL for every row.
			return tfMask{t: bitset.New(n), f: bitset.New(n)}, true
		}
		colType := lc.src.Schema()[ci].Type
		if !literalComparable(colType, lo.Val) || !literalComparable(colType, hi.Val) {
			return tfMask{}, false // scalar path would error; keep it
		}
		geBits, okGe := lc.clauseBits(predicate.Clause{Col: col.Name, Op: predicate.OpGe, Val: lo.Val})
		leBits, okLe := lc.clauseBits(predicate.Clause{Col: col.Name, Op: predicate.OpLe, Val: hi.Val})
		nn, okNN := lc.nonNullBits(ci)
		if !okGe || !okLe || !okNN {
			return tfMask{}, false
		}
		t := bitset.New(n)
		t.IntersectOf(geBits, leBits)
		f := nn.Clone()
		f.AndNot(t)
		if node.Invert {
			return tfMask{t: f, f: t}, true
		}
		return tfMask{t: t, f: f}, true

	case *expr.In:
		col, ok := node.X.(*expr.Col)
		if !ok {
			return tfMask{}, false
		}
		ci := lc.src.Schema().ColIndex(col.Name)
		if ci < 0 {
			return tfMask{}, false
		}
		t := bitset.New(n)
		sawNull := false
		for _, e := range node.List {
			lit, ok := e.(*expr.Lit)
			if !ok {
				return tfMask{}, false
			}
			if lit.Val.IsNull() {
				sawNull = true
				continue
			}
			// Equality against an incomparable literal type matches
			// nothing in both paths (engine.Equal treats incomparable as
			// unequal, the clause mask stays empty), so every literal
			// lowers.
			eq, ok := lc.clauseBits(predicate.Clause{Col: col.Name, Op: predicate.OpEq, Val: lit.Val})
			if !ok {
				return tfMask{}, false
			}
			t.Or(eq)
		}
		f := bitset.New(n)
		if !sawNull {
			// With a NULL in the list, non-matching rows are NULL (x
			// might equal the NULL), so F stays empty.
			nn, ok := lc.nonNullBits(ci)
			if !ok {
				return tfMask{}, false
			}
			f.CopyFrom(nn)
			f.AndNot(t)
		}
		if node.Invert {
			return tfMask{t: f, f: t}, true
		}
		return tfMask{t: t, f: f}, true

	default:
		// Bare columns, function calls, LIKE, …: not lowerable.
		return tfMask{}, false
	}
}

// lowerComparison lowers "column op constant" (either operand order)
// onto one clause mask.
func lowerComparison(node *expr.Bin, lc lowerCtx) (tfMask, bool) {
	n := lc.src.NumRows()
	col, lit, op, ok := comparisonShape(node)
	if !ok {
		return tfMask{}, false
	}
	ci := lc.src.Schema().ColIndex(col.Name)
	if ci < 0 {
		return tfMask{}, false
	}
	if lit.Val.IsNull() {
		// Comparison with a NULL constant is NULL for every row.
		return tfMask{t: bitset.New(n), f: bitset.New(n)}, true
	}
	if !literalComparable(lc.src.Schema()[ci].Type, lit.Val) {
		// The scalar evaluator errors on incomparable comparison
		// operands; don't lower, so the error surfaces identically.
		return tfMask{}, false
	}
	t, okT := lc.clauseBits(predicate.Clause{Col: col.Name, Op: op, Val: lit.Val})
	nn, okNN := lc.nonNullBits(ci)
	if !okT || !okNN {
		return tfMask{}, false
	}
	f := nn.Clone()
	f.AndNot(t)
	return tfMask{t: t, f: f}, true
}

// comparisonShape extracts the (column, constant, clause op) of a
// comparison, flipping the operator when the constant is on the left
// (5 < x  ⇔  x > 5).
func comparisonShape(node *expr.Bin) (*expr.Col, *expr.Lit, predicate.Op, bool) {
	op, ok := clauseOp(node.Op)
	if !ok {
		return nil, nil, 0, false
	}
	if col, ok := node.L.(*expr.Col); ok {
		if lit, ok := node.R.(*expr.Lit); ok {
			return col, lit, op, true
		}
	}
	if lit, ok := node.L.(*expr.Lit); ok {
		if col, ok := node.R.(*expr.Col); ok {
			return col, lit, flipOp(op), true
		}
	}
	return nil, nil, 0, false
}

func clauseOp(op expr.BinOp) (predicate.Op, bool) {
	switch op {
	case expr.OpEq:
		return predicate.OpEq, true
	case expr.OpNeq:
		return predicate.OpNeq, true
	case expr.OpLt:
		return predicate.OpLt, true
	case expr.OpLe:
		return predicate.OpLe, true
	case expr.OpGt:
		return predicate.OpGt, true
	case expr.OpGe:
		return predicate.OpGe, true
	default:
		return 0, false
	}
}

func flipOp(op predicate.Op) predicate.Op {
	switch op {
	case predicate.OpLt:
		return predicate.OpGt
	case predicate.OpLe:
		return predicate.OpGe
	case predicate.OpGt:
		return predicate.OpLt
	case predicate.OpGe:
		return predicate.OpLe
	default: // = and != are symmetric
		return op
	}
}

// literalComparable reports whether engine.Compare is defined between
// values of a column's type and a literal — the condition under which
// the clause mask and the scalar evaluator agree (and neither errors).
func literalComparable(colType engine.Type, lit engine.Value) bool {
	if colType.IsNumeric() && lit.T.IsNumeric() {
		return true
	}
	return colType == engine.TString && lit.T == engine.TString
}

// ---------------------------------------------------------------------
// Greedy clause ordering
//
// The WHERE pass mask of a root-level AND chain is the intersection of
// the conjuncts' TRUE masks — order-independent, and the FALSE masks
// are never consumed (a row passes iff the tree is TRUE). That makes
// the chain a planning opportunity: evaluate the most selective
// conjunct first, AND the rest in ascending estimated-TRUE order
// through the fused AndCountWith kernel, and stop materializing
// entirely once the running mask has no set bits — every remaining
// conjunct can only be skipped, never change the result. Selectivity
// estimates are the clause-mask popcounts predicate.Index caches per
// (base, length) stamp: no table statistics, in the spirit of
// janus-datalog's "greedy beats optimal" ordering result.
//
// The ordering is exact, not heuristic, about *lowerability*: every
// conjunct is probed (or eagerly lowered, for nested OR/NOT subtrees)
// before any short-circuit decision, so a tree the full Kleene lowering
// would refuse — and whose per-row evaluation might error — is refused
// here too, never silently truncated to its cheap prefix.

// filterStats records the ordering decision for Result.Plan.
type filterStats struct {
	conjuncts      int   // root AND-chain conjuncts (0: not an ordered chain)
	order          []int // evaluation order, as source-position indexes
	shortCircuited int   // trailing conjuncts never materialized
}

// flattenAnd appends the non-AND leaves of e's root AND chain to out in
// source (left-to-right) order.
func flattenAnd(e expr.Expr, out []expr.Expr) []expr.Expr {
	if b, ok := e.(*expr.Bin); ok && b.Op == expr.OpAnd {
		out = flattenAnd(b.L, out)
		return flattenAnd(b.R, out)
	}
	return append(out, e)
}

// greedyConjunct is one AND-chain conjunct during planning: its source
// position, estimated TRUE count, and — for subtrees the leaf prober
// does not understand — an eagerly lowered TRUE mask.
type greedyConjunct struct {
	e   expr.Expr
	pos int
	est int
	t   *bitset.Bitset // non-nil: already materialized
}

// probeLeafEst estimates the TRUE-mask popcount of a simple conjunct
// without materializing anything beyond the index's own cached clause
// masks. ok is false when e is not one of the simple leaf shapes (the
// caller then lowers it eagerly) — the checks for the shapes it does
// accept mirror lowerTF exactly, so a conjunct it approves always
// lowers. aborted reports an index base mismatch: the whole lowering
// must be abandoned for the per-row path.
func probeLeafEst(e expr.Expr, lc lowerCtx) (est int, ok, aborted bool) {
	n := lc.src.NumRows()
	switch node := e.(type) {
	case *expr.Lit:
		if !node.Val.IsNull() && node.Val.Bool() {
			return n, true, false
		}
		return 0, true, false

	case *expr.Bin:
		if !node.Op.IsComparison() {
			return 0, false, false
		}
		col, lit, op, ok := comparisonShape(node)
		if !ok {
			return 0, false, false
		}
		ci := lc.src.Schema().ColIndex(col.Name)
		if ci < 0 {
			return 0, false, false
		}
		if lit.Val.IsNull() {
			return 0, true, false
		}
		if !literalComparable(lc.src.Schema()[ci].Type, lit.Val) {
			return 0, false, false
		}
		cnt, okC := lc.clauseCount(predicate.Clause{Col: col.Name, Op: op, Val: lit.Val})
		if !okC {
			return 0, false, true
		}
		return cnt, true, false

	case *expr.IsNull:
		col, ok := node.X.(*expr.Col)
		if !ok {
			return 0, false, false
		}
		ci := lc.src.Schema().ColIndex(col.Name)
		if ci < 0 {
			return 0, false, false
		}
		nn, okC := lc.nonNullCount(ci)
		if !okC {
			return 0, false, true
		}
		if node.Invert {
			return nn, true, false
		}
		return n - nn, true, false

	case *expr.Between:
		col, ok := node.X.(*expr.Col)
		if !ok {
			return 0, false, false
		}
		lo, okLo := node.Lo.(*expr.Lit)
		hi, okHi := node.Hi.(*expr.Lit)
		if !okLo || !okHi {
			return 0, false, false
		}
		ci := lc.src.Schema().ColIndex(col.Name)
		if ci < 0 {
			return 0, false, false
		}
		if lo.Val.IsNull() || hi.Val.IsNull() {
			return 0, true, false // range test is NULL everywhere, T empty
		}
		colType := lc.src.Schema()[ci].Type
		if !literalComparable(colType, lo.Val) || !literalComparable(colType, hi.Val) {
			return 0, false, false
		}
		ge, okGe := lc.clauseCount(predicate.Clause{Col: col.Name, Op: predicate.OpGe, Val: lo.Val})
		le, okLe := lc.clauseCount(predicate.Clause{Col: col.Name, Op: predicate.OpLe, Val: hi.Val})
		nn, okNN := lc.nonNullCount(ci)
		if !okGe || !okLe || !okNN {
			return 0, false, true
		}
		est = ge
		if le < est {
			est = le
		}
		if node.Invert {
			// NOT BETWEEN matches at most the non-NULL rows outside the
			// narrower bound.
			est = nn - est
			if est < 0 {
				est = 0
			}
		}
		return est, true, false

	case *expr.In:
		col, ok := node.X.(*expr.Col)
		if !ok {
			return 0, false, false
		}
		ci := lc.src.Schema().ColIndex(col.Name)
		if ci < 0 {
			return 0, false, false
		}
		sum, sawNull := 0, false
		for _, le := range node.List {
			lit, ok := le.(*expr.Lit)
			if !ok {
				return 0, false, false
			}
			if lit.Val.IsNull() {
				sawNull = true
				continue
			}
			cnt, okC := lc.clauseCount(predicate.Clause{Col: col.Name, Op: predicate.OpEq, Val: lit.Val})
			if !okC {
				return 0, false, true
			}
			sum += cnt
		}
		if sum > n {
			sum = n
		}
		if !node.Invert {
			return sum, true, false
		}
		if sawNull {
			return 0, true, false // NOT IN with a NULL literal is never TRUE
		}
		nn, okNN := lc.nonNullCount(ci)
		if !okNN {
			return 0, false, true
		}
		est = nn - sum
		if est < 0 {
			est = 0
		}
		return est, true, false

	default:
		return 0, false, false
	}
}

// lowerLeafTrue materializes the TRUE mask of a conjunct probeLeafEst
// approved — the T half of lowerTF's result for the same node, without
// building the FALSE mask a root conjunct never needs. The returned
// bitset may alias a shared cached mask (read-only).
func lowerLeafTrue(e expr.Expr, lc lowerCtx) (*bitset.Bitset, bool) {
	n := lc.src.NumRows()
	switch node := e.(type) {
	case *expr.Lit:
		b := bitset.New(n)
		if !node.Val.IsNull() && node.Val.Bool() {
			b.Fill()
		}
		return b, true

	case *expr.Bin:
		m, ok := lowerComparison(node, lc)
		if !ok {
			return nil, false
		}
		return m.t, true

	case *expr.IsNull:
		ci := lc.src.Schema().ColIndex(node.X.(*expr.Col).Name)
		nn, ok := lc.nonNullBits(ci)
		if !ok {
			return nil, false
		}
		if node.Invert {
			return nn, true
		}
		isNull := bitset.New(n)
		isNull.Fill()
		isNull.AndNot(nn)
		return isNull, true

	case *expr.Between, *expr.In:
		m, ok := lowerTF(e, lc)
		if !ok {
			return nil, false
		}
		return m.t, true
	}
	return nil, false
}

// lowerWhereGreedy lowers a root AND chain of 2+ conjuncts in greedy
// selectivity order with short-circuit. ok is false when the tree is
// not such a chain or contains a non-lowerable conjunct — exactly the
// trees lowerWhere refuses — and the caller falls through.
func lowerWhereGreedy(e expr.Expr, lc lowerCtx) (*bitset.Bitset, filterStats, bool) {
	parts := flattenAnd(e, nil)
	if len(parts) < 2 {
		return nil, filterStats{}, false
	}
	conj := make([]greedyConjunct, len(parts))
	for i, pe := range parts {
		est, simple, aborted := probeLeafEst(pe, lc)
		if aborted {
			return nil, filterStats{}, false
		}
		if !simple {
			// Nested OR/NOT/… subtree: lower it in full now. Its exact
			// TRUE count doubles as the estimate, and a refusal here is a
			// refusal of the whole tree (matching lowerWhere).
			m, ok := lowerTF(pe, lc)
			if !ok {
				return nil, filterStats{}, false
			}
			conj[i] = greedyConjunct{e: pe, pos: i, est: m.t.Count(), t: m.t}
			continue
		}
		conj[i] = greedyConjunct{e: pe, pos: i, est: est}
	}
	sort.SliceStable(conj, func(a, b int) bool { return conj[a].est < conj[b].est })

	stats := filterStats{conjuncts: len(conj), order: make([]int, len(conj))}
	for i, c := range conj {
		stats.order[i] = c.pos
	}
	var running *bitset.Bitset
	count := -1
	for i, c := range conj {
		if count == 0 {
			// Running TRUE mask is empty: no remaining conjunct can set a
			// bit, so none is materialized. Conjuncts were all validated
			// as lowerable above, so skipping them cannot hide an error
			// the per-row path would have surfaced.
			stats.shortCircuited = len(conj) - i
			break
		}
		t := c.t
		if t == nil {
			var ok bool
			if t, ok = lowerLeafTrue(c.e, lc); !ok {
				return nil, filterStats{}, false
			}
		}
		if running == nil {
			running = t.Clone()
			count = running.Count()
			continue
		}
		count = running.AndCountWith(t)
	}
	return running, stats, true
}

// buildFilter produces the WHERE pass mask for src: lowered onto clause
// masks when possible — root AND chains in greedy most-selective-first
// order with short-circuit unless noGreedy, everything else through the
// full Kleene lowering — otherwise (or when lowering is disabled) by
// scanning rows through expr.EvalBool exactly like the boxed executor.
// A nil where yields (nil, true): no filtering. Bits below "from"
// may be left unset: callers that only consume a suffix (exec.Advance)
// pass the first row they will read, which keeps the scalar fallback
// O(suffix) instead of O(table); full scans pass 0.
func buildFilter(ctx context.Context, src *engine.Table, where expr.Expr, noLowering, noGreedy bool, from int) (pass *bitset.Bitset, lowered bool, stats filterStats, err error) {
	if where == nil {
		return nil, true, filterStats{}, nil
	}
	if !noLowering {
		lc := lowerCtx{ix: tableIndex(src), src: src, base: src.Base()}
		if !noGreedy {
			if pass, stats, ok := lowerWhereGreedy(where, lc); ok {
				return pass, true, stats, nil
			}
		}
		if pass, ok := lowerWhere(where, lc); ok {
			return pass, true, filterStats{}, nil
		}
	}
	// Scalar fallback: per-row three-valued evaluation, aborting on the
	// first error like the reference scan.
	n := src.NumRows()
	pass = bitset.New(n)
	row := make([]engine.Value, src.NumCols())
	rr := src.NewRowReader()
	defer rr.Close()
	for r := from; r < n; r++ {
		if (r-from)%ctxCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return nil, false, filterStats{}, ctxErr(err)
			}
		}
		rr.RowInto(r, row)
		ok, err := expr.EvalBool(where, row)
		if err != nil {
			return nil, false, filterStats{}, err
		}
		if ok {
			pass.Set(r)
		}
	}
	return pass, false, filterStats{}, nil
}
