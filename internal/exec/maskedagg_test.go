package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/store"
)

// These tests pin the mask-guarded global aggregation path: a GROUP
// BY-free statement whose aggregates all fold as floats must run
// through the batch kernels (Plan.MaskedAgg) and stay bit-identical to
// the scalar reference at every filter density — including NaN, ±0.0,
// and NULL inputs, sharded scans, incremental Advance, and the 4 KiB
// thrash-pool out-of-core configuration.

// maskedAggSQL spans every float-fed aggregate over the parity table's
// awkward float column.
const maskedAggSQL = "SELECT count(*) AS n, sum(f) AS sf, avg(f) AS af, min(f) AS mn, max(f) AS mx, stddev(f) AS sd FROM p"

func TestMaskedAggDensities(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tbl := parityTable(rng, 5000)
	cases := []struct {
		name  string
		where string
	}{
		{"empty", "i > 100"},                   // zero survivors: no group at all
		{"sparse", "f = 3.25"},                 // ~1/64 of rows: one bit per word territory
		{"half", "i >= 0"},                     // ~half the rows survive
		{"full", "j >= 0"},                     // j has no NULLs: the mask fills
		{"residual", "i >= 2 AND s LIKE 'a%'"}, // lowered prefix + residual conjunct
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sql := maskedAggSQL + " WHERE " + tc.where
			for _, shards := range []int{1, 3} {
				res, err := RunOnWith(tbl, mustParse(t, sql), Options{Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Plan.Vectorized || !res.Plan.MaskedAgg {
					t.Fatalf("shards=%d: masked aggregation did not engage: %+v", shards, res.Plan)
				}
				ref, err := RunOnWith(tbl, mustParse(t, sql), Options{ForceScalar: true})
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("shards=%d [%s]", shards, sql)
				tablesEqual(t, label, ref.Table, res.Table)
				groupsEqual(t, label, ref, res)
			}
		})
	}
}

// Statements outside the kernel's shape — computed arguments, boxed
// column arguments, no WHERE at all — must not claim MaskedAgg, and
// must still match the reference.
func TestMaskedAggEligibility(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	tbl := parityTable(rng, 2000)
	cases := []struct {
		sql  string
		want bool
	}{
		{"SELECT sum(f) AS sf FROM p WHERE i >= 0", true},
		{"SELECT sum(f) AS sf FROM p", false},                         // no filter mask to fold under
		{"SELECT sum(f + 1) AS sf FROM p WHERE i >= 0", false},        // computed argument
		{"SELECT count(s) AS cs FROM p WHERE i >= 0", false},          // boxed column argument
		{"SELECT median(f) AS md FROM p WHERE i >= 0", true},          // median appends floats: still float-fed
		{"SELECT sum(f) AS sf FROM p WHERE i >= 0 GROUP BY j", false}, // grouped
	}
	for _, tc := range cases {
		res, err := RunOnWith(tbl, mustParse(t, tc.sql), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan.MaskedAgg != tc.want {
			t.Fatalf("[%s] MaskedAgg = %v, want %v (plan %+v)", tc.sql, res.Plan.MaskedAgg, tc.want, res.Plan)
		}
		ref, err := RunOnWith(tbl, mustParse(t, tc.sql), Options{ForceScalar: true})
		if err != nil {
			t.Fatal(err)
		}
		tablesEqual(t, tc.sql, ref.Table, res.Table)
		groupsEqual(t, tc.sql, ref, res)
	}
}

// Random WHERE trees over random float-fed aggregate lists, vectorized
// vs scalar — the masked path must hold bit-exact parity wherever it
// engages, and it must actually engage.
func TestMaskedAggParityRandomized(t *testing.T) {
	aggs := []string{"count(*)", "sum(f)", "avg(f)", "min(f)", "max(f)", "stddev(f)", "var(f)", "sum(i)", "median(f)"}
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	sawMasked := false
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed * 7))
		tbl := parityTable(rng, 1500)
		for iter := 0; iter < 50; iter++ {
			sel := ""
			for i, k := 0, 1+rng.Intn(3); i < k; i++ {
				if i > 0 {
					sel += ", "
				}
				sel += fmt.Sprintf("%s AS a%d", aggs[rng.Intn(len(aggs))], i)
			}
			stmt := mustParse(t, "SELECT "+sel+" FROM p WHERE i >= 0")
			stmt.Where = randWhere(rng, 1+rng.Intn(2))
			ref, refErr := RunOnWith(tbl, stmt, Options{ForceScalar: true})
			got, gotErr := RunOnWith(tbl, stmt, Options{Shards: 1 + rng.Intn(3)})
			if (refErr != nil) != (gotErr != nil) {
				t.Fatalf("seed %d iter %d: error disagreement ref=%v got=%v where=%s", seed, iter, refErr, gotErr, stmt.Where)
			}
			if refErr != nil {
				continue
			}
			label := fmt.Sprintf("seed %d iter %d [%s | %s]", seed, iter, sel, stmt.Where)
			tablesEqual(t, label, ref.Table, got.Table)
			groupsEqual(t, label, ref, got)
			if got.Plan.MaskedAgg {
				sawMasked = true
			}
		}
	}
	if !sawMasked {
		t.Fatal("no statement took the masked aggregation path")
	}
}

// Advance seeds the suffix scan with the carried global group; the
// masked kernels must fold appended rows into it exactly as the per-row
// scan would.
func TestMaskedAggAdvance(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tbl := parityTable(rng, 800)
	stmt := mustParse(t, maskedAggSQL+" WHERE i >= 0")
	res, err := RunOn(tbl, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.MaskedAgg {
		t.Fatalf("fresh run skipped the masked path: %+v", res.Plan)
	}
	cur := tbl
	for step := 0; step < 3; step++ {
		grown, err := cur.AppendBatch(batchRows(rng, 50+rng.Intn(100)))
		if err != nil {
			t.Fatal(err)
		}
		adv, err := Advance(res, grown)
		if err != nil {
			t.Fatal(err)
		}
		if !adv.Plan.Incremental || !adv.Plan.MaskedAgg {
			t.Fatalf("step %d: advance left the masked incremental path: %+v", step, adv.Plan)
		}
		ref, err := RunOnWith(grown, stmt, Options{ForceScalar: true})
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("advance step %d", step)
		tablesEqual(t, label, ref.Table, adv.Table)
		groupsEqual(t, label, ref, adv)
		cur, res = grown, adv
	}
}

// The masked kernels pin one chunk per (segment, argument) and release
// it before the next — under a 4 KiB pool that thrashes every fault,
// results must stay bit-identical to the fully resident oracle and no
// pins may leak.
func TestMaskedAggOutOfCore(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	fs := store.NewMemFS()
	buildOOCTable(t, fs, rng, 10)

	oracleSt, oracle := reopen(t, fs, 0)
	defer oracleSt.Close()
	lazySt, lazy := reopen(t, fs, 4096)
	defer lazySt.Close()

	wheres := []string{"i > 100", "f = 3.25", "i >= 0", "j >= 0", "i >= 2 AND s LIKE 'a%'"}
	for _, where := range wheres {
		sql := maskedAggSQL + " WHERE " + where
		ref, err := RunOnWith(oracle, mustParse(t, sql), Options{ForceScalar: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 4} {
			res, err := RunOnWith(lazy, mustParse(t, sql), Options{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Plan.MaskedAgg {
				t.Fatalf("[%s] shards=%d: masked path did not engage out of core: %+v", sql, shards, res.Plan)
			}
			label := fmt.Sprintf("ooc shards=%d [%s]", shards, sql)
			tablesEqual(t, label, ref.Table, res.Table)
			groupsEqual(t, label, ref, res)
			if n := lazySt.PoolPinned(); n != 0 {
				t.Fatalf("%s: %d chunks still pinned after query", label, n)
			}
		}
	}
	if stats := lazySt.Stats(); stats.Pool == nil || stats.Pool.Misses == 0 {
		t.Fatal("thrash pool never faulted — the out-of-core case was not exercised")
	}
}
