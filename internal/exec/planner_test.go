package exec

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/sqlparse"
	"repro/internal/store"
)

// Differential harnesses for the statistics-free planner: greedy clause
// ordering must be invisible in every output bit (tables, group order,
// lineage, errors) next to left-to-right evaluation and the boxed
// scalar oracle, and the incremental ORDER BY merge must be invisible
// next to the full re-sort. Both run under adversarial configurations —
// a 4 KiB thrash pool with 4 shards for the filter, append/retention
// chains for the sort — because those are the paths the optimizations
// actually reorder work on.

// randAndChain builds a WHERE that is a root AND chain of 2..5
// conjuncts — the shape the greedy planner orders. Conjuncts are
// randWhere subtrees at depth 1, so the chain mixes simple probeable
// leaves, nested OR/NOT subtrees (eagerly lowered), further ANDs
// (flattened into the chain), and non-lowerable nodes (LIKE,
// arithmetic) that must refuse the whole lowering.
func randAndChain(rng *rand.Rand) expr.Expr {
	e := randWhere(rng, 1)
	for k := 1 + rng.Intn(4); k > 0; k-- {
		e = expr.NewBin(expr.OpAnd, e, randWhere(rng, 1))
	}
	return e
}

// TestGreedyFilterParityOutOfCore pins greedy-ordered filter evaluation
// bit-identical to left-to-right evaluation and to the boxed scalar
// oracle, over an out-of-core table served through a 4 KiB thrash pool
// with 4 scan shards — the config where the ordering, short-circuit,
// and adaptive shard split all engage at once.
func TestGreedyFilterParityOutOfCore(t *testing.T) {
	sawOrdered, sawShortCircuit := false, false
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed * 31))
		fs := store.NewMemFS()
		buildOOCTable(t, fs, rng, 6+rng.Intn(4))

		oracleSt, oracle := reopen(t, fs, 0)
		if err := oracleSt.Close(); err != nil {
			t.Fatal(err)
		}
		lazySt, lazy := reopen(t, fs, 4096)

		for iter := 0; iter < 30; iter++ {
			stmt, _ := randStmt(rng)
			stmt.Where = randAndChain(rng)
			sql := stmt.String()

			ref, refErr := RunOnWith(oracle, stmt, Options{ForceScalar: true})
			greedy, gErr := RunOnWith(lazy, stmt, Options{Shards: 4})
			ltr, lErr := RunOnWith(lazy, stmt, Options{Shards: 4, NoGreedyOrdering: true})
			if (refErr != nil) != (gErr != nil) || (refErr != nil) != (lErr != nil) {
				t.Fatalf("seed %d iter %d: error disagreement\nsql: %s\nref: %v\ngreedy: %v\nltr: %v",
					seed, iter, sql, refErr, gErr, lErr)
			}
			if refErr != nil {
				continue
			}
			for label, res := range map[string]*Result{"greedy": greedy, "left-to-right": ltr} {
				tablesEqual(t, fmt.Sprintf("seed %d iter %d %s [%s]", seed, iter, label, sql), ref.Table, res.Table)
				groupsEqual(t, fmt.Sprintf("seed %d iter %d %s [%s]", seed, iter, label, sql), ref, res)
			}
			if ltr.Plan.FilterConjuncts != 0 {
				t.Fatalf("seed %d iter %d: NoGreedyOrdering still recorded an ordered chain: %+v", seed, iter, ltr.Plan)
			}
			if greedy.Plan.Vectorized && greedy.Plan.WhereLowered {
				// A lowered root AND chain must record its ordering: the
				// order is a permutation of the source positions.
				if greedy.Plan.FilterConjuncts < 2 {
					t.Fatalf("seed %d iter %d: lowered AND chain not ordered: %+v\nsql: %s", seed, iter, greedy.Plan, sql)
				}
				seen := make(map[int]bool)
				for _, p := range greedy.Plan.FilterOrder {
					if p < 0 || p >= greedy.Plan.FilterConjuncts || seen[p] {
						t.Fatalf("seed %d iter %d: FilterOrder %v is not a permutation of %d conjuncts",
							seed, iter, greedy.Plan.FilterOrder, greedy.Plan.FilterConjuncts)
					}
					seen[p] = true
				}
				sawOrdered = true
				if greedy.Plan.FilterShortCircuited > 0 {
					sawShortCircuit = true
				}
			}
			if n := lazySt.PoolPinned(); n != 0 {
				t.Fatalf("seed %d iter %d: %d chunks still pinned [%s]", seed, iter, n, sql)
			}
		}
		if err := lazySt.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if !sawOrdered || !sawShortCircuit {
		t.Fatalf("harness coverage: sawOrdered=%v sawShortCircuit=%v", sawOrdered, sawShortCircuit)
	}
}

// TestAdvanceSortCarryParity pins the incremental ORDER BY merge
// bit-identical to the full re-sort and to a from-scratch scalar run,
// across 3-step append/retention chains. Two advance chains run side by
// side from the same statement — one carrying the sort, one forced to
// re-sort — so any divergence names the culprit directly.
func TestAdvanceSortCarryParity(t *testing.T) {
	ctx := context.Background()
	carried := 0
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed * 77))
		tbl := tinySegTable(rng, 100+rng.Intn(200))
		for iter := 0; iter < 12; iter++ {
			stmt, _ := randStmt(rng)
			// The carry is the subject: every statement sorts (an aggregate
			// output whose value changes as batches land, so carried groups
			// and re-sorted newcomers interleave), and half also HAVING-
			// filter so verdict flips are in play too.
			stmt.OrderBy = []sqlparse.OrderItem{{Expr: expr.NewCol("a0"), Desc: rng.Intn(2) == 0}}
			if rng.Intn(2) == 0 {
				stmt.Having = expr.NewBin(expr.OpGt, expr.NewCol("a0"), expr.Int(0))
			}
			sql := stmt.String()
			cur := tbl
			resCarry, err := RunOn(cur, stmt)
			if err != nil {
				continue
			}
			resFull, err := RunOn(cur, stmt)
			if err != nil {
				t.Fatalf("seed %d iter %d: second fresh run errored: %v\nsql: %s", seed, iter, err, sql)
			}
			for step := 0; step < 3; step++ {
				grown, err := cur.AppendBatch(batchRows(rng, boundaryBatchSize(rng, cur)))
				if err != nil {
					t.Fatalf("seed %d iter %d step %d: AppendBatch: %v", seed, iter, step, err)
				}
				cur = grown
				if rng.Intn(3) == 0 {
					keep := cur.SegRows() * (1 + rng.Intn(4))
					nt, _, err := cur.RetainTail(engine.RetentionPolicy{MaxRows: keep})
					if err != nil {
						t.Fatal(err)
					}
					cur = nt
				}
				advCarry, err := AdvanceWith(ctx, resCarry, cur, Options{})
				if err != nil {
					t.Fatalf("seed %d iter %d step %d: AdvanceWith: %v\nsql: %s", seed, iter, step, err, sql)
				}
				advFull, err := AdvanceWith(ctx, resFull, cur, Options{NoSortCarry: true})
				if err != nil {
					t.Fatalf("seed %d iter %d step %d: AdvanceWith(NoSortCarry): %v\nsql: %s", seed, iter, step, err, sql)
				}
				if advFull.Plan.SortCarried {
					t.Fatalf("seed %d iter %d step %d: NoSortCarry advance still carried the sort", seed, iter, step)
				}
				ref, err := RunOnWith(cur, stmt, Options{ForceScalar: true})
				if err != nil {
					t.Fatalf("seed %d iter %d step %d: reference run: %v\nsql: %s", seed, iter, step, err, sql)
				}
				label := fmt.Sprintf("seed %d iter %d step %d [%s]", seed, iter, step, sql)
				tablesEqual(t, label+" carry", ref.Table, advCarry.Table)
				groupsEqual(t, label+" carry", ref, advCarry)
				tablesEqual(t, label+" full", ref.Table, advFull.Table)
				groupsEqual(t, label+" full", ref, advFull)
				if advCarry.Plan.SortCarried {
					carried++
				}
				resCarry, resFull = advCarry, advFull
			}
			tbl = cur
		}
	}
	if carried == 0 {
		t.Fatal("incremental sort merge never engaged across the whole harness")
	}
}
