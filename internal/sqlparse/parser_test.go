package sqlparse

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasicSelect(t *testing.T) {
	s, err := Parse("SELECT avg(temp) FROM readings")
	if err != nil {
		t.Fatal(err)
	}
	if s.From != "readings" || len(s.Items) != 1 || !s.Items[0].IsAgg() {
		t.Errorf("parsed: %+v", s)
	}
	if s.Items[0].Agg.Name != "avg" {
		t.Errorf("agg name: %q", s.Items[0].Agg.Name)
	}
	if s.Limit != -1 {
		t.Errorf("limit default: %d", s.Limit)
	}
}

func TestParseFullQuery(t *testing.T) {
	sql := `SELECT day, sum(amount) AS total, count(*) AS n
	        FROM donations
	        WHERE candidate = 'McCain' AND amount > 0
	        GROUP BY day
	        HAVING total > 100
	        ORDER BY day DESC, total
	        LIMIT 10`
	s, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Items) != 3 {
		t.Fatalf("items: %d", len(s.Items))
	}
	if s.Items[0].IsAgg() || !s.Items[1].IsAgg() || !s.Items[2].IsAgg() {
		t.Error("agg detection wrong")
	}
	if !s.Items[2].Agg.Star {
		t.Error("count(*) star missing")
	}
	if s.Items[1].Alias != "total" || s.Items[2].Alias != "n" {
		t.Errorf("aliases: %q %q", s.Items[1].Alias, s.Items[2].Alias)
	}
	if s.Where == nil || s.Having == nil {
		t.Error("where/having missing")
	}
	if len(s.GroupBy) != 1 || len(s.OrderBy) != 2 {
		t.Errorf("groupby %d orderby %d", len(s.GroupBy), len(s.OrderBy))
	}
	if !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Error("order directions wrong")
	}
	if s.Limit != 10 {
		t.Errorf("limit: %d", s.Limit)
	}
}

func TestParseImplicitAlias(t *testing.T) {
	s, err := Parse("SELECT day d, sum(amount) total FROM t GROUP BY day")
	if err != nil {
		t.Fatal(err)
	}
	if s.Items[0].Alias != "d" || s.Items[1].Alias != "total" {
		t.Errorf("implicit aliases: %q %q", s.Items[0].Alias, s.Items[1].Alias)
	}
}

func TestParseExpressions(t *testing.T) {
	cases := []string{
		"a + b * 2",
		"(a + b) * 2",
		"a = 1 AND b != 2 OR NOT c < 3",
		"x IN (1, 2, 3)",
		"x NOT IN ('a', 'b')",
		"memo LIKE '%SPOUSE%'",
		"memo NOT LIKE 'REFUND%'",
		"v BETWEEN 2.3 AND 2.7",
		"v NOT BETWEEN 0 AND 1",
		"x IS NULL",
		"x IS NOT NULL",
		"bucket(epoch(ts), 1800)",
		"-x + 3",
		"a % 10 = 0",
	}
	for _, c := range cases {
		if _, err := ParseExpr(c); err != nil {
			t.Errorf("ParseExpr(%q): %v", c, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT sum(*) FROM t",        // * only for count
		"SELECT nosuchfunc(a) FROM t", // unknown function
		"SELECT a FROM t LIMIT -1",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t trailing garbage",
		"SELECT avg(a FROM t",
		"SELECT a FROM t WHERE s = 'unterminated",
		"SELECT a FROM t WHERE sum(*) > 1", // * only valid for count
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
	}
}

func TestParseStringEscapes(t *testing.T) {
	s, err := Parse("SELECT a FROM t WHERE name = 'O''Brien'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.Where.String(), "O''Brien") {
		t.Errorf("escape rendering: %s", s.Where)
	}
}

func TestParseComments(t *testing.T) {
	s, err := Parse("SELECT a FROM t -- trailing comment\nWHERE a > 1")
	if err != nil {
		t.Fatal(err)
	}
	if s.Where == nil {
		t.Error("where lost after comment")
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	e, err := ParseExpr("amount < -100.5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.String(), "-100.5") {
		t.Errorf("negative literal: %s", e)
	}
}

// Round-trip: String() output re-parses to an identical String().
func TestRoundTrip(t *testing.T) {
	cases := []string{
		"SELECT avg(temp) FROM readings",
		"SELECT day, sum(amount) AS total FROM donations WHERE candidate = 'McCain' GROUP BY day ORDER BY day",
		"SELECT bucket(epoch(ts), 1800) AS w30, avg(temperature) AS avg_temp, stddev(temperature) AS std_temp FROM readings GROUP BY bucket(epoch(ts), 1800) ORDER BY w30",
		"SELECT a FROM t WHERE x IN (1, 2) AND memo LIKE '%X%' OR v BETWEEN 1 AND 2 LIMIT 5",
		"SELECT count(*) FROM t HAVING count(*) > 1",
		"SELECT a FROM t WHERE NOT (x = 1)",
	}
	for _, c := range cases {
		s1, err := Parse(c)
		if err != nil {
			t.Errorf("parse %q: %v", c, err)
			continue
		}
		printed := s1.String()
		s2, err := Parse(printed)
		if err != nil {
			t.Errorf("reparse %q: %v", printed, err)
			continue
		}
		if s2.String() != printed {
			t.Errorf("round trip:\n  1: %s\n  2: %s", printed, s2.String())
		}
	}
}

// Property: random simple comparison predicates round-trip.
func TestExprRoundTripProperty(t *testing.T) {
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	f := func(col uint8, opIdx uint8, val int32) bool {
		colName := string(rune('a' + col%4))
		sql := colName + " " + ops[int(opIdx)%len(ops)] + " " + itoa(int64(val))
		e1, err := ParseExpr(sql)
		if err != nil {
			return false
		}
		e2, err := ParseExpr(e1.String())
		if err != nil {
			return false
		}
		return e1.String() == e2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func itoa(v int64) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

func TestStmtClone(t *testing.T) {
	s := MustParse("SELECT a, sum(b) FROM t WHERE a > 0 GROUP BY a")
	c := s.Clone()
	c.Items = append(c.Items, SelectItem{})
	c.GroupBy = append(c.GroupBy, nil)
	if len(s.Items) != 2 || len(s.GroupBy) != 1 {
		t.Error("Clone shares slices with original")
	}
}

func TestAggItemsHelpers(t *testing.T) {
	s := MustParse("SELECT a, sum(b), avg(c) FROM t GROUP BY a")
	if !s.HasAggregates() {
		t.Error("HasAggregates false")
	}
	idx := s.AggItems()
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 2 {
		t.Errorf("AggItems: %v", idx)
	}
	plain := MustParse("SELECT a FROM t")
	if plain.HasAggregates() {
		t.Error("plain query claims aggregates")
	}
}
