package sqlparse

import "testing"

var benchQueries = []string{
	"SELECT avg(temp) FROM readings",
	"SELECT bucket(epoch(ts), 1800) AS w30, avg(temperature) AS avg_temp, stddev(temperature) AS std_temp FROM readings GROUP BY bucket(epoch(ts), 1800) ORDER BY w30",
	"SELECT day, sum(amount) AS total FROM donations WHERE candidate = 'McCain' AND amount BETWEEN -2300 AND 2300 AND memo NOT LIKE '%REFUND%' GROUP BY day HAVING total > 0 ORDER BY day DESC LIMIT 100",
}

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchQueries[i%len(benchQueries)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRender(b *testing.B) {
	stmts := make([]*SelectStmt, len(benchQueries))
	for i, q := range benchQueries {
		stmts[i] = MustParse(q)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if stmts[i%len(stmts)].String() == "" {
			b.Fatal("empty")
		}
	}
}
