package sqlparse

import (
	"strings"
	"testing"
)

// FuzzParseRoundTrip pins the parser/printer pair: any statement the
// parser accepts must render to SQL that parses again, and the
// re-parsed statement must render identically (String is a fixpoint
// after one round). A failure here means the printer emits SQL the
// parser rejects or reinterprets — exactly the class of bug that
// silently corrupts CleanedSQL, statement cloning (cloneGroupExpr-style
// re-parsing), and the server's session keys, all of which round-trip
// statements through text.
func FuzzParseRoundTrip(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t",
		"SELECT count(*) AS n FROM t",
		"SELECT s, sum(f) AS total FROM p WHERE f >= 1 GROUP BY s",
		"SELECT bucket(epoch(ts), 1800) AS w, avg(temperature) AS a, stddev(temperature) AS sd FROM readings GROUP BY bucket(epoch(ts), 1800) ORDER BY w",
		"SELECT i, count(DISTINCT s) AS u FROM p GROUP BY i HAVING u > 2 ORDER BY u DESC LIMIT 5",
		"SELECT f FROM p WHERE (i BETWEEN -3 AND 4) AND s IN ('a', 'b') OR NOT (j IS NULL)",
		"SELECT f FROM p WHERE s LIKE 'a%' AND f <> -0.25",
		"SELECT lower(s) AS ls, median(f + j) AS m FROM p GROUP BY lower(s)",
		"SELECT * FROM t LIMIT 10",
		"SELECT a FROM t WHERE ts > '2004-02-28T07:35:42Z'",
		"select \"quoted col\" from t where x = 'it''s'",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		stmt, err := Parse(sql)
		if err != nil {
			return // rejecting garbage is fine; crashing or looping is not
		}
		s1 := stmt.String()
		stmt2, err := Parse(s1)
		if err != nil {
			t.Fatalf("printer emitted unparseable SQL\n input: %q\noutput: %q\n error: %v", sql, s1, err)
		}
		s2 := stmt2.String()
		if s1 != s2 {
			t.Fatalf("String not a fixpoint after one parse\n input: %q\n first: %q\nsecond: %q", sql, s1, s2)
		}
	})
}

// FuzzParseExprRoundTrip is the expression-level counterpart (the
// surface ExamplesWhere and the error-metric forms feed user text
// into).
func FuzzParseExprRoundTrip(f *testing.F) {
	seeds := []string{
		"a + b * 2",
		"temperature > 100",
		"f <> -0.25 AND s IN ('a', '')",
		"NOT (x IS NOT NULL) OR y BETWEEN 1 AND 2",
		"bucket(epoch(ts), 1800)",
		"-(-f)",
		"s LIKE '%_x'",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		e, err := ParseExpr(in)
		if err != nil {
			return
		}
		s1 := e.String()
		e2, err := ParseExpr(s1)
		if err != nil {
			t.Fatalf("expression printer emitted unparseable text\n input: %q\noutput: %q\n error: %v", in, s1, err)
		}
		if s2 := e2.String(); s1 != s2 {
			t.Fatalf("expression String not a fixpoint\n input: %q\n first: %q\nsecond: %q", in, s1, s2)
		}
		// Guard against printers that blow up the term (each round-trip
		// adding parens would OOM under the fuzzer eventually).
		if len(s1) > 4*len(in)+64 {
			t.Fatalf("printer inflated %q (%d bytes) to %d bytes", in, len(in), len(s1))
		}
	})
}

// TestFuzzSeedsRoundTrip runs every checked-in seed through the fuzz
// bodies so `go test` (without -fuzz) still exercises them — the fuzz
// smoke in CI only runs one target at a time.
func TestFuzzSeedsRoundTrip(t *testing.T) {
	for _, sql := range []string{
		"SELECT s, sum(f) AS total FROM p WHERE f >= 1 GROUP BY s",
		"SELECT i, count(DISTINCT s) AS u FROM p GROUP BY i HAVING u > 2 ORDER BY u DESC LIMIT 5",
		"SELECT f FROM p WHERE (i BETWEEN -3 AND 4) AND s IN ('a', 'b') OR NOT (j IS NULL)",
	} {
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatalf("seed %q: %v", sql, err)
		}
		s1 := stmt.String()
		stmt2, err := Parse(s1)
		if err != nil {
			t.Fatalf("seed %q: reparse of %q: %v", sql, s1, err)
		}
		if s2 := stmt2.String(); !strings.EqualFold(s1, s2) {
			t.Fatalf("seed %q: %q vs %q", sql, s1, s2)
		}
	}
}
