// Package sqlparse implements a lexer and recursive-descent parser for
// the single-block aggregate SQL dialect DBWipes accepts:
//
//	SELECT item [, item ...]
//	FROM table
//	[WHERE predicate]
//	[GROUP BY expr [, expr ...]]
//	[HAVING predicate]
//	[ORDER BY expr [ASC|DESC] [, ...]]
//	[LIMIT n]
//
// where an item is an expression or an aggregate call (avg, sum, count,
// min, max, stddev, var, median) with an optional "AS alias". Parsed
// statements render back to SQL via String(), and the renderer output
// re-parses to an equal statement (round-trip property, tested).
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string
	pos  int
	// quoted marks a double-quoted identifier: it never matches
	// keywords and never folds to the NULL/true/false literals, so
	// columns spelled like reserved words round-trip through SQL text.
	quoted bool
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex tokenizes the input. Keywords are returned as tokIdent; the parser
// matches them case-insensitively.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_' || input[i] == '.') {
				i++
			}
			toks = append(toks, token{kind: tokIdent, text: input[start:i], pos: start})
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			start := i
			seenDot, seenExp := false, false
			for i < n {
				ch := input[i]
				if unicode.IsDigit(rune(ch)) {
					i++
					continue
				}
				if ch == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
					continue
				}
				if (ch == 'e' || ch == 'E') && !seenExp && i+1 < n &&
					(unicode.IsDigit(rune(input[i+1])) || input[i+1] == '+' || input[i+1] == '-') {
					seenExp = true
					i += 2
					continue
				}
				break
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case c == '\'':
			i++
			var b strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						b.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				b.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqlparse: unterminated string at %d", i)
			}
			toks = append(toks, token{kind: tokString, text: b.String(), pos: i})
		case c == '"': // quoted identifier
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < n {
				if input[i] == '"' {
					closed = true
					i++
					break
				}
				b.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqlparse: unterminated quoted identifier at %d", start)
			}
			toks = append(toks, token{kind: tokIdent, text: b.String(), pos: start, quoted: true})
		default:
			// multi-char operators first
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "!=", "<>":
				if two == "<>" {
					two = "!="
				}
				toks = append(toks, token{kind: tokSymbol, text: two, pos: i})
				i += 2
				continue
			}
			switch c {
			case '(', ')', ',', '+', '-', '*', '/', '%', '=', '<', '>', ';':
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
				i++
			default:
				return nil, fmt.Errorf("sqlparse: unexpected character %q at %d", c, i)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}
