package sqlparse

import (
	"fmt"
	"strings"

	"repro/internal/expr"
)

// AggCall is an aggregate invocation in the select list, e.g.
// avg(temperature), count(*), or count(DISTINCT city).
type AggCall struct {
	Name     string    // lowercase aggregate name
	Arg      expr.Expr // nil for count(*)
	Star     bool      // count(*)
	Distinct bool      // count(DISTINCT x) etc.
}

// String renders the call as SQL.
func (a *AggCall) String() string {
	if a.Star {
		return a.Name + "(*)"
	}
	if a.Distinct {
		return fmt.Sprintf("%s(DISTINCT %s)", a.Name, a.Arg)
	}
	return fmt.Sprintf("%s(%s)", a.Name, a.Arg)
}

// SelectItem is one entry in the select list: either an aggregate call
// or a plain (grouping) expression, optionally aliased.
type SelectItem struct {
	Agg   *AggCall  // non-nil for aggregate items
	Expr  expr.Expr // non-nil for plain items
	Alias string
}

// IsAgg reports whether the item is an aggregate.
func (s *SelectItem) IsAgg() bool { return s.Agg != nil }

// Label returns the output column name: the alias when present,
// otherwise the rendered expression.
func (s *SelectItem) Label() string {
	if s.Alias != "" {
		return s.Alias
	}
	if s.Agg != nil {
		return s.Agg.String()
	}
	return s.Expr.String()
}

// String renders the item as SQL.
func (s *SelectItem) String() string {
	var base string
	if s.Agg != nil {
		base = s.Agg.String()
	} else {
		base = s.Expr.String()
	}
	if s.Alias != "" {
		return base + " AS " + quoteAliasIfNeeded(s.Alias)
	}
	return base
}

// quoteAliasIfNeeded delegates to the expression layer's identifier
// quoting so aliases, column references and table names all round-trip
// under one rule (leading digits and reserved spellings included).
func quoteAliasIfNeeded(a string) string {
	return expr.QuoteIdent(a)
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr expr.Expr
	Desc bool
}

// String renders the key as SQL.
func (o *OrderItem) String() string {
	if o.Desc {
		return o.Expr.String() + " DESC"
	}
	return o.Expr.String()
}

// SelectStmt is a parsed single-block aggregate query.
type SelectStmt struct {
	Items   []SelectItem
	From    string
	Where   expr.Expr // nil when absent
	GroupBy []expr.Expr
	Having  expr.Expr // nil when absent
	OrderBy []OrderItem
	Limit   int // -1 when absent
}

// HasAggregates reports whether any select item is an aggregate.
func (s *SelectStmt) HasAggregates() bool {
	for i := range s.Items {
		if s.Items[i].IsAgg() {
			return true
		}
	}
	return false
}

// AggItems returns the indexes of aggregate select items.
func (s *SelectStmt) AggItems() []int {
	var out []int
	for i := range s.Items {
		if s.Items[i].IsAgg() {
			out = append(out, i)
		}
	}
	return out
}

// Clone returns a shallow copy of the statement with copied slices, so
// the caller can append WHERE conjuncts without disturbing the original.
// Expression nodes are shared (they are immutable after Resolve aside
// from index binding against the same schema).
func (s *SelectStmt) Clone() *SelectStmt {
	out := *s
	out.Items = append([]SelectItem(nil), s.Items...)
	out.GroupBy = append([]expr.Expr(nil), s.GroupBy...)
	out.OrderBy = append([]OrderItem(nil), s.OrderBy...)
	return &out
}

// String renders the statement as SQL that re-parses to an equal
// statement.
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.Items[i].String())
	}
	b.WriteString(" FROM ")
	b.WriteString(expr.QuoteIdent(s.From))
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(s.OrderBy[i].String())
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}
