package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/agg"
	"repro/internal/engine"
	"repro/internal/expr"
)

// Parse parses one SELECT statement.
func Parse(sql string) (*SelectStmt, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("sqlparse: trailing input at %s", p.peek())
	}
	return stmt, nil
}

// MustParse is Parse for statically known statements; it panics on error.
func MustParse(sql string) *SelectStmt {
	s, err := Parse(sql)
	if err != nil {
		panic(err)
	}
	return s
}

// ParseExpr parses a standalone scalar expression (used for predicates
// arriving over the HTTP API).
func ParseExpr(s string) (expr.Expr, error) {
	toks, err := lex(s)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("sqlparse: trailing input at %s", p.peek())
	}
	return e, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// at reports whether the current token matches kind (and text, when
// non-empty; identifiers match case-insensitively).
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	if t.kind != kind {
		return false
	}
	if text == "" {
		return true
	}
	if kind == tokIdent {
		// A double-quoted identifier is always a name: it never matches
		// a keyword spelling ("where" the column vs WHERE the clause).
		if t.quoted {
			return false
		}
		return strings.EqualFold(t.text, text)
	}
	return t.text == text
}

// accept consumes the current token when it matches.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

// expect consumes a required token.
func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = map[tokenKind]string{tokIdent: "identifier", tokNumber: "number", tokString: "string"}[kind]
	}
	return token{}, fmt.Errorf("sqlparse: expected %s, found %s", want, p.peek())
}

func (p *parser) keyword(kw string) bool { return p.accept(tokIdent, kw) }

var reservedAfterExpr = map[string]bool{
	"from": true, "where": true, "group": true, "having": true,
	"order": true, "limit": true, "as": true, "and": true, "or": true,
	"not": true, "in": true, "like": true, "between": true, "is": true,
	"asc": true, "desc": true, "by": true, "null": true,
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tokIdent, "select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, *item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokIdent, "from"); err != nil {
		return nil, err
	}
	fromTok, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, fmt.Errorf("sqlparse: expected table name: %w", err)
	}
	stmt.From = fromTok.text

	if p.keyword("where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.keyword("group") {
		if _, err := p.expect(tokIdent, "by"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, g)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.keyword("having") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}
	if p.keyword("order") {
		if _, err := p.expect(tokIdent, "by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.keyword("desc") {
				item.Desc = true
			} else {
				p.keyword("asc")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.keyword("limit") {
		numTok, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(numTok.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sqlparse: bad LIMIT %q", numTok.text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (*SelectItem, error) {
	item := &SelectItem{}
	// Aggregate call? bare ident '(' with aggregate name (a quoted
	// "count" is a column, never a call).
	if p.peek().kind == tokIdent && !p.peek().quoted && agg.IsAggregate(p.peek().text) &&
		p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
		name := strings.ToLower(p.next().text)
		p.next() // '('
		call := &AggCall{Name: name}
		if p.accept(tokSymbol, "*") {
			if name != "count" {
				return nil, fmt.Errorf("sqlparse: %s(*) is only valid for count", name)
			}
			call.Star = true
		} else {
			call.Distinct = p.keyword("distinct")
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Arg = arg
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		item.Agg = call
	} else {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item.Expr = e
	}
	if p.keyword("as") {
		aliasTok, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, fmt.Errorf("sqlparse: expected alias: %w", err)
		}
		item.Alias = aliasTok.text
	} else if p.peek().kind == tokIdent &&
		(p.peek().quoted || !reservedAfterExpr[strings.ToLower(p.peek().text)]) {
		item.Alias = p.next().text
	}
	return item, nil
}

// Expression grammar (precedence climbing):
//
//	orExpr   := andExpr (OR andExpr)*
//	andExpr  := notExpr (AND notExpr)*
//	notExpr  := NOT notExpr | cmpExpr
//	cmpExpr  := addExpr [(=|!=|<|<=|>|>=) addExpr
//	             | [NOT] IN (...) | [NOT] LIKE str
//	             | [NOT] BETWEEN addExpr AND addExpr | IS [NOT] NULL]
//	addExpr  := mulExpr ((+|-) mulExpr)*
//	mulExpr  := unary ((*|/|%) unary)*
//	unary    := - unary | primary
//	primary  := literal | ident | func(...) | ( orExpr )
func (p *parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = expr.NewBin(expr.OpOr, left, right)
	}
	return left, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.keyword("and") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = expr.NewBin(expr.OpAnd, left, right)
	}
	return left, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.keyword("not") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return expr.NewNot(x), nil
	}
	return p.parseComparison()
}

var cmpOps = map[string]expr.BinOp{
	"=": expr.OpEq, "!=": expr.OpNeq, "<": expr.OpLt,
	"<=": expr.OpLe, ">": expr.OpGt, ">=": expr.OpGe,
}

func (p *parser) parseComparison() (expr.Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokSymbol {
		if op, ok := cmpOps[p.peek().text]; ok {
			p.next()
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return expr.NewBin(op, left, right), nil
		}
	}
	invert := false
	if p.at(tokIdent, "not") {
		// lookahead for NOT IN / NOT LIKE / NOT BETWEEN
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokIdent {
			nxt := strings.ToLower(p.toks[p.pos+1].text)
			if nxt == "in" || nxt == "like" || nxt == "between" {
				p.next()
				invert = true
			}
		}
	}
	switch {
	case p.keyword("in"):
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var list []expr.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &expr.In{X: left, List: list, Invert: invert}, nil
	case p.keyword("like"):
		patTok, err := p.expect(tokString, "")
		if err != nil {
			return nil, fmt.Errorf("sqlparse: LIKE wants a string pattern: %w", err)
		}
		return &expr.Like{X: left, Pattern: patTok.text, Invert: invert}, nil
	case p.keyword("between"):
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokIdent, "and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &expr.Between{X: left, Lo: lo, Hi: hi, Invert: invert}, nil
	case p.keyword("is"):
		neg := p.keyword("not")
		if _, err := p.expect(tokIdent, "null"); err != nil {
			return nil, err
		}
		return &expr.IsNull{X: left, Invert: neg}, nil
	}
	if invert {
		return nil, fmt.Errorf("sqlparse: dangling NOT at %s", p.peek())
	}
	return left, nil
}

func (p *parser) parseAdd() (expr.Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.BinOp
		switch {
		case p.accept(tokSymbol, "+"):
			op = expr.OpAdd
		case p.accept(tokSymbol, "-"):
			op = expr.OpSub
		default:
			return left, nil
		}
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = expr.NewBin(op, left, right)
	}
}

func (p *parser) parseMul() (expr.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.BinOp
		switch {
		case p.accept(tokSymbol, "*"):
			op = expr.OpMul
		case p.accept(tokSymbol, "/"):
			op = expr.OpDiv
		case p.accept(tokSymbol, "%"):
			op = expr.OpMod
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = expr.NewBin(op, left, right)
	}
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if p.accept(tokSymbol, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative literals for cleaner rendering.
		if lit, ok := x.(*expr.Lit); ok {
			switch lit.Val.T {
			case engine.TInt:
				return expr.Int(-lit.Val.I), nil
			case engine.TFloat:
				return expr.Float(-lit.Val.F), nil
			}
		}
		return expr.NewNeg(x), nil
	}
	p.accept(tokSymbol, "+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if !strings.ContainsAny(t.text, ".eE") {
			i, err := strconv.ParseInt(t.text, 10, 64)
			if err == nil {
				return expr.Int(i), nil
			}
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlparse: bad number %q", t.text)
		}
		return expr.Float(f), nil
	case tokString:
		p.next()
		return expr.Str(t.text), nil
	case tokIdent:
		lower := strings.ToLower(t.text)
		// Literal spellings and calls apply to BARE identifiers only; a
		// quoted "null"/"true"/"count" is a column named that.
		if !t.quoted {
			switch lower {
			case "null":
				p.next()
				return expr.NewLit(engine.Null), nil
			case "true":
				p.next()
				return expr.NewLit(engine.NewBool(true)), nil
			case "false":
				p.next()
				return expr.NewLit(engine.NewBool(false)), nil
			}
		}
		// function call?
		if !t.quoted && p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
			if agg.IsAggregate(lower) {
				// Aggregate calls outside the select list (HAVING,
				// ORDER BY) parse as references to the output column of
				// the same rendered name, e.g. "count(*)". Resolution
				// against the source schema (i.e. in WHERE) fails with
				// an unknown-column error, which is the correct
				// diagnosis: aggregates are not allowed there.
				p.next()
				p.next() // '('
				call := &AggCall{Name: lower}
				if p.accept(tokSymbol, "*") {
					if lower != "count" {
						return nil, fmt.Errorf("sqlparse: %s(*) is only valid for count", lower)
					}
					call.Star = true
				} else {
					call.Distinct = p.keyword("distinct")
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Arg = arg
				}
				if _, err := p.expect(tokSymbol, ")"); err != nil {
					return nil, err
				}
				return expr.NewCol(call.String()), nil
			}
			if !expr.IsScalarFunc(lower) {
				return nil, fmt.Errorf("sqlparse: unknown function %q", t.text)
			}
			p.next()
			p.next() // '('
			var args []expr.Expr
			if !p.at(tokSymbol, ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(tokSymbol, ",") {
						break
					}
				}
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return expr.NewFunc(lower, args...), nil
		}
		p.next()
		return expr.NewCol(t.text), nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("sqlparse: unexpected token %s", t)
}
