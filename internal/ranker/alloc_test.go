package ranker

import (
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
	"repro/internal/influence"
	"repro/internal/predicate"
)

// TestScoreFastZeroAlloc pins per-predicate scoring to zero steady-state
// allocations once the context is prepared (clause masks warm, target
// bitsets populated, scratch buffers sized). This is the acceptance
// guard for the columnar fast path: any regression that reintroduces
// per-candidate maps or boxed values shows up here as a test failure,
// not just a slower benchmark.
func TestScoreFastZeroAlloc(t *testing.T) {
	res, ctx := fixture(t)
	ctx.prepare()
	if !ctx.fastOK {
		t.Fatal("fast path unavailable for avg aggregate")
	}
	env := ctx.newEnv()
	c := Candidate{Pred: memoPred(), Origin: "test", Target: badTarget(res)}
	c.targetBits = targetBitsOf(c.Target, ctx.Res.Source.NumRows())
	if _, ok := scoreWith(c, ctx, env); !ok { // warm clause masks + scratch
		t.Fatal("candidate rejected")
	}
	allocs := testing.AllocsPerRun(100, func() {
		scoreWith(c, ctx, env)
	})
	if allocs != 0 {
		t.Fatalf("scoreWith allocates %v per run, want 0", allocs)
	}
}

// TestScoreFastMatchesSlow asserts the columnar and boxed scoring paths
// produce identical Scored values on the same candidate — including
// when Population is a capped learner sample that misses lineage rows
// (core's MaxLearnRows), where ε must still reflect the full lineage.
func TestScoreFastMatchesSlow(t *testing.T) {
	for _, sampledPop := range []bool{false, true} {
		res, ctx := fixture(t)
		if sampledPop {
			// Every other lineage row: Population ⊊ F, like learnPop.
			for i, r := range ctx.F {
				if i%2 == 0 {
					ctx.Population = append(ctx.Population, r)
				}
			}
		}
		ctx.prepare()
		if !ctx.fastOK {
			t.Fatal("fast path unavailable")
		}
		w := ctx.Weights
		if w == (Weights{}) {
			w = DefaultWeights()
		}
		for _, c := range []Candidate{
			{Pred: memoPred(), Origin: "test", Target: badTarget(res)},
			{Pred: memoPred(), Origin: "test"}, // no target
		} {
			fastSc, fastOK := scoreFast(c, ctx, ctx.newEnv(), w)
			slowSc, slowOK := scoreSlow(c, ctx, w)
			if fastOK != slowOK {
				t.Fatalf("sampledPop=%v: ok mismatch: fast=%v slow=%v", sampledPop, fastOK, slowOK)
			}
			if !reflect.DeepEqual(fastSc, slowSc) {
				t.Fatalf("sampledPop=%v: score mismatch:\n fast: %+v\n slow: %+v", sampledPop, fastSc, slowSc)
			}
		}
	}
}

// TestRankAllBoxedFallbackParallel ranks many candidates over a
// DISTINCT aggregate, which has no float fast path: the parallel worker
// pool must drive the boxed scoring path concurrently without racing on
// the shared aggregate states (run under -race in CI to enforce it).
func TestRankAllBoxedFallbackParallel(t *testing.T) {
	tbl := engine.MustNewTable("t", engine.NewSchema(
		"k", engine.TInt, "v", engine.TFloat, "memo", engine.TString))
	for i := 0; i < 2000; i++ {
		memo, v := "", float64(i%40)
		if i%5 == 3 {
			memo, v = "BAD", 100+float64(i%7)
		}
		tbl.MustAppendRow(engine.NewInt(0), engine.NewFloat(v), engine.NewString(memo))
	}
	db := engine.NewDB()
	db.Register(tbl)
	res, err := exec.RunSQL(db, "SELECT k, sum(DISTINCT v) AS s FROM t GROUP BY k")
	if err != nil {
		t.Fatal(err)
	}
	metric := errmetric.TooHigh{C: 100}
	F := res.Lineage([]int{0})
	eps, err := influence.EpsWithoutRows(res, []int{0}, 0, metric, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Context{Res: res, Suspect: []int{0}, Ord: 0, Metric: metric, F: F, Eps: eps}
	var cands []Candidate
	for th := 10.0; th <= 100; th += 10 {
		cands = append(cands, Candidate{
			Pred:   predicate.New(predicate.Clause{Col: "v", Op: predicate.OpGt, Val: engine.NewFloat(th)}),
			Origin: "test",
		})
	}
	cands = append(cands, Candidate{Pred: memoPred(), Origin: "test"})
	out := RankAll(cands, ctx)
	if ctx.fastOK {
		t.Fatal("DISTINCT aggregate should not have a float fast path")
	}
	if len(out) == 0 {
		t.Fatal("no candidates survived ranking")
	}
}
