// Package ranker implements the Predicate Ranker: the final backend
// stage that scores each candidate predicate. Per the paper, the score
// "increases with improvement in the error metric, and the accuracy of
// the tree at differentiating Dᶜᵢ from F − Dᶜᵢ, and decreases by the
// complexity (number of terms in) the predicate."
package ranker

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/bitset"
	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
	"repro/internal/influence"
	"repro/internal/predicate"
)

// Candidate is a predicate awaiting scoring, tagged with its origin
// (which learner and candidate dataset produced it) for explainability.
type Candidate struct {
	Pred   predicate.Predicate
	Origin string
	// Target is the candidate dataset Dᶜᵢ this predicate was learned to
	// describe (source row ids); accuracy is measured against it.
	Target map[int]bool
	// targetBits is Target as a bitset, populated once per candidate by
	// RankAll so pruning variants don't re-hash the map.
	targetBits *bitset.Bitset
}

// Weights are the mixing coefficients of the score terms.
type Weights struct {
	// Err weighs the relative error-metric improvement (0..1).
	Err float64
	// Acc weighs the F1 of the predicate at separating the candidate
	// dataset from the rest of the lineage.
	Acc float64
	// Complexity is the penalty per clause beyond the first.
	Complexity float64
	// Excess penalizes indiscriminate predicates: it scales with the
	// fraction of matched lineage tuples that are NOT high-influence
	// ("culpable"). Surgical predicates that remove only culpable tuples
	// pay nothing; "delete everything" predicates pay the full weight.
	Excess float64
}

// DefaultWeights balances error repair and description accuracy with a
// mild parsimony pressure.
func DefaultWeights() Weights {
	return Weights{Err: 0.45, Acc: 0.45, Complexity: 0.04, Excess: 0.2}
}

// Context carries everything scoring needs.
type Context struct {
	// Ctx cancels a ranking pass: the worker pool polls it before every
	// candidate, and RankAllCarry/Rescore return an error wrapping the
	// context error instead of a truncated ranking. Nil means
	// context.Background (never cancelled).
	Ctx     context.Context
	Res     *exec.Result
	Suspect []int
	Ord     int // aggregate ordinal
	Metric  errmetric.Metric
	// F is the suspect groups' lineage.
	F []int
	// Population is the learning population: F plus any sampled contrast
	// tuples. Accuracy and tautology checks run over it. Nil means F.
	Population []int
	// Culpable marks the high-influence lineage tuples (from the
	// preprocessor's leave-one-out analysis); the Excess term uses it.
	// Nil disables the Excess term.
	Culpable map[int]bool
	// Eps is ε before any removal.
	Eps float64
	// Weights mixes the score terms (zero value → DefaultWeights).
	Weights Weights
	// DisablePrune turns off greedy clause pruning (ablation).
	DisablePrune bool
	// DisableMerge turns off pairwise predicate merging (ablation).
	DisableMerge bool
	// Scorer enables the columnar scoring fast path. Left nil, RankAll
	// builds one automatically (and silently keeps the boxed path when
	// the aggregate has no float fast path, e.g. DISTINCT).
	Scorer *influence.Scorer
	// Index caches vectorized per-clause match masks over Res.Source;
	// built automatically when nil and the fast path is active.
	Index *predicate.Index

	// prepared lazily by prepare(): bitset forms of Population, F and
	// Culpable, shared read-only across scoring goroutines.
	prepOnce     sync.Once
	popBits      *bitset.Bitset
	fBits        *bitset.Bitset
	culpableBits *bitset.Bitset
	popCount     int
	fastOK       bool
}

// prepare builds the shared read-only scoring state exactly once. Like
// influence.Scorer, the prepared Context is a snapshot of Res.Source at
// prepare time: appending rows to the source table while reusing the
// same Context is not supported (build a fresh Context after the table
// changes — scoring a grown table against stale lineage would be wrong
// even if the bitset sizes happened to line up).
func (ctx *Context) prepare() {
	ctx.prepOnce.Do(func() {
		if ctx.Scorer == nil {
			sc, err := influence.NewScorer(ctx.Res, ctx.Suspect, ctx.Ord, ctx.Metric)
			if err != nil {
				return // boxed fallback
			}
			ctx.Scorer = sc
		}
		if ctx.Index == nil {
			// Per-context index, collected with the ranking pass.
			// Callers chaining incremental Debugs (core.DebugAdvance)
			// pass in a longer-lived index instead, so carried
			// candidates' masks extend by suffix across batches. The
			// family-shared predicate.Shared index is deliberately NOT
			// used here: candidate thresholds are data-dependent and
			// churn per pass, and that cache never evicts.
			ctx.Index = predicate.NewIndex(ctx.Res.Source)
		}
		n := ctx.Res.Source.NumRows()
		pop := ctx.Population
		if pop == nil {
			pop = ctx.F
		}
		ctx.popBits = bitset.FromRows(n, pop)
		ctx.popCount = ctx.popBits.Count()
		ctx.fBits = bitset.FromRows(n, ctx.F)
		if len(ctx.Culpable) > 0 {
			ctx.culpableBits = targetBitsOf(ctx.Culpable, n)
		}
		ctx.fastOK = true
	})
}

// scoreEnv is one goroutine's reusable scoring buffers.
type scoreEnv struct {
	scratch *influence.Scratch
	pb, mb  *bitset.Bitset
}

func (ctx *Context) newEnv() *scoreEnv {
	if !ctx.fastOK {
		return &scoreEnv{}
	}
	n := ctx.Res.Source.NumRows()
	return &scoreEnv{
		scratch: ctx.Scorer.NewScratch(),
		pb:      bitset.New(n),
		mb:      bitset.New(n),
	}
}

// Scored is a fully scored explanation.
type Scored struct {
	Pred   predicate.Predicate
	Origin string
	// Provenance records how this entry reached the ranking: "fresh"
	// (produced by the learners in this pass) or "carried" (rescored
	// from a previous pass's RankerState by an incremental Debug).
	Provenance string
	// ErrImprovement is (ε − ε_after)/ε, clamped to [0, 1] (0 when ε=0).
	ErrImprovement float64
	// EpsAfter is ε after removing the predicate's tuples.
	EpsAfter float64
	// Precision/Recall/F1 measure how well the predicate separates its
	// target candidate dataset from the rest of F.
	Precision, Recall, F1 float64
	// Complexity is the number of clauses.
	Complexity int
	// NumTuples is how many lineage tuples the predicate matches.
	NumTuples int
	// CulpableFrac is the fraction of matched lineage tuples that are
	// high-influence (1 when the context has no culpability data).
	CulpableFrac float64
	// Score is the final ranking score.
	Score float64
}

// String renders a one-line summary.
func (s Scored) String() string {
	return fmt.Sprintf("%.3f  %s  (Δε=%.0f%%, F1=%.2f, %d tuples, %s)",
		s.Score, s.Pred, 100*s.ErrImprovement, s.F1, s.NumTuples, s.Origin)
}

// Score evaluates one candidate. ok is false when the predicate matches
// no lineage tuples (vacuous) or matches all of them (tautological).
func Score(c Candidate, ctx *Context) (Scored, bool) {
	ctx.prepare()
	return scoreWith(c, ctx, ctx.newEnv())
}

// scoreWith evaluates one candidate using env's reusable buffers. When
// the context has a columnar fast path, matching and ε re-evaluation run
// entirely on bitsets and flat float columns; otherwise it falls back to
// the boxed row-at-a-time path. Both paths produce identical Scored
// values.
func scoreWith(c Candidate, ctx *Context, env *scoreEnv) (Scored, bool) {
	w := ctx.Weights
	if w == (Weights{}) {
		w = DefaultWeights()
	}
	if ctx.fastOK && env.scratch != nil {
		return scoreFast(c, ctx, env, w)
	}
	return scoreSlow(c, ctx, w)
}

// scoreFast is the vectorized scoring path: clause-mask ANDs for
// matching, word-level intersection counting for accuracy/culpability,
// and Scorer.EpsWithoutBits for the counterfactual ε. Steady state
// (clause masks warm, target bits populated) it allocates nothing.
func scoreFast(c Candidate, ctx *Context, env *scoreEnv, w Weights) (Scored, bool) {
	pb := ctx.Index.MatchInto(c.Pred, ctx.popBits, env.pb)
	nPop := pb.Count()
	// Vacuous and tautological predicates explain nothing.
	if nPop == 0 || nPop == ctx.popCount {
		return Scored{}, false
	}
	// Match against the FULL lineage, not pb ∩ F: the Population may be
	// a capped learner sample (core's MaxLearnRows) that misses lineage
	// rows, and ε must reflect removing every matched lineage tuple.
	mb := ctx.Index.MatchInto(c.Pred, ctx.fBits, env.mb)
	nMatched := mb.Count()
	if nMatched == 0 {
		return Scored{}, false
	}
	epsAfter := ctx.Scorer.EpsWithoutBits(mb, env.scratch)
	if math.IsNaN(epsAfter) {
		epsAfter = 0
	}
	s := Scored{
		Pred:       c.Pred,
		Origin:     c.Origin,
		EpsAfter:   epsAfter,
		Complexity: c.Pred.Len(),
		NumTuples:  nMatched,
	}
	if ctx.Eps > 0 {
		s.ErrImprovement = (ctx.Eps - epsAfter) / ctx.Eps
		if s.ErrImprovement < 0 {
			s.ErrImprovement = 0
		}
		if s.ErrImprovement > 1 {
			s.ErrImprovement = 1
		}
	}
	if len(c.Target) > 0 {
		tb := c.targetBits
		if tb == nil {
			tb = targetBitsOf(c.Target, ctx.Res.Source.NumRows())
		}
		hit := bitset.AndCount(pb, tb)
		s.Precision = float64(hit) / float64(nPop)
		s.Recall = float64(hit) / float64(len(c.Target))
		if s.Precision+s.Recall > 0 {
			s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
		}
	}
	s.CulpableFrac = 1
	if ctx.culpableBits != nil {
		hit := bitset.AndCount(mb, ctx.culpableBits)
		s.CulpableFrac = float64(hit) / float64(nMatched)
	}
	s.Score = finalScore(&s, w)
	return s, true
}

// scoreSlow is the original boxed path, kept for aggregates without a
// float fast path (e.g. DISTINCT) and as the parity reference.
func scoreSlow(c Candidate, ctx *Context, w Weights) (Scored, bool) {
	pop := ctx.Population
	if pop == nil {
		pop = ctx.F
	}
	matchedPop := c.Pred.MatchingRows(ctx.Res.Source, pop)
	// Vacuous and tautological predicates explain nothing.
	if len(matchedPop) == 0 || len(matchedPop) == len(pop) {
		return Scored{}, false
	}
	matched := c.Pred.MatchingRows(ctx.Res.Source, ctx.F)
	if len(matched) == 0 {
		return Scored{}, false
	}
	epsAfter, err := influence.EpsWithoutRows(ctx.Res, ctx.Suspect, ctx.Ord, ctx.Metric, matched)
	if err != nil {
		return Scored{}, false
	}
	if math.IsNaN(epsAfter) {
		epsAfter = 0
	}
	s := Scored{
		Pred:       c.Pred,
		Origin:     c.Origin,
		EpsAfter:   epsAfter,
		Complexity: c.Pred.Len(),
		NumTuples:  len(matched),
	}
	if ctx.Eps > 0 {
		s.ErrImprovement = (ctx.Eps - epsAfter) / ctx.Eps
		if s.ErrImprovement < 0 {
			s.ErrImprovement = 0
		}
		if s.ErrImprovement > 1 {
			s.ErrImprovement = 1
		}
	}
	if len(c.Target) > 0 {
		var hit int
		for _, r := range matchedPop {
			if c.Target[r] {
				hit++
			}
		}
		s.Precision = float64(hit) / float64(len(matchedPop))
		s.Recall = float64(hit) / float64(len(c.Target))
		if s.Precision+s.Recall > 0 {
			s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
		}
	}
	s.CulpableFrac = 1
	if len(ctx.Culpable) > 0 {
		hit := 0
		for _, r := range matched {
			if ctx.Culpable[r] {
				hit++
			}
		}
		s.CulpableFrac = float64(hit) / float64(len(matched))
	}
	s.Score = finalScore(&s, w)
	return s, true
}

func finalScore(s *Scored, w Weights) float64 {
	comp := float64(s.Complexity - 1)
	if comp < 0 {
		comp = 0
	}
	return w.Err*s.ErrImprovement + w.Acc*s.F1 - w.Complexity*comp - w.Excess*(1-s.CulpableFrac)
}

// targetBitsOf converts a target row set to a bitset over source rows.
func targetBitsOf(target map[int]bool, n int) *bitset.Bitset {
	b := bitset.New(n)
	for r, ok := range target {
		if ok {
			b.Set(r)
		}
	}
	return b
}

// Prune greedily drops clauses that do not hurt the score: subgroup
// rules and deep tree paths often carry incidental conjuncts (an
// arbitrary timestamp bound, a humidity range that merely correlates),
// and the paper wants *compact* predicates. Each round re-scores every
// one-clause-removed variant and keeps the best while it is at least as
// good as the current predicate.
func Prune(c Candidate, sc Scored, ctx *Context) (Candidate, Scored) {
	ctx.prepare()
	return pruneWith(c, sc, ctx, ctx.newEnv())
}

func pruneWith(c Candidate, sc Scored, ctx *Context, env *scoreEnv) (Candidate, Scored) {
	for len(c.Pred.Clauses) > 1 {
		improved := false
		for drop := range c.Pred.Clauses {
			var variant Candidate
			variant.Origin = c.Origin
			variant.Target = c.Target
			variant.targetBits = c.targetBits
			variant.Pred.Clauses = make([]predicate.Clause, 0, len(c.Pred.Clauses)-1)
			variant.Pred.Clauses = append(variant.Pred.Clauses, c.Pred.Clauses[:drop]...)
			variant.Pred.Clauses = append(variant.Pred.Clauses, c.Pred.Clauses[drop+1:]...)
			vs, ok := scoreWith(variant, ctx, env)
			if ok && vs.Score >= sc.Score {
				c, sc = variant, vs
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return c, sc
}

// mergePredicates builds the least conjunction covering both inputs:
// per column, numeric bounds widen to the union envelope, equalities on
// the same value survive, and conflicting constraints drop. It returns
// ok=false when the two predicates constrain different column sets
// (merging those would be a semantic leap, not a widening).
func mergePredicates(a, b predicate.Predicate) (predicate.Predicate, bool) {
	colsOf := func(p predicate.Predicate) map[string]bool {
		m := map[string]bool{}
		for _, c := range p.Columns() {
			m[strings.ToLower(c)] = true
		}
		return m
	}
	ca, cb := colsOf(a), colsOf(b)
	if len(ca) != len(cb) {
		return predicate.Predicate{}, false
	}
	for k := range ca {
		if !cb[k] {
			return predicate.Predicate{}, false
		}
	}
	var out predicate.Predicate
	for col := range ca {
		ac := clausesFor(a, col)
		bc := clausesFor(b, col)
		merged, ok := mergeColumn(ac, bc)
		if !ok {
			// Unconstrained column in the merge — acceptable only if it
			// leaves at least one clause overall; continue.
			continue
		}
		out.Clauses = append(out.Clauses, merged...)
	}
	if out.IsTrue() {
		return out, false
	}
	simplified, ok := out.Simplify()
	if !ok {
		return predicate.Predicate{}, false
	}
	return simplified, true
}

func clausesFor(p predicate.Predicate, colLower string) []predicate.Clause {
	var out []predicate.Clause
	for _, c := range p.Clauses {
		if strings.ToLower(c.Col) == colLower {
			out = append(out, c)
		}
	}
	return out
}

// mergeColumn widens one column's constraints to cover both sides.
func mergeColumn(a, b []predicate.Clause) ([]predicate.Clause, bool) {
	// Same single equality on both sides survives.
	if len(a) == 1 && len(b) == 1 && a[0].Op == predicate.OpEq && b[0].Op == predicate.OpEq {
		if engine.Equal(a[0].Val, b[0].Val) {
			return []predicate.Clause{a[0]}, true
		}
		return nil, false // would need IN; drop the constraint
	}
	// Bound envelope: keep the loosest lower and upper bounds present on
	// BOTH sides (a bound present on only one side must drop, or the
	// merge would not cover the other predicate).
	lower := func(cs []predicate.Clause) (predicate.Clause, bool) {
		for _, c := range cs {
			if c.Op == predicate.OpGe || c.Op == predicate.OpGt {
				return c, true
			}
		}
		return predicate.Clause{}, false
	}
	upper := func(cs []predicate.Clause) (predicate.Clause, bool) {
		for _, c := range cs {
			if c.Op == predicate.OpLe || c.Op == predicate.OpLt {
				return c, true
			}
		}
		return predicate.Clause{}, false
	}
	var out []predicate.Clause
	if la, okA := lower(a); okA {
		if lb, okB := lower(b); okB {
			if cmp, err := engine.Compare(la.Val, lb.Val); err == nil {
				if cmp <= 0 {
					out = append(out, la)
				} else {
					out = append(out, lb)
				}
			}
		}
	}
	if ua, okA := upper(a); okA {
		if ub, okB := upper(b); okB {
			if cmp, err := engine.Compare(ua.Val, ub.Val); err == nil {
				if cmp >= 0 {
					out = append(out, ua)
				} else {
					out = append(out, ub)
				}
			}
		}
	}
	if len(out) == 0 {
		return nil, false
	}
	return out, true
}

// MergeAdjacent tries pairwise merges of the scored predicates (the
// MERGER idea from Scorpion, the full-paper successor of this demo):
// when the least-widening conjunction covering two predicates scores at
// least as well as both, it replaces them. One pass over the top
// results.
func MergeAdjacent(scored []Scored, targets map[string]map[int]bool, ctx *Context) []Scored {
	const maxPairwise = 12
	ctx.prepare()
	env := ctx.newEnv() // one reusable env for every pairwise attempt
	targetBits := map[string]*bitset.Bitset{}
	n := len(scored)
	if n > maxPairwise {
		n = maxPairwise
	}
	dead := make([]bool, len(scored))
	var added []Scored
	for i := 0; i < n; i++ {
		if dead[i] {
			continue
		}
		for j := i + 1; j < n; j++ {
			if dead[i] || dead[j] {
				continue
			}
			merged, ok := mergePredicates(scored[i].Pred, scored[j].Pred)
			if !ok {
				continue
			}
			key := scored[i].Pred.Key()
			target := targets[key]
			cand := Candidate{Pred: merged, Origin: scored[i].Origin + "+merge", Target: target}
			if ctx.fastOK && len(target) > 0 {
				if targetBits[key] == nil {
					targetBits[key] = targetBitsOf(target, ctx.Res.Source.NumRows())
				}
				cand.targetBits = targetBits[key]
			}
			sc, ok := scoreWith(cand, ctx, env)
			if !ok {
				continue
			}
			if sc.Score >= scored[i].Score && sc.Score >= scored[j].Score {
				dead[i] = true
				dead[j] = true
				added = append(added, sc)
				// Record the merged predicate's target so the carry
				// state (RankerState) can rescore it next batch.
				targets[sc.Pred.Key()] = target
			}
		}
	}
	out := make([]Scored, 0, len(scored)+len(added))
	for i, s := range scored {
		if !dead[i] {
			out = append(out, s)
		}
	}
	out = append(out, added...)
	sortScored(out)
	return out
}

func sortScored(out []Scored) {
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Complexity != out[j].Complexity {
			return out[i].Complexity < out[j].Complexity
		}
		return out[i].NumTuples < out[j].NumTuples
	})
}

// RankAll scores every candidate, prunes incidental clauses,
// deduplicates by canonical predicate key (keeping the best score), and
// returns the survivors sorted by descending score (ties: fewer
// clauses, then fewer tuples).
//
// Scoring and pruning run in parallel across a worker pool: once the
// context is prepared, the scoring inputs (clause masks, lineage
// bitsets, flat argument columns) are read-only shared state, so each
// candidate is independent. Results are collected by slot index, keeping
// the final ranking deterministic.
func RankAll(cands []Candidate, ctx *Context) []Scored {
	out, _, _ := RankAllCarry(cands, ctx)
	return out
}

// RankAllCarry is RankAll plus the carryable state of the survivors:
// the returned RankerState holds every ranked predicate with its frozen
// target set and score, ready for an incremental Debug over a grown
// table to rescore without re-running the learners. The only possible
// error wraps ctx.Ctx's cancellation; nothing is published on error.
func RankAllCarry(cands []Candidate, ctx *Context) ([]Scored, *RankerState, error) {
	out, targets, _, err := rankCore(cands, ctx, "fresh")
	if err != nil {
		return nil, nil, err
	}
	return out, newRankerState(out, targets), nil
}

// rankCore is the shared ranking pass behind RankAll, RankAllCarry and
// RankerState.Rescore: worker-pool scoring + pruning, key dedup, sort,
// pairwise merging. It additionally returns the target set per final
// predicate key and, aligned with cands, each candidate's raw
// (pre-prune) score — NaN for candidates that scored vacuous or
// tautological — which Rescore turns into the drift signal.
func rankCore(cands []Candidate, ctx *Context, provenance string) ([]Scored, map[string]map[int]bool, []float64, error) {
	cctx := ctx.Ctx
	if cctx == nil {
		cctx = context.Background()
	}
	ctx.prepare()
	if ctx.fastOK {
		// Populate target bitsets up front so pruning variants and
		// parallel workers share them instead of re-hashing the maps.
		for i := range cands {
			if len(cands[i].Target) > 0 && cands[i].targetBits == nil {
				cands[i].targetBits = targetBitsOf(cands[i].Target, ctx.Res.Source.NumRows())
			}
		}
	}

	type slot struct {
		c  Candidate
		sc Scored
		ok bool
	}
	slots := make([]slot, len(cands))
	raw := make([]float64, len(cands))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			env := ctx.newEnv()
			for i := range jobs {
				// Cancellation check per candidate: remaining jobs drain
				// unscored so the producer never blocks, and rankCore
				// discards everything after the pool joins.
				if cctx.Err() != nil {
					raw[i] = math.NaN()
					continue
				}
				c := cands[i]
				sc, ok := scoreWith(c, ctx, env)
				if ok {
					raw[i] = sc.Score
				} else {
					raw[i] = math.NaN()
				}
				if ok && !ctx.DisablePrune {
					c, sc = pruneWith(c, sc, ctx, env)
				}
				slots[i] = slot{c: c, sc: sc, ok: ok}
			}
		}()
	}
	for i := range cands {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if err := cctx.Err(); err != nil {
		return nil, nil, nil, fmt.Errorf("ranker: cancelled: %w", err)
	}

	byKey := make(map[string]Scored)
	targets := make(map[string]map[int]bool)
	var order []string
	for i := range slots {
		if !slots[i].ok {
			continue
		}
		c, sc := slots[i].c, slots[i].sc
		key := c.Pred.Key()
		prev, seen := byKey[key]
		if !seen {
			order = append(order, key)
			byKey[key] = sc
			targets[key] = c.Target
		} else if sc.Score > prev.Score {
			byKey[key] = sc
			targets[key] = c.Target
		}
	}
	out := make([]Scored, 0, len(order))
	for _, k := range order {
		out = append(out, byKey[k])
	}
	sortScored(out)
	if !ctx.DisableMerge {
		out = MergeAdjacent(out, targets, ctx)
	}
	for i := range out {
		out[i].Provenance = provenance
	}
	return out, targets, raw, nil
}

// RankerState carries one ranking pass's survivors — predicates, their
// frozen target sets, and the scores they were reported with — so a
// following incremental Debug over a grown table can rescore exactly
// these candidates against the advanced scoring state instead of
// re-running the learners. The state is immutable; Rescore returns a
// fresh state for the next step of the chain.
type RankerState struct {
	cands  []Candidate
	scores []float64
}

// newRankerState snapshots the full ranked list (pre-truncation).
func newRankerState(scored []Scored, targets map[string]map[int]bool) *RankerState {
	st := &RankerState{
		cands:  make([]Candidate, len(scored)),
		scores: make([]float64, len(scored)),
	}
	for i, s := range scored {
		st.cands[i] = Candidate{Pred: s.Pred, Origin: s.Origin, Target: targets[s.Pred.Key()]}
		st.scores[i] = s.Score
	}
	return st
}

// Len returns the number of carried candidates.
func (st *RankerState) Len() int {
	if st == nil {
		return 0
	}
	return len(st.cands)
}

// Rescore scores the carried candidates against ctx — typically the
// advanced context of a grown table — through the same worker pool,
// pruning, dedup and merge mechanics as RankAll, and reports how far
// the carried predicates' raw scores moved since the previous pass:
// drift is the largest |new−old| over the carried candidates, +Inf when
// a previously-ranked predicate scored vacuous or tautological under
// the new data (its anomaly dissolved — a material change no score
// delta can bound). The caller compares drift against its threshold to
// decide whether the carried ranking stands or the learners must
// re-expand. A cancellation (ctx.Ctx) returns an error and leaves st
// untouched and reusable — rankCore works on copies throughout.
func (st *RankerState) Rescore(ctx *Context) ([]Scored, *RankerState, float64, error) {
	// Work on copies: the state's candidates stay clean (targetBits are
	// sized to a specific table version and must be rebuilt here).
	cands := make([]Candidate, len(st.cands))
	copy(cands, st.cands)
	out, targets, raw, err := rankCore(cands, ctx, "carried")
	if err != nil {
		return nil, nil, 0, err
	}
	drift := 0.0
	for i := range raw {
		if math.IsNaN(raw[i]) {
			drift = math.Inf(1)
			break
		}
		if d := math.Abs(raw[i] - st.scores[i]); d > drift {
			drift = d
		}
	}
	return out, newRankerState(out, targets), drift, nil
}
