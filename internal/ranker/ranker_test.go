package ranker

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
	"repro/internal/predicate"
)

// fixture: one group with a planted anomaly (memo='BAD' rows are large).
func fixture(t *testing.T) (*exec.Result, *Context) {
	t.Helper()
	tbl := engine.MustNewTable("t", engine.NewSchema(
		"k", engine.TInt, "v", engine.TFloat, "memo", engine.TString, "site", engine.TInt))
	for i := 0; i < 40; i++ {
		memo, v := "", 10.0
		site := int64(i % 4)
		if i%4 == 3 { // 10 rows: the anomaly, all at site 3
			memo, v = "BAD", 100.0
		}
		tbl.MustAppendRow(engine.NewInt(0), engine.NewFloat(v), engine.NewString(memo), engine.NewInt(site))
	}
	db := engine.NewDB()
	db.Register(tbl)
	res, err := exec.RunSQL(db, "SELECT k, avg(v) AS a FROM t GROUP BY k")
	if err != nil {
		t.Fatal(err)
	}
	F := res.Lineage([]int{0})
	target := map[int]bool{}
	culpable := map[int]bool{}
	for _, r := range F {
		if tbl.Value(r, 2).Str() == "BAD" {
			target[r] = true
			culpable[r] = true
		}
	}
	metric := errmetric.TooHigh{C: 15}
	eps := metric.Eval([]float64{32.5}) // avg = (30*10+10*100)/40 = 32.5
	ctx := &Context{
		Res: res, Suspect: []int{0}, Ord: 0,
		Metric: metric, F: F, Eps: eps, Culpable: culpable,
	}
	_ = target
	return res, ctx
}

func badTarget(res *exec.Result) map[int]bool {
	target := map[int]bool{}
	for _, r := range res.Lineage([]int{0}) {
		if res.Source.Value(r, 2).Str() == "BAD" {
			target[r] = true
		}
	}
	return target
}

func memoPred() predicate.Predicate {
	return predicate.New(predicate.Clause{Col: "memo", Op: predicate.OpEq, Val: engine.NewString("BAD")})
}

func TestScoreGoodPredicate(t *testing.T) {
	res, ctx := fixture(t)
	sc, ok := Score(Candidate{Pred: memoPred(), Origin: "test", Target: badTarget(res)}, ctx)
	if !ok {
		t.Fatal("good predicate rejected")
	}
	if sc.ErrImprovement < 0.99 {
		t.Errorf("errImprovement %.2f", sc.ErrImprovement)
	}
	if sc.F1 < 0.99 || sc.Precision < 0.99 || sc.Recall < 0.99 {
		t.Errorf("accuracy: P=%.2f R=%.2f F1=%.2f", sc.Precision, sc.Recall, sc.F1)
	}
	if sc.NumTuples != 10 {
		t.Errorf("tuples: %d", sc.NumTuples)
	}
	if sc.CulpableFrac != 1 {
		t.Errorf("culpable frac: %v", sc.CulpableFrac)
	}
}

func TestScoreRejectsVacuousAndTautological(t *testing.T) {
	res, ctx := fixture(t)
	empty := predicate.New(predicate.Clause{Col: "memo", Op: predicate.OpEq, Val: engine.NewString("NOPE")})
	if _, ok := Score(Candidate{Pred: empty, Target: badTarget(res)}, ctx); ok {
		t.Error("vacuous predicate accepted")
	}
	taut := predicate.New(predicate.Clause{Col: "v", Op: predicate.OpGe, Val: engine.NewFloat(-1e9)})
	if _, ok := Score(Candidate{Pred: taut, Target: badTarget(res)}, ctx); ok {
		t.Error("tautological predicate accepted")
	}
}

func TestExcessPenalty(t *testing.T) {
	res, ctx := fixture(t)
	// A blunt predicate that removes everything culpable AND 20 clean
	// rows: same error improvement, lower score.
	blunt := predicate.New(predicate.Clause{Col: "v", Op: predicate.OpGe, Val: engine.NewFloat(9)})
	// matches rows with v >= 9 → all 40 → tautology. Use site-based:
	blunt = predicate.New(predicate.Clause{Col: "site", Op: predicate.OpGe, Val: engine.NewInt(2)})
	bluntSc, ok := Score(Candidate{Pred: blunt, Target: badTarget(res), Origin: "blunt"}, ctx)
	if !ok {
		t.Fatal("blunt predicate rejected")
	}
	surgical, ok := Score(Candidate{Pred: memoPred(), Target: badTarget(res), Origin: "surgical"}, ctx)
	if !ok {
		t.Fatal("surgical predicate rejected")
	}
	if bluntSc.Score >= surgical.Score {
		t.Errorf("blunt %.3f >= surgical %.3f", bluntSc.Score, surgical.Score)
	}
	if bluntSc.CulpableFrac >= 0.99 {
		t.Errorf("blunt culpable frac: %v", bluntSc.CulpableFrac)
	}
}

func TestComplexityPenalty(t *testing.T) {
	res, ctx := fixture(t)
	long := memoPred().
		And(predicate.Clause{Col: "v", Op: predicate.OpGe, Val: engine.NewFloat(50)}).
		And(predicate.Clause{Col: "site", Op: predicate.OpEq, Val: engine.NewInt(3)})
	longSc, ok := Score(Candidate{Pred: long, Target: badTarget(res)}, ctx)
	if !ok {
		t.Fatal("long predicate rejected")
	}
	short, _ := Score(Candidate{Pred: memoPred(), Target: badTarget(res)}, ctx)
	if longSc.Score >= short.Score {
		t.Errorf("complexity not penalized: %.3f vs %.3f", longSc.Score, short.Score)
	}
}

func TestPruneDropsJunkClauses(t *testing.T) {
	res, ctx := fixture(t)
	junky := memoPred().And(predicate.Clause{Col: "v", Op: predicate.OpGe, Val: engine.NewFloat(50)})
	cand := Candidate{Pred: junky, Target: badTarget(res)}
	sc, ok := Score(cand, ctx)
	if !ok {
		t.Fatal("junky rejected")
	}
	pruned, prunedSc := Prune(cand, sc, ctx)
	if pruned.Pred.Len() != 1 {
		t.Errorf("pruned to %s", pruned.Pred)
	}
	if prunedSc.Score < sc.Score {
		t.Error("pruning made score worse")
	}
}

func TestRankAllDedupsAndSorts(t *testing.T) {
	res, ctx := fixture(t)
	target := badTarget(res)
	cands := []Candidate{
		{Pred: memoPred(), Origin: "a", Target: target},
		{Pred: memoPred(), Origin: "b", Target: target}, // duplicate
		{Pred: predicate.New(predicate.Clause{Col: "site", Op: predicate.OpEq, Val: engine.NewInt(3)}), Origin: "c", Target: target},
	}
	out := RankAll(cands, ctx)
	if len(out) != 2 {
		t.Fatalf("dedup failed: %d results", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].Score > out[i-1].Score {
			t.Error("not sorted by score")
		}
	}
}

func TestDefaultWeightsUsedOnZero(t *testing.T) {
	res, ctx := fixture(t)
	ctx.Weights = Weights{}
	sc, ok := Score(Candidate{Pred: memoPred(), Target: badTarget(res)}, ctx)
	if !ok || sc.Score <= 0 {
		t.Errorf("zero weights should fall back to defaults: %+v", sc)
	}
}

func TestMergeAdjacentWidensBounds(t *testing.T) {
	res, ctx := fixture(t)
	target := badTarget(res)
	// Two halves of the anomaly by value range: v in [95,98] and
	// v in (98,105]. Merged: v >= 95 AND v <= 105 — covers all of it and
	// scores at least as well.
	lowHalf := predicate.New(
		predicate.Clause{Col: "v", Op: predicate.OpGe, Val: engine.NewFloat(95)},
		predicate.Clause{Col: "v", Op: predicate.OpLe, Val: engine.NewFloat(98)},
	)
	highHalf := predicate.New(
		predicate.Clause{Col: "v", Op: predicate.OpGe, Val: engine.NewFloat(98)},
		predicate.Clause{Col: "v", Op: predicate.OpLe, Val: engine.NewFloat(105)},
	)
	cands := []Candidate{
		{Pred: lowHalf, Origin: "lo", Target: target},
		{Pred: highHalf, Origin: "hi", Target: target},
	}
	out := RankAll(cands, ctx)
	if len(out) == 0 {
		t.Fatal("no results")
	}
	top := out[0]
	if top.NumTuples != 10 {
		t.Errorf("merged predicate should cover all 10 anomalous tuples, got %d (%s)", top.NumTuples, top.Pred)
	}
	if !strings.Contains(top.Origin, "merge") && len(out) != 1 {
		// Pruning may already collapse a half to the full set; either
		// way the top result must cover everything.
		t.Logf("top origin: %s", top.Origin)
	}
}

func TestDisablePruneKeepsClauses(t *testing.T) {
	res, ctx := fixture(t)
	ctx.DisablePrune = true
	junky := memoPred().And(predicate.Clause{Col: "v", Op: predicate.OpGe, Val: engine.NewFloat(50)})
	out := RankAll([]Candidate{{Pred: junky, Target: badTarget(res)}}, ctx)
	if len(out) == 0 {
		t.Fatal("no results")
	}
	if out[0].Complexity != 2 {
		t.Errorf("no-prune complexity: %d (%s)", out[0].Complexity, out[0].Pred)
	}
}

func TestDisableMergeKeepsBoth(t *testing.T) {
	res, ctx := fixture(t)
	ctx.DisableMerge = true
	ctx.DisablePrune = true
	target := badTarget(res)
	lowHalf := predicate.New(
		predicate.Clause{Col: "v", Op: predicate.OpGe, Val: engine.NewFloat(95)},
		predicate.Clause{Col: "v", Op: predicate.OpLe, Val: engine.NewFloat(98)},
	)
	highHalf := predicate.New(
		predicate.Clause{Col: "v", Op: predicate.OpGe, Val: engine.NewFloat(98)},
		predicate.Clause{Col: "v", Op: predicate.OpLe, Val: engine.NewFloat(105)},
	)
	out := RankAll([]Candidate{
		{Pred: lowHalf, Target: target},
		{Pred: highHalf, Target: target},
	}, ctx)
	for _, s := range out {
		if strings.Contains(s.Origin, "merge") {
			t.Errorf("merge ran despite DisableMerge: %s", s.Origin)
		}
	}
}

func TestMergeColumnEnvelope(t *testing.T) {
	// Both sides have lower and upper bounds: envelope takes the looser.
	a := []predicate.Clause{
		{Col: "x", Op: predicate.OpGe, Val: engine.NewInt(5)},
		{Col: "x", Op: predicate.OpLe, Val: engine.NewInt(10)},
	}
	b := []predicate.Clause{
		{Col: "x", Op: predicate.OpGe, Val: engine.NewInt(2)},
		{Col: "x", Op: predicate.OpLe, Val: engine.NewInt(8)},
	}
	out, ok := mergeColumn(a, b)
	if !ok || len(out) != 2 {
		t.Fatalf("mergeColumn: %v %v", out, ok)
	}
	if out[0].Val.Int() != 2 || out[1].Val.Int() != 10 {
		t.Errorf("envelope: %v", out)
	}
	// Bound on one side only: drops.
	c := []predicate.Clause{{Col: "x", Op: predicate.OpGe, Val: engine.NewInt(5)}}
	d := []predicate.Clause{{Col: "x", Op: predicate.OpLe, Val: engine.NewInt(8)}}
	if _, ok := mergeColumn(c, d); ok {
		t.Error("one-sided bounds should not merge")
	}
	// Different equalities: cannot merge.
	e := []predicate.Clause{{Col: "x", Op: predicate.OpEq, Val: engine.NewInt(1)}}
	f := []predicate.Clause{{Col: "x", Op: predicate.OpEq, Val: engine.NewInt(2)}}
	if _, ok := mergeColumn(e, f); ok {
		t.Error("different equalities merged")
	}
}

func TestScoreWithoutTargetSkipsAccuracy(t *testing.T) {
	res, ctx := fixture(t)
	_ = res
	sc, ok := Score(Candidate{Pred: memoPred()}, ctx)
	if !ok {
		t.Fatal("rejected")
	}
	if sc.F1 != 0 || sc.Precision != 0 {
		t.Errorf("no-target accuracy: %+v", sc)
	}
	if sc.ErrImprovement < 0.99 {
		t.Errorf("err term should still apply: %v", sc.ErrImprovement)
	}
}

func TestScoreZeroEps(t *testing.T) {
	res, ctx := fixture(t)
	ctx.Eps = 0
	sc, ok := Score(Candidate{Pred: memoPred(), Target: badTarget(res)}, ctx)
	if !ok {
		t.Fatal("rejected")
	}
	if sc.ErrImprovement != 0 {
		t.Errorf("zero-eps improvement: %v", sc.ErrImprovement)
	}
}

func TestMergeRejectsDifferentColumns(t *testing.T) {
	a := memoPred()
	b := predicate.New(predicate.Clause{Col: "site", Op: predicate.OpEq, Val: engine.NewInt(3)})
	if _, ok := mergePredicates(a, b); ok {
		t.Error("merged predicates over different columns")
	}
}

func TestMergeSameEquality(t *testing.T) {
	a := memoPred()
	m, ok := mergePredicates(a, a)
	if !ok || m.Key() != a.Key() {
		t.Errorf("self-merge: %v %v", m, ok)
	}
}

func TestScoredString(t *testing.T) {
	res, ctx := fixture(t)
	sc, _ := Score(Candidate{Pred: memoPred(), Target: badTarget(res), Origin: "o"}, ctx)
	if sc.String() == "" {
		t.Error("empty String()")
	}
}
