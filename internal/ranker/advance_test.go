package ranker

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
	"repro/internal/influence"
	"repro/internal/predicate"
	"repro/internal/sqlparse"
	"repro/internal/testgen"
)

// These tests pin RankerState.Rescore — the incremental ranking pass —
// to the from-scratch RankAll mechanics it reuses: rescoring carried
// candidates on an unchanged context moves nothing (drift 0), rescoring
// them over an advanced (grown) context produces exactly what ranking
// the same candidate set against an independently built fresh context
// would, and a carried predicate whose match set dissolves registers as
// unbounded drift.

func mustParse(t *testing.T, sql string) *sqlparse.SelectStmt {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}

// rankerCtx builds a scoring context over res via the influence
// preprocessor (the same wiring core.Debug uses).
func rankerCtx(t *testing.T, res *exec.Result, suspect []int, metric errmetric.Metric) (*Context, *influence.Analysis) {
	t.Helper()
	an, err := influence.Rank(res, suspect, 0, metric, influence.Options{})
	if err != nil {
		t.Fatalf("influence.Rank: %v", err)
	}
	ctx := &Context{
		Res: res, Suspect: suspect, Ord: 0, Metric: metric,
		F: an.F, Eps: an.Eps, DisableMerge: true,
	}
	ctx.Scorer = an.Scorer
	return ctx, an
}

// randCands draws candidate predicates over the testgen schema with
// targets sampled from F.
func randCands(rng *rand.Rand, F []int, n int) []Candidate {
	ops := []predicate.Op{predicate.OpGe, predicate.OpLe, predicate.OpEq}
	strs := []string{"a", "b", "c", ""}
	var out []Candidate
	for k := 0; k < n; k++ {
		var p predicate.Predicate
		nclause := 1 + rng.Intn(2)
		for c := 0; c < nclause; c++ {
			switch rng.Intn(3) {
			case 0:
				p.Clauses = append(p.Clauses, predicate.Clause{
					Col: "f", Op: ops[rng.Intn(2)], Val: engine.NewFloat(float64(rng.Intn(48)-24) * 0.25)})
			case 1:
				p.Clauses = append(p.Clauses, predicate.Clause{
					Col: "i", Op: ops[rng.Intn(len(ops))], Val: engine.NewInt(int64(rng.Intn(9) - 4))})
			default:
				p.Clauses = append(p.Clauses, predicate.Clause{
					Col: "s", Op: predicate.OpEq, Val: engine.NewString(strs[rng.Intn(len(strs))])})
			}
		}
		target := map[int]bool{}
		for _, r := range F {
			if rng.Float64() < 0.4 {
				target[r] = true
			}
		}
		out = append(out, Candidate{Pred: p, Origin: fmt.Sprintf("rand%d", k), Target: target})
	}
	return out
}

func scoredListsEqual(t *testing.T, label string, a, b []Scored) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d scored", label, len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Pred.Key() != y.Pred.Key() {
			t.Fatalf("%s: rank %d pred %s vs %s", label, i, x.Pred, y.Pred)
		}
		if x.Score != y.Score || x.EpsAfter != y.EpsAfter || x.F1 != y.F1 ||
			x.NumTuples != y.NumTuples || x.CulpableFrac != y.CulpableFrac {
			t.Fatalf("%s: rank %d diverged:\n%+v\nvs\n%+v", label, i, x, y)
		}
	}
}

// TestRescoreStableContext: carrying a ranking onto the very context
// that produced it is a no-op — zero drift, identical scores.
func TestRescoreStableContext(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tbl := testgen.Table(rng, 200)
	for iter := 0; iter < 8; iter++ {
		stmt := testgen.DebugStmt(rng)
		res, err := exec.RunOn(tbl, stmt)
		if err != nil {
			continue
		}
		suspect := testgen.Suspects(rng, res)
		if len(suspect) == 0 {
			continue
		}
		metric := testgen.Metric(rng)
		an, err := influence.Rank(res, suspect, 0, metric, influence.Options{})
		if err != nil || len(an.F) == 0 {
			continue
		}
		ctx := &Context{Res: res, Suspect: suspect, Ord: 0, Metric: metric,
			F: an.F, Eps: an.Eps, DisableMerge: true}
		ctx.Scorer = an.Scorer
		scored, st, _ := RankAllCarry(randCands(rng, an.F, 6), ctx)
		if st.Len() == 0 {
			continue
		}
		re, st2, drift, _ := st.Rescore(ctx)
		if drift != 0 {
			t.Fatalf("iter %d: drift %v on unchanged context", iter, drift)
		}
		scoredListsEqual(t, fmt.Sprintf("iter %d", iter), scored, re)
		if st2.Len() != st.Len() {
			t.Fatalf("iter %d: state size changed %d → %d", iter, st.Len(), st2.Len())
		}
		for i := range re {
			if re[i].Provenance != "carried" {
				t.Fatalf("iter %d: provenance %q", iter, re[i].Provenance)
			}
		}
	}
}

// TestRescoreAdvancedContext: rescoring carried candidates over an
// advanced (grown) result must equal ranking the same predicates, with
// the same frozen targets, against an independently built from-scratch
// context over the grown table.
func TestRescoreAdvancedContext(t *testing.T) {
	seeds := int64(6)
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(1); seed <= seeds; seed++ {
		rng := rand.New(rand.NewSource(seed * 131))
		tbl := testgen.TableSeg(rng, 150+rng.Intn(100), engine.MinSegmentBits)
		for iter := 0; iter < 5; iter++ {
			stmt := testgen.DebugStmt(rng)
			res, err := exec.RunOn(tbl, stmt)
			if err != nil {
				continue
			}
			suspect := testgen.Suspects(rng, res)
			if len(suspect) == 0 {
				continue
			}
			metric := testgen.Metric(rng)
			an, err := influence.Rank(res, suspect, 0, metric, influence.Options{})
			if err != nil || len(an.F) == 0 || an.Scorer == nil {
				continue
			}
			ctx := &Context{Res: res, Suspect: suspect, Ord: 0, Metric: metric,
				F: an.F, Eps: an.Eps, DisableMerge: true}
			ctx.Scorer = an.Scorer
			cands := randCands(rng, an.F, 6)
			_, st, _ := RankAllCarry(cands, ctx)
			if st.Len() == 0 {
				continue
			}

			grown, err := tbl.AppendBatch(testgen.Batch(rng, testgen.BoundaryBatchSize(rng, tbl)))
			if err != nil {
				t.Fatal(err)
			}
			adv, err := exec.Advance(res, grown)
			if err != nil {
				t.Fatalf("Advance: %v", err)
			}
			// The carried pass: advanced scorer + carried candidates.
			advSc, err := influence.AdvanceScorer(an.Scorer, adv, suspect, 0, metric)
			if err != nil {
				continue // e.g. DISTINCT first aggregate: no fast path either way
			}
			advAn := influence.RankWithScorer(advSc, influence.Options{})
			carriedCtx := &Context{Res: adv, Suspect: suspect, Ord: 0, Metric: metric,
				F: advAn.F, Eps: advAn.Eps, DisableMerge: true}
			carriedCtx.Scorer = advAn.Scorer
			got, _, _, _ := st.Rescore(carriedCtx)

			// The oracle: from-scratch result, scorer and candidates.
			fresh, err := exec.RunOnWith(grown, stmt, exec.Options{Shards: 4})
			if err != nil {
				t.Fatalf("fresh run: %v", err)
			}
			fan, err := influence.Rank(fresh, suspect, 0, metric, influence.Options{})
			if err != nil {
				t.Fatalf("fresh rank: %v", err)
			}
			freshCtx := &Context{Res: fresh, Suspect: suspect, Ord: 0, Metric: metric,
				F: fan.F, Eps: fan.Eps, DisableMerge: true}
			freshCtx.Scorer = fan.Scorer
			oracleCands := make([]Candidate, st.Len())
			for i := range st.cands {
				oracleCands[i] = Candidate{Pred: st.cands[i].Pred, Origin: st.cands[i].Origin, Target: st.cands[i].Target}
			}
			want, _, _ := RankAllCarry(oracleCands, freshCtx)
			scoredListsEqual(t, fmt.Sprintf("seed %d iter %d [%s]", seed, iter, stmt.String()), want, got)
			tbl = grown
		}
	}
}

// TestRescoreVacuousDrift: a carried predicate whose matches dissolve
// under the new suspect selection registers as unbounded drift, so the
// caller re-expands no matter the threshold.
func TestRescoreVacuousDrift(t *testing.T) {
	tbl := engine.MustNewTable("t", engine.NewSchema(
		"k", engine.TInt, "v", engine.TFloat, "memo", engine.TString))
	for i := 0; i < 40; i++ {
		k := int64(i % 2)
		memo, v := "", 10.0
		if k == 0 && i%4 == 0 { // anomaly only in group 0
			memo, v = "BAD", 100.0
		}
		tbl.MustAppendRow(engine.NewInt(k), engine.NewFloat(v), engine.NewString(memo))
	}
	res, err := exec.RunOn(tbl, mustParse(t, "SELECT k, avg(v) AS a FROM t GROUP BY k"))
	if err != nil {
		t.Fatal(err)
	}
	metric := testgen.Metric(rand.New(rand.NewSource(1)))
	ctx0, _ := rankerCtx(t, res, []int{0}, metric)
	pred := predicate.New(predicate.Clause{Col: "memo", Op: predicate.OpEq, Val: engine.NewString("BAD")})
	target := map[int]bool{}
	for _, r := range res.Lineage([]int{0}) {
		if res.Source.Value(r, 2).Str() == "BAD" {
			target[r] = true
		}
	}
	scored, st, _ := RankAllCarry([]Candidate{{Pred: pred, Origin: "test", Target: target}}, ctx0)
	if len(scored) != 1 || st.Len() != 1 {
		t.Fatalf("seed ranking: %d scored, %d carried", len(scored), st.Len())
	}
	// Same table, but suspecting group 1 — no BAD rows in its lineage:
	// the carried predicate is vacuous there.
	res2, err := exec.RunOn(tbl, mustParse(t, "SELECT k, avg(v) AS a FROM t GROUP BY k"))
	if err != nil {
		t.Fatal(err)
	}
	ctx1, _ := rankerCtx(t, res2, []int{1}, metric)
	_, _, drift, _ := st.Rescore(ctx1)
	if !math.IsInf(drift, 1) {
		t.Fatalf("vacuous carried predicate: drift %v, want +Inf", drift)
	}
}
