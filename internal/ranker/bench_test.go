package ranker

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
	"repro/internal/influence"
	"repro/internal/predicate"
)

// benchCtx builds a 100k-row grouped result with a handful of candidate
// predicates — the shape of one Debug call's ranking stage.
func benchCtx(b *testing.B, fast bool) (*Context, []Candidate) {
	b.Helper()
	tbl := engine.MustNewTable("t", engine.NewSchema(
		"k", engine.TInt, "v", engine.TFloat, "memo", engine.TString, "site", engine.TInt))
	rng := rand.New(rand.NewSource(3))
	tbl.Grow(100_000)
	for i := 0; i < 100_000; i++ {
		memo, v := "ok", float64(rng.Intn(40))
		if i%11 == 3 {
			memo, v = "BAD", 150+float64(rng.Intn(20))
		}
		tbl.MustAppendRow(engine.NewInt(int64(i%20)), engine.NewFloat(v),
			engine.NewString(memo), engine.NewInt(int64(i%8)))
	}
	db := engine.NewDB()
	db.Register(tbl)
	res, err := exec.RunSQL(db, "SELECT k, avg(v) AS a FROM t GROUP BY k")
	if err != nil {
		b.Fatal(err)
	}
	suspect := res.AllRows()
	metric := errmetric.TooHigh{C: 30}
	F := res.Lineage(suspect)
	target := map[int]bool{}
	culpable := map[int]bool{}
	for _, r := range F {
		if tbl.Value(r, 2).Str() == "BAD" {
			target[r] = true
			culpable[r] = true
		}
	}
	an, err := influence.Rank(res, suspect, 0, metric, influence.Options{MaxTuples: 1000})
	if err != nil {
		b.Fatal(err)
	}
	ctx := &Context{
		Res: res, Suspect: suspect, Ord: 0,
		Metric: metric, F: F, Eps: an.Eps, Culpable: culpable,
	}
	if fast {
		sc, err := influence.NewScorer(res, suspect, 0, metric)
		if err != nil {
			b.Fatal(err)
		}
		ctx.Scorer = sc
		ctx.Index = predicate.NewIndex(res.Source)
	}
	var cands []Candidate
	cands = append(cands, Candidate{
		Pred:   predicate.New(predicate.Clause{Col: "memo", Op: predicate.OpEq, Val: engine.NewString("BAD")}),
		Origin: "bench", Target: target,
	})
	for _, th := range []float64{60, 100, 140} {
		cands = append(cands, Candidate{
			Pred: predicate.New(
				predicate.Clause{Col: "v", Op: predicate.OpGt, Val: engine.NewFloat(th)},
				predicate.Clause{Col: "site", Op: predicate.OpLe, Val: engine.NewInt(6)},
			),
			Origin: "bench", Target: target,
		})
	}
	return ctx, cands
}

// BenchmarkScorePredicate compares one candidate scoring through the
// boxed row-at-a-time path against the columnar bitset path.
func BenchmarkScorePredicate(b *testing.B) {
	for _, fast := range []bool{false, true} {
		name := "boxed"
		if fast {
			name = "columnar"
		}
		b.Run(name, func(b *testing.B) {
			ctx, cands := benchCtx(b, fast)
			env := &scoreEnv{} // zero env: boxed path
			if fast {
				ctx.prepare()
				if !ctx.fastOK {
					b.Fatal("fast path unavailable")
				}
				env = ctx.newEnv()
			}
			if _, ok := scoreWith(cands[0], ctx, env); !ok {
				b.Fatal("candidate rejected")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scoreWith(cands[i%len(cands)], ctx, env)
			}
		})
	}
}

// BenchmarkRankAll measures the full ranking stage (score + prune +
// dedup + merge) over the candidate set.
func BenchmarkRankAll(b *testing.B) {
	ctx, cands := benchCtx(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := RankAll(cands, ctx); len(got) == 0 {
			b.Fatal("no results")
		}
	}
}
