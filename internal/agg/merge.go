package agg

// This file holds the two interfaces the vectorized executor
// (internal/exec) accumulates through: FloatAdder, the unboxed
// counterpart of Add for numeric argument columns, and Merger, the
// shard-combine step of the partitioned scan.

// FloatAdder is the unboxed accumulation fast path: AddFloat folds one
// non-NULL numeric value — exactly the float64 coercion Add would
// compute via engine.Value.Float — into the state. The vectorized
// executor feeds FloatView/ArgView float slices through this interface
// so per-row accumulation never boxes.
//
// Callers must skip NULL rows themselves (Add ignores NULLs; AddFloat
// has no way to represent one). All shipped aggregates implement it
// except the Distinct wrapper, whose identity semantics need the boxed
// value.
type FloatAdder interface {
	Func
	// AddFloat folds one non-NULL numeric value into the state.
	AddFloat(f float64)
}

// Merger is implemented by aggregate states that can absorb another
// state of the same kind — the combine step of a partitioned scan: each
// shard accumulates privately, then states merge pairwise in shard
// order. Merge returns false (leaving the receiver unchanged) when
// other is not a compatible state; callers treat that as "not
// mergeable" and fall back to a single-threaded scan.
//
// Merging must be equivalent to having Added other's values after the
// receiver's (Median concatenates in order so holistic results match
// the sequential scan exactly; the algebraic aggregates sum partial
// sums). The Distinct wrapper deliberately does not implement Merger —
// its per-shard states would double-count values seen by multiple
// shards — which is what routes DISTINCT queries down the
// single-threaded path.
type Merger interface {
	Func
	// Merge folds other's accumulated state into the receiver. It
	// reports whether other was a compatible state.
	Merge(other Func) bool
}

// Merge implements Merger.
func (c *Count) Merge(other Func) bool {
	o, ok := other.(*Count)
	if !ok {
		return false
	}
	c.n += o.n
	return true
}

// AddFloat implements FloatAdder.
func (c *Count) AddFloat(float64) { c.n++ }

// Merge implements Merger.
func (s *Sum) Merge(other Func) bool {
	o, ok := other.(*Sum)
	if !ok {
		return false
	}
	s.sum += o.sum
	s.n += o.n
	return true
}

// AddFloat implements FloatAdder.
func (s *Sum) AddFloat(f float64) {
	s.sum += f
	s.n++
}

// Merge implements Merger.
func (a *Avg) Merge(other Func) bool {
	o, ok := other.(*Avg)
	if !ok {
		return false
	}
	a.sum += o.sum
	a.n += o.n
	return true
}

// AddFloat implements FloatAdder.
func (a *Avg) AddFloat(f float64) {
	a.sum += f
	a.n++
}

// mergeFrom folds another variance state in, shared by Variance and the
// embedding Stddev.
func (v *Variance) mergeFrom(o *Variance) {
	v.sum += o.sum
	v.sumsq += o.sumsq
	v.n += o.n
}

// Merge implements Merger.
func (v *Variance) Merge(other Func) bool {
	o, ok := other.(*Variance)
	if !ok {
		return false
	}
	v.mergeFrom(o)
	return true
}

// AddFloat implements FloatAdder.
func (v *Variance) AddFloat(f float64) {
	v.sum += f
	v.sumsq += f * f
	v.n++
}

// Merge implements Merger. Stddev states only merge with Stddev states
// (the embedded Variance.Merge would reject them).
func (s *Stddev) Merge(other Func) bool {
	o, ok := other.(*Stddev)
	if !ok {
		return false
	}
	s.mergeFrom(&o.Variance)
	return true
}

// Merge implements Merger.
func (e *extremum) Merge(other Func) bool {
	o, ok := other.(*extremum)
	if !ok || o.min != e.min {
		return false
	}
	for f, c := range o.counts {
		e.counts[f] += c
	}
	if o.haveAny && (!e.haveAny || e.displaces(o.best, e.best)) {
		e.best = o.best
		e.haveAny = true
	}
	e.n += o.n
	return true
}

// AddFloat implements FloatAdder.
func (e *extremum) AddFloat(f float64) {
	e.counts[f]++
	if !e.haveAny || e.displaces(f, e.best) {
		e.best = f
		e.haveAny = true
	}
	e.n++
}

// Merge implements Merger. Appending other's values in shard order
// reproduces the sequential scan's multiset (order is irrelevant after
// the sort, but keeping it makes the merged state bit-identical).
func (m *Median) Merge(other Func) bool {
	o, ok := other.(*Median)
	if !ok {
		return false
	}
	m.vals = append(m.vals, o.vals...)
	m.sorted = false
	return true
}

// AddFloat implements FloatAdder.
func (m *Median) AddFloat(f float64) {
	m.vals = append(m.vals, f)
	m.sorted = false
}
