package agg

import (
	"testing"

	"repro/internal/engine"
)

func benchValues(n int) []engine.Value {
	vals := make([]engine.Value, n)
	for i := range vals {
		vals[i] = engine.NewFloat(float64(i%1000) / 7)
	}
	return vals
}

func BenchmarkAdd(b *testing.B) {
	vals := benchValues(1024)
	for _, name := range Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			f, _ := New(name)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Add(vals[i%len(vals)])
			}
		})
	}
}

// BenchmarkResultWithout measures the leave-one-out primitive that the
// influence analysis calls once per lineage tuple.
func BenchmarkResultWithout(b *testing.B) {
	vals := benchValues(4096)
	for _, name := range Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			f, _ := New(name)
			for _, v := range vals {
				f.Add(v)
			}
			rm := f.(Removable)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rm.ResultWithout(vals[i%len(vals)])
			}
		})
	}
}

func BenchmarkResultWithoutSet(b *testing.B) {
	vals := benchValues(4096)
	removed := vals[:64]
	f, _ := New("stddev")
	for _, v := range vals {
		f.Add(v)
	}
	rm := f.(Removable)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rm.ResultWithoutSet(removed)
	}
}
