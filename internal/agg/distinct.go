package agg

import "repro/internal/engine"

// Distinct wraps an aggregate so each distinct value contributes once,
// implementing COUNT(DISTINCT x) / SUM(DISTINCT x) / AVG(DISTINCT x).
// It keeps a multiset of the values seen so removal stays exact: a
// value only leaves the inner aggregate when its last occurrence is
// removed.
type Distinct struct {
	inner  Func
	counts map[string]int
	reprs  map[string]engine.Value
}

// NewDistinct wraps inner with distinct semantics.
func NewDistinct(inner Func) *Distinct {
	return &Distinct{
		inner:  inner,
		counts: make(map[string]int),
		reprs:  make(map[string]engine.Value),
	}
}

// Name implements Func.
func (d *Distinct) Name() string { return d.inner.Name() + " distinct" }

// Add implements Func.
func (d *Distinct) Add(v engine.Value) {
	if v.IsNull() {
		return
	}
	k := v.Key()
	d.counts[k]++
	if d.counts[k] == 1 {
		d.reprs[k] = v
		d.inner.Add(v)
	}
}

// Result implements Func.
func (d *Distinct) Result() engine.Value { return d.inner.Result() }

// Count implements Func (number of distinct non-NULL values).
func (d *Distinct) Count() int { return len(d.counts) }

// Clone implements Func.
func (d *Distinct) Clone() Func { return NewDistinct(d.inner.Clone()) }

// removedOnce reports whether removing one occurrence of v eliminates
// its last copy (so the inner aggregate must forget it).
func (d *Distinct) removedOnce(v engine.Value, delta map[string]int) bool {
	k := v.Key()
	return d.counts[k]-delta[k]-1 <= 0 && d.counts[k] > 0
}

// ResultWithout implements Removable.
func (d *Distinct) ResultWithout(v engine.Value) engine.Value {
	if v.IsNull() {
		return d.Result()
	}
	k := v.Key()
	if d.counts[k] != 1 {
		// Other occurrences remain; the distinct set is unchanged.
		return d.Result()
	}
	rm, ok := d.inner.(Removable)
	if !ok {
		return d.Result()
	}
	return rm.ResultWithout(v)
}

// ResultWithoutSet implements Removable.
func (d *Distinct) ResultWithoutSet(vs []engine.Value) engine.Value {
	delta := make(map[string]int, len(vs))
	var gone []engine.Value
	for _, v := range vs {
		if v.IsNull() {
			continue
		}
		k := v.Key()
		if d.counts[k]-delta[k] <= 0 {
			continue // removing more copies than exist; ignore extras
		}
		delta[k]++
		if d.counts[k]-delta[k] == 0 {
			gone = append(gone, d.reprs[k])
		}
	}
	if len(gone) == 0 {
		return d.Result()
	}
	rm, ok := d.inner.(Removable)
	if !ok {
		return d.Result()
	}
	return rm.ResultWithoutSet(gone)
}

// Remove implements Removable.
func (d *Distinct) Remove(v engine.Value) {
	if v.IsNull() {
		return
	}
	k := v.Key()
	if d.counts[k] == 0 {
		return
	}
	d.counts[k]--
	if d.counts[k] == 0 {
		delete(d.counts, k)
		repr := d.reprs[k]
		delete(d.reprs, k)
		if rm, ok := d.inner.(Removable); ok {
			rm.Remove(repr)
		}
	}
}
