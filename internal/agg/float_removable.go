package agg

import "math"

// FloatRemovable is the unboxed fast path of Removable: leave-out
// evaluation fed directly from a flat []float64 of argument values
// instead of boxed engine.Values. The columnar scoring pipeline
// (internal/influence.Scorer) decodes each aggregate's argument column
// once per Debug run and then scores every candidate predicate through
// this interface with zero per-call boxing.
//
// Callers must pass only non-NULL argument values (removing a NULL never
// changes any aggregate, since Add ignores NULLs). vals is borrowed for
// the duration of the call and may be a reused scratch buffer.
//
// All shipped aggregates implement it except the Distinct wrapper, whose
// removal semantics depend on the value multiset identity rather than
// float coercion; callers detect that with a type assertion and fall
// back to the boxed path.
type FloatRemovable interface {
	Removable
	// ResultWithoutFloats returns the aggregate over the accumulated
	// state minus the given values (each removed once). ok is false when
	// the result is NULL.
	ResultWithoutFloats(vals []float64) (result float64, ok bool)
}

// ResultWithoutFloats implements FloatRemovable. Count yields 0, not
// NULL, on empty input, matching Result.
func (c *Count) ResultWithoutFloats(vals []float64) (float64, bool) {
	return float64(c.n - len(vals)), true
}

// ResultWithoutFloats implements FloatRemovable.
func (s *Sum) ResultWithoutFloats(vals []float64) (float64, bool) {
	sum, n := s.sum, s.n
	for _, f := range vals {
		sum -= f
	}
	n -= len(vals)
	if n <= 0 {
		return 0, false
	}
	return sum, true
}

// ResultWithoutFloats implements FloatRemovable.
func (a *Avg) ResultWithoutFloats(vals []float64) (float64, bool) {
	sum, n := a.sum, a.n
	for _, f := range vals {
		sum -= f
	}
	n -= len(vals)
	if n <= 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// varianceFloat mirrors varianceOf without boxing.
func varianceFloat(sum, sumsq float64, n int, sample bool) (float64, bool) {
	minN := 1
	if sample {
		minN = 2
	}
	if n < minN {
		return 0, false
	}
	mean := sum / float64(n)
	ss := sumsq - float64(n)*mean*mean
	if ss < 0 {
		ss = 0 // numeric guard
	}
	den := float64(n)
	if sample {
		den = float64(n - 1)
	}
	return ss / den, true
}

// ResultWithoutFloats implements FloatRemovable.
func (v *Variance) ResultWithoutFloats(vals []float64) (float64, bool) {
	sum, sumsq, n := v.sum, v.sumsq, v.n
	for _, f := range vals {
		sum -= f
		sumsq -= f * f
	}
	n -= len(vals)
	return varianceFloat(sum, sumsq, n, v.sample)
}

// ResultWithoutFloats implements FloatRemovable.
func (s *Stddev) ResultWithoutFloats(vals []float64) (float64, bool) {
	r, ok := s.Variance.ResultWithoutFloats(vals)
	if !ok {
		return 0, false
	}
	return math.Sqrt(r), true
}

// ResultWithoutFloats implements FloatRemovable. The common case — no
// removed value ties the current extremum, or surviving copies remain —
// is alloc-free; only the rare full rescan builds a delta map.
func (e *extremum) ResultWithoutFloats(vals []float64) (float64, bool) {
	if !e.haveAny {
		return 0, false
	}
	removedBest := 0
	for _, f := range vals {
		if f == e.best {
			removedBest++
		}
	}
	if removedBest < e.counts[e.best] {
		if e.n-len(vals) <= 0 {
			// Every copy of every value is going (vals covers the whole
			// multiset); the aggregate becomes NULL.
			return 0, false
		}
		return e.best, true
	}
	delta := make(map[float64]int, len(vals))
	for _, f := range vals {
		delta[f]++
	}
	best, have := e.rescan(delta)
	if !have {
		return 0, false
	}
	return best, true
}

// ResultWithoutFloats implements FloatRemovable. Like ResultWithoutSet
// it never mutates the receiver (no lazy sort of the shared slice):
// scoring workers call it concurrently on shared aggregate states.
func (m *Median) ResultWithoutFloats(vals []float64) (float64, bool) {
	drop := make(map[float64]int, len(vals))
	for _, f := range vals {
		drop[f]++
	}
	v := m.withoutSorted(drop, len(vals))
	if v.IsNull() {
		return 0, false
	}
	return v.Float(), true
}
