package agg

import "math/bits"

// FoldMasked folds one segment's float chunk into a FloatAdder under a
// filter mask: for every set bit j of mask (within [0, len(vals)) and
// not NULL per the null bitmap), vals[j] is added in ascending row
// order. It is the batch kernel behind the mask-guarded global
// aggregation path — the per-word effective mask (filter &^ null) is
// computed once, and each word dispatches on its density:
//
//   - sparse words walk set bits via TrailingZeros64, paying per
//     surviving row;
//   - dense words (popcount >= denseCutover) scan all 64 lanes with a
//     shifting bit test, which the hardware predicts near-perfectly and
//     amortizes better than find-first-set once most lanes survive.
//
// Ascending row order is part of the contract: float accumulation is
// order-sensitive in the last bit, and the scalar reference folds rows
// in ascending order too.
//
// mask and null are word bitmaps over the chunk's rows (word j covers
// rows [64j, 64j+64)); null may be nil when the chunk has no NULL
// bitmap. Returns the number of values folded.
func FoldMasked(fa FloatAdder, vals []float64, null, mask []uint64) int {
	folded := 0
	for wi := 0; wi*64 < len(vals); wi++ {
		w := uint64(0)
		if wi < len(mask) {
			w = mask[wi]
		}
		if null != nil && wi < len(null) {
			w &^= null[wi]
		}
		if w == 0 {
			continue
		}
		base := wi * 64
		if lanes := len(vals) - base; lanes < 64 {
			w &= (1 << uint(lanes)) - 1
			if w == 0 {
				continue
			}
		}
		if bits.OnesCount64(w) >= denseCutover {
			for lane, bit := 0, uint64(1); lane < 64; lane, bit = lane+1, bit<<1 {
				if w&bit != 0 {
					fa.AddFloat(vals[base+lane])
					folded++
				}
			}
			continue
		}
		for w != 0 {
			lane := bits.TrailingZeros64(w)
			fa.AddFloat(vals[base+lane])
			folded++
			w &= w - 1
		}
	}
	return folded
}

// CountMasked returns the number of rows a FoldMasked call over the
// same inputs would fold — set filter bits that are in range and not
// NULL — without touching the values. count(*) uses it with null=nil
// (a COUNT(*) row needs no non-NULL value).
func CountMasked(nrows int, null, mask []uint64) int {
	c := 0
	for wi := 0; wi*64 < nrows; wi++ {
		w := uint64(0)
		if wi < len(mask) {
			w = mask[wi]
		}
		if null != nil && wi < len(null) {
			w &^= null[wi]
		}
		if lanes := nrows - wi*64; lanes < 64 {
			w &= (1 << uint(lanes)) - 1
		}
		c += bits.OnesCount64(w)
	}
	return c
}

// denseCutover is the per-word popcount at which FoldMasked switches
// from set-bit iteration to the dense 64-lane scan. At half density the
// find-first-set loop's data-dependent updates cost more than testing
// every lane; measured crossover sits near 32 on current amd64/arm64.
const denseCutover = 32
