// Package agg implements the aggregate functions DBWipes supports
// (avg, sum, count, min, max, stddev, var, median — the paper lists the
// "common PostgreSQL aggregates").
//
// Every aggregate additionally implements a *removable* form: given the
// accumulated state over a group, ResultWithout(v) returns the aggregate
// value the group would have had if one occurrence of v had never been
// added, without mutating the state. This is the primitive that makes
// the Preprocessor's leave-one-out influence analysis O(1) per tuple for
// the algebraic aggregates (sum/count/avg/stddev/var) and cheap for the
// holistic ones (min/max/median keep a multiset).
package agg

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/engine"
)

// Func accumulates values of one group and produces a result.
// Implementations ignore NULL inputs, per SQL semantics, and yield NULL
// on empty input (except count, which yields 0).
type Func interface {
	// Name returns the aggregate's lowercase SQL name.
	Name() string
	// Add folds one value into the state.
	Add(v engine.Value)
	// Result returns the aggregate of everything added so far.
	Result() engine.Value
	// Count returns the number of non-NULL values added.
	Count() int
	// Clone returns a fresh, empty aggregate of the same kind.
	Clone() Func
}

// Removable extends Func with non-mutating leave-one-out evaluation.
type Removable interface {
	Func
	// ResultWithout returns the aggregate over the added multiset minus
	// one occurrence of v. v must have been added (for the algebraic
	// aggregates this is not checked — callers pass lineage values).
	ResultWithout(v engine.Value) engine.Value
	// ResultWithoutSet returns the aggregate excluding every value in vs
	// (each removed once). Used to score predicate deletions without
	// re-running the query.
	ResultWithoutSet(vs []engine.Value) engine.Value
	// Remove permanently deletes one occurrence of v from the state.
	Remove(v engine.Value)
}

// New returns a fresh aggregate by name, or an error for unknown names.
func New(name string) (Func, error) {
	switch strings.ToLower(name) {
	case "count":
		return &Count{}, nil
	case "sum":
		return &Sum{}, nil
	case "avg", "mean":
		return &Avg{}, nil
	case "min":
		return newExtremum("min", true), nil
	case "max":
		return newExtremum("max", false), nil
	case "stddev", "stdev", "std":
		return &Stddev{Variance: Variance{sample: true}}, nil
	case "stddev_pop":
		return &Stddev{}, nil
	case "var", "variance":
		return &Variance{sample: true}, nil
	case "var_pop":
		return &Variance{}, nil
	case "median":
		return &Median{}, nil
	default:
		return nil, fmt.Errorf("agg: unknown aggregate %q", name)
	}
}

// IsAggregate reports whether name names a supported aggregate.
func IsAggregate(name string) bool {
	_, err := New(name)
	return err == nil
}

// Names returns the canonical aggregate names.
func Names() []string {
	return []string{"count", "sum", "avg", "min", "max", "stddev", "var", "median"}
}

// ---------------------------------------------------------------------
// count

// Count counts non-NULL values.
type Count struct{ n int }

// Name implements Func.
func (*Count) Name() string { return "count" }

// Add implements Func.
func (c *Count) Add(v engine.Value) {
	if !v.IsNull() {
		c.n++
	}
}

// Result implements Func.
func (c *Count) Result() engine.Value { return engine.NewInt(int64(c.n)) }

// Count implements Func.
func (c *Count) Count() int { return c.n }

// Clone implements Func.
func (*Count) Clone() Func { return &Count{} }

// ResultWithout implements Removable.
func (c *Count) ResultWithout(v engine.Value) engine.Value {
	if v.IsNull() {
		return c.Result()
	}
	return engine.NewInt(int64(c.n - 1))
}

// ResultWithoutSet implements Removable.
func (c *Count) ResultWithoutSet(vs []engine.Value) engine.Value {
	n := c.n
	for _, v := range vs {
		if !v.IsNull() {
			n--
		}
	}
	return engine.NewInt(int64(n))
}

// Remove implements Removable.
func (c *Count) Remove(v engine.Value) {
	if !v.IsNull() {
		c.n--
	}
}

// ---------------------------------------------------------------------
// sum

// Sum sums numeric values.
type Sum struct {
	sum float64
	n   int
}

// Name implements Func.
func (*Sum) Name() string { return "sum" }

// Add implements Func.
func (s *Sum) Add(v engine.Value) {
	if v.IsNull() {
		return
	}
	s.sum += v.Float()
	s.n++
}

// Result implements Func.
func (s *Sum) Result() engine.Value {
	if s.n == 0 {
		return engine.Null
	}
	return engine.NewFloat(s.sum)
}

// Count implements Func.
func (s *Sum) Count() int { return s.n }

// Clone implements Func.
func (*Sum) Clone() Func { return &Sum{} }

// ResultWithout implements Removable.
func (s *Sum) ResultWithout(v engine.Value) engine.Value {
	if v.IsNull() {
		return s.Result()
	}
	if s.n <= 1 {
		return engine.Null
	}
	return engine.NewFloat(s.sum - v.Float())
}

// ResultWithoutSet implements Removable.
func (s *Sum) ResultWithoutSet(vs []engine.Value) engine.Value {
	sum, n := s.sum, s.n
	for _, v := range vs {
		if v.IsNull() {
			continue
		}
		sum -= v.Float()
		n--
	}
	if n <= 0 {
		return engine.Null
	}
	return engine.NewFloat(sum)
}

// Remove implements Removable.
func (s *Sum) Remove(v engine.Value) {
	if v.IsNull() {
		return
	}
	s.sum -= v.Float()
	s.n--
}

// ---------------------------------------------------------------------
// avg

// Avg averages numeric values.
type Avg struct {
	sum float64
	n   int
}

// Name implements Func.
func (*Avg) Name() string { return "avg" }

// Add implements Func.
func (a *Avg) Add(v engine.Value) {
	if v.IsNull() {
		return
	}
	a.sum += v.Float()
	a.n++
}

// Result implements Func.
func (a *Avg) Result() engine.Value {
	if a.n == 0 {
		return engine.Null
	}
	return engine.NewFloat(a.sum / float64(a.n))
}

// Count implements Func.
func (a *Avg) Count() int { return a.n }

// Clone implements Func.
func (*Avg) Clone() Func { return &Avg{} }

// ResultWithout implements Removable.
func (a *Avg) ResultWithout(v engine.Value) engine.Value {
	if v.IsNull() {
		return a.Result()
	}
	if a.n <= 1 {
		return engine.Null
	}
	return engine.NewFloat((a.sum - v.Float()) / float64(a.n-1))
}

// ResultWithoutSet implements Removable.
func (a *Avg) ResultWithoutSet(vs []engine.Value) engine.Value {
	sum, n := a.sum, a.n
	for _, v := range vs {
		if v.IsNull() {
			continue
		}
		sum -= v.Float()
		n--
	}
	if n <= 0 {
		return engine.Null
	}
	return engine.NewFloat(sum / float64(n))
}

// Remove implements Removable.
func (a *Avg) Remove(v engine.Value) {
	if v.IsNull() {
		return
	}
	a.sum -= v.Float()
	a.n--
}

// ---------------------------------------------------------------------
// variance / stddev (Welford-free: sum and sum-of-squares; fine for the
// magnitudes in this system and exactly removable)

// Variance computes population or sample variance.
type Variance struct {
	sum, sumsq float64
	n          int
	sample     bool
}

// Name implements Func.
func (v *Variance) Name() string {
	if v.sample {
		return "var"
	}
	return "var_pop"
}

// Add implements Func.
func (v *Variance) Add(x engine.Value) {
	if x.IsNull() {
		return
	}
	f := x.Float()
	v.sum += f
	v.sumsq += f * f
	v.n++
}

func varianceOf(sum, sumsq float64, n int, sample bool) engine.Value {
	minN := 1
	if sample {
		minN = 2
	}
	if n < minN {
		return engine.Null
	}
	mean := sum / float64(n)
	ss := sumsq - float64(n)*mean*mean
	if ss < 0 {
		ss = 0 // numeric guard
	}
	den := float64(n)
	if sample {
		den = float64(n - 1)
	}
	return engine.NewFloat(ss / den)
}

// Result implements Func.
func (v *Variance) Result() engine.Value { return varianceOf(v.sum, v.sumsq, v.n, v.sample) }

// Count implements Func.
func (v *Variance) Count() int { return v.n }

// Clone implements Func.
func (v *Variance) Clone() Func { return &Variance{sample: v.sample} }

// ResultWithout implements Removable.
func (v *Variance) ResultWithout(x engine.Value) engine.Value {
	if x.IsNull() {
		return v.Result()
	}
	f := x.Float()
	return varianceOf(v.sum-f, v.sumsq-f*f, v.n-1, v.sample)
}

// ResultWithoutSet implements Removable.
func (v *Variance) ResultWithoutSet(vs []engine.Value) engine.Value {
	sum, sumsq, n := v.sum, v.sumsq, v.n
	for _, x := range vs {
		if x.IsNull() {
			continue
		}
		f := x.Float()
		sum -= f
		sumsq -= f * f
		n--
	}
	return varianceOf(sum, sumsq, n, v.sample)
}

// Remove implements Removable.
func (v *Variance) Remove(x engine.Value) {
	if x.IsNull() {
		return
	}
	f := x.Float()
	v.sum -= f
	v.sumsq -= f * f
	v.n--
}

// Stddev is the square root of Variance.
type Stddev struct {
	Variance
}

// Name implements Func.
func (s *Stddev) Name() string {
	if s.sample {
		return "stddev"
	}
	return "stddev_pop"
}

func sqrtValue(v engine.Value) engine.Value {
	if v.IsNull() {
		return engine.Null
	}
	return engine.NewFloat(math.Sqrt(v.Float()))
}

// Result implements Func.
func (s *Stddev) Result() engine.Value {
	return sqrtValue(varianceOf(s.sum, s.sumsq, s.n, s.sample))
}

// Clone implements Func.
func (s *Stddev) Clone() Func { return &Stddev{Variance: Variance{sample: s.sample}} }

// ResultWithout implements Removable.
func (s *Stddev) ResultWithout(x engine.Value) engine.Value {
	if x.IsNull() {
		return s.Result()
	}
	f := x.Float()
	return sqrtValue(varianceOf(s.sum-f, s.sumsq-f*f, s.n-1, s.sample))
}

// ResultWithoutSet implements Removable.
func (s *Stddev) ResultWithoutSet(vs []engine.Value) engine.Value {
	return sqrtValue(s.Variance.ResultWithoutSet(vs))
}

// ---------------------------------------------------------------------
// min / max — holistic; keep a float multiset so removal is exact.

type extremum struct {
	name    string
	min     bool
	counts  map[float64]int
	best    float64
	haveAny bool
	n       int
}

func newExtremum(name string, min bool) *extremum {
	return &extremum{name: name, min: min, counts: make(map[float64]int)}
}

// Name implements Func.
func (e *extremum) Name() string { return e.name }

func (e *extremum) better(a, b float64) bool {
	if e.min {
		return a < b
	}
	return a > b
}

// displaces reports whether a newly seen value f should replace the
// current best. engine.Compare treats NaN as equal to everything, so
// any element of a NaN-containing multiset is a valid extremum; this
// picks the deterministic, order-independent one: NaN never displaces a
// real value and a real value always displaces NaN, so best is NaN only
// when every value is NaN. (A plain e.better here made the result
// depend on arrival order — first value NaN stuck forever — which also
// broke the shard-merge equivalence Merge needs.)
func (e *extremum) displaces(f, best float64) bool {
	if math.IsNaN(f) {
		return false
	}
	if math.IsNaN(best) {
		return true
	}
	return e.better(f, best)
}

// Add implements Func.
func (e *extremum) Add(v engine.Value) {
	if v.IsNull() {
		return
	}
	f := v.Float()
	e.counts[f]++
	if !e.haveAny || e.displaces(f, e.best) {
		e.best = f
		e.haveAny = true
	}
	e.n++
}

// Result implements Func.
func (e *extremum) Result() engine.Value {
	if !e.haveAny {
		return engine.Null
	}
	return engine.NewFloat(e.best)
}

// Count implements Func.
func (e *extremum) Count() int { return e.n }

// Clone implements Func.
func (e *extremum) Clone() Func { return newExtremum(e.name, e.min) }

// rescan recomputes the extremum over the multiset, optionally with a
// temporary decrement applied (delta maps value→count to subtract).
func (e *extremum) rescan(delta map[float64]int) (float64, bool) {
	var best float64
	have := false
	for f, c := range e.counts {
		if delta != nil {
			c -= delta[f]
		}
		if c <= 0 {
			continue
		}
		if !have || e.displaces(f, best) {
			best = f
			have = true
		}
	}
	return best, have
}

// ResultWithout implements Removable.
func (e *extremum) ResultWithout(v engine.Value) engine.Value {
	if v.IsNull() || !e.haveAny {
		return e.Result()
	}
	f := v.Float()
	if f != e.best || e.counts[f] > 1 {
		// Removing a non-extremal (or duplicated extremal) value cannot
		// change the extremum.
		return engine.NewFloat(e.best)
	}
	best, have := e.rescan(map[float64]int{f: 1})
	if !have {
		return engine.Null
	}
	return engine.NewFloat(best)
}

// ResultWithoutSet implements Removable.
func (e *extremum) ResultWithoutSet(vs []engine.Value) engine.Value {
	delta := make(map[float64]int, len(vs))
	for _, v := range vs {
		if !v.IsNull() {
			delta[v.Float()]++
		}
	}
	best, have := e.rescan(delta)
	if !have {
		return engine.Null
	}
	return engine.NewFloat(best)
}

// Remove implements Removable.
func (e *extremum) Remove(v engine.Value) {
	if v.IsNull() {
		return
	}
	f := v.Float()
	if e.counts[f] <= 1 {
		delete(e.counts, f)
	} else {
		e.counts[f]--
	}
	e.n--
	if f == e.best {
		e.best, e.haveAny = e.rescan(nil)
	}
}

// ---------------------------------------------------------------------
// median — holistic; keeps all values, sorts lazily.

// Median computes the median (mean of the two middle elements for even
// counts).
type Median struct {
	vals   []float64
	sorted bool
}

// Name implements Func.
func (*Median) Name() string { return "median" }

// Add implements Func.
func (m *Median) Add(v engine.Value) {
	if v.IsNull() {
		return
	}
	m.vals = append(m.vals, v.Float())
	m.sorted = false
}

func (m *Median) ensureSorted() {
	if !m.sorted {
		sort.Float64s(m.vals)
		m.sorted = true
	}
}

func medianOfSorted(vals []float64) engine.Value {
	n := len(vals)
	if n == 0 {
		return engine.Null
	}
	if n%2 == 1 {
		return engine.NewFloat(vals[n/2])
	}
	return engine.NewFloat((vals[n/2-1] + vals[n/2]) / 2)
}

// Result implements Func.
func (m *Median) Result() engine.Value {
	m.ensureSorted()
	return medianOfSorted(m.vals)
}

// Count implements Func.
func (m *Median) Count() int { return len(m.vals) }

// Clone implements Func.
func (*Median) Clone() Func { return &Median{} }

// ResultWithout implements Removable.
func (m *Median) ResultWithout(v engine.Value) engine.Value {
	if v.IsNull() {
		return m.Result()
	}
	return m.ResultWithoutSet([]engine.Value{v})
}

// ResultWithoutSet implements Removable. It deliberately avoids
// ensureSorted: removal evaluation runs concurrently from the ranker's
// scoring workers, so it must not mutate shared state — it filters into
// a local slice and sorts that instead.
func (m *Median) ResultWithoutSet(vs []engine.Value) engine.Value {
	drop := make(map[float64]int, len(vs))
	nd := 0
	for _, v := range vs {
		if !v.IsNull() {
			drop[v.Float()]++
			nd++
		}
	}
	return m.withoutSorted(drop, nd)
}

// withoutSorted returns the median of vals minus the drop multiset,
// without touching the receiver's slice or sorted flag.
func (m *Median) withoutSorted(drop map[float64]int, nd int) engine.Value {
	capHint := len(m.vals) - nd
	if capHint < 0 {
		capHint = 0
	}
	kept := make([]float64, 0, capHint)
	for _, f := range m.vals {
		if drop[f] > 0 {
			drop[f]--
			continue
		}
		kept = append(kept, f)
	}
	// Always sort the local copy rather than consulting the lazily
	// written sorted flag, so this path never writes shared state. It
	// still reads m.vals: concurrent removal calls are safe with each
	// other, and safe alongside Result() because exec.materialize
	// calls Result() on every aggregate (sorting it) before any
	// concurrent scoring starts.
	sort.Float64s(kept)
	return medianOfSorted(kept)
}

// Remove implements Removable.
func (m *Median) Remove(v engine.Value) {
	if v.IsNull() {
		return
	}
	f := v.Float()
	for i, x := range m.vals {
		if x == f {
			m.vals = append(m.vals[:i], m.vals[i+1:]...)
			return
		}
	}
}
