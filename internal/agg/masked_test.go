package agg

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/engine"
)

// maskedChunk builds a chunk of nrows values with the awkward float
// population (NaN, ±0.0, exactly-representable quarters) plus a NULL
// bitmap with the given density.
func maskedChunk(rng *rand.Rand, nrows int, nullDensity float64) (vals []float64, null []uint64) {
	vals = make([]float64, nrows)
	null = make([]uint64, (nrows+63)/64)
	for i := range vals {
		switch {
		case rng.Float64() < 0.1:
			vals[i] = math.NaN()
		case rng.Float64() < 0.08:
			vals[i] = math.Copysign(0, -1)
		default:
			vals[i] = float64(rng.Intn(64)-32) * 0.25
		}
		if rng.Float64() < nullDensity {
			null[i/64] |= 1 << (uint(i) % 64)
		}
	}
	return vals, null
}

// maskAt builds a filter mask over nrows at roughly the given bits per
// word: 0 (empty), 1 (one set bit per word), 32 (alternating — exactly
// the dense cutover), 64 (full).
func maskAt(rng *rand.Rand, nrows, bitsPerWord int) []uint64 {
	words := (nrows + 63) / 64
	mask := make([]uint64, words)
	for w := range mask {
		switch bitsPerWord {
		case 0:
		case 1:
			mask[w] = 1 << uint(rng.Intn(64))
		case 32:
			mask[w] = 0x5555555555555555 << uint(rng.Intn(2))
		case 64:
			mask[w] = ^uint64(0)
		}
	}
	return mask
}

// TestFoldMaskedParity checks FoldMasked against the scalar reference —
// an ascending row loop testing each bit — for every aggregate kind at
// every density, bit-exactly (same adder type, same fold order, so even
// NaN propagation and -0.0 accumulation must agree).
func TestFoldMaskedParity(t *testing.T) {
	names := []string{"count", "sum", "avg", "min", "max", "stddev", "var", "median"}
	lengths := []int{1, 63, 64, 65, 200, 256, 300}
	densities := []int{0, 1, 32, 64}
	rng := rand.New(rand.NewSource(7))
	for _, nrows := range lengths {
		vals, null := maskedChunk(rng, nrows, 0.15)
		for _, d := range densities {
			mask := maskAt(rng, nrows, d)
			for _, name := range names {
				got, _ := New(name)
				ref, _ := New(name)
				folded := FoldMasked(got.(FloatAdder), vals, null, mask)
				want := 0
				rfa := ref.(FloatAdder)
				for i := 0; i < nrows; i++ {
					if mask[i/64]&(1<<(uint(i)%64)) == 0 {
						continue
					}
					if null[i/64]&(1<<(uint(i)%64)) != 0 {
						continue
					}
					rfa.AddFloat(vals[i])
					want++
				}
				label := fmt.Sprintf("%s nrows=%d density=%d", name, nrows, d)
				if folded != want {
					t.Fatalf("%s: folded %d rows, reference folded %d", label, folded, want)
				}
				gv, rv := got.Result(), ref.Result()
				if !bitIdentical(gv, rv) {
					t.Fatalf("%s: FoldMasked result %v != reference %v", label, gv, rv)
				}
				if got.Count() != ref.Count() {
					t.Fatalf("%s: Count %d != reference %d", label, got.Count(), ref.Count())
				}
			}
			// CountMasked must agree with the fold row count ignoring
			// values, and with null=nil count every in-range set bit.
			sum, _ := New("sum")
			folded := FoldMasked(sum.(FloatAdder), vals, null, mask)
			if c := CountMasked(nrows, null, mask); c != folded {
				t.Fatalf("nrows=%d density=%d: CountMasked=%d, FoldMasked folded %d", nrows, d, c, folded)
			}
			want := 0
			for w, m := range mask {
				hi := nrows - w*64
				if hi > 64 {
					hi = 64
				}
				want += bits.OnesCount64(m & (^uint64(0) >> uint(64-hi)))
			}
			if c := CountMasked(nrows, nil, mask); c != want {
				t.Fatalf("nrows=%d density=%d: CountMasked(null=nil)=%d, want %d", nrows, d, c, want)
			}
		}
	}
}

// TestFoldMaskedRandomized hammers the dense/sparse crossover with
// random masks straddling denseCutover, so both inner loops run against
// the same reference within one fold.
func TestFoldMaskedRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 200; iter++ {
		nrows := 1 + rng.Intn(400)
		vals, null := maskedChunk(rng, nrows, 0.2)
		mask := make([]uint64, (nrows+63)/64)
		for w := range mask {
			// Mix densities around the cutover: 0, sparse, ~cutover, dense.
			switch rng.Intn(4) {
			case 0:
			case 1:
				for b := 0; b < 1+rng.Intn(4); b++ {
					mask[w] |= 1 << uint(rng.Intn(64))
				}
			case 2:
				mask[w] = rng.Uint64() // ~32 bits on average
			case 3:
				mask[w] = ^uint64(0) &^ (1 << uint(rng.Intn(64)))
			}
		}
		got, _ := New("sum")
		ref, _ := New("sum")
		FoldMasked(got.(FloatAdder), vals, null, mask)
		rfa := ref.(FloatAdder)
		for i := 0; i < nrows; i++ {
			if mask[i/64]&(1<<(uint(i)%64)) != 0 && null[i/64]&(1<<(uint(i)%64)) == 0 {
				rfa.AddFloat(vals[i])
			}
		}
		if gv, rv := got.Result(), ref.Result(); !bitIdentical(gv, rv) {
			t.Fatalf("iter %d nrows=%d: %v != %v", iter, nrows, gv, rv)
		}
	}
}

// bitIdentical compares aggregate results at the bit level: NaN equals
// NaN, +0.0 differs from -0.0 only if the bits do.
func bitIdentical(a, b engine.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() == b.IsNull()
	}
	return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
}

func BenchmarkFoldMasked(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	vals, null := maskedChunk(rng, 1<<14, 0.1)
	for _, d := range []int{1, 32, 64} {
		mask := maskAt(rng, len(vals), d)
		b.Run(fmt.Sprintf("density=%d", d), func(b *testing.B) {
			sum, _ := New("sum")
			fa := sum.(FloatAdder)
			b.SetBytes(int64(len(vals) * 8))
			for i := 0; i < b.N; i++ {
				FoldMasked(fa, vals, null, mask)
			}
		})
	}
}
