package agg

import (
	"testing"
	"testing/quick"

	"repro/internal/engine"
)

func TestDistinctCount(t *testing.T) {
	d := NewDistinct(&Count{})
	feed(d, 1, 2, 2, 3, 3, 3)
	if got := d.Result().Int(); got != 3 {
		t.Errorf("count distinct = %d", got)
	}
	if d.Count() != 3 {
		t.Errorf("Count() = %d", d.Count())
	}
	d.Add(engine.Null)
	if got := d.Result().Int(); got != 3 {
		t.Errorf("NULL counted: %d", got)
	}
}

func TestDistinctSum(t *testing.T) {
	d := NewDistinct(&Sum{})
	feed(d, 5, 5, 7)
	if got := d.Result().Float(); got != 12 {
		t.Errorf("sum distinct = %v", got)
	}
}

func TestDistinctRemoveLastOccurrence(t *testing.T) {
	d := NewDistinct(&Sum{})
	feed(d, 5, 5, 7)
	// Removing one 5 keeps the distinct set {5, 7}.
	d.Remove(engine.NewFloat(5))
	if got := d.Result().Float(); got != 12 {
		t.Errorf("after removing one of two 5s: %v", got)
	}
	// Removing the second 5 drops it from the distinct set.
	d.Remove(engine.NewFloat(5))
	if got := d.Result().Float(); got != 7 {
		t.Errorf("after removing both 5s: %v", got)
	}
	// Removing a value not present is a no-op.
	d.Remove(engine.NewFloat(99))
	if got := d.Result().Float(); got != 7 {
		t.Errorf("after bogus remove: %v", got)
	}
}

func TestDistinctResultWithout(t *testing.T) {
	d := NewDistinct(&Count{})
	feed(d, 1, 1, 2)
	// One of two 1s: distinct set unchanged.
	if got := d.ResultWithout(engine.NewFloat(1)).Int(); got != 2 {
		t.Errorf("without one 1: %d", got)
	}
	// The only 2: distinct count drops.
	if got := d.ResultWithout(engine.NewFloat(2)).Int(); got != 1 {
		t.Errorf("without the 2: %d", got)
	}
}

// Property: Distinct(inner).ResultWithoutSet ≡ recompute over the
// multiset minus the removed values.
func TestDistinctWithoutSetMatchesRecompute(t *testing.T) {
	for _, name := range []string{"count", "sum", "avg", "min", "max"} {
		name := name
		t.Run(name, func(t *testing.T) {
			f := func(raw []int8, mask uint16) bool {
				if len(raw) < 3 {
					return true
				}
				vals := make([]float64, len(raw))
				for i, r := range raw {
					vals[i] = float64(r % 8) // force duplicates
				}
				var removed []engine.Value
				var rest []float64
				for i, v := range vals {
					if mask&(1<<(i%16)) != 0 && len(removed) < len(vals)-1 {
						removed = append(removed, engine.NewFloat(v))
					} else {
						rest = append(rest, v)
					}
				}
				inner, _ := New(name)
				d := NewDistinct(inner)
				for _, v := range vals {
					d.Add(engine.NewFloat(v))
				}
				got := d.ResultWithoutSet(removed)

				inner2, _ := New(name)
				want := NewDistinct(inner2)
				for _, v := range rest {
					want.Add(engine.NewFloat(v))
				}
				return valueClose(got, want.Result())
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Error(err)
			}
		})
	}
}

// Property: Remove ≡ recompute, including duplicate handling.
func TestDistinctRemoveMatchesRecompute(t *testing.T) {
	f := func(raw []int8, removeIdx uint8) bool {
		if len(raw) < 2 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r % 5)
		}
		idx := int(removeIdx) % len(vals)
		d := NewDistinct(&Sum{})
		for _, v := range vals {
			d.Add(engine.NewFloat(v))
		}
		d.Remove(engine.NewFloat(vals[idx]))

		rest := append(append([]float64(nil), vals[:idx]...), vals[idx+1:]...)
		want := NewDistinct(&Sum{})
		for _, v := range rest {
			want.Add(engine.NewFloat(v))
		}
		return valueClose(d.Result(), want.Result())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistinctClone(t *testing.T) {
	d := NewDistinct(&Count{})
	feed(d, 1, 2)
	c := d.Clone()
	if c.Count() != 0 {
		t.Error("clone not empty")
	}
	if c.Name() != "count distinct" {
		t.Errorf("clone name: %s", c.Name())
	}
}
