package agg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/engine"
)

// TestResultWithoutFloatsParity checks the unboxed removal path agrees
// with the boxed ResultWithoutSet for every shipped aggregate over
// random multisets and removal subsets.
func TestResultWithoutFloatsParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, name := range Names() {
		for trial := 0; trial < 100; trial++ {
			f, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			fr, ok := f.(FloatRemovable)
			if !ok {
				t.Fatalf("%s does not implement FloatRemovable", name)
			}
			n := 1 + rng.Intn(30)
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = float64(rng.Intn(10)) / 2 // duplicates likely
				f.Add(engine.NewFloat(vals[i]))
			}
			var rmBoxed []engine.Value
			var rmFloat []float64
			for _, v := range vals {
				if rng.Intn(3) == 0 {
					rmBoxed = append(rmBoxed, engine.NewFloat(v))
					rmFloat = append(rmFloat, v)
				}
			}
			want := f.(Removable).ResultWithoutSet(rmBoxed)
			got, gotOK := fr.ResultWithoutFloats(rmFloat)
			if want.IsNull() != !gotOK {
				t.Fatalf("%s trial %d: null mismatch (boxed null=%v, float ok=%v)", name, trial, want.IsNull(), gotOK)
			}
			if !want.IsNull() && !closeEnough(want.Float(), got) {
				t.Fatalf("%s trial %d: boxed=%g float=%g", name, trial, want.Float(), got)
			}
		}
	}
}

// TestResultWithoutFloatsSingleton mirrors the leave-one-out shape: a
// one-element removal must agree with ResultWithout.
func TestResultWithoutFloatsSingleton(t *testing.T) {
	for _, name := range Names() {
		f, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range []float64{5, 3, 9, 3, 7} {
			f.Add(engine.NewFloat(v))
		}
		fr := f.(FloatRemovable)
		for _, v := range []float64{5, 3, 9} {
			want := f.(Removable).ResultWithout(engine.NewFloat(v))
			got, ok := fr.ResultWithoutFloats([]float64{v})
			if want.IsNull() != !ok {
				t.Fatalf("%s: null mismatch removing %g", name, v)
			}
			if !want.IsNull() && !closeEnough(want.Float(), got) {
				t.Fatalf("%s: remove %g: boxed=%g float=%g", name, v, want.Float(), got)
			}
		}
	}
}

func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
}
