package agg

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/engine"
)

func feed(f Func, vals ...float64) {
	for _, v := range vals {
		f.Add(engine.NewFloat(v))
	}
}

func res(f Func) float64 { return f.Result().Float() }

func TestAggregateBasics(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 10}
	cases := []struct {
		name string
		want float64
	}{
		{"count", 5},
		{"sum", 20},
		{"avg", 4},
		{"min", 1},
		{"max", 10},
		{"median", 3},
		{"var", 12.5},                 // sample variance
		{"stddev", math.Sqrt(12.5)},   // sample stddev
		{"var_pop", 10},               // population
		{"stddev_pop", math.Sqrt(10)}, //
	}
	for _, c := range cases {
		f, err := New(c.name)
		if err != nil {
			t.Fatalf("New(%s): %v", c.name, err)
		}
		feed(f, vals...)
		if got := res(f); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", c.name, got, c.want)
		}
		if f.Count() != 5 {
			t.Errorf("%s Count = %d", c.name, f.Count())
		}
	}
}

func TestEmptyAggregates(t *testing.T) {
	for _, name := range Names() {
		f, _ := New(name)
		r := f.Result()
		if name == "count" {
			if r.Int() != 0 {
				t.Errorf("empty count = %v", r)
			}
		} else if !r.IsNull() {
			t.Errorf("empty %s = %v, want NULL", name, r)
		}
	}
}

func TestNullsIgnored(t *testing.T) {
	for _, name := range Names() {
		f, _ := New(name)
		f.Add(engine.Null)
		f.Add(engine.NewFloat(5))
		f.Add(engine.Null)
		if f.Count() != 1 {
			t.Errorf("%s counted NULLs: %d", name, f.Count())
		}
	}
}

func TestUnknownAggregate(t *testing.T) {
	if _, err := New("bogus"); err == nil {
		t.Error("bogus aggregate accepted")
	}
	if IsAggregate("bogus") || !IsAggregate("AVG") {
		t.Error("IsAggregate wrong")
	}
}

// brute recomputes an aggregate from scratch over vals.
func brute(t *testing.T, name string, vals []float64) engine.Value {
	t.Helper()
	f, err := New(name)
	if err != nil {
		t.Fatal(err)
	}
	feed(f, vals...)
	return f.Result()
}

// Property: ResultWithout(v) == recompute without one occurrence of v,
// for every aggregate, under random inputs.
func TestResultWithoutMatchesRecompute(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			f := func(raw []int8, removeIdx uint8) bool {
				if len(raw) < 2 {
					return true
				}
				vals := make([]float64, len(raw))
				for i, r := range raw {
					vals[i] = float64(r) / 4
				}
				idx := int(removeIdx) % len(vals)

				acc, _ := New(name)
				feed(acc, vals...)
				rm := acc.(Removable)
				got := rm.ResultWithout(engine.NewFloat(vals[idx]))

				rest := append(append([]float64(nil), vals[:idx]...), vals[idx+1:]...)
				want := brute(t, name, rest)
				return valueClose(got, want)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
				t.Error(err)
			}
		})
	}
}

// Property: ResultWithoutSet(S) == recompute without S.
func TestResultWithoutSetMatchesRecompute(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			f := func(raw []int8, mask uint16) bool {
				if len(raw) < 3 {
					return true
				}
				vals := make([]float64, len(raw))
				for i, r := range raw {
					vals[i] = float64(r)
				}
				var removed []engine.Value
				var rest []float64
				for i, v := range vals {
					if mask&(1<<(i%16)) != 0 && len(removed) < len(vals)-1 {
						removed = append(removed, engine.NewFloat(v))
					} else {
						rest = append(rest, v)
					}
				}
				acc, _ := New(name)
				feed(acc, vals...)
				got := acc.(Removable).ResultWithoutSet(removed)
				want := brute(t, name, rest)
				return valueClose(got, want)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Error(err)
			}
		})
	}
}

// Property: Remove(v) then Result == recompute without v.
func TestRemoveMatchesRecompute(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			f := func(raw []int8, removeIdx uint8) bool {
				if len(raw) < 2 {
					return true
				}
				vals := make([]float64, len(raw))
				for i, r := range raw {
					vals[i] = float64(r)
				}
				idx := int(removeIdx) % len(vals)
				acc, _ := New(name)
				feed(acc, vals...)
				acc.(Removable).Remove(engine.NewFloat(vals[idx]))
				rest := append(append([]float64(nil), vals[:idx]...), vals[idx+1:]...)
				want := brute(t, name, rest)
				return valueClose(acc.Result(), want)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
				t.Error(err)
			}
		})
	}
}

func valueClose(a, b engine.Value) bool {
	if a.IsNull() != b.IsNull() {
		return false
	}
	if a.IsNull() {
		return true
	}
	af, bf := a.Float(), b.Float()
	if math.IsNaN(af) && math.IsNaN(bf) {
		return true
	}
	scale := math.Max(1, math.Max(math.Abs(af), math.Abs(bf)))
	return math.Abs(af-bf) <= 1e-6*scale
}

func TestExtremumRemoveRescan(t *testing.T) {
	f, _ := New("max")
	feed(f, 5, 5, 3)
	rm := f.(Removable)
	// Removing one of two 5s keeps max at 5.
	if got := rm.ResultWithout(engine.NewFloat(5)); got.Float() != 5 {
		t.Errorf("max without one 5: %v", got)
	}
	rm.Remove(engine.NewFloat(5))
	rm.Remove(engine.NewFloat(5))
	if got := f.Result(); got.Float() != 3 {
		t.Errorf("max after removing both 5s: %v", got)
	}
	rm.Remove(engine.NewFloat(3))
	if !f.Result().IsNull() {
		t.Error("empty max should be NULL")
	}
}

func TestMedianEvenOdd(t *testing.T) {
	f, _ := New("median")
	feed(f, 4, 1, 3)
	if res(f) != 3 {
		t.Errorf("odd median: %v", res(f))
	}
	f.Add(engine.NewFloat(2))
	if res(f) != 2.5 {
		t.Errorf("even median: %v", res(f))
	}
}

func TestCloneIsIndependent(t *testing.T) {
	for _, name := range Names() {
		orig, _ := New(name)
		feed(orig, 1, 2, 3)
		c := orig.Clone()
		if c.Count() != 0 {
			t.Errorf("%s clone not empty: %d", name, c.Count())
		}
		feed(c, 10)
		if orig.Count() != 3 {
			t.Errorf("%s clone shares state", name)
		}
	}
}

func TestSumOfAllRemovedIsNull(t *testing.T) {
	f, _ := New("sum")
	feed(f, 5)
	rm := f.(Removable)
	if got := rm.ResultWithout(engine.NewFloat(5)); !got.IsNull() {
		t.Errorf("sum of nothing: %v", got)
	}
}

func TestStddevSampleName(t *testing.T) {
	s, _ := New("stddev")
	if s.Name() != "stddev" {
		t.Errorf("name: %s", s.Name())
	}
	sp, _ := New("stddev_pop")
	if sp.Name() != "stddev_pop" {
		t.Errorf("name: %s", sp.Name())
	}
	// Clone preserves sampleness.
	if s.Clone().Name() != "stddev" {
		t.Error("clone lost sample flag")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	for _, n := range names {
		if !IsAggregate(n) {
			t.Errorf("Names contains non-aggregate %q", n)
		}
	}
	if sort.StringsAreSorted(names) {
		// Names are in a curated order, not sorted — just assert count.
		_ = names
	}
	if len(names) != 8 {
		t.Errorf("expected 8 canonical names, got %d", len(names))
	}
}
