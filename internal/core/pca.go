package core

import (
	"fmt"
	"math"

	"repro/internal/exec"
	"repro/internal/pca"
)

// PCAGroups projects each output group of a multi-attribute result onto
// its two largest principal components — the visualization the paper
// proposes for queries whose group-by has more than two attributes.
// All numeric result columns participate (standardized so no column
// dominates by unit); the second return value reports the variance
// explained by the two components.
func PCAGroups(res *exec.Result) ([][2]float64, [2]float64, error) {
	var explained [2]float64
	schema := res.Table.Schema()
	var cols []int
	for c := range schema {
		if schema[c].Type.IsNumeric() {
			cols = append(cols, c)
		}
	}
	if len(cols) < 2 {
		return nil, explained, fmt.Errorf("core: PCA needs at least two numeric result columns, have %d", len(cols))
	}
	n := res.Table.NumRows()
	if n < 3 {
		return nil, explained, fmt.Errorf("core: PCA needs at least three groups, have %d", n)
	}

	// Standardize each column so scale differences (epoch seconds vs
	// temperatures) do not swamp the projection.
	means := make([]float64, len(cols))
	stds := make([]float64, len(cols))
	for i, c := range cols {
		var sum, sumsq float64
		var cnt int
		for r := 0; r < n; r++ {
			v := res.Table.Value(r, c)
			if v.IsNull() {
				continue
			}
			f := v.Float()
			if math.IsNaN(f) {
				continue
			}
			sum += f
			sumsq += f * f
			cnt++
		}
		if cnt == 0 {
			continue
		}
		means[i] = sum / float64(cnt)
		variance := sumsq/float64(cnt) - means[i]*means[i]
		if variance < 0 {
			variance = 0
		}
		stds[i] = math.Sqrt(variance)
		if stds[i] == 0 {
			stds[i] = 1
		}
	}

	points := make([][]float64, n)
	for r := 0; r < n; r++ {
		p := make([]float64, len(cols))
		for i, c := range cols {
			v := res.Table.Value(r, c)
			if v.IsNull() {
				p[i] = 0
				continue
			}
			f := v.Float()
			if math.IsNaN(f) {
				p[i] = 0
				continue
			}
			p[i] = (f - means[i]) / stds[i]
		}
		points[r] = p
	}
	proj, fit, err := pca.Project2D(points)
	if err != nil {
		return nil, explained, err
	}
	explained[0] = fit.ExplainedRatio(0)
	if len(fit.Components) > 1 {
		explained[1] = fit.ExplainedRatio(1)
	}
	return proj, explained, nil
}
