package core

import (
	"strings"
	"testing"

	"repro/internal/datasets"
	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
)

// intelFixture bundles everything the Intel-flow tests need.
type intelFixture struct {
	res     *exec.Result
	dr      *DebugResult
	truth   *datasets.Truth
	suspect []int
}

// debugIntel runs the full Figure 4/6 flow on a synthetic Intel trace.
func debugIntel(t *testing.T, rows int) *intelFixture {
	t.Helper()
	db, labels := datasets.IntelDB(datasets.IntelConfig{Rows: rows, Seed: 7})
	res, err := Run(db, datasets.IntelWindowSQL)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// S: windows whose stddev is far above typical (Figure 4 left).
	suspect, err := SuspectWhere(res, "std_temp", func(v engine.Value) bool {
		return !v.IsNull() && v.Float() > 10
	})
	if err != nil {
		t.Fatalf("suspect: %v", err)
	}
	if len(suspect) == 0 {
		t.Fatal("no suspect windows — generator should produce high-stddev windows")
	}
	// D': zoomed-in outlier readings (Figure 4 right).
	dprime, err := ExamplesWhere(res, suspect, "temperature > 100")
	if err != nil {
		t.Fatalf("examples: %v", err)
	}
	if len(dprime) == 0 {
		t.Fatal("no example tuples above 100F")
	}
	dr, err := Debug(DebugRequest{
		Result:   res,
		AggItem:  -1, // first aggregate = avg_temp
		Suspect:  suspect,
		Examples: dprime,
		Metric:   errmetric.TooHigh{C: 70},
	})
	if err != nil {
		t.Fatalf("debug: %v", err)
	}
	return &intelFixture{res: res, dr: dr, truth: datasets.NewTruth(labels), suspect: suspect}
}

func TestDebugIntelFindsFailingMotes(t *testing.T) {
	fx := debugIntel(t, 40_000)
	dr := fx.dr
	if len(dr.Explanations) == 0 {
		t.Fatal("no explanations returned")
	}
	for i, e := range dr.Explanations {
		t.Logf("#%d %s", i+1, e.Scored)
	}
	top := dr.Explanations[0]
	cols := strings.ToLower(strings.Join(top.Pred.Columns(), ","))
	if !strings.Contains(cols, "moteid") && !strings.Contains(cols, "voltage") && !strings.Contains(cols, "humidity") {
		t.Errorf("top predicate %q references none of the causal attributes", top.Pred)
	}
	if top.ErrImprovement < 0.3 {
		t.Errorf("top predicate improves error only %.0f%%", 100*top.ErrImprovement)
	}
	matched := top.Pred.MatchingRows(fx.res.Source, dr.F)
	p, r, f1 := fx.truth.Score(matched, dr.F)
	t.Logf("top predicate vs truth: precision=%.2f recall=%.2f f1=%.2f", p, r, f1)
	if f1 < 0.5 {
		t.Errorf("top predicate f1=%.2f, want >= 0.5", f1)
	}
}

func TestDebugFECFindsReattribution(t *testing.T) {
	db, labels := datasets.FECDB(datasets.FECConfig{Rows: 60_000, Seed: 3})
	res, err := Run(db, datasets.FECDailySQL("McCain"))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// S: days with negative totals (the Figure 7 spike).
	suspect, err := SuspectWhere(res, "total", func(v engine.Value) bool {
		return !v.IsNull() && v.Float() < 0
	})
	if err != nil {
		t.Fatalf("suspect: %v", err)
	}
	if len(suspect) == 0 {
		t.Fatal("no negative-total days; generator must inject the spike")
	}
	dprime, err := ExamplesWhere(res, suspect, "amount < 0")
	if err != nil {
		t.Fatalf("examples: %v", err)
	}
	dr, err := Debug(DebugRequest{
		Result:   res,
		AggItem:  -1,
		Suspect:  suspect,
		Examples: dprime,
		Metric:   errmetric.TooLow{C: 0},
	})
	if err != nil {
		t.Fatalf("debug: %v", err)
	}
	if len(dr.Explanations) == 0 {
		t.Fatal("no explanations returned")
	}
	for i, e := range dr.Explanations {
		t.Logf("#%d %s", i+1, e.Scored)
	}
	// One of the top-3 predicates must reference the memo or negative
	// amounts (the walkthrough's REATTRIBUTION TO SPOUSE finding).
	found := false
	for _, e := range dr.Explanations[:min(3, len(dr.Explanations))] {
		s := strings.ToLower(e.Pred.String())
		if strings.Contains(s, "memo") || strings.Contains(s, "amount") || strings.Contains(s, "occupation") {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no top-3 predicate references memo/amount/occupation; got %v", dr.Explanations)
	}

	// Clicking the top predicate must remove most of the negative mass.
	cleaned, err := CleanAndRequery(res, dr.Explanations[0].Pred)
	if err != nil {
		t.Fatalf("clean: %v", err)
	}
	negBefore := negativeMass(t, res)
	negAfter := negativeMass(t, cleaned)
	t.Logf("negative mass before=%.0f after=%.0f", negBefore, negAfter)
	if negAfter > 0.5*negBefore {
		t.Errorf("cleaning removed too little negative mass: before=%.0f after=%.0f", negBefore, negAfter)
	}
	_ = labels
}

func negativeMass(t *testing.T, res *exec.Result) float64 {
	t.Helper()
	ci := res.Table.Schema().ColIndex("total")
	if ci < 0 {
		t.Fatalf("result lacks total column: %s", res.Table.Schema())
	}
	var mass float64
	for r := 0; r < res.Table.NumRows(); r++ {
		v := res.Table.Value(r, ci)
		if !v.IsNull() && v.Float() < 0 {
			mass += -v.Float()
		}
	}
	return mass
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
