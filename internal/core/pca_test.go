package core

import (
	"testing"

	"repro/internal/datasets"
)

func TestPCAGroupsOnWindowResult(t *testing.T) {
	db, _ := datasets.IntelDB(datasets.IntelConfig{Rows: 30_000, Seed: 7})
	res, err := Run(db, datasets.IntelWindowSQL)
	if err != nil {
		t.Fatal(err)
	}
	proj, explained, err := PCAGroups(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(proj) != res.Table.NumRows() {
		t.Fatalf("projection rows: %d vs %d", len(proj), res.Table.NumRows())
	}
	if explained[0] <= 0 || explained[0] > 1 {
		t.Errorf("explained[0] = %v", explained[0])
	}
	if explained[1] > explained[0] {
		t.Errorf("explained not descending: %v", explained)
	}
	// The projection must separate the anomalous windows: points are
	// not all identical.
	distinct := false
	for i := 1; i < len(proj); i++ {
		if proj[i] != proj[0] {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Error("degenerate projection")
	}
}

func TestPCAGroupsErrors(t *testing.T) {
	db, _ := datasets.FECDB(datasets.FECConfig{Rows: 5_000, Seed: 1})
	// Single aggregate + string group key → only one numeric column
	// after the day column... day is numeric, so use a two-column case
	// with too few rows instead.
	res, err := Run(db, "SELECT candidate, sum(amount) AS s, count(*) AS n FROM donations GROUP BY candidate")
	if err != nil {
		t.Fatal(err)
	}
	// 4 candidates ≥ 3 rows and 2 numeric columns → works.
	if _, _, err := PCAGroups(res); err != nil {
		t.Errorf("PCA on candidate summary: %v", err)
	}
	res2, err := Run(db, "SELECT candidate, sum(amount) AS s FROM donations GROUP BY candidate LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := PCAGroups(res2); err == nil {
		t.Error("PCA with 2 groups should fail")
	}
}
