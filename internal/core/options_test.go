package core

import (
	"strings"
	"testing"

	"repro/internal/datasets"
	"repro/internal/dtree"
	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
	"repro/internal/ranker"
	"repro/internal/subgroup"
)

// smallIntel builds a fast fixture shared by the option-surface tests.
func smallIntel(t *testing.T) (*exec.Result, []int, []int) {
	t.Helper()
	db, _ := datasets.IntelDB(datasets.IntelConfig{Rows: 20_000, Seed: 7})
	res, err := Run(db, datasets.IntelWindowSQL)
	if err != nil {
		t.Fatal(err)
	}
	suspect, err := SuspectWhere(res, "std_temp", func(v engine.Value) bool {
		return !v.IsNull() && v.Float() > 10
	})
	if err != nil {
		t.Fatal(err)
	}
	dprime, err := ExamplesWhere(res, suspect, "temperature > 100")
	if err != nil {
		t.Fatal(err)
	}
	if len(suspect) == 0 || len(dprime) == 0 {
		t.Skip("fixture produced no anomaly at this size")
	}
	return res, suspect, dprime
}

func debugWith(t *testing.T, res *exec.Result, suspect, dprime []int, opt Options) *DebugResult {
	t.Helper()
	dr, err := Debug(DebugRequest{
		Result: res, AggItem: -1, Suspect: suspect,
		Examples: dprime, Metric: errmetric.TooHigh{C: 70}, Opt: opt,
	})
	if err != nil {
		t.Fatalf("debug: %v", err)
	}
	return dr
}

func TestOptionMaxExplanations(t *testing.T) {
	res, s, d := smallIntel(t)
	dr := debugWith(t, res, s, d, Options{MaxExplanations: 2})
	if len(dr.Explanations) > 2 {
		t.Errorf("explanations: %d", len(dr.Explanations))
	}
}

func TestOptionSingleCriterion(t *testing.T) {
	res, s, d := smallIntel(t)
	dr := debugWith(t, res, s, d, Options{Criteria: []dtree.Criterion{dtree.Entropy}})
	for _, e := range dr.Explanations {
		if strings.HasPrefix(e.Origin, "tree:") && !strings.Contains(e.Origin, "entropy") {
			t.Errorf("unexpected criterion in %s", e.Origin)
		}
	}
}

func TestOptionExcludeCols(t *testing.T) {
	res, s, d := smallIntel(t)
	dr := debugWith(t, res, s, d, Options{ExcludeCols: []string{"voltage", "humidity", "ts", "epoch", "light"}})
	for _, e := range dr.Explanations {
		for _, col := range e.Pred.Columns() {
			lc := strings.ToLower(col)
			if lc != "moteid" {
				t.Errorf("excluded column %q appears in %s", col, e.Pred)
			}
		}
	}
}

func TestOptionKeepAggColumn(t *testing.T) {
	res, s, d := smallIntel(t)
	dr := debugWith(t, res, s, d, Options{KeepAggColumn: true})
	// With the aggregated column available the (circular) temperature
	// predicate becomes expressible; it usually wins since D' was
	// literally selected by temperature.
	found := false
	for _, e := range dr.Explanations {
		if strings.Contains(strings.ToLower(e.Pred.String()), "temperature") {
			found = true
			break
		}
	}
	if !found {
		t.Log("temperature predicate not surfaced; acceptable but unusual")
	}
}

func TestOptionInfluenceQuantile(t *testing.T) {
	res, s, d := smallIntel(t)
	// Extreme quantile: only the very top influencers count as culpable.
	dr := debugWith(t, res, s, d, Options{InfluenceQuantile: 0.99})
	if len(dr.Explanations) == 0 {
		t.Error("no explanations at extreme quantile")
	}
}

func TestOptionMaxLOOTuples(t *testing.T) {
	res, s, d := smallIntel(t)
	dr := debugWith(t, res, s, d, Options{MaxLOOTuples: 500})
	if len(dr.Influence.Influences) > 500 {
		t.Errorf("LOO cap ignored: %d", len(dr.Influence.Influences))
	}
	if len(dr.Explanations) == 0 {
		t.Error("sampling broke the pipeline")
	}
}

func TestOptionMaxLearnRows(t *testing.T) {
	res, s, d := smallIntel(t)
	dr := debugWith(t, res, s, d, Options{MaxLearnRows: 2000})
	if len(dr.Explanations) == 0 {
		t.Error("no explanations with tight learner cap")
	}
	// -1 disables the cap entirely (0 means default).
	dr = debugWith(t, res, s, d, Options{MaxLearnRows: -1})
	if len(dr.Explanations) == 0 {
		t.Error("no explanations with cap disabled")
	}
}

func TestOptionWeights(t *testing.T) {
	res, s, d := smallIntel(t)
	// All weight on error improvement: the top result must have the
	// maximal ErrImprovement among returned explanations.
	dr := debugWith(t, res, s, d, Options{Weights: ranker.Weights{Err: 1}})
	top := dr.Explanations[0]
	for _, e := range dr.Explanations[1:] {
		if e.ErrImprovement > top.ErrImprovement+1e-9 {
			t.Errorf("err-only weights: top has Δε=%.2f but %s has %.2f",
				top.ErrImprovement, e.Pred, e.ErrImprovement)
		}
	}
}

func TestOptionSubgroupTuning(t *testing.T) {
	res, s, d := smallIntel(t)
	dr := debugWith(t, res, s, d, Options{
		Subgroup:      subgroup.Options{BeamWidth: 2, MaxSelectors: 2, MaxRules: 2},
		MaxCandidates: 1,
	})
	if dr.Candidates > 3 { // dprime, dprime+influence(, lineage) capped +1 subgroup
		t.Logf("candidates: %d", dr.Candidates)
	}
	if len(dr.Explanations) == 0 {
		t.Error("no explanations with tight subgroup budget")
	}
}

func TestDebugSecondAggregate(t *testing.T) {
	res, s, d := smallIntel(t)
	// AggItem 2 = std_temp (items: w30, avg_temp, std_temp).
	dr, err := Debug(DebugRequest{
		Result: res, AggItem: 2, Suspect: s, Examples: d,
		Metric: errmetric.TooHigh{C: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dr.Eps <= 0 {
		t.Errorf("eps over stddev aggregate: %v", dr.Eps)
	}
	if len(dr.Explanations) == 0 {
		t.Error("no explanations for stddev debugging")
	}
}

func TestDebugErrorCases(t *testing.T) {
	res, s, d := smallIntel(t)
	cases := []struct {
		name string
		req  DebugRequest
	}{
		{"nil result", DebugRequest{Suspect: s, Metric: errmetric.TooHigh{}}},
		{"nil metric", DebugRequest{Result: res, Suspect: s}},
		{"no suspects", DebugRequest{Result: res, Metric: errmetric.TooHigh{}}},
		{"bad agg item", DebugRequest{Result: res, AggItem: 0, Suspect: s, Metric: errmetric.TooHigh{}}},
	}
	for _, c := range cases {
		if _, err := Debug(c.req); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	_ = d
	// Non-aggregate query.
	db, _ := datasets.IntelDB(datasets.IntelConfig{Rows: 1_000, Seed: 1})
	plain, err := Run(db, "SELECT moteid, temperature FROM readings LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Debug(DebugRequest{Result: plain, Suspect: []int{0}, Metric: errmetric.TooHigh{}}); err == nil {
		t.Error("non-aggregate query accepted")
	}
}

func TestCleanedSQLRendersNegation(t *testing.T) {
	res, s, d := smallIntel(t)
	dr := debugWith(t, res, s, d, Options{})
	sql := CleanedSQL(res.Stmt, dr.Explanations[0].Pred)
	if !strings.Contains(sql, "NOT (") {
		t.Errorf("cleaned SQL lacks negation: %s", sql)
	}
	// The rendered SQL must reparse and run.
	db := engine.NewDB()
	db.Register(res.Source)
	if _, err := Run(db, sql); err != nil {
		t.Errorf("cleaned SQL does not run: %v\n%s", err, sql)
	}
}

func TestDebugIsDeterministic(t *testing.T) {
	res, s, d := smallIntel(t)
	a := debugWith(t, res, s, d, Options{})
	b := debugWith(t, res, s, d, Options{})
	if len(a.Explanations) != len(b.Explanations) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Explanations), len(b.Explanations))
	}
	for i := range a.Explanations {
		if a.Explanations[i].Pred.Key() != b.Explanations[i].Pred.Key() {
			t.Errorf("rank %d differs: %s vs %s", i, a.Explanations[i].Pred, b.Explanations[i].Pred)
		}
	}
}

// NULL-heavy robustness: a third of every descriptive column is NULL.
func TestDebugWithNullHeavyData(t *testing.T) {
	tbl := engine.MustNewTable("t", engine.NewSchema(
		"k", engine.TInt, "v", engine.TFloat, "tag", engine.TString, "aux", engine.TFloat))
	for i := 0; i < 900; i++ {
		k := engine.NewInt(int64(i % 3))
		v := engine.NewFloat(10)
		tag := engine.NewString("ok")
		aux := engine.NewFloat(float64(i % 7))
		if i%3 == 2 && i%2 == 0 {
			v = engine.NewFloat(200)
			tag = engine.NewString("bad")
		}
		if i%3 == 0 {
			tag = engine.Null
		}
		if i%4 == 0 {
			aux = engine.Null
		}
		if i%11 == 0 {
			v = engine.Null
		}
		tbl.MustAppendRow(k, v, tag, aux)
	}
	db := engine.NewDB()
	db.Register(tbl)
	res, err := Run(db, "SELECT k, avg(v) AS a FROM t GROUP BY k ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	suspect, err := SuspectWhere(res, "a", func(v engine.Value) bool {
		return !v.IsNull() && v.Float() > 50
	})
	if err != nil || len(suspect) == 0 {
		t.Fatalf("suspect: %v %v", suspect, err)
	}
	dr, err := Debug(DebugRequest{
		Result: res, AggItem: -1, Suspect: suspect,
		Metric: errmetric.TooHigh{C: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dr.Explanations) == 0 {
		t.Fatal("no explanations on NULL-heavy data")
	}
	top := dr.Explanations[0]
	if !strings.Contains(top.Pred.String(), "tag") && !strings.Contains(top.Pred.String(), "k") {
		t.Logf("top predicate: %s (acceptable as long as it scores)", top.Pred)
	}
}
