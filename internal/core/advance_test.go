package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/testgen"
)

// This file is the randomized differential harness for incremental
// Debug: random schemas, statements, suspect selections and append
// batches over 3–5-step chains, asserting at EVERY step that
// DebugAdvance — advanced exec result, advanced scorer, carried clause
// masks and argument views — produces exactly what a from-scratch
// Debug over an independently executed fresh result (at a forced shard
// count, so shard merging is in the loop) produces: ε, lineage,
// influence ranking, D', candidate counts, and the ranked explanations
// with their scores.
//
// Oracle mode pins the maintenance exactly: DriftThreshold < 0 forces
// the learners to re-run each step ("reexpanded"), so any divergence is
// a carried-structure bug, not a heuristic choice. The generator draws
// NULL-heavy, NaN and ±0.0 columns with exactly-representable floats
// (multiples of 0.25), so scores must agree to the last bit; the
// comparison still allows a vanishing tolerance per the advertised
// contract. Carried mode (DriftThreshold +Inf) is exercised separately
// for its structural guarantees.

// scoreTol is the advertised floating-point tolerance for score
// comparisons. With the exact-representable generator the observed
// difference is 0.
const scoreTol = 1e-9

func debugResultsEqual(t *testing.T, label string, want, got *DebugResult) {
	t.Helper()
	if want.Eps != got.Eps && !(math.IsNaN(want.Eps) && math.IsNaN(got.Eps)) {
		t.Fatalf("%s: eps %v vs %v", label, want.Eps, got.Eps)
	}
	if len(want.F) != len(got.F) {
		t.Fatalf("%s: |F| %d vs %d", label, len(want.F), len(got.F))
	}
	for i := range want.F {
		if want.F[i] != got.F[i] {
			t.Fatalf("%s: F[%d] %d vs %d", label, i, want.F[i], got.F[i])
		}
	}
	if len(want.DPrime) != len(got.DPrime) {
		t.Fatalf("%s: |D'| %d vs %d", label, len(want.DPrime), len(got.DPrime))
	}
	for i := range want.DPrime {
		if want.DPrime[i] != got.DPrime[i] {
			t.Fatalf("%s: D'[%d] %d vs %d", label, i, want.DPrime[i], got.DPrime[i])
		}
	}
	if want.Candidates != got.Candidates {
		t.Fatalf("%s: candidates %d vs %d", label, want.Candidates, got.Candidates)
	}
	wi, gi := want.Influence.Influences, got.Influence.Influences
	if len(wi) != len(gi) {
		t.Fatalf("%s: influence entries %d vs %d", label, len(wi), len(gi))
	}
	for i := range wi {
		if wi[i].Row != gi[i].Row || wi[i].GroupRow != gi[i].GroupRow ||
			(wi[i].Delta != gi[i].Delta && !(math.IsNaN(wi[i].Delta) && math.IsNaN(gi[i].Delta))) {
			t.Fatalf("%s: influence[%d] %+v vs %+v", label, i, wi[i], gi[i])
		}
	}
	if len(want.Explanations) != len(got.Explanations) {
		t.Fatalf("%s: %d vs %d explanations:\nwant %v\ngot  %v",
			label, len(want.Explanations), len(got.Explanations), want.Explanations, got.Explanations)
	}
	for i := range want.Explanations {
		we, ge := want.Explanations[i], got.Explanations[i]
		if we.Pred.Key() != ge.Pred.Key() {
			t.Fatalf("%s: explanation %d pred %s vs %s", label, i, we.Pred, ge.Pred)
		}
		if math.Abs(we.Score-ge.Score) > scoreTol ||
			math.Abs(we.EpsAfter-ge.EpsAfter) > scoreTol ||
			math.Abs(we.F1-ge.F1) > scoreTol {
			t.Fatalf("%s: explanation %d scores diverged:\n%+v\nvs\n%+v", label, i, we.Scored, ge.Scored)
		}
		if we.NumTuples != ge.NumTuples || we.Complexity != ge.Complexity || we.Origin != ge.Origin {
			t.Fatalf("%s: explanation %d lineage/shape diverged:\n%+v\nvs\n%+v", label, i, we.Scored, ge.Scored)
		}
	}
}

// chainStep holds one step's shared request inputs, drawn once so the
// oracle and the incremental pass debug the same question.
func drawRequest(rng *rand.Rand, res *exec.Result) (suspect, examples []int, ok bool) {
	suspect = testgen.Suspects(rng, res)
	if len(suspect) == 0 {
		return nil, nil, false
	}
	if rng.Float64() < 0.3 {
		// User-highlighted examples: a slice of the suspect lineage,
		// which exercises the cleaning stage on both sides.
		F := res.Lineage(suspect)
		for _, r := range F {
			if rng.Float64() < 0.3 {
				examples = append(examples, r)
			}
		}
	}
	return suspect, examples, true
}

func TestDebugAdvanceDifferential(t *testing.T) {
	seeds := int64(5)
	iters := 3
	if testing.Short() {
		seeds, iters = 3, 2
	}
	compared, advanced := 0, 0
	for seed := int64(1); seed <= seeds; seed++ {
		rng := rand.New(rand.NewSource(seed * 313))
		tbl := testgen.TableSeg(rng, 100+rng.Intn(150), engine.MinSegmentBits)
		for iter := 0; iter < iters; iter++ {
			stmt := testgen.DebugStmt(rng)
			advRes, err := exec.RunOn(tbl, stmt)
			if err != nil {
				continue
			}
			metric := testgen.Metric(rng)
			opt := Options{DriftThreshold: -1} // oracle mode: always re-expand
			var prev *DebugResult
			steps := 3 + rng.Intn(3)
			cur := tbl
			for step := 0; step < steps; step++ {
				grown, err := cur.AppendBatch(testgen.Batch(rng, testgen.BoundaryBatchSize(rng, cur)))
				if err != nil {
					t.Fatalf("seed %d iter %d step %d: AppendBatch: %v", seed, iter, step, err)
				}
				advRes, err = exec.Advance(advRes, grown)
				if err != nil {
					t.Fatalf("seed %d iter %d step %d: Advance: %v", seed, iter, step, err)
				}
				// Fresh oracle at a forced shard count: shard-merged
				// aggregate states feed the from-scratch Debug.
				fresh, err := exec.RunOnWith(grown, stmt, exec.Options{Shards: 4})
				if err != nil {
					t.Fatalf("seed %d iter %d step %d: fresh run: %v", seed, iter, step, err)
				}
				suspect, examples, ok := drawRequest(rng, fresh)
				if !ok {
					cur = grown
					continue
				}
				label := fmt.Sprintf("seed %d iter %d step %d [%s]", seed, iter, step, stmt.String())

				want, wantErr := Debug(DebugRequest{
					Result: fresh, AggItem: -1, Suspect: suspect, Examples: examples,
					Metric: metric, Opt: opt,
				})
				got, gotErr := DebugAdvance(prev, DebugRequest{
					Result: advRes, AggItem: -1, Suspect: suspect, Examples: examples,
					Metric: metric, Opt: opt,
				})
				if (wantErr != nil) != (gotErr != nil) {
					t.Fatalf("%s: error disagreement:\nfresh: %v\nincremental: %v", label, wantErr, gotErr)
				}
				if wantErr != nil {
					prev = nil
					cur = grown
					continue
				}
				debugResultsEqual(t, label, want, got)
				compared++
				if prev != nil && prev.state != nil && prev.state.scorer != nil {
					// With carried state present, oracle mode must have
					// taken the incremental re-expansion path, not a
					// silent fallback.
					if !got.Plan.Incremental {
						t.Fatalf("%s: advance fell back: %+v", label, got.Plan)
					}
					if got.Plan.Mode != "reexpanded" {
						t.Fatalf("%s: oracle mode ran %q", label, got.Plan.Mode)
					}
					advanced++
				}
				prev = got
				cur = grown
			}
			tbl = cur
		}
	}
	// Degeneracy guard: the harness must actually compare results, and
	// a healthy share of the comparisons must have exercised the
	// incremental path (not the nil-prev full fallback).
	t.Logf("compared %d steps, %d via the incremental path", compared, advanced)
	minCompared, minAdvanced := 15, 8
	if testing.Short() {
		minCompared, minAdvanced = 4, 2
	}
	if compared < minCompared || advanced < minAdvanced {
		t.Fatalf("harness degenerated: %d comparisons (%d incremental)", compared, advanced)
	}
}

// TestDebugAdvanceCarried pins the carried mode's structural
// guarantees on a stable stream — the SAME suspect groups and examples
// debugged across batches (a changed selection forces re-expansion by
// design): the preprocessing (ε, lineage, influence) still matches the
// from-scratch oracle exactly, the pass reports itself as carried with
// zero fresh candidates, and the carried predicates are rescored —
// scores reflect the grown table.
func TestDebugAdvanceCarried(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	tbl := testgen.Table(rng, 250)
	var prev *DebugResult
	var stmt = testgen.DebugStmt(rng)
	advRes, err := exec.RunOn(tbl, stmt)
	metric := testgen.Metric(rng)
	opt := Options{DriftThreshold: math.Inf(1)} // always carry once seeded
	// The fixed question: drawn once (DebugStmt emits no HAVING/ORDER
	// BY/LIMIT, so output row indexes are append-stable).
	var suspect, examples []int
	carried := 0
	for attempt := 0; attempt < 20 && carried < 3; attempt++ {
		if err != nil {
			stmt = testgen.DebugStmt(rng)
			advRes, err = exec.RunOn(tbl, stmt)
			suspect = nil
			continue
		}
		if suspect == nil {
			var ok bool
			suspect, examples, ok = drawRequest(rng, advRes)
			if !ok {
				err = fmt.Errorf("no suspects")
				continue
			}
		}
		grown, aerr := tbl.AppendBatch(testgen.Batch(rng, 1+rng.Intn(30)))
		if aerr != nil {
			t.Fatal(aerr)
		}
		advRes, err = exec.Advance(advRes, grown)
		if err != nil {
			t.Fatalf("Advance: %v", err)
		}
		tbl = grown
		fresh, ferr := exec.RunOn(grown, stmt)
		if ferr != nil {
			t.Fatal(ferr)
		}
		got, gerr := DebugAdvance(prev, DebugRequest{
			Result: advRes, AggItem: -1, Suspect: suspect, Examples: examples,
			Metric: metric, Opt: opt,
		})
		if gerr != nil {
			prev = nil
			continue
		}
		if prev != nil && prev.state != nil && prev.state.scorer != nil && prev.state.rstate.Len() > 0 {
			if got.Plan.Mode != "carried" || !got.Plan.Incremental {
				t.Fatalf("attempt %d: plan %+v, want carried", attempt, got.Plan)
			}
			if got.Plan.Fresh != 0 {
				t.Fatalf("attempt %d: carried pass reports %d fresh candidates", attempt, got.Plan.Fresh)
			}
			if got.Plan.Carried != len(got.Explanations) && got.Plan.Carried < len(got.Explanations) {
				t.Fatalf("attempt %d: carried count %d < %d explanations", attempt, got.Plan.Carried, len(got.Explanations))
			}
			for i, e := range got.Explanations {
				if e.Provenance != "carried" {
					t.Fatalf("attempt %d: explanation %d provenance %q", attempt, i, e.Provenance)
				}
			}
			// Preprocessing must still match the oracle exactly.
			want, werr := Debug(DebugRequest{
				Result: fresh, AggItem: -1, Suspect: suspect, Examples: examples,
				Metric: metric, Opt: opt,
			})
			if werr != nil {
				t.Fatalf("attempt %d: oracle errored (%v) where carried pass succeeded", attempt, werr)
			}
			if want.Eps != got.Eps && !(math.IsNaN(want.Eps) && math.IsNaN(got.Eps)) {
				t.Fatalf("attempt %d: eps %v vs %v", attempt, want.Eps, got.Eps)
			}
			if len(want.F) != len(got.F) {
				t.Fatalf("attempt %d: |F| %d vs %d", attempt, len(want.F), len(got.F))
			}
			for i := range want.F {
				if want.F[i] != got.F[i] {
					t.Fatalf("attempt %d: F[%d] differs", attempt, i)
				}
			}
			carried++
		}
		prev = got
	}
	if carried == 0 {
		t.Fatal("harness never reached a carried pass")
	}
}

// TestDebugAdvanceChangedSelectionReexpands: carried candidates were
// learned for one suspect/example selection; debugging a different
// selection must re-run the learners even when the carried predicates'
// scores barely move — rescoring alone could silently omit
// selection-specific predicates.
func TestDebugAdvanceChangedSelectionReexpands(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	opt := Options{DriftThreshold: math.Inf(1)} // carry would always win on drift alone
	for attempt := 0; attempt < 30; attempt++ {
		tbl := testgen.Table(rng, 200+rng.Intn(100))
		stmt := testgen.DebugStmt(rng)
		res, err := exec.RunOn(tbl, stmt)
		if err != nil || res.NumRows() < 2 {
			continue
		}
		metric := testgen.Metric(rng)
		suspectA, examples, ok := drawRequest(rng, res)
		if !ok {
			continue
		}
		prev, err := Debug(DebugRequest{Result: res, AggItem: -1, Suspect: suspectA, Examples: examples, Metric: metric, Opt: opt})
		if err != nil || prev.state == nil || prev.state.scorer == nil || prev.state.rstate.Len() == 0 {
			continue
		}
		grown, err := tbl.AppendBatch(testgen.Batch(rng, 10))
		if err != nil {
			t.Fatal(err)
		}
		adv, err := exec.Advance(res, grown)
		if err != nil {
			t.Fatal(err)
		}
		// A different suspect selection over the same statement.
		suspectB := []int{(suspectA[0] + 1) % adv.NumRows()}
		if rowsKey(suspectB) == rowsKey(suspectA) {
			continue
		}
		got, err := DebugAdvance(prev, DebugRequest{Result: adv, AggItem: -1, Suspect: suspectB, Examples: examples, Metric: metric, Opt: opt})
		if err != nil {
			continue // e.g. the new selection has empty lineage — fine
		}
		if got.Plan.Mode == "carried" {
			t.Fatalf("attempt %d: changed suspect selection was served a carried ranking: %+v", attempt, got.Plan)
		}
		if !got.Plan.Incremental {
			t.Fatalf("attempt %d: changed selection should still advance (re-expand), got %+v", attempt, got.Plan)
		}
		return
	}
	t.Fatal("never reached the changed-selection scenario")
}

// TestDebugDeterminism guards the harness's foundation: the pipeline
// run twice over identical inputs is identical (the learner stages are
// seeded and collected deterministically). A flake here means the
// differential assertions above are meaningless.
func TestDebugDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tbl := testgen.Table(rng, 220)
	for iter := 0; iter < 6; iter++ {
		stmt := testgen.DebugStmt(rng)
		res1, err := exec.RunOn(tbl, stmt)
		if err != nil {
			continue
		}
		res2, err := exec.RunOn(tbl, stmt)
		if err != nil {
			t.Fatal(err)
		}
		metric := testgen.Metric(rng)
		suspect, examples, ok := drawRequest(rng, res1)
		if !ok {
			continue
		}
		req := func(r *exec.Result) DebugRequest {
			return DebugRequest{Result: r, AggItem: -1, Suspect: suspect, Examples: examples, Metric: metric}
		}
		a, errA := Debug(req(res1))
		b, errB := Debug(req(res2))
		if (errA != nil) != (errB != nil) {
			t.Fatalf("iter %d: error disagreement %v vs %v", iter, errA, errB)
		}
		if errA != nil {
			continue
		}
		debugResultsEqual(t, fmt.Sprintf("iter %d determinism [%s]", iter, stmt.String()), a, b)
	}
}

// TestDebugAdvanceFallbacks pins the fallback conditions: each
// incompatibility runs the full pipeline and says why.
func TestDebugAdvanceFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tbl := testgen.Table(rng, 200)
	var res *exec.Result
	var stmt = testgen.DebugStmt(rng)
	var err error
	for {
		res, err = exec.RunOn(tbl, stmt)
		if err == nil && res.NumRows() > 0 {
			break
		}
		stmt = testgen.DebugStmt(rng)
	}
	metric := testgen.Metric(rng)
	var prev *DebugResult
	for attempt := 0; attempt < 30 && prev == nil; attempt++ {
		suspect, examples, ok := drawRequest(rng, res)
		if !ok {
			t.Fatal("no suspects")
		}
		prev, _ = Debug(DebugRequest{Result: res, AggItem: -1, Suspect: suspect, Examples: examples, Metric: metric})
	}
	if prev == nil {
		t.Skip("could not seed a Debug result on this statement")
	}
	suspect, _, _ := drawRequest(rng, res)

	// nil prev → full, no fallback reason (it wasn't an advance).
	dr, err := DebugAdvance(nil, DebugRequest{Result: res, AggItem: -1, Suspect: suspect, Metric: metric})
	if err == nil {
		if dr.Plan.Mode != "full" || dr.Plan.Fallback != "no carried analysis" {
			t.Fatalf("nil prev plan: %+v", dr.Plan)
		}
	}

	// Changed statement → fallback.
	stmt2 := testgen.DebugStmt(rng)
	for stmt2.String() == stmt.String() {
		stmt2 = testgen.DebugStmt(rng)
	}
	res2, err := exec.RunOn(tbl, stmt2)
	if err == nil {
		if s2, _, ok := drawRequest(rng, res2); ok {
			dr, err = DebugAdvance(prev, DebugRequest{Result: res2, AggItem: -1, Suspect: s2, Metric: metric})
			if err == nil && (dr.Plan.Mode != "full" || dr.Plan.Fallback != "statement changed") {
				t.Fatalf("changed statement plan: %+v", dr.Plan)
			}
		}
	}

	// Changed metric → fallback.
	m2 := testgen.Metric(rng)
	for metricKey(m2) == metricKey(metric) {
		m2 = testgen.Metric(rng)
	}
	dr, err = DebugAdvance(prev, DebugRequest{Result: res, AggItem: -1, Suspect: suspect, Metric: m2})
	if err == nil && (dr.Plan.Mode != "full" || dr.Plan.Fallback != "error metric changed") {
		t.Fatalf("changed metric plan: %+v", dr.Plan)
	}

	// Unrelated table → fallback.
	other := testgen.Table(rng, 100)
	resOther, err := exec.RunOn(other, stmt)
	if err == nil {
		if s3, _, ok := drawRequest(rng, resOther); ok {
			dr, err = DebugAdvance(prev, DebugRequest{Result: resOther, AggItem: -1, Suspect: s3, Metric: metric})
			if err == nil && (dr.Plan.Mode != "full" || dr.Plan.Fallback != "source table changed") {
				t.Fatalf("changed table plan: %+v", dr.Plan)
			}
		}
	}
}
