package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/testgen"
)

// TestDebugAdvanceRetentionDifferential is the three-layer harness
// across retention horizons: append chains on a minimum-segment table
// with interleaved whole-segment drops, every step comparing
// DebugAdvance over the carried chain against a from-scratch Debug of
// the retained window (oracle mode, forced shard count). The chain's
// exec.Advance may rebase or fall back per statement; either way the
// Debug output must be bit-identical, and a step across a horizon must
// record the retention reason when it kept the incremental path.
func TestDebugAdvanceRetentionDifferential(t *testing.T) {
	seeds := int64(4)
	iters := 3
	if testing.Short() {
		seeds, iters = 2, 2
	}
	compared, horizons := 0, 0
	for seed := int64(1); seed <= seeds; seed++ {
		rng := rand.New(rand.NewSource(seed * 919))
		tbl := testgen.TableSeg(rng, 100+rng.Intn(150), engine.MinSegmentBits)
		for iter := 0; iter < iters; iter++ {
			stmt := testgen.DebugStmt(rng)
			advRes, err := exec.RunOn(tbl, stmt)
			if err != nil {
				continue
			}
			metric := testgen.Metric(rng)
			opt := Options{DriftThreshold: -1} // oracle mode: always re-expand
			var prev *DebugResult
			cur := tbl
			for step := 0; step < 4; step++ {
				grown, err := cur.AppendBatch(testgen.Batch(rng, testgen.BoundaryBatchSize(rng, cur)))
				if err != nil {
					t.Fatalf("seed %d iter %d step %d: AppendBatch: %v", seed, iter, step, err)
				}
				cur = grown
				dropped := 0
				if rng.Intn(2) == 0 {
					cur, dropped = testgen.RetainStep(rng, cur)
					if dropped > 0 {
						horizons++
					}
				}
				advRes, err = exec.Advance(advRes, cur)
				if err != nil {
					t.Fatalf("seed %d iter %d step %d: Advance: %v", seed, iter, step, err)
				}
				fresh, err := exec.RunOnWith(cur, stmt, exec.Options{Shards: 4})
				if err != nil {
					t.Fatalf("seed %d iter %d step %d: fresh run: %v", seed, iter, step, err)
				}
				suspect, examples, ok := drawRequest(rng, fresh)
				if !ok {
					continue
				}
				label := fmt.Sprintf("seed %d iter %d step %d drop %d [%s]", seed, iter, step, dropped, stmt.String())

				want, wantErr := Debug(DebugRequest{
					Result: fresh, AggItem: -1, Suspect: suspect, Examples: examples,
					Metric: metric, Opt: opt,
				})
				got, gotErr := DebugAdvance(prev, DebugRequest{
					Result: advRes, AggItem: -1, Suspect: suspect, Examples: examples,
					Metric: metric, Opt: opt,
				})
				if (wantErr != nil) != (gotErr != nil) {
					t.Fatalf("%s: error disagreement:\nfresh: %v\nincremental: %v", label, wantErr, gotErr)
				}
				if wantErr != nil {
					prev = nil
					continue
				}
				debugResultsEqual(t, label, want, got)
				compared++
				if dropped > 0 && got.Plan.Incremental && got.Plan.Fallback == "" {
					t.Fatalf("%s: crossed a retention horizon incrementally without recording it: %+v", label, got.Plan)
				}
				prev = got
			}
			tbl = cur
		}
	}
	t.Logf("compared %d steps across %d retention horizons", compared, horizons)
	minCompared, minHorizons := 10, 3
	if testing.Short() {
		minCompared, minHorizons = 4, 1
	}
	if compared < minCompared || horizons < minHorizons {
		t.Fatalf("harness degenerated: %d comparisons, %d horizons", compared, horizons)
	}
}
