package core

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/errmetric"
)

// TestHomogeneousGroup exercises the case where an entire group is bad:
// the pipeline must sample external contrast tuples to describe it.
func TestHomogeneousGroup(t *testing.T) {
	schema := engine.NewSchema("sensor", engine.TInt, "room", engine.TString, "temp", engine.TFloat)
	readings := engine.MustNewTable("readings", schema)
	for i := 0; i < 200; i++ {
		sensor := int64(1 + i%3)
		room := []string{"kitchen", "lab", "lounge"}[i%3]
		temp := 68.0 + float64(i%7)
		if sensor == 3 {
			temp = 120 + float64(i%5)
		}
		readings.MustAppendRow(engine.NewInt(sensor), engine.NewString(room), engine.NewFloat(temp))
	}
	db := engine.NewDB()
	db.Register(readings)
	res, err := Run(db, "SELECT room, avg(temp) AS avg_temp FROM readings GROUP BY room")
	if err != nil {
		t.Fatal(err)
	}
	suspect, _ := SuspectWhere(res, "avg_temp", func(v engine.Value) bool { return !v.IsNull() && v.Float() > 75 })
	fmt.Println("suspect:", suspect)
	dr, err := Debug(DebugRequest{Result: res, AggItem: -1, Suspect: suspect, Metric: errmetric.TooHigh{C: 70}})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println("eps:", dr.Eps, "F:", len(dr.F), "dprime:", len(dr.DPrime), "cands:", dr.Candidates)
	for i, e := range dr.Explanations {
		fmt.Printf("#%d %s\n", i, e.Scored)
	}
	if len(dr.Explanations) == 0 {
		t.Fatal("no explanations")
	}
}
