// Package core is DBWipes' primary contribution: the ranked provenance
// pipeline. Given an executed aggregate query, a set of suspicious
// output groups S, an error metric ε, and (optionally) user-highlighted
// example tuples D', Debug returns a ranked list of human-readable
// predicates describing the input tuples most responsible for the error
// — and CleanAndRequery applies a chosen predicate and re-runs the
// query, closing the paper's "clean as you query" interactive loop.
//
// The pipeline mirrors Figure 1 of the paper:
//
//	Preprocessor        → lineage F of S + leave-one-out influence (internal/influence)
//	Dataset Enumerator  → clean D' (internal/cleaner), extend via subgroup
//	                      discovery (internal/subgroup) into candidates Dᶜᵢ
//	Predicate Enumerator→ decision trees per candidate per splitting
//	                      criterion (internal/dtree), leaf paths → predicates
//	Predicate Ranker    → ε-improvement + separation accuracy − complexity
//	                      (internal/ranker)
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cleaner"
	"repro/internal/dtree"
	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/feature"
	"repro/internal/influence"
	"repro/internal/predicate"
	"repro/internal/ranker"
	"repro/internal/sqlparse"
	"repro/internal/subgroup"
)

// Options tunes the pipeline. The zero value gives the defaults used in
// the demo.
type Options struct {
	// MaxLOOTuples caps leave-one-out analysis (0 = analyze all of F).
	MaxLOOTuples int
	// InfluenceQuantile selects the high-influence extension set: tuples
	// with at least this fraction of the top influence (default 0.5).
	InfluenceQuantile float64
	// CleanMethod is the D' consistency technique: "kmeans" (default),
	// "bayes", or "none".
	CleanMethod string
	// Subgroup tunes the CN2-SD search.
	Subgroup subgroup.Options
	// Criteria lists the decision-tree splitting strategies (default
	// gini, entropy, gain ratio — the paper's "m standard strategies").
	Criteria []dtree.Criterion
	// Tree tunes tree induction.
	Tree dtree.Options
	// ExcludeCols removes attributes from the explanation vocabulary.
	ExcludeCols []string
	// KeepAggColumn retains the aggregated column as an explanation
	// attribute. Off by default: "temperature > 100 explains high
	// temperatures" is circular.
	KeepAggColumn bool
	// MaxCandidates caps the candidate datasets from subgroup discovery
	// (default 4, plus the cleaned-D' and high-influence candidates).
	MaxCandidates int
	// MaxExplanations caps the returned ranking (default 10).
	MaxExplanations int
	// MaxLearnRows caps the population the learners (subgroup discovery,
	// decision trees) see; culpable tuples are always kept and the rest
	// is an evenly spaced sample (default 16000, 0 keeps everything).
	// Predicates are still *scored* against the full lineage, so the
	// reported ε-improvements are exact.
	MaxLearnRows int
	// Weights mixes the ranker's score terms.
	Weights ranker.Weights
	// DisablePrune turns off the ranker's greedy clause pruning
	// (ablation).
	DisablePrune bool
	// DisableMerge turns off the ranker's pairwise predicate merging
	// (ablation).
	DisableMerge bool
	// DriftThreshold governs DebugAdvance's carry/re-expand decision:
	// carried candidates are rescored against the advanced state, and
	// when the largest score movement exceeds the threshold the learners
	// re-run (re-expansion). 0 takes the default (0.1); negative always
	// re-expands, which makes DebugAdvance produce exactly what a
	// from-scratch Debug would — the differential-test oracle mode.
	DriftThreshold float64
	// FeatureOpts overrides featurization (advanced).
	Feature feature.Options
}

// defaultDriftThreshold is the score movement DebugAdvance tolerates
// before re-running the learners. Scores live in roughly [0, 1]
// (Err+Acc weights sum near 0.9), so 0.1 means "an explanation moved by
// a tenth of the scale".
const defaultDriftThreshold = 0.1

func (o *Options) defaults() {
	if o.InfluenceQuantile <= 0 || o.InfluenceQuantile > 1 {
		o.InfluenceQuantile = 0.5
	}
	if o.CleanMethod == "" {
		o.CleanMethod = "kmeans"
	}
	if len(o.Criteria) == 0 {
		o.Criteria = []dtree.Criterion{dtree.Gini, dtree.Entropy, dtree.GainRatio}
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 4
	}
	if o.MaxExplanations <= 0 {
		o.MaxExplanations = 10
	}
	if o.MaxLearnRows == 0 {
		o.MaxLearnRows = 16000
	}
	if o.DriftThreshold == 0 {
		o.DriftThreshold = defaultDriftThreshold
	}
}

// DebugRequest is one provenance query: "why do these groups look
// wrong?".
type DebugRequest struct {
	// Ctx cancels the pipeline between stages and inside every
	// long-running one (the LOO loop, the per-tree learner pool, the
	// ranker's worker pool). A cancelled Debug/DebugAdvance returns an
	// error wrapping the context error and publishes nothing: carried
	// state from a previous pass stays exactly as usable as before, so
	// retrying the same request (or falling back to a from-scratch run)
	// yields bit-identical results. Nil means context.Background.
	Ctx context.Context
	// Result is the executed query (with provenance).
	Result *exec.Result
	// AggItem is the select-item index of the aggregate under scrutiny;
	// -1 means the first aggregate.
	AggItem int
	// Suspect lists the suspicious output rows S (indexes into
	// Result.Table).
	Suspect []int
	// Examples optionally lists suspicious input tuples D' (source row
	// ids). When empty, the high-influence set stands in for D'.
	Examples []int
	// Metric is the user's error function ε.
	Metric errmetric.Metric
	// Opt tunes the pipeline.
	Opt Options
}

// Explanation is one ranked predicate.
type Explanation struct {
	ranker.Scored
	// Candidate identifies which candidate dataset the predicate was
	// learned from (diagnostic).
	Candidate string
}

// DebugPlan records how a Debug pass was produced — the explanation
// pipeline's counterpart of exec.PlanInfo. The carry/re-expand state
// machine: a DebugAdvance call first tries to carry (rescore the
// previous pass's predicates against the advanced scoring state);
// carried scores drifting past Options.DriftThreshold trigger
// re-expansion (the learners re-run over the advanced state); and
// conditions the incremental path cannot express at all — no carried
// state, a changed statement or metric, a non-advanceable aggregate —
// fall back to the full from-scratch pipeline, with the reason
// recorded in Fallback.
type DebugPlan struct {
	// Incremental is true when the pass advanced carried state from a
	// previous Debug instead of rebuilding the scoring structures.
	Incremental bool
	// Mode is "full" (from-scratch pipeline), "carried" (previous
	// candidates rescored, learners skipped), or "reexpanded"
	// (incremental preprocessing, learners re-run after drift).
	Mode string
	// Fallback is why a requested advance ran the full pipeline.
	Fallback string
	// Carried and Fresh count the ranked candidates by provenance.
	Carried, Fresh int
	// Drift is the largest carried-candidate score movement observed
	// (set whenever carried candidates were rescored, even when the
	// result re-expanded).
	Drift float64
}

// DebugResult is the output of one Debug call.
type DebugResult struct {
	// Explanations is the ranked predicate list (best first).
	Explanations []Explanation
	// Eps is ε over the suspect groups before cleaning.
	Eps float64
	// F is the suspect groups' lineage (fine-grained provenance).
	F []int
	// DPrime is the cleaned example set actually used.
	DPrime []int
	// Influence is the preprocessor's analysis (top tuples first).
	Influence *influence.Analysis
	// Candidates counts the candidate datasets enumerated.
	Candidates int
	// Timings records per-stage wall time.
	Timings map[string]time.Duration
	// Plan records how this pass was produced (full / carried /
	// re-expanded) and why.
	Plan DebugPlan

	// state is the carryable analysis for DebugAdvance chains.
	state *debugState
}

// debugState is what a later DebugAdvance needs to pick the analysis up
// after the source table grew: the result and request shape the pass
// ran under (to validate the advance applies), the columnar scorer (its
// bitsets and argument view extend by suffix), and the ranker's scored
// candidates (rescored instead of re-learned while drift stays low).
type debugState struct {
	src       *engine.Table // source table the pass ran over (family + length checks)
	stmtKey   string
	ord       int
	metricKey string
	opt       Options
	scorer    *influence.Scorer
	rstate    *ranker.RankerState
	// suspectKey and examplesKey fingerprint the question the carried
	// candidates were learned for: suspect groups by version-stable
	// identity (first source row), examples by row id. A changed
	// selection forces re-expansion — rescoring would be numerically
	// honest, but the learners never saw the new selection's lineage,
	// so selection-specific predicates could be silently missing.
	suspectKey  string
	examplesKey string
	// index is the pass's clause-mask index, carried so rescoring a
	// candidate over the grown table extends masks by suffix decode
	// only. Owned by the Debug chain (NOT the family-shared aux index):
	// candidate thresholds churn per re-expansion, and an unevictable
	// family-lifetime cache would grow without bound under streaming.
	index *predicate.Index
}

// maxCarriedClauseMasks bounds the carried index: re-expansions add
// data-dependent thresholds that rarely recur, so past this many cached
// masks the chain starts over with a fresh index rather than keep
// paying rows/8 bytes per dead mask.
const maxCarriedClauseMasks = 256

// metricKey canonicalizes a metric for change detection across Debug
// passes; every errmetric renders its parameters into String/against
// %v.
func metricKey(m errmetric.Metric) string {
	return fmt.Sprintf("%s|%v", m.Name(), m)
}

// suspectKeyOf fingerprints a suspect selection by the selected groups'
// first source rows — stable across table versions and output
// re-materialization, unlike the output row indexes themselves. All
// indexes must be in range (callers validate via the scorer first).
func suspectKeyOf(res *exec.Result, suspect []int) string {
	frs := make([]int, len(suspect))
	for i, ri := range suspect {
		frs[i] = res.Groups[ri].FirstRow
	}
	sort.Ints(frs)
	return fmt.Sprint(frs)
}

// rowsKey fingerprints a row-id selection (order-insensitive).
func rowsKey(rows []int) string {
	s := append([]int(nil), rows...)
	sort.Ints(s)
	return fmt.Sprint(s)
}

// Run parses and executes sql against db with provenance capture.
func Run(db *engine.DB, sql string) (*exec.Result, error) {
	return exec.RunSQL(db, sql)
}

// ctx returns the request's context, Background when unset.
func (req DebugRequest) ctx() context.Context {
	if req.Ctx != nil {
		return req.Ctx
	}
	return context.Background()
}

// resolveDebug validates the request shape shared by Debug and
// DebugAdvance and resolves the aggregate ordinal.
func resolveDebug(req DebugRequest) (int, error) {
	res := req.Result
	if res == nil {
		return 0, fmt.Errorf("core: nil result")
	}
	if req.Metric == nil {
		return 0, fmt.Errorf("core: nil error metric")
	}
	if len(req.Suspect) == 0 {
		return 0, fmt.Errorf("core: no suspect groups selected")
	}
	if len(res.AggOrdinals()) == 0 {
		return 0, fmt.Errorf("core: query has no aggregates to debug")
	}
	ord := 0
	if req.AggItem >= 0 {
		ord = res.AggOrdinalOf(req.AggItem)
		if ord < 0 {
			return 0, fmt.Errorf("core: select item %d is not an aggregate", req.AggItem)
		}
	}
	return ord, nil
}

// debugRun carries one Debug pass's intermediate state across the
// pipeline stages. Debug and DebugAdvance share these stage methods, so
// the incremental path cannot drift from the from-scratch one: the only
// difference between them is where the influence analysis comes from
// (a fresh Scorer vs an advanced one) and whether the learner stages
// run at all.
type debugRun struct {
	req DebugRequest
	opt Options
	ord int
	out *DebugResult

	an            *influence.Analysis
	inF           map[int]bool
	dprime        []int
	highInfluence []int
	extras        []int
	pop, learnPop []int
	sp            *feature.Space
	// index is the clause-mask index the ranking stage scores through —
	// fresh for a from-scratch Debug, carried (suffix-extending) for an
	// advanced one.
	index *predicate.Index
}

// checkCtx is the between-stages cancellation point: every pipeline
// stage boundary polls the request context so a cancelled Debug stops
// before starting the next learner stage.
func (d *debugRun) checkCtx() error {
	if err := d.req.ctx().Err(); err != nil {
		return fmt.Errorf("core: debug cancelled: %w", err)
	}
	return nil
}

// preprocess records the influence analysis and derives the example and
// learning populations (Dataset Enumerator step 1).
func (d *debugRun) preprocess(an *influence.Analysis) error {
	opt, req, out := d.opt, d.req, d.out
	d.an = an
	out.Influence = an
	out.Eps = an.Eps
	out.F = an.F
	if len(an.F) == 0 {
		return fmt.Errorf("core: suspect groups have empty lineage")
	}

	start := time.Now()
	d.inF = make(map[int]bool, len(an.F))
	for _, r := range an.F {
		d.inF[r] = true
	}
	d.dprime = nil
	for _, r := range req.Examples {
		if d.inF[r] {
			d.dprime = append(d.dprime, r)
		}
	}
	d.highInfluence = an.TopQuantileRows(opt.InfluenceQuantile)
	if len(d.dprime) == 0 {
		// No examples: the high-influence set stands in for D'.
		d.dprime = d.highInfluence
	}
	if len(d.dprime) == 0 {
		return fmt.Errorf("core: no influential tuples found (ε=%g); nothing to explain", an.Eps)
	}

	// The learners need a negative class. F − D' supplies part of it
	// ("an approximate set of error-free input tuples", per the paper);
	// we additionally sample contrast tuples from outside F — rows of
	// non-suspect groups are error-free by construction — so that
	// predicates can describe F itself when an entire group is bad, and
	// so they generalize against the rest of the table.
	d.pop = an.F
	want := len(an.F)
	if want > 20000 {
		want = 20000
	}
	if want < 50 {
		want = 50
	}
	d.extras = sampleOutside(req.Result.Source.NumRows(), d.inF, want)
	if len(d.extras) > 0 {
		d.pop = append(append([]int(nil), an.F...), d.extras...)
	}

	// Learners see a capped population: all culpable tuples plus an
	// evenly spaced sample of the rest. Scoring still runs on the full
	// lineage, so this only trades learner variance for speed.
	d.learnPop = d.pop
	if opt.MaxLearnRows > 0 && len(d.pop) > opt.MaxLearnRows {
		culpableSet := make(map[int]bool, len(d.dprime)+len(d.highInfluence))
		for _, r := range d.dprime {
			culpableSet[r] = true
		}
		for _, r := range d.highInfluence {
			culpableSet[r] = true
		}
		learnPop := make([]int, 0, opt.MaxLearnRows)
		capCulp := opt.MaxLearnRows * 3 / 4
		nCulp := 0
		for _, r := range d.pop {
			if culpableSet[r] && nCulp < capCulp {
				learnPop = append(learnPop, r)
				nCulp++
			}
		}
		rest := opt.MaxLearnRows - len(learnPop)
		others := make([]int, 0, len(d.pop)-nCulp)
		for _, r := range d.pop {
			if !culpableSet[r] {
				others = append(others, r)
			}
		}
		if rest >= len(others) {
			learnPop = append(learnPop, others...)
		} else {
			step := float64(len(others)) / float64(rest)
			for i := 0; i < rest; i++ {
				learnPop = append(learnPop, others[int(float64(i)*step)])
			}
		}
		sort.Ints(learnPop)
		d.learnPop = learnPop
	}
	d.out.Timings["enumerate"] = time.Since(start)
	return nil
}

// featurize builds the feature space over the learning population.
func (d *debugRun) featurize() error {
	start := time.Now()
	fopt := d.opt.Feature
	fopt.Rows = d.learnPop
	fopt.Exclude = append(append([]string(nil), fopt.Exclude...), d.opt.ExcludeCols...)
	if !d.opt.KeepAggColumn {
		fopt.Exclude = append(fopt.Exclude, aggColumns(d.req.Result, d.ord)...)
	}
	d.sp = feature.NewSpace(d.req.Result.Source, fopt)
	if len(d.sp.Attrs) == 0 {
		return fmt.Errorf("core: no usable attributes remain after exclusions")
	}
	d.out.Timings["featurize"] += time.Since(start)
	return nil
}

// cleanExamples runs the D' consistency technique over user-supplied
// examples (Dataset Enumerator step 2a). Requires featurize.
func (d *debugRun) cleanExamples() {
	start := time.Now()
	if len(d.req.Examples) > 0 && len(d.dprime) > 0 {
		background := difference(d.an.F, d.dprime)
		d.dprime = cleaner.Clean(d.sp, d.dprime, cleaner.Options{
			Method:     d.opt.CleanMethod,
			Background: background,
		})
	}
	d.out.DPrime = d.dprime
	d.out.Timings["enumerate"] += time.Since(start)
}

// enumerate runs candidate dataset enumeration (Dataset Enumerator step
// 2b) and the Predicate Enumerator (trees per candidate per criterion),
// returning the ranker's candidate pool. Requires cleanExamples.
func (d *debugRun) enumerate() []ranker.Candidate {
	opt, out := d.opt, d.out
	learnPop, dprime := d.learnPop, d.dprime

	start := time.Now()
	type cand struct {
		name string
		rows map[int]bool
	}
	var candidates []cand
	addCandidate := func(name string, rows []int) {
		if len(rows) == 0 || len(rows) == len(learnPop) {
			return
		}
		set := make(map[int]bool, len(rows))
		for _, r := range rows {
			set[r] = true
		}
		for _, c := range candidates {
			if sameSet(c.rows, set) {
				return
			}
		}
		candidates = append(candidates, cand{name, set})
	}
	addCandidate("dprime", dprime)
	if len(d.highInfluence) > 0 {
		addCandidate("dprime+influence", union(dprime, d.highInfluence))
	}
	if len(d.extras) > 0 {
		// With external contrast available, the full lineage is itself a
		// describable candidate ("everything in these groups is bad").
		addCandidate("lineage", d.an.F)
	}

	// Subgroup discovery extends D' into self-consistent regions of the
	// population.
	labels := make([]bool, len(learnPop))
	inDPrime := make(map[int]bool, len(dprime))
	for _, r := range dprime {
		inDPrime[r] = true
	}
	for i, r := range learnPop {
		labels[i] = inDPrime[r]
	}
	sgRules := subgroup.Discover(d.sp, learnPop, labels, opt.Subgroup)
	for i, rule := range sgRules {
		if i >= opt.MaxCandidates {
			break
		}
		addCandidate(fmt.Sprintf("subgroup%d", i), rule.Covered)
	}
	out.Candidates = len(candidates)
	out.Timings["enumerate"] += time.Since(start)

	// --- Predicate Enumerator: trees per candidate per criterion. ---
	// Each (candidate, criterion) training run is independent, so they
	// run concurrently; results are collected by slot index to keep the
	// output order — and therefore the final ranking — deterministic.
	start = time.Now()
	type job struct {
		cand cand
		crit dtree.Criterion
	}
	var jobs []job
	for _, c := range candidates {
		for _, crit := range opt.Criteria {
			jobs = append(jobs, job{cand: c, crit: crit})
		}
	}
	perJob := make([][]ranker.Candidate, len(jobs))
	cctx := d.req.ctx()
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for ji := range jobs {
		wg.Add(1)
		go func(ji int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// Cancellation check per tree training job; the caller's next
			// stage boundary discards the partial pool.
			if cctx.Err() != nil {
				return
			}
			j := jobs[ji]
			candLabels := make([]bool, len(learnPop))
			for i, r := range learnPop {
				candLabels[i] = j.cand.rows[r]
			}
			topt := opt.Tree
			topt.Criterion = j.crit
			tree, err := dtree.Train(d.sp, learnPop, candLabels, nil, topt)
			if err != nil {
				return
			}
			for _, leaf := range tree.PositivePaths() {
				if leaf.Pred.IsTrue() {
					continue
				}
				perJob[ji] = append(perJob[ji], ranker.Candidate{
					Pred:   leaf.Pred,
					Origin: fmt.Sprintf("tree:%s:%s", j.crit, j.cand.name),
					Target: j.cand.rows,
				})
			}
		}(ji)
	}
	wg.Wait()
	var rcands []ranker.Candidate
	for _, rc := range perJob {
		rcands = append(rcands, rc...)
	}
	// Subgroup rules are themselves compact predicates; rank them too.
	for i, rule := range sgRules {
		p := rule.Predicate(d.sp)
		if p.IsTrue() {
			continue
		}
		target := make(map[int]bool, len(rule.Covered))
		for _, r := range rule.Covered {
			target[r] = true
		}
		rcands = append(rcands, ranker.Candidate{
			Pred:   p,
			Origin: fmt.Sprintf("subgroup%d", i),
			Target: target,
		})
	}
	out.Timings["predicates"] = time.Since(start)
	return rcands
}

// context builds the ranker's scoring context. Requires cleanExamples
// (culpability uses the cleaned D').
func (d *debugRun) context() *ranker.Context {
	// Culpability: tuples in the user's cleaned D' or the high-influence
	// set. The ranker's Excess term uses it to prefer surgical
	// predicates over "delete the whole group" ones.
	culpable := make(map[int]bool, len(d.dprime)+len(d.highInfluence))
	for _, r := range d.dprime {
		culpable[r] = true
	}
	for _, r := range d.highInfluence {
		culpable[r] = true
	}
	ctx := &ranker.Context{
		Ctx: d.req.Ctx,
		Res: d.req.Result, Suspect: d.req.Suspect, Ord: d.ord,
		Metric: d.req.Metric, F: d.an.F, Population: d.learnPop, Culpable: culpable,
		Eps: d.an.Eps, Weights: d.opt.Weights,
		DisablePrune: d.opt.DisablePrune, DisableMerge: d.opt.DisableMerge,
	}
	// Columnar fast path: reuse the Scorer the preprocessor already
	// built (lineage bitsets + flat argument column) for every candidate
	// scoring in this Debug call; the ranker falls back to the boxed
	// path internally when the Scorer is nil (e.g. DISTINCT aggregates).
	ctx.Scorer = d.an.Scorer
	if d.index == nil {
		d.index = predicate.NewIndex(d.req.Result.Source)
	}
	ctx.Index = d.index
	return ctx
}

// finish truncates, renders the explanation list, and snapshots the
// carry state for a later DebugAdvance.
func (d *debugRun) finish(scored []ranker.Scored, rstate *ranker.RankerState, start time.Time) {
	out, opt := d.out, d.opt
	if len(scored) > opt.MaxExplanations {
		scored = scored[:opt.MaxExplanations]
	}
	for _, s := range scored {
		e := Explanation{Scored: s}
		if i := strings.LastIndexByte(s.Origin, ':'); i >= 0 {
			e.Candidate = s.Origin[i+1:]
		} else {
			e.Candidate = s.Origin
		}
		out.Explanations = append(out.Explanations, e)
	}
	for _, s := range scored {
		if s.Provenance == "carried" {
			out.Plan.Carried++
		} else {
			out.Plan.Fresh++
		}
	}
	out.Timings["rank"] = time.Since(start)
	out.state = &debugState{
		src:       d.req.Result.Source,
		stmtKey:   d.req.Result.Stmt.String(),
		ord:       d.ord,
		metricKey: metricKey(d.req.Metric),
		opt:       opt,
		scorer:    d.an.Scorer,
		rstate:    rstate,
		index:     d.index,
	}
	out.state.suspectKey = suspectKeyOf(d.req.Result, d.req.Suspect)
	out.state.examplesKey = rowsKey(d.req.Examples)
}

// Debug runs the ranked provenance pipeline.
func Debug(req DebugRequest) (*DebugResult, error) {
	opt := req.Opt
	opt.defaults()
	ord, err := resolveDebug(req)
	if err != nil {
		return nil, err
	}

	out := &DebugResult{Timings: make(map[string]time.Duration), Plan: DebugPlan{Mode: "full"}}
	d := &debugRun{req: req, opt: opt, ord: ord, out: out}

	// --- Preprocessor: lineage + leave-one-out influence. ---
	start := time.Now()
	an, err := influence.RankCtx(req.ctx(), req.Result, req.Suspect, ord, req.Metric, influence.Options{MaxTuples: opt.MaxLOOTuples})
	if err != nil {
		return nil, err
	}
	out.Timings["preprocess"] = time.Since(start)
	if err := d.preprocess(an); err != nil {
		return nil, err
	}
	if err := d.checkCtx(); err != nil {
		return nil, err
	}
	if err := d.featurize(); err != nil {
		return nil, err
	}
	d.cleanExamples()
	if err := d.checkCtx(); err != nil {
		return nil, err
	}
	rcands := d.enumerate()
	if err := d.checkCtx(); err != nil {
		return nil, err
	}

	start = time.Now()
	scored, rstate, err := ranker.RankAllCarry(rcands, d.context())
	if err != nil {
		return nil, err
	}
	d.finish(scored, rstate, start)
	return out, nil
}

// DebugAdvance picks a Debug analysis up after the source table grew:
// req.Result must be (a version of) the result prev was computed over,
// advanced across one or more appended batches (exec.Advance). The
// carried columnar state — per-group lineage bitsets, the flat argument
// view, clause masks, the scored candidate set — extends by the
// appended suffix instead of rebuilding, so a monitoring loop's
// re-Debug costs O(batch + lineage + candidates) rather than
// O(table × candidates).
//
// The carry/re-expand state machine (recorded in DebugResult.Plan):
// carried candidates are rescored exactly against the advanced state;
// when the largest score movement stays within Options.DriftThreshold
// the carried ranking stands ("carried"), otherwise the learners re-run
// over the advanced state ("reexpanded" — identical, stage for stage,
// to what a from-scratch Debug would compute). Conditions the advance
// cannot express at all — no carried state, a changed statement,
// metric, or aggregate, a non-advanceable aggregate state — fall back
// to the full pipeline with Plan.Fallback saying why. DebugAdvance with
// a nil prev is exactly Debug.
func DebugAdvance(prev *DebugResult, req DebugRequest) (*DebugResult, error) {
	opt := req.Opt
	opt.defaults()
	ord, err := resolveDebug(req)
	if err != nil {
		return nil, err
	}
	fall := func(reason string) (*DebugResult, error) {
		out, err := Debug(req)
		if err != nil {
			return nil, err
		}
		out.Plan.Fallback = reason
		return out, nil
	}
	if prev == nil || prev.state == nil {
		return fall("no carried analysis")
	}
	st := prev.state
	res := req.Result
	switch {
	case st.scorer == nil:
		return fall("previous analysis has no columnar scorer")
	case res.Stmt == nil || st.stmtKey != res.Stmt.String():
		return fall("statement changed")
	case !res.Source.SameFamily(st.src):
		return fall("source table changed")
	case res.Source.Version() < st.src.Version():
		// Version is the stream high-water mark, unchanged by retention;
		// fewer LOCAL rows with an advanced base is a retained window,
		// not a shrink.
		return fall("source table shrank")
	case res.Source.Base() < st.src.Base():
		return fall("source retention base regressed")
	case st.ord != ord:
		return fall("debugged aggregate changed")
	case st.metricKey != metricKey(req.Metric):
		return fall("error metric changed")
	}

	// --- Preprocessor, incremental: advance the carried scorer by the
	// appended suffix and re-rank influence through it. ---
	start := time.Now()
	sc, err := influence.AdvanceScorer(st.scorer, res, req.Suspect, ord, req.Metric)
	if err != nil {
		return fall("scorer not advanceable: " + err.Error())
	}
	an, err := influence.RankWithScorerCtx(req.ctx(), sc, influence.Options{MaxTuples: opt.MaxLOOTuples})
	if err != nil {
		return nil, err
	}

	out := &DebugResult{Timings: make(map[string]time.Duration), Plan: DebugPlan{Incremental: true}}
	d := &debugRun{req: req, opt: opt, ord: ord, out: out}
	// Carry the clause-mask index: rescoring a carried candidate then
	// only decodes the appended rows into its masks. Past the size cap
	// (dead data-dependent thresholds from many re-expansions) the
	// chain starts a fresh index instead.
	if st.index != nil && st.index.NumClauses() <= maxCarriedClauseMasks {
		st.index.SyncRows(res.Source)
		d.index = st.index
	}
	out.Timings["preprocess"] = time.Since(start)
	if err := d.preprocess(an); err != nil {
		return nil, err
	}
	if err := d.checkCtx(); err != nil {
		return nil, err
	}

	// Carry is only meaningful for the SAME question: the carried
	// candidates were learned from the previous suspect/example
	// selection's lineage, so a changed selection re-expands (rescoring
	// alone could silently miss selection-specific predicates even when
	// the carried ones drift little). Same for a changed pipeline
	// configuration, and there must be candidates to rescore. A moved
	// retention base rebases every row id the fingerprints are written
	// in, so the carried ranking never stands across a horizon: the
	// scorer/result caches rebase (word-shift) but the ranking re-expands,
	// with the reason recorded.
	drop := res.Source.Base() - st.src.Base()
	if drop > 0 {
		out.Plan.Fallback = "retention: row ids rebased, carried ranking re-expands"
	}
	carry := drop == 0 && st.rstate.Len() > 0 && optionsCompatible(st.opt, opt) &&
		st.suspectKey == suspectKeyOf(res, req.Suspect) &&
		st.examplesKey == rowsKey(req.Examples)

	// The feature space is needed for example cleaning and for the
	// learners; a carried pass without user examples skips it.
	needSpace := !carry || len(req.Examples) > 0
	if needSpace {
		if err := d.featurize(); err != nil {
			return nil, err
		}
	}
	d.cleanExamples()
	ctx := d.context()

	var scored []ranker.Scored
	var rstate *ranker.RankerState
	start = time.Now()
	if carry {
		s2, ns, drift, err := st.rstate.Rescore(ctx)
		if err != nil {
			// Cancellation mid-rescore: st.rstate is untouched (Rescore
			// works on copies), so prev carries forward for a retry.
			return nil, err
		}
		out.Plan.Drift = drift
		if opt.DriftThreshold >= 0 && drift <= opt.DriftThreshold {
			scored, rstate = s2, ns
			out.Plan.Mode = "carried"
		}
	}
	if scored == nil {
		// Re-expand: the learners re-run over the advanced state — the
		// same stages, in the same order, as a from-scratch Debug.
		if d.sp == nil {
			if err := d.featurize(); err != nil {
				return nil, err
			}
		}
		if err := d.checkCtx(); err != nil {
			return nil, err
		}
		rcands := d.enumerate()
		if err := d.checkCtx(); err != nil {
			return nil, err
		}
		start = time.Now()
		var err error
		scored, rstate, err = ranker.RankAllCarry(rcands, ctx)
		if err != nil {
			return nil, err
		}
		out.Plan.Mode = "reexpanded"
	}
	d.finish(scored, rstate, start)
	return out, nil
}

// optionsCompatible reports whether two option sets configure the same
// pipeline — a changed configuration forces re-expansion so carried
// rankings never mix regimes. Compared textually: Options is a flat
// bag of scalars, slices and learner sub-options with no reference
// cycles, so the %+v rendering is a faithful identity.
func optionsCompatible(a, b Options) bool {
	return fmt.Sprintf("%+v", a) == fmt.Sprintf("%+v", b)
}

// aggColumns returns the source columns referenced by the ord'th
// aggregate's argument.
func aggColumns(res *exec.Result, ord int) []string {
	items := res.Stmt.Items
	aggSeen := 0
	for i := range items {
		if !items[i].IsAgg() {
			continue
		}
		if aggSeen == ord {
			if items[i].Agg.Arg == nil {
				return nil
			}
			return items[i].Agg.Arg.Columns(nil)
		}
		aggSeen++
	}
	return nil
}

// CleanAndRequery re-runs the result's statement with the predicate's
// tuples removed (WHERE ... AND NOT (pred)) — the "click a predicate"
// action. The returned result carries fresh provenance, so the user can
// immediately debug the cleaned view again.
func CleanAndRequery(res *exec.Result, pred predicate.Predicate) (*exec.Result, error) {
	stmt := res.Stmt.Clone()
	stmt.Where = expr.And(stmt.Where, pred.NegationExpr())
	return exec.RunOn(res.Source, stmt)
}

// CleanedSQL renders the SQL the dashboard shows after a predicate is
// applied.
func CleanedSQL(stmt *sqlparse.SelectStmt, pred predicate.Predicate) string {
	s := stmt.Clone()
	s.Where = expr.And(s.Where, pred.NegationExpr())
	return s.String()
}

// ---------------------------------------------------------------------
// Selection helpers (the programmatic stand-ins for the dashboard's
// click-and-drag interactions)

// SuspectWhere returns the output rows whose value in the named result
// column satisfies keep. It is how examples select S programmatically.
func SuspectWhere(res *exec.Result, col string, keep func(v engine.Value) bool) ([]int, error) {
	ci := res.Table.Schema().ColIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("core: result has no column %q (have %s)", col, res.Table.Schema())
	}
	var out []int
	for r := 0; r < res.Table.NumRows(); r++ {
		if keep(res.Table.Value(r, ci)) {
			out = append(out, r)
		}
	}
	return out, nil
}

// ExamplesWhere selects D' from the lineage of the suspect groups: the
// source rows satisfying the SQL condition cond (e.g.
// "temperature > 100"). This mirrors zooming into the raw tuples and
// highlighting outliers.
func ExamplesWhere(res *exec.Result, suspect []int, cond string) ([]int, error) {
	e, err := sqlparse.ParseExpr(cond)
	if err != nil {
		return nil, err
	}
	if err := e.Resolve(res.Source.Schema()); err != nil {
		return nil, err
	}
	var out []int
	row := make([]engine.Value, res.Source.NumCols())
	for _, r := range res.Lineage(suspect) {
		res.Source.RowInto(r, row)
		ok, err := expr.EvalBool(e, row)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------
// small set helpers

func union(a, b []int) []int {
	seen := make(map[int]bool, len(a)+len(b))
	var out []int
	for _, xs := range [][]int{a, b} {
		for _, x := range xs {
			if !seen[x] {
				seen[x] = true
				out = append(out, x)
			}
		}
	}
	sort.Ints(out)
	return out
}

func difference(a, b []int) []int {
	inB := make(map[int]bool, len(b))
	for _, x := range b {
		inB[x] = true
	}
	var out []int
	for _, x := range a {
		if !inB[x] {
			out = append(out, x)
		}
	}
	return out
}

func sameSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// sampleOutside returns up to want evenly spaced row ids in [0, n) not
// present in exclude.
func sampleOutside(n int, exclude map[int]bool, want int) []int {
	outside := n - len(exclude)
	if outside <= 0 || want <= 0 {
		return nil
	}
	if want > outside {
		want = outside
	}
	candidates := make([]int, 0, outside)
	for r := 0; r < n; r++ {
		if !exclude[r] {
			candidates = append(candidates, r)
		}
	}
	if want >= len(candidates) {
		return candidates
	}
	out := make([]int, 0, want)
	step := float64(len(candidates)) / float64(want)
	for i := 0; i < want; i++ {
		out = append(out, candidates[int(float64(i)*step)])
	}
	return out
}
