// Package core is DBWipes' primary contribution: the ranked provenance
// pipeline. Given an executed aggregate query, a set of suspicious
// output groups S, an error metric ε, and (optionally) user-highlighted
// example tuples D', Debug returns a ranked list of human-readable
// predicates describing the input tuples most responsible for the error
// — and CleanAndRequery applies a chosen predicate and re-runs the
// query, closing the paper's "clean as you query" interactive loop.
//
// The pipeline mirrors Figure 1 of the paper:
//
//	Preprocessor        → lineage F of S + leave-one-out influence (internal/influence)
//	Dataset Enumerator  → clean D' (internal/cleaner), extend via subgroup
//	                      discovery (internal/subgroup) into candidates Dᶜᵢ
//	Predicate Enumerator→ decision trees per candidate per splitting
//	                      criterion (internal/dtree), leaf paths → predicates
//	Predicate Ranker    → ε-improvement + separation accuracy − complexity
//	                      (internal/ranker)
package core

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cleaner"
	"repro/internal/dtree"
	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/feature"
	"repro/internal/influence"
	"repro/internal/predicate"
	"repro/internal/ranker"
	"repro/internal/sqlparse"
	"repro/internal/subgroup"
)

// Options tunes the pipeline. The zero value gives the defaults used in
// the demo.
type Options struct {
	// MaxLOOTuples caps leave-one-out analysis (0 = analyze all of F).
	MaxLOOTuples int
	// InfluenceQuantile selects the high-influence extension set: tuples
	// with at least this fraction of the top influence (default 0.5).
	InfluenceQuantile float64
	// CleanMethod is the D' consistency technique: "kmeans" (default),
	// "bayes", or "none".
	CleanMethod string
	// Subgroup tunes the CN2-SD search.
	Subgroup subgroup.Options
	// Criteria lists the decision-tree splitting strategies (default
	// gini, entropy, gain ratio — the paper's "m standard strategies").
	Criteria []dtree.Criterion
	// Tree tunes tree induction.
	Tree dtree.Options
	// ExcludeCols removes attributes from the explanation vocabulary.
	ExcludeCols []string
	// KeepAggColumn retains the aggregated column as an explanation
	// attribute. Off by default: "temperature > 100 explains high
	// temperatures" is circular.
	KeepAggColumn bool
	// MaxCandidates caps the candidate datasets from subgroup discovery
	// (default 4, plus the cleaned-D' and high-influence candidates).
	MaxCandidates int
	// MaxExplanations caps the returned ranking (default 10).
	MaxExplanations int
	// MaxLearnRows caps the population the learners (subgroup discovery,
	// decision trees) see; culpable tuples are always kept and the rest
	// is an evenly spaced sample (default 16000, 0 keeps everything).
	// Predicates are still *scored* against the full lineage, so the
	// reported ε-improvements are exact.
	MaxLearnRows int
	// Weights mixes the ranker's score terms.
	Weights ranker.Weights
	// DisablePrune turns off the ranker's greedy clause pruning
	// (ablation).
	DisablePrune bool
	// DisableMerge turns off the ranker's pairwise predicate merging
	// (ablation).
	DisableMerge bool
	// FeatureOpts overrides featurization (advanced).
	Feature feature.Options
}

func (o *Options) defaults() {
	if o.InfluenceQuantile <= 0 || o.InfluenceQuantile > 1 {
		o.InfluenceQuantile = 0.5
	}
	if o.CleanMethod == "" {
		o.CleanMethod = "kmeans"
	}
	if len(o.Criteria) == 0 {
		o.Criteria = []dtree.Criterion{dtree.Gini, dtree.Entropy, dtree.GainRatio}
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 4
	}
	if o.MaxExplanations <= 0 {
		o.MaxExplanations = 10
	}
	if o.MaxLearnRows == 0 {
		o.MaxLearnRows = 16000
	}
}

// DebugRequest is one provenance query: "why do these groups look
// wrong?".
type DebugRequest struct {
	// Result is the executed query (with provenance).
	Result *exec.Result
	// AggItem is the select-item index of the aggregate under scrutiny;
	// -1 means the first aggregate.
	AggItem int
	// Suspect lists the suspicious output rows S (indexes into
	// Result.Table).
	Suspect []int
	// Examples optionally lists suspicious input tuples D' (source row
	// ids). When empty, the high-influence set stands in for D'.
	Examples []int
	// Metric is the user's error function ε.
	Metric errmetric.Metric
	// Opt tunes the pipeline.
	Opt Options
}

// Explanation is one ranked predicate.
type Explanation struct {
	ranker.Scored
	// Candidate identifies which candidate dataset the predicate was
	// learned from (diagnostic).
	Candidate string
}

// DebugResult is the output of one Debug call.
type DebugResult struct {
	// Explanations is the ranked predicate list (best first).
	Explanations []Explanation
	// Eps is ε over the suspect groups before cleaning.
	Eps float64
	// F is the suspect groups' lineage (fine-grained provenance).
	F []int
	// DPrime is the cleaned example set actually used.
	DPrime []int
	// Influence is the preprocessor's analysis (top tuples first).
	Influence *influence.Analysis
	// Candidates counts the candidate datasets enumerated.
	Candidates int
	// Timings records per-stage wall time.
	Timings map[string]time.Duration
}

// Run parses and executes sql against db with provenance capture.
func Run(db *engine.DB, sql string) (*exec.Result, error) {
	return exec.RunSQL(db, sql)
}

// Debug runs the ranked provenance pipeline.
func Debug(req DebugRequest) (*DebugResult, error) {
	opt := req.Opt
	opt.defaults()
	res := req.Result
	if res == nil {
		return nil, fmt.Errorf("core: nil result")
	}
	if req.Metric == nil {
		return nil, fmt.Errorf("core: nil error metric")
	}
	if len(req.Suspect) == 0 {
		return nil, fmt.Errorf("core: no suspect groups selected")
	}
	aggOrds := res.AggOrdinals()
	if len(aggOrds) == 0 {
		return nil, fmt.Errorf("core: query has no aggregates to debug")
	}
	ord := 0
	if req.AggItem >= 0 {
		ord = res.AggOrdinalOf(req.AggItem)
		if ord < 0 {
			return nil, fmt.Errorf("core: select item %d is not an aggregate", req.AggItem)
		}
	}

	out := &DebugResult{Timings: make(map[string]time.Duration)}

	// --- Preprocessor: lineage + leave-one-out influence. ---
	start := time.Now()
	an, err := influence.Rank(res, req.Suspect, ord, req.Metric, influence.Options{MaxTuples: opt.MaxLOOTuples})
	if err != nil {
		return nil, err
	}
	out.Timings["preprocess"] = time.Since(start)
	out.Influence = an
	out.Eps = an.Eps
	out.F = an.F
	if len(an.F) == 0 {
		return nil, fmt.Errorf("core: suspect groups have empty lineage")
	}

	// --- Dataset Enumerator step 1: restrict D' to F, clean it. ---
	start = time.Now()
	inF := make(map[int]bool, len(an.F))
	for _, r := range an.F {
		inF[r] = true
	}
	var dprime []int
	for _, r := range req.Examples {
		if inF[r] {
			dprime = append(dprime, r)
		}
	}
	highInfluence := an.TopQuantileRows(opt.InfluenceQuantile)
	if len(dprime) == 0 {
		// No examples: the high-influence set stands in for D'.
		dprime = highInfluence
	}
	if len(dprime) == 0 {
		return nil, fmt.Errorf("core: no influential tuples found (ε=%g); nothing to explain", an.Eps)
	}

	// The learners need a negative class. F − D' supplies part of it
	// ("an approximate set of error-free input tuples", per the paper);
	// we additionally sample contrast tuples from outside F — rows of
	// non-suspect groups are error-free by construction — so that
	// predicates can describe F itself when an entire group is bad, and
	// so they generalize against the rest of the table.
	pop := an.F
	want := len(an.F)
	if want > 20000 {
		want = 20000
	}
	if want < 50 {
		want = 50
	}
	extras := sampleOutside(res.Source.NumRows(), inF, want)
	if len(extras) > 0 {
		pop = append(append([]int(nil), an.F...), extras...)
	}

	// Learners see a capped population: all culpable tuples plus an
	// evenly spaced sample of the rest. Scoring still runs on the full
	// lineage, so this only trades learner variance for speed.
	learnPop := pop
	if opt.MaxLearnRows > 0 && len(pop) > opt.MaxLearnRows {
		culpableSet := make(map[int]bool, len(dprime)+len(highInfluence))
		for _, r := range dprime {
			culpableSet[r] = true
		}
		for _, r := range highInfluence {
			culpableSet[r] = true
		}
		learnPop = make([]int, 0, opt.MaxLearnRows)
		capCulp := opt.MaxLearnRows * 3 / 4
		nCulp := 0
		for _, r := range pop {
			if culpableSet[r] && nCulp < capCulp {
				learnPop = append(learnPop, r)
				nCulp++
			}
		}
		rest := opt.MaxLearnRows - len(learnPop)
		others := make([]int, 0, len(pop)-nCulp)
		for _, r := range pop {
			if !culpableSet[r] {
				others = append(others, r)
			}
		}
		if rest >= len(others) {
			learnPop = append(learnPop, others...)
		} else {
			step := float64(len(others)) / float64(rest)
			for i := 0; i < rest; i++ {
				learnPop = append(learnPop, others[int(float64(i)*step)])
			}
		}
		sort.Ints(learnPop)
	}
	out.Timings["enumerate"] = time.Since(start)

	// --- Feature space over the learning population. ---
	start = time.Now()
	fopt := opt.Feature
	fopt.Rows = learnPop
	fopt.Exclude = append(append([]string(nil), fopt.Exclude...), opt.ExcludeCols...)
	if !opt.KeepAggColumn {
		fopt.Exclude = append(fopt.Exclude, aggColumns(res, ord)...)
	}
	sp := feature.NewSpace(res.Source, fopt)
	if len(sp.Attrs) == 0 {
		return nil, fmt.Errorf("core: no usable attributes remain after exclusions")
	}
	out.Timings["featurize"] = time.Since(start)

	// --- Dataset Enumerator step 2: clean D', enumerate candidates. ---
	start = time.Now()
	if len(req.Examples) > 0 && len(dprime) > 0 {
		background := difference(an.F, dprime)
		dprime = cleaner.Clean(sp, dprime, cleaner.Options{
			Method:     opt.CleanMethod,
			Background: background,
		})
	}
	out.DPrime = dprime

	type cand struct {
		name string
		rows map[int]bool
	}
	var candidates []cand
	addCandidate := func(name string, rows []int) {
		if len(rows) == 0 || len(rows) == len(learnPop) {
			return
		}
		set := make(map[int]bool, len(rows))
		for _, r := range rows {
			set[r] = true
		}
		for _, c := range candidates {
			if sameSet(c.rows, set) {
				return
			}
		}
		candidates = append(candidates, cand{name, set})
	}
	addCandidate("dprime", dprime)
	if len(highInfluence) > 0 {
		addCandidate("dprime+influence", union(dprime, highInfluence))
	}
	if len(extras) > 0 {
		// With external contrast available, the full lineage is itself a
		// describable candidate ("everything in these groups is bad").
		addCandidate("lineage", an.F)
	}

	// Subgroup discovery extends D' into self-consistent regions of the
	// population.
	labels := make([]bool, len(learnPop))
	inDPrime := make(map[int]bool, len(dprime))
	for _, r := range dprime {
		inDPrime[r] = true
	}
	for i, r := range learnPop {
		labels[i] = inDPrime[r]
	}
	sgRules := subgroup.Discover(sp, learnPop, labels, opt.Subgroup)
	for i, rule := range sgRules {
		if i >= opt.MaxCandidates {
			break
		}
		addCandidate(fmt.Sprintf("subgroup%d", i), rule.Covered)
	}
	out.Candidates = len(candidates)
	out.Timings["enumerate"] += time.Since(start)

	// --- Predicate Enumerator: trees per candidate per criterion. ---
	// Each (candidate, criterion) training run is independent, so they
	// run concurrently; results are collected by slot index to keep the
	// output order — and therefore the final ranking — deterministic.
	start = time.Now()
	type job struct {
		cand cand
		crit dtree.Criterion
	}
	var jobs []job
	for _, c := range candidates {
		for _, crit := range opt.Criteria {
			jobs = append(jobs, job{cand: c, crit: crit})
		}
	}
	perJob := make([][]ranker.Candidate, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for ji := range jobs {
		wg.Add(1)
		go func(ji int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			j := jobs[ji]
			candLabels := make([]bool, len(learnPop))
			for i, r := range learnPop {
				candLabels[i] = j.cand.rows[r]
			}
			topt := opt.Tree
			topt.Criterion = j.crit
			tree, err := dtree.Train(sp, learnPop, candLabels, nil, topt)
			if err != nil {
				return
			}
			for _, leaf := range tree.PositivePaths() {
				if leaf.Pred.IsTrue() {
					continue
				}
				perJob[ji] = append(perJob[ji], ranker.Candidate{
					Pred:   leaf.Pred,
					Origin: fmt.Sprintf("tree:%s:%s", j.crit, j.cand.name),
					Target: j.cand.rows,
				})
			}
		}(ji)
	}
	wg.Wait()
	var rcands []ranker.Candidate
	for _, rc := range perJob {
		rcands = append(rcands, rc...)
	}
	// Subgroup rules are themselves compact predicates; rank them too.
	for i, rule := range sgRules {
		p := rule.Predicate(sp)
		if p.IsTrue() {
			continue
		}
		target := make(map[int]bool, len(rule.Covered))
		for _, r := range rule.Covered {
			target[r] = true
		}
		rcands = append(rcands, ranker.Candidate{
			Pred:   p,
			Origin: fmt.Sprintf("subgroup%d", i),
			Target: target,
		})
	}
	out.Timings["predicates"] = time.Since(start)

	// --- Predicate Ranker. ---
	start = time.Now()
	// Culpability: tuples in the user's cleaned D' or the high-influence
	// set. The ranker's Excess term uses it to prefer surgical
	// predicates over "delete the whole group" ones.
	culpable := make(map[int]bool, len(dprime)+len(highInfluence))
	for _, r := range dprime {
		culpable[r] = true
	}
	for _, r := range highInfluence {
		culpable[r] = true
	}
	ctx := &ranker.Context{
		Res: res, Suspect: req.Suspect, Ord: ord,
		Metric: req.Metric, F: an.F, Population: learnPop, Culpable: culpable,
		Eps: an.Eps, Weights: opt.Weights,
		DisablePrune: opt.DisablePrune, DisableMerge: opt.DisableMerge,
	}
	// Columnar fast path: reuse the Scorer the preprocessor already
	// built (lineage bitsets + flat argument column) for every candidate
	// scoring in this Debug call; RankAll builds the predicate Index and
	// falls back to the boxed path internally when the Scorer is nil
	// (e.g. DISTINCT aggregates).
	ctx.Scorer = an.Scorer
	scored := ranker.RankAll(rcands, ctx)
	if len(scored) > opt.MaxExplanations {
		scored = scored[:opt.MaxExplanations]
	}
	for _, s := range scored {
		e := Explanation{Scored: s}
		if i := strings.LastIndexByte(s.Origin, ':'); i >= 0 {
			e.Candidate = s.Origin[i+1:]
		} else {
			e.Candidate = s.Origin
		}
		out.Explanations = append(out.Explanations, e)
	}
	out.Timings["rank"] = time.Since(start)
	return out, nil
}

// aggColumns returns the source columns referenced by the ord'th
// aggregate's argument.
func aggColumns(res *exec.Result, ord int) []string {
	items := res.Stmt.Items
	aggSeen := 0
	for i := range items {
		if !items[i].IsAgg() {
			continue
		}
		if aggSeen == ord {
			if items[i].Agg.Arg == nil {
				return nil
			}
			return items[i].Agg.Arg.Columns(nil)
		}
		aggSeen++
	}
	return nil
}

// CleanAndRequery re-runs the result's statement with the predicate's
// tuples removed (WHERE ... AND NOT (pred)) — the "click a predicate"
// action. The returned result carries fresh provenance, so the user can
// immediately debug the cleaned view again.
func CleanAndRequery(res *exec.Result, pred predicate.Predicate) (*exec.Result, error) {
	stmt := res.Stmt.Clone()
	stmt.Where = expr.And(stmt.Where, pred.NegationExpr())
	return exec.RunOn(res.Source, stmt)
}

// CleanedSQL renders the SQL the dashboard shows after a predicate is
// applied.
func CleanedSQL(stmt *sqlparse.SelectStmt, pred predicate.Predicate) string {
	s := stmt.Clone()
	s.Where = expr.And(s.Where, pred.NegationExpr())
	return s.String()
}

// ---------------------------------------------------------------------
// Selection helpers (the programmatic stand-ins for the dashboard's
// click-and-drag interactions)

// SuspectWhere returns the output rows whose value in the named result
// column satisfies keep. It is how examples select S programmatically.
func SuspectWhere(res *exec.Result, col string, keep func(v engine.Value) bool) ([]int, error) {
	ci := res.Table.Schema().ColIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("core: result has no column %q (have %s)", col, res.Table.Schema())
	}
	var out []int
	for r := 0; r < res.Table.NumRows(); r++ {
		if keep(res.Table.Value(r, ci)) {
			out = append(out, r)
		}
	}
	return out, nil
}

// ExamplesWhere selects D' from the lineage of the suspect groups: the
// source rows satisfying the SQL condition cond (e.g.
// "temperature > 100"). This mirrors zooming into the raw tuples and
// highlighting outliers.
func ExamplesWhere(res *exec.Result, suspect []int, cond string) ([]int, error) {
	e, err := sqlparse.ParseExpr(cond)
	if err != nil {
		return nil, err
	}
	if err := e.Resolve(res.Source.Schema()); err != nil {
		return nil, err
	}
	var out []int
	row := make([]engine.Value, res.Source.NumCols())
	for _, r := range res.Lineage(suspect) {
		res.Source.RowInto(r, row)
		ok, err := expr.EvalBool(e, row)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------
// small set helpers

func union(a, b []int) []int {
	seen := make(map[int]bool, len(a)+len(b))
	var out []int
	for _, xs := range [][]int{a, b} {
		for _, x := range xs {
			if !seen[x] {
				seen[x] = true
				out = append(out, x)
			}
		}
	}
	sort.Ints(out)
	return out
}

func difference(a, b []int) []int {
	inB := make(map[int]bool, len(b))
	for _, x := range b {
		inB[x] = true
	}
	var out []int
	for _, x := range a {
		if !inB[x] {
			out = append(out, x)
		}
	}
	return out
}

func sameSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// sampleOutside returns up to want evenly spaced row ids in [0, n) not
// present in exclude.
func sampleOutside(n int, exclude map[int]bool, want int) []int {
	outside := n - len(exclude)
	if outside <= 0 || want <= 0 {
		return nil
	}
	if want > outside {
		want = outside
	}
	candidates := make([]int, 0, outside)
	for r := 0; r < n; r++ {
		if !exclude[r] {
			candidates = append(candidates, r)
		}
	}
	if want >= len(candidates) {
		return candidates
	}
	out := make([]int, 0, want)
	step := float64(len(candidates)) / float64(want)
	for i := 0; i < want; i++ {
		out = append(out, candidates[int(float64(i)*step)])
	}
	return out
}
