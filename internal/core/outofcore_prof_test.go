package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
	"repro/internal/sqlparse"
	"repro/internal/store"
)

// TestDebugOutOfCore runs the full Debug pipeline against a table
// served out-of-core through a buffer pool far smaller than one
// decoded chunk — the configuration where any per-row transient pin in
// a hot loop degrades to re-decoding the chunk per row. The wall-time
// bound is generous (resident Debug on this table is ~100ms); it
// exists to catch quadratic regressions, which overshoot it by minutes.
func TestDebugOutOfCore(t *testing.T) {
	dir := t.TempDir()
	quiet := func(string, ...any) {}
	schema := engine.NewSchema("ts", engine.TTime, "sensor", engine.TInt,
		"temperature", engine.TFloat, "voltage", engine.TFloat)

	st, err := store.Open(dir, store.Options{SyncEvery: 256, Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	// One full 64Ki-row default segment plus a tail: the sealed chunk
	// (~0.5 MB/column decoded) dwarfs the 64 KiB pool below.
	const nrows = 80_000
	if err := st.CreateTable("readings", schema, engine.DefaultSegmentBits); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	for lo := 0; lo < nrows; lo += 4096 {
		rows := make([][]engine.Value, 4096)
		for i := range rows {
			r := lo + i
			temp := 60 + float64(r%97)*0.1
			if r%50 == 3 && r > nrows/2 { // hot sensor 3 in the back half
				temp = 120 + float64(r%13)
			}
			rows[i] = []engine.Value{
				engine.NewTimeUnix(base.Add(time.Duration(r) * time.Second).Unix()),
				engine.NewInt(int64(r % 50)),
				engine.NewFloat(temp),
				engine.NewFloat(2.5 + float64(r%11)*0.01),
			}
		}
		if _, err := st.Append("readings", rows); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st, err = store.Open(dir, store.Options{SyncEvery: 256, Logf: quiet, MaxResidentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tbl, err := st.Eng().Table("readings")
	if err != nil {
		t.Fatal(err)
	}

	stmt, err := sqlparse.Parse(
		"SELECT bucket(epoch(ts), 1800) AS w30, avg(temperature) AS avg_temp, stddev(temperature) AS std_temp " +
			"FROM readings GROUP BY bucket(epoch(ts), 1800) ORDER BY w30")
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.RunOn(tbl, stmt)
	if err != nil {
		t.Fatal(err)
	}
	var suspect []int
	for i := 0; i < res.Table.NumRows(); i++ {
		if v := res.Table.Value(i, 2); !v.IsNull() && v.Float() > 5 {
			suspect = append(suspect, i)
		}
	}
	if len(suspect) == 0 {
		t.Fatal("fixture produced no suspect windows")
	}

	metric, err := errmetric.New("toohigh", map[string]float64{"c": 65})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	dr, err := core.Debug(core.DebugRequest{
		Result:  res,
		AggItem: -1,
		Suspect: suspect,
		Metric:  metric,
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if len(dr.Explanations) == 0 {
		t.Fatal("no explanations ranked")
	}
	t.Logf("debug: %d explanations in %v (top: %s)", len(dr.Explanations), elapsed, dr.Explanations[0].Pred)
	if elapsed > 30*time.Second {
		t.Fatalf("out-of-core Debug took %v — a per-row transient pin is re-decoding chunks", elapsed)
	}
	if st.PoolPinned() != 0 {
		t.Fatalf("%d chunks pinned after Debug", st.PoolPinned())
	}
}
