package cleaner

import (
	"math"

	"repro/internal/feature"
)

// NaiveBayes is a two-class naive Bayes classifier over a feature.Space:
// Gaussian likelihoods for numeric attributes, Laplace-smoothed
// frequency tables for categorical attributes. It is used two ways:
// (a) to clean D' (train on D' vs a background sample, drop D' members
// the model itself rejects), and (b) as a quick consistency check in
// tests.
type NaiveBayes struct {
	space *feature.Space
	prior [2]float64 // log priors
	// numeric[attr][class] = (mean, std)
	numMean, numStd map[int][2]float64
	// categorical[attr][class][valueKey] = log P(value | class)
	catLog map[int][2]map[string]float64
	catDef [2]float64 // default log-prob for unseen categories
	// attrs actually used (index into space.Attrs)
	attrs []int
}

// TrainNaiveBayes fits the classifier. pos and neg are row ids into the
// space's table; both must be non-empty.
func TrainNaiveBayes(sp *feature.Space, pos, neg []int) *NaiveBayes {
	nb := &NaiveBayes{
		space:   sp,
		numMean: make(map[int][2]float64),
		numStd:  make(map[int][2]float64),
		catLog:  make(map[int][2]map[string]float64),
	}
	total := float64(len(pos) + len(neg))
	nb.prior[0] = math.Log(float64(len(neg)) / total)
	nb.prior[1] = math.Log(float64(len(pos)) / total)

	classRows := [2][]int{neg, pos}
	for ai := range sp.Attrs {
		attr := &sp.Attrs[ai]
		nb.attrs = append(nb.attrs, ai)
		switch attr.Kind {
		case feature.Numeric:
			var mean, std [2]float64
			for cls := 0; cls < 2; cls++ {
				var sum, sumsq float64
				var n int
				for _, r := range classRows[cls] {
					v := sp.Table.Value(r, attr.Col)
					if v.IsNull() {
						continue
					}
					f := v.Float()
					if math.IsNaN(f) {
						continue
					}
					sum += f
					sumsq += f * f
					n++
				}
				if n == 0 {
					mean[cls], std[cls] = 0, 1
					continue
				}
				m := sum / float64(n)
				variance := sumsq/float64(n) - m*m
				if variance < 1e-9 {
					variance = 1e-9
				}
				mean[cls], std[cls] = m, math.Sqrt(variance)
			}
			nb.numMean[ai] = mean
			nb.numStd[ai] = std
		case feature.Categorical:
			var tables [2]map[string]float64
			for cls := 0; cls < 2; cls++ {
				counts := make(map[string]int)
				var n int
				for _, r := range classRows[cls] {
					v := sp.Table.Value(r, attr.Col)
					if v.IsNull() {
						continue
					}
					counts[v.Key()]++
					n++
				}
				// Laplace smoothing over the attribute's known values.
				vocab := len(attr.Values) + 1
				table := make(map[string]float64, len(counts))
				den := float64(n + vocab)
				for k, c := range counts {
					table[k] = math.Log(float64(c+1) / den)
				}
				tables[cls] = table
			}
			nb.catLog[ai] = tables
		}
	}
	// Unseen categorical values get a small smoothed probability.
	nb.catDef[0] = math.Log(1e-3)
	nb.catDef[1] = math.Log(1e-3)
	return nb
}

// LogOdds returns log P(pos|row) − log P(neg|row) up to a constant.
func (nb *NaiveBayes) LogOdds(row int) float64 {
	ll := [2]float64{nb.prior[0], nb.prior[1]}
	for _, ai := range nb.attrs {
		attr := &nb.space.Attrs[ai]
		v := nb.space.Table.Value(row, attr.Col)
		if v.IsNull() {
			continue
		}
		switch attr.Kind {
		case feature.Numeric:
			f := v.Float()
			if math.IsNaN(f) {
				continue
			}
			mean, std := nb.numMean[ai], nb.numStd[ai]
			for cls := 0; cls < 2; cls++ {
				z := (f - mean[cls]) / std[cls]
				ll[cls] += -0.5*z*z - math.Log(std[cls])
			}
		case feature.Categorical:
			k := v.Key()
			tables := nb.catLog[ai]
			for cls := 0; cls < 2; cls++ {
				if lp, ok := tables[cls][k]; ok {
					ll[cls] += lp
				} else {
					ll[cls] += nb.catDef[cls]
				}
			}
		}
	}
	return ll[1] - ll[0]
}

// Predict reports whether the row is classified positive.
func (nb *NaiveBayes) Predict(row int) bool { return nb.LogOdds(row) > 0 }

// ---------------------------------------------------------------------

// Options tunes Clean.
type Options struct {
	// Method selects the consistency technique: "kmeans" (default),
	// "bayes", or "none".
	Method string
	// K is the cluster count for kmeans (default 2).
	K int
	// MaxIters bounds Lloyd iterations (default 50).
	MaxIters int
	// Seed makes cleaning deterministic (default 1).
	Seed int64
	// MinKeepFrac refuses to discard more than (1−MinKeepFrac) of D'
	// (default 0.5): the user's selection is evidence, not noise.
	MinKeepFrac float64
	// Background are rows to contrast against for the bayes method
	// (typically F − D'); required for "bayes".
	Background []int
}

func (o *Options) defaults() {
	if o.Method == "" {
		o.Method = "kmeans"
	}
	if o.K <= 0 {
		o.K = 2
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 50
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MinKeepFrac <= 0 {
		o.MinKeepFrac = 0.5
	}
}

// Clean returns the self-consistent subset of dprime (row ids into the
// space's table), per the configured method.
//
// kmeans: cluster D' in standardized numeric space with k clusters and
// keep the largest cluster (with every cluster whose centroid is close
// to it merged in). bayes: train NB on D' vs Background and keep the D'
// rows the model accepts. Falls back to returning D' unchanged whenever
// the technique would discard too much.
func Clean(sp *feature.Space, dprime []int, opt Options) []int {
	opt.defaults()
	if len(dprime) < 4 || opt.Method == "none" {
		return append([]int(nil), dprime...)
	}
	switch opt.Method {
	case "bayes":
		if len(opt.Background) == 0 {
			return append([]int(nil), dprime...)
		}
		nb := TrainNaiveBayes(sp, dprime, opt.Background)
		kept := make([]int, 0, len(dprime))
		for _, r := range dprime {
			if nb.Predict(r) {
				kept = append(kept, r)
			}
		}
		if float64(len(kept)) < opt.MinKeepFrac*float64(len(dprime)) {
			return append([]int(nil), dprime...)
		}
		return kept
	default: // kmeans
		if sp.Dim() == 0 {
			return append([]int(nil), dprime...)
		}
		points := make([][]float64, len(dprime))
		for i, r := range dprime {
			points[i] = sp.Vector(r, nil)
		}
		km := KMeans(points, opt.K, opt.MaxIters, opt.Seed)
		if len(km.Sizes) == 0 {
			return append([]int(nil), dprime...)
		}
		// Dominant cluster.
		best := 0
		for c, n := range km.Sizes {
			if n > km.Sizes[best] {
				best = c
			}
		}
		// Merge clusters whose centroid is within 1.5x the dominant
		// cluster's RMS radius — k=2 on clean data should not split it.
		var radius float64
		for i, p := range points {
			if km.Assign[i] == best {
				radius += sqDist(p, km.Centroids[best])
			}
		}
		radius = math.Sqrt(radius / math.Max(1, float64(km.Sizes[best])))
		keepCluster := make([]bool, len(km.Centroids))
		keepCluster[best] = true
		for c := range km.Centroids {
			if c != best && km.Sizes[c] > 0 &&
				math.Sqrt(sqDist(km.Centroids[c], km.Centroids[best])) <= 1.5*radius {
				keepCluster[c] = true
			}
		}
		kept := make([]int, 0, len(dprime))
		for i, r := range dprime {
			if keepCluster[km.Assign[i]] {
				kept = append(kept, r)
			}
		}
		if float64(len(kept)) < opt.MinKeepFrac*float64(len(dprime)) {
			return append([]int(nil), dprime...)
		}
		return kept
	}
}
