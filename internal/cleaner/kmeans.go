// Package cleaner implements the Dataset Enumerator's first duty: given
// the user's hand-selected example tuples D', identify a *self-consistent
// subset* by discarding stragglers the user probably swept up by
// accident. The paper says: "We are currently experimenting with
// clustering (e.g., K-means) and classification based techniques that
// train classifiers on D' and remove elements that are not consistent
// with the classifier." Both techniques are implemented here.
package cleaner

import (
	"math"
	"math/rand"
)

// KMeansResult is the output of Lloyd's algorithm.
type KMeansResult struct {
	// Assign maps each input point to its cluster.
	Assign []int
	// Centroids are the final cluster centers.
	Centroids [][]float64
	// Sizes counts points per cluster.
	Sizes []int
	// Inertia is the total squared distance to assigned centroids.
	Inertia float64
	// Iters is the number of Lloyd iterations run.
	Iters int
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// KMeans clusters points into k clusters using k-means++ seeding and
// Lloyd iterations (at most maxIters, stopping early on convergence).
// It is deterministic for a given seed. Fewer distinct points than k
// yields fewer effective clusters (empty clusters are dropped from
// Sizes but keep their ids).
func KMeans(points [][]float64, k, maxIters int, seed int64) *KMeansResult {
	n := len(points)
	if n == 0 || k <= 0 {
		return &KMeansResult{}
	}
	if k > n {
		k = n
	}
	dim := len(points[0])
	rng := rand.New(rand.NewSource(seed))

	// k-means++ seeding.
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, append([]float64(nil), points[first]...))
	d2 := make([]float64, n)
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with a centroid.
			break
		}
		target := rng.Float64() * total
		var cum float64
		pick := n - 1
		for i, d := range d2 {
			cum += d
			if cum >= target {
				pick = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), points[pick]...))
	}
	k = len(centroids)

	assign := make([]int, n)
	sizes := make([]int, k)
	sums := make([][]float64, k)
	for i := range sums {
		sums[i] = make([]float64, dim)
	}

	res := &KMeansResult{}
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for i := range sizes {
			sizes[i] = 0
			for d := range sums[i] {
				sums[i][d] = 0
			}
		}
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := sqDist(p, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best || iter == 0 {
				changed = changed || assign[i] != best || iter == 0
				assign[i] = best
			}
			sizes[best]++
			for d := range p {
				sums[best][d] += p[d]
			}
		}
		for c := range centroids {
			if sizes[c] == 0 {
				continue
			}
			for d := 0; d < dim; d++ {
				centroids[c][d] = sums[c][d] / float64(sizes[c])
			}
		}
		res.Iters = iter + 1
		if !changed && iter > 0 {
			break
		}
	}

	var inertia float64
	for i, p := range points {
		inertia += sqDist(p, centroids[assign[i]])
	}
	res.Assign = assign
	res.Centroids = centroids
	res.Sizes = sizes
	res.Inertia = inertia
	return res
}
