package cleaner

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/feature"
)

func TestKMeansSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var points [][]float64
	for i := 0; i < 50; i++ {
		points = append(points, []float64{rng.NormFloat64() * 0.1, rng.NormFloat64() * 0.1})
	}
	for i := 0; i < 50; i++ {
		points = append(points, []float64{10 + rng.NormFloat64()*0.1, 10 + rng.NormFloat64()*0.1})
	}
	km := KMeans(points, 2, 50, 42)
	if len(km.Sizes) != 2 {
		t.Fatalf("clusters: %v", km.Sizes)
	}
	if km.Sizes[0] != 50 || km.Sizes[1] != 50 {
		t.Errorf("sizes: %v", km.Sizes)
	}
	// All of the first 50 in one cluster, all of the second 50 in the other.
	c0 := km.Assign[0]
	for i := 0; i < 50; i++ {
		if km.Assign[i] != c0 {
			t.Fatalf("point %d in cluster %d", i, km.Assign[i])
		}
	}
	for i := 50; i < 100; i++ {
		if km.Assign[i] == c0 {
			t.Fatalf("point %d mixed into cluster %d", i, km.Assign[i])
		}
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var points [][]float64
	for i := 0; i < 100; i++ {
		points = append(points, []float64{rng.Float64(), rng.Float64()})
	}
	a := KMeans(points, 3, 30, 7)
	b := KMeans(points, 3, 30, 7)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed, different assignment")
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if km := KMeans(nil, 3, 10, 1); len(km.Assign) != 0 {
		t.Error("empty input")
	}
	// Fewer points than k.
	km := KMeans([][]float64{{1}, {2}}, 5, 10, 1)
	if len(km.Centroids) > 2 {
		t.Errorf("k capped: %d centroids", len(km.Centroids))
	}
	// All identical points.
	same := [][]float64{{3, 3}, {3, 3}, {3, 3}}
	km = KMeans(same, 2, 10, 1)
	if km.Inertia != 0 {
		t.Errorf("identical points inertia: %v", km.Inertia)
	}
}

// cleanFixture: table whose rows 0..19 are tight (volt≈2.3, temp≈110)
// and rows 20..24 are scattered inliers (the user's mis-clicks).
func cleanFixture(t *testing.T) (*feature.Space, []int) {
	t.Helper()
	tbl := engine.MustNewTable("t", engine.NewSchema(
		"temp", engine.TFloat, "volt", engine.TFloat))
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		tbl.MustAppendRow(engine.NewFloat(110+rng.NormFloat64()), engine.NewFloat(2.3+rng.NormFloat64()*0.01))
	}
	for i := 0; i < 30; i++ {
		tbl.MustAppendRow(engine.NewFloat(68+rng.NormFloat64()), engine.NewFloat(2.65+rng.NormFloat64()*0.01))
	}
	sp := feature.NewSpace(tbl, feature.Options{})
	dprime := make([]int, 0, 25)
	for i := 0; i < 20; i++ {
		dprime = append(dprime, i)
	}
	// Five accidental inliers.
	for i := 20; i < 25; i++ {
		dprime = append(dprime, i)
	}
	return sp, dprime
}

func TestCleanKMeansDropsStragglers(t *testing.T) {
	sp, dprime := cleanFixture(t)
	kept := Clean(sp, dprime, Options{Method: "kmeans"})
	if len(kept) != 20 {
		t.Fatalf("kept %d of %d, want 20", len(kept), len(dprime))
	}
	for _, r := range kept {
		if r >= 20 {
			t.Errorf("straggler %d survived", r)
		}
	}
}

func TestCleanBayes(t *testing.T) {
	sp, dprime := cleanFixture(t)
	var background []int
	for i := 25; i < 50; i++ {
		background = append(background, i)
	}
	kept := Clean(sp, dprime, Options{Method: "bayes", Background: background})
	// Bayes should reject most accidental inliers (they look like
	// background).
	stragglers := 0
	for _, r := range kept {
		if r >= 20 {
			stragglers++
		}
	}
	if stragglers > 2 {
		t.Errorf("bayes kept %d stragglers", stragglers)
	}
	// Without background, bayes is a no-op.
	same := Clean(sp, dprime, Options{Method: "bayes"})
	if len(same) != len(dprime) {
		t.Error("bayes without background should be a no-op")
	}
}

func TestCleanNoneAndSmallInputs(t *testing.T) {
	sp, dprime := cleanFixture(t)
	if got := Clean(sp, dprime, Options{Method: "none"}); len(got) != len(dprime) {
		t.Error("method none should keep everything")
	}
	small := []int{1, 2, 3}
	if got := Clean(sp, small, Options{}); len(got) != 3 {
		t.Error("tiny D' should be kept whole")
	}
}

func TestCleanMinKeepGuard(t *testing.T) {
	// A D' that is a 50/50 mix: the guard must refuse to discard half.
	tbl := engine.MustNewTable("t", engine.NewSchema("x", engine.TFloat))
	for i := 0; i < 10; i++ {
		tbl.MustAppendRow(engine.NewFloat(0))
	}
	for i := 0; i < 10; i++ {
		tbl.MustAppendRow(engine.NewFloat(100))
	}
	sp := feature.NewSpace(tbl, feature.Options{})
	dprime := make([]int, 20)
	for i := range dprime {
		dprime[i] = i
	}
	kept := Clean(sp, dprime, Options{Method: "kmeans", MinKeepFrac: 0.75})
	if len(kept) != 20 {
		t.Errorf("guard failed: kept %d", len(kept))
	}
}

func TestNaiveBayesPredict(t *testing.T) {
	sp, _ := cleanFixture(t)
	var pos, neg []int
	for i := 0; i < 20; i++ {
		pos = append(pos, i)
	}
	for i := 20; i < 50; i++ {
		neg = append(neg, i)
	}
	nb := TrainNaiveBayes(sp, pos, neg)
	// A hot, low-voltage row is positive; a cool one negative.
	if !nb.Predict(0) {
		t.Error("anomalous row classified negative")
	}
	if nb.Predict(30) {
		t.Error("clean row classified positive")
	}
}
