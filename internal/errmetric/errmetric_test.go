package errmetric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDiff(t *testing.T) {
	m := Diff{C: 70}
	if got := m.Eval([]float64{65, 80, 120}); got != 50 {
		t.Errorf("diff: %v", got)
	}
	if got := m.Eval([]float64{60, 65}); got != 0 {
		t.Errorf("diff error-free: %v", got)
	}
	if m.Direction() != 1 {
		t.Error("diff direction")
	}
}

func TestTooHigh(t *testing.T) {
	m := TooHigh{C: 70}
	if got := m.Eval([]float64{65, 80, 120}); got != 60 {
		t.Errorf("toohigh: %v", got) // (80-70)+(120-70)
	}
	if got := m.Eval([]float64{70, 60}); got != 0 {
		t.Errorf("toohigh clean: %v", got)
	}
}

func TestTooLow(t *testing.T) {
	m := TooLow{C: 0}
	if got := m.Eval([]float64{-5, 3, -10}); got != 15 {
		t.Errorf("toolow: %v", got)
	}
	if m.Direction() != -1 {
		t.Error("toolow direction")
	}
}

func TestNotEqual(t *testing.T) {
	m := NotEqual{C: 10}
	if got := m.Eval([]float64{8, 12}); got != 4 {
		t.Errorf("notequal: %v", got)
	}
	if m.Direction() != 0 {
		t.Error("notequal direction")
	}
}

func TestZScore(t *testing.T) {
	m := ZScore{Mean: 0, Std: 1, K: 2}
	if got := m.Eval([]float64{0, 1, 3}); math.Abs(got-1) > 1e-9 {
		t.Errorf("zscore: %v", got) // only 3 exceeds k=2 by 1
	}
	zero := ZScore{Mean: 0, Std: 0, K: 2}
	if zero.Eval([]float64{100}) != 0 {
		t.Error("zero-std zscore should be 0")
	}
}

func TestNaNIgnored(t *testing.T) {
	m := TooHigh{C: 0}
	if got := m.Eval([]float64{math.NaN(), 5}); got != 5 {
		t.Errorf("NaN handling: %v", got)
	}
}

// Property: every metric is non-negative, and zero on empty input.
func TestMetricsNonNegative(t *testing.T) {
	metrics := []Metric{Diff{C: 3}, TooHigh{C: 3}, TooLow{C: 3}, NotEqual{C: 3}, ZScore{Mean: 0, Std: 2, K: 1}}
	f := func(raw []int8) bool {
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r)
		}
		for _, m := range metrics {
			if m.Eval(vals) < 0 {
				return false
			}
			if m.Eval(nil) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: removing the worst value never increases TooHigh.
func TestTooHighMonotone(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		vals := make([]float64, len(raw))
		worst := 0
		for i, r := range raw {
			vals[i] = float64(r)
			if vals[i] > vals[worst] {
				worst = i
			}
		}
		m := TooHigh{C: 0}
		before := m.Eval(vals)
		after := m.Eval(append(append([]float64(nil), vals[:worst]...), vals[worst+1:]...))
		return after <= before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewRegistry(t *testing.T) {
	for _, spec := range Specs() {
		params := map[string]float64{}
		for _, p := range spec.Params {
			params[p] = 1
		}
		m, err := New(spec.Name, params)
		if err != nil {
			t.Errorf("New(%s): %v", spec.Name, err)
			continue
		}
		if m.Name() != spec.Name {
			t.Errorf("name mismatch: %s vs %s", m.Name(), spec.Name)
		}
	}
	if _, err := New("bogus", nil); err == nil {
		t.Error("bogus metric accepted")
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		name string
		fail bool
	}{
		{"toolow(c=0)", "toolow", false},
		{"toohigh(c=70)", "toohigh", false},
		{"diff", "diff", false},
		{"zscore(mean=5, std=2, k=3)", "zscore", false},
		{"toolow(c=x)", "", true},
		{"toolow(c", "", true},
		{"nosuch(c=1)", "", true},
	}
	for _, c := range cases {
		m, err := ParseSpec(c.in)
		if c.fail {
			if err == nil {
				t.Errorf("ParseSpec(%q) accepted", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if m.Name() != c.name {
			t.Errorf("ParseSpec(%q) name %q", c.in, m.Name())
		}
	}
	m, _ := ParseSpec("toohigh(c=70)")
	if m.(TooHigh).C != 70 {
		t.Error("param not applied")
	}
}

func TestSuggestReference(t *testing.T) {
	if got := SuggestReference([]float64{1, 100, 2}); got != 2 {
		t.Errorf("median odd: %v", got)
	}
	if got := SuggestReference([]float64{1, 2, 3, 100}); got != 2.5 {
		t.Errorf("median even: %v", got)
	}
	if got := SuggestReference(nil); got != 0 {
		t.Errorf("empty: %v", got)
	}
	if got := SuggestReference([]float64{math.NaN(), 5}); got != 5 {
		t.Errorf("NaN skip: %v", got)
	}
}
