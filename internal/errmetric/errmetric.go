// Package errmetric implements the user-selectable error metrics ε of
// the paper: functions over the suspect aggregate values S that are 0
// when S is error-free and grow with the severity of the error.
//
// The paper's running example is
//
//	diff(S) = max(0, max_{sᵢ∈S}(sᵢ − c))
//
// ("the maximum amount an element of S exceeds a constant c"), offered
// in the UI alongside "value is too high", "value is too low", and
// "should be equal to". Metrics are directional: Direction reports
// whether error increases when aggregate values increase (+1, "too
// high"), decrease (−1, "too low"), or neither (0), which lets the
// influence ranker orient per-tuple deltas.
package errmetric

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Metric is a user-selected error function ε over the suspect aggregate
// values.
type Metric interface {
	// Name returns a short identifier ("diff", "toohigh", ...).
	Name() string
	// Eval computes ε over the suspect aggregate values. NULL aggregate
	// results are passed as NaN and should be ignored.
	Eval(vals []float64) float64
	// Direction reports the error orientation: +1 when larger values
	// mean more error, −1 when smaller values mean more error, 0 when
	// non-directional (e.g. not-equal).
	Direction() int
	// String renders the metric with its parameters.
	String() string
}

// clean filters NaNs (NULL aggregates) into a fresh slice. Eval
// implementations skip NaNs inline instead — they run once per candidate
// predicate per scoring pass and must not allocate — so clean is only
// for cold paths like SuggestReference.
func clean(vals []float64) []float64 {
	out := vals[:0:0]
	for _, v := range vals {
		if !math.IsNaN(v) {
			out = append(out, v)
		}
	}
	return out
}

// ---------------------------------------------------------------------

// Diff is the paper's diff(S) = max(0, max(sᵢ − c)): the maximum amount
// any suspect value exceeds the expected constant C.
type Diff struct {
	C float64
}

// Name implements Metric.
func (Diff) Name() string { return "diff" }

// Eval implements Metric.
func (m Diff) Eval(vals []float64) float64 {
	worst := 0.0
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		if d := v - m.C; d > worst {
			worst = d
		}
	}
	return worst
}

// Direction implements Metric.
func (Diff) Direction() int { return +1 }

// String implements Metric.
func (m Diff) String() string { return fmt.Sprintf("diff(c=%g)", m.C) }

// TooHigh penalizes the total mass above the expected constant C:
// ε = Σ max(0, sᵢ − c). Compared to Diff it rewards predicates that fix
// *all* suspect groups, not just the worst one, which makes ranking
// smoother; it is the default "value is too high" form.
type TooHigh struct {
	C float64
}

// Name implements Metric.
func (TooHigh) Name() string { return "toohigh" }

// Eval implements Metric.
func (m TooHigh) Eval(vals []float64) float64 {
	var sum float64
	for _, v := range vals {
		if v > m.C { // NaN fails the comparison, filtering NULLs for free
			sum += v - m.C
		}
	}
	return sum
}

// Direction implements Metric.
func (TooHigh) Direction() int { return +1 }

// String implements Metric.
func (m TooHigh) String() string { return fmt.Sprintf("toohigh(c=%g)", m.C) }

// TooLow penalizes mass below the expected constant: ε = Σ max(0, c − sᵢ).
type TooLow struct {
	C float64
}

// Name implements Metric.
func (TooLow) Name() string { return "toolow" }

// Eval implements Metric.
func (m TooLow) Eval(vals []float64) float64 {
	var sum float64
	for _, v := range vals {
		if v < m.C { // NaN fails the comparison, filtering NULLs for free
			sum += m.C - v
		}
	}
	return sum
}

// Direction implements Metric.
func (TooLow) Direction() int { return -1 }

// String implements Metric.
func (m TooLow) String() string { return fmt.Sprintf("toolow(c=%g)", m.C) }

// NotEqual is "should be equal to c": ε = Σ |sᵢ − c|.
type NotEqual struct {
	C float64
}

// Name implements Metric.
func (NotEqual) Name() string { return "notequal" }

// Eval implements Metric.
func (m NotEqual) Eval(vals []float64) float64 {
	var sum float64
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		sum += math.Abs(v - m.C)
	}
	return sum
}

// Direction implements Metric.
func (NotEqual) Direction() int { return 0 }

// String implements Metric.
func (m NotEqual) String() string { return fmt.Sprintf("notequal(c=%g)", m.C) }

// ZScore penalizes values more than K standard deviations from the
// reference mean: ε = Σ max(0, |sᵢ−Mean|/Std − K). It captures "these
// points are outliers relative to the rest of the series" without the
// user naming a constant; the frontend fills Mean/Std from the
// non-suspect groups.
type ZScore struct {
	Mean, Std, K float64
}

// Name implements Metric.
func (ZScore) Name() string { return "zscore" }

// Eval implements Metric.
func (m ZScore) Eval(vals []float64) float64 {
	if m.Std <= 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		z := math.Abs(v-m.Mean) / m.Std
		if z > m.K { // NaN z fails the comparison, filtering NULLs for free
			sum += z - m.K
		}
	}
	return sum
}

// Direction implements Metric.
func (ZScore) Direction() int { return 0 }

// String implements Metric.
func (m ZScore) String() string {
	return fmt.Sprintf("zscore(mean=%g, std=%g, k=%g)", m.Mean, m.Std, m.K)
}

// ---------------------------------------------------------------------
// Registry (used by the HTTP API and CLI to construct metrics by name)

// Spec describes one registrable metric for UIs: its name, the
// human-readable label the frontend shows ("value is too high"), and its
// parameter names.
type Spec struct {
	Name   string
	Label  string
	Params []string
}

// Specs lists the metrics the frontend offers, mirroring the paper's
// Error Metric Form.
func Specs() []Spec {
	return []Spec{
		{Name: "diff", Label: "worst excess over expected value", Params: []string{"c"}},
		{Name: "toohigh", Label: "value is too high", Params: []string{"c"}},
		{Name: "toolow", Label: "value is too low", Params: []string{"c"}},
		{Name: "notequal", Label: "should be equal to", Params: []string{"c"}},
		{Name: "zscore", Label: "outlier vs the other groups", Params: []string{"mean", "std", "k"}},
	}
}

// New constructs a metric by name with named parameters.
func New(name string, params map[string]float64) (Metric, error) {
	get := func(k string, def float64) float64 {
		if v, ok := params[k]; ok {
			return v
		}
		return def
	}
	switch strings.ToLower(name) {
	case "diff":
		return Diff{C: get("c", 0)}, nil
	case "toohigh":
		return TooHigh{C: get("c", 0)}, nil
	case "toolow":
		return TooLow{C: get("c", 0)}, nil
	case "notequal":
		return NotEqual{C: get("c", 0)}, nil
	case "zscore":
		return ZScore{Mean: get("mean", 0), Std: get("std", 1), K: get("k", 2)}, nil
	default:
		return nil, fmt.Errorf("errmetric: unknown metric %q", name)
	}
}

// ParseSpec parses "name(k=v, k=v)" or bare "name" into a metric, the
// format the CLI accepts.
func ParseSpec(s string) (Metric, error) {
	s = strings.TrimSpace(s)
	name := s
	params := map[string]float64{}
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return nil, fmt.Errorf("errmetric: malformed spec %q", s)
		}
		name = s[:i]
		body := s[i+1 : len(s)-1]
		if strings.TrimSpace(body) != "" {
			for _, kv := range strings.Split(body, ",") {
				parts := strings.SplitN(kv, "=", 2)
				if len(parts) != 2 {
					return nil, fmt.Errorf("errmetric: malformed param %q", kv)
				}
				f, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
				if err != nil {
					return nil, fmt.Errorf("errmetric: param %q: %w", kv, err)
				}
				params[strings.TrimSpace(parts[0])] = f
			}
		}
	}
	return New(name, params)
}

// SuggestReference computes a robust reference constant for a series:
// the median of vals. UIs use it to prefill the metric's expected value
// from the non-suspect groups.
func SuggestReference(vals []float64) float64 {
	vs := clean(vals)
	if len(vs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}
