package influence

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/testgen"
)

// These tests pin AdvanceScorer to NewScorer: a scorer advanced across
// a chain of append batches must be bit-identical to one built from
// scratch over the grown result — F union, per-group spans, base
// aggregates, ε, and every EpsWithoutBits evaluation. The generator's
// floats are exactly representable, so equality is exact.

func scorersEqual(t *testing.T, label string, a, b *Scorer, rng *rand.Rand) {
	t.Helper()
	if a.nsrc != b.nsrc {
		t.Fatalf("%s: nsrc %d vs %d", label, a.nsrc, b.nsrc)
	}
	if a.eps != b.eps && !(math.IsNaN(a.eps) && math.IsNaN(b.eps)) {
		t.Fatalf("%s: eps %v vs %v", label, a.eps, b.eps)
	}
	for i := range a.base {
		if a.base[i] != b.base[i] && !(math.IsNaN(a.base[i]) && math.IsNaN(b.base[i])) {
			t.Fatalf("%s: base[%d] %v vs %v", label, i, a.base[i], b.base[i])
		}
	}
	aw, bw := a.fbits.Words(), b.fbits.Words()
	if len(aw) != len(bw) {
		t.Fatalf("%s: fbits %d vs %d words", label, len(aw), len(bw))
	}
	for wi := range aw {
		if aw[wi] != bw[wi] {
			t.Fatalf("%s: fbits word %d: %x vs %x", label, wi, aw[wi], bw[wi])
		}
	}
	if len(a.groups) != len(b.groups) {
		t.Fatalf("%s: %d vs %d groups", label, len(a.groups), len(b.groups))
	}
	for gi := range a.groups {
		ga, gb := a.groups[gi], b.groups[gi]
		if ga.empty != gb.empty || ga.lo != gb.lo || ga.hi != gb.hi {
			t.Fatalf("%s: group %d span (%d,%d,%v) vs (%d,%d,%v)",
				label, gi, ga.lo, ga.hi, ga.empty, gb.lo, gb.hi, gb.empty)
		}
	}
	// ε-without on random masks must agree exactly.
	sa, sb := a.NewScratch(), b.NewScratch()
	for k := 0; k < 8; k++ {
		mask := bitset.New(a.nsrc)
		for r := 0; r < a.nsrc; r++ {
			if rng.Float64() < 0.3 {
				mask.Set(r)
			}
		}
		ea, eb := a.EpsWithoutBits(mask, sa), b.EpsWithoutBits(mask, sb)
		if ea != eb && !(math.IsNaN(ea) && math.IsNaN(eb)) {
			t.Fatalf("%s: EpsWithoutBits %v vs %v", label, ea, eb)
		}
	}
}

func TestAdvanceScorerDifferential(t *testing.T) {
	seeds := int64(8)
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(1); seed <= seeds; seed++ {
		rng := rand.New(rand.NewSource(seed * 977))
		tbl := testgen.TableSeg(rng, 80+rng.Intn(150), engine.MinSegmentBits)
		for iter := 0; iter < 6; iter++ {
			stmt := testgen.DebugStmt(rng)
			res, err := exec.RunOn(tbl, stmt)
			if err != nil {
				continue
			}
			metric := testgen.Metric(rng)
			suspect := testgen.Suspects(rng, res)
			if len(suspect) == 0 {
				continue
			}
			prev, prevErr := NewScorer(res, suspect, 0, metric)
			cur := tbl
			for step := 0; step < 3; step++ {
				grown, err := cur.AppendBatch(testgen.Batch(rng, testgen.BoundaryBatchSize(rng, cur)))
				if err != nil {
					t.Fatalf("seed %d iter %d step %d: AppendBatch: %v", seed, iter, step, err)
				}
				adv, err := exec.Advance(res, grown)
				if err != nil {
					t.Fatalf("seed %d iter %d step %d: Advance: %v", seed, iter, step, err)
				}
				// Re-draw suspects half the time: the carried F union
				// only applies to an unchanged suspect set, and the
				// changed-set path must rebuild, not mis-carry.
				if rng.Intn(2) == 0 {
					suspect = testgen.Suspects(rng, adv)
				}
				label := fmt.Sprintf("seed %d iter %d step %d [%s]", seed, iter, step, stmt.String())
				fresh, freshErr := NewScorer(adv, suspect, 0, metric)
				var carried *Scorer
				var carErr error
				if prevErr == nil {
					carried, carErr = AdvanceScorer(prev, adv, suspect, 0, metric)
				} else {
					carried, carErr = AdvanceScorer(nil, adv, suspect, 0, metric)
				}
				if (freshErr != nil) != (carErr != nil) {
					t.Fatalf("%s: error disagreement: fresh=%v carried=%v", label, freshErr, carErr)
				}
				if freshErr == nil {
					scorersEqual(t, label, fresh, carried, rng)
				}
				prev, prevErr = carried, carErr
				res, cur = adv, grown
			}
			// Next iteration draws a fresh statement (and a fresh result
			// — the old one was already advanced; chains are linear)
			// over the grown table.
			tbl = cur
		}
	}
}

// TestAdvanceScorerNilPrev pins the nil-prev convenience: it must be
// exactly NewScorer.
func TestAdvanceScorerNilPrev(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tbl := testgen.Table(rng, 120)
	stmt := testgen.DebugStmt(rng)
	res, err := exec.RunOn(tbl, stmt)
	if err != nil {
		t.Skip("generated statement rejected")
	}
	metric := testgen.Metric(rng)
	suspect := testgen.Suspects(rng, res)
	if len(suspect) == 0 {
		t.Skip("no output rows")
	}
	fresh, freshErr := NewScorer(res, suspect, 0, metric)
	adv, advErr := AdvanceScorer(nil, res, suspect, 0, metric)
	if (freshErr != nil) != (advErr != nil) {
		t.Fatalf("error disagreement: %v vs %v", freshErr, advErr)
	}
	if freshErr == nil {
		scorersEqual(t, "nil prev", fresh, adv, rng)
	}
}
