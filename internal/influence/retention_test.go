package influence

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/sqlparse"
	"repro/internal/testgen"
)

// TestAdvanceScorerRetentionDifferential chains boundary-straddling
// appends and whole-segment retention drops through exec.Advance and
// pins AdvanceScorer to NewScorer at every step — whichever internal
// path it takes (shifted carry, carried-bitset rebuild, or full
// rebuild), the scorer must be bit-identical to a from-scratch build
// over the same result.
func TestAdvanceScorerRetentionDifferential(t *testing.T) {
	seeds := int64(6)
	if testing.Short() {
		seeds = 3
	}
	horizons := 0
	for seed := int64(1); seed <= seeds; seed++ {
		rng := rand.New(rand.NewSource(seed * 557))
		tbl := testgen.TableSeg(rng, 80+rng.Intn(150), engine.MinSegmentBits)
		for iter := 0; iter < 5; iter++ {
			stmt := testgen.DebugStmt(rng)
			res, err := exec.RunOn(tbl, stmt)
			if err != nil {
				continue
			}
			metric := testgen.Metric(rng)
			suspect := testgen.Suspects(rng, res)
			if len(suspect) == 0 {
				continue
			}
			prev, prevErr := NewScorer(res, suspect, 0, metric)
			cur := tbl
			for step := 0; step < 3; step++ {
				grown, err := cur.AppendBatch(testgen.Batch(rng, testgen.BoundaryBatchSize(rng, cur)))
				if err != nil {
					t.Fatalf("seed %d iter %d step %d: AppendBatch: %v", seed, iter, step, err)
				}
				cur = grown
				if rng.Intn(2) == 0 {
					var dropped int
					cur, dropped = testgen.RetainStep(rng, cur)
					if dropped > 0 {
						horizons++
					}
				}
				adv, err := exec.Advance(res, cur)
				if err != nil {
					t.Fatalf("seed %d iter %d step %d: Advance: %v", seed, iter, step, err)
				}
				if rng.Intn(2) == 0 {
					suspect = testgen.Suspects(rng, adv)
				}
				label := fmt.Sprintf("seed %d iter %d step %d [%s]", seed, iter, step, stmt.String())
				fresh, freshErr := NewScorer(adv, suspect, 0, metric)
				var carried *Scorer
				var carErr error
				if prevErr == nil {
					carried, carErr = AdvanceScorer(prev, adv, suspect, 0, metric)
				} else {
					carried, carErr = AdvanceScorer(nil, adv, suspect, 0, metric)
				}
				if (freshErr != nil) != (carErr != nil) {
					t.Fatalf("%s: error disagreement: fresh=%v carried=%v", label, freshErr, carErr)
				}
				if freshErr == nil {
					scorersEqual(t, label, fresh, carried, rng)
				}
				prev, prevErr = carried, carErr
				res = adv
			}
			tbl = cur
		}
	}
	if horizons < 3 {
		t.Fatalf("harness degenerated: only %d retention horizons crossed", horizons)
	}
}

// TestAdvanceScorerShiftedCarry drives the word-shift rebase path
// deterministically: a statement whose WHERE excludes the dropped
// segments keeps its suspect groups' identities (first rows shift by
// exactly the drop), so the carried F union must rebase by word-shift
// — verified white-box via sameSuspectGroups — and still equal a fresh
// build.
func TestAdvanceScorerShiftedCarry(t *testing.T) {
	tbl, err := engine.NewTableSeg("m", engine.NewSchema("x", engine.TFloat, "j", engine.TInt), engine.MinSegmentBits)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]engine.Value, 5*64+7)
	for i := range rows {
		rows[i] = []engine.Value{engine.NewFloat(float64(i)), engine.NewInt(int64(i % 3))}
	}
	tbl, err = tbl.AppendBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := sqlparse.Parse("SELECT j, sum(x) AS s FROM m WHERE x >= 256 GROUP BY j")
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.RunOn(tbl, stmt)
	if err != nil {
		t.Fatal(err)
	}
	metric := testgen.Metric(rand.New(rand.NewSource(1)))
	suspect := []int{0, 1, 2}
	prev, err := NewScorer(res, suspect, 0, metric)
	if err != nil {
		t.Fatal(err)
	}

	grown, err := tbl.AppendBatch([][]engine.Value{{engine.NewFloat(5*64 + 7), engine.NewInt(0)}})
	if err != nil {
		t.Fatal(err)
	}
	cur, stats, err := grown.RetainTail(engine.RetentionPolicy{MaxRows: 2 * 64})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DroppedRows == 0 {
		t.Fatal("fixture dropped nothing")
	}
	adv, err := exec.Advance(res, cur)
	if err != nil {
		t.Fatal(err)
	}
	if !adv.Plan.Incremental {
		t.Fatalf("fixture should rebase in exec.Advance: %+v", adv.Plan)
	}
	fresh, err := NewScorer(adv, suspect, 0, metric)
	if err != nil {
		t.Fatal(err)
	}
	// White-box: the shifted identity must hold, so AdvanceScorer takes
	// the word-shift carry, not a rebuild.
	if !sameSuspectGroups(prev, fresh, stats.DroppedRows) {
		t.Fatalf("suspect identities did not shift by the drop: prev %v vs fresh %v (drop %d)",
			prev.firstRows, fresh.firstRows, stats.DroppedRows)
	}
	carried, err := AdvanceScorer(prev, adv, suspect, 0, metric)
	if err != nil {
		t.Fatal(err)
	}
	scorersEqual(t, "shifted carry", fresh, carried, rand.New(rand.NewSource(2)))
}
