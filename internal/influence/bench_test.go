package influence

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
)

func benchResult(b *testing.B, rows int) *exec.Result {
	b.Helper()
	tbl := engine.MustNewTable("t", engine.NewSchema("k", engine.TInt, "v", engine.TFloat))
	tbl.Grow(rows)
	for i := 0; i < rows; i++ {
		tbl.MustAppendRow(engine.NewInt(int64(i%10)), engine.NewFloat(float64(i%503)))
	}
	db := engine.NewDB()
	db.Register(tbl)
	res, err := exec.RunSQL(db, "SELECT k, avg(v) FROM t GROUP BY k")
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkRank measures the full leave-one-out pass: the paper's
// O(|F|) Preprocessor claim rests on this staying linear.
func BenchmarkRank(b *testing.B) {
	for _, rows := range []int{10_000, 100_000} {
		rows := rows
		b.Run(fmt.Sprintf("F=%d", rows), func(b *testing.B) {
			res := benchResult(b, rows)
			suspects := res.AllRows()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Rank(res, suspects, 0, errmetric.TooHigh{C: 100}, Options{}); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(rows))
		})
	}
}

func BenchmarkEpsWithoutRows(b *testing.B) {
	res := benchResult(b, 100_000)
	suspects := res.AllRows()
	removed := make([]int, 0, 1000)
	for r := 0; r < 100_000; r += 100 {
		removed = append(removed, r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EpsWithoutRows(res, suspects, 0, errmetric.TooHigh{C: 100}, removed); err != nil {
			b.Fatal(err)
		}
	}
}
