package influence

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
)

// buildResult runs an avg-per-group query over the given (group, value)
// rows.
func buildResult(t *testing.T, agg string, rows [][2]float64) *exec.Result {
	t.Helper()
	tbl := engine.MustNewTable("t", engine.NewSchema("k", engine.TInt, "v", engine.TFloat))
	for _, r := range rows {
		tbl.MustAppendRow(engine.NewInt(int64(r[0])), engine.NewFloat(r[1]))
	}
	db := engine.NewDB()
	db.Register(tbl)
	res, err := exec.RunSQL(db, "SELECT k, "+agg+"(v) AS a FROM t GROUP BY k ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRankAvgAnalytic(t *testing.T) {
	// Group 0: values 10, 10, 100 → avg 40. Metric TooHigh{C: 20}: ε=20.
	res := buildResult(t, "avg", [][2]float64{{0, 10}, {0, 10}, {0, 100}})
	an, err := Rank(res, []int{0}, 0, errmetric.TooHigh{C: 20}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if an.Eps != 20 {
		t.Fatalf("eps: %v", an.Eps)
	}
	// Removing the 100: avg(10,10)=10 → ε'=0, delta=20.
	// Removing a 10: avg(10,100)=55 → ε'=35, delta=-15.
	if an.Influences[0].Row != 2 || math.Abs(an.Influences[0].Delta-20) > 1e-9 {
		t.Errorf("top influence: %+v", an.Influences[0])
	}
	if math.Abs(an.Influences[1].Delta-(-15)) > 1e-9 {
		t.Errorf("second influence: %+v", an.Influences[1])
	}
	top := an.TopRows(0)
	if len(top) != 1 || top[0] != 2 {
		t.Errorf("TopRows: %v", top)
	}
}

func TestRankMultiGroup(t *testing.T) {
	// Two suspect groups; sum metric.
	res := buildResult(t, "sum", [][2]float64{{0, 5}, {0, -8}, {1, -3}, {1, 1}})
	an, err := Rank(res, []int{0, 1}, 0, errmetric.TooLow{C: 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// sums: g0 = -3, g1 = -2 → ε = 5.
	if an.Eps != 5 {
		t.Fatalf("eps: %v", an.Eps)
	}
	// Removing row 1 (-8): g0 = 5 → ε = 2; delta = 3.
	if an.Influences[0].Row != 1 || math.Abs(an.Influences[0].Delta-3) > 1e-9 {
		t.Errorf("top: %+v", an.Influences[0])
	}
	if len(an.F) != 4 {
		t.Errorf("F: %v", an.F)
	}
}

// Property: for every aggregate, the LOO delta matches re-running the
// query without the tuple.
func TestLOOMatchesRequery(t *testing.T) {
	for _, aggName := range []string{"avg", "sum", "stddev", "min", "max", "count", "median"} {
		aggName := aggName
		t.Run(aggName, func(t *testing.T) {
			f := func(raw []int8, pick uint8) bool {
				if len(raw) < 3 {
					return true
				}
				rows := make([][2]float64, len(raw))
				for i, r := range raw {
					rows[i] = [2]float64{0, float64(r)}
				}
				res := buildResult(t, aggName, rows)
				metric := errmetric.NotEqual{C: 1}
				an, err := Rank(res, []int{0}, 0, metric, Options{})
				if err != nil {
					return false
				}
				idx := int(pick) % len(rows)
				// Brute force: rebuild without row idx.
				rest := append(append([][2]float64(nil), rows[:idx]...), rows[idx+1:]...)
				res2 := buildResult(t, aggName, rest)
				var after float64
				if v, ok := res2.AggFloat(0, 0); ok {
					after = metric.Eval([]float64{v})
				} else {
					after = metric.Eval(nil)
				}
				wantDelta := an.Eps - after
				return math.Abs(an.DeltaOf(idx)-wantDelta) < 1e-6*math.Max(1, math.Abs(wantDelta))
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestEpsWithoutRowsMatchesRequery(t *testing.T) {
	f := func(raw []int8, mask uint16) bool {
		if len(raw) < 3 {
			return true
		}
		rows := make([][2]float64, len(raw))
		for i, r := range raw {
			rows[i] = [2]float64{float64(i % 2), float64(r)}
		}
		res := buildResult(t, "avg", rows)
		suspects := res.AllRows()
		metric := errmetric.TooHigh{C: 0}

		var removed []int
		var kept [][2]float64
		for i, r := range rows {
			if mask&(1<<(i%16)) != 0 {
				removed = append(removed, i)
			} else {
				kept = append(kept, r)
			}
		}
		got, err := EpsWithoutRows(res, suspects, 0, metric, removed)
		if err != nil {
			return false
		}
		// Brute force.
		var vals []float64
		byGroup := map[int][]float64{}
		for _, r := range kept {
			byGroup[int(r[0])] = append(byGroup[int(r[0])], r[1])
		}
		// Match original group order: groups sorted by key (0 then 1),
		// but only groups that existed originally count; empty ones are
		// NaN (ignored by the metric).
		for gi := 0; gi < res.NumRows(); gi++ {
			key := int(res.Table.Value(gi, 0).Int())
			gvals := byGroup[key]
			if len(gvals) == 0 {
				continue
			}
			var sum float64
			for _, v := range gvals {
				sum += v
			}
			vals = append(vals, sum/float64(len(gvals)))
		}
		want := metric.Eval(vals)
		return math.Abs(got-want) < 1e-6*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSamplingCap(t *testing.T) {
	rows := make([][2]float64, 500)
	for i := range rows {
		rows[i] = [2]float64{0, float64(i)}
	}
	res := buildResult(t, "avg", rows)
	an, err := Rank(res, []int{0}, 0, errmetric.TooHigh{C: 0}, Options{MaxTuples: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Influences) != 50 {
		t.Errorf("sampled influences: %d", len(an.Influences))
	}
	if len(an.F) != 500 {
		t.Errorf("F should remain full: %d", len(an.F))
	}
}

func TestTopQuantileRows(t *testing.T) {
	res := buildResult(t, "avg", [][2]float64{{0, 0}, {0, 0}, {0, 100}, {0, 90}})
	an, err := Rank(res, []int{0}, 0, errmetric.TooHigh{C: 10}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows := an.TopQuantileRows(0.5)
	// The two large values dominate; the zeros have negative delta.
	if len(rows) < 1 || len(rows) > 2 {
		t.Errorf("quantile rows: %v", rows)
	}
	for _, r := range rows {
		if r != 2 && r != 3 {
			t.Errorf("unexpected quantile row %d", r)
		}
	}
}

func TestRankErrors(t *testing.T) {
	res := buildResult(t, "avg", [][2]float64{{0, 1}})
	if _, err := Rank(res, nil, 0, errmetric.TooHigh{}, Options{}); err == nil {
		t.Error("empty suspects accepted")
	}
	if _, err := Rank(res, []int{0}, 5, errmetric.TooHigh{}, Options{}); err == nil {
		t.Error("bad ordinal accepted")
	}
	if _, err := Rank(res, []int{99}, 0, errmetric.TooHigh{}, Options{}); err == nil {
		t.Error("out-of-range suspect accepted")
	}
}
