package influence

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/agg"
	"repro/internal/bitset"
	"repro/internal/errmetric"
	"repro/internal/exec"
)

// Scorer is the columnar fast path for predicate scoring: everything a
// Debug run needs to evaluate ε-without-a-set-of-rows, decoded once.
//
//   - each suspect group's lineage as a bitset (plus its occupied word
//     span, so intersection skips the rest of the table),
//   - the aggregate's argument column as a flat []float64 + NULL bitmap
//     (no boxed expression interpretation per tuple),
//   - the live aggregate states through agg.FloatRemovable.
//
// After construction the Scorer is read-only and safe for concurrent
// use; per-goroutine mutable state lives in Scratch. This is what lets
// the ranker score candidate predicates in parallel.
type Scorer struct {
	suspect []int
	metric  errmetric.Metric
	eps     float64
	// base[i] is suspect group i's current aggregate (NaN when NULL).
	base   []float64
	states []agg.FloatRemovable
	groups []groupBits
	fbits  *bitset.Bitset
	args   *exec.ArgView
	nsrc   int
	// srcBase is the source table's retention base: carried F words
	// rebase by word-shift when the base moved (whole-segment drops are
	// always word-aligned).
	srcBase int
	// firstRows[i] identifies suspect group i by its first source row —
	// stable across table versions, so AdvanceScorer can verify that a
	// carried F union still describes the same groups even when the
	// materialized output order shifted.
	firstRows []int
}

// groupBits is one suspect group's lineage with its non-zero word span.
type groupBits struct {
	bits   *bitset.Bitset
	lo, hi int
	empty  bool
}

// Scratch holds one goroutine's reusable buffers for EpsWithoutBits.
type Scratch struct {
	vals []float64
	buf  []float64
}

// NewScorer builds the columnar scoring state for the ord'th aggregate
// of res over the suspect output rows. It fails — and callers fall back
// to the boxed path — when an aggregate state does not implement
// agg.FloatRemovable (e.g. DISTINCT aggregates) or the argument column
// cannot be decoded.
func NewScorer(res *exec.Result, suspect []int, ord int, metric errmetric.Metric) (*Scorer, error) {
	s, err := newScorerBase(res, suspect, ord, metric)
	if err != nil {
		return nil, err
	}
	s.buildGroupBits(res, suspect)
	return s, nil
}

// AdvanceScorer builds the scoring state for res — an incrementally
// advanced result over a grown version of prev's source table — by
// extending prev's carried state by the appended suffix instead of
// rebuilding it. Per-group lineage bitsets and the argument view come
// from the advanced result's carried caches (exec.Advance extends both
// by suffix), the removable aggregate states are the advanced result's
// own, and the F union reuses prev's words: appended rows can only set
// bits from the old length on, so the prefix is a word-level copy and
// only the suffix words are OR-ed. The produced Scorer is bit-identical
// to NewScorer over the same result.
//
// When the source table's retention base moved since prev, the carried
// F union rebases by a word-shift (dropped head segments are whole
// words) as long as the suspect groups' identities survive the id
// translation; group first rows are compared with the drop offset
// applied. When the suspect groups changed since prev (or prev is nil,
// or the rebase precondition fails), the F union is rebuilt from the
// per-group bitsets — still cheap, since those were carried — so
// callers can advance unconditionally.
func AdvanceScorer(prev *Scorer, res *exec.Result, suspect []int, ord int, metric errmetric.Metric) (*Scorer, error) {
	if prev == nil {
		return NewScorer(res, suspect, ord, metric)
	}
	s, err := newScorerBase(res, suspect, ord, metric)
	if err != nil {
		return nil, err
	}
	drop := s.srcBase - prev.srcBase
	prevLocal := prev.nsrc - drop
	if drop < 0 || drop%64 != 0 || s.nsrc < prevLocal || !sameSuspectGroups(prev, s, drop) {
		s.buildGroupBits(res, suspect)
		return s, nil
	}
	s.advanceGroupBits(prev, res, suspect, drop)
	return s, nil
}

// sameSuspectGroups reports whether next names the same groups, in the
// same order, as prev — by first source row, the version-stable group
// identity (shifted by the retention drop) — so prev's F union is a
// valid prefix of next's after rebase. A suspect group whose first row
// fell below the retention horizon can never match, so a shifted match
// also proves every suspect lineage survived the drop (a group's first
// row is its earliest lineage row).
func sameSuspectGroups(prev, next *Scorer, drop int) bool {
	if len(prev.suspect) != len(next.suspect) {
		return false
	}
	for i := range prev.suspect {
		if prev.firstRows[i]-drop != next.firstRows[i] {
			return false
		}
	}
	return true
}

// newScorerBase builds everything except the lineage bitsets: base
// aggregate values, removable states, the argument view, and ε.
func newScorerBase(res *exec.Result, suspect []int, ord int, metric errmetric.Metric) (*Scorer, error) {
	if len(suspect) == 0 {
		return nil, fmt.Errorf("influence: no suspect groups")
	}
	if ord < 0 || ord >= len(res.AggOrdinals()) {
		return nil, fmt.Errorf("influence: aggregate ordinal %d out of range (%d aggregates)", ord, len(res.AggOrdinals()))
	}
	s := &Scorer{
		suspect:   suspect,
		metric:    metric,
		base:      make([]float64, len(suspect)),
		states:    make([]agg.FloatRemovable, len(suspect)),
		nsrc:      res.Source.NumRows(),
		srcBase:   res.Source.Base(),
		firstRows: make([]int, len(suspect)),
	}
	for i, ri := range suspect {
		if ri < 0 || ri >= res.NumRows() {
			return nil, fmt.Errorf("influence: suspect row %d out of range", ri)
		}
		s.firstRows[i] = res.Groups[ri].FirstRow
		st, ok := res.AggState(ri, ord)
		if !ok {
			return nil, fmt.Errorf("influence: aggregate %d is not removable", ord)
		}
		fr, ok := st.(agg.FloatRemovable)
		if !ok {
			return nil, fmt.Errorf("influence: aggregate %d has no float fast path", ord)
		}
		s.states[i] = fr
		if v, ok := res.AggFloat(ri, ord); ok {
			s.base[i] = v
		} else {
			s.base[i] = math.NaN()
		}
	}
	s.eps = metric.Eval(s.base)

	args, err := res.AggArgFloats(ord)
	if err != nil {
		return nil, err
	}
	s.args = args
	return s, nil
}

// advanceGroupBits extends prev's F union by the appended suffix,
// first rebasing it across a retention horizon when drop > 0. The
// advanced result's per-group bitsets share their (shifted) prefix
// with the ones prev unioned (lineage is append-only; exec.Advance
// carries the bitsets by prefix copy — or word-shift — plus suffix
// sets), so the union over the surviving prefix is exactly prev.fbits
// rebased: the word-block concatenation is prefix words ++ suffix
// words, and only words appended rows can touch need OR-ing.
func (s *Scorer) advanceGroupBits(prev *Scorer, res *exec.Result, suspect []int, drop int) {
	s.groups = make([]groupBits, len(suspect))
	if drop > 0 {
		s.fbits = bitset.ShiftDownWords(s.nsrc, prev.fbits.Words(), drop)
	} else {
		s.fbits = bitset.SnapshotWords(s.nsrc, prev.fbits.Words())
	}
	fw := s.fbits.Words()
	lo0 := (prev.nsrc - drop) >> 6
	for i := range suspect {
		b := res.GroupLineageBitsShared(suspect[i])
		lo, hi, ok := b.WordRange()
		s.groups[i] = groupBits{bits: b, lo: lo, hi: hi, empty: !ok}
		gw := b.Words()
		for wi := lo0; wi < len(gw); wi++ {
			fw[wi] |= gw[wi]
		}
	}
}

// buildGroupBits fetches each suspect group's lineage bitset (from the
// result's shared per-group cache — for incrementally advanced results
// the unchanged prefix was carried over rather than rebuilt) and unions
// them into F. The per-group work is independent, so it shards across a
// worker pool when there are enough groups and CPUs to pay for it;
// per-worker partial F bitmaps merge at the end, keeping the result
// identical to the sequential build.
func (s *Scorer) buildGroupBits(res *exec.Result, suspect []int) {
	s.groups = make([]groupBits, len(suspect))
	s.fbits = bitset.New(s.nsrc)

	build := func(i int) *bitset.Bitset {
		b := res.GroupLineageBitsShared(suspect[i])
		lo, hi, ok := b.WordRange()
		s.groups[i] = groupBits{bits: b, lo: lo, hi: hi, empty: !ok}
		return b
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(suspect) {
		workers = len(suspect)
	}
	if workers <= 1 || len(suspect) < 4 {
		for i := range suspect {
			s.fbits.Or(build(i))
		}
		return
	}

	partial := make([]*bitset.Bitset, workers)
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f := bitset.New(s.nsrc)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(suspect) {
					break
				}
				f.Or(build(i))
			}
			partial[w] = f
		}(w)
	}
	wg.Wait()
	for _, f := range partial {
		s.fbits.Or(f)
	}
}

// Eps returns ε over the suspect groups before any removal.
func (s *Scorer) Eps() float64 { return s.eps }

// FBits returns the suspect groups' combined lineage (F) as a bitset.
// Shared and read-only.
func (s *Scorer) FBits() *bitset.Bitset { return s.fbits }

// NumSourceRows returns the source table's row count — the length every
// bitset handed to EpsWithoutBits must have.
func (s *Scorer) NumSourceRows() int { return s.nsrc }

// NewScratch returns a fresh per-goroutine scratch.
func (s *Scorer) NewScratch() *Scratch {
	return &Scratch{vals: make([]float64, len(s.suspect)), buf: make([]float64, 0, 256)}
}

// EpsWithoutBits evaluates ε with the matched source rows removed from
// their groups — the bitset counterpart of EpsWithoutRows. matched may
// contain rows outside the suspect lineage; they are ignored. Steady
// state it allocates nothing (for the algebraic aggregates).
func (s *Scorer) EpsWithoutBits(matched *bitset.Bitset, sc *Scratch) float64 {
	copy(sc.vals, s.base)
	mw := matched.Words()
	nw := s.args.Null.Words()
	for i := range s.groups {
		g := &s.groups[i]
		if g.empty {
			continue
		}
		gw := g.bits.Words()
		buf := sc.buf[:0]
		for wi := g.lo; wi <= g.hi; wi++ {
			w := gw[wi] & mw[wi] &^ nw[wi] // NULL args remove nothing
			if w == 0 {
				continue
			}
			base := wi * 64
			for w != 0 {
				buf = append(buf, s.args.Vals[base+bits.TrailingZeros64(w)])
				w &= w - 1
			}
		}
		sc.buf = buf[:0]
		if len(buf) == 0 {
			continue
		}
		if v, ok := s.states[i].ResultWithoutFloats(buf); ok {
			sc.vals[i] = v
		} else {
			sc.vals[i] = math.NaN()
		}
	}
	return s.metric.Eval(sc.vals)
}

// rankFast is Rank's columnar path: per-tuple leave-one-out influence
// without boxed argument evaluation or per-row map lookups. It polls
// ctx per ctxCheckRows tuples; the only possible error wraps the
// context error, and the scorer stays valid for a retry.
func rankFast(ctx context.Context, s *Scorer, opt Options) (*Analysis, error) {
	an := &Analysis{Eps: s.eps, F: s.fbits.Rows()}

	// rowPos[src] is the suspect position of src's group (-1 outside F;
	// the first listed suspect group wins, matching Result.GroupOf).
	rowPos := make([]int32, s.nsrc)
	for i := range rowPos {
		rowPos[i] = -1
	}
	for gi := range s.groups {
		g := &s.groups[gi]
		if g.empty {
			continue
		}
		pos := int32(gi)
		g.bits.ForEach(func(r int) {
			if rowPos[r] < 0 {
				rowPos[r] = pos
			}
		})
	}

	rows := sampleRows(an.F, opt.MaxTuples)

	scratch := append([]float64(nil), s.base...)
	var buf1 [1]float64
	an.Influences = make([]TupleInfluence, 0, len(rows))
	for i, src := range rows {
		if i%ctxCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("influence: cancelled: %w", err)
			}
		}
		pos := rowPos[src]
		if pos < 0 {
			continue
		}
		gi := s.suspect[pos]
		var delta float64
		if s.args.Null.Get(src) {
			// Removing a NULL argument changes nothing: δ is exactly 0.
			delta = 0
		} else {
			buf1[0] = s.args.Vals[src]
			old := scratch[pos]
			if v, ok := s.states[pos].ResultWithoutFloats(buf1[:1]); ok {
				scratch[pos] = v
			} else {
				scratch[pos] = math.NaN()
			}
			delta = s.eps - s.metric.Eval(scratch)
			scratch[pos] = old
		}
		an.Influences = append(an.Influences, TupleInfluence{Row: src, GroupRow: gi, Delta: delta})
	}
	sortInfluences(an.Influences)
	return an, nil
}
