// Package influence implements the Preprocessor stage of the DBWipes
// backend: given the suspect output groups S, their lineage F, and the
// user's error metric ε, it ranks every tuple in F by how much removing
// it alone would reduce ε — leave-one-out (LOO) influence analysis.
//
// Thanks to the removable aggregates in internal/agg, each tuple's
// counterfactual aggregate is O(1) for the algebraic aggregates
// (sum/count/avg/stddev/var), so the whole pass is O(|F|). For very
// large F a deterministic sampling mode bounds the work.
package influence

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sync"

	"repro/internal/agg"
	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
)

// ctxCheckRows is the cancellation-check granularity of the LOO loops
// (same batch size as exec's scan loops): ctx is polled once per this
// many analyzed tuples, free on the uncancelled path.
const ctxCheckRows = 4096

// TupleInfluence records one tuple's leave-one-out effect on ε.
type TupleInfluence struct {
	// Row is the source row id.
	Row int
	// GroupRow is the output row (group) the tuple belongs to.
	GroupRow int
	// Delta is ε(S) − ε(S without this tuple): positive means removing
	// the tuple reduces the error, i.e. the tuple is culpable.
	Delta float64
}

// Options tunes the analysis.
type Options struct {
	// MaxTuples caps how many lineage tuples are analyzed; when the
	// lineage is larger, an evenly spaced deterministic sample is used
	// and the remaining tuples get Delta 0. Zero means no cap.
	MaxTuples int
}

// Analysis is the result of the preprocessor pass.
type Analysis struct {
	// Eps is ε over the suspect groups before any removal.
	Eps float64
	// Influences holds one entry per analyzed lineage tuple, sorted by
	// descending Delta.
	Influences []TupleInfluence
	// F is the full lineage of the suspect groups (sorted row ids).
	F []int
	// Scorer is the columnar scoring state built during ranking, ready
	// for reuse by downstream predicate scoring (nil when the boxed
	// fallback ran, e.g. for DISTINCT aggregates).
	Scorer *Scorer

	// deltaByRow indexes Influences by row, built lazily on the first
	// DeltaOf call.
	deltaOnce  sync.Once
	deltaByRow map[int]float64
}

// Rank computes ε and per-tuple LOO influence for the ord'th aggregate
// of res over the suspect output rows.
func Rank(res *exec.Result, suspect []int, ord int, metric errmetric.Metric, opt Options) (*Analysis, error) {
	return RankCtx(context.Background(), res, suspect, ord, metric, opt)
}

// RankCtx is Rank under a cancellable context: the O(|F|) LOO loop
// polls ctx per ctxCheckRows tuples and returns an error wrapping the
// context error on cancellation, leaving res untouched.
func RankCtx(ctx context.Context, res *exec.Result, suspect []int, ord int, metric errmetric.Metric, opt Options) (*Analysis, error) {
	if len(suspect) == 0 {
		return nil, fmt.Errorf("influence: no suspect groups")
	}
	if ord < 0 || ord >= len(res.AggOrdinals()) {
		return nil, fmt.Errorf("influence: aggregate ordinal %d out of range (%d aggregates)", ord, len(res.AggOrdinals()))
	}

	// Columnar fast path: when every aggregate state supports unboxed
	// removal, rank through the Scorer (flat argument column + lineage
	// bitsets) instead of the boxed interpreter. NewScorer failing for a
	// reason other than a missing fast path (e.g. an out-of-range
	// suspect) is fine too: the boxed path below re-detects the problem
	// and reports the error.
	if sc, scErr := NewScorer(res, suspect, ord, metric); scErr == nil {
		return RankWithScorerCtx(ctx, sc, opt)
	}

	// Current aggregate values for the suspect groups, in suspect order.
	vals := make([]float64, len(suspect))
	states := make([]agg.Removable, len(suspect))
	for i, ri := range suspect {
		if ri < 0 || ri >= res.NumRows() {
			return nil, fmt.Errorf("influence: suspect row %d out of range", ri)
		}
		if v, ok := res.AggFloat(ri, ord); ok {
			vals[i] = v
		} else {
			vals[i] = math.NaN()
		}
		st, ok := res.AggState(ri, ord)
		if !ok {
			return nil, fmt.Errorf("influence: aggregate %d is not removable", ord)
		}
		states[i] = st
	}
	eps := metric.Eval(vals)

	an := &Analysis{Eps: eps, F: res.Lineage(suspect)}

	// Map each lineage tuple to its position in the suspect slice.
	groupPos := make(map[int]int, len(suspect))
	for i, ri := range suspect {
		groupPos[ri] = i
	}
	rowGroup := res.GroupOf(suspect)

	rows := sampleRows(an.F, opt.MaxTuples)

	scratch := append([]float64(nil), vals...)
	an.Influences = make([]TupleInfluence, 0, len(rows))
	for i, src := range rows {
		if i%ctxCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("influence: cancelled: %w", err)
			}
		}
		gi, ok := rowGroup[src]
		if !ok {
			continue
		}
		pos := groupPos[gi]
		v, err := res.AggArgValue(ord, src)
		if err != nil {
			return nil, err
		}
		without := states[pos].ResultWithout(v)
		old := scratch[pos]
		if without.IsNull() {
			scratch[pos] = math.NaN()
		} else {
			scratch[pos] = without.Float()
		}
		delta := eps - metric.Eval(scratch)
		scratch[pos] = old
		an.Influences = append(an.Influences, TupleInfluence{Row: src, GroupRow: gi, Delta: delta})
	}
	sortInfluences(an.Influences)
	return an, nil
}

// RankWithScorer runs the columnar preprocessor pass over an
// already-built scoring state — the entry point the incremental Debug
// path uses after advancing a carried Scorer to a grown table version
// (AdvanceScorer), so the LOO analysis never rebuilds what the carry
// preserved. Rank's fast path routes through it too, keeping the two
// bit-identical.
func RankWithScorer(sc *Scorer, opt Options) *Analysis {
	an, _ := RankWithScorerCtx(context.Background(), sc, opt)
	return an
}

// RankWithScorerCtx is RankWithScorer under a cancellable context; the
// only possible error wraps the context error.
func RankWithScorerCtx(ctx context.Context, sc *Scorer, opt Options) (*Analysis, error) {
	an, err := rankFast(ctx, sc, opt)
	if err != nil {
		return nil, err
	}
	an.Scorer = sc
	return an, nil
}

// sampleRows returns rows, or an evenly spaced sample of max of them
// when the cap is exceeded (max <= 0 means no cap). Shared by the boxed
// and columnar Rank paths so their sampling stays identical.
func sampleRows(rows []int, max int) []int {
	if max <= 0 || len(rows) <= max {
		return rows
	}
	sampled := make([]int, 0, max)
	step := float64(len(rows)) / float64(max)
	for i := 0; i < max; i++ {
		sampled = append(sampled, rows[int(float64(i)*step)])
	}
	return sampled
}

// sortInfluences orders by descending Delta. Entries are appended in
// ascending row order, so breaking ties on Row reproduces the stable
// order while letting the generic (reflection-free) sort run — stable
// sorting via sort.SliceStable was the dominant cost of the whole LOO
// pass at |F|=100k.
func sortInfluences(infs []TupleInfluence) {
	slices.SortFunc(infs, func(a, b TupleInfluence) int {
		switch {
		case a.Delta > b.Delta:
			return -1
		case a.Delta < b.Delta:
			return 1
		case a.Row < b.Row:
			return -1
		case a.Row > b.Row:
			return 1
		default:
			return 0
		}
	})
}

// TopRows returns the rows of the k most influential tuples (Delta > 0
// only). k <= 0 means all positive-influence tuples.
func (a *Analysis) TopRows(k int) []int {
	out := make([]int, 0, len(a.Influences))
	for _, ti := range a.Influences {
		if ti.Delta <= 0 {
			break
		}
		out = append(out, ti.Row)
		if k > 0 && len(out) >= k {
			break
		}
	}
	return out
}

// TopQuantileRows returns the rows whose influence is at least q times
// the maximum positive influence (0 < q <= 1). This is the adaptive
// high-influence set the Dataset Enumerator extends D' with.
func (a *Analysis) TopQuantileRows(q float64) []int {
	if len(a.Influences) == 0 || a.Influences[0].Delta <= 0 {
		return nil
	}
	threshold := a.Influences[0].Delta * q
	var out []int
	for _, ti := range a.Influences {
		if ti.Delta < threshold || ti.Delta <= 0 {
			break
		}
		out = append(out, ti.Row)
	}
	return out
}

// DeltaOf returns the influence of a specific source row (0 when not
// analyzed). The first call builds a row→delta index, so repeated
// lookups are O(1) rather than a linear scan of Influences.
func (a *Analysis) DeltaOf(row int) float64 {
	a.deltaOnce.Do(func() {
		a.deltaByRow = make(map[int]float64, len(a.Influences))
		for _, ti := range a.Influences {
			if _, ok := a.deltaByRow[ti.Row]; !ok {
				a.deltaByRow[ti.Row] = ti.Delta
			}
		}
	})
	return a.deltaByRow[row]
}

// EpsWithoutRows evaluates ε with an arbitrary set of source rows
// removed from their groups (the predicate-scoring primitive used by
// the ranker). rows may contain rows outside the suspect lineage; they
// are ignored.
func EpsWithoutRows(res *exec.Result, suspect []int, ord int, metric errmetric.Metric, rows []int) (float64, error) {
	inRemoval := make(map[int]bool, len(rows))
	for _, r := range rows {
		inRemoval[r] = true
	}
	vals := make([]float64, len(suspect))
	for i, ri := range suspect {
		st, ok := res.AggState(ri, ord)
		if !ok {
			return 0, fmt.Errorf("influence: aggregate %d is not removable", ord)
		}
		var removed []int
		for _, src := range res.Groups[ri].Lineage {
			if inRemoval[src] {
				removed = append(removed, src)
			}
		}
		if len(removed) == 0 {
			if v, ok := res.AggFloat(ri, ord); ok {
				vals[i] = v
			} else {
				vals[i] = math.NaN()
			}
			continue
		}
		removedVals := make([]engine.Value, len(removed))
		for j, src := range removed {
			v, err := res.AggArgValue(ord, src)
			if err != nil {
				return 0, err
			}
			removedVals[j] = v
		}
		without := st.ResultWithoutSet(removedVals)
		if without.IsNull() {
			vals[i] = math.NaN()
		} else {
			vals[i] = without.Float()
		}
	}
	return metric.Eval(vals), nil
}
