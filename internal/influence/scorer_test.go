package influence

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
)

// scorerResult builds a grouped query over a table with NULLs mixed in.
func scorerResult(t testing.TB, rows int, aggSQL string) *exec.Result {
	t.Helper()
	tbl := engine.MustNewTable("t", engine.NewSchema("k", engine.TInt, "v", engine.TFloat))
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < rows; i++ {
		v := engine.NewFloat(float64(rng.Intn(200)))
		if rng.Intn(10) == 0 {
			v = engine.Null
		}
		tbl.MustAppendRow(engine.NewInt(int64(i%7)), v)
	}
	db := engine.NewDB()
	db.Register(tbl)
	res, err := exec.RunSQL(db, "SELECT k, "+aggSQL+" FROM t GROUP BY k")
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEpsWithoutBitsParity checks the bitset scoring path returns the
// same ε as the boxed EpsWithoutRows for random removal sets, across
// aggregate kinds (algebraic, extremum, holistic).
func TestEpsWithoutBitsParity(t *testing.T) {
	for _, aggSQL := range []string{"avg(v)", "sum(v)", "count(v)", "stddev(v)", "min(v)", "max(v)", "median(v)", "count(*)"} {
		res := scorerResult(t, 500, aggSQL)
		suspect := res.AllRows()
		metric := errmetric.TooHigh{C: 90}
		sc, err := NewScorer(res, suspect, 0, metric)
		if err != nil {
			t.Fatalf("%s: NewScorer: %v", aggSQL, err)
		}
		scratch := sc.NewScratch()
		rng := rand.New(rand.NewSource(5))
		n := res.Source.NumRows()
		for trial := 0; trial < 50; trial++ {
			var rows []int
			for r := 0; r < n; r++ {
				if rng.Intn(4) == 0 {
					rows = append(rows, r)
				}
			}
			want, err := EpsWithoutRows(res, suspect, 0, metric, rows)
			if err != nil {
				t.Fatal(err)
			}
			got := sc.EpsWithoutBits(bitset.FromRows(n, rows), scratch)
			if !floatsEqual(want, got) {
				t.Fatalf("%s trial %d: EpsWithoutRows=%g EpsWithoutBits=%g", aggSQL, trial, want, got)
			}
		}
	}
}

// TestRankFastParity checks the columnar Rank path matches the boxed
// path entry for entry. The boxed path is forced by reproducing the
// original algorithm through EpsWithoutRows on singleton sets.
func TestRankFastParity(t *testing.T) {
	res := scorerResult(t, 400, "avg(v)")
	suspect := res.AllRows()
	metric := errmetric.TooHigh{C: 90}
	an, err := Rank(res, suspect, 0, metric, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Influences) == 0 {
		t.Fatal("no influences")
	}
	// Spot-check deltas against the one-row removal primitive.
	for _, ti := range an.Influences[:20] {
		epsWithout, err := EpsWithoutRows(res, suspect, 0, metric, []int{ti.Row})
		if err != nil {
			t.Fatal(err)
		}
		want := an.Eps - epsWithout
		if !floatsEqual(want, ti.Delta) {
			t.Fatalf("row %d: delta=%g want %g", ti.Row, ti.Delta, want)
		}
	}
	// Deltas must be sorted descending.
	for i := 1; i < len(an.Influences); i++ {
		if an.Influences[i].Delta > an.Influences[i-1].Delta {
			t.Fatal("Influences not sorted by descending delta")
		}
	}
}

// TestEpsWithoutBitsZeroAlloc pins the per-predicate scoring primitive
// to zero steady-state allocations for algebraic aggregates — the
// property the whole columnar layer exists to provide.
func TestEpsWithoutBitsZeroAlloc(t *testing.T) {
	res := scorerResult(t, 2000, "avg(v)")
	suspect := res.AllRows()
	sc, err := NewScorer(res, suspect, 0, errmetric.TooHigh{C: 90})
	if err != nil {
		t.Fatal(err)
	}
	scratch := sc.NewScratch()
	n := res.Source.NumRows()
	matched := bitset.New(n)
	for r := 0; r < n; r += 3 {
		matched.Set(r)
	}
	sc.EpsWithoutBits(matched, scratch) // warm the scratch buffers
	allocs := testing.AllocsPerRun(100, func() {
		sc.EpsWithoutBits(matched, scratch)
	})
	if allocs != 0 {
		t.Fatalf("EpsWithoutBits allocates %v per run, want 0", allocs)
	}
}

// TestDeltaOfIndexed covers the lazily built row→delta index.
func TestDeltaOfIndexed(t *testing.T) {
	an := &Analysis{Influences: []TupleInfluence{
		{Row: 7, Delta: 3.5},
		{Row: 2, Delta: 1.25},
		{Row: 9, Delta: -0.5},
	}}
	if got := an.DeltaOf(2); got != 1.25 {
		t.Fatalf("DeltaOf(2) = %g", got)
	}
	if got := an.DeltaOf(7); got != 3.5 {
		t.Fatalf("DeltaOf(7) = %g", got)
	}
	if got := an.DeltaOf(1000); got != 0 {
		t.Fatalf("DeltaOf(1000) = %g, want 0", got)
	}
}

func floatsEqual(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	if a == b {
		return true
	}
	// The float and boxed paths may differ by accumulated rounding.
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

func BenchmarkEpsWithoutBits(b *testing.B) {
	res := benchResult(b, 100_000)
	suspect := res.AllRows()
	sc, err := NewScorer(res, suspect, 0, errmetric.TooHigh{C: 100})
	if err != nil {
		b.Fatal(err)
	}
	scratch := sc.NewScratch()
	n := res.Source.NumRows()
	removed := make([]int, 0, 1000)
	for r := 0; r < n; r += 100 {
		removed = append(removed, r)
	}
	matched := bitset.FromRows(n, removed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.EpsWithoutBits(matched, scratch)
	}
}
