package dtree

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/feature"
)

// plantedConcept builds a table whose positive class is exactly
// (volt <= 2.4 AND city = 'LAB').
func plantedConcept(t *testing.T, n int) (*feature.Space, []int, []bool) {
	t.Helper()
	tbl := engine.MustNewTable("t", engine.NewSchema(
		"mote", engine.TInt, "volt", engine.TFloat, "city", engine.TString))
	rng := rand.New(rand.NewSource(4))
	rows := make([]int, 0, n)
	labels := make([]bool, 0, n)
	cities := []string{"LAB", "HALL", "ROOF"}
	for i := 0; i < n; i++ {
		city := cities[rng.Intn(3)]
		volt := 2.2 + rng.Float64()*0.6
		mote := rng.Int63n(60)
		pos := volt <= 2.4 && city == "LAB"
		id := tbl.MustAppendRow(engine.NewInt(mote), engine.NewFloat(volt), engine.NewString(city))
		rows = append(rows, id)
		labels = append(labels, pos)
	}
	return feature.NewSpace(tbl, feature.Options{NumThresholds: 20}), rows, labels
}

func TestTreeLearnsPlantedConcept(t *testing.T) {
	for _, crit := range []Criterion{Gini, Entropy, GainRatio} {
		crit := crit
		t.Run(crit.String(), func(t *testing.T) {
			sp, rows, labels := plantedConcept(t, 600)
			tree, err := Train(sp, rows, labels, nil, Options{Criterion: crit})
			if err != nil {
				t.Fatal(err)
			}
			if tree.TrainAccuracy < 0.95 {
				t.Errorf("train accuracy %.2f\n%s", tree.TrainAccuracy, tree)
			}
			paths := tree.PositivePaths()
			if len(paths) == 0 {
				t.Fatalf("no positive paths\n%s", tree)
			}
			// The best path should reference volt and city.
			cols := paths[0].Pred.Columns()
			hasVolt, hasCity := false, false
			for _, c := range cols {
				if c == "volt" {
					hasVolt = true
				}
				if c == "city" {
					hasCity = true
				}
			}
			if !hasVolt || !hasCity {
				t.Errorf("top path %s misses concept attrs", paths[0].Pred)
			}
		})
	}
}

// Property-ish: every extracted positive path matches only rows routed
// to a positive leaf, and the path's purity equals the leaf purity over
// its matched training rows.
func TestPathsConsistentWithPredictions(t *testing.T) {
	sp, rows, labels := plantedConcept(t, 400)
	tree, err := Train(sp, rows, labels, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range tree.PositivePaths() {
		matched := path.Pred.MatchingRows(sp.Table, rows)
		if len(matched) == 0 {
			t.Errorf("path %s matches nothing", path.Pred)
			continue
		}
		for _, r := range matched {
			if !tree.PredictRow(r) {
				t.Errorf("path %s matched row %d predicted negative", path.Pred, r)
				break
			}
		}
	}
}

func TestMaxDepthRespected(t *testing.T) {
	sp, rows, labels := plantedConcept(t, 300)
	tree, err := Train(sp, rows, labels, nil, Options{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tree.PositivePaths() {
		if p.Pred.Len() > 2 {
			t.Errorf("path longer than depth: %s", p.Pred)
		}
	}
}

func TestMinLeaf(t *testing.T) {
	sp, rows, labels := plantedConcept(t, 200)
	tree, err := Train(sp, rows, labels, nil, Options{MinLeaf: 50})
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Leaf {
			if n.Weight < 50 {
				t.Errorf("leaf with weight %.0f < MinLeaf", n.Weight)
			}
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(tree.Root)
}

func TestPureInputMakesLeaf(t *testing.T) {
	sp, rows, _ := plantedConcept(t, 100)
	all := make([]bool, len(rows))
	for i := range all {
		all[i] = true
	}
	tree, err := Train(sp, rows, all, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.Leaf || !tree.Root.Positive || tree.Root.Purity != 1 {
		t.Errorf("pure input should be a single positive leaf: %+v", tree.Root)
	}
	// TRUE path (root leaf) is excluded from PositivePaths' predicates?
	// No: a root-leaf path is the TRUE predicate; callers filter it.
	paths := tree.PositivePaths()
	if len(paths) != 1 || !paths[0].Pred.IsTrue() {
		t.Errorf("paths: %+v", paths)
	}
}

func TestWeightsBias(t *testing.T) {
	// Upweighting the positives of a weak concept should flip leaves.
	sp, rows, labels := plantedConcept(t, 300)
	weights := make([]float64, len(rows))
	for i := range weights {
		if labels[i] {
			weights[i] = 10
		} else {
			weights[i] = 0.1
		}
	}
	tree, err := Train(sp, rows, labels, weights, Options{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.TrainAccuracy < 0.9 {
		t.Errorf("weighted accuracy %.2f", tree.TrainAccuracy)
	}
}

func TestTrainErrors(t *testing.T) {
	sp, rows, labels := plantedConcept(t, 10)
	if _, err := Train(sp, nil, nil, nil, Options{}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Train(sp, rows, labels[:5], nil, Options{}); err == nil {
		t.Error("label mismatch accepted")
	}
	if _, err := Train(sp, rows, labels, []float64{1}, Options{}); err == nil {
		t.Error("weight mismatch accepted")
	}
}

func TestParseCriterion(t *testing.T) {
	cases := map[string]Criterion{
		"gini": Gini, "entropy": Entropy, "infogain": Entropy,
		"gainratio": GainRatio, "GAIN_RATIO": GainRatio,
	}
	for s, want := range cases {
		got, err := ParseCriterion(s)
		if err != nil || got != want {
			t.Errorf("ParseCriterion(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseCriterion("bogus"); err == nil {
		t.Error("bogus criterion accepted")
	}
}

func TestNumNodes(t *testing.T) {
	sp, rows, labels := plantedConcept(t, 300)
	tree, err := Train(sp, rows, labels, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumNodes() < 3 {
		t.Errorf("suspiciously small tree: %d nodes", tree.NumNodes())
	}
	if tree.String() == "" {
		t.Error("empty rendering")
	}
}

// TestPredictRowAfterAppend is a regression test: the typed column
// views are bound at Train time, so classifying a row appended to the
// table afterwards must fall back to the live column read instead of
// indexing past the bound slices.
func TestPredictRowAfterAppend(t *testing.T) {
	sp, rows, labels := plantedConcept(t, 600)
	tree, err := Train(sp, rows, labels, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pos := sp.Table.MustAppendRow(engine.NewInt(1), engine.NewFloat(2.25), engine.NewString("LAB"))
	neg := sp.Table.MustAppendRow(engine.NewInt(2), engine.NewFloat(2.75), engine.NewString("ROOF"))
	if !tree.PredictRow(pos) {
		t.Error("appended positive row misclassified")
	}
	if tree.PredictRow(neg) {
		t.Error("appended negative row misclassified")
	}
}
