package dtree

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/feature"
)

func benchFixture(b *testing.B, n int) (*feature.Space, []int, []bool) {
	b.Helper()
	tbl := engine.MustNewTable("t", engine.NewSchema(
		"mote", engine.TInt, "volt", engine.TFloat, "hum", engine.TFloat, "city", engine.TString))
	rng := rand.New(rand.NewSource(11))
	rows := make([]int, 0, n)
	labels := make([]bool, 0, n)
	cities := []string{"A", "B", "C", "D"}
	for i := 0; i < n; i++ {
		volt := 2.2 + rng.Float64()*0.6
		city := cities[rng.Intn(4)]
		pos := volt <= 2.4 && city == "A"
		id := tbl.MustAppendRow(
			engine.NewInt(rng.Int63n(54)),
			engine.NewFloat(volt),
			engine.NewFloat(30+rng.NormFloat64()*5),
			engine.NewString(city))
		rows = append(rows, id)
		labels = append(labels, pos)
	}
	return feature.NewSpace(tbl, feature.Options{}), rows, labels
}

// BenchmarkTrain measures one tree induction per criterion — the
// Predicate Enumerator runs several of these per Debug call.
func BenchmarkTrain(b *testing.B) {
	sp, rows, labels := benchFixture(b, 16_000)
	for _, crit := range []Criterion{Gini, Entropy, GainRatio} {
		crit := crit
		b.Run(crit.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Train(sp, rows, labels, nil, Options{Criterion: crit}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTrainScaling(b *testing.B) {
	for _, n := range []int{4_000, 16_000, 64_000} {
		n := n
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			sp, rows, labels := benchFixture(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Train(sp, rows, labels, nil, Options{}); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(n))
		})
	}
}
