// Package dtree implements the Predicate Enumerator's decision tree
// learner: a CART-style binary tree over mixed numeric/categorical
// attributes with selectable splitting criteria — gini impurity,
// information gain (entropy), and gain ratio — exactly the "m standard
// splitting and pruning strategies" the paper uses to construct several
// trees per candidate dataset.
//
// Each candidate dataset Dᶜᵢ is labeled positive against F − Dᶜᵢ; the
// root-to-leaf paths of positive-majority leaves convert to conjunctive
// predicates (internal/predicate) that become candidate explanations.
package dtree

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/feature"
	"repro/internal/predicate"
)

// Criterion selects the split quality measure.
type Criterion int

// Split criteria.
const (
	Gini Criterion = iota
	Entropy
	GainRatio
)

// String returns the criterion name.
func (c Criterion) String() string {
	switch c {
	case Gini:
		return "gini"
	case Entropy:
		return "entropy"
	case GainRatio:
		return "gainratio"
	default:
		return fmt.Sprintf("criterion(%d)", int(c))
	}
}

// ParseCriterion parses a criterion name.
func ParseCriterion(s string) (Criterion, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "gini":
		return Gini, nil
	case "entropy", "infogain", "information":
		return Entropy, nil
	case "gainratio", "gain_ratio":
		return GainRatio, nil
	default:
		return Gini, fmt.Errorf("dtree: unknown criterion %q", s)
	}
}

// Options configures training.
type Options struct {
	Criterion Criterion
	// MaxDepth bounds tree depth (default 4 — explanations must stay
	// human-readable; the paper penalizes long predicates anyway).
	MaxDepth int
	// MinLeaf is the minimum (weighted) examples per leaf (default 5).
	MinLeaf float64
	// MinGain prunes splits whose quality improvement is below this
	// (default 1e-4).
	MinGain float64
	// MinPurity is the positive fraction a leaf needs to emit a
	// predicate (default 0.6).
	MinPurity float64
}

func (o *Options) defaults() {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 4
	}
	if o.MinLeaf <= 0 {
		o.MinLeaf = 5
	}
	if o.MinGain <= 0 {
		o.MinGain = 1e-4
	}
	if o.MinPurity <= 0 {
		o.MinPurity = 0.6
	}
}

// Split is an internal node's test. Numeric: value <= Threshold goes
// left. Categorical: value == Val goes left.
type Split struct {
	AttrIdx   int
	Numeric   bool
	Threshold float64
	Val       engine.Value
	// code is Val's dictionary code in the attribute's column, letting
	// categorical routing compare int32s instead of boxed values.
	code int32
}

// Node is one tree node.
type Node struct {
	// Leaf fields.
	Leaf     bool
	Positive bool    // majority class
	Purity   float64 // positive fraction
	Weight   float64 // weighted examples reaching the node
	N        int     // unweighted examples

	// Internal fields.
	Split       Split
	Left, Right *Node
}

// Tree is a trained decision tree.
type Tree struct {
	Root  *Node
	Space *feature.Space
	Opt   Options
	// TrainAccuracy is the weighted accuracy on the training set.
	TrainAccuracy float64
	nodes         int

	// Typed column views (from the engine's shared cache), parallel to
	// Space.Attrs: split search and row routing stream over flat
	// float64/code slices instead of boxed Values.
	fviews []*engine.FloatView
	dviews []*engine.DictView
	// attrCodes[ai][vi] is the dictionary code of Space.Attrs[ai].Values[vi]
	// (-1 when the value does not occur in the column).
	attrCodes [][]int32
	// attrSlots[ai][code] maps a dictionary code back to its position in
	// Space.Attrs[ai].Values (-1 for codes outside the attribute's
	// capped value set), so split search accumulates into arrays sized
	// by MaxCategories rather than the column's full cardinality.
	attrSlots [][]int32
	// buckets[ai][i] is population position i's threshold bucket for
	// numeric attribute ai (sort.SearchFloat64s over the attribute's
	// thresholds; the last bucket holds NULL/NaN and above-all values).
	// A row's bucket never changes across nodes, so it is computed once
	// per training run instead of once per node visit.
	buckets [][]int16
	// Per-tree segment readers over the views, live only while Train
	// runs: on out-of-core tables the views' per-row V/CodeAt pin a
	// chunk transiently per call, which degrades to re-decoding the
	// chunk per row once it exceeds the pool budget. The readers hold
	// one pin per attribute instead. Closed (and nil'd) at the end of
	// Train so trained trees hold no pins; post-Train routing falls
	// back to the views.
	fcur []*engine.FloatReader
	dcur []*engine.DictReader
}

// bindViews resolves the typed views of every attribute column once per
// training run.
func (t *Tree) bindViews() {
	sp := t.Space
	t.fviews = make([]*engine.FloatView, len(sp.Attrs))
	t.dviews = make([]*engine.DictView, len(sp.Attrs))
	t.fcur = make([]*engine.FloatReader, len(sp.Attrs))
	t.dcur = make([]*engine.DictReader, len(sp.Attrs))
	t.attrCodes = make([][]int32, len(sp.Attrs))
	t.attrSlots = make([][]int32, len(sp.Attrs))
	for ai := range sp.Attrs {
		attr := &sp.Attrs[ai]
		switch attr.Kind {
		case feature.Numeric:
			if fv := sp.Table.FloatView(attr.Col); fv != nil {
				t.fviews[ai] = fv
				t.fcur[ai] = fv.NewReader()
			}
		case feature.Categorical:
			dv := sp.Table.DictView(attr.Col)
			t.dviews[ai] = dv
			if dv != nil {
				t.dcur[ai] = dv.NewReader()
				codes := make([]int32, len(attr.Values))
				slots := make([]int32, dv.NumValues())
				for i := range slots {
					slots[i] = -1
				}
				for vi, v := range attr.Values {
					codes[vi] = dv.Code(v.Str())
					if codes[vi] >= 0 {
						slots[codes[vi]] = int32(vi)
					}
				}
				t.attrCodes[ai] = codes
				t.attrSlots[ai] = slots
			}
		}
	}
}

// closeReaders releases every training-time segment pin and drops the
// readers, switching row routing back to the plain views. Deferred
// from Train so pins release even when a chunk load panics.
func (t *Tree) closeReaders() {
	for _, r := range t.fcur {
		if r != nil {
			r.Close()
		}
	}
	for _, r := range t.dcur {
		if r != nil {
			r.Close()
		}
	}
	t.fcur, t.dcur = nil, nil
}

// NumNodes returns the node count.
func (t *Tree) NumNodes() int { return t.nodes }

// Train fits a tree on the population rows (ids into sp.Table) with
// labels and optional weights (nil means uniform).
func Train(sp *feature.Space, rows []int, labels []bool, weights []float64, opt Options) (*Tree, error) {
	opt.defaults()
	if len(rows) == 0 || len(labels) != len(rows) {
		return nil, fmt.Errorf("dtree: %d rows with %d labels", len(rows), len(labels))
	}
	if weights == nil {
		weights = make([]float64, len(rows))
		for i := range weights {
			weights[i] = 1
		}
	} else if len(weights) != len(rows) {
		return nil, fmt.Errorf("dtree: %d rows with %d weights", len(rows), len(weights))
	}
	tr := &Tree{Space: sp, Opt: opt}
	tr.bindViews()
	defer tr.closeReaders()
	tr.bucketize(rows)
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	tr.Root = tr.build(rows, labels, weights, idx, 0)

	// Training accuracy.
	var correct, total float64
	for i := range rows {
		if tr.PredictRow(rows[i]) == labels[i] {
			correct += weights[i]
		}
		total += weights[i]
	}
	if total > 0 {
		tr.TrainAccuracy = correct / total
	}
	return tr, nil
}

// bucketize precomputes, once per training run, each population
// position's threshold bucket for every numeric attribute. bestSplit's
// per-node pass then indexes an int16 slice instead of re-running a
// binary search (and NaN test) for every row at every node.
func (t *Tree) bucketize(rows []int) {
	sp := t.Space
	t.buckets = make([][]int16, len(sp.Attrs))
	for ai := range sp.Attrs {
		attr := &sp.Attrs[ai]
		ths := attr.Thresholds
		if attr.Kind != feature.Numeric || len(ths) == 0 || len(ths) >= 1<<15 {
			continue
		}
		b := make([]int16, len(rows))
		if fr := t.fcur[ai]; fr != nil {
			for i, r := range rows {
				k := len(ths)
				if f := fr.V(r); !math.IsNaN(f) {
					k = sort.SearchFloat64s(ths, f)
				}
				b[i] = int16(k)
			}
		} else {
			for i, r := range rows {
				k := len(ths)
				if v := sp.Table.Value(r, attr.Col); !v.IsNull() {
					if f := v.Float(); !math.IsNaN(f) {
						k = sort.SearchFloat64s(ths, f)
					}
				}
				b[i] = int16(k)
			}
		}
		t.buckets[ai] = b
	}
}

// counts returns (posW, totW, n) over idx.
func counts(labels []bool, weights []float64, idx []int) (posW, totW float64, n int) {
	for _, i := range idx {
		totW += weights[i]
		if labels[i] {
			posW += weights[i]
		}
		n++
	}
	return
}

func impurity(crit Criterion, posW, totW float64) float64 {
	if totW == 0 {
		return 0
	}
	p := posW / totW
	switch crit {
	case Gini:
		return 2 * p * (1 - p)
	default: // Entropy and GainRatio both use entropy for child impurity
		return entropyOf(p)
	}
}

func entropyOf(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

func (t *Tree) leaf(labels []bool, weights []float64, idx []int) *Node {
	posW, totW, n := counts(labels, weights, idx)
	t.nodes++
	purity := 0.0
	if totW > 0 {
		purity = posW / totW
	}
	return &Node{Leaf: true, Positive: purity >= 0.5, Purity: purity, Weight: totW, N: n}
}

func (t *Tree) build(rows []int, labels []bool, weights []float64, idx []int, depth int) *Node {
	posW, totW, _ := counts(labels, weights, idx)
	if depth >= t.Opt.MaxDepth || totW < 2*t.Opt.MinLeaf || posW == 0 || posW == totW {
		return t.leaf(labels, weights, idx)
	}

	parentImp := impurity(t.Opt.Criterion, posW, totW)
	best, ok := t.bestSplit(rows, labels, weights, idx, parentImp, totW)
	if !ok {
		return t.leaf(labels, weights, idx)
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if t.goesLeft(best, rows[i]) {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return t.leaf(labels, weights, idx)
	}
	t.nodes++
	node := &Node{Split: best, Weight: totW, N: len(idx), Purity: posW / totW}
	node.Left = t.build(rows, labels, weights, leftIdx, depth+1)
	node.Right = t.build(rows, labels, weights, rightIdx, depth+1)

	// Collapse: if both children are leaves with the same class, the
	// split bought nothing human-readable.
	if node.Left.Leaf && node.Right.Leaf && node.Left.Positive == node.Right.Positive {
		return t.leaf(labels, weights, idx)
	}
	return node
}

// bestSplit scans the space's selector vocabulary. For each attribute it
// makes a single pass over the node's rows, bucketing weighted counts so
// every threshold/value of the attribute is scored from prefix sums —
// O(rows × attrs + splits) per node instead of O(rows × splits).
func (t *Tree) bestSplit(rows []int, labels []bool, weights []float64, idx []int, parentImp, totW float64) (Split, bool) {
	var best Split
	bestScore := t.Opt.MinGain
	found := false
	var totPos float64
	for _, i := range idx {
		if labels[i] {
			totPos += weights[i]
		}
	}

	consider := func(s Split, lPos, lTot float64) {
		rTot := totW - lTot
		rPos := totPos - lPos
		if lTot < t.Opt.MinLeaf || rTot < t.Opt.MinLeaf {
			return
		}
		childImp := (lTot*impurity(t.Opt.Criterion, lPos, lTot) + rTot*impurity(t.Opt.Criterion, rPos, rTot)) / totW
		gain := parentImp - childImp
		score := gain
		if t.Opt.Criterion == GainRatio {
			splitInfo := entropyOf(lTot / totW)
			if splitInfo < 1e-9 {
				return
			}
			score = gain / splitInfo
		}
		if score > bestScore {
			bestScore = score
			best = s
			found = true
		}
	}

	for ai := range t.Space.Attrs {
		attr := &t.Space.Attrs[ai]
		switch attr.Kind {
		case feature.Numeric:
			ths := attr.Thresholds
			if len(ths) == 0 {
				continue
			}
			// bucket[k] accumulates rows whose value v satisfies
			// ths[k-1] < v <= ths[k] (bucket 0: v <= ths[0]; bucket
			// len(ths): v > last or NULL/NaN → always right).
			bTot := make([]float64, len(ths)+1)
			bPos := make([]float64, len(ths)+1)
			if bk := t.buckets[ai]; bk != nil {
				// Precomputed path: the bucket of every population
				// position was resolved once in bucketize.
				for _, i := range idx {
					bTot[bk[i]] += weights[i]
					if labels[i] {
						bPos[bk[i]] += weights[i]
					}
				}
			} else if fr := t.fcur[ai]; fr != nil {
				// Typed fast path: stream the flat float column through
				// the segment-pinned reader.
				for _, i := range idx {
					r := rows[i]
					k := len(ths)
					if f := fr.V(r); !math.IsNaN(f) {
						k = sort.SearchFloat64s(ths, f) // first th >= f
					}
					bTot[k] += weights[i]
					if labels[i] {
						bPos[k] += weights[i]
					}
				}
			} else {
				for _, i := range idx {
					v := t.Space.Table.Value(rows[i], attr.Col)
					k := len(ths)
					if !v.IsNull() {
						f := v.Float()
						if !math.IsNaN(f) {
							k = sort.SearchFloat64s(ths, f)
						}
					}
					bTot[k] += weights[i]
					if labels[i] {
						bPos[k] += weights[i]
					}
				}
			}
			var lTot, lPos float64
			for k, th := range ths {
				lTot += bTot[k]
				lPos += bPos[k]
				consider(Split{AttrIdx: ai, Numeric: true, Threshold: th}, lPos, lTot)
			}
		case feature.Categorical:
			if len(attr.Values) == 0 {
				continue
			}
			if dr := t.dcur[ai]; dr != nil {
				// Typed fast path: accumulate per attribute-value slot
				// (≤ MaxCategories), not per full-dictionary code, so
				// high-cardinality columns don't inflate per-node work.
				slots := t.attrSlots[ai]
				cTot := make([]float64, len(attr.Values))
				cPos := make([]float64, len(attr.Values))
				for _, i := range idx {
					code := dr.CodeAt(rows[i])
					if code < 0 {
						continue
					}
					slot := slots[code]
					if slot < 0 {
						continue // value outside the capped selector set
					}
					cTot[slot] += weights[i]
					if labels[i] {
						cPos[slot] += weights[i]
					}
				}
				for vi, v := range attr.Values {
					code := t.attrCodes[ai][vi]
					if code < 0 {
						continue // value absent from the column: zero counts
					}
					consider(Split{AttrIdx: ai, Val: v, code: code}, cPos[vi], cTot[vi])
				}
				continue
			}
			cTot := make(map[string]float64, len(attr.Values))
			cPos := make(map[string]float64, len(attr.Values))
			for _, i := range idx {
				v := t.Space.Table.Value(rows[i], attr.Col)
				if v.IsNull() {
					continue
				}
				k := v.Key()
				cTot[k] += weights[i]
				if labels[i] {
					cPos[k] += weights[i]
				}
			}
			for _, v := range attr.Values {
				k := v.Key()
				consider(Split{AttrIdx: ai, Val: v}, cPos[k], cTot[k])
			}
		}
	}
	return best, found
}

func splitGoesLeft(sp *feature.Space, s Split, row int) bool {
	attr := &sp.Attrs[s.AttrIdx]
	v := sp.Table.Value(row, attr.Col)
	if v.IsNull() {
		return false
	}
	if s.Numeric {
		f := v.Float()
		return !math.IsNaN(f) && f <= s.Threshold
	}
	return engine.Equal(v, s.Val)
}

// goesLeft routes one row through a split using the typed views, with
// the boxed splitGoesLeft as fallback.
func (t *Tree) goesLeft(s Split, row int) bool {
	if s.AttrIdx >= len(t.fviews) { // tree built without bindViews
		return splitGoesLeft(t.Space, s, row)
	}
	// Views are bound at Train time; a row appended to the table since
	// then is past their length and falls back to the live column read.
	// While Train runs, reads go through the segment-pinned readers;
	// afterwards (readers closed) they use the views directly.
	if s.Numeric {
		if fv := t.fviews[s.AttrIdx]; fv != nil && row < fv.Len() {
			var f float64
			if t.fcur != nil && t.fcur[s.AttrIdx] != nil {
				f = t.fcur[s.AttrIdx].V(row)
			} else {
				f = fv.V(row) // NULL is stored as NaN and routes right
			}
			return !math.IsNaN(f) && f <= s.Threshold
		}
	} else if dv := t.dviews[s.AttrIdx]; dv != nil && row < dv.Len() {
		var code int32
		if t.dcur != nil && t.dcur[s.AttrIdx] != nil {
			code = t.dcur[s.AttrIdx].CodeAt(row)
		} else {
			code = dv.CodeAt(row)
		}
		return code >= 0 && code == s.code
	}
	return splitGoesLeft(t.Space, s, row)
}

// PredictRow classifies one table row.
func (t *Tree) PredictRow(row int) bool {
	n := t.Root
	for !n.Leaf {
		if t.goesLeft(n.Split, row) {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Positive
}

// LeafPredicate describes one positive leaf as a predicate.
type LeafPredicate struct {
	Pred   predicate.Predicate
	Purity float64
	Weight float64
	N      int
}

// PositivePaths extracts the root-to-leaf conjunctions of every leaf
// whose positive purity is at least the tree's MinPurity, best purity
// first. Paths simplify (x<=5 AND x<=3 → x<=3) before returning; paths
// that simplify to contradictions are dropped.
func (t *Tree) PositivePaths() []LeafPredicate {
	var out []LeafPredicate
	var walk func(n *Node, p predicate.Predicate)
	walk = func(n *Node, p predicate.Predicate) {
		if n.Leaf {
			if n.Positive && n.Purity >= t.Opt.MinPurity {
				simplified, ok := p.Simplify()
				if ok {
					out = append(out, LeafPredicate{Pred: simplified, Purity: n.Purity, Weight: n.Weight, N: n.N})
				}
			}
			return
		}
		attr := &t.Space.Attrs[n.Split.AttrIdx]
		if n.Split.Numeric {
			tv := thresholdValue(attr, n.Split.Threshold)
			walk(n.Left, p.And(predicate.Clause{Col: attr.Name, Op: predicate.OpLe, Val: tv}))
			walk(n.Right, p.And(predicate.Clause{Col: attr.Name, Op: predicate.OpGt, Val: tv}))
		} else {
			walk(n.Left, p.And(predicate.Clause{Col: attr.Name, Op: predicate.OpEq, Val: n.Split.Val}))
			walk(n.Right, p.And(predicate.Clause{Col: attr.Name, Op: predicate.OpNeq, Val: n.Split.Val}))
		}
	}
	walk(t.Root, predicate.Predicate{})
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Purity != out[j].Purity {
			return out[i].Purity > out[j].Purity
		}
		return out[i].Weight > out[j].Weight
	})
	return out
}

func thresholdValue(attr *feature.Attr, th float64) engine.Value {
	if attr.Type == engine.TInt && th == math.Trunc(th) {
		return engine.NewInt(int64(th))
	}
	if attr.Type == engine.TTime {
		return engine.NewTimeUnix(int64(th))
	}
	return engine.NewFloat(th)
}

// String renders the tree for debugging.
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(n *Node, indent string)
	walk = func(n *Node, indent string) {
		if n.Leaf {
			fmt.Fprintf(&b, "%sleaf pos=%v purity=%.2f n=%d\n", indent, n.Positive, n.Purity, n.N)
			return
		}
		attr := &t.Space.Attrs[n.Split.AttrIdx]
		if n.Split.Numeric {
			fmt.Fprintf(&b, "%s%s <= %g?\n", indent, attr.Name, n.Split.Threshold)
		} else {
			fmt.Fprintf(&b, "%s%s = %s?\n", indent, attr.Name, n.Split.Val.SQL())
		}
		walk(n.Left, indent+"  ")
		walk(n.Right, indent+"  ")
	}
	walk(t.Root, "")
	return b.String()
}
