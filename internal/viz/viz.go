// Package viz renders the dashboard's scatterplots as SVG (for the web
// frontend and figure regeneration) and as ASCII (for the CLI and the
// experiments harness, which prints paper figures into the terminal).
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Point is one plotted mark.
type Point struct {
	X, Y float64
	// Class selects the mark style: 0 normal, 1 highlighted/suspect,
	// 2 secondary series.
	Class int
}

// Plot is a single scatter/line chart specification.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Points []Point
	// Lines connects consecutive points of each class when true
	// (Figure 7's daily series reads better as a line).
	Lines bool
	// Width and Height are output dimensions: pixels for SVG, runes for
	// ASCII (defaults 720x400 / 100x28).
	Width, Height int
}

func (p *Plot) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, pt := range p.Points {
		if pt.X < xmin {
			xmin = pt.X
		}
		if pt.X > xmax {
			xmax = pt.X
		}
		if pt.Y < ymin {
			ymin = pt.Y
		}
		if pt.Y > ymax {
			ymax = pt.Y
		}
	}
	if len(p.Points) == 0 {
		return 0, 1, 0, 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// 5% padding.
	xpad, ypad := (xmax-xmin)*0.05, (ymax-ymin)*0.05
	return xmin - xpad, xmax + xpad, ymin - ypad, ymax + ypad
}

var svgColors = []string{"#4477aa", "#ee6677", "#228833"}

// SVG renders the plot as a standalone SVG document.
func (p *Plot) SVG() string {
	w, h := p.Width, p.Height
	if w <= 0 {
		w = 720
	}
	if h <= 0 {
		h = 400
	}
	const mL, mR, mT, mB = 60, 15, 30, 40
	plotW, plotH := float64(w-mL-mR), float64(h-mT-mB)
	xmin, xmax, ymin, ymax := p.bounds()
	sx := func(x float64) float64 { return float64(mL) + (x-xmin)/(xmax-xmin)*plotW }
	sy := func(y float64) float64 { return float64(mT) + (1-(y-ymin)/(ymax-ymin))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`, mL, h-mB, w-mR, h-mB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`, mL, mT, mL, h-mB)
	// Ticks.
	for i := 0; i <= 5; i++ {
		xv := xmin + (xmax-xmin)*float64(i)/5
		yv := ymin + (ymax-ymin)*float64(i)/5
		fmt.Fprintf(&b, `<text x="%.0f" y="%d" font-size="10" text-anchor="middle" fill="#555">%s</text>`,
			sx(xv), h-mB+14, trimNum(xv))
		fmt.Fprintf(&b, `<text x="%d" y="%.0f" font-size="10" text-anchor="end" fill="#555">%s</text>`,
			mL-4, sy(yv)+3, trimNum(yv))
		fmt.Fprintf(&b, `<line x1="%.0f" y1="%d" x2="%.0f" y2="%d" stroke="#ccc"/>`, sx(xv), h-mB, sx(xv), h-mB+3)
	}
	// Title and labels.
	if p.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="18" font-size="13" text-anchor="middle" fill="#111">%s</text>`, w/2, escape(p.Title))
	}
	if p.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" text-anchor="middle" fill="#333">%s</text>`, w/2, h-8, escape(p.XLabel))
	}
	if p.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%d" font-size="11" text-anchor="middle" fill="#333" transform="rotate(-90 14 %d)">%s</text>`, h/2, h/2, escape(p.YLabel))
	}
	// Lines per class.
	if p.Lines {
		byClass := map[int][]Point{}
		for _, pt := range p.Points {
			byClass[pt.Class] = append(byClass[pt.Class], pt)
		}
		for cls, pts := range byClass {
			var path strings.Builder
			for i, pt := range pts {
				cmd := "L"
				if i == 0 {
					cmd = "M"
				}
				fmt.Fprintf(&path, "%s%.1f %.1f", cmd, sx(pt.X), sy(pt.Y))
			}
			fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.2"/>`, path.String(), svgColors[cls%len(svgColors)])
		}
	}
	// Marks.
	for _, pt := range p.Points {
		r := 2.2
		if pt.Class == 1 {
			r = 3.2
		}
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" fill-opacity="0.75"/>`,
			sx(pt.X), sy(pt.Y), r, svgColors[pt.Class%len(svgColors)])
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// ASCII renders the plot as a text grid with axes, one character per
// point ('·' normal, '#' highlighted, 'o' secondary).
func (p *Plot) ASCII() string {
	w, h := p.Width, p.Height
	if w <= 0 || w > 400 {
		w = 100
	}
	if h <= 0 || h > 200 {
		h = 24
	}
	xmin, xmax, ymin, ymax := p.bounds()
	grid := make([][]rune, h)
	for i := range grid {
		grid[i] = make([]rune, w)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	marks := []rune{'.', '#', 'o'}
	for _, pt := range p.Points {
		x := int((pt.X - xmin) / (xmax - xmin) * float64(w-1))
		y := int((1 - (pt.Y-ymin)/(ymax-ymin)) * float64(h-1))
		if x < 0 || x >= w || y < 0 || y >= h {
			continue
		}
		m := marks[pt.Class%len(marks)]
		// Highlighted marks win collisions.
		if grid[y][x] == ' ' || m == '#' {
			grid[y][x] = m
		}
	}
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	yLo, yHi := trimNum(ymin), trimNum(ymax)
	for i, row := range grid {
		label := "        "
		if i == 0 {
			label = pad8(yHi)
		} else if i == h-1 {
			label = pad8(yLo)
		}
		b.WriteString(label)
		b.WriteString("|")
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 8) + "+" + strings.Repeat("-", w) + "\n")
	fmt.Fprintf(&b, "%s%s%s\n", strings.Repeat(" ", 9), trimNum(xmin),
		strings.Repeat(" ", maxInt(1, w-len(trimNum(xmin))-len(trimNum(xmax))))+trimNum(xmax))
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "         x: %s   y: %s\n", p.XLabel, p.YLabel)
	}
	return b.String()
}

func trimNum(f float64) string {
	if math.Abs(f) >= 10000 || (math.Abs(f) < 0.01 && f != 0) {
		return fmt.Sprintf("%.3g", f)
	}
	s := fmt.Sprintf("%.2f", f)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

func pad8(s string) string {
	if len(s) >= 8 {
		return s[:8]
	}
	return strings.Repeat(" ", 8-len(s)) + s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}
