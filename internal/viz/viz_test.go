package viz

import (
	"strings"
	"testing"
)

func samplePlot() *Plot {
	return &Plot{
		Title:  "test plot",
		XLabel: "x",
		YLabel: "y",
		Points: []Point{
			{X: 0, Y: 0}, {X: 1, Y: 10, Class: 1}, {X: 2, Y: 5, Class: 2}, {X: 3, Y: 7},
		},
	}
}

func TestSVGWellFormed(t *testing.T) {
	svg := samplePlot().SVG()
	for _, want := range []string{"<svg", "</svg>", "circle", "test plot"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<circle") != 4 {
		t.Errorf("circles: %d", strings.Count(svg, "<circle"))
	}
}

func TestSVGEscapesTitle(t *testing.T) {
	p := samplePlot()
	p.Title = "a < b & c"
	svg := p.SVG()
	if strings.Contains(svg, "a < b & c") {
		t.Error("unescaped title in SVG")
	}
	if !strings.Contains(svg, "a &lt; b &amp; c") {
		t.Error("escaped title missing")
	}
}

func TestSVGLines(t *testing.T) {
	p := samplePlot()
	p.Lines = true
	if !strings.Contains(p.SVG(), "<path") {
		t.Error("line mode missing path")
	}
}

func TestASCIIBasics(t *testing.T) {
	out := samplePlot().ASCII()
	if !strings.Contains(out, "test plot") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "#") {
		t.Error("highlighted mark missing")
	}
	if !strings.Contains(out, "o") {
		t.Error("secondary mark missing")
	}
	if !strings.Contains(out, "x: x   y: y") {
		t.Error("axis labels missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 10 {
		t.Errorf("too few lines: %d", len(lines))
	}
}

func TestEmptyPlot(t *testing.T) {
	p := &Plot{}
	if p.SVG() == "" || p.ASCII() == "" {
		t.Error("empty plot should still render axes")
	}
}

func TestSinglePointNoDivZero(t *testing.T) {
	p := &Plot{Points: []Point{{X: 5, Y: 5}}}
	svg := p.SVG()
	if strings.Contains(svg, "NaN") {
		t.Error("NaN in SVG for degenerate bounds")
	}
	if strings.Contains(p.ASCII(), "NaN") {
		t.Error("NaN in ASCII")
	}
}

func TestHighlightWinsCollision(t *testing.T) {
	p := &Plot{
		Width: 10, Height: 5,
		Points: []Point{{X: 1, Y: 1, Class: 0}, {X: 1, Y: 1, Class: 1}},
	}
	if !strings.Contains(p.ASCII(), "#") {
		t.Error("highlight lost collision")
	}
}

func TestTrimNum(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.5:     "1.5",
		2:       "2",
		-3.25:   "-3.25",
		1234567: "1.23e+06",
	}
	for in, want := range cases {
		if got := trimNum(in); got != want {
			t.Errorf("trimNum(%v) = %q, want %q", in, got, want)
		}
	}
}
