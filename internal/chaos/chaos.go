// Package chaos is the request-lifecycle fault harness. It pins the
// PR's central invariant — cancellation never corrupts carried state —
// the same way the store's crash tests pin durability: not by sampling
// random timings, but by enumerating every failpoint.
//
// The instrument is CancelAfter, a context whose Err() trips Canceled
// on the nth poll. Every cancellable loop in the system (exec's scan
// shards, influence's LOO pass, ranker's scoring pool, core's learner
// stages, the store's pre-WAL gate) polls ctx.Err() at its failpoints,
// so "cancel at the nth poll" lands a cancellation at the nth failpoint
// deterministically — the cancellation twin of FaultFS.FailAt. A first
// run under a counting context that never trips measures how many
// failpoints an operation crosses; the matrix then replays the
// operation once per failpoint and asserts that after each cancelled
// attempt the carried state (cached exec results, debug analyses, the
// published table) is either untouched or fully published: retrying the
// operation uncancelled must produce a result bit-identical to a
// from-scratch oracle.
//
// On top of the matrix, the package's tests run a deadline storm
// (every request must be classified exactly once by the server's
// lifecycle counters) and a concurrent soak mixing ingest, queries,
// debugging and retention with FaultFS faults and random cancellations,
// asserting no goroutine leaks and oracle-identical re-queries.
//
// CancelAfter is poll-driven: code that waits on Done() instead of
// polling Err() will not observe the trip until the next Err() call
// closes the channel. The repo's cancellable loops all poll, which is
// exactly what the harness counts.
package chaos

import (
	"context"
	"sync"
	"time"
)

// Ctx is a deterministic cancellation failpoint (see the package doc).
// It implements context.Context.
type Ctx struct {
	mu        sync.Mutex
	remaining int // polls left before the trip; -1 = never trip
	polls     int
	tripped   bool
	done      chan struct{}
}

// CancelAfter returns a context that reports Canceled on the (n+1)th
// and every later Err() poll — n == 0 cancels the very first failpoint
// an operation crosses.
func CancelAfter(n int) *Ctx {
	return &Ctx{remaining: n, done: make(chan struct{})}
}

// counting returns a context that never trips but counts polls.
func counting() *Ctx {
	return &Ctx{remaining: -1, done: make(chan struct{})}
}

// Err implements context.Context.
func (c *Ctx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.polls++
	if c.tripped {
		return context.Canceled
	}
	if c.remaining == 0 {
		c.tripped = true
		close(c.done)
		return context.Canceled
	}
	if c.remaining > 0 {
		c.remaining--
	}
	return nil
}

// Done implements context.Context; the channel closes when the counter
// trips (inside an Err poll), never spontaneously.
func (c *Ctx) Done() <-chan struct{} { return c.done }

// Deadline implements context.Context: there is none.
func (c *Ctx) Deadline() (time.Time, bool) { return time.Time{}, false }

// Value implements context.Context: there are no values.
func (c *Ctx) Value(any) any { return nil }

// Polls reports how many times Err was called so far.
func (c *Ctx) Polls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.polls
}

// Tripped reports whether the cancellation fired.
func (c *Ctx) Tripped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tripped
}

// CountPolls runs op under a never-cancelling counting context and
// reports how many failpoints it crossed — the size of the matrix a
// test must enumerate. The operation's own result is returned too so
// callers can reuse it as the oracle.
func CountPolls(op func(ctx context.Context) error) (int, error) {
	c := counting()
	err := op(c)
	return c.Polls(), err
}
