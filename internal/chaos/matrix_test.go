package chaos

// The cancellation failpoint matrix: for each carried-state operation,
// measure how many cancellation checkpoints it crosses (CountPolls),
// then replay it once per checkpoint with CancelAfter(k). Every
// cancelled attempt must (a) surface context.Canceled, and (b) leave
// the carried state so intact that an uncancelled retry is
// bit-identical to a from-scratch oracle. This is exhaustive over the
// operation's failpoints the same way the store's recovery matrix is
// exhaustive over its filesystem operations.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/store"
	"repro/internal/testgen"
)

// maxMatrix caps how many failpoints a single case enumerates; beyond
// it the matrix samples evenly. Scan-heavy statements cross one
// checkpoint per 4096 rows per shard, so counts stay small anyway.
const maxMatrix = 64

// matrixPoints returns the failpoint indexes to exercise: all of them
// up to maxMatrix, an even sample beyond.
func matrixPoints(n int) []int {
	if n <= maxMatrix {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, maxMatrix)
	step := float64(n) / float64(maxMatrix)
	for i := 0; i < maxMatrix; i++ {
		out = append(out, int(float64(i)*step))
	}
	return out
}

// resultsEq asserts two exec results have bit-identical output tables.
func resultsEq(t *testing.T, label string, want, got *exec.Result) {
	t.Helper()
	wt, gt := want.Table, got.Table
	if wt.NumRows() != gt.NumRows() || wt.NumCols() != gt.NumCols() {
		t.Fatalf("%s: shape %dx%d vs %dx%d", label, wt.NumRows(), wt.NumCols(), gt.NumRows(), gt.NumCols())
	}
	for r := 0; r < wt.NumRows(); r++ {
		for c := 0; c < wt.NumCols(); c++ {
			if !engine.Equal(wt.Value(r, c), gt.Value(r, c)) {
				t.Fatalf("%s: cell (%d,%d) %v vs %v", label, r, c, wt.Value(r, c), gt.Value(r, c))
			}
		}
	}
	if len(want.Groups) != len(got.Groups) {
		t.Fatalf("%s: %d vs %d groups", label, len(want.Groups), len(got.Groups))
	}
	for i := range want.Groups {
		wl, gl := want.Groups[i].Lineage, got.Groups[i].Lineage
		if len(wl) != len(gl) {
			t.Fatalf("%s: group %d lineage %d vs %d", label, i, len(wl), len(gl))
		}
		for j := range wl {
			if wl[j] != gl[j] {
				t.Fatalf("%s: group %d lineage[%d] %d vs %d", label, i, j, wl[j], gl[j])
			}
		}
	}
}

// TestMatrixRun enumerates cancellation points of a sharded scan: a
// cancelled run returns Canceled and no result; an uncancelled retry
// matches the oracle (scans are read-only, so the pin here is that
// cancellation surfaces and nothing deadlocks or leaks — TestMain's
// leak check covers the suite).
func TestMatrixRun(t *testing.T) {
	seeds := int64(4)
	if testing.Short() {
		seeds = 2
	}
	cases := 0
	for seed := int64(1); seed <= seeds; seed++ {
		rng := rand.New(rand.NewSource(seed * 101))
		tbl := testgen.TableSeg(rng, 9000+rng.Intn(4000), engine.MinSegmentBits)
		stmt := testgen.DebugStmt(rng)
		opts := exec.Options{Shards: 4}
		oracle, err := exec.RunOnWith(tbl, stmt, opts)
		if err != nil {
			continue
		}
		n, err := CountPolls(func(ctx context.Context) error {
			_, err := exec.RunOnWithCtx(ctx, tbl, stmt, opts)
			return err
		})
		if err != nil {
			t.Fatalf("seed %d: counting run failed: %v", seed, err)
		}
		if n == 0 {
			t.Fatalf("seed %d: scan over %d rows crossed no cancellation checkpoints", seed, tbl.NumRows())
		}
		for _, k := range matrixPoints(n) {
			res, err := exec.RunOnWithCtx(CancelAfter(k), tbl, stmt, opts)
			if err == nil {
				t.Fatalf("seed %d k=%d: cancelled run succeeded", seed, k)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("seed %d k=%d: error %v does not wrap Canceled", seed, k, err)
			}
			if res != nil {
				t.Fatalf("seed %d k=%d: cancelled run returned a result", seed, k)
			}
			retry, err := exec.RunOnWithCtx(context.Background(), tbl, stmt, opts)
			if err != nil {
				t.Fatalf("seed %d k=%d: retry failed: %v", seed, k, err)
			}
			resultsEq(t, fmt.Sprintf("seed %d k=%d [%s]", seed, k, stmt.String()), oracle, retry)
			cases++
		}
	}
	minCases := 8
	if testing.Short() {
		minCases = 3
	}
	if cases < minCases {
		t.Fatalf("matrix degenerated: only %d cancelled cases", cases)
	}
}

// TestMatrixAdvance is the heart of the tentpole pin: cancel
// exec.AdvanceCtx at every checkpoint and require the carried result to
// stay reusable — the retry must advance (not be poisoned by the
// half-done attempt) and match the from-scratch oracle bit for bit.
func TestMatrixAdvance(t *testing.T) {
	seeds := int64(6)
	if testing.Short() {
		seeds = 3
	}
	cases := 0
	for seed := int64(1); seed <= seeds; seed++ {
		rng := rand.New(rand.NewSource(seed * 211))
		tbl := testgen.TableSeg(rng, 4000+rng.Intn(3000), engine.MinSegmentBits)
		stmt := testgen.DebugStmt(rng)
		res, err := exec.RunOn(tbl, stmt)
		if err != nil {
			continue
		}
		// A large appended batch pushes the suffix scan across many
		// cancellation checkpoints (one per ctxCheckRows rows).
		grown, err := tbl.AppendBatch(testgen.Batch(rng, 9000+rng.Intn(4000)))
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := exec.RunOnWith(grown, stmt, exec.Options{Shards: 4})
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}

		// Measure the matrix on a throwaway copy: a successful count run
		// claims res as advanced, so rebuild it after.
		n, err := CountPolls(func(ctx context.Context) error {
			_, err := exec.AdvanceCtx(ctx, res, grown)
			return err
		})
		if err != nil {
			t.Fatalf("seed %d: counting advance failed: %v", seed, err)
		}
		for _, k := range matrixPoints(n) {
			// Fresh carried state per trial: Advance claims its input.
			res, err = exec.RunOn(tbl, stmt)
			if err != nil {
				t.Fatalf("seed %d k=%d: base run: %v", seed, k, err)
			}
			adv, cerr := exec.AdvanceCtx(CancelAfter(k), res, grown)
			if cerr == nil {
				// The checkpoint count can shrink slightly across trials
				// (e.g. the fallback path not taken); a success here must
				// still match the oracle.
				resultsEq(t, fmt.Sprintf("seed %d k=%d uncancelled", seed, k), oracle, adv)
				continue
			}
			if !errors.Is(cerr, context.Canceled) {
				t.Fatalf("seed %d k=%d: error %v does not wrap Canceled", seed, k, cerr)
			}
			// The carried res must remain advanceable: the cancelled
			// attempt may have appended scratch past the published
			// lengths but must not have claimed or half-published.
			retry, err := exec.AdvanceCtx(context.Background(), res, grown)
			if err != nil {
				t.Fatalf("seed %d k=%d: retry after cancel failed: %v", seed, k, err)
			}
			resultsEq(t, fmt.Sprintf("seed %d k=%d [%s]", seed, k, stmt.String()), oracle, retry)
			cases++
		}
	}
	minCases := 10
	if testing.Short() {
		minCases = 4
	}
	if cases < minCases {
		t.Fatalf("matrix degenerated: only %d cancelled cases", cases)
	}
}

// debugEq compares the fields of two debug results that pin analysis
// identity: ε, lineage, D', candidate count and the ranked
// explanations with their scores.
func debugEq(t *testing.T, label string, want, got *core.DebugResult) {
	t.Helper()
	if want.Eps != got.Eps && !(math.IsNaN(want.Eps) && math.IsNaN(got.Eps)) {
		t.Fatalf("%s: eps %v vs %v", label, want.Eps, got.Eps)
	}
	if len(want.F) != len(got.F) {
		t.Fatalf("%s: |F| %d vs %d", label, len(want.F), len(got.F))
	}
	for i := range want.F {
		if want.F[i] != got.F[i] {
			t.Fatalf("%s: F[%d] %d vs %d", label, i, want.F[i], got.F[i])
		}
	}
	if len(want.DPrime) != len(got.DPrime) || want.Candidates != got.Candidates {
		t.Fatalf("%s: |D'| %d vs %d, candidates %d vs %d",
			label, len(want.DPrime), len(got.DPrime), want.Candidates, got.Candidates)
	}
	if len(want.Explanations) != len(got.Explanations) {
		t.Fatalf("%s: %d vs %d explanations", label, len(want.Explanations), len(got.Explanations))
	}
	for i := range want.Explanations {
		we, ge := want.Explanations[i], got.Explanations[i]
		if we.Pred.Key() != ge.Pred.Key() {
			t.Fatalf("%s: explanation %d pred %s vs %s", label, i, we.Pred, ge.Pred)
		}
		if we.Score != ge.Score && !(math.IsNaN(we.Score) && math.IsNaN(ge.Score)) {
			t.Fatalf("%s: explanation %d score %v vs %v", label, i, we.Score, ge.Score)
		}
	}
}

// TestMatrixDebugAdvance cancels core.DebugAdvance at every learner
// checkpoint. The carried prev must survive each cancelled attempt:
// retrying uncancelled must produce the same analysis as a from-scratch
// Debug over an independently executed fresh result.
func TestMatrixDebugAdvance(t *testing.T) {
	seeds := int64(5)
	if testing.Short() {
		seeds = 2
	}
	cases := 0
	for seed := int64(1); seed <= seeds; seed++ {
		rng := rand.New(rand.NewSource(seed * 317))
		tbl := testgen.TableSeg(rng, 150+rng.Intn(150), engine.MinSegmentBits)
		stmt := testgen.DebugStmt(rng)
		res, err := exec.RunOn(tbl, stmt)
		if err != nil {
			continue
		}
		suspect := testgen.Suspects(rng, res)
		if len(suspect) == 0 {
			continue
		}
		metric := testgen.Metric(rng)
		opt := core.Options{DriftThreshold: -1} // always re-expand: maximum carried machinery
		prev, err := core.Debug(core.DebugRequest{
			Result: res, AggItem: -1, Suspect: suspect, Metric: metric, Opt: opt,
		})
		if err != nil {
			continue
		}

		grown, err := tbl.AppendBatch(testgen.Batch(rng, testgen.BoundaryBatchSize(rng, tbl)))
		if err != nil {
			t.Fatal(err)
		}
		advRes, err := exec.Advance(res, grown)
		if err != nil {
			t.Fatalf("seed %d: Advance: %v", seed, err)
		}
		fresh, err := exec.RunOnWith(grown, stmt, exec.Options{Shards: 4})
		if err != nil {
			t.Fatalf("seed %d: fresh run: %v", seed, err)
		}
		suspect2 := testgen.Suspects(rng, fresh)
		if len(suspect2) == 0 {
			continue
		}
		oracle, oerr := core.Debug(core.DebugRequest{
			Result: fresh, AggItem: -1, Suspect: suspect2, Metric: metric, Opt: opt,
		})

		req := func(ctx context.Context) core.DebugRequest {
			return core.DebugRequest{
				Ctx: ctx, Result: advRes, AggItem: -1, Suspect: suspect2, Metric: metric, Opt: opt,
			}
		}
		n, cntErr := CountPolls(func(ctx context.Context) error {
			_, err := core.DebugAdvance(prev, req(ctx))
			return err
		})
		if (oerr != nil) != (cntErr != nil) {
			t.Fatalf("seed %d: oracle err %v vs advance err %v", seed, oerr, cntErr)
		}
		if oerr != nil {
			continue
		}
		for _, k := range matrixPoints(n) {
			_, cerr := core.DebugAdvance(prev, req(CancelAfter(k)))
			if cerr == nil {
				continue // checkpoint count shrank; nothing cancelled
			}
			if !errors.Is(cerr, context.Canceled) {
				t.Fatalf("seed %d k=%d: error %v does not wrap Canceled", seed, k, cerr)
			}
			retry, err := core.DebugAdvance(prev, req(context.Background()))
			if err != nil {
				t.Fatalf("seed %d k=%d: retry after cancel failed: %v", seed, k, err)
			}
			debugEq(t, fmt.Sprintf("seed %d k=%d [%s]", seed, k, stmt.String()), oracle, retry)
			cases++
		}
	}
	minCases := 10
	if testing.Short() {
		minCases = 3
	}
	if cases < minCases {
		t.Fatalf("matrix degenerated: only %d cancelled cases", cases)
	}
}

// TestMatrixStore cancels store.AppendCtx and RetainCtx at their
// failpoints: a cancelled mutation must acknowledge nothing, publish
// nothing, write nothing — the retry appends the identical batch and a
// restart recovers exactly the acknowledged prefix.
func TestMatrixStore(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	mem := store.NewMemFS()
	st, err := store.Open("/db", store.Options{SyncEvery: 1, FS: mem, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateTable("p", testgen.Schema(), engine.MinSegmentBits); err != nil {
		t.Fatal(err)
	}
	var oracle [][]engine.Value
	appendOK := func(batch [][]engine.Value) {
		t.Helper()
		if _, err := st.AppendCtx(context.Background(), "p", batch); err != nil {
			t.Fatal(err)
		}
		oracle = append(oracle, batch...)
	}
	appendOK(testgen.Batch(rng, 64))

	// Measure the append matrix. The count run also appends, so record
	// its batch in the oracle.
	countBatch := testgen.Batch(rng, 8)
	n, err := CountPolls(func(ctx context.Context) error {
		_, err := st.AppendCtx(ctx, "p", countBatch)
		return err
	})
	if err != nil {
		t.Fatalf("counting append failed: %v", err)
	}
	oracle = append(oracle, countBatch...)
	if n == 0 {
		t.Fatal("AppendCtx crossed no cancellation checkpoints")
	}
	before, err := st.Eng().Table("p")
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		batch := testgen.Batch(rng, 8)
		if _, err := st.AppendCtx(CancelAfter(k), "p", batch); !errors.Is(err, context.Canceled) {
			t.Fatalf("k=%d: cancelled append returned %v", k, err)
		}
		cur, err := st.Eng().Table("p")
		if err != nil {
			t.Fatal(err)
		}
		if cur.Version() != before.Version() || cur.NumRows() != before.NumRows() {
			t.Fatalf("k=%d: cancelled append moved the published table %d(v%d) -> %d(v%d)",
				k, before.NumRows(), before.Version(), cur.NumRows(), cur.Version())
		}
		// The identical batch must append cleanly on retry (no fail-stop,
		// no duplicate WAL record from the cancelled attempt).
		nt, err := st.AppendCtx(context.Background(), "p", batch)
		if err != nil {
			t.Fatalf("k=%d: retry append failed: %v", k, err)
		}
		oracle = append(oracle, batch...)
		before = nt
	}

	// Cancelled retention must not drop anything.
	rowsBefore := before.NumRows()
	if _, _, err := st.RetainCtx(CancelAfter(0), "p", engine.RetentionPolicy{MaxRows: 8}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled retain returned %v", err)
	}
	cur, err := st.Eng().Table("p")
	if err != nil {
		t.Fatal(err)
	}
	if cur.NumRows() != rowsBefore {
		t.Fatalf("cancelled retain dropped rows: %d -> %d", rowsBefore, cur.NumRows())
	}

	// Restart: the disk state after all those cancelled mutations must
	// recover every acknowledged row, nothing else.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open("/db", store.Options{SyncEvery: 1, FS: mem, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	tab, err := st2.Eng().Table("p")
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != len(oracle) {
		t.Fatalf("recovered %d rows, acknowledged %d", tab.NumRows(), len(oracle))
	}
	for r := 0; r < tab.NumRows(); r++ {
		for c := 0; c < tab.NumCols(); c++ {
			if !engine.Equal(tab.Value(r, c), oracle[tab.Base()+r][c]) {
				t.Fatalf("recovered row %d col %d: %v vs %v", r, c, tab.Value(r, c), oracle[tab.Base()+r][c])
			}
		}
	}
}
