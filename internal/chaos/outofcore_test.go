package chaos

// The out-of-core cancellation matrix: run a sharded scan over a
// lazily-attached table behind a deliberately tiny buffer pool, cancel
// it at every cancellation checkpoint, and require that every aborted
// attempt (a) surfaces context.Canceled, (b) leaves ZERO chunks
// pinned — a shard killed between faulting a chunk and finishing its
// range must still release its segment cursors — and (c) leaves the
// table fully usable: an uncancelled retry is bit-identical to the
// fully resident oracle.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/store"
	"repro/internal/testgen"
)

func TestMatrixOutOfCorePins(t *testing.T) {
	quiet := func(string, ...any) {}
	fs := store.NewMemFS()

	rng := rand.New(rand.NewSource(31))
	seedSt, err := store.Open("/db", store.Options{SyncEvery: 1, FS: fs, Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	if err := seedSt.CreateTable("p", testgen.Schema(), engine.MinSegmentBits); err != nil {
		t.Fatal(err)
	}
	rows := make([][]engine.Value, 6000)
	for i := range rows {
		rows[i] = testgen.Row(rng)
	}
	if _, err := seedSt.Append("p", rows); err != nil {
		t.Fatal(err)
	}
	if err := seedSt.Close(); err != nil {
		t.Fatal(err)
	}

	// Resident oracle first, then the out-of-core table under test.
	oracleSt, err := store.Open("/db", store.Options{SyncEvery: 1, FS: fs, Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	oracleTbl, err := oracleSt.Eng().Table("p")
	if err != nil {
		t.Fatal(err)
	}
	if err := oracleSt.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open("/db", store.Options{SyncEvery: 1, FS: fs, Logf: quiet, MaxResidentBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tbl, err := st.Eng().Table("p")
	if err != nil {
		t.Fatal(err)
	}

	opts := exec.Options{Shards: 4}
	cases := 0
	for s := int64(1); s <= 3; s++ {
		stmt := testgen.DebugStmt(rand.New(rand.NewSource(s * 17)))
		oracle, err := exec.RunOnWith(oracleTbl, stmt, opts)
		if err != nil {
			continue
		}
		n, err := CountPolls(func(ctx context.Context) error {
			_, err := exec.RunOnWithCtx(ctx, tbl, stmt, opts)
			return err
		})
		if err != nil {
			t.Fatalf("stmt %d: counting run failed: %v", s, err)
		}
		if got := st.PoolPinned(); got != 0 {
			t.Fatalf("stmt %d: %d chunks pinned after clean run", s, got)
		}
		for _, k := range matrixPoints(n) {
			res, err := exec.RunOnWithCtx(CancelAfter(k), tbl, stmt, opts)
			if err == nil {
				t.Fatalf("stmt %d k=%d: cancelled run succeeded", s, k)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("stmt %d k=%d: error %v does not wrap Canceled", s, k, err)
			}
			if res != nil {
				t.Fatalf("stmt %d k=%d: cancelled run returned a result", s, k)
			}
			if got := st.PoolPinned(); got != 0 {
				t.Fatalf("stmt %d k=%d: cancellation leaked %d pinned chunks", s, k, got)
			}
			retry, err := exec.RunOnWithCtx(context.Background(), tbl, stmt, opts)
			if err != nil {
				t.Fatalf("stmt %d k=%d: retry failed: %v", s, k, err)
			}
			resultsEq(t, fmt.Sprintf("stmt %d k=%d [%s]", s, k, stmt.String()), oracle, retry)
			cases++
		}
	}
	if cases < 3 {
		t.Fatalf("matrix degenerated: only %d cancelled cases", cases)
	}
	stats := st.Stats()
	if stats.Pool == nil || stats.Pool.Misses == 0 {
		t.Fatalf("matrix never faulted a chunk: %+v", stats.Pool)
	}
}
