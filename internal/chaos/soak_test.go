package chaos

// The chaos soak: concurrent ingest, querying, debugging and retention
// against one durable table, with a filesystem fault injected mid-run
// (wedging the table into fail-stop) and a steady drizzle of
// client-side cancellations and tight deadlines. Pins, in order of
// importance:
//
//  1. post-chaos queries through the soaked server — whose sessions
//     advanced incrementally across appends, retention and cancelled
//     requests — are bit-identical to a fresh server's from-scratch
//     run over the same published table;
//  2. no goroutine leaks once the clients stop;
//  3. the lifecycle counters account for every request;
//  4. memory stays bounded (no unbounded buildup of half-cancelled
//     state).

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/leakcheck"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/testgen"
)

// jsonRow draws one JSON-safe row of testgen.Schema (no NaN — JSON
// cannot carry it — and exactly representable floats, so oracle
// comparisons are bit-exact).
func jsonRow(rng *rand.Rand) []any {
	row := make([]any, 5)
	if rng.Float64() < 0.1 {
		row[0] = nil
	} else {
		row[0] = rng.Intn(11) - 5
	}
	row[1] = rng.Intn(4)
	if rng.Float64() < 0.1 {
		row[2] = nil
	} else {
		row[2] = float64(rng.Intn(64)-32) * 0.25
	}
	strs := []string{"a", "b", "c", "", "xy"}
	if rng.Float64() < 0.1 {
		row[3] = nil
	} else {
		row[3] = strs[rng.Intn(len(strs))]
	}
	row[4] = rng.Intn(7200)
	return row
}

func jsonBatch(rng *rand.Rand, k int) [][]any {
	out := make([][]any, k)
	for i := range out {
		out[i] = jsonRow(rng)
	}
	return out
}

// engRow converts one jsonRow to boxed engine values for a direct
// store append (same distribution, same JSON-safety).
func engRow(j []any) []engine.Value {
	row := make([]engine.Value, 5)
	for c, v := range j {
		if v == nil {
			row[c] = engine.Null
			continue
		}
		switch c {
		case 0, 1:
			row[c] = engine.NewInt(int64(v.(int)))
		case 2:
			row[c] = engine.NewFloat(v.(float64))
		case 3:
			row[c] = engine.NewString(v.(string))
		default:
			row[c] = engine.NewTimeUnix(int64(v.(int)))
		}
	}
	return row
}

func TestChaosSoak(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()

	quiet := func(string, ...any) {}
	mem := store.NewMemFS()

	// Seed the stream durably first, then reopen OUT-OF-CORE with a
	// pool far smaller than the seeded segments: every scan during the
	// soak faults chunks through the buffer pool while cancellations
	// and deadlines fire, so a pin leaked on any abort path surfaces at
	// the quiesce check below.
	seedRng := rand.New(rand.NewSource(5))
	seedSt, err := store.Open("/db", store.Options{SyncEvery: 1, FS: mem, Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	if err := seedSt.CreateTable("stream", testgen.Schema(), engine.MinSegmentBits); err != nil {
		t.Fatal(err)
	}
	seed := make([][]engine.Value, 2000)
	for i := range seed {
		seed[i] = engRow(jsonRow(seedRng))
	}
	if _, err := seedSt.Append("stream", seed); err != nil {
		t.Fatal(err)
	}
	if err := seedSt.Close(); err != nil {
		t.Fatal(err)
	}

	ffs := store.NewFaultFS(mem)
	st, err := store.Open("/db", store.Options{SyncEvery: 1, FS: ffs, Logf: quiet, MaxResidentBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(st.Eng())
	srv.AttachStore(st)
	srv.SetLimits(server.Limits{
		MaxHeavy:   3,
		MaxQueue:   4,
		RetryAfter: time.Second,
	})
	ts := httptest.NewServer(srv.Handler())

	const sql = "SELECT j, avg(f) AS a, count(*) AS n FROM stream GROUP BY j"
	duration := 2 * time.Second
	if testing.Short() {
		duration = 600 * time.Millisecond
	}
	stop := time.After(duration)
	done := make(chan struct{})
	go func() {
		<-stop
		close(done)
	}()

	// Wedge the table partway through: some later mutating filesystem
	// operation fails, the store fail-stops, and every append/retention
	// after that must shed with 503 while queries keep serving.
	go func() {
		time.Sleep(duration / 2)
		ffs.FailAt(1, store.FaultError, rand.New(rand.NewSource(99)))
	}()

	var wg sync.WaitGroup
	stopped := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}

	// Ingest workers: append batches, honoring shed responses by
	// pausing briefly (the real client's backoff is exercised separately
	// in cmd/datagen).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*71 + 1))
			for !stopped() {
				status, err := postJSON(ts.URL, "/api/append",
					map[string]any{"table": "stream", "rows": jsonBatch(rng, 50+rng.Intn(200))},
					0, 0)
				if err == nil && status == http.StatusServiceUnavailable {
					time.Sleep(5 * time.Millisecond)
				}
			}
		}(w)
	}
	// Query workers: sticky sessions so results advance incrementally
	// across appends; tight timeouts and client aborts land
	// cancellations at arbitrary points of the scan.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*131 + 7))
			session := string(rune('a' + w))
			for !stopped() {
				var timeout, cancelAfter time.Duration
				if rng.Float64() < 0.3 {
					timeout = time.Duration(1+rng.Intn(3000)) * time.Microsecond
				}
				if rng.Float64() < 0.2 {
					cancelAfter = time.Duration(100+rng.Intn(2000)) * time.Microsecond
				}
				_, _ = postJSON(ts.URL, "/api/query",
					map[string]any{"session": session, "sql": sql}, timeout, cancelAfter)
			}
		}(w)
	}
	// Debug worker: query then debug on its own session, sometimes
	// cancelled mid-analysis.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(17))
		for !stopped() {
			if status, err := postJSON(ts.URL, "/api/query",
				map[string]any{"session": "dbg", "sql": sql}, 0, 0); err != nil || status != http.StatusOK {
				continue
			}
			var cancelAfter time.Duration
			if rng.Float64() < 0.4 {
				cancelAfter = time.Duration(200+rng.Intn(4000)) * time.Microsecond
			}
			_, _ = postJSON(ts.URL, "/api/debug", map[string]any{
				"session": "dbg", "suspect": []int{0}, "aggItem": -1,
				"metric": "toohigh", "metricParams": map[string]float64{"c": 0},
			}, 0, cancelAfter)
		}
	}()
	// Retention worker: periodically trims the table, racing appends
	// and the carried sessions' advances.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stopped() {
			time.Sleep(50 * time.Millisecond)
			_, _ = postJSON(ts.URL, "/api/retention",
				map[string]any{"table": "stream", "max_rows": 4000}, 0, 0)
		}
	}()

	wg.Wait()

	// Pin 3: the books balance for every endpoint.
	eps := fetchEndpoints(t, ts.URL)
	for name, c := range eps {
		if name == "stats" {
			continue
		}
		if c.Total != c.Completed+c.Shed+c.Deadline+c.Cancelled {
			t.Errorf("%s: total %d != completed %d + shed %d + deadline %d + cancelled %d",
				name, c.Total, c.Completed, c.Shed, c.Deadline, c.Cancelled)
		}
		if c.InFlight != 0 {
			t.Errorf("%s: %d in flight after the soak", name, c.InFlight)
		}
	}
	t.Logf("soak counters: query %+v append %+v debug %+v retention %+v",
		eps["query"], eps["append"], eps["debug"], eps["retention"])

	// Pin 1: a soaked session's re-query is bit-identical to a fresh
	// server's from-scratch run over the same published table. The
	// soaked sessions advanced through appends, retention rebases and
	// cancelled attempts; any half-published state shows up here.
	type payload struct {
		Rows [][]any `json:"rows"`
	}
	query := func(url, session string) payload {
		t.Helper()
		b, _ := json.Marshal(map[string]any{"session": session, "sql": sql})
		resp, err := http.Post(url+"/api/query", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("final query on %s: status %d", session, resp.StatusCode)
		}
		var p payload
		if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
			t.Fatal(err)
		}
		return p
	}
	fresh := server.New(st.Eng())
	fts := httptest.NewServer(fresh.Handler())
	oracle := query(fts.URL, "oracle")
	for _, session := range []string{"a", "b", "c", "dbg"} {
		got := query(ts.URL, session)
		if !reflect.DeepEqual(oracle.Rows, got.Rows) {
			t.Errorf("session %s diverged from the from-scratch oracle:\noracle: %v\ngot:    %v",
				session, oracle.Rows, got.Rows)
		}
	}
	fts.Close()
	ts.Close()

	// Out-of-core quiesce invariant: with every request drained, no
	// chunk may remain pinned — a query cancelled mid-fault that leaked
	// a pin shows up here as a chunk the pool can never evict — and the
	// soak must actually have exercised the fault path.
	if n := st.PoolPinned(); n != 0 {
		t.Errorf("%d chunks still pinned at quiesce", n)
	}
	if ps := st.Stats().Pool; ps == nil {
		t.Error("out-of-core soak reports no pool stats")
	} else if ps.Misses == 0 {
		t.Errorf("soak never faulted a chunk: %+v", *ps)
	}

	if err := st.Close(); err != nil {
		t.Logf("store close after fail-stop: %v", err) // expected when wedged
	}

	// Pin 2: every worker, scan shard and admission slot came back.
	http.DefaultClient.CloseIdleConnections()
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	if err := leakcheck.Settle(goroutinesBefore, 10*time.Second); err != nil {
		t.Fatalf("goroutine leak after soak: %v", err)
	}

	// Pin 4: memory is bounded — generous ceiling, only meant to catch
	// runaway accumulation of cancelled half-state.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 1<<30 {
		t.Fatalf("heap after soak: %d bytes", ms.HeapAlloc)
	}
}
