package chaos

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain pins the harness's own hygiene: cancelled scans, debugs and
// soak clients must not strand a single goroutine.
func TestMain(m *testing.M) { leakcheck.Main(m) }
