package chaos

// The deadline storm: many concurrent clients with aggressive timeouts
// and client-side cancellations against a server with tight admission
// limits. The pin is accounting: every request the server saw must be
// classified exactly once (total == completed + shed +
// deadline_exceeded + cancelled per endpoint), all admission slots and
// session locks must come back, and the server must still answer a
// plain query afterwards.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/datasets"
	"repro/internal/leakcheck"
	"repro/internal/server"
)

// epStats mirrors the server's per-endpoint counter JSON.
type epStats struct {
	InFlight  int64 `json:"in_flight"`
	Total     int64 `json:"total"`
	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"`
	Deadline  int64 `json:"deadline_exceeded"`
	Cancelled int64 `json:"cancelled"`
}

func fetchEndpoints(t *testing.T, url string) map[string]epStats {
	t.Helper()
	resp, err := http.Get(url + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Endpoints map[string]epStats `json:"endpoints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Endpoints
}

func postJSON(url, path string, body any, timeout time.Duration, cancelAfter time.Duration) (int, error) {
	b, _ := json.Marshal(body)
	ctx := context.Background()
	if cancelAfter > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cancelAfter)
		defer cancel()
	}
	q := ""
	if timeout > 0 {
		q = "?timeout=" + timeout.String()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+path+q, bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var sink [512]byte
	for {
		if _, err := resp.Body.Read(sink[:]); err != nil {
			break
		}
	}
	return resp.StatusCode, nil
}

func TestDeadlineStorm(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()

	db, _ := datasets.FECDB(datasets.FECConfig{Rows: 40_000, Seed: 3})
	srv := server.New(db)
	srv.SetLimits(server.Limits{
		MaxHeavy:   2,
		MaxQueue:   2,
		RetryAfter: time.Second,
	})
	ts := httptest.NewServer(srv.Handler())

	const sql = "SELECT memo, avg(amount) AS a FROM donations GROUP BY memo"
	workers := 16
	perWorker := 8
	if testing.Short() {
		workers, perWorker = 8, 5
	}
	timeouts := []time.Duration{
		1 * time.Nanosecond, // fires before the handler can do anything
		200 * time.Microsecond,
		2 * time.Millisecond,
		0, // class default
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	statusSeen := map[int]int{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 997))
			for i := 0; i < perWorker; i++ {
				timeout := timeouts[rng.Intn(len(timeouts))]
				var cancelAfter time.Duration
				if rng.Float64() < 0.25 {
					// Client-side abort mid-request.
					cancelAfter = time.Duration(100+rng.Intn(3000)) * time.Microsecond
				}
				status, err := postJSON(ts.URL, "/api/query",
					map[string]any{"session": "storm", "sql": sql}, timeout, cancelAfter)
				if err != nil {
					continue // client-side abort; the server classifies it as cancelled
				}
				mu.Lock()
				statusSeen[status]++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	// Quiesce, then audit the books.
	eps := fetchEndpoints(t, ts.URL)
	q := eps["query"]
	t.Logf("storm: statuses %v, query counters %+v", statusSeen, q)
	for name, c := range eps {
		if name == "stats" {
			continue // the stats request observes itself mid-flight
		}
		if c.Total != c.Completed+c.Shed+c.Deadline+c.Cancelled {
			t.Errorf("%s: total %d != completed %d + shed %d + deadline %d + cancelled %d",
				name, c.Total, c.Completed, c.Shed, c.Deadline, c.Cancelled)
		}
		if c.InFlight != 0 {
			t.Errorf("%s: %d in flight after the storm", name, c.InFlight)
		}
	}
	// Every response the clients actually received was counted.
	var delivered int64
	for _, n := range statusSeen {
		delivered += int64(n)
	}
	if q.Total < delivered {
		t.Errorf("query total %d < %d delivered responses", q.Total, delivered)
	}
	// The storm must have actually exercised the deadline path (1ns
	// timeouts guarantee it) and completed some work.
	if q.Deadline == 0 {
		t.Error("no request classified deadline_exceeded under 1ns timeouts")
	}
	if q.Completed == 0 {
		t.Error("no request completed during the storm")
	}

	// The server is still healthy: a plain query succeeds.
	status, err := postJSON(ts.URL, "/api/query", map[string]any{"sql": sql}, 0, 0)
	if err != nil || status != http.StatusOK {
		t.Fatalf("post-storm query: status %d err %v", status, err)
	}

	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	if err := leakcheck.Settle(goroutinesBefore, 10*time.Second); err != nil {
		t.Fatalf("goroutine leak after storm: %v", err)
	}
}

// TestStormShedding pins load shedding with one concurrent pair
// instead of raw hammering (which can serialize entirely on a
// contended CI box): a debug request holds the server's only heavy
// slot for tens of milliseconds while a single client fires sequential
// queries. Sequential queries can never overlap each other, so every
// 429 proves the limiter shed against the in-flight debug; rounds
// retry until at least one overlap materializes.
func TestStormShedding(t *testing.T) {
	db, _ := datasets.FECDB(datasets.FECConfig{Rows: 40_000, Seed: 4})
	srv := server.New(db)
	srv.SetLimits(server.Limits{MaxHeavy: 1, MaxQueue: -1, RetryAfter: time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const sql = "SELECT memo, avg(amount) AS a FROM donations GROUP BY memo"
	// Seed the blocker session's result so its debug can run.
	if status, err := postJSON(ts.URL, "/api/query",
		map[string]any{"session": "blk", "sql": sql}, 0, 0); err != nil || status != http.StatusOK {
		t.Fatalf("seed query: status %d err %v", status, err)
	}

	// The debug may finish before the burst reaches it (or its POST may
	// fail on a stale pooled connection): retry the round until at least
	// one query provably overlapped the held slot.
	sheds, oks := 0, 0
	for round := 0; round < 10 && sheds == 0; round++ {
		done := make(chan struct{})
		go func() {
			defer close(done)
			_, _ = postJSON(ts.URL, "/api/debug", map[string]any{
				"session": "blk", "suspect": []int{0}, "aggItem": -1,
				"metric": "toohigh", "metricParams": map[string]float64{"c": 0},
			}, 0, 0)
		}()
		// Let the debug reach its handler and claim the slot; firing
		// immediately could shed the *debug* against a burst query.
		time.Sleep(3 * time.Millisecond)
	burst:
		for i := 0; ; i++ {
			select {
			case <-done:
				break burst
			default:
			}
			// Raw requests so the Retry-After header is visible on a shed;
			// a distinct session per query keeps every admitted one a full
			// scan rather than a cached-result advance.
			b, _ := json.Marshal(map[string]any{"session": fmt.Sprintf("shed-%d-%d", round, i), "sql": sql})
			resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(b))
			if err != nil {
				t.Fatal(err)
			}
			status := resp.StatusCode
			if status == http.StatusTooManyRequests {
				if got := resp.Header.Get("Retry-After"); got != "1" {
					t.Errorf("shed response Retry-After = %q, want \"1\"", got)
				}
			}
			resp.Body.Close()
			switch status {
			case http.StatusTooManyRequests:
				sheds++
			case http.StatusOK:
				oks++ // legal: the debug finished before this one arrived
			default:
				t.Fatalf("query status %d during the hold", status)
			}
		}
	}
	if sheds == 0 {
		t.Fatalf("no query shed while a debug held the only heavy slot (%d snuck through)", oks)
	}

	// A plain query succeeds now that the slot is free.
	if status, err := postJSON(ts.URL, "/api/query", map[string]any{"sql": sql}, 0, 0); err != nil || status != http.StatusOK {
		t.Fatalf("post-hold query: status %d err %v", status, err)
	}
	eps := fetchEndpoints(t, ts.URL)
	q := eps["query"]
	if q.Shed != int64(sheds) {
		t.Fatalf("shed counter %d != %d observed 429s", q.Shed, sheds)
	}
	if q.Total != q.Completed+q.Shed+q.Deadline+q.Cancelled {
		t.Fatalf("query counters unbalanced: %+v", q)
	}
}
