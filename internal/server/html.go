package server

// dashboardHTML is the embedded single-page dashboard. It mirrors the
// paper's Figure 2 layout: (1) query input form, (2) scatterplot with
// drag-to-select suspect results and zoom into raw tuples, (3) error
// metric form, (4) ranked predicate list with click-to-clean.
const dashboardHTML = `<!doctype html>
<html>
<head>
<meta charset="utf-8">
<title>DBWipes — Clean as You Query</title>
<style>
  body { font-family: system-ui, sans-serif; margin: 0; background: #f5f6f8; color: #1c2330; }
  header { background: #25344d; color: #fff; padding: 10px 18px; font-size: 18px; }
  header span { color: #9fb3d1; font-size: 13px; margin-left: 12px; }
  .wrap { display: flex; gap: 14px; padding: 14px; align-items: flex-start; }
  .left { flex: 2; min-width: 0; }
  .right { flex: 1; max-width: 460px; }
  .card { background: #fff; border: 1px solid #dde3ec; border-radius: 8px; padding: 12px; margin-bottom: 14px; }
  .card h3 { margin: 0 0 8px; font-size: 13px; text-transform: uppercase; letter-spacing: .04em; color: #5a6b85; }
  textarea { width: 100%; box-sizing: border-box; height: 64px; font-family: ui-monospace, monospace; font-size: 13px; border: 1px solid #c8d1de; border-radius: 6px; padding: 8px; }
  button { background: #2e5db3; color: #fff; border: 0; border-radius: 6px; padding: 7px 14px; font-size: 13px; cursor: pointer; margin-right: 6px; margin-top: 6px; }
  button.secondary { background: #68778f; }
  button:disabled { background: #b8c2d2; cursor: default; }
  svg { width: 100%; height: 360px; background: #fff; }
  .pred { border: 1px solid #dde3ec; border-radius: 6px; padding: 8px 10px; margin-bottom: 8px; cursor: pointer; }
  .pred:hover { border-color: #2e5db3; background: #f4f8ff; }
  .pred code { font-size: 12.5px; color: #14315e; }
  .pred .meta { font-size: 11.5px; color: #5a6b85; margin-top: 4px; }
  .bar { height: 5px; background: #e6ebf3; border-radius: 3px; margin-top: 5px; }
  .bar i { display: block; height: 100%; background: #48a463; border-radius: 3px; }
  select, input[type=number] { border: 1px solid #c8d1de; border-radius: 6px; padding: 5px 7px; font-size: 13px; }
  .muted { color: #5a6b85; font-size: 12.5px; }
  .chip { display: inline-block; background: #eef2f8; border: 1px solid #d4dce8; border-radius: 12px; padding: 2px 10px; font-size: 12px; margin: 2px 4px 2px 0; }
  table.zoom { border-collapse: collapse; font-size: 12px; width: 100%; }
  table.zoom th, table.zoom td { border-bottom: 1px solid #e7ebf2; padding: 3px 6px; text-align: left; white-space: nowrap; }
  #status { color: #9a3131; font-size: 13px; min-height: 17px; }
</style>
</head>
<body>
<header>DBWipes <span>Clean as You Query — ranked provenance demo</span></header>
<div class="wrap">
  <div class="left">
    <div class="card">
      <h3>1 · Query</h3>
      <textarea id="sql"></textarea>
      <div>
        <button onclick="runQuery()">Run</button>
        <button class="secondary" onclick="resetClean()">Reset cleaning</button>
        <span id="applied"></span>
      </div>
      <div id="status"></div>
    </div>
    <div class="card">
      <h3>2 · Results — drag to select suspicious groups (S)</h3>
      <div class="muted">y-axis: <select id="ycol"></select>
        <label id="pcaLbl" style="display:none"><input type="checkbox" id="pcaToggle" onchange="drawPlot()"> PCA view</label>
        &nbsp; selected groups: <b id="nsel">0</b>
        <button class="secondary" onclick="zoom()">Zoom into tuples</button></div>
      <svg id="plot"></svg>
    </div>
    <div class="card" id="zoomCard" style="display:none">
      <h3>Zoomed tuples of selected groups — first 200</h3>
      <div class="muted">Suspicious-input condition (D′): <input id="dcond" size="28" placeholder="e.g. temperature > 100"></div>
      <div style="max-height: 260px; overflow:auto"><table class="zoom" id="zoomTable"></table></div>
    </div>
  </div>
  <div class="right">
    <div class="card">
      <h3>3 · Error metric (ε)</h3>
      <div>
        <select id="metric"></select>
        expected value c: <input type="number" id="mc" value="0" step="any" style="width:90px">
      </div>
      <button onclick="debug()">Debug!</button>
      <div class="muted" id="dbginfo"></div>
    </div>
    <div class="card">
      <h3>4 · Ranked predicates — click to clean</h3>
      <div id="preds" class="muted">Run a query, select suspicious results, then Debug.</div>
    </div>
  </div>
</div>
<script>
const S = { data: null, sel: new Set(), metricSpecs: [] };
const $ = id => document.getElementById(id);

async function api(path, body) {
  const r = await fetch(path, { method: 'POST', headers: {'Content-Type':'application/json'}, body: JSON.stringify(body || {}) });
  const j = await r.json();
  if (!r.ok) throw new Error(j.error || r.statusText);
  return j;
}

function setStatus(msg) { $('status').textContent = msg || ''; }

async function init() {
  S.metricSpecs = await (await fetch('/api/metrics')).json();
  const sel = $('metric');
  for (const m of S.metricSpecs) {
    const o = document.createElement('option');
    o.value = m.Name; o.textContent = m.Label + ' (' + m.Name + ')';
    sel.appendChild(o);
  }
  const tables = await (await fetch('/api/tables')).json();
  const names = Object.keys(tables);
  if (names.includes('readings')) {
    $('sql').value = "SELECT bucket(epoch(ts), 1800) AS w30, avg(temperature) AS avg_temp, stddev(temperature) AS std_temp FROM readings GROUP BY bucket(epoch(ts), 1800) ORDER BY w30";
  } else if (names.includes('donations')) {
    $('sql').value = "SELECT day, sum(amount) AS total FROM donations WHERE candidate = 'McCain' GROUP BY day ORDER BY day";
  } else if (names.length) {
    $('sql').value = 'SELECT count(*) FROM ' + names[0];
  }
}

async function runQuery() {
  setStatus('');
  try {
    S.data = await api('/api/query', { sql: $('sql').value });
    S.sel.clear();
    fillYCol();
    drawPlot();
    showApplied();
    $('zoomCard').style.display = 'none';
  } catch (e) { setStatus(e.message); }
}

function showApplied() {
  $('applied').innerHTML = (S.data.applied || []).map(p => '<span class="chip">NOT (' + p + ')</span>').join('');
}

function fillYCol() {
  const sel = $('ycol'); sel.innerHTML = '';
  (S.data.aggCols.length ? S.data.aggCols.map(i => S.data.columns[ S.aggItemIndex(i) ]) : []).length;
  // y choices: every numeric column except the first (x)
  S.data.columns.forEach((c, i) => {
    if (i === 0) return;
    const o = document.createElement('option');
    o.value = i; o.textContent = c;
    sel.appendChild(o);
  });
  sel.onchange = drawPlot;
}
S.aggItemIndex = i => i;

function xyOf(row, yi) {
  let x = row[0];
  if (typeof x === 'string') x = Date.parse(x) / 1000 || 0;
  let y = row[yi];
  if (y == null) y = 0;
  return [x, y];
}

function drawPlot() {
  const svg = $('plot');
  svg.innerHTML = '';
  if (!S.data || !S.data.rows.length) return;
  const yi = +$('ycol').value || 1;
  const W = svg.clientWidth || 600, H = svg.clientHeight || 360, mL=55, mB=28, mT=10, mR=10;
  svg.setAttribute('viewBox', '0 0 ' + W + ' ' + H);
  // PCA view (paper §2.2.1: plot the two largest principal components)
  // when the backend shipped a projection.
  $('pcaLbl').style.display = S.data.pca ? '' : 'none';
  const usePCA = S.data.pca && $('pcaToggle').checked;
  const pts = usePCA
    ? S.data.pca.map((p, i) => ({x: p[0], y: p[1], i}))
    : S.data.rows.map((r, i) => { const [x, y] = xyOf(r, yi); return {x, y, i}; });
  let xmin=Math.min(...pts.map(p=>p.x)), xmax=Math.max(...pts.map(p=>p.x));
  let ymin=Math.min(...pts.map(p=>p.y)), ymax=Math.max(...pts.map(p=>p.y));
  if (xmax===xmin) xmax=xmin+1; if (ymax===ymin) ymax=ymin+1;
  const sx = x => mL + (x-xmin)/(xmax-xmin)*(W-mL-mR);
  const sy = y => mT + (1-(y-ymin)/(ymax-ymin))*(H-mT-mB);
  const ns = 'http://www.w3.org/2000/svg';
  const mk = (tag, attrs) => { const el = document.createElementNS(ns, tag); for (const k in attrs) el.setAttribute(k, attrs[k]); svg.appendChild(el); return el; };
  mk('line', {x1:mL, y1:H-mB, x2:W-mR, y2:H-mB, stroke:'#333'});
  mk('line', {x1:mL, y1:mT, x2:mL, y2:H-mB, stroke:'#333'});
  for (let i=0;i<=4;i++){
    const yv = ymin + (ymax-ymin)*i/4;
    const t = mk('text', {x:mL-6, y:sy(yv)+4, 'font-size':10, 'text-anchor':'end', fill:'#667'});
    t.textContent = (+yv.toFixed(2));
    const xv = xmin + (xmax-xmin)*i/4;
    const tx = mk('text', {x:sx(xv), y:H-mB+14, 'font-size':10, 'text-anchor':'middle', fill:'#667'});
    tx.textContent = (+xv.toFixed(1));
  }
  for (const p of pts) {
    mk('circle', {cx:sx(p.x), cy:sy(p.y), r: S.sel.has(p.i)?4:2.5,
      fill: S.sel.has(p.i) ? '#ee6677' : '#4477aa', 'fill-opacity': .8, 'data-i': p.i});
  }
  // drag-select
  let drag = null, rect = null;
  svg.onmousedown = e => {
    const bb = svg.getBoundingClientRect();
    drag = {x0: (e.clientX-bb.left)*W/bb.width, y0: (e.clientY-bb.top)*H/bb.height};
    rect = mk('rect', {fill:'#ee6677', 'fill-opacity':.15, stroke:'#ee6677'});
  };
  svg.onmousemove = e => {
    if (!drag) return;
    const bb = svg.getBoundingClientRect();
    const x1 = (e.clientX-bb.left)*W/bb.width, y1 = (e.clientY-bb.top)*H/bb.height;
    rect.setAttribute('x', Math.min(drag.x0,x1)); rect.setAttribute('y', Math.min(drag.y0,y1));
    rect.setAttribute('width', Math.abs(x1-drag.x0)); rect.setAttribute('height', Math.abs(y1-drag.y0));
  };
  svg.onmouseup = e => {
    if (!drag) return;
    const bb = svg.getBoundingClientRect();
    const x1 = (e.clientX-bb.left)*W/bb.width, y1 = (e.clientY-bb.top)*H/bb.height;
    const [xa,xb] = [Math.min(drag.x0,x1), Math.max(drag.x0,x1)];
    const [ya,yb] = [Math.min(drag.y0,y1), Math.max(drag.y0,y1)];
    if (xb-xa < 4 && yb-ya < 4) { S.sel.clear(); }
    else {
      for (const p of pts) {
        const px = sx(p.x), py = sy(p.y);
        if (px>=xa && px<=xb && py>=ya && py<=yb) S.sel.add(p.i);
      }
    }
    drag = null; rect.remove();
    $('nsel').textContent = S.sel.size;
    drawPlot();
    suggestMetric();
  };
}

// The paper's dynamic error-metric form: prefill the expected value and
// pick the directional metric matching how the selection deviates.
async function suggestMetric() {
  if (!S.sel.size) return;
  try {
    const j = await api('/api/suggest', { suspect: [...S.sel], aggItem: -1 });
    $('mc').value = +j.suggestedC.toFixed(3);
    if (j.recommended) $('metric').value = j.recommended;
  } catch (e) { /* suggestion is best-effort */ }
}

async function zoom() {
  if (!S.sel.size) { setStatus('select suspicious groups first'); return; }
  try {
    const j = await api('/api/zoom', { suspect: [...S.sel], limit: 200 });
    const tbl = $('zoomTable');
    tbl.innerHTML = '<tr>' + j.columns.map(c => '<th>'+c+'</th>').join('') + '</tr>' +
      j.rows.map(r => '<tr>' + r.map(v => '<td>'+(v==null?'':v)+'</td>').join('') + '</tr>').join('');
    $('zoomCard').style.display = '';
  } catch (e) { setStatus(e.message); }
}

async function debug() {
  if (!S.sel.size) { setStatus('select suspicious groups first'); return; }
  setStatus('');
  $('preds').textContent = 'computing…';
  try {
    const j = await api('/api/debug', {
      suspect: [...S.sel],
      aggItem: -1,
      metric: $('metric').value,
      metricParams: { c: +$('mc').value },
      examplesCond: $('dcond') ? $('dcond').value : ''
    });
    $('dbginfo').textContent = 'ε = ' + j.eps.toFixed(2) + ' over ' + j.lineageSize + ' lineage tuples';
    const div = $('preds');
    div.innerHTML = '';
    if (!j.explanations || !j.explanations.length) { div.textContent = 'no predicates found'; return; }
    j.explanations.forEach((e, i) => {
      const d = document.createElement('div');
      d.className = 'pred';
      d.innerHTML = '<code>' + e.predicate + '</code>' +
        '<div class="meta">score ' + e.score.toFixed(3) + ' · removes ' + Math.round(e.errImprovement*100) +
        '% of ε · ' + e.numTuples + ' tuples · ' + e.origin + '</div>' +
        '<div class="bar"><i style="width:' + Math.round(e.errImprovement*100) + '%"></i></div>';
      d.onclick = () => clean(i);
      div.appendChild(d);
    });
  } catch (e) { $('preds').textContent = ''; setStatus(e.message); }
}

async function clean(i) {
  try {
    S.data = await api('/api/clean', { explanation: i });
    S.sel.clear(); $('nsel').textContent = 0;
    drawPlot(); showApplied();
    setStatus('');
  } catch (e) { setStatus(e.message); }
}

async function resetClean() {
  try {
    const j = await api('/api/reset', {});
    if (j.rows) { S.data = j; S.sel.clear(); drawPlot(); showApplied(); }
  } catch (e) { setStatus(e.message); }
}

init();
</script>
</body>
</html>`
