package server

import (
	"log"
	"net/http"
	"runtime/debug"
)

// withRecovery converts a handler panic into a logged JSON 500 instead
// of killing the connection (and, under http.Server's default
// per-connection recover, silently dropping the response). A panic in
// one request must not look like a network blip to the client or take
// the ingest loop down with it. http.ErrAbortHandler is re-raised: it
// is the sanctioned way to abort a response mid-stream.
func withRecovery(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			log.Printf("server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
			// If the handler already wrote a header this is a no-op
			// superfluous-WriteHeader; the client still sees a torn
			// body, which is the best that can be done post-panic.
			writeJSON(w, http.StatusInternalServerError, map[string]string{
				"error": "internal server error",
			})
		}()
		h.ServeHTTP(w, r)
	})
}
