package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/engine"
)

// segServer builds a server over one minimum-segment table so the
// retention endpoint has segments to drop without megarow fixtures.
func segServer(t *testing.T, rows int) (*httptest.Server, *engine.DB) {
	t.Helper()
	tbl, err := engine.NewTableSeg("m", engine.NewSchema("x", engine.TFloat, "j", engine.TInt), engine.MinSegmentBits)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([][]engine.Value, rows)
	for i := range batch {
		batch[i] = []engine.Value{engine.NewFloat(float64(i)), engine.NewInt(int64(i % 3))}
	}
	tbl, err = tbl.AppendBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewDB()
	db.Register(tbl)
	ts := httptest.NewServer(New(db).Handler())
	t.Cleanup(ts.Close)
	return ts, db
}

func TestRetentionEndpoint(t *testing.T) {
	ts, db := segServer(t, 5*64+10)

	var out struct {
		DroppedSegments  int `json:"dropped_segments"`
		DroppedRows      int `json:"dropped_rows"`
		RetainedSegments int `json:"retained_segments"`
		Rows             int `json:"rows"`
		Base             int `json:"base"`
	}
	resp := post(t, ts, "/api/retention", map[string]any{"table": "m", "max_rows": 2 * 64}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retention status %d", resp.StatusCode)
	}
	if out.DroppedSegments != 3 || out.DroppedRows != 3*64 || out.Base != 3*64 {
		t.Fatalf("retention response %+v", out)
	}
	cur, err := db.Table("m")
	if err != nil {
		t.Fatal(err)
	}
	if cur.Base() != 3*64 || cur.NumRows() != 2*64+10 {
		t.Fatalf("catalog table not republished: base %d rows %d", cur.Base(), cur.NumRows())
	}

	// Policy-free requests are rejected.
	resp = post(t, ts, "/api/retention", map[string]any{"table": "m"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty policy status %d", resp.StatusCode)
	}
	// Unknown tables are rejected.
	resp = post(t, ts, "/api/retention", map[string]any{"table": "nope", "max_rows": 1}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown table status %d", resp.StatusCode)
	}
}

// TestStatsEndpoint pins the storage accounting: per-table and
// per-session retained segment counts and approximate bytes, with a
// session pinning a pre-retention window showing the larger footprint.
func TestStatsEndpoint(t *testing.T) {
	ts, _ := segServer(t, 5*64+10)

	// A session caches a result over the full window.
	post(t, ts, "/api/query", map[string]any{
		"session": "pinner",
		"sql":     "SELECT j, sum(x) AS s FROM m GROUP BY j",
	}, nil)

	// Retain: the catalog table shrinks; the session still pins the old
	// version until its next request.
	post(t, ts, "/api/retention", map[string]any{"table": "m", "max_rows": 2 * 64}, nil)

	resp, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Tables map[string]struct {
			Rows     int `json:"rows"`
			Base     int `json:"base"`
			Segments int `json:"segments"`
			Bytes    int `json:"approx_bytes"`
		} `json:"tables"`
		Sessions []struct {
			Session  string `json:"session"`
			Table    string `json:"table"`
			Rows     int    `json:"rows"`
			Base     int    `json:"base"`
			Segments int    `json:"segments"`
			Bytes    int    `json:"approx_bytes"`
		} `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	mt, ok := stats.Tables["m"]
	if !ok {
		t.Fatalf("table m missing from stats: %+v", stats.Tables)
	}
	if mt.Base != 3*64 || mt.Rows != 2*64+10 || mt.Segments == 0 || mt.Bytes == 0 {
		t.Fatalf("table stats %+v", mt)
	}
	if len(stats.Sessions) != 1 || stats.Sessions[0].Session != "pinner" {
		t.Fatalf("sessions %+v", stats.Sessions)
	}
	ss := stats.Sessions[0]
	if ss.Table != "m" || ss.Base != 0 || ss.Rows != 5*64+10 {
		t.Fatalf("session pins wrong window: %+v", ss)
	}
	if ss.Segments <= mt.Segments || ss.Bytes <= mt.Bytes {
		t.Fatalf("pinned window should be larger than retained table: session %+v vs table %+v", ss, mt)
	}

	// Re-query: the session advances across the horizon and the pinned
	// window is released.
	post(t, ts, "/api/query", map[string]any{
		"session": "pinner",
		"sql":     "SELECT j, sum(x) AS s FROM m GROUP BY j",
	}, nil)
	resp2, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Sessions) != 1 || stats.Sessions[0].Base != 3*64 {
		t.Fatalf("session did not advance across the horizon: %+v", stats.Sessions)
	}
}

// TestAppendQueryRetentionLoop drives the full streaming loop over the
// HTTP surface: append → re-query (incremental advance) → retention →
// re-query, checking the cached result follows the retained window.
func TestAppendQueryRetentionLoop(t *testing.T) {
	ts, db := segServer(t, 3*64)
	sql := "SELECT j, count(*) AS c FROM m GROUP BY j"
	post(t, ts, "/api/query", map[string]any{"session": "s", "sql": sql}, nil)

	next := 3 * 64
	for step := 0; step < 4; step++ {
		rows := make([][]any, 64)
		for i := range rows {
			rows[i] = []any{float64(next), float64(next % 3)}
			next++
		}
		resp := post(t, ts, "/api/append", map[string]any{"table": "m", "rows": rows}, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append status %d", resp.StatusCode)
		}
		resp = post(t, ts, "/api/retention", map[string]any{"table": "m", "max_rows": 3 * 64}, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("retention status %d", resp.StatusCode)
		}
		var q struct {
			Rows [][]any `json:"rows"`
		}
		resp = post(t, ts, "/api/query", map[string]any{"session": "s", "sql": sql}, &q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query status %d", resp.StatusCode)
		}
		cur, err := db.Table("m")
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, row := range q.Rows {
			c, ok := row[len(row)-1].(float64)
			if !ok {
				t.Fatalf("unexpected count cell %v", row)
			}
			total += c
		}
		if int(total) != cur.NumRows() {
			t.Fatalf("step %d: counts sum to %v, table has %d rows (%s)", step, total, cur.NumRows(), fmt.Sprintf("base %d", cur.Base()))
		}
	}
}
