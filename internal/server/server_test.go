package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/datasets"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	db, _ := datasets.FECDB(datasets.FECConfig{Rows: 30_000, Seed: 2})
	ts := httptest.NewServer(New(db).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, ts *httptest.Server, path string, body any, out any) *http.Response {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp
}

func TestIndexServesDashboard(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "DBWipes") {
		t.Error("dashboard HTML missing")
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type: %s", ct)
	}
}

func TestTablesAndMetricsEndpoints(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/api/tables")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tables map[string][]struct {
		Name, Type string
	}
	if err := json.NewDecoder(resp.Body).Decode(&tables); err != nil {
		t.Fatal(err)
	}
	if _, ok := tables["donations"]; !ok {
		t.Errorf("tables: %v", tables)
	}

	resp2, err := http.Get(ts.URL + "/api/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var metrics []struct{ Name string }
	if err := json.NewDecoder(resp2.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if len(metrics) < 4 {
		t.Errorf("metrics: %d", len(metrics))
	}
}

// fullLoop drives query → zoom → debug → clean, the paper's demo loop.
func TestFullInteractiveLoop(t *testing.T) {
	ts := testServer(t)

	// 1. Query.
	var q struct {
		SQL     string   `json:"sql"`
		Columns []string `json:"columns"`
		Rows    [][]any  `json:"rows"`
		AggCols []int    `json:"aggCols"`
	}
	resp := post(t, ts, "/api/query", map[string]any{
		"sql": datasets.FECDailySQL("McCain"),
	}, &q)
	if resp.StatusCode != 200 {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	if len(q.Rows) == 0 || len(q.Columns) != 2 {
		t.Fatalf("query payload: %d rows, %v", len(q.Rows), q.Columns)
	}

	// 2. Select negative days as S.
	var suspect []int
	for i, row := range q.Rows {
		if tot, ok := row[1].(float64); ok && tot < 0 {
			suspect = append(suspect, i)
		}
	}
	if len(suspect) == 0 {
		t.Fatal("no negative days in payload")
	}

	// 3. Zoom.
	var z struct {
		Columns []string `json:"columns"`
		Rows    [][]any  `json:"rows"`
	}
	post(t, ts, "/api/zoom", map[string]any{"suspect": suspect, "limit": 50}, &z)
	if len(z.Rows) == 0 || z.Columns[0] != "_rowid" {
		t.Fatalf("zoom payload: %v", z.Columns)
	}

	// 4. Debug.
	var d struct {
		Eps          float64 `json:"eps"`
		LineageSize  int     `json:"lineageSize"`
		Explanations []struct {
			Predicate  string  `json:"predicate"`
			Score      float64 `json:"score"`
			CleanedSQL string  `json:"cleanedSql"`
		} `json:"explanations"`
	}
	post(t, ts, "/api/debug", map[string]any{
		"suspect":      suspect,
		"aggItem":      -1,
		"metric":       "toolow",
		"metricParams": map[string]float64{"c": 0},
		"examplesCond": "amount < 0",
	}, &d)
	if d.Eps <= 0 || d.LineageSize == 0 {
		t.Fatalf("debug: eps=%v lineage=%d", d.Eps, d.LineageSize)
	}
	if len(d.Explanations) == 0 {
		t.Fatal("no explanations")
	}
	foundMemo := false
	for _, e := range d.Explanations {
		if strings.Contains(e.Predicate, "memo") {
			foundMemo = true
		}
		if e.CleanedSQL == "" {
			t.Error("cleanedSql missing")
		}
	}
	if !foundMemo {
		t.Errorf("no memo predicate: %+v", d.Explanations)
	}

	// 5. Clean with the top predicate; the query re-runs.
	idx := 0
	var c struct {
		SQL     string   `json:"sql"`
		Rows    [][]any  `json:"rows"`
		Applied []string `json:"applied"`
	}
	post(t, ts, "/api/clean", map[string]any{"explanation": &idx}, &c)
	if len(c.Applied) != 1 {
		t.Fatalf("applied: %v", c.Applied)
	}
	// Negative mass should drop substantially.
	negBefore, negAfter := 0.0, 0.0
	for _, row := range q.Rows {
		if tot, ok := row[1].(float64); ok && tot < 0 {
			negBefore += -tot
		}
	}
	for _, row := range c.Rows {
		if tot, ok := row[1].(float64); ok && tot < 0 {
			negAfter += -tot
		}
	}
	if negAfter > 0.5*negBefore {
		t.Errorf("cleaning ineffective: before=%.0f after=%.0f", negBefore, negAfter)
	}

	// 6. Reset restores the original result.
	var r struct {
		Applied []string `json:"applied"`
		Rows    [][]any  `json:"rows"`
	}
	post(t, ts, "/api/reset", map[string]any{}, &r)
	if len(r.Applied) != 0 {
		t.Errorf("reset left applied: %v", r.Applied)
	}
	if len(r.Rows) != len(q.Rows) {
		t.Errorf("reset rows %d, want %d", len(r.Rows), len(q.Rows))
	}
}

func TestErrorPaths(t *testing.T) {
	ts := testServer(t)
	// Zoom before query.
	resp := post(t, ts, "/api/zoom", map[string]any{"suspect": []int{0}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("zoom without query: %d", resp.StatusCode)
	}
	// Bad SQL.
	resp = post(t, ts, "/api/query", map[string]any{"sql": "SELEC nope"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad sql: %d", resp.StatusCode)
	}
	// Clean before debug.
	idx := 0
	resp = post(t, ts, "/api/clean", map[string]any{"explanation": &idx}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("clean before debug: %d", resp.StatusCode)
	}
	// Unknown metric.
	post(t, ts, "/api/query", map[string]any{"sql": datasets.FECDailySQL("McCain")}, nil)
	resp = post(t, ts, "/api/debug", map[string]any{
		"suspect": []int{0}, "metric": "nosuch",
	}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown metric: %d", resp.StatusCode)
	}
}

func TestSessionsAreIsolated(t *testing.T) {
	ts := testServer(t)
	post(t, ts, "/api/query", map[string]any{
		"session": "a", "sql": datasets.FECDailySQL("McCain"),
	}, nil)
	// Session b has no query yet: zoom must fail for b, succeed for a.
	respB := post(t, ts, "/api/zoom", map[string]any{"session": "b", "suspect": []int{0}}, nil)
	if respB.StatusCode != http.StatusBadRequest {
		t.Errorf("session b zoom: %d", respB.StatusCode)
	}
	respA := post(t, ts, "/api/zoom", map[string]any{"session": "a", "suspect": []int{0}}, nil)
	if respA.StatusCode != 200 {
		t.Errorf("session a zoom: %d", respA.StatusCode)
	}
}

func TestQueryTruncation(t *testing.T) {
	ts := testServer(t)
	var q struct {
		Rows      [][]any `json:"rows"`
		Truncated bool    `json:"truncated"`
	}
	post(t, ts, "/api/query", map[string]any{
		"sql": "SELECT day, amount FROM donations",
	}, &q)
	if !q.Truncated {
		t.Error("large projection should truncate")
	}
	if len(q.Rows) != 5000 {
		t.Errorf("truncated rows: %d", len(q.Rows))
	}
}

func TestSuggestMetric(t *testing.T) {
	ts := testServer(t)
	var q struct {
		Rows [][]any `json:"rows"`
	}
	post(t, ts, "/api/query", map[string]any{"sql": datasets.FECDailySQL("McCain")}, &q)
	var suspect []int
	for i, row := range q.Rows {
		if tot, ok := row[1].(float64); ok && tot < 0 {
			suspect = append(suspect, i)
		}
	}
	var sg struct {
		SuggestedC  float64 `json:"suggestedC"`
		Recommended string  `json:"recommended"`
		Metrics     []struct{ Name string }
	}
	post(t, ts, "/api/suggest", map[string]any{"suspect": suspect, "aggItem": -1}, &sg)
	if sg.Recommended != "toolow" {
		t.Errorf("recommended %q for negative-day selection, want toolow", sg.Recommended)
	}
	if sg.SuggestedC <= 0 {
		t.Errorf("suggested c %v: should be the healthy days' median (positive)", sg.SuggestedC)
	}
	if len(sg.Metrics) < 4 {
		t.Errorf("metrics offered: %d", len(sg.Metrics))
	}
	// Suggest before any query errors out.
	ts2 := testServer(t)
	resp := post(t, ts2, "/api/suggest", map[string]any{"suspect": []int{0}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("suggest without query: %d", resp.StatusCode)
	}
}

func TestQueryPayloadIncludesPCA(t *testing.T) {
	db, _ := datasets.IntelDB(datasets.IntelConfig{Rows: 20_000, Seed: 2})
	ts := httptest.NewServer(New(db).Handler())
	defer ts.Close()
	var q struct {
		Rows         [][]any      `json:"rows"`
		PCA          [][2]float64 `json:"pca"`
		PCAExplained [2]float64   `json:"pcaExplained"`
	}
	post(t, ts, "/api/query", map[string]any{"sql": datasets.IntelWindowSQL}, &q)
	if len(q.PCA) != len(q.Rows) {
		t.Fatalf("pca: %d projections for %d rows", len(q.PCA), len(q.Rows))
	}
	if q.PCAExplained[0] <= 0 {
		t.Errorf("pca explained: %v", q.PCAExplained)
	}
	// Two-column results carry no PCA.
	var q2 struct {
		PCA [][2]float64 `json:"pca"`
	}
	post(t, ts, "/api/query", map[string]any{
		"sql": "SELECT moteid, avg(temperature) FROM readings GROUP BY moteid",
	}, &q2)
	if q2.PCA != nil {
		t.Error("2-column result should not carry PCA")
	}
}

func TestConcurrentQueries(t *testing.T) {
	ts := testServer(t)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			b, _ := json.Marshal(map[string]any{
				"session": fmt.Sprintf("s%d", i),
				"sql":     datasets.FECDailySQL("Obama"),
			})
			resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(b))
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != 200 {
					err = fmt.Errorf("status %d", resp.StatusCode)
				}
			}
			done <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Errorf("concurrent query: %v", err)
		}
	}
}

// TestStatsResidualCounters pins the /api/stats planner view of the
// residual filter path: a WHERE mixing a lowerable comparison with a
// LIKE must count one residual-filtered query and a positive number of
// per-row residual evaluations, and a global float aggregation must
// ride the masked kernels without inflating either counter.
func TestStatsResidualCounters(t *testing.T) {
	ts := testServer(t)
	for _, sql := range []string{
		"SELECT state, sum(amount) AS s FROM donations WHERE amount > 100 AND city LIKE 'a%' GROUP BY state",
		"SELECT sum(amount) AS s, count(*) AS n FROM donations WHERE amount > 100",
	} {
		resp := post(t, ts, "/api/query", map[string]any{"session": "resid", "sql": sql}, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %q: status %d", sql, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Scan struct {
			Queries         int64 `json:"queries"`
			FiltersResidual int64 `json:"filters_residual"`
			ResidualRows    int64 `json:"residual_rows"`
		} `json:"scan"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Scan.Queries != 2 {
		t.Fatalf("scan.queries = %d, want 2", stats.Scan.Queries)
	}
	if stats.Scan.FiltersResidual != 1 {
		t.Fatalf("filters_residual = %d, want 1 (stats %+v)", stats.Scan.FiltersResidual, stats.Scan)
	}
	if stats.Scan.ResidualRows <= 0 {
		t.Fatalf("residual_rows = %d, want > 0", stats.Scan.ResidualRows)
	}
}
