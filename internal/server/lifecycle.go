package server

// This file is the request-lifecycle layer: per-request deadlines,
// admission control for heavy operations, load shedding with
// Retry-After hints, and per-endpoint accounting. Handlers themselves
// stay oblivious — Handler() wraps each route in withLifecycle, and the
// request's context carries the deadline down through exec, influence,
// ranker, core and store (see their *Ctx entry points).

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// Limits bounds the server's request lifecycle. Zero fields take the
// defaults below; a negative duration disables that deadline class
// (the request then runs under the client's connection context only).
type Limits struct {
	// QueryTimeout is the default deadline for interactive reads
	// (/api/query, /api/suggest, /api/zoom, /api/clean, /api/reset and
	// the GET endpoints).
	QueryTimeout time.Duration
	// DebugTimeout is the default deadline for /api/debug, the most
	// expensive operation (lineage + influence + predicate enumeration).
	DebugTimeout time.Duration
	// IngestTimeout is the default deadline for /api/append and
	// /api/retention. Note the store only honors cancellation BEFORE
	// its WAL commit point: once the batch is logged it runs to
	// completion, so a fired deadline never half-publishes a batch.
	IngestTimeout time.Duration
	// MaxTimeout caps per-request ?timeout= overrides so a client
	// cannot pin a worker forever.
	MaxTimeout time.Duration
	// MaxHeavy is the number of heavy operations (query/debug class)
	// allowed to run concurrently.
	MaxHeavy int
	// MaxQueue is how many heavy requests may wait for a slot beyond
	// MaxHeavy before new arrivals are shed with 429.
	MaxQueue int
	// RetryAfter is the hint written in the Retry-After header of shed
	// (429) and fail-stopped (503) responses.
	RetryAfter time.Duration
}

const (
	defaultQueryTimeout  = 15 * time.Second
	defaultDebugTimeout  = 60 * time.Second
	defaultIngestTimeout = 30 * time.Second
	defaultMaxTimeout    = 5 * time.Minute
	defaultMaxHeavy      = 4
	defaultMaxQueue      = 64
	defaultRetryAfter    = 1 * time.Second
)

// statusClientClosedRequest is the (nginx-convention) status recorded
// when the client went away mid-request; the client never sees it.
const statusClientClosedRequest = 499

func (l Limits) withDefaults() Limits {
	if l.QueryTimeout == 0 {
		l.QueryTimeout = defaultQueryTimeout
	}
	if l.DebugTimeout == 0 {
		l.DebugTimeout = defaultDebugTimeout
	}
	if l.IngestTimeout == 0 {
		l.IngestTimeout = defaultIngestTimeout
	}
	if l.MaxTimeout == 0 {
		l.MaxTimeout = defaultMaxTimeout
	}
	if l.MaxHeavy <= 0 {
		l.MaxHeavy = defaultMaxHeavy
	}
	if l.MaxQueue < 0 {
		l.MaxQueue = 0
	} else if l.MaxQueue == 0 {
		l.MaxQueue = defaultMaxQueue
	}
	if l.RetryAfter <= 0 {
		l.RetryAfter = defaultRetryAfter
	}
	return l
}

// requestClass picks the deadline default and whether admission
// control applies.
type requestClass int

const (
	classLight  requestClass = iota // cached-result reads, metadata
	classHeavy                      // scans / ranking: admission-controlled
	classIngest                     // append/retention: deadline only
)

// endpointCounters is one endpoint's lifecycle accounting. Every
// request increments total on arrival and exactly one of completed,
// shed, deadline or cancelled on departure, so at any quiescent point
// total == completed + shed + deadline + cancelled.
type endpointCounters struct {
	inFlight  atomic.Int64
	total     atomic.Int64
	completed atomic.Int64
	shed      atomic.Int64
	deadline  atomic.Int64
	cancelled atomic.Int64
}

// endpointStats is endpointCounters over the wire (/api/stats).
type endpointStats struct {
	InFlight  int64 `json:"in_flight"`
	Total     int64 `json:"total"`
	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"`
	Deadline  int64 `json:"deadline_exceeded"`
	Cancelled int64 `json:"cancelled"`
}

func (c *endpointCounters) stats() endpointStats {
	return endpointStats{
		InFlight:  c.inFlight.Load(),
		Total:     c.total.Load(),
		Completed: c.completed.Load(),
		Shed:      c.shed.Load(),
		Deadline:  c.deadline.Load(),
		Cancelled: c.cancelled.Load(),
	}
}

// lifecycle holds the server's admission state: the heavy-op semaphore,
// the queue depth, and the per-endpoint counters.
type lifecycle struct {
	limits Limits
	sem    chan struct{}
	queued atomic.Int64

	mu  sync.Mutex
	eps map[string]*endpointCounters
}

func newLifecycle(l Limits) *lifecycle {
	l = l.withDefaults()
	return &lifecycle{
		limits: l,
		sem:    make(chan struct{}, l.MaxHeavy),
		eps:    make(map[string]*endpointCounters),
	}
}

// SetLimits replaces the lifecycle limits (zero fields take defaults).
// Call before Handler() is serving traffic: it swaps the admission
// semaphore, so slots held across the swap would not be returned to
// the new one.
func (s *Server) SetLimits(l Limits) {
	counters := s.lc.eps
	s.lc = newLifecycle(l)
	s.lc.eps = counters // keep any counters wired into existing handlers
}

// counters returns (creating if needed) the named endpoint's counters.
func (lc *lifecycle) counters(name string) *endpointCounters {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	c, ok := lc.eps[name]
	if !ok {
		c = &endpointCounters{}
		lc.eps[name] = c
	}
	return c
}

// endpointStats snapshots every endpoint's counters for /api/stats.
func (lc *lifecycle) endpointStats() map[string]endpointStats {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	out := make(map[string]endpointStats, len(lc.eps))
	for name, c := range lc.eps {
		out[name] = c.stats()
	}
	return out
}

// admit takes a heavy-op slot, waiting in the bounded queue when all
// slots are busy. Returns (release, true, nil) on admission; (nil,
// false, nil) when the queue is full and the request must be shed; and
// (nil, false, ctx.Err()) when the context fired while queued.
func (lc *lifecycle) admit(ctx context.Context) (release func(), ok bool, err error) {
	select {
	case lc.sem <- struct{}{}:
		return func() { <-lc.sem }, true, nil
	default:
	}
	if lc.queued.Add(1) > int64(lc.limits.MaxQueue) {
		lc.queued.Add(-1)
		return nil, false, nil
	}
	defer lc.queued.Add(-1)
	select {
	case lc.sem <- struct{}{}:
		return func() { <-lc.sem }, true, nil
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// timeoutFor resolves the request's deadline: the class default,
// overridden by a ?timeout= duration, both capped by MaxTimeout.
// Returns 0 for "no deadline".
func (lc *lifecycle) timeoutFor(class requestClass, r *http.Request) time.Duration {
	var d time.Duration
	switch class {
	case classHeavy:
		if r.URL.Path == "/api/debug" {
			d = lc.limits.DebugTimeout
		} else {
			d = lc.limits.QueryTimeout
		}
	case classIngest:
		d = lc.limits.IngestTimeout
	default:
		d = lc.limits.QueryTimeout
	}
	if q := r.URL.Query().Get("timeout"); q != "" {
		if td, err := time.ParseDuration(q); err == nil && td > 0 {
			d = td
		}
	}
	if d < 0 {
		return 0
	}
	if lc.limits.MaxTimeout > 0 && d > lc.limits.MaxTimeout {
		d = lc.limits.MaxTimeout
	}
	return d
}

// retryAfterSeconds is the Retry-After header value: the configured
// hint rounded UP to whole seconds, minimum 1. The header has no
// sub-second form, and rounding down would understate the hint — a
// 400ms hint emitted as "0" (or 1.4s as "1") invites clients back
// before the backoff the operator asked for has elapsed, turning every
// shed into an immediate-retry stampede.
func (lc *lifecycle) retryAfterSeconds() string {
	secs := int((lc.limits.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// withLifecycle wraps one endpoint: it stamps the request context with
// the class deadline, runs heavy requests through admission control
// (shedding with 429 + Retry-After when the wait queue is full), and
// classifies every request exactly once on the way out — completed,
// shed, deadline_exceeded or cancelled — so the /api/stats counters
// account for the whole request stream.
func (s *Server) withLifecycle(name string, class requestClass, h http.HandlerFunc) http.HandlerFunc {
	c := s.lc.counters(name)
	return func(w http.ResponseWriter, r *http.Request) {
		lc := s.lc
		c.total.Add(1)
		c.inFlight.Add(1)
		defer c.inFlight.Add(-1)

		ctx := r.Context()
		if d := lc.timeoutFor(class, r); d > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
		r = r.WithContext(ctx)

		shed := false
		defer func() {
			// Exactly-once departure classification. A request that shed
			// counts as shed even if its deadline also fired while it was
			// being rejected; otherwise the context's state at departure
			// decides.
			switch {
			case shed:
				c.shed.Add(1)
			case errors.Is(ctx.Err(), context.DeadlineExceeded):
				c.deadline.Add(1)
			case errors.Is(ctx.Err(), context.Canceled):
				c.cancelled.Add(1)
			default:
				c.completed.Add(1)
			}
		}()

		if class == classHeavy {
			release, ok, err := lc.admit(ctx)
			if err != nil {
				writeReqErr(s, w, fmt.Errorf("server: queued for admission: %w", err))
				return
			}
			if !ok {
				shed = true
				w.Header().Set("Retry-After", lc.retryAfterSeconds())
				writeJSON(w, http.StatusTooManyRequests, map[string]any{
					"error":     "server overloaded: admission queue full",
					"reason":    "overload",
					"retryable": true,
				})
				return
			}
			defer release()
		}
		h(w, r)
	}
}

// writeReqErr maps an execution error to the lifecycle-aware status:
// a fired deadline is 504, a client that went away is 499 (recorded,
// never seen), a fail-stopped table is 503 with Retry-After and a
// machine-readable reason (the table is wedged until an operator
// intervenes — clients should back off, not fail the batch), anything
// else is the handler's plain 400.
func writeReqErr(s *Server, w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, store.ErrFailStopped):
		w.Header().Set("Retry-After", s.lc.retryAfterSeconds())
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":     err.Error(),
			"reason":    "fail-stopped",
			"retryable": true,
		})
	case errors.Is(err, context.DeadlineExceeded):
		writeErr(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled):
		writeErr(w, statusClientClosedRequest, err)
	default:
		writeErr(w, http.StatusBadRequest, err)
	}
}

// acquire takes the session lock, giving up when ctx fires — a request
// whose deadline expires while a slow debug holds its session must
// return 504, not pile up on the mutex. Pair with release.
func (sess *session) acquire(ctx context.Context) error {
	select {
	case sess.lockCh <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: waiting for session lock: %w", ctx.Err())
	}
}

// tryAcquire takes the session lock only if it is free (the /api/stats
// scan uses it so statistics never block behind a slow debug).
func (sess *session) tryAcquire() bool {
	select {
	case sess.lockCh <- struct{}{}:
		return true
	default:
		return false
	}
}

func (sess *session) release() { <-sess.lockCh }
